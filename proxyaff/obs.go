package proxyaff

import (
	"fmt"
	"io"
	"time"

	"affinityaccept/internal/obs"
)

// UpstreamLatencySnapshot returns the upstream exchange-latency
// histogram merged across workers — backend pick to response relayed,
// dial included. Empty when DisableObs. Diagnostic path: allocates.
func (p *Proxy) UpstreamLatencySnapshot() obs.HistSnapshot {
	if !p.obsOn {
		return obs.HistSnapshot{}
	}
	m := p.workers[0].exch.Snapshot()
	for i := 1; i < len(p.workers); i++ {
		m.Merge(p.workers[i].exch.Snapshot())
	}
	return m
}

// WriteObsMetrics renders the proxy's observability series in Prometheus
// text format: the upstream exchange-latency histogram plus per-backend
// health counters and the tunnel gauges. Pass it as an extra to
// httpaff.MetricsHandler so one scrape covers the whole stack.
func (p *Proxy) WriteObsMetrics(w io.Writer) {
	if p.obsOn {
		obs.WriteProm(w, "affinity_upstream_exchange_seconds",
			"Upstream exchange latency from backend pick to response relayed, dial included.",
			p.UpstreamLatencySnapshot(), 1e-9)
	}
	now := time.Now().UnixNano()
	fmt.Fprintf(w, "# HELP affinity_backend_ejections_total Times a backend was passively ejected after consecutive failures.\n# TYPE affinity_backend_ejections_total counter\n")
	for i := range p.backends {
		b := &p.backends[i]
		fmt.Fprintf(w, "affinity_backend_ejections_total{backend=%q} %d\n", b.addr, b.ejections.Load())
	}
	fmt.Fprintf(w, "# HELP affinity_backend_ejected Whether the backend is passively ejected right now.\n# TYPE affinity_backend_ejected gauge\n")
	for i := range p.backends {
		b := &p.backends[i]
		ej := 0
		if b.ejected(now) {
			ej = 1
		}
		fmt.Fprintf(w, "affinity_backend_ejected{backend=%q} %d\n", b.addr, ej)
	}
	fmt.Fprintf(w, "# HELP affinity_tunnels_active Upgrade tunnels relaying right now.\n# TYPE affinity_tunnels_active gauge\naffinity_tunnels_active %d\n", p.tunnels.Load())
	fmt.Fprintf(w, "# HELP affinity_tunneled_total Upgrade tunnels relayed, lifetime.\n# TYPE affinity_tunneled_total counter\naffinity_tunneled_total %d\n", p.tunneled.Load())
}
