package proxyaff

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"
)

// stubListener accepts on loopback and discards; gives the pool real
// TCP conns whose peek machinery works.
func stubListener(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()
	return l
}

func newTestPool(maxIdle, maxConns int) *upstreamPool {
	p := &upstreamPool{}
	p.init(time.Second, maxIdle, maxConns)
	return p
}

// TestPoolReuseLIFO: released connections come back newest-first, and
// the counters record reuse vs. dial.
func TestPoolReuseLIFO(t *testing.T) {
	l := stubListener(t)
	addr := l.Addr().String()
	p := newTestPool(4, 8)

	a, reused, err := p.get(addr)
	if err != nil || reused {
		t.Fatalf("first get: reused=%v err=%v", reused, err)
	}
	b, reused, err := p.get(addr)
	if err != nil || reused {
		t.Fatalf("second get: reused=%v err=%v", reused, err)
	}
	p.put(a, true)
	p.put(b, true) // newest
	got, reused, err := p.get(addr)
	if err != nil || !reused {
		t.Fatalf("third get: reused=%v err=%v", reused, err)
	}
	if got != b {
		t.Error("pool is not LIFO: expected the most recently released conn")
	}
	snap := p.counters.Snapshot()
	if snap.Misses != 2 || snap.Reuses != 1 {
		t.Errorf("counters = %+v, want 2 misses 1 reuse", snap)
	}
	p.put(got, true)
	p.closeAll()
	if p.idleCount(addr) != 0 {
		t.Error("closeAll left idle conns")
	}
}

// TestPoolIdleCap: releases beyond MaxIdle are dropped (and counted).
func TestPoolIdleCap(t *testing.T) {
	l := stubListener(t)
	addr := l.Addr().String()
	p := newTestPool(1, 8)

	a, _, _ := p.get(addr)
	b, _, _ := p.get(addr)
	p.put(a, true)
	p.put(b, true) // over the cap: dropped
	if n := p.idleCount(addr); n != 1 {
		t.Fatalf("idle = %d, want 1", n)
	}
	if snap := p.counters.Snapshot(); snap.Drops != 1 {
		t.Errorf("drops = %d, want 1", snap.Drops)
	}
	p.closeAll()
}

// TestPoolExhaustionUnderBurst: checkouts beyond MaxConns fail with
// errPoolExhausted and succeed again once a connection is returned —
// the burst-shedding behavior the proxy maps to 503.
func TestPoolExhaustionUnderBurst(t *testing.T) {
	l := stubListener(t)
	addr := l.Addr().String()
	p := newTestPool(2, 2)

	a, _, err := p.get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.get(addr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.get(addr); !errors.Is(err, errPoolExhausted) {
		t.Fatalf("third concurrent checkout: %v, want errPoolExhausted", err)
	}
	// Returning one frees a slot; a non-reusable return frees it too.
	p.put(a, false)
	c, _, err := p.get(addr)
	if err != nil {
		t.Fatalf("checkout after release: %v", err)
	}
	p.put(c, true)
	p.closeAll()
}

// TestPoolFlushIdle: flushing a backend's idle list closes the conns
// and frees their open slots, so the next checkout dials fresh.
func TestPoolFlushIdle(t *testing.T) {
	l := stubListener(t)
	addr := l.Addr().String()
	p := newTestPool(4, 2)

	a, _, _ := p.get(addr)
	b, _, _ := p.get(addr)
	p.put(a, true)
	p.put(b, true)
	p.flushIdle(addr)
	if n := p.idleCount(addr); n != 0 {
		t.Fatalf("idle after flush = %d, want 0", n)
	}
	// Both MaxConns slots must be free again.
	if _, _, err := p.get(addr); err != nil {
		t.Fatalf("first checkout after flush: %v", err)
	}
	if _, _, err := p.get(addr); err != nil {
		t.Fatalf("second checkout after flush: %v", err)
	}
	p.flushIdle("absent:0") // no-op on unknown hosts
	p.closeAll()
}

// TestParseContentLength pins the response-side framing parser: unlike
// the request side's 1 GiB buffering cap, relayed (streamed) bodies may
// be arbitrarily large short of int64 sanity.
func TestParseContentLength(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
		ok   bool
	}{
		{"0", 0, true},
		{"1234", 1234, true},
		{"2147483648", 1 << 31, true},    // 2 GiB: beyond the request-side cap
		{"1099511627776", 1 << 40, true}, // 1 TiB
		{"", 0, false},
		{"-1", 0, false},
		{"12a", 0, false},
		{"99999999999999999999999", 0, false}, // past the 2^60 sanity cap
	} {
		got, ok := parseContentLength([]byte(tc.in))
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseContentLength(%q) = %d, %v; want %d, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// TestPoolDialFailure: a dead backend fails the checkout without
// charging open-conn slots.
func TestPoolDialFailure(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close() // nothing listens here now
	p := newTestPool(2, 1)

	if _, _, err := p.get(dead); err == nil {
		t.Fatal("dial to dead backend succeeded")
	}
	// The failed dial must not leak the single MaxConns slot.
	live := stubListener(t)
	if _, _, err := p.get(live.Addr().String()); err != nil {
		t.Fatalf("checkout after failed dial: %v", err)
	}
	if snap := p.counters.Snapshot(); snap.Misses != 1 {
		t.Errorf("misses = %d, want 1 (failed dials are not gets)", snap.Misses)
	}
}

// TestPoolLivenessPeek: a pooled connection the backend closed while
// idle is detected at checkout and replaced by a fresh dial.
func TestPoolLivenessPeek(t *testing.T) {
	if runtime.GOOS != "linux" {
		// Do not let the optimistic stub turn this into a test that
		// asserts nothing: skip loudly instead of passing silently.
		t.Skip("checkout liveness needs the Linux MSG_PEEK probe; peek_other.go is optimistic and " +
			"stale-conn recovery off Linux is covered by TestProxyRecoversFromBackendIdleClose's retry path")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	addr := l.Addr().String()
	p := newTestPool(2, 4)

	a, _, err := p.get(addr)
	if err != nil {
		t.Fatal(err)
	}
	p.put(a, true)
	server := <-accepted
	server.Close() // backend hangs up on the idle conn
	// Wait for the FIN to be observable client-side.
	deadline := time.Now().Add(2 * time.Second)
	for a.alive() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	got, reused, err := p.get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if reused || got == a {
		t.Error("checkout returned the dead pooled conn; the liveness peek missed the close")
	}
	if snap := p.counters.Snapshot(); snap.Misses != 2 {
		t.Errorf("misses = %d, want 2 (dead conn discarded, fresh dial)", snap.Misses)
	}
	p.put(got, true)
	p.closeAll()
}

// TestPoolPeekRejectsDirtyConn (Linux): a pooled connection with
// unsolicited buffered bytes must not be reused — those bytes would be
// parsed as the next response's head.
func TestPoolPeekRejectsDirtyConn(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("checkout liveness needs the Linux MSG_PEEK probe; peek_other.go is optimistic, " +
			"so a dirty conn would be handed out here and only caught by the relay's framing checks")
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	addr := l.Addr().String()
	p := newTestPool(2, 4)

	a, _, err := p.get(addr)
	if err != nil {
		t.Fatal(err)
	}
	p.put(a, true)
	server := <-accepted
	defer server.Close()
	if _, err := server.Write([]byte("HTTP/1.1 200 OK\r\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.alive() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	got, reused, err := p.get(addr)
	if err != nil {
		t.Fatal(err)
	}
	if reused || got == a {
		t.Error("checkout reused a conn carrying unsolicited bytes")
	}
	p.put(got, true)
	p.closeAll()
}
