// Package proxyaff is the outbound half of the core-local story: an
// HTTP/1.1 reverse proxy that runs as an httpaff handler, where every
// serve worker owns a private pool of upstream connections.
//
// The paper's thesis is that a connection's entire lifetime should stay
// on one core. The serve and httpaff layers achieve that for the
// inbound half — accept, steal/migrate, parse, respond — but a
// production edge also fronts backends, and a conventional proxy
// (net/http/httputil's ReverseProxy over a shared Transport) scatters
// the outbound half: any worker can dial, any worker can check a pooled
// upstream connection out of the process-wide idle list, and the
// response bytes funnel through goroutines the scheduler places
// wherever it likes. proxyaff instead gives worker i its own
// upstreamPool: the dial, the keep-alive reuse, the request forwarding
// and the response relay for a request served on worker i all happen
// inline on worker i's goroutine, touching only worker-i-owned memory.
// When §3.3.2 migration moves a client's flow group to a new worker,
// the next request is proxied through the new worker's pool — the
// connection moved, and both the request memory (httpaff's arena) and
// the upstream socket it is served through are warm on the new core.
//
// The relay path allocates nothing in the steady state: request heads
// are built in a per-worker scratch buffer, upstream heads are read
// into another, and body bytes are read from the backend directly into
// the downstream connection's response buffer (httpaff's raw-response
// hooks), streaming in bounded chunks for large bodies.
package proxyaff

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/internal/obs"
	"affinityaccept/internal/stats"
)

// Policy selects how a worker picks the backend for a request.
type Policy int

const (
	// RoundRobin rotates each worker through the backend list
	// independently (no shared cursor — a process-wide atomic counter
	// would be exactly the kind of cross-core cache-line traffic this
	// package exists to avoid).
	RoundRobin Policy = iota
	// WorkerPinned makes worker w prefer backend w % len(Backends), so
	// a given backend is fed by a stable subset of workers and each
	// worker's pool concentrates on one backend — the placement that
	// maximizes upstream connection reuse. Unhealthy backends fall
	// through to the next in order.
	WorkerPinned
)

// Config parameterizes a Proxy. Backends is required; everything else
// has working defaults.
type Config struct {
	// Backends are the upstream addresses ("host:port"). Required.
	Backends []string

	// Policy selects the backend-picking policy (default RoundRobin).
	Policy Policy

	// Workers must match the serving httpaff server's worker count
	// (0 = GOMAXPROCS, the default on both sides). Requests reporting a
	// worker index outside [0, Workers) are answered 500 — serving them
	// from another worker's pool would race its single-owner state.
	Workers int

	// DialTimeout bounds a cold checkout's dial (default 1s).
	DialTimeout time.Duration
	// ExchangeTimeout bounds one full upstream round trip — write,
	// response head, body (0 = the 30s default; negative = no deadline,
	// for long-lived streaming responses). Expiry answers 504 before the
	// head is committed, truncation + close after.
	ExchangeTimeout time.Duration

	// MaxIdlePerBackend caps each worker's idle connections per backend
	// (default 2). The one-connection-per-worker serve model needs
	// exactly one in the steady state.
	MaxIdlePerBackend int
	// MaxConnsPerBackend caps each worker's open connections per
	// backend (default 64); checkouts beyond it are answered 503.
	MaxConnsPerBackend int

	// EjectAfter is the consecutive-failure count that passively ejects
	// a backend (default 2); EjectFor is how long it stays ejected
	// before the next request to it becomes the re-probe (default 1s).
	EjectAfter int
	EjectFor   time.Duration

	// MaxResponseHeaderBytes bounds an upstream response head (default
	// 8192); larger heads are answered 502.
	MaxResponseHeaderBytes int

	// HistSubBits sets the resolution of the upstream exchange-latency
	// histograms (0 = the obs default, 6.25% relative error); DisableObs
	// turns them off entirely.
	HistSubBits int
	DisableObs  bool
}

func (c *Config) fill() error {
	if len(c.Backends) == 0 {
		return errors.New("proxyaff: Config.Backends is required")
	}
	for _, b := range c.Backends {
		if b == "" {
			return errors.New("proxyaff: empty backend address")
		}
	}
	if c.Policy != RoundRobin && c.Policy != WorkerPinned {
		return fmt.Errorf("proxyaff: unknown policy %d", c.Policy)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.ExchangeTimeout == 0 {
		c.ExchangeTimeout = 30 * time.Second
	} else if c.ExchangeTimeout < 0 {
		c.ExchangeTimeout = 0 // explicit opt-out: no deadline
	}
	if c.MaxIdlePerBackend <= 0 {
		c.MaxIdlePerBackend = 2
	}
	if c.MaxConnsPerBackend <= 0 {
		c.MaxConnsPerBackend = 64
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.EjectFor <= 0 {
		c.EjectFor = time.Second
	}
	if c.MaxResponseHeaderBytes <= 0 {
		c.MaxResponseHeaderBytes = 8192
	}
	if c.HistSubBits < 0 {
		return errors.New("proxyaff: HistSubBits must be non-negative")
	}
	return nil
}

// backendState is one backend's shared health record. The atomics are
// the only cross-worker state in the package, and they are read-mostly:
// a healthy backend costs two loads per request.
type backendState struct {
	addr         string
	fails        atomic.Uint32 // consecutive failures
	ejectedUntil atomic.Int64  // unix nanos; 0 = healthy
	ejections    atomic.Uint64 // times passively ejected
}

func (b *backendState) ejected(now int64) bool { return b.ejectedUntil.Load() > now }

// proxyWorker is one worker's private proxy state: its upstream pool
// and the scratch buffers the relay path reuses across requests.
type proxyWorker struct {
	pool upstreamPool
	rr   uint32 // RoundRobin cursor, worker-local
	hbuf []byte // upstream response head buffer
	rbuf []byte // upstream request head buffer

	// exch is the worker's upstream exchange-latency histogram: backend
	// pick to response relayed, dial included. Nil when DisableObs.
	exch *obs.Hist
}

// retainCap is the largest scratch buffer a worker keeps between
// requests; one outlier response head or request must not pin memory.
const retainCap = 64 << 10

func (w *proxyWorker) shed() {
	if cap(w.hbuf) > retainCap {
		w.hbuf = make([]byte, 4096)
	}
	if cap(w.rbuf) > retainCap {
		w.rbuf = make([]byte, 0, 1024)
	}
}

// Proxy is an httpaff handler (use (*Proxy).Serve as Config.Handler or
// mount it on a Router path) that forwards requests to the configured
// backends through per-worker upstream connection pools.
type Proxy struct {
	cfg      Config
	backends []backendState
	workers  []proxyWorker
	tunnels  atomic.Int64  // 101 upgrades currently being relayed
	tunneled atomic.Uint64 // 101 upgrades relayed, lifetime
	obsOn    bool
}

// New creates a Proxy. Wire p.Serve as the httpaff handler and
// p.PoolSnapshot as httpaff.Config.WorkerUpstream so serve.Stats
// carries the upstream pool counters.
func New(cfg Config) (*Proxy, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:      cfg,
		backends: make([]backendState, len(cfg.Backends)),
		workers:  make([]proxyWorker, cfg.Workers),
	}
	for i := range p.backends {
		p.backends[i].addr = cfg.Backends[i]
	}
	p.obsOn = !cfg.DisableObs
	for i := range p.workers {
		w := &p.workers[i]
		w.pool.init(cfg.DialTimeout, cfg.MaxIdlePerBackend, cfg.MaxConnsPerBackend)
		w.hbuf = make([]byte, 4096)
		w.rbuf = make([]byte, 0, 1024)
		if p.obsOn {
			w.exch = obs.NewHist(cfg.HistSubBits)
		}
	}
	return p, nil
}

// PoolSnapshot reports one worker's upstream pool counters; wire it as
// httpaff.Config.WorkerUpstream. Out-of-range workers (a serve/proxy
// worker-count mismatch) report a zero snapshot rather than panicking
// inside a Stats call — Serve answers the same mismatch with a 500.
func (p *Proxy) PoolSnapshot(worker int) stats.PoolSnapshot {
	if worker < 0 || worker >= len(p.workers) {
		return stats.PoolSnapshot{}
	}
	return p.workers[worker].pool.counters.Snapshot()
}

// BackendStats is one backend's health view.
type BackendStats struct {
	Addr string
	// Ejected reports the backend is currently passively ejected;
	// ConsecutiveFails and Ejections are its failure history.
	Ejected          bool
	ConsecutiveFails uint32
	Ejections        uint64
}

// Stats is a point-in-time view of the proxy: aggregate and per-worker
// upstream pool counters, per-backend health, and the upgrade-tunnel
// counters.
type Stats struct {
	Pool     stats.PoolSnapshot
	Workers  []stats.PoolSnapshot
	Backends []BackendStats
	// ActiveTunnels is the number of 101 upgrade tunnels relaying right
	// now (each occupies its worker); Tunneled counts them lifetime.
	ActiveTunnels int64
	Tunneled      uint64
}

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	st := Stats{
		Workers:       make([]stats.PoolSnapshot, len(p.workers)),
		Backends:      make([]BackendStats, len(p.backends)),
		ActiveTunnels: p.tunnels.Load(),
		Tunneled:      p.tunneled.Load(),
	}
	for i := range p.workers {
		st.Workers[i] = p.workers[i].pool.counters.Snapshot()
		st.Pool = st.Pool.Add(st.Workers[i])
	}
	now := time.Now().UnixNano()
	for i := range p.backends {
		b := &p.backends[i]
		st.Backends[i] = BackendStats{
			Addr:             b.addr,
			Ejected:          b.ejected(now),
			ConsecutiveFails: b.fails.Load(),
			Ejections:        b.ejections.Load(),
		}
	}
	return st
}

// Close closes every pooled upstream connection. The pools are
// worker-owned, so call this only once the serving httpaff server has
// shut down and no handler can run.
func (p *Proxy) Close() {
	for i := range p.workers {
		p.workers[i].pool.closeAll()
	}
}

// pick selects the backend for a request on worker wid: the policy's
// preferred backend, falling through ejected ones in order. When every
// backend is ejected the preferred one is picked anyway — with nothing
// healthy the request doubles as the earliest possible re-probe.
func (p *Proxy) pick(w *proxyWorker, wid int, now int64) *backendState {
	n := len(p.backends)
	var start int
	if p.cfg.Policy == WorkerPinned {
		start = wid % n
	} else {
		start = int(w.rr % uint32(n))
		w.rr++
	}
	for i := 0; i < n; i++ {
		if b := &p.backends[(start+i)%n]; !b.ejected(now) {
			return b
		}
	}
	return &p.backends[start]
}

// fail records a backend failure; crossing EjectAfter ejects it for
// EjectFor. The first request after the window expires is the re-probe:
// success clears the record, another failure re-ejects immediately.
func (p *Proxy) fail(b *backendState) {
	if int(b.fails.Add(1)) >= p.cfg.EjectAfter {
		b.ejectedUntil.Store(time.Now().Add(p.cfg.EjectFor).UnixNano())
		b.ejections.Add(1)
	}
}

// ok clears a backend's failure record. Loads before stores keep the
// healthy steady state read-only on the shared cache line.
func (p *Proxy) ok(b *backendState) {
	if b.fails.Load() != 0 {
		b.fails.Store(0)
	}
	if b.ejectedUntil.Load() != 0 {
		b.ejectedUntil.Store(0)
	}
}

func respondError(ctx *httpaff.RequestCtx, code int, msg string) {
	ctx.SetStatus(code)
	ctx.WriteString(msg)
}

// badGateway discards the upstream connection, charges the backend a
// failure, and answers 502 — the shared exit for every "the backend
// spoke something we cannot relay" path in exchange. A method rather
// than a closure so the happy path does not allocate one per request.
func (p *Proxy) badGateway(ctx *httpaff.RequestCtx, w *proxyWorker, uc *upstreamConn, b *backendState, msg string) (done, retry bool, ferr error) {
	w.pool.put(uc, false)
	p.fail(b)
	respondError(ctx, http.StatusBadGateway, msg)
	return true, false, nil
}

// respondUpstreamError maps an upstream transport failure to 504
// (deadline) or 502 (everything else).
func respondUpstreamError(ctx *httpaff.RequestCtx, err error) {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		respondError(ctx, http.StatusGatewayTimeout, "upstream timed out")
		return
	}
	respondError(ctx, http.StatusBadGateway, "upstream failed")
}

// Serve proxies one parsed request: pick a backend, check a connection
// out of the worker's pool, forward, relay. It runs inline on the serve
// worker goroutine — that inlining is what lets all of its state be
// lock-free and worker-local.
func (p *Proxy) Serve(ctx *httpaff.RequestCtx) {
	wid := ctx.Worker()
	if wid < 0 || wid >= len(p.workers) {
		respondError(ctx, http.StatusInternalServerError,
			"proxyaff: worker index out of range; Config.Workers must match the serving server")
		return
	}
	w := &p.workers[wid]
	defer w.shed()

	// Two attempts: a reused connection the liveness peek passed can
	// still lose the race with a backend close; if it dies before
	// yielding a single response byte the request is provably unserved
	// and safe to repeat on a fresh connection. A failed fresh dial
	// also consumes an attempt, re-picking around the ejection.
	// The worker's coarse clock (stamped once per event-loop iteration)
	// serves both the ejection-window checks and the exchange deadline:
	// no per-request time.Now in the proxy hot path.
	now := ctx.CoarseNow()
	var t0 int64
	if p.obsOn {
		t0 = obs.Nanos()
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		b := p.pick(w, wid, now.UnixNano())
		uc, reused, err := w.pool.get(b.addr)
		if err == errPoolExhausted {
			respondError(ctx, http.StatusServiceUnavailable, "upstream pool exhausted")
			return
		}
		if err != nil { // dial failure
			p.fail(b)
			lastErr = err
			continue
		}
		done, retry, err := p.exchange(ctx, w, uc, b, reused)
		if done {
			if p.obsOn {
				w.exch.Record(obs.Nanos() - t0)
			}
			return
		}
		lastErr = err
		if !retry {
			break
		}
		// The reused conn was stale; its idle siblings date from the
		// same era (a backend restart kills them together), so flush
		// them and let the retry dial fresh.
		w.pool.flushIdle(b.addr)
	}
	if lastErr != nil {
		respondUpstreamError(ctx, lastErr)
		return
	}
	respondError(ctx, http.StatusBadGateway, "no backend available")
}

// relayChunk bounds one body-read from the upstream; relayFlushEvery
// bounds how many relayed bytes accumulate before a mid-stream flush to
// the client, so large responses stream instead of ballooning the
// buffer. appendBodyMax bounds the request bodies copied into the head
// write — one syscall instead of two — before a separate write becomes
// cheaper than the copy.
const (
	relayChunk      = 32 << 10
	relayFlushEvery = 32 << 10
	appendBodyMax   = 16 << 10
)

// exchange forwards ctx's request over uc and relays the response.
// done reports that a response (success or proxy error) was written;
// retry — only ever with done false — that nothing was sent downstream
// and the failure was a stale reused connection, safe to repeat.
func (p *Proxy) exchange(ctx *httpaff.RequestCtx, w *proxyWorker, uc *upstreamConn, b *backendState, reused bool) (done, retry bool, ferr error) {
	if p.cfg.ExchangeTimeout > 0 {
		uc.c.SetDeadline(ctx.CoarseNow().Add(p.cfg.ExchangeTimeout))
	}

	// ---- forward: request line + non-hop-by-hop headers, verbatim ----
	head := w.rbuf[:0]
	head = append(head, ctx.Method()...)
	head = append(head, ' ')
	head = append(head, ctx.URI()...)
	head = append(head, " HTTP/1.1\r\n"...)
	reqConn := ctx.Header("connection") // tokens here nominate more hop-by-hop headers
	// An Upgrade request (Connection: Upgrade + an Upgrade header) asks
	// this hop to become a dumb pipe: the Upgrade header survives the
	// hop-by-hop strip and a fresh Connection: Upgrade is emitted, so
	// the backend sees the same handshake the client sent (RFC 9110
	// §7.8). A 101 answer then switches the exchange to tunnel relay.
	isUpgrade := len(ctx.Header("upgrade")) > 0 && tokenListContains(reqConn, "upgrade")
	for i, n := 0, ctx.HeaderCount(); i < n; i++ {
		k, v := ctx.HeaderAt(i)
		// Expect is stripped alongside the hop-by-hop set: httpaff has
		// already buffered the full body before the handler ran, so the
		// 100-continue handshake is settled — and forwarding it would
		// make the backend emit an interim response the relay refuses.
		// Headers the client's Connection header nominates are likewise
		// consumed by this hop (RFC 9110 §7.6.1).
		if isUpgrade && equalFold(k, "upgrade") {
			// Re-emitted below alongside Connection: Upgrade.
		} else if hopByHop(k) || equalFold(k, "expect") ||
			(len(reqConn) > 0 && connectionNominates(reqConn, k)) {
			continue
		}
		head = append(head, k...)
		head = append(head, ": "...)
		head = append(head, v...)
		head = append(head, '\r', '\n')
	}
	if isUpgrade {
		head = append(head, "Connection: Upgrade\r\n"...)
	}
	head = append(head, '\r', '\n')
	// Small bodies ride in the head's write so the request goes out in
	// one syscall; large ones keep their own write to skip the copy.
	body := ctx.Body()
	if len(body) > 0 && len(head)+len(body) <= appendBodyMax {
		head = append(head, body...)
		body = nil
	}
	w.rbuf = head
	// A failure on a *reused* connection is a stale-conn symptom, not
	// backend ill-health (no fail charge) — but only idempotent methods
	// may be replayed on a fresh connection: the write reaching the
	// backend does not prove the request was not processed.
	replayable := reused && idempotentMethod(ctx.Method())
	if _, err := uc.c.Write(head); err != nil {
		w.pool.put(uc, false)
		if reused {
			return false, replayable, err
		}
		p.fail(b)
		return false, false, err
	}
	if len(body) > 0 {
		if _, err := uc.c.Write(body); err != nil {
			w.pool.put(uc, false)
			if reused {
				return false, replayable, err
			}
			p.fail(b)
			return false, false, err
		}
	}

	// ---- response head ----
	hbuf := w.hbuf
	n, scan, headerEnd := 0, 0, -1
	for headerEnd < 0 {
		if n > scan {
			if i := bytes.Index(hbuf[scan:n], crlfCRLF); i >= 0 {
				headerEnd = scan + i + 4
				break
			}
			if scan = n - 3; scan < 0 {
				scan = 0
			}
		}
		if n >= p.cfg.MaxResponseHeaderBytes {
			w.pool.put(uc, false)
			p.fail(b)
			respondError(ctx, http.StatusBadGateway, "upstream response head too large")
			return true, false, nil
		}
		if n == len(hbuf) {
			nb := make([]byte, 2*len(hbuf))
			copy(nb, hbuf[:n])
			hbuf = nb
			w.hbuf = hbuf
		}
		m, err := uc.c.Read(hbuf[n:])
		n += m
		if err != nil && m == 0 {
			w.pool.put(uc, false)
			if n == 0 && reused {
				// Stale pooled connection, nothing received: repeat the
				// request — if its method makes a repeat safe.
				return false, replayable, err
			}
			p.fail(b)
			return false, false, err
		}
	}

	// ---- parse framing ----
	statusLine, rest := nextLine(hbuf[:headerEnd-2])
	code, upKeepAlive, okLine := parseStatusLine(statusLine)
	if okLine && code == 101 && isUpgrade {
		return p.tunnel(ctx, w, uc, b, hbuf[:headerEnd], hbuf[headerEnd:n])
	}
	if !okLine || code < 200 {
		// 1xx interim responses (and a 101 nobody asked for) are a
		// feature the proxy neither requests (no Expect forwarding of
		// its own) nor relays.
		return p.badGateway(ctx, w, uc, b, "unparseable upstream response")
	}
	var contentLength int64 = -1
	var upConn []byte // the upstream Connection value: nominates more hop-by-hop headers
	for hdr := rest; len(hdr) > 0; {
		var line []byte
		line, hdr = nextLine(hdr)
		if len(line) == 0 {
			continue
		}
		col := -1
		for i, c := range line {
			if c == ':' {
				col = i
				break
			}
		}
		if col <= 0 {
			return p.badGateway(ctx, w, uc, b, "malformed upstream header")
		}
		key := trimOWS(line[:col])
		val := trimOWS(line[col+1:])
		switch {
		case equalFold(key, "content-length"):
			if contentLength >= 0 {
				return p.badGateway(ctx, w, uc, b, "duplicate upstream Content-Length")
			}
			v, okCL := parseContentLength(val)
			if !okCL {
				return p.badGateway(ctx, w, uc, b, "bad upstream Content-Length")
			}
			contentLength = v
		case equalFold(key, "connection"):
			if upConn == nil {
				upConn = val
			}
			// The value is a token list ("close, TE"), not one token.
			if tokenListContains(val, "close") {
				upKeepAlive = false
			} else if tokenListContains(val, "keep-alive") {
				upKeepAlive = true
			}
		case equalFold(key, "transfer-encoding"):
			// Chunked framing is self-delimiting only to a parser; the
			// relay would have to decode it to know when the upstream
			// connection is clean again. httpaff backends never chunk.
			return p.badGateway(ctx, w, uc, b, "upstream Transfer-Encoding not supported")
		}
	}

	leftover := hbuf[headerEnd:n]
	noBody := code == 204 || code == 304 || equalFold(ctx.Method(), "head")
	closeDelimited := contentLength < 0 && !noBody
	willClose := closeDelimited || ctx.WillClose()

	// ---- relay: from here the response is committed downstream ----
	ctx.BeginRawResponse()
	if willClose {
		ctx.SetConnectionClose()
	}
	ctx.RawWrite(hbuf[:len(statusLine)+2])
	for hdr := rest; len(hdr) > 0; {
		var line []byte
		line, hdr = nextLine(hdr)
		if len(line) == 0 {
			continue
		}
		col := 0
		for line[col] != ':' {
			col++
		}
		key := trimOWS(line[:col])
		if hopByHop(key) || (len(upConn) > 0 && connectionNominates(upConn, key)) {
			continue
		}
		ctx.RawWrite(line)
		ctx.RawWrite(crlf)
	}
	if willClose {
		ctx.RawWriteString("Connection: close\r\n")
	}
	ctx.RawWrite(crlf)

	if noBody {
		w.pool.put(uc, upKeepAlive && len(leftover) == 0)
		p.ok(b)
		return true, false, nil
	}

	if contentLength >= 0 {
		remain := contentLength
		take := int(min(int64(len(leftover)), remain))
		ctx.RawWrite(leftover[:take])
		remain -= int64(take)
		overread := len(leftover) - take // upstream sent beyond its framing
		for remain > 0 {
			buf := ctx.RawBuffer(int(min(remain, relayChunk)))
			if int64(len(buf)) > remain {
				buf = buf[:remain]
			}
			m, err := uc.c.Read(buf)
			if m > 0 {
				ctx.RawAdvance(m)
				remain -= int64(m)
			}
			if err != nil && m == 0 {
				// Mid-body failure: the head is already committed, so
				// the only honest signal left is truncation + close.
				w.pool.put(uc, false)
				p.fail(b)
				ctx.SetConnectionClose()
				return true, false, nil
			}
			if ctx.RawBuffered() >= relayFlushEvery {
				if ctx.RawFlush() != nil {
					w.pool.put(uc, false)
					ctx.SetConnectionClose()
					return true, false, nil
				}
			}
		}
		w.pool.put(uc, upKeepAlive && overread == 0)
		p.ok(b)
		return true, false, nil
	}

	// Close-delimited body: stream until upstream EOF; the downstream
	// response is close-delimited too (Connection: close sent above).
	// (The 101 tunnel takes its own path, in tunnel, before this.)
	ctx.RawWrite(leftover)
	for {
		buf := ctx.RawBuffer(relayChunk)
		m, err := uc.c.Read(buf)
		if m > 0 {
			ctx.RawAdvance(m)
		}
		if err != nil {
			break // EOF ends the body; other errors truncate it, same signal
		}
		if ctx.RawBuffered() >= relayFlushEvery {
			if ctx.RawFlush() != nil {
				break
			}
		}
	}
	w.pool.put(uc, false)
	p.ok(b)
	return true, false, nil
}

// tunnel relays a 101 Switching Protocols exchange: the upgrade head is
// forwarded verbatim (its Connection/Upgrade headers ARE the payload of
// the handshake) and from then on the proxy is a dumb pipe between the
// two sockets. The upstream→downstream direction pumps inline on the
// worker goroutine — the same worker that owns the client's flow group,
// so the byte relay inherits the inbound half's core locality — while
// one auxiliary goroutine pumps downstream→upstream. The tunnel
// occupies its worker for the connection's lifetime: a proxy expecting
// many concurrent upgrades should run with correspondingly more
// workers, or terminate WebSockets at the edge (the wsaff layer)
// instead of tunneling them.
func (p *Proxy) tunnel(ctx *httpaff.RequestCtx, w *proxyWorker, uc *upstreamConn, b *backendState, head, leftover []byte) (done, retry bool, ferr error) {
	ctx.BeginRawResponse()
	ctx.SetConnectionClose() // this transport never returns to HTTP
	ctx.RawWrite(head)
	ctx.RawWrite(leftover) // frames the backend pipelined behind its 101
	if ctx.RawFlush() != nil {
		w.pool.put(uc, false)
		return true, false, nil
	}
	p.ok(b)
	p.tunnels.Add(1)
	p.tunneled.Add(1)
	defer p.tunnels.Add(-1)

	// The tunnel pins the upstream leg's descriptor for the client
	// connection's whole lifetime — a load the accept-side connection
	// budget cannot see, since it only counts accepted sockets. Charge
	// the leg explicitly: oversubscription sheds parked connections
	// LIFO, exactly as if the leg had arrived through accept.
	if t := ctx.Server().Transport(); t != nil {
		t.ChargeConn(1)
		defer t.ChargeConn(-1)
	}

	down := ctx.NetConn()
	// The exchange deadline bounded the handshake; the tunnel lives as
	// long as the application protocol keeps it, and liveness is that
	// protocol's business (WebSocket ping/pong), not this hop's.
	uc.c.SetDeadline(time.Time{})
	down.SetReadDeadline(time.Time{})
	// Frames the client pipelined behind its upgrade request were
	// buffered by the HTTP layer; relay them before fresh reads.
	if res := ctx.Residual(); len(res) > 0 {
		if _, err := uc.c.Write(res); err != nil {
			w.pool.put(uc, false)
			return true, false, nil
		}
	}

	pumpDone := make(chan struct{})
	go func() {
		// Downstream→upstream. The buffer is per-tunnel (one allocation
		// per upgrade, amortized over the connection's lifetime) because
		// this goroutine outlives any worker scratch ownership.
		defer close(pumpDone)
		buf := make([]byte, relayChunk)
		for {
			n, err := down.Read(buf)
			if n > 0 {
				if _, werr := uc.c.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		uc.c.Close() // unblock the inline direction
	}()
	// Upstream→downstream, inline on the worker, through its scratch
	// buffer — the tunnel occupies the worker, so the scratch is free.
	buf := w.hbuf
	for {
		n, err := uc.c.Read(buf)
		if n > 0 {
			if _, werr := down.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	down.Close() // unblock the pump
	uc.c.Close()
	<-pumpDone
	w.pool.put(uc, false)
	return true, false, nil
}
