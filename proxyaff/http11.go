package proxyaff

import (
	"bytes"

	"affinityaccept/internal/http11"
)

// Byte-level HTTP/1.1 helpers for the relay path. The primitives
// shared with the httpaff parser live in internal/http11; what remains
// here is specific to parsing the *upstream* side of an exchange,
// where the proxy is the client.

var (
	crlf     = []byte("\r\n")
	crlfCRLF = []byte("\r\n\r\n")
)

func equalFold(b []byte, s string) bool { return http11.EqualFold(b, s) }
func trimOWS(b []byte) []byte           { return http11.TrimOWS(b) }

// parseContentLength parses an upstream response's Content-Length
// without allocating. Unlike the request-side parser's 2^30 cap (a
// request-smuggling bound on what this server will buffer), a relayed
// response body is streamed in 32 KiB chunks and never buffered whole,
// so the only cap is what an int64 byte count can express.
func parseContentLength(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
		if n > 1<<60 {
			return 0, false
		}
	}
	return n, true
}

// equalFoldBytes reports whether a and b are equal under ASCII A-Z
// folding, without allocating.
func equalFoldBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// tokenListContains reports whether the comma-separated token list
// (e.g. a Connection header value, "close, TE") contains the lowercase
// token s, ASCII case-insensitively. Shared with the wsaff upgrade
// check via internal/http11.
func tokenListContains(list []byte, s string) bool {
	return http11.TokenListContains(list, s)
}

// connectionNominates reports whether the Connection header value list
// nominates the header named name as connection-scoped (RFC 9110
// §7.6.1): nominated headers must be consumed by this hop, not
// forwarded.
func connectionNominates(list, name []byte) bool {
	for len(list) > 0 {
		var tok []byte
		if i := bytes.IndexByte(list, ','); i >= 0 {
			tok, list = list[:i], list[i+1:]
		} else {
			tok, list = list, nil
		}
		if equalFoldBytes(trimOWS(tok), name) {
			return true
		}
	}
	return false
}

// idempotentMethod reports whether the request method is safe to
// replay on a fresh connection after a stale pooled connection failed
// before yielding a response byte. A write failure does not prove the
// backend never *processed* the request — only idempotent methods
// (RFC 9110 §9.2.2, matching net/http.Transport's retry set) may be
// repeated without risking double execution.
func idempotentMethod(m []byte) bool {
	return equalFold(m, "get") || equalFold(m, "head") ||
		equalFold(m, "options") || equalFold(m, "trace")
}

// hopByHop reports whether the header named key is connection-scoped
// (RFC 9110 §7.6.1) and must not be forwarded across the proxy in
// either direction.
func hopByHop(key []byte) bool {
	switch len(key) {
	case 2:
		return equalFold(key, "te")
	case 7:
		return equalFold(key, "trailer") || equalFold(key, "upgrade")
	case 10:
		return equalFold(key, "connection") || equalFold(key, "keep-alive")
	case 16:
		return equalFold(key, "proxy-connection")
	case 17:
		return equalFold(key, "transfer-encoding")
	case 18:
		return equalFold(key, "proxy-authenticate")
	case 19:
		return equalFold(key, "proxy-authorization")
	}
	return false
}

// parseStatusLine extracts the status code from an upstream status line
// ("HTTP/1.1 200 OK"; the reason phrase is optional) and reports
// whether the upstream speaks keep-alive by default (HTTP/1.1). ok is
// false on anything else.
func parseStatusLine(line []byte) (code int, keepAlive, ok bool) {
	const prefix = len("HTTP/1.x ") // status code starts at 9
	if len(line) < prefix+3 || !bytes.HasPrefix(line, []byte("HTTP/1.")) || line[8] != ' ' {
		return 0, false, false
	}
	if v := line[7]; v == '1' {
		keepAlive = true
	} else if v != '0' {
		return 0, false, false
	}
	for _, c := range line[prefix : prefix+3] {
		if c < '0' || c > '9' {
			return 0, false, false
		}
		code = code*10 + int(c-'0')
	}
	if len(line) > prefix+3 && line[prefix+3] != ' ' {
		return 0, false, false
	}
	return code, keepAlive, true
}

// nextLine splits buf at the first CRLF, returning the line and the
// rest (nil when the terminator is absent, consuming everything).
func nextLine(buf []byte) (line, rest []byte) {
	if i := bytes.Index(buf, crlf); i >= 0 {
		return buf[:i], buf[i+2:]
	}
	return buf, nil
}
