package proxyaff

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestObsUpstreamLatency: a proxied round trip lands in the merged
// upstream exchange-latency histogram with a plausible value, and the
// Prometheus writer carries the proxy's series.
func TestObsUpstreamLatency(t *testing.T) {
	backend := startBackend(t, "origin")
	front, p := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	const rounds = 4
	for i := 0; i < rounds; i++ {
		fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
		if code, _, _ := readResponse(t, br); code != 200 {
			t.Fatalf("round %d: %d", i, code)
		}
	}

	m := p.UpstreamLatencySnapshot()
	if m.Count != rounds {
		t.Fatalf("exchange histogram count %d, want %d", m.Count, rounds)
	}
	if q := m.Quantile(0.5); q <= 0 || q > int64(5*time.Second) {
		t.Errorf("median exchange %v, not plausible for loopback", time.Duration(q))
	}

	var b strings.Builder
	p.WriteObsMetrics(&b)
	out := b.String()
	for _, series := range []string{
		"# TYPE affinity_upstream_exchange_seconds histogram",
		"affinity_upstream_exchange_seconds_bucket{le=\"+Inf\"} 4",
		`affinity_backend_ejections_total{backend=`,
		`affinity_backend_ejected{backend=`,
		"affinity_tunnels_active 0",
		"affinity_tunneled_total 0",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("proxy metrics missing %q", series)
		}
	}
}

// TestObsDisabledProxy: DisableObs removes the histogram but keeps the
// health/tunnel series, and the hot path stays hist-free.
func TestObsDisabledProxy(t *testing.T) {
	backend := startBackend(t, "origin")
	front, p := startEdge(t, Config{DisableObs: true}, backend)
	conn, br := dialFront(t, front)
	fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	if code, _, _ := readResponse(t, br); code != 200 {
		t.Fatal("proxied request failed")
	}

	if snap := p.UpstreamLatencySnapshot(); snap.Count != 0 {
		t.Error("disabled proxy recorded exchanges")
	}
	var b strings.Builder
	p.WriteObsMetrics(&b)
	if strings.Contains(b.String(), "affinity_upstream_exchange_seconds") {
		t.Error("disabled proxy still writes the exchange histogram")
	}
	if !strings.Contains(b.String(), "affinity_backend_ejections_total") {
		t.Error("health counters should survive DisableObs")
	}
}
