package proxyaff

import (
	"errors"
	"net"
	"time"

	"affinityaccept/internal/stats"
)

// errPoolExhausted reports a checkout that found MaxConnsPerBackend
// connections already open to the backend. With the serve layer's
// one-connection-per-worker model a worker needs exactly one upstream
// connection at a time, so hitting the cap means either a misconfigured
// cap or a pool being shared across workers — both worth failing loudly
// (the proxy answers 503).
var errPoolExhausted = errors.New("proxyaff: upstream connection pool exhausted")

// upstreamConn is one pooled connection to a backend. The peek state is
// initialized once at dial time so the per-checkout liveness probe
// (alive, in peek_linux.go) allocates nothing.
type upstreamConn struct {
	c    net.Conn
	addr string // backend address, for the put-side host lookup
	peek peekState
}

func (uc *upstreamConn) close() { uc.c.Close() }

// hostPool is the per-backend slot of an upstreamPool.
type hostPool struct {
	idle []*upstreamConn // LIFO: the most recently used — warmest — conn pops first
	open int             // idle + checked out
}

// upstreamPool is ONE WORKER's private pool of backend connections,
// keyed by backend address — the client-side dual of the paper's
// per-core accept queues, and of httpaff's per-worker request arenas.
// A process-wide pool (net/http.Transport's, say) lets any worker check
// out a connection whose TCP state, TLS buffers and kernel socket
// structures are warm in another core's cache; here a connection is
// dialed, used, parked idle and reused by exactly one worker, so the
// outbound half of a proxied request stays as core-local as the inbound
// half. The pool needs no lock: the serve layer runs handlers inline on
// the worker goroutine, so pool i is only ever touched from worker i.
// The counters are atomic solely so Stats can observe them from
// outside: Miss = dialed, Reuse = served from the idle list, Drop =
// released over the idle cap.
type upstreamPool struct {
	dialTimeout time.Duration
	maxIdle     int // idle conns kept per backend
	maxConns    int // open conns (idle + checked out) per backend; 0 = unlimited
	counters    stats.PoolCounters
	hosts       map[string]*hostPool

	// dialFn is the dial used for cold checkouts; tests stub it.
	dialFn func(addr string, timeout time.Duration) (net.Conn, error)
}

func netDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

func (p *upstreamPool) init(dialTimeout time.Duration, maxIdle, maxConns int) {
	p.dialTimeout = dialTimeout
	p.maxIdle = maxIdle
	p.maxConns = maxConns
	p.hosts = make(map[string]*hostPool)
	p.dialFn = netDial
}

func (p *upstreamPool) host(addr string) *hostPool {
	h, ok := p.hosts[addr]
	if !ok {
		h = &hostPool{}
		p.hosts[addr] = h
	}
	return h
}

// get checks out a connection to addr: the newest idle connection that
// passes the liveness peek, else a fresh dial. Idle connections that
// fail the peek — closed by the backend while parked, or carrying
// unsolicited bytes — are closed and skipped. reused reports whether
// the connection came off the idle list (and so might still race a
// backend close the peek missed; the caller's retry path covers that).
func (p *upstreamPool) get(addr string) (uc *upstreamConn, reused bool, err error) {
	h := p.host(addr)
	for n := len(h.idle); n > 0; n = len(h.idle) {
		uc = h.idle[n-1]
		h.idle[n-1] = nil
		h.idle = h.idle[:n-1]
		if uc.alive() {
			p.counters.Reuse()
			return uc, true, nil
		}
		uc.close()
		h.open--
	}
	if p.maxConns > 0 && h.open >= p.maxConns {
		return nil, false, errPoolExhausted
	}
	c, err := p.dialFn(addr, p.dialTimeout)
	if err != nil {
		return nil, false, err
	}
	p.counters.Miss()
	h.open++
	uc = &upstreamConn{c: c, addr: addr}
	uc.initPeek()
	return uc, false, nil
}

// put returns a checked-out connection. Reusable connections go back on
// the idle list (newest last) unless it is full, in which case they are
// dropped; non-reusable ones — errored, close-delimited, or carrying
// unread response bytes — are closed.
func (p *upstreamPool) put(uc *upstreamConn, reusable bool) {
	h := p.host(uc.addr)
	if !reusable {
		uc.close()
		h.open--
		return
	}
	if len(h.idle) >= p.maxIdle {
		p.counters.Drop()
		uc.close()
		h.open--
		return
	}
	h.idle = append(h.idle, uc)
}

// flushIdle closes every idle connection pooled for addr. The proxy
// calls it when a reused connection turns out stale mid-exchange: the
// rest of the idle list is from the same era (a backend restart kills
// them all together), so discarding it makes the retry — and the
// requests behind it — dial fresh instead of burning attempts on one
// dead conn after another.
func (p *upstreamPool) flushIdle(addr string) {
	h, ok := p.hosts[addr]
	if !ok {
		return
	}
	for _, uc := range h.idle {
		uc.close()
		h.open--
	}
	h.idle = h.idle[:0]
}

// idleCount reports the idle connections pooled for addr (tests).
func (p *upstreamPool) idleCount(addr string) int {
	if h, ok := p.hosts[addr]; ok {
		return len(h.idle)
	}
	return 0
}

// closeAll closes every idle connection. Only call it when the owning
// worker can no longer run handlers (after server shutdown).
func (p *upstreamPool) closeAll() {
	for _, h := range p.hosts {
		for _, uc := range h.idle {
			uc.close()
			h.open--
		}
		h.idle = h.idle[:0]
	}
}
