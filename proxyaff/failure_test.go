package proxyaff

import (
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/internal/testutil"
)

// waitFor is testutil.WaitFor: poll instead of sleep in
// timing-sensitive tests (ejection re-probe, idle-close reaping).
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	testutil.WaitFor(t, d, cond, msg)
}

// rawBackend runs a hand-rolled TCP "origin" whose per-connection
// behavior is the script — the tool for upstream misbehavior the
// httpaff layer would never emit. Deterministic and loopback-only.
func rawBackend(t *testing.T, script func(c net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.SetDeadline(time.Now().Add(10 * time.Second))
				script(c)
			}(c)
		}
	}()
	return l.Addr().String()
}

// readHead consumes one request head from the conn.
func readHead(c net.Conn) error {
	buf := make([]byte, 8192)
	n := 0
	for {
		m, err := c.Read(buf[n:])
		if err != nil {
			return err
		}
		n += m
		if strings.Contains(string(buf[:n]), "\r\n\r\n") {
			return nil
		}
	}
}

// TestProxyBackendDownAtDial: a backend nobody listens on answers 502
// and is passively ejected after EjectAfter consecutive failures.
func TestProxyBackendDownAtDial(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	p, err := New(Config{Backends: []string{dead}, Workers: 2, EjectAfter: 2, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	for i := 0; i < 3; i++ {
		fmt.Fprint(conn, "GET /x HTTP/1.1\r\nHost: edge\r\n\r\n")
		code, _, _ := readResponse(t, br)
		if code != 502 {
			t.Fatalf("request %d to dead backend: %d, want 502", i, code)
		}
	}
	st := p.Stats()
	if !st.Backends[0].Ejected {
		t.Errorf("backend not ejected after repeated dial failures: %+v", st.Backends[0])
	}
	if st.Backends[0].Ejections == 0 {
		t.Errorf("ejection not counted: %+v", st.Backends[0])
	}
}

// TestProxyFailoverToHealthyBackend: with one dead and one live
// backend, every request succeeds — the dial failure consumes the first
// attempt and the retry picks around it, then ejection steers
// subsequent requests away entirely.
func TestProxyFailoverToHealthyBackend(t *testing.T) {
	live := startBackend(t, "survivor")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	p, err := New(Config{
		Backends:    []string{dead, live.Addr().String()},
		Workers:     2,
		EjectAfter:  1,
		EjectFor:    time.Minute, // stays ejected for the whole test
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	for i := 0; i < 10; i++ {
		fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
		code, _, body := readResponse(t, br)
		if code != 200 || string(body) != "survivor" {
			t.Fatalf("request %d: %d %q", i, code, body)
		}
	}
	st := p.Stats()
	if !st.Backends[0].Ejected {
		t.Error("dead backend not ejected")
	}
	if st.Backends[1].Ejected {
		t.Error("healthy backend ejected")
	}
}

// TestProxyEjectionReprobeRecovery: a backend that dies is ejected;
// once it comes back and the ejection window expires, the next request
// re-probes it and clears the record — the full passive health cycle.
func TestProxyEjectionReprobeRecovery(t *testing.T) {
	// Learn a port, then free it so dials fail.
	seed := startBackend(t, "reborn")
	addr := seed.Addr().String()
	stopServer(t, seed)

	p, err := New(Config{
		Backends:    []string{addr},
		Workers:     2,
		EjectAfter:  1,
		EjectFor:    100 * time.Millisecond,
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	if code, _, _ := readResponse(t, br); code != 502 {
		t.Fatalf("dead backend answered %d, want 502", code)
	}
	if !p.Stats().Backends[0].Ejected {
		t.Fatal("backend not ejected")
	}

	// Resurrect the backend on the same address.
	r := httpaff.NewRouter()
	r.Handle("/whoami", func(ctx *httpaff.RequestCtx) { ctx.WriteString("reborn") })
	revived, err := httpaff.New(httpaff.Config{Addr: addr, Workers: 2, Handler: r.Serve})
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	revived.Start()
	t.Cleanup(func() { stopServer(t, revived) })

	// Each probe is a live request; once the ejection window lapses the
	// next one re-probes the revived backend and succeeds.
	waitFor(t, 5*time.Second, func() bool {
		fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
		code, _, body := readResponse(t, br)
		return code == 200 && string(body) == "reborn"
	}, "backend never recovered after the ejection window")
	st := p.Stats()
	if st.Backends[0].Ejected || st.Backends[0].ConsecutiveFails != 0 {
		t.Errorf("re-probe success did not clear the health record: %+v", st.Backends[0])
	}
}

// TestProxyBackendClosesMidResponse: the backend dies halfway through a
// Content-Length body. The head is already committed downstream, so the
// client must see a truncated body and a closed connection — never a
// re-framed success — and the backend is charged a failure.
func TestProxyBackendClosesMidResponse(t *testing.T) {
	const promised, sent = 1000, 100
	addr := rawBackend(t, func(c net.Conn) {
		if readHead(c) != nil {
			return
		}
		fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", promised)
		c.Write([]byte(strings.Repeat("x", sent)))
		// close (deferred) mid-body
	})
	p, err := New(Config{Backends: []string{addr}, Workers: 2, ExchangeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /x HTTP/1.1\r\nHost: edge\r\n\r\n")
	statusLine, err := br.ReadString('\n')
	if err != nil || !strings.Contains(statusLine, "200") {
		t.Fatalf("status %q: %v", statusLine, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) == "" {
			break
		}
	}
	body, err := io.ReadAll(br) // reads until the proxy closes
	if err != nil {
		t.Fatalf("reading truncated body: %v", err)
	}
	if len(body) >= promised {
		t.Fatalf("got %d body bytes from a backend that sent %d", len(body), sent)
	}
	if st := p.Stats(); st.Backends[0].ConsecutiveFails == 0 && st.Backends[0].Ejections == 0 {
		t.Error("mid-response close not charged to the backend")
	}
}

// TestProxyCloseDelimitedUpstream: an upstream response without
// Content-Length relays as a close-delimited response with an explicit
// Connection: close.
func TestProxyCloseDelimitedUpstream(t *testing.T) {
	addr := rawBackend(t, func(c net.Conn) {
		if readHead(c) != nil {
			return
		}
		fmt.Fprint(c, "HTTP/1.1 200 OK\r\nX-Legacy: 1\r\n\r\nold-school body")
	})
	p, err := New(Config{Backends: []string{addr}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /x HTTP/1.1\r\nHost: edge\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || string(body) != "old-school body" {
		t.Fatalf("%d %q", code, body)
	}
	if headers["connection"] != "close" {
		t.Fatalf("close-delimited relay must advertise close, got %q", headers["connection"])
	}
	if headers["x-legacy"] != "1" {
		t.Error("upstream header lost")
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("front connection open after close-delimited response: %v", err)
	}
}

// TestProxyUpstreamConnectionTokenList: 'Connection: close, TE' from
// the upstream is a token list — the conn must not be pooled for reuse,
// and the nominated/hop-by-hop tokens' headers must not relay.
func TestProxyUpstreamConnectionTokenList(t *testing.T) {
	addr := rawBackend(t, func(c net.Conn) {
		if readHead(c) != nil {
			return
		}
		fmt.Fprint(c, "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close, X-Conn-Scoped\r\nX-Conn-Scoped: v\r\nX-App: 1\r\n\r\nok")
		// deferred close
	})
	p, err := New(Config{Backends: []string{addr}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /x HTTP/1.1\r\nHost: edge\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || string(body) != "ok" {
		t.Fatalf("%d %q", code, body)
	}
	if _, leaked := headers["x-conn-scoped"]; leaked {
		t.Error("Connection-nominated upstream header relayed downstream")
	}
	if headers["x-app"] != "1" {
		t.Error("end-to-end upstream header lost")
	}
	// Second request on the same client conn: the 'close, ...' token
	// list must have kept the upstream conn out of the pool, so this
	// dials fresh rather than reusing a dying conn.
	fmt.Fprint(conn, "GET /x HTTP/1.1\r\nHost: edge\r\n\r\n")
	if code, _, _ := readResponse(t, br); code != 200 {
		t.Fatalf("second request: %d", code)
	}
	if st := p.Stats(); st.Pool.Reuses != 0 {
		t.Errorf("a Connection: close upstream conn was pooled and reused: %+v", st.Pool)
	}
}

// TestProxyChunkedUpstreamRejected: Transfer-Encoding from the upstream
// cannot be re-framed by the relay and answers 502.
func TestProxyChunkedUpstreamRejected(t *testing.T) {
	addr := rawBackend(t, func(c net.Conn) {
		if readHead(c) != nil {
			return
		}
		fmt.Fprint(c, "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n")
	})
	p, err := New(Config{Backends: []string{addr}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /x HTTP/1.1\r\nHost: edge\r\n\r\n")
	code, _, _ := readResponse(t, br)
	if code != 502 {
		t.Fatalf("chunked upstream: %d, want 502", code)
	}
}

// TestProxyPoolExhaustionAnswers503: a worker whose backend slots are
// all occupied answers 503 instead of queueing or dialing past the cap.
func TestProxyPoolExhaustionAnswers503(t *testing.T) {
	backend := startBackend(t, "origin")
	p, err := New(Config{Backends: []string{backend.Addr().String()}, Workers: 2, MaxConnsPerBackend: 1})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	// Occupy every worker's single slot from inside the package —
	// the one-connection-per-worker serve model cannot reach this state
	// through traffic, which is exactly why it must be a hard error.
	for i := range p.workers {
		p.workers[i].pool.host(backend.Addr().String()).open = 1
	}
	conn, br := dialFront(t, front)
	fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	code, _, _ := readResponse(t, br)
	if code != 503 {
		t.Fatalf("exhausted pool: %d, want 503", code)
	}
}

// TestProxyRecoversFromBackendIdleClose: the backend times out and
// closes a pooled idle upstream connection; the next proxied request
// must still succeed — on Linux the checkout peek discards the dead
// conn, elsewhere the retry-once path redials.
func TestProxyRecoversFromBackendIdleClose(t *testing.T) {
	r := httpaff.NewRouter()
	r.Handle("/whoami", func(ctx *httpaff.RequestCtx) { ctx.WriteString("origin") })
	backend, err := httpaff.New(httpaff.Config{Workers: 2, Handler: r.Serve, IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	backend.Start()
	t.Cleanup(func() { stopServer(t, backend) })

	p, err := New(Config{Backends: []string{backend.Addr().String()}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	for round := 0; round < 3; round++ {
		fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
		code, _, body := readResponse(t, br)
		if code != 200 || string(body) != "origin" {
			t.Fatalf("round %d: %d %q", round, code, body)
		}
		// Wait for the upstream conn to park on the backend and for the
		// backend's idle timeout to close it — observable as its parked
		// gauge rising then falling — so the next round provably runs
		// against a dead pooled connection.
		waitFor(t, 5*time.Second, func() bool { return backend.Stats().Parked >= 1 },
			"upstream conn never parked on the backend")
		waitFor(t, 5*time.Second, func() bool { return backend.Stats().Parked == 0 },
			"backend never reaped its idle upstream conn")
	}
	if st := p.Stats(); st.Backends[0].Ejected {
		t.Error("idle-closed upstream conns must not eject a healthy backend")
	}
}
