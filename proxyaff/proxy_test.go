package proxyaff

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"affinityaccept/httpaff"
)

// startBackend runs an httpaff origin server named name. Its handler
// reports which backend served (/whoami), echoes bodies (/echo), shows
// the headers it received (/headers), serves n bytes (/bytes?n=...) and
// 404s elsewhere.
func startBackend(t *testing.T, name string) *httpaff.Server {
	t.Helper()
	r := httpaff.NewRouter()
	r.Handle("/whoami", func(ctx *httpaff.RequestCtx) {
		ctx.WriteString(name)
	})
	r.Handle("/echo", func(ctx *httpaff.RequestCtx) {
		ctx.Write(ctx.Body())
	})
	r.Handle("/headers", func(ctx *httpaff.RequestCtx) {
		for i := 0; i < ctx.HeaderCount(); i++ {
			k, _ := ctx.HeaderAt(i)
			ctx.Write(k)
			ctx.WriteString("\n")
		}
	})
	r.Handle("/slow", func(ctx *httpaff.RequestCtx) {
		time.Sleep(20 * time.Millisecond)
		ctx.WriteString("slow")
	})
	r.Handle("/big", func(ctx *httpaff.RequestCtx) {
		n, _ := strconv.Atoi(string(ctx.Query()))
		ctx.SetHeader("X-Origin", name)
		for written := 0; written < n; {
			chunk := min(n-written, 4096)
			for i := 0; i < chunk; i++ {
				ctx.Write([]byte{'a' + byte((written+i)%26)})
			}
			written += chunk
		}
	})
	s, err := httpaff.New(httpaff.Config{Workers: 2, Handler: r.Serve, ServerName: name})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// startEdge runs the proxy in front of the given backends and returns
// the front server plus the proxy. Zero-value cfg fields get defaults;
// cfg.Backends is overwritten.
func startEdge(t *testing.T, cfg Config, backends ...*httpaff.Server) (*httpaff.Server, *Proxy) {
	t.Helper()
	cfg.Backends = cfg.Backends[:0]
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.Addr().String())
	}
	const workers = 2
	cfg.Workers = workers
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front, err := httpaff.New(httpaff.Config{
		Workers:        workers,
		Handler:        p.Serve,
		WorkerUpstream: p.PoolSnapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	front.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		front.Shutdown(ctx)
		p.Close()
	})
	return front, p
}

// startFront runs an httpaff server fronted by p, sized to p's worker
// count, with the upstream-pool stats hook wired.
func startFront(t *testing.T, p *Proxy) *httpaff.Server {
	t.Helper()
	front, err := httpaff.New(httpaff.Config{
		Workers:        p.cfg.Workers,
		Handler:        p.Serve,
		WorkerUpstream: p.PoolSnapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	front.Start()
	t.Cleanup(func() {
		stopServer(t, front)
		p.Close()
	})
	return front
}

func stopServer(t *testing.T, s *httpaff.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Logf("shutdown: %v", err)
	}
}

func dialFront(t *testing.T, s *httpaff.Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

// readResponse parses one response: code, headers (lowercased keys),
// body (Content-Length-framed, or read-to-EOF when absent).
func readResponse(t *testing.T, br *bufio.Reader) (int, map[string]string, []byte) {
	t.Helper()
	statusLine, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read status line: %v", err)
	}
	parts := strings.SplitN(strings.TrimSpace(statusLine), " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		t.Fatalf("bad status line %q", statusLine)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		t.Fatalf("bad status code in %q", statusLine)
	}
	headers := make(map[string]string)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read header: %v", err)
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			t.Fatalf("bad header line %q", line)
		}
		headers[strings.ToLower(k)] = strings.TrimSpace(v)
	}
	if cl, ok := headers["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil {
			t.Fatalf("bad Content-Length %q", cl)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			t.Fatalf("read body: %v", err)
		}
		return code, headers, body
	}
	body, err := io.ReadAll(br)
	if err != nil {
		t.Fatalf("read close-delimited body: %v", err)
	}
	return code, headers, body
}

// TestProxyBasic: a request relays through with status, body and
// app headers intact, and the backend's identity headers survive.
func TestProxyBasic(t *testing.T) {
	backend := startBackend(t, "origin-a")
	front, _ := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || string(body) != "origin-a" {
		t.Fatalf("proxied GET: %d %q", code, body)
	}
	if headers["server"] != "origin-a" {
		t.Fatalf("backend Server header not relayed: %q", headers["server"])
	}
	if headers["connection"] == "close" {
		t.Fatal("keep-alive proxied response advertised close")
	}

	// 404s relay too.
	fmt.Fprint(conn, "GET /absent HTTP/1.1\r\nHost: edge\r\n\r\n")
	code, _, _ = readResponse(t, br)
	if code != 404 {
		t.Fatalf("backend 404 arrived as %d", code)
	}
}

// TestProxyPostBody: request bodies forward upstream with framing
// intact.
func TestProxyPostBody(t *testing.T) {
	backend := startBackend(t, "origin")
	front, _ := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	payload := strings.Repeat("payload!", 100)
	fmt.Fprintf(conn, "POST /echo HTTP/1.1\r\nHost: edge\r\nContent-Length: %d\r\n\r\n%s", len(payload), payload)
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != payload {
		t.Fatalf("POST through proxy: %d, body %d bytes want %d", code, len(body), len(payload))
	}
}

// TestProxyKeepAliveReuse is the tentpole's proof in unit form: across
// many sequential requests on one client connection, the worker checks
// its upstream connection out of its own pool — reuse, not redial.
func TestProxyKeepAliveReuse(t *testing.T) {
	backend := startBackend(t, "origin")
	front, p := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	const reqs = 40
	for i := 0; i < reqs; i++ {
		fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
		if code, _, _ := readResponse(t, br); code != 200 {
			t.Fatalf("request %d: %d", i, code)
		}
	}
	st := p.Stats()
	if st.Pool.Gets() < reqs {
		t.Fatalf("upstream gets = %d, want >= %d", st.Pool.Gets(), reqs)
	}
	if pct := st.Pool.ReusePct(); pct < 90 {
		t.Fatalf("upstream reuse = %.1f%% (misses %d of %d), want >= 90%%",
			pct, st.Pool.Misses, st.Pool.Gets())
	}
	// The same counters must surface through the transport snapshot.
	fst := front.Stats()
	if fst.Upstream != st.Pool {
		t.Fatalf("serve.Stats.Upstream %+v != proxy pool %+v", fst.Upstream, st.Pool)
	}
	var sum uint64
	for _, wkr := range fst.Workers {
		sum += wkr.Upstream.Gets()
	}
	if sum != fst.Upstream.Gets() {
		t.Fatalf("per-worker upstream gets sum %d != aggregate %d", sum, fst.Upstream.Gets())
	}
}

// TestProxyPolicies: one client connection stays on one worker, so
// worker-pinned policy must answer from a single backend while
// round-robin alternates.
func TestProxyPolicies(t *testing.T) {
	a := startBackend(t, "origin-a")
	b := startBackend(t, "origin-b")

	ask := func(front *httpaff.Server, n int) map[string]int {
		conn, br := dialFront(t, front)
		got := map[string]int{}
		for i := 0; i < n; i++ {
			fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
			code, _, body := readResponse(t, br)
			if code != 200 {
				t.Fatalf("request %d: %d", i, code)
			}
			got[string(body)]++
		}
		conn.Close()
		return got
	}

	pinnedFront, _ := startEdge(t, Config{Policy: WorkerPinned}, a, b)
	if got := ask(pinnedFront, 10); len(got) != 1 {
		t.Errorf("worker-pinned answers from %d backends on one connection, want 1: %v", len(got), got)
	}

	rrFront, _ := startEdge(t, Config{Policy: RoundRobin}, a, b)
	if got := ask(rrFront, 10); got["origin-a"] != 5 || got["origin-b"] != 5 {
		t.Errorf("round-robin split = %v, want 5/5", got)
	}
}

// TestProxyLargeBodyStreams relays a body big enough to cross the
// mid-stream flush threshold several times and verifies every byte.
func TestProxyLargeBodyStreams(t *testing.T) {
	backend := startBackend(t, "origin")
	front, _ := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	const size = 256 << 10 // 8x the flush threshold
	fmt.Fprintf(conn, "GET /big?%d HTTP/1.1\r\nHost: edge\r\n\r\n", size)
	code, headers, body := readResponse(t, br)
	if code != 200 || len(body) != size {
		t.Fatalf("big body: %d, %d bytes want %d", code, len(body), size)
	}
	if headers["x-origin"] != "origin" {
		t.Fatalf("app header lost on streamed response: %q", headers["x-origin"])
	}
	for i, c := range body {
		if c != 'a'+byte(i%26) {
			t.Fatalf("body corrupted at byte %d: %q", i, c)
		}
	}
	// A keep-alive request must still work on the same connection:
	// framing survived the streamed relay.
	fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	if code, _, body := readResponse(t, br); code != 200 || string(body) != "origin" {
		t.Fatalf("request after streamed body: %d %q", code, body)
	}
}

// TestProxyHopByHopFiltering: connection-scoped request headers stop at
// the proxy; end-to-end ones pass.
func TestProxyHopByHopFiltering(t *testing.T) {
	backend := startBackend(t, "origin")
	front, _ := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /headers HTTP/1.1\r\nHost: edge\r\n"+
		"X-App: yes\r\nProxy-Connection: keep-alive\r\nUpgrade: h2c\r\nTrailer: Expires\r\n\r\n")
	code, _, body := readResponse(t, br)
	if code != 200 {
		t.Fatalf("headers probe: %d", code)
	}
	seen := string(body)
	if !strings.Contains(seen, "X-App") || !strings.Contains(seen, "Host") {
		t.Errorf("end-to-end headers dropped; backend saw:\n%s", seen)
	}
	for _, hop := range []string{"Proxy-Connection", "Upgrade", "Trailer"} {
		if strings.Contains(seen, hop) {
			t.Errorf("hop-by-hop header %s forwarded; backend saw:\n%s", hop, seen)
		}
	}

	// Headers nominated by the client's Connection header are
	// connection-scoped too (RFC 9110 §7.6.1) and must stop here.
	fmt.Fprint(conn, "GET /headers HTTP/1.1\r\nHost: edge\r\n"+
		"Connection: x-internal-token\r\nX-Internal-Token: secret\r\nX-Public: 1\r\n\r\n")
	code, _, body = readResponse(t, br)
	if code != 200 {
		t.Fatalf("nominated-header probe: %d", code)
	}
	seen = string(body)
	if strings.Contains(seen, "X-Internal-Token") {
		t.Errorf("Connection-nominated header forwarded; backend saw:\n%s", seen)
	}
	if !strings.Contains(seen, "X-Public") {
		t.Errorf("non-nominated header dropped; backend saw:\n%s", seen)
	}
}

// TestProxyClientClose: a client's Connection: close makes the proxied
// response advertise close and the front connection hang up, while the
// upstream connection stays pooled for the next client.
func TestProxyClientClose(t *testing.T) {
	backend := startBackend(t, "origin")
	front, p := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\nConnection: close\r\n\r\n")
	code, headers, body := readResponse(t, br)
	if code != 200 || string(body) != "origin" {
		t.Fatalf("%d %q", code, body)
	}
	if headers["connection"] != "close" {
		t.Fatalf("Connection header %q, want close", headers["connection"])
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("front connection still open: %v", err)
	}
	// The upstream conns must not have been burned with the client
	// conn: across many short client connections each worker dials at
	// most once and reuses thereafter.
	const conns = 8
	for i := 0; i < conns; i++ {
		c, r := dialFront(t, front)
		fmt.Fprint(c, "GET /whoami HTTP/1.1\r\nHost: edge\r\nConnection: close\r\n\r\n")
		if code, _, _ := readResponse(t, r); code != 200 {
			t.Fatalf("follow-up connection %d failed", i)
		}
		c.Close()
	}
	if st := p.Stats(); st.Pool.Misses > uint64(front.Workers()) {
		t.Errorf("upstream pool dialed %d times for %d workers — client closes burned pooled conns: %+v",
			st.Pool.Misses, front.Workers(), st.Pool)
	}
}

// TestProxyHead: HEAD relays the Content-Length without body bytes, and
// the upstream connection survives.
func TestProxyHead(t *testing.T) {
	backend := startBackend(t, "origin")
	front, _ := startEdge(t, Config{}, backend)
	conn, br := dialFront(t, front)

	// Pipeline a GET right behind the HEAD: any leaked body bytes would
	// corrupt the second response.
	fmt.Fprint(conn, "HEAD /whoami HTTP/1.1\r\nHost: edge\r\n\r\nGET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	statusLine, err := br.ReadString('\n')
	if err != nil || !strings.Contains(statusLine, "200") {
		t.Fatalf("HEAD status %q: %v", statusLine, err)
	}
	var clen string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) == "" {
			break
		}
		if v, ok := strings.CutPrefix(strings.ToLower(line), "content-length:"); ok {
			clen = strings.TrimSpace(v)
		}
	}
	if clen != strconv.Itoa(len("origin")) {
		t.Fatalf("HEAD Content-Length %q, want %d", clen, len("origin"))
	}
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != "origin" {
		t.Fatalf("GET after HEAD: %d %q — HEAD leaked body bytes", code, body)
	}
}

// TestProxyWorkerMismatch: a proxy sized for fewer workers than the
// serving server answers 500 rather than racing another worker's pool.
func TestProxyWorkerMismatch(t *testing.T) {
	backend := startBackend(t, "origin")
	p, err := New(Config{Backends: []string{backend.Addr().String()}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	front, err := httpaff.New(httpaff.Config{Workers: 2, Handler: p.Serve})
	if err != nil {
		t.Fatal(err)
	}
	front.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		front.Shutdown(ctx)
		p.Close()
	}()

	saw := map[int]bool{}
	for i := 0; i < 20 && len(saw) < 2; i++ {
		conn, err := net.Dial("tcp", front.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\nConnection: close\r\n\r\n")
		code, _, _ := readResponse(t, bufio.NewReader(conn))
		saw[code] = true
		conn.Close()
	}
	if !saw[500] {
		t.Skip("every connection landed on worker 0; cannot observe the mismatch")
	}
	if saw[200] && !saw[500] {
		t.Fatal("worker 1 requests should answer 500")
	}
}

// TestConfigValidation pins the constructor's error cases.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty Backends accepted")
	}
	if _, err := New(Config{Backends: []string{""}}); err == nil {
		t.Error("empty backend address accepted")
	}
	if _, err := New(Config{Backends: []string{"h:1"}, Policy: Policy(9)}); err == nil {
		t.Error("unknown policy accepted")
	}
	if p, err := New(Config{Backends: []string{"h:1"}, ExchangeTimeout: -1}); err != nil || p.cfg.ExchangeTimeout != 0 {
		t.Errorf("negative ExchangeTimeout should mean no deadline, got %v (err %v)", p.cfg.ExchangeTimeout, err)
	}
	p, err := New(Config{Backends: []string{"h:1"}})
	if err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if p.cfg.MaxIdlePerBackend <= 0 || p.cfg.EjectAfter <= 0 {
		t.Error("defaults not applied")
	}
}
