//go:build linux

package proxyaff

import (
	"syscall"
	"unsafe"
)

// peekState carries the pre-built machinery for the checkout liveness
// probe: one non-blocking MSG_PEEK recv on the pooled connection's
// descriptor. Everything — the RawConn, the callback closure, the peek
// byte — is allocated once at dial time, so the per-checkout probe
// costs one syscall and zero allocations, keeping the proxy's
// steady-state path allocation-free.
type peekState struct {
	rc   syscall.RawConn
	fn   func(fd uintptr) bool
	buf  [1]byte
	live bool
}

// initPeek prepares uc's peek state. Connections without raw descriptor
// access (test doubles) keep rc nil and are treated optimistically.
func (uc *upstreamConn) initPeek() {
	sc, ok := uc.c.(syscall.Conn)
	if !ok {
		return
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return
	}
	p := &uc.peek
	p.rc = rc
	p.fn = func(fd uintptr) bool {
		n, _, errno := syscall.Syscall6(syscall.SYS_RECVFROM, fd,
			uintptr(unsafe.Pointer(&p.buf[0])), 1,
			syscall.MSG_PEEK|syscall.MSG_DONTWAIT, 0, 0)
		// EAGAIN — open with nothing to read — is exactly what a healthy
		// idle keep-alive connection looks like. Zero bytes with no
		// error is EOF (the backend closed while we idled); readable
		// bytes are an unsolicited or left-over response. Both mean the
		// connection must not carry another request.
		p.live = errno == syscall.EAGAIN
		_ = n
		return true
	}
}

// alive reports whether the pooled connection is still open and quiet.
// It never blocks: the callback runs immediately and MSG_DONTWAIT keeps
// the recv non-blocking regardless of socket mode.
func (uc *upstreamConn) alive() bool {
	p := &uc.peek
	if p.rc == nil {
		return true // no descriptor access: optimistic, the retry path covers it
	}
	if err := p.rc.Read(p.fn); err != nil {
		return false
	}
	return p.live
}
