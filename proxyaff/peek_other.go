//go:build !linux

package proxyaff

// peekState is empty off Linux: without a portable non-blocking
// MSG_PEEK, checkout liveness is optimistic and staleness is caught by
// the proxy's retry-once path — a reused connection that dies before
// yielding a response byte is discarded and the request repeated on a
// fresh dial.
type peekState struct{}

func (uc *upstreamConn) initPeek() {}

// alive optimistically reports true; see peekState.
func (uc *upstreamConn) alive() bool { return true }
