package proxyaff

import (
	"bytes"
	"context"
	"io"
	"net"
	"runtime"
	"strconv"
	"testing"
	"time"

	"affinityaccept/httpaff"
)

var benchBody = []byte("hello through the core-local edge!")

// startBenchEdge builds the full in-process chain — httpaff backend,
// proxyaff edge, one warm keep-alive client connection — and learns the
// fixed response length from a warm-up exchange.
func startBenchEdge(tb testing.TB) (*Proxy, net.Conn, int) {
	tb.Helper()
	backend, err := httpaff.New(httpaff.Config{
		Workers: 2,
		Handler: func(ctx *httpaff.RequestCtx) { ctx.Write(benchBody) },
	})
	if err != nil {
		tb.Fatal(err)
	}
	backend.Start()
	p, err := New(Config{Backends: []string{backend.Addr().String()}, Workers: 2, Policy: WorkerPinned})
	if err != nil {
		tb.Fatal(err)
	}
	front, err := httpaff.New(httpaff.Config{Workers: 2, Handler: p.Serve, WorkerUpstream: p.PoolSnapshot})
	if err != nil {
		tb.Fatal(err)
	}
	front.Start()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		front.Shutdown(ctx)
		p.Close()
		backend.Shutdown(ctx)
	})

	conn, err := net.Dial("tcp", front.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Minute))

	if _, err := conn.Write(benchRequest); err != nil {
		tb.Fatal(err)
	}
	buf := make([]byte, 8192)
	n := 0
	for {
		m, err := conn.Read(buf[n:])
		if err != nil {
			tb.Fatal(err)
		}
		n += m
		i := bytes.Index(buf[:n], []byte("\r\n\r\n"))
		if i < 0 {
			continue
		}
		cl := bytes.Index(buf[:i], []byte("Content-Length: "))
		if cl < 0 {
			tb.Fatalf("no Content-Length in %q", buf[:i])
		}
		end := bytes.IndexByte(buf[cl:], '\r') + cl
		size, err := strconv.Atoi(string(buf[cl+len("Content-Length: ") : end]))
		if err != nil {
			tb.Fatal(err)
		}
		total := i + 4 + size
		for n < total {
			m, err := conn.Read(buf[n:total])
			if err != nil {
				tb.Fatal(err)
			}
			n += m
		}
		return p, conn, total
	}
}

var benchRequest = []byte("GET /bench HTTP/1.1\r\nHost: edge\r\nUser-Agent: affinity-bench\r\n\r\n")

const pipelineDepth = 64

// BenchmarkProxiedPipelinedKeepAlive is the acceptance benchmark:
// pipelined keep-alive HTTP/1.1 through the full client → proxy →
// backend chain over real loopback TCP, measured process-wide. It
// asserts the steady-state path — both servers' arenas, the relay's
// scratch buffers AND the per-worker upstream pool — allocates zero
// objects per proxied request (engaged once b.N is steady-state sized).
func BenchmarkProxiedPipelinedKeepAlive(b *testing.B) {
	_, conn, respLen := startBenchEdge(b)
	batchReq := bytes.Repeat(benchRequest, pipelineDepth)
	batchResp := make([]byte, respLen*pipelineDepth)

	// One full batch outside the window warms both arenas, the park
	// wrappers, the pooled upstream conn and the client buffers.
	if _, err := conn.Write(batchReq); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(conn, batchResp); err != nil {
		b.Fatal(err)
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.ResetTimer()
	for served := 0; served < b.N; {
		depth := pipelineDepth
		if remaining := b.N - served; remaining < depth {
			depth = remaining
		}
		if _, err := conn.Write(batchReq[:depth*len(benchRequest)]); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, batchResp[:depth*respLen]); err != nil {
			b.Fatal(err)
		}
		served += depth
	}
	b.StopTimer()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if b.N >= 1000 {
		perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
		if perOp >= 1 {
			b.Fatalf("%.2f allocs per proxied request on the steady-state path, want 0", perOp)
		}
	}
}

// TestProxySteadyStateZeroAlloc enforces the benchmark's claim in a
// plain test run: after warm-up, a thousand proxied pipelined requests
// allocate zero objects per request process-wide — and the upstream
// pool serves them at ≥ 99% worker-local reuse.
func TestProxySteadyStateZeroAlloc(t *testing.T) {
	if runtime.GOOS != "linux" {
		// The zero-allocation claim covers the checkout path INCLUDING
		// the MSG_PEEK liveness probe, which peek_other.go stubs out off
		// Linux — the numbers would pass there without testing the
		// probe. Skip loudly rather than certify the wrong path.
		t.Skip("zero-alloc checkout includes the Linux MSG_PEEK probe; off Linux peek_other.go " +
			"bypasses it and a pass here would not certify the production path")
	}
	p, conn, respLen := startBenchEdge(t)
	const depth, batches = 50, 20
	batchReq := bytes.Repeat(benchRequest, depth)
	batchResp := make([]byte, respLen*depth)
	roundTrip := func() {
		if _, err := conn.Write(batchReq); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, batchResp); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip()
	roundTrip()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < batches; i++ {
		roundTrip()
	}
	runtime.ReadMemStats(&after)
	perReq := float64(after.Mallocs-before.Mallocs) / float64(depth*batches)
	if perReq >= 1 {
		t.Fatalf("steady-state proxying allocates %.2f objects per request, want 0 "+
			"(total %d mallocs over %d requests)", perReq, after.Mallocs-before.Mallocs, depth*batches)
	}
	st := p.Stats()
	if pct := st.Pool.ReusePct(); pct < 99 {
		t.Fatalf("upstream pool reuse %.1f%% in steady state, want >= 99%% (%d misses of %d gets)",
			pct, st.Pool.Misses, st.Pool.Gets())
	}
	t.Logf("steady state: %.3f allocs/request (%d mallocs over %d requests), upstream reuse %.2f%%",
		perReq, after.Mallocs-before.Mallocs, depth*batches, st.Pool.ReusePct())
}
