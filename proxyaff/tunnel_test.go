package proxyaff

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/wsaff"
)

// startWSBackend runs a wsaff echo origin and returns its httpaff
// server.
func startWSBackend(t *testing.T) *httpaff.Server {
	t.Helper()
	ws, err := wsaff.New(wsaff.Config{
		Workers:   2,
		OnMessage: func(c *wsaff.Conn, op wsaff.Op, payload []byte) { c.Send(op, payload) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ws.Start()
	r := httpaff.NewRouter()
	r.Handle("/ws", func(ctx *httpaff.RequestCtx) { ws.Upgrade(ctx) })
	s, err := httpaff.New(httpaff.Config{Workers: 2, Handler: r.Serve})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ws.Close()
	})
	return s
}

const tunnelTestKey = "dGhlIHNhbXBsZSBub25jZQ=="

// maskFrame builds one masked client text frame (small payloads only).
func maskFrame(payload string) []byte {
	key := [4]byte{0xDE, 0xAD, 0xBE, 0xEF}
	b := []byte{0x81, 0x80 | byte(len(payload)), key[0], key[1], key[2], key[3]}
	for i := 0; i < len(payload); i++ {
		b = append(b, payload[i]^key[i&3])
	}
	return b
}

// readServerFrame reads one unmasked small-frame from the server side.
func readServerFrame(t *testing.T, br *bufio.Reader) (op byte, payload []byte) {
	t.Helper()
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if hdr[1]&0x80 != 0 || hdr[1]&0x7F > 125 {
		t.Fatalf("unexpected server frame header % x", hdr)
	}
	payload = make([]byte, hdr[1]&0x7F)
	if _, err := io.ReadFull(br, payload); err != nil {
		t.Fatal(err)
	}
	return hdr[0] & 0x0F, payload
}

// TestProxyTunnelsWebSocketUpgrade is the end-to-end 101 path: client →
// proxyaff edge → wsaff backend, with the proxy relaying raw frames in
// both directions after the handshake.
func TestProxyTunnelsWebSocketUpgrade(t *testing.T) {
	backend := startWSBackend(t)
	p, err := New(Config{Backends: []string{backend.Addr().String()}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /ws HTTP/1.1\r\nHost: edge\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"+
		"Sec-WebSocket-Key: "+tunnelTestKey+"\r\nSec-WebSocket-Version: 13\r\n\r\n")
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		t.Fatalf("tunnel status %q: %v", status, err)
	}
	headers := make(map[string]string)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		k, v, _ := strings.Cut(line, ":")
		headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	if !strings.EqualFold(headers["upgrade"], "websocket") {
		t.Errorf("relayed 101 lost its Upgrade header: %v", headers)
	}
	if headers["sec-websocket-accept"] == "" {
		t.Error("relayed 101 lost the accept key")
	}

	// Frames flow both ways through the relay.
	for i := 0; i < 3; i++ {
		msg := fmt.Sprintf("through the tunnel %d", i)
		if _, err := conn.Write(maskFrame(msg)); err != nil {
			t.Fatal(err)
		}
		op, payload := readServerFrame(t, br)
		if op != 1 || string(payload) != msg {
			t.Fatalf("round %d: op=%d %q", i, op, payload)
		}
	}
	if st := p.Stats(); st.Tunneled != 1 || st.ActiveTunnels != 1 {
		t.Errorf("tunnel counters = %d active / %d total, want 1/1", st.ActiveTunnels, st.Tunneled)
	}

	// Client hangup tears the tunnel down end to end.
	conn.Close()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().ActiveTunnels != 0 {
		if time.Now().After(deadline) {
			t.Fatal("tunnel never tore down after client close")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProxyTunnelRelaysPipelinedClientFrames: frames the client sends
// in the same segment as its upgrade request are buffered by the HTTP
// layer and must be relayed to the backend, not lost.
func TestProxyTunnelRelaysPipelinedClientFrames(t *testing.T) {
	backend := startWSBackend(t)
	p, err := New(Config{Backends: []string{backend.Addr().String()}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	blob := []byte("GET /ws HTTP/1.1\r\nHost: edge\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + tunnelTestKey + "\r\nSec-WebSocket-Version: 13\r\n\r\n")
	blob = append(blob, maskFrame("eager frame")...)
	if _, err := conn.Write(blob); err != nil {
		t.Fatal(err)
	}
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		t.Fatalf("status %q: %v", status, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimRight(line, "\r\n") == "" {
			break
		}
	}
	op, payload := readServerFrame(t, br)
	if op != 1 || string(payload) != "eager frame" {
		t.Fatalf("pipelined frame echoed as op=%d %q", op, payload)
	}
}

// TestProxyUpgradeRefusedStaysHTTP: a backend that answers an upgrade
// request with a normal response (no 101) keeps the connection in plain
// HTTP relay — and it remains usable for the next request.
func TestProxyUpgradeRefusedStaysHTTP(t *testing.T) {
	origin := startBackend(t, "plain") // no /ws route: answers 404
	p, err := New(Config{Backends: []string{origin.Addr().String()}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front := startFront(t, p)
	conn, br := dialFront(t, front)

	fmt.Fprint(conn, "GET /ws HTTP/1.1\r\nHost: edge\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"+
		"Sec-WebSocket-Key: "+tunnelTestKey+"\r\nSec-WebSocket-Version: 13\r\n\r\n")
	code, _, _ := readResponse(t, br)
	if code != 404 {
		t.Fatalf("refused upgrade: %d, want the backend's 404", code)
	}
	fmt.Fprint(conn, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	code, _, body := readResponse(t, br)
	if code != 200 || string(body) != "plain" {
		t.Fatalf("follow-up request: %d %q", code, body)
	}
	if st := p.Stats(); st.Tunneled != 0 {
		t.Errorf("refused upgrade counted as a tunnel: %d", st.Tunneled)
	}
}

// TestTunnelUpstreamLegChargesBudget: the tunnel's upstream descriptor
// is charged against the front transport's connection budget for the
// tunnel's lifetime, so a budget sized for accepted sockets cannot be
// silently doubled by upgrade traffic — the charge squeezes out parked
// idle connections LIFO, exactly like an accepted newcomer would.
func TestTunnelUpstreamLegChargesBudget(t *testing.T) {
	backend := startWSBackend(t)
	p, err := New(Config{Backends: []string{backend.Addr().String()}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	front, err := httpaff.New(httpaff.Config{
		Workers:        2,
		Handler:        p.Serve,
		WorkerUpstream: p.PoolSnapshot,
		MaxConns:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	front.Start()
	t.Cleanup(func() {
		stopServer(t, front)
		p.Close()
	})

	// A keep-alive HTTP conn parks: one budget slot held idle. (The
	// wsaff backend 404s unknown paths — any response parks the conn.)
	idle, ibr := dialFront(t, front)
	fmt.Fprint(idle, "GET /whoami HTTP/1.1\r\nHost: edge\r\n\r\n")
	if code, _, _ := readResponse(t, ibr); code != 404 {
		t.Fatal("warmup request failed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for front.Transport().Parked() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("idle conn never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// The tunnel claims two slots: its client leg (accepted) and its
	// upstream leg (charged). Budget 2 is now oversubscribed by one —
	// the parked idle conn must be shed to make room.
	conn, br := dialFront(t, front)
	fmt.Fprint(conn, "GET /ws HTTP/1.1\r\nHost: edge\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n"+
		"Sec-WebSocket-Key: "+tunnelTestKey+"\r\nSec-WebSocket-Version: 13\r\n\r\n")
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		t.Fatalf("tunnel status %q: %v", status, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimRight(line, "\r\n") == "" {
			break
		}
	}

	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := idle.Read(make([]byte, 1)); err == nil || n > 0 {
		t.Fatalf("idle conn survived the tunnel's budget charge (n=%d err=%v)", n, err)
	}
	st := front.Transport().Stats()
	if st.ShedParked != 1 {
		t.Errorf("ShedParked = %d, want 1", st.ShedParked)
	}
	if st.LivePeak > 2 {
		t.Errorf("LivePeak = %d exceeds the budget 2", st.LivePeak)
	}

	// The tunnel itself is untouched: frames still flow.
	if _, err := conn.Write(maskFrame("still flowing")); err != nil {
		t.Fatal(err)
	}
	if op, payload := readServerFrame(t, br); op != 1 || string(payload) != "still flowing" {
		t.Fatalf("tunnel broken after charge: op=%d %q", op, payload)
	}

	// Teardown releases both slots.
	conn.Close()
	deadline = time.Now().Add(5 * time.Second)
	for front.Transport().Live() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("live count stuck at %d after tunnel teardown", front.Transport().Live())
		}
		time.Sleep(time.Millisecond)
	}
}
