package wsaff

import (
	"bytes"
	"testing"
)

func TestDecodeHeaderRoundTrip(t *testing.T) {
	payloads := []int{0, 1, 125, 126, 127, 1 << 10, 1<<16 - 1, 1 << 16, 1 << 20}
	for _, n := range payloads {
		for _, fin := range []bool{true, false} {
			for _, op := range []Op{OpText, OpBinary, OpContinuation} {
				if !fin && op == OpContinuation && n == 0 {
					continue // still legal; just avoid duplicating cases
				}
				b := appendHeader(nil, fin, op, n)
				h, hn, err := decodeHeader(b)
				if err != nil {
					t.Fatalf("n=%d fin=%v op=%d: %v", n, fin, op, err)
				}
				if hn != len(b) {
					t.Fatalf("n=%d: header len %d, want %d", n, hn, len(b))
				}
				if h.fin != fin || h.op != op || h.length != int64(n) || h.masked {
					t.Fatalf("n=%d fin=%v op=%d: decoded %+v", n, fin, op, h)
				}
			}
		}
	}
}

func TestDecodeMaskedRoundTrip(t *testing.T) {
	key := [4]byte{0xA1, 0xB2, 0xC3, 0xD4}
	payload := []byte("masked payload, longer than four bytes")
	b := appendMaskedFrame(nil, true, OpBinary, key, payload)
	h, hn, err := decodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if !h.masked || h.key != key || h.length != int64(len(payload)) {
		t.Fatalf("decoded %+v", h)
	}
	got := append([]byte(nil), b[hn:hn+int(h.length)]...)
	unmask(h.key, 0, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("unmasked %q, want %q", got, payload)
	}
	// Chunked unmasking must agree with one-shot unmasking.
	got2 := append([]byte(nil), b[hn:hn+int(h.length)]...)
	off := 0
	for i := 0; i < len(got2); i += 7 {
		end := min(i+7, len(got2))
		off = unmask(h.key, off, got2[i:end])
	}
	if !bytes.Equal(got2, payload) {
		t.Fatalf("chunked unmask %q, want %q", got2, payload)
	}
}

func TestDecodeHeaderIncomplete(t *testing.T) {
	full := appendMaskedFrame(nil, true, OpText, [4]byte{1, 2, 3, 4}, bytes.Repeat([]byte("x"), 300))
	for i := 0; i < 8; i++ { // all prefixes short of the 8-byte header
		if _, n, err := decodeHeader(full[:i]); n != 0 || err != nil {
			t.Fatalf("prefix %d: n=%d err=%v, want incomplete", i, n, err)
		}
	}
}

func TestDecodeHeaderViolations(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"rsv1", []byte{0xC1, 0x80, 0, 0, 0, 0}, errRSVBits},
		{"reserved data opcode", []byte{0x83, 0x80, 0, 0, 0, 0}, errReservedOpcode},
		{"reserved control opcode", []byte{0x8B, 0x80, 0, 0, 0, 0}, errReservedOpcode},
		{"fragmented ping", []byte{0x09, 0x80, 0, 0, 0, 0}, errControlFragment},
		{"overlong close", []byte{0x88, 0x80 | 126, 0x00, 0x80, 0, 0, 0, 0}, errControlTooLong},
		{"non-minimal 16-bit", []byte{0x82, 0x80 | 126, 0x00, 0x05, 0, 0, 0, 0}, errNonMinimalLen},
		{"non-minimal 64-bit", append([]byte{0x82, 0x80 | 127}, 0, 0, 0, 0, 0, 0, 0x01, 0x00, 0, 0, 0, 0), errNonMinimalLen},
		{"64-bit high bit", append([]byte{0x82, 0x80 | 127}, 0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0), errLengthOverflow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := decodeHeader(tc.b); err != tc.want {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestAppendClose(t *testing.T) {
	b := appendClose(nil, CloseNormal, "bye")
	h, hn, err := decodeHeader(b)
	if err != nil || h.op != OpClose || h.length != 5 {
		t.Fatalf("h=%+v hn=%d err=%v", h, hn, err)
	}
	if code := uint16(b[hn])<<8 | uint16(b[hn+1]); code != CloseNormal {
		t.Fatalf("code %d", code)
	}
	if string(b[hn+2:]) != "bye" {
		t.Fatalf("reason %q", b[hn+2:])
	}
	// Synthesized codes must not go on the wire.
	for _, code := range []uint16{CloseNoStatus, CloseAbnormal} {
		b := appendClose(nil, code, "ignored")
		if h, _, _ := decodeHeader(b); h.length != 0 {
			t.Fatalf("code %d produced a %d-byte close payload", code, h.length)
		}
	}
	// Overlong reasons are truncated to fit a control frame.
	long := string(bytes.Repeat([]byte("r"), 200))
	b = appendClose(nil, CloseProtocolError, long)
	if h, _, err := decodeHeader(b); err != nil || h.length != 125 {
		t.Fatalf("overlong reason: %+v %v", h, err)
	}
}

func TestAcceptKey(t *testing.T) {
	// The RFC 6455 §1.3 worked example.
	got := appendAcceptKey(nil, []byte("dGhlIHNhbXBsZSBub25jZQ=="))
	if string(got) != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("accept key %q", got)
	}
}
