package wsaff

import (
	"sync"
	"time"
)

// wheelSlots is the timer wheel's resolution: each connection sits in
// one slot and is examined once per PingInterval, wheelSlots ticks
// spreading the examinations so a million idle sockets never ping in
// one burst.
const wheelSlots = 8

// shard is one worker's slice of the connection population: every open
// connection whose flow group the worker owns, the worker-local
// broadcast subscriber set, and the timer wheel that paces their
// keep-alive pings. Each shard has its own mutex — the whole point is
// that publishing to a million subscribers takes no process-wide lock,
// only per-worker ones, and the hot registration operations (a
// connection's own worker adding, moving or removing it) contend only
// with that worker's shard.
type shard struct {
	mu    sync.Mutex
	conns map[*Conn]struct{} // every open conn owned by this shard
	subs  map[*Conn]struct{} // broadcast subscribers
	wheel [wheelSlots]map[*Conn]struct{}
	next  int // wheel slot the next added conn lands in (spread)

	pub chan []byte // pending broadcast frames (pre-encoded, read-only)

	// scratch is the delivery snapshot buffer: deliveries write to
	// sockets outside the shard lock (a slow socket must not block
	// registrations), and reusing the slice keeps the fan-out loop
	// allocation-free in the steady state. Only the shard loop touches
	// it.
	scratch []*Conn
}

func (s *shard) init(pubBuffer int) {
	s.conns = make(map[*Conn]struct{})
	s.subs = make(map[*Conn]struct{})
	for i := range s.wheel {
		s.wheel[i] = make(map[*Conn]struct{})
	}
	s.pub = make(chan []byte, pubBuffer)
}

func (s *shard) add(c *Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[c] = struct{}{}
	s.wheel[s.next][c] = struct{}{}
	s.next = (s.next + 1) % wheelSlots
}

func (s *shard) remove(c *Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
	for i := range s.wheel {
		delete(s.wheel[i], c)
	}
}

func (s *shard) subscribe(c *Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[c] = struct{}{}
}

func (s *shard) unsubscribe(c *Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.subs, c)
}

// snapshot copies the shard's full connection set (shutdown teardown).
func (s *shard) snapshot() []*Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

// snapshotInto refills dst from the given set under the shard lock.
func (s *shard) snapshotInto(dst []*Conn, set map[*Conn]struct{}) []*Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst = dst[:0]
	for c := range set {
		dst = append(dst, c)
	}
	return dst
}

// Broadcast sends one message frame to every subscriber. The frame is
// encoded once and the per-worker shard loops deliver it to their local
// subscriber sets concurrently; a shard whose queue is full drops the
// broadcast for its subscribers (and counts it) rather than stalling
// the publisher. Safe from any goroutine.
func (ws *WS) Broadcast(op Op, payload []byte) {
	ws.broadcasts.Add(1)
	frame := appendFrame(make([]byte, 0, maxHeaderBytes+len(payload)), op, payload)
	for i := range ws.shards {
		select {
		case ws.shards[i].pub <- frame:
		default:
			ws.bcastDrops.Add(1)
		}
	}
}

// shardLoop is one worker shard's service goroutine: it delivers queued
// broadcasts to the shard's subscribers and drives the ping wheel. One
// goroutine per worker, touching only that worker's registration state
// — the fan-out equivalent of the serve layer's one-worker-one-queue
// discipline.
func (ws *WS) shardLoop(s *shard) {
	tickEvery := ws.cfg.PingInterval / wheelSlots
	var ticker *time.Ticker
	var tick <-chan time.Time
	if ws.cfg.PingInterval > 0 {
		ticker = time.NewTicker(tickEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	cursor := 0
	for {
		select {
		case frame := <-s.pub:
			s.scratch = s.snapshotInto(s.scratch, s.subs)
			for _, c := range s.scratch {
				c.writeMu.Lock()
				err := c.writeRaw(frame)
				c.writeMu.Unlock()
				if err != nil {
					c.finish(CloseAbnormal, true)
				} else {
					ws.bcastSent.Add(1)
				}
			}
		case <-tick:
			s.scratch = s.snapshotInto(s.scratch, s.wheel[cursor])
			cursor = (cursor + 1) % wheelSlots
			ws.pingSlot(s.scratch)
		case <-ws.stopCh:
			return
		}
	}
}

// pingFrame is the static keep-alive ping (no payload).
var pingFrame = []byte{0x80 | byte(OpPing), 0}

// pingSlot examines one wheel slot's connections: sockets quiet longer
// than PingInterval get a ping (whose pong will ride the park→route→
// pass path, keeping even keep-alive traffic on the owning worker);
// sockets dead longer than IdleTimeout — the park deadline has already
// closed their transport — are reaped so OnClose fires promptly.
func (ws *WS) pingSlot(conns []*Conn) {
	now := time.Now()
	for _, c := range conns {
		idle := now.Sub(time.Unix(0, c.lastActive.Load()))
		if t := ws.cfg.IdleTimeout; t > 0 && idle > t {
			c.finish(CloseAbnormal, true)
			continue
		}
		if idle < ws.cfg.PingInterval {
			continue
		}
		c.writeMu.Lock()
		err := c.writeRaw(pingFrame)
		c.writeMu.Unlock()
		if err != nil {
			c.finish(CloseAbnormal, true)
			continue
		}
		ws.pingsSent.Add(1)
	}
}
