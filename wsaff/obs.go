package wsaff

import (
	"fmt"
	"io"
)

// WriteObsMetrics renders the WebSocket subsystem's counters in
// Prometheus text format. Pass it as an extra to httpaff.MetricsHandler
// so the unified scrape endpoint covers this layer too.
func (ws *WS) WriteObsMetrics(w io.Writer) {
	st := ws.Stats()
	fmt.Fprintf(w, "# HELP affinity_ws_open Sockets currently open.\n# TYPE affinity_ws_open gauge\naffinity_ws_open %d\n", st.Open)
	fmt.Fprintf(w, "# HELP affinity_ws_subscribers Current broadcast subscriptions.\n# TYPE affinity_ws_subscribers gauge\naffinity_ws_subscribers %d\n", st.Subscribers)
	fmt.Fprintf(w, "# HELP affinity_ws_frames_total Wire frames, by direction.\n# TYPE affinity_ws_frames_total counter\n")
	fmt.Fprintf(w, "affinity_ws_frames_total{direction=\"in\"} %d\n", st.FramesIn)
	fmt.Fprintf(w, "affinity_ws_frames_total{direction=\"out\"} %d\n", st.FramesOut)
	fmt.Fprintf(w, "# HELP affinity_ws_messages_total Reassembled messages delivered to OnMessage.\n# TYPE affinity_ws_messages_total counter\naffinity_ws_messages_total %d\n", st.MessagesIn)
	fmt.Fprintf(w, "# HELP affinity_ws_pings_sent_total Timer-wheel keep-alive pings sent.\n# TYPE affinity_ws_pings_sent_total counter\naffinity_ws_pings_sent_total %d\n", st.PingsSent)
	fmt.Fprintf(w, "# HELP affinity_ws_pongs_received_total Pong replies received (each rode the park-route-pass path).\n# TYPE affinity_ws_pongs_received_total counter\naffinity_ws_pongs_received_total %d\n", st.PongsReceived)
	fmt.Fprintf(w, "# HELP affinity_ws_broadcasts_total Broadcast calls published.\n# TYPE affinity_ws_broadcasts_total counter\naffinity_ws_broadcasts_total %d\n", st.Broadcasts)
	fmt.Fprintf(w, "# HELP affinity_ws_broadcast_delivered_total Per-connection broadcast frame deliveries.\n# TYPE affinity_ws_broadcast_delivered_total counter\naffinity_ws_broadcast_delivered_total %d\n", st.Delivered)
	fmt.Fprintf(w, "# HELP affinity_ws_broadcast_dropped_total Whole-shard broadcast drops at full queues.\n# TYPE affinity_ws_broadcast_dropped_total counter\naffinity_ws_broadcast_dropped_total %d\n", st.Dropped)
	fmt.Fprintf(w, "# HELP affinity_ws_closes_total Connections finished.\n# TYPE affinity_ws_closes_total counter\naffinity_ws_closes_total %d\n", st.Closes)
	fmt.Fprintf(w, "# HELP affinity_ws_codec_reuses_total Codec-buffer acquisitions served from the worker's warm buffers.\n# TYPE affinity_ws_codec_reuses_total counter\n")
	for i, ps := range st.Workers {
		fmt.Fprintf(w, "affinity_ws_codec_reuses_total{worker=\"%d\"} %d\n", i, ps.Reuses)
	}
}
