package wsaff

import (
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
)

// Op is a WebSocket frame opcode (RFC 6455 §5.2).
type Op byte

const (
	OpContinuation Op = 0x0
	OpText         Op = 0x1
	OpBinary       Op = 0x2
	OpClose        Op = 0x8
	OpPing         Op = 0x9
	OpPong         Op = 0xA
)

// IsControl reports whether the opcode is a control frame (§5.5):
// interleavable anywhere, never fragmented, payload at most 125 bytes.
func (op Op) IsControl() bool { return op >= OpClose }

// Close status codes (§7.4.1) the subsystem sends or synthesizes.
const (
	CloseNormal        uint16 = 1000
	CloseGoingAway     uint16 = 1001
	CloseProtocolError uint16 = 1002
	CloseNoStatus      uint16 = 1005 // synthesized: close frame without a code
	CloseAbnormal      uint16 = 1006 // synthesized: transport died, no close frame
	CloseTooBig        uint16 = 1009
)

// Frame-codec protocol violations. Every one of these costs the peer a
// 1002/1009 close: after any of them the byte stream can no longer be
// trusted to resynchronize on a frame boundary.
var (
	errRSVBits         = errors.New("wsaff: nonzero RSV bits without a negotiated extension")
	errReservedOpcode  = errors.New("wsaff: reserved opcode")
	errUnmaskedClient  = errors.New("wsaff: client frame not masked")
	errControlTooLong  = errors.New("wsaff: control frame payload exceeds 125 bytes")
	errControlFragment = errors.New("wsaff: fragmented control frame")
	errNonMinimalLen   = errors.New("wsaff: non-minimal payload length encoding")
	errLengthOverflow  = errors.New("wsaff: 64-bit payload length has the high bit set")
)

// maxHeaderBytes is the largest wire header: 2 fixed bytes, 8 extended
// length bytes, 4 masking-key bytes.
const maxHeaderBytes = 14

// header is one decoded frame header. The payload follows the header on
// the wire; masked payloads are unmasked in place by the caller.
type header struct {
	fin    bool
	op     Op
	masked bool
	length int64
	key    [4]byte
}

// decodeHeader parses one frame header from the front of b.
//
//	n > 0:  a complete header occupying b[:n]; the payload is the
//	        h.length bytes that follow.
//	n == 0: b is a prefix of a valid header — read more bytes.
//	err:    protocol violation; the connection must close (1002).
//
// Validation beyond shape: RSV bits must be zero (no extensions are
// negotiated), reserved opcodes are rejected, control frames must be
// unfragmented with a ≤125-byte payload, and extended lengths must use
// the minimal encoding (§5.2's MUST, and a fuzzing invariant: every
// valid frame has exactly one encoding).
func decodeHeader(b []byte) (h header, n int, err error) {
	if len(b) < 2 {
		return h, 0, nil
	}
	b0, b1 := b[0], b[1]
	if b0&0x70 != 0 {
		return h, 0, errRSVBits
	}
	h.fin = b0&0x80 != 0
	h.op = Op(b0 & 0x0F)
	if (h.op > OpBinary && h.op < OpClose) || h.op > OpPong {
		return h, 0, errReservedOpcode
	}
	h.masked = b1&0x80 != 0
	ln := int64(b1 & 0x7F)
	n = 2
	switch ln {
	case 126:
		if len(b) < n+2 {
			return h, 0, nil
		}
		ln = int64(binary.BigEndian.Uint16(b[n:]))
		if ln < 126 {
			return h, 0, errNonMinimalLen
		}
		n += 2
	case 127:
		if len(b) < n+8 {
			return h, 0, nil
		}
		u := binary.BigEndian.Uint64(b[n:])
		if u&(1<<63) != 0 {
			return h, 0, errLengthOverflow
		}
		if u < 1<<16 {
			return h, 0, errNonMinimalLen
		}
		ln = int64(u)
		n += 8
	}
	if h.op.IsControl() {
		if !h.fin {
			return h, 0, errControlFragment
		}
		if ln > 125 {
			return h, 0, errControlTooLong
		}
	}
	h.length = ln
	if h.masked {
		if len(b) < n+4 {
			return h, 0, nil
		}
		copy(h.key[:], b[n:n+4])
		n += 4
	}
	return h, n, nil
}

// unmask XORs the masking key over b in place (§5.3). off is the
// payload offset b starts at, for unmasking a payload in chunks; it
// returns off advanced past b.
func unmask(key [4]byte, off int, b []byte) int {
	for i := range b {
		b[i] ^= key[off&3]
		off++
	}
	return off
}

// appendHeader appends a server-to-client frame header (never masked,
// §5.1) for a payload of n bytes.
func appendHeader(dst []byte, fin bool, op Op, n int) []byte {
	b0 := byte(op)
	if fin {
		b0 |= 0x80
	}
	switch {
	case n <= 125:
		return append(dst, b0, byte(n))
	case n <= 1<<16-1:
		return append(dst, b0, 126, byte(n>>8), byte(n))
	default:
		return append(dst, b0, 127,
			byte(uint64(n)>>56), byte(uint64(n)>>48), byte(uint64(n)>>40), byte(uint64(n)>>32),
			byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
}

// appendFrame appends one complete unfragmented server frame.
func appendFrame(dst []byte, op Op, payload []byte) []byte {
	dst = appendHeader(dst, true, op, len(payload))
	return append(dst, payload...)
}

// appendClose appends a close frame carrying code and reason; the
// synthesized codes 1005/1006 must not go on the wire (§7.4.1) and
// produce an empty close payload instead.
func appendClose(dst []byte, code uint16, reason string) []byte {
	if code == CloseNoStatus || code == CloseAbnormal {
		return appendHeader(dst, true, OpClose, 0)
	}
	if len(reason) > 123 {
		reason = reason[:123]
	}
	dst = appendHeader(dst, true, OpClose, 2+len(reason))
	dst = append(dst, byte(code>>8), byte(code))
	return append(dst, reason...)
}

// appendMaskedFrame appends one complete client-to-server frame,
// masking a copy of the payload with key. The test and benchmark
// clients use it; servers never mask.
func appendMaskedFrame(dst []byte, fin bool, op Op, key [4]byte, payload []byte) []byte {
	b0 := byte(op)
	if fin {
		b0 |= 0x80
	}
	n := len(payload)
	switch {
	case n <= 125:
		dst = append(dst, b0, 0x80|byte(n))
	case n <= 1<<16-1:
		dst = append(dst, b0, 0x80|126, byte(n>>8), byte(n))
	default:
		dst = append(dst, b0, 0x80|127,
			byte(uint64(n)>>56), byte(uint64(n)>>48), byte(uint64(n)>>40), byte(uint64(n)>>32),
			byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
	dst = append(dst, key[:]...)
	start := len(dst)
	dst = append(dst, payload...)
	unmask(key, 0, dst[start:])
	return dst
}

// wsGUID is the protocol's fixed handshake GUID (§1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// appendAcceptKey appends the Sec-WebSocket-Accept value for a
// Sec-WebSocket-Key: base64(SHA-1(key + GUID)). Handshakes run once
// per connection, so the hash state allocating is fine.
func appendAcceptKey(dst, key []byte) []byte {
	h := sha1.New()
	h.Write(key)
	h.Write([]byte(wsGUID))
	var sum [sha1.Size]byte
	var enc [28]byte
	base64.StdEncoding.Encode(enc[:], h.Sum(sum[:0]))
	return append(dst, enc[:]...)
}
