package wsaff

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn is one WebSocket connection. Reads only ever happen inside a
// worker pass (the serve layer runs one pass at a time per connection),
// so read state needs no lock. Writes can come from three places — the
// serving pass (replies), a shard loop (broadcasts and pings) and
// application goroutines (Send) — so every transport write happens
// under writeMu, with the pass's replies batched in the worker's codec
// buffer and flushed in one locked write per pass.
type Conn struct {
	ws *WS
	// tc is the stable transport handle writes go through; rc is the
	// current pass's read view (which replays parked input and
	// post-upgrade residual bytes). rc strictly supersedes tc for
	// closing once set: after the first park it is the serve layer's
	// park wrapper, whose Close also detaches the connection's
	// event-loop park state.
	tc     net.Conn
	rc     net.Conn
	remote net.Addr

	writeMu   sync.Mutex
	w         *wsWorker // non-nil while a pass on this conn is running
	wErr      error     // sticky transport write error
	closeSent bool

	// regMu serializes registration transitions — join, shard move,
	// subscribe/unsubscribe, teardown — against each other, so a finish
	// racing a concurrent move or subscribe can never re-register a
	// dead connection (a zombie the wheel would ping forever). It nests
	// strictly outside the shard mutexes and is never taken on the
	// frame path.
	regMu      sync.Mutex
	dead       bool         // finish ran; no further registration
	shard      int32        // current shard index; moves with §3.3.2 migration
	subscribed atomic.Bool  // registered in the shard's broadcast set
	lastActive atomic.Int64 // unix nanos of last inbound traffic
	opened     bool         // OnOpen delivered (pass-side state)
	finOnce    sync.Once    // OnClose delivered

	// Data is free for the application (a chat nickname, a session).
	// Guard it yourself if you touch it outside OnOpen/OnMessage.
	Data any
}

// RemoteAddr reports the client address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// Worker reports the shard (worker) the connection currently belongs
// to; after a flow-group migration the next pass moves it.
func (c *Conn) Worker() int { return int(atomic.LoadInt32(&c.shard)) }

// Subscribe registers the connection in its worker shard's broadcast
// set; Broadcast will deliver to it until Unsubscribe or close. A
// no-op on a connection that has already finished.
func (c *Conn) Subscribe() {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if !c.dead && c.subscribed.CompareAndSwap(false, true) {
		c.ws.shards[c.Worker()].subscribe(c)
		c.ws.subscribers.Inc()
	}
}

// Unsubscribe removes the connection from the broadcast set.
func (c *Conn) Unsubscribe() {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if c.subscribed.CompareAndSwap(true, false) {
		c.ws.shards[c.Worker()].unsubscribe(c)
		c.ws.subscribers.Dec()
	}
}

// Send writes one complete message frame. Called from inside a handler
// callback it batches into the worker's codec buffer and goes out in
// the pass's single flush; called from any other goroutine it writes
// through directly. It returns the connection's sticky write error.
func (c *Conn) Send(op Op, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.wErr != nil {
		return c.wErr
	}
	if c.w != nil {
		c.w.wbuf = appendFrame(c.w.wbuf, op, payload)
		c.ws.framesOut.Add(1)
		return nil
	}
	return c.directFrame(op, payload)
}

// directFrame writes header + payload straight to the transport.
// writeMu must be held. The header goes through a stack buffer, so the
// out-of-pass path allocates nothing either — it just pays two write
// syscalls instead of riding the pass's batch.
func (c *Conn) directFrame(op Op, payload []byte) error {
	var hdr [maxHeaderBytes]byte
	h := appendHeader(hdr[:0], true, op, len(payload))
	if _, err := c.tc.Write(h); err != nil {
		c.wErr = err
		return err
	}
	if len(payload) > 0 {
		if _, err := c.tc.Write(payload); err != nil {
			c.wErr = err
			return err
		}
	}
	c.ws.framesOut.Add(1)
	return nil
}

// writeRaw writes pre-encoded frame bytes (a shard-shared broadcast
// frame, a static ping). writeMu must be held.
func (c *Conn) writeRaw(frame []byte) error {
	if c.wErr != nil {
		return c.wErr
	}
	if c.w != nil {
		c.w.wbuf = append(c.w.wbuf, frame...)
	} else if _, err := c.tc.Write(frame); err != nil {
		c.wErr = err
		return err
	}
	c.ws.framesOut.Add(1)
	return nil
}

// Close initiates the closing handshake: it sends a close frame and
// closes the transport. Safe from any goroutine, idempotent.
func (c *Conn) Close(code uint16, reason string) error {
	c.sendClose(code, reason)
	c.finish(code, true)
	return nil
}

// sendClose writes the close frame once, directly (never batched — a
// close must not sit in a buffer behind a park).
func (c *Conn) sendClose(code uint16, reason string) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.closeSent {
		return
	}
	c.closeSent = true
	if c.wErr != nil {
		return
	}
	var buf [2 + maxHeaderBytes + 125]byte
	frame := appendClose(buf[:0], code, reason)
	if _, err := c.tc.Write(frame); err != nil {
		c.wErr = err
		return
	}
	c.ws.framesOut.Add(1)
}

// finish tears the connection down exactly once: unregisters it from
// its shard, closes the transport (detaching any event-loop park state
// with it) and delivers OnClose. closeTransport is false only on
// the pass path, where the caller still owns rc and closes it itself.
func (c *Conn) finish(code uint16, closeTransport bool) {
	c.finOnce.Do(func() {
		c.regMu.Lock()
		c.dead = true
		if c.subscribed.CompareAndSwap(true, false) {
			c.ws.shards[c.Worker()].unsubscribe(c)
			c.ws.subscribers.Dec()
		}
		c.ws.shards[c.Worker()].remove(c)
		opened := c.opened
		c.regMu.Unlock()
		if closeTransport {
			c.closeConn()
		}
		if !opened {
			return // never joined (Upgrade flush failed): nothing to report
		}
		c.ws.open.Dec()
		c.ws.closes.Add(1)
		if c.ws.cfg.OnClose != nil {
			c.ws.cfg.OnClose(c, code)
		}
	})
}

// closeConn closes the newest transport handle: the park wrapper once
// one exists (its Close also detaches the event-loop park state), else
// the raw conn.
func (c *Conn) closeConn() {
	c.writeMu.Lock()
	nc := c.rc
	c.writeMu.Unlock()
	if nc != nil {
		nc.Close()
		return
	}
	c.tc.Close()
}

// passFlushEvery bounds how many outbound bytes batch before a
// mid-pass flush.
const passFlushEvery = 32 << 10

// beginPass binds the pass's read view and worker codec; sends from
// handler callbacks batch into w.wbuf from here on.
func (c *Conn) beginPass(nc net.Conn, w *wsWorker) {
	c.writeMu.Lock()
	c.rc = nc
	c.w = w
	c.writeMu.Unlock()
}

// endPass flushes the pass's batched frames and detaches the codec.
func (c *Conn) endPass() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	w := c.w
	c.w = nil
	if w == nil || len(w.wbuf) == 0 {
		return c.wErr
	}
	buf := w.wbuf
	w.wbuf = w.wbuf[:0]
	if c.wErr != nil {
		return c.wErr
	}
	if _, err := c.tc.Write(buf); err != nil {
		c.wErr = err
	}
	return c.wErr
}

// flushMidPass flushes when the pass's batch has grown past
// passFlushEvery, so deep frame pipelines stream instead of ballooning
// the worker buffer. The batch length is only readable under writeMu —
// a shard loop may be appending broadcast frames to it concurrently.
func (c *Conn) flushMidPass() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.w == nil || len(c.w.wbuf) < passFlushEvery || c.wErr != nil {
		return c.wErr
	}
	buf := c.w.wbuf
	c.w.wbuf = c.w.wbuf[:0]
	if _, err := c.tc.Write(buf); err != nil {
		c.wErr = err
	}
	return c.wErr
}

// parkDeadline arms the park read deadline implementing IdleTimeout;
// a zero deadline (IdleTimeout disabled) clears it. The deadline is
// recorded down the wrapper chain (serve.ParkDeadliner), so the owning
// worker's event-loop sweep reaps a dead peer without a goroutine
// waiting on it. nc is the pass's read view, which carries the worker's
// coarse clock once the connection has parked before.
func (c *Conn) parkDeadline(nc net.Conn) {
	var dl time.Time
	if t := c.ws.cfg.IdleTimeout; t > 0 {
		dl = coarseNow(nc).Add(t)
	}
	c.tc.SetReadDeadline(dl)
}

// coarseNow returns the owning worker's coarse clock when the pass
// connection can supply one (the serve layer's park wrapper — every
// pass after the first park), else the real clock. It keeps time.Now
// off the per-frame path.
func coarseNow(nc net.Conn) time.Time {
	if cn, ok := nc.(interface{ CoarseNow() time.Time }); ok {
		return cn.CoarseNow()
	}
	return time.Now()
}

// pass serves one takeover pass: read frames until the inbound stream
// reaches a clean frame/message boundary with nothing buffered, then
// park. It runs inline on the worker goroutine — that inlining is what
// makes the lock-free worker codec sound.
func (ws *WS) pass(worker int, c *Conn, nc net.Conn) (park bool) {
	if worker < 0 || worker >= len(ws.workers) {
		c.finish(CloseAbnormal, true)
		return false
	}
	first := !c.opened
	if first {
		// First pass: the 101 has flushed and the takeover is
		// committed, so the connection now joins the subsystem — shard
		// membership and the open gauge. (Registering at Upgrade time
		// would leak the conn if the 101 flush failed: the takeover is
		// never installed and no pass ever runs.)
		c.regMu.Lock()
		c.opened = true
		atomic.StoreInt32(&c.shard, int32(worker))
		ws.shards[worker].add(c)
		c.regMu.Unlock()
		ws.open.Inc()
	} else if cur := int(atomic.LoadInt32(&c.shard)); cur != worker {
		// §3.3.2 migration moved this connection's flow group since the
		// last pass: move its shard registration too, so broadcasts and
		// pings for it are issued from the worker that now owns it.
		ws.moveShard(c, cur, worker)
	}
	w := &ws.workers[worker]
	w.acquire(ws.cfg.ReadBufferSize)
	c.beginPass(nc, w)
	c.lastActive.Store(coarseNow(nc).UnixNano())

	if first && ws.cfg.OnOpen != nil {
		ws.cfg.OnOpen(c)
	}

	park, code, reason := ws.readFrames(c, nc, w)
	err := c.endPass()
	w.release(ws.cfg.ReadBufferSize)
	if err != nil && park {
		park, code = false, CloseAbnormal
	}
	if !park {
		if code != CloseAbnormal {
			c.sendClose(code, reason)
		}
		c.finish(code, false)
		nc.Close()
		return false
	}
	c.parkDeadline(nc)
	return true
}

// readFrames is the pass's frame loop. It returns park=true at a clean
// boundary (park the connection), or park=false with the close code to
// finish with — CloseAbnormal meaning the transport already failed and
// no close frame can be sent.
func (ws *WS) readFrames(c *Conn, nc net.Conn, w *wsWorker) (park bool, code uint16, reason string) {
	var (
		rlen, pos  int
		assembling bool
		msgOp      Op
		armed      bool
	)
	w.abuf = w.abuf[:0]
	maxMsg := ws.cfg.MaxMessageBytes
	// A requeued pass always has the park wake-up byte (and an upgrade
	// pass may have residual post-upgrade bytes) queued for replay; a
	// fresh upgrade with a silent client has nothing, and must park
	// rather than block the worker on a read. The replayed input makes
	// this first read return without touching the transport.
	if !inputPending(nc) {
		return true, 0, ""
	}
	n, err := nc.Read(w.rbuf)
	if err != nil && n == 0 {
		return false, CloseAbnormal, ""
	}
	rlen = n
	for {
		// Parse every complete frame currently buffered.
		for {
			h, hn, err := decodeHeader(w.rbuf[pos:rlen])
			if err != nil {
				return false, CloseProtocolError, err.Error()
			}
			if hn == 0 {
				break // incomplete header
			}
			if !h.masked {
				return false, CloseProtocolError, errUnmaskedClient.Error()
			}
			if h.length > int64(maxMsg) || (assembling && int64(len(w.abuf))+h.length > int64(maxMsg)) {
				return false, CloseTooBig, "message exceeds MaxMessageBytes"
			}
			total := pos + hn + int(h.length)
			if total > rlen {
				// Complete header, incomplete payload: grow to fit the
				// whole frame, then fall through to the read below.
				if total > len(w.rbuf) {
					nb := make([]byte, total+maxHeaderBytes)
					copy(nb, w.rbuf[:rlen])
					w.rbuf = nb
				}
				break
			}
			payload := w.rbuf[pos+hn : total]
			unmask(h.key, 0, payload)
			pos = total
			ws.framesIn.Add(1)
			c.lastActive.Store(coarseNow(nc).UnixNano())

			switch {
			case h.op == OpPing:
				c.Send(OpPong, payload)
			case h.op == OpPong:
				ws.pongsRecvd.Add(1)
			case h.op == OpClose:
				code := CloseNoStatus
				if len(payload) >= 2 {
					code = binary.BigEndian.Uint16(payload)
				}
				return false, code, ""
			case h.op == OpContinuation:
				if !assembling {
					return false, CloseProtocolError, "continuation without a message in flight"
				}
				w.abuf = append(w.abuf, payload...)
				if h.fin {
					assembling = false
					ws.deliver(c, msgOp, w.abuf)
					w.abuf = w.abuf[:0]
				}
			default: // OpText, OpBinary
				if assembling {
					return false, CloseProtocolError, "new data frame inside a fragmented message"
				}
				if h.fin {
					ws.deliver(c, h.op, payload)
				} else {
					msgOp = h.op
					assembling = true
					w.abuf = append(w.abuf, payload...)
				}
			}
			if c.flushMidPass() != nil {
				return false, CloseAbnormal, ""
			}
		}
		// Buffer parsed to a boundary?
		if pos == rlen && !assembling {
			return true, 0, ""
		}
		// Mid-frame or mid-message: block for more bytes. Compact first
		// so a long-lived connection's buffer doesn't creep, and arm the
		// in-pass read deadline once — a peer that stalls mid-frame is
		// occupying a worker, exactly like a stalled HTTP request.
		if pos > 0 {
			rlen = copy(w.rbuf, w.rbuf[pos:rlen])
			pos = 0
		}
		if rlen == len(w.rbuf) {
			nb := make([]byte, 2*len(w.rbuf))
			copy(nb, w.rbuf[:rlen])
			w.rbuf = nb
		}
		if !armed {
			armed = true
			var dl time.Time
			if t := ws.cfg.IdleTimeout; t > 0 {
				dl = coarseNow(nc).Add(t)
			}
			nc.SetReadDeadline(dl)
		}
		n, err := nc.Read(w.rbuf[rlen:])
		rlen += n
		if err != nil && n == 0 {
			return false, CloseAbnormal, ""
		}
	}
}

// deliver hands one complete message to the application.
func (ws *WS) deliver(c *Conn, op Op, payload []byte) {
	ws.messagesIn.Add(1)
	ws.cfg.OnMessage(c, op, payload)
}

// inputPending probes the transport view for replayable buffered input
// (the serve park wrapper's wake byte, httpaff's post-upgrade
// residual). Conns without the probe — raw transports in unit tests —
// report none.
func inputPending(nc net.Conn) bool {
	ip, ok := nc.(interface{ InputPending() bool })
	return ok && ip.InputPending()
}

// moveShard migrates a connection's shard registration after its flow
// group moved. Under regMu so a concurrent finish (a shard loop hitting
// a write error on this conn) cannot interleave with the remove/add
// pair and leave a finished conn re-registered; the shard locks are
// still taken one at a time inside it.
func (ws *WS) moveShard(c *Conn, from, to int) {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if c.dead {
		return
	}
	sub := c.subscribed.Load()
	ws.shards[from].remove(c)
	if sub {
		ws.shards[from].unsubscribe(c)
	}
	atomic.StoreInt32(&c.shard, int32(to))
	ws.shards[to].add(c)
	if sub {
		ws.shards[to].subscribe(c)
	}
}
