package wsaff

import (
	"sync/atomic"
	"testing"
	"time"

	"affinityaccept/httpaff"
)

// TestShedParkedSocketReapsPromptly: when the serve layer sheds a
// parked WebSocket under budget pressure, the park-close notification
// reaps it from its shard immediately — OnClose(1006) fires and the
// open gauge drops long before the ping wheel would have probed the
// corpse.
func TestShedParkedSocketReapsPromptly(t *testing.T) {
	var closes atomic.Int64
	var lastCode atomic.Int64
	srv, ws := startWS(t, Config{
		Workers:      2,
		PingInterval: 5 * time.Minute, // the wheel must not be the one to notice
		OnClose: func(c *Conn, code uint16) {
			lastCode.Store(int64(code))
			closes.Add(1)
		},
	}, httpaff.Config{MaxConns: 2})

	older := dialWS(t, srv.Addr().String())
	older.send(t, true, OpText, []byte("a"))
	older.expectMessage(t, OpText, "a")
	newer := dialWS(t, srv.Addr().String())
	newer.send(t, true, OpText, []byte("b"))
	newer.expectMessage(t, OpText, "b")
	waitUntil(t, 5*time.Second, func() bool { return srv.Transport().Parked() == 2 },
		"sockets never parked")

	// A tunnel leg (or any charged descriptor) oversubscribes the
	// budget: the newest parked socket is shed LIFO, and the shard
	// learns right away.
	srv.Transport().ChargeConn(1)
	defer srv.Transport().ChargeConn(-1)

	waitUntil(t, 5*time.Second, func() bool { return closes.Load() == 1 },
		"OnClose never fired for the shed socket")
	if code := uint16(lastCode.Load()); code != CloseAbnormal {
		t.Errorf("OnClose code %d, want %d (abnormal: no close handshake on a shed)", code, CloseAbnormal)
	}
	waitUntil(t, 5*time.Second, func() bool { return ws.Stats().Open == 1 },
		"open gauge never dropped")

	// The shed socket's client sees a dead transport...
	newer.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := newer.conn.Read(make([]byte, 1)); err == nil || n > 0 {
		t.Errorf("shed socket still delivered data (n=%d err=%v)", n, err)
	}
	// ...while the older socket — longest idle, warmest claim to its
	// worker — survives and still echoes.
	older.send(t, true, OpText, []byte("still here"))
	older.expectMessage(t, OpText, "still here")

	if st := srv.Transport().Stats(); st.ShedParked != 1 {
		t.Errorf("ShedParked = %d, want 1", st.ShedParked)
	}
}
