// Package wsaff is the long-lived half of the core-local story: an
// RFC 6455 WebSocket layer riding httpaff's upgrade path, built so a
// connection that lives for hours costs the same locality discipline —
// and almost none of the memory — of one that lives for a request.
//
// The paper keeps a connection's packet, protocol and application
// processing on one core for the connection's lifetime; nothing
// stresses "lifetime" like WebSockets, where most sockets are idle
// most of the time. wsaff maps the lifecycle onto the serve layer's
// affinity machinery:
//
//   - The HTTP upgrade runs as an httpaff handler; RequestCtx.Hijack
//     hands the raw connection (plus any frames the client pipelined
//     behind its upgrade request) to wsaff without leaving the worker.
//   - Frame decode/encode run in per-worker codec buffers — the same
//     arena discipline as httpaff's request contexts, so frame memory
//     is touched only by the worker serving the pass.
//   - Between messages the socket parks through serve.Requeue: it holds
//     no worker, no buffer, no timer and no goroutine — just one epoll
//     registration on its owning worker's event loop, which is how a
//     million held-open sockets stay O(workers) goroutines. The next
//     inbound bytes route it through the flow table again, so when
//     §3.3.2 migration re-points its group the socket follows — pings
//     and pongs ride the same path, which keeps even a silent socket's
//     keep-alive traffic core-local.
//   - Fan-out is sharded per worker: a broadcast delivers through each
//     worker's local subscriber set under that shard's own lock, never
//     a process-wide one, and a connection's registration moves shards
//     when its flow group migrates.
//
// The steady-state echo path — park wake, frame decode, handler, frame
// encode, flush, re-park — allocates nothing.
package wsaff

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/internal/http11"
	"affinityaccept/internal/stats"
)

// Config parameterizes a WS. OnMessage is required; everything else
// has working defaults.
type Config struct {
	// Workers must match the serving httpaff server's worker count
	// (0 = GOMAXPROCS, the default on both sides). Passes reporting a
	// worker index outside [0, Workers) fail the upgrade with a 500.
	Workers int

	// OnMessage is called once per complete (possibly reassembled)
	// message with OpText or OpBinary. The payload aliases the worker's
	// codec buffer: copy it before retaining. Required.
	OnMessage func(c *Conn, op Op, payload []byte)
	// OnOpen is called once per connection, on the owning worker, after
	// the 101 has flushed and before the first frame is read.
	OnOpen func(c *Conn)
	// OnClose is called exactly once per opened connection with the
	// close code (1005 for a codeless close frame, 1006 for a dead
	// transport). The connection can no longer send.
	OnClose func(c *Conn, code uint16)

	// ReadBufferSize is each worker codec's initial frame buffer size
	// (default 4096); it grows to the largest in-flight frame and is
	// shed back on release.
	ReadBufferSize int
	// MaxMessageBytes caps one message — a single frame's payload or a
	// fragmented reassembly (default 1 MiB). Larger closes 1009.
	MaxMessageBytes int

	// PingInterval is the per-worker timer wheel's keep-alive period:
	// a connection with no inbound traffic for this long is pinged
	// (default 30s; negative disables pings).
	PingInterval time.Duration
	// IdleTimeout closes a connection with no inbound traffic — data,
	// pong, anything — for this long (default 2×PingInterval; negative
	// disables). It is armed as the park deadline, so a dead peer is
	// reaped by its worker's event-loop sweep without waking anything.
	IdleTimeout time.Duration

	// BroadcastBuffer bounds each shard's queue of pending broadcasts
	// (default 128). A shard that falls behind drops broadcasts — and
	// counts them — rather than stalling the publisher on a slow
	// worker's sockets.
	BroadcastBuffer int
}

func (c *Config) fill() error {
	if c.OnMessage == nil {
		return errors.New("wsaff: Config.OnMessage is required")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ReadBufferSize <= 0 {
		c.ReadBufferSize = 4096
	}
	if c.MaxMessageBytes <= 0 {
		c.MaxMessageBytes = 1 << 20
	}
	if c.PingInterval == 0 {
		c.PingInterval = 30 * time.Second
	}
	if c.IdleTimeout == 0 && c.PingInterval > 0 {
		c.IdleTimeout = 2 * c.PingInterval
	}
	if c.BroadcastBuffer <= 0 {
		c.BroadcastBuffer = 128
	}
	return nil
}

// wsWorker is one worker's private codec state. Like httpaff's arenas
// it needs no lock: serve runs handler passes inline on the worker
// goroutine, so worker i's codec is only ever touched from worker i.
// The counters are atomic solely so Stats can observe them.
type wsWorker struct {
	rbuf     []byte // frame bytes; payloads are unmasked in place here
	abuf     []byte // fragmented-message reassembly
	wbuf     []byte // outbound frames awaiting one flush
	counters stats.PoolCounters
}

// retainCap is the largest codec buffer a worker keeps between passes.
const retainCap = 64 << 10

// acquire hands out the worker's codec buffers, counting a reuse when
// they are already warm — the measurement that frame memory stays
// core-local, mirroring the httpaff arena counters.
func (w *wsWorker) acquire(size int) {
	if w.rbuf == nil {
		w.rbuf = make([]byte, size)
		w.wbuf = make([]byte, 0, size)
		w.counters.Miss()
		return
	}
	w.counters.Reuse()
}

// release sheds buffers an outlier frame ballooned.
func (w *wsWorker) release(size int) {
	if cap(w.rbuf) > retainCap {
		w.rbuf = make([]byte, size)
	}
	if cap(w.wbuf) > retainCap {
		w.wbuf = make([]byte, 0, size)
	}
	if cap(w.abuf) > retainCap {
		w.abuf = nil
	}
}

// WS is a WebSocket subsystem serving upgrades for one httpaff server.
// Wire (*WS).Upgrade into a route handler; Start the shard loops before
// serving and Close after the HTTP server has shut down.
type WS struct {
	cfg     Config
	workers []wsWorker
	shards  []shard

	open        stats.Gauge // sockets currently open
	subscribers stats.Gauge // current broadcast subscriptions

	framesIn   atomic.Uint64
	framesOut  atomic.Uint64
	messagesIn atomic.Uint64
	pingsSent  atomic.Uint64
	pongsRecvd atomic.Uint64
	broadcasts atomic.Uint64
	bcastSent  atomic.Uint64 // per-connection broadcast deliveries
	bcastDrops atomic.Uint64 // shard queue overflows (whole-shard drops)
	closes     atomic.Uint64

	started  atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}
}

// New creates a WS. Call Start before serving traffic.
func New(cfg Config) (*WS, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ws := &WS{
		cfg:     cfg,
		workers: make([]wsWorker, cfg.Workers),
		shards:  make([]shard, cfg.Workers),
		stopCh:  make(chan struct{}),
	}
	for i := range ws.shards {
		ws.shards[i].init(cfg.BroadcastBuffer)
	}
	return ws, nil
}

// Start launches the per-worker shard loops (broadcast delivery and the
// ping timer wheel).
func (ws *WS) Start() {
	if !ws.started.CompareAndSwap(false, true) {
		return
	}
	for i := range ws.shards {
		go ws.shardLoop(&ws.shards[i])
	}
}

// Close stops the shard loops and finishes every connection still open
// with a 1001 (going away) close. Call it after the serving httpaff
// server has shut down — its Shutdown closes parked transports, and
// Close is what turns those dead transports into OnClose callbacks.
func (ws *WS) Close() {
	ws.stopOnce.Do(func() { close(ws.stopCh) })
	for i := range ws.shards {
		sh := &ws.shards[i]
		for _, c := range sh.snapshot() {
			c.finish(CloseGoingAway, true)
		}
	}
}

// Stats is a point-in-time view of the subsystem.
type Stats struct {
	// Open is the number of sockets currently open; Subscribers the
	// current broadcast registrations.
	Open        int64
	Subscribers int64
	// FramesIn/FramesOut count wire frames both ways; MessagesIn counts
	// delivered (reassembled) messages.
	FramesIn, FramesOut, MessagesIn uint64
	// PingsSent counts timer-wheel keep-alives; PongsReceived the
	// replies (each of which rode the full park→route→pass path).
	PingsSent, PongsReceived uint64
	// Broadcasts counts Broadcast calls; Delivered per-connection frame
	// deliveries; Dropped whole-shard queue overflows.
	Broadcasts, Delivered, Dropped uint64
	// Closes counts finished connections.
	Closes uint64
	// Pool aggregates the per-worker codec-buffer counters; Workers
	// holds them per worker. Reuse ≈ 100% is the proof frame memory
	// stayed worker-local.
	Pool    stats.PoolSnapshot
	Workers []stats.PoolSnapshot
}

// Stats snapshots the subsystem's counters.
func (ws *WS) Stats() Stats {
	st := Stats{
		Open:          ws.open.Load(),
		Subscribers:   ws.subscribers.Load(),
		FramesIn:      ws.framesIn.Load(),
		FramesOut:     ws.framesOut.Load(),
		MessagesIn:    ws.messagesIn.Load(),
		PingsSent:     ws.pingsSent.Load(),
		PongsReceived: ws.pongsRecvd.Load(),
		Broadcasts:    ws.broadcasts.Load(),
		Delivered:     ws.bcastSent.Load(),
		Dropped:       ws.bcastDrops.Load(),
		Closes:        ws.closes.Load(),
		Workers:       make([]stats.PoolSnapshot, len(ws.workers)),
	}
	for i := range ws.workers {
		st.Workers[i] = ws.workers[i].counters.Snapshot()
		st.Pool = st.Pool.Add(st.Workers[i])
	}
	return st
}

// String renders the snapshot in the serve.Stats report style.
func (st Stats) String() string {
	return fmt.Sprintf(
		"websockets: %d open (%d subscribed), %d closed\n"+
			"frames: %d in / %d out, %d messages, %d pings sent, %d pongs received\n"+
			"broadcast: %d published, %d delivered, %d dropped at full shards\n"+
			"codec pool: %d gets, %.1f%% worker-local reuse (%d misses)\n",
		st.Open, st.Subscribers, st.Closes,
		st.FramesIn, st.FramesOut, st.MessagesIn, st.PingsSent, st.PongsReceived,
		st.Broadcasts, st.Delivered, st.Dropped,
		st.Pool.Gets(), st.Pool.ReusePct(), st.Pool.Misses)
}

// PoolSnapshot reports one worker's codec-buffer counters, shaped for
// hooks that want per-worker pool stats.
func (ws *WS) PoolSnapshot(worker int) stats.PoolSnapshot {
	if worker < 0 || worker >= len(ws.workers) {
		return stats.PoolSnapshot{}
	}
	return ws.workers[worker].counters.Snapshot()
}

// Upgrade performs the RFC 6455 server handshake on an httpaff request
// and, on success, hijacks the connection into the WebSocket subsystem:
// the 101 response is serialized in raw mode, OnOpen runs on this same
// worker, and the first frame pass follows immediately. It reports
// whether the upgrade was accepted; on false it has already set an
// error response (400/426/503) and the connection stays HTTP.
func (ws *WS) Upgrade(ctx *httpaff.RequestCtx) bool {
	wid := ctx.Worker()
	if wid < 0 || wid >= len(ws.workers) {
		ctx.SetStatus(http.StatusInternalServerError)
		ctx.WriteString("wsaff: worker index out of range; Config.Workers must match the serving server")
		return false
	}
	if ctx.WillClose() {
		// Draining server, Connection: close request, or the request
		// that exhausted MaxRequestsPerConn: the transport is about to
		// die, so refuse to promise it a long life.
		ctx.SetStatus(http.StatusServiceUnavailable)
		ctx.WriteString("connection is closing; cannot upgrade")
		return false
	}
	if !http11.EqualFold(ctx.Method(), "get") ||
		!http11.EqualFold(ctx.Header("upgrade"), "websocket") ||
		!http11.TokenListContains(ctx.Header("connection"), "upgrade") {
		ctx.SetStatus(http.StatusBadRequest)
		ctx.WriteString("not a websocket upgrade")
		return false
	}
	if !http11.EqualFold(ctx.Header("sec-websocket-version"), "13") {
		ctx.SetStatus(http.StatusUpgradeRequired)
		ctx.SetHeader("Sec-WebSocket-Version", "13")
		return false
	}
	key := ctx.Header("sec-websocket-key")
	if len(key) == 0 {
		ctx.SetStatus(http.StatusBadRequest)
		ctx.WriteString("missing Sec-WebSocket-Key")
		return false
	}

	ctx.BeginRawResponse()
	ctx.RawWriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Accept: ")
	ctx.RawWrite(appendAcceptKey(nil, key))
	ctx.RawWriteString("\r\n\r\n")

	c := &Conn{
		ws:     ws,
		tc:     ctx.NetConn(),
		remote: ctx.RemoteAddr(),
		shard:  int32(wid),
	}
	c.lastActive.Store(time.Now().UnixNano())
	// Registration (shard membership, the open gauge, OnOpen) happens
	// on the first takeover pass, not here: the 101 has not flushed yet
	// — if the flush fails the takeover is never installed, and a conn
	// registered now would leak in the shard with OnOpen never called.
	// The takeover closure is the connection's one steady-state
	// allocation beyond the Conn itself, made once per lifetime.
	//
	// A parked socket the serve layer closes — shed LIFO under
	// descriptor or budget pressure, or the peer vanished mid-park —
	// would otherwise sit dead in its shard until the ping wheel's
	// probe failed; the park-close notification reaps it immediately,
	// so the shard gauge and OnClose track shedding in real time.
	ctx.NotifyParkClose(func() { c.finish(CloseAbnormal, true) })
	ctx.Hijack(func(worker int, nc net.Conn) bool { return ws.pass(worker, c, nc) })
	return true
}
