package wsaff

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"encoding/base64"
	"fmt"
	"io"
	"net"
	"strings"
)

// Client is a minimal RFC 6455 client — handshake, masked sends, frame
// reads with automatic pong replies. It exists so the subsystem's own
// tooling (affinity-bench's -ws mode, examples/chat, tests) can drive a
// wsaff server without duplicating the codec; it is intentionally not a
// full-featured client library (no fragmented sends, no extension
// negotiation, one goroutine's use at a time).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	key  [4]byte
	mbuf []byte // masked-send scratch, reused across Send calls
}

// Dial connects to addr and upgrades on path.
func Dial(addr, path string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, path)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the upgrade handshake on an already-open
// connection (benchmarks dial with explicit source ports to target flow
// groups). On error the caller still owns the connection.
func NewClient(conn net.Conn, path string) (*Client, error) {
	var nonce [16]byte
	rand.Read(nonce[:])
	wsKey := base64.StdEncoding.EncodeToString(nonce[:])
	req := "GET " + path + " HTTP/1.1\r\nHost: wsaff\r\nUpgrade: websocket\r\n" +
		"Connection: Upgrade\r\nSec-WebSocket-Key: " + wsKey + "\r\nSec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn)}
	rand.Read(c.key[:])
	status, err := c.br.ReadString('\n')
	if err != nil {
		return nil, err
	}
	if !strings.Contains(status, "101") {
		return nil, fmt.Errorf("wsaff: upgrade refused: %s", strings.TrimSpace(status))
	}
	accept := ""
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if want := string(appendAcceptKey(nil, []byte(wsKey))); accept != want {
		return nil, fmt.Errorf("wsaff: bad Sec-WebSocket-Accept %q", accept)
	}
	return c, nil
}

// NetConn exposes the underlying connection (for deadlines).
func (c *Client) NetConn() net.Conn { return c.conn }

// Close closes the transport without a closing handshake.
func (c *Client) Close() error { return c.conn.Close() }

// Send writes one complete masked message frame, reusing an internal
// buffer so a steady send loop does not allocate.
func (c *Client) Send(op Op, payload []byte) error {
	c.mbuf = appendMaskedFrame(c.mbuf[:0], true, op, c.key, payload)
	_, err := c.conn.Write(c.mbuf)
	return err
}

// SendClose writes a masked close frame.
func (c *Client) SendClose(code uint16, reason string) error {
	var pbuf [125]byte
	payload := pbuf[:0]
	if code != CloseNoStatus && code != CloseAbnormal {
		if len(reason) > 123 {
			reason = reason[:123]
		}
		payload = append(payload, byte(code>>8), byte(code))
		payload = append(payload, reason...)
	}
	c.mbuf = appendMaskedFrame(c.mbuf[:0], true, OpClose, c.key, payload)
	_, err := c.conn.Write(c.mbuf)
	return err
}

// ReadMessage reads the next data or close message, reassembling
// fragments, replying to pings automatically and skipping pongs. It
// returns OpClose (payload = close code + reason, possibly empty) when
// the server initiated a close; the payload buffer is the caller's to
// keep.
func (c *Client) ReadMessage() (Op, []byte, error) {
	var assembled []byte
	var msgOp Op
	for {
		h, payload, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch {
		case h.op == OpPing:
			if err := c.Send(OpPong, payload); err != nil {
				return 0, nil, err
			}
		case h.op == OpPong:
			// keep-alive noise
		case h.op == OpClose:
			return OpClose, payload, nil
		case h.op == OpContinuation:
			if msgOp == 0 {
				return 0, nil, fmt.Errorf("wsaff: server sent continuation without a message")
			}
			assembled = append(assembled, payload...)
			if h.fin {
				return msgOp, assembled, nil
			}
		default:
			if h.fin {
				return h.op, payload, nil
			}
			msgOp = h.op
			assembled = append(assembled, payload...)
		}
	}
}

// readFrame reads one server frame (servers never mask).
func (c *Client) readFrame() (header, []byte, error) {
	buf := make([]byte, 2, maxHeaderBytes)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return header{}, nil, err
	}
	for {
		h, n, err := decodeHeader(buf)
		if err != nil {
			return header{}, nil, err
		}
		if n > 0 {
			payload := make([]byte, h.length)
			if _, err := io.ReadFull(c.br, payload); err != nil {
				return header{}, nil, err
			}
			return h, payload, nil
		}
		buf = append(buf, 0)
		if _, err := io.ReadFull(c.br, buf[len(buf)-1:]); err != nil {
			return header{}, nil, err
		}
	}
}

// Echo round-trips one message and verifies the echo, for closed-loop
// load generators: it sends payload and reads messages until one
// matches (skipping interleaved broadcasts), returning how many frames
// it consumed.
func (c *Client) Echo(op Op, payload []byte) (skipped int, err error) {
	if err := c.Send(op, payload); err != nil {
		return 0, err
	}
	for {
		gotOp, got, err := c.ReadMessage()
		if err != nil {
			return skipped, err
		}
		if gotOp == OpClose {
			return skipped, io.EOF
		}
		if gotOp == op && bytes.Equal(got, payload) {
			return skipped, nil
		}
		skipped++
	}
}
