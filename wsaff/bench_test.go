package wsaff

import (
	"bytes"
	"context"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"affinityaccept/httpaff"
)

// benchPayload is fixed-size so every echoed frame has a known length
// and the client can read batches with one ReadFull.
var benchPayload = []byte("hello from the core-local frame path")

// startWSBench builds an echo server plus one upgraded connection and
// returns the conn with the echoed frame size.
func startWSBench(tb testing.TB) (net.Conn, int) {
	tb.Helper()
	ws, err := New(Config{
		Workers:   2,
		OnMessage: func(c *Conn, op Op, payload []byte) { c.Send(op, payload) },
	})
	if err != nil {
		tb.Fatal(err)
	}
	ws.Start()
	r := httpaff.NewRouter()
	r.Handle("/ws", func(ctx *httpaff.RequestCtx) { ws.Upgrade(ctx) })
	srv, err := httpaff.New(httpaff.Config{Workers: 2, Handler: r.Serve})
	if err != nil {
		tb.Fatal(err)
	}
	srv.Start()
	tb.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ws.Close()
	})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Minute))
	if _, err := conn.Write([]byte(upgradeRequest("/ws"))); err != nil {
		tb.Fatal(err)
	}
	// Consume the 101 head.
	buf := make([]byte, 4096)
	n := 0
	for !bytes.Contains(buf[:n], []byte("\r\n\r\n")) {
		m, err := conn.Read(buf[n:])
		if err != nil {
			tb.Fatal(err)
		}
		n += m
	}
	if i := bytes.Index(buf[:n], []byte("\r\n\r\n")); n > i+4 {
		tb.Fatalf("unexpected bytes after the 101 head: %q", buf[i+4:n])
	}
	echoLen := len(appendFrame(nil, OpBinary, benchPayload))
	return conn, echoLen
}

// BenchmarkEchoFrames measures pipelined echo round trips — depth
// frames per batch — and enforces the zero-allocation claim for the
// steady-state frame path.
func BenchmarkEchoFrames(b *testing.B) {
	conn, echoLen := startWSBench(b)
	const depth = 32
	key := [4]byte{1, 2, 3, 4}
	var batch []byte
	for i := 0; i < depth; i++ {
		batch = appendMaskedFrame(batch, true, OpBinary, key, benchPayload)
	}
	resp := make([]byte, depth*echoLen)
	// Warm up: codec buffers, park wrapper, flow-table route.
	if _, err := conn.Write(batch); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(conn, resp); err != nil {
		b.Fatal(err)
	}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ReportAllocs()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for served := 0; served < b.N; {
		n := depth
		if remaining := b.N - served; remaining < n {
			n = remaining
		}
		if _, err := conn.Write(batch[:n*len(batch)/depth]); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, resp[:n*echoLen]); err != nil {
			b.Fatal(err)
		}
		served += n
	}
	b.StopTimer()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if b.N >= 1000 {
		perOp := float64(after.Mallocs-before.Mallocs) / float64(b.N)
		if perOp >= 1 {
			b.Fatalf("%.2f allocs per frame on the steady-state path, want 0", perOp)
		}
	}
}

// TestWSSteadyStateZeroAlloc enforces the 0 allocs/frame claim in a
// plain test run: after warm-up, a thousand echoed frames allocate
// fewer than one object per frame process-wide.
func TestWSSteadyStateZeroAlloc(t *testing.T) {
	conn, echoLen := startWSBench(t)
	const depth, batches = 50, 20
	key := [4]byte{5, 6, 7, 8}
	var batch []byte
	for i := 0; i < depth; i++ {
		batch = appendMaskedFrame(batch, true, OpBinary, key, benchPayload)
	}
	resp := make([]byte, depth*echoLen)
	roundTrip := func() {
		if _, err := conn.Write(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, resp); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip()
	roundTrip()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < batches; i++ {
		roundTrip()
	}
	runtime.ReadMemStats(&after)
	perFrame := float64(after.Mallocs-before.Mallocs) / float64(depth*batches)
	if perFrame >= 1 {
		t.Fatalf("steady-state frame path allocates %.2f objects per frame, want 0 "+
			"(total %d mallocs over %d frames)", perFrame, after.Mallocs-before.Mallocs, depth*batches)
	}
	t.Logf("steady state: %.3f allocs/frame (%d mallocs over %d frames)",
		perFrame, after.Mallocs-before.Mallocs, depth*batches)
}
