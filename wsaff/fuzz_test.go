package wsaff

import (
	"bytes"
	"testing"
)

// reencodeHeader rebuilds the wire bytes a decoded header must have
// come from. Because decodeHeader enforces minimal length encoding,
// every valid header has exactly one encoding — which makes exact
// re-encoding a fuzzable invariant.
func reencodeHeader(h header) []byte {
	b0 := byte(h.op)
	if h.fin {
		b0 |= 0x80
	}
	var mask byte
	if h.masked {
		mask = 0x80
	}
	n := h.length
	var b []byte
	switch {
	case n <= 125:
		b = []byte{b0, mask | byte(n)}
	case n <= 1<<16-1:
		b = []byte{b0, mask | 126, byte(n >> 8), byte(n)}
	default:
		b = []byte{b0, mask | 127,
			byte(uint64(n) >> 56), byte(uint64(n) >> 48), byte(uint64(n) >> 40), byte(uint64(n) >> 32),
			byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	}
	if h.masked {
		b = append(b, h.key[:]...)
	}
	return b
}

// FuzzDecodeHeader fuzzes the frame-header decoder directly. The
// contract:
//
//   - never panic;
//   - n is 0 (incomplete) or the exact header length, never past the
//     input or the 14-byte maximum;
//   - a decoded header re-encodes to exactly the bytes it was decoded
//     from (unique encoding — this is what the minimal-length rule
//     buys);
//   - every prefix of a valid header reports incomplete, not an error
//     (a frame split across TCP segments must never be misjudged).
func FuzzDecodeHeader(f *testing.F) {
	f.Add([]byte{0x81, 0x85, 1, 2, 3, 4, 'h', 'e', 'l', 'l', 'o'})
	f.Add(appendMaskedFrame(nil, true, OpBinary, [4]byte{9, 8, 7, 6}, bytes.Repeat([]byte("x"), 300)))
	f.Add(appendMaskedFrame(nil, false, OpText, [4]byte{1, 1, 1, 1}, []byte("frag")))
	f.Add(appendMaskedFrame(nil, true, OpContinuation, [4]byte{2, 2, 2, 2}, []byte("end")))
	f.Add(appendFrame(nil, OpPong, nil))
	f.Add(appendClose(nil, CloseNormal, "bye"))
	f.Add([]byte{0x88, 0x80, 0, 0, 0, 0})
	f.Add([]byte{0xC1, 0x80})             // RSV bits
	f.Add([]byte{0x83, 0x80})             // reserved opcode
	f.Add([]byte{0x09, 0x80})             // fragmented ping
	f.Add([]byte{0x82, 0x80 | 126, 0, 5}) // non-minimal 16-bit length
	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := decodeHeader(data)
		if err != nil {
			return // rejected: nothing more to hold it to
		}
		if n == 0 {
			return // incomplete prefix
		}
		if n > len(data) || n > maxHeaderBytes {
			t.Fatalf("header length %d beyond input %d / max %d", n, len(data), maxHeaderBytes)
		}
		if h.length < 0 {
			t.Fatalf("negative payload length %d", h.length)
		}
		if h.op.IsControl() && (h.length > 125 || !h.fin) {
			t.Fatalf("control-frame rules not enforced: %+v", h)
		}
		if got := reencodeHeader(h); !bytes.Equal(got, data[:n]) {
			t.Fatalf("header does not re-encode to its wire bytes: % x -> %+v -> % x", data[:n], h, got)
		}
		for i := 0; i < n; i++ {
			if _, pn, perr := decodeHeader(data[:i]); perr != nil || pn != 0 {
				t.Fatalf("prefix %d of a valid header misjudged: n=%d err=%v", i, pn, perr)
			}
		}
	})
}

// FuzzDecodeFrameStream drives the decoder the way the pass loop does:
// consume frames front to back. The invariant under fuzzing is forward
// progress — every complete frame advances the cursor, so the frame
// loop can never spin on hostile bytes — plus total consumption never
// passing the buffer.
func FuzzDecodeFrameStream(f *testing.F) {
	var stream []byte
	key := [4]byte{0xAA, 0xBB, 0xCC, 0xDD}
	stream = appendMaskedFrame(stream, false, OpText, key, []byte("first "))
	stream = appendMaskedFrame(stream, true, OpPing, key, []byte("mid"))
	stream = appendMaskedFrame(stream, true, OpContinuation, key, []byte("second"))
	f.Add(stream)
	f.Add(appendMaskedFrame(nil, true, OpClose, key, []byte{0x03, 0xE8}))
	f.Add([]byte{0x81})
	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		for i := 0; i < len(data)+1; i++ { // bounded: progress must end the walk first
			h, n, err := decodeHeader(data[pos:])
			if err != nil || n == 0 {
				return // protocol error or incomplete: the pass stops reading here
			}
			total := n + int(h.length)
			if total <= 0 {
				t.Fatalf("frame at %d consumes %d bytes: no forward progress", pos, total)
			}
			if pos+total > len(data) {
				return // frame extends past the buffer: the pass would read more
			}
			if h.masked {
				// Unmasking must stay in bounds and be an involution.
				payload := append([]byte(nil), data[pos+n:pos+total]...)
				unmask(h.key, 0, payload)
				unmask(h.key, 0, payload)
				if !bytes.Equal(payload, data[pos+n:pos+total]) {
					t.Fatal("unmask is not an involution")
				}
			}
			pos += total
		}
		t.Fatalf("frame walk did not terminate over %d bytes", len(data))
	})
}
