package wsaff

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/internal/loadgen"
	"affinityaccept/internal/testutil"
)

// startWS builds an httpaff server with a /ws upgrade route on a WS
// with the given config (OnMessage defaults to echo).
func startWS(t *testing.T, cfg Config, httpCfg httpaff.Config) (*httpaff.Server, *WS) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.OnMessage == nil {
		cfg.OnMessage = func(c *Conn, op Op, payload []byte) { c.Send(op, payload) }
	}
	ws, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws.Start()
	r := httpaff.NewRouter()
	r.Handle("/ws", func(ctx *httpaff.RequestCtx) { ws.Upgrade(ctx) })
	r.Handle("/plain", func(ctx *httpaff.RequestCtx) { ctx.WriteString("http still works") })
	httpCfg.Workers = cfg.Workers
	httpCfg.Handler = r.Serve
	srv, err := httpaff.New(httpCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		ws.Close()
	})
	return srv, ws
}

const testKey = "dGhlIHNhbXBsZSBub25jZQ=="

func upgradeRequest(path string) string {
	return "GET " + path + " HTTP/1.1\r\nHost: ws.test\r\nUpgrade: websocket\r\n" +
		"Connection: Upgrade\r\nSec-WebSocket-Key: " + testKey + "\r\nSec-WebSocket-Version: 13\r\n\r\n"
}

// wsClient is a minimal RFC 6455 client for driving the server.
type wsClient struct {
	conn net.Conn
	br   *bufio.Reader
	key  [4]byte
}

// dialWS connects (optionally from a specific conn) and upgrades.
func dialWS(t *testing.T, addr string) *wsClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return upgradeClient(t, conn)
}

func upgradeClient(t *testing.T, conn net.Conn) *wsClient {
	t.Helper()
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(20 * time.Second))
	c := &wsClient{conn: conn, br: bufio.NewReader(conn), key: [4]byte{0x12, 0x34, 0x56, 0x78}}
	if _, err := conn.Write([]byte(upgradeRequest("/ws"))); err != nil {
		t.Fatal(err)
	}
	status, headers := c.readResponseHead(t)
	if !strings.Contains(status, "101") {
		t.Fatalf("upgrade status %q", status)
	}
	want := string(appendAcceptKey(nil, []byte(testKey)))
	if headers["sec-websocket-accept"] != want {
		t.Fatalf("accept key %q, want %q", headers["sec-websocket-accept"], want)
	}
	return c
}

func (c *wsClient) readResponseHead(t *testing.T) (status string, headers map[string]string) {
	t.Helper()
	status, err := c.br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	headers = make(map[string]string)
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			return status, headers
		}
		k, v, _ := strings.Cut(line, ":")
		headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
}

func (c *wsClient) send(t *testing.T, fin bool, op Op, payload []byte) {
	t.Helper()
	frame := appendMaskedFrame(nil, fin, op, c.key, payload)
	if _, err := c.conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// readFrame reads one server frame (servers never mask).
func (c *wsClient) readFrame(t *testing.T) (header, []byte) {
	t.Helper()
	buf := make([]byte, 2, maxHeaderBytes)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		t.Fatal(err)
	}
	for {
		h, n, err := decodeHeader(buf)
		if err != nil {
			t.Fatalf("server sent bad header % x: %v", buf, err)
		}
		if n > 0 {
			payload := make([]byte, h.length)
			if _, err := io.ReadFull(c.br, payload); err != nil {
				t.Fatal(err)
			}
			return h, payload
		}
		buf = append(buf, 0)
		if _, err := io.ReadFull(c.br, buf[len(buf)-1:]); err != nil {
			t.Fatal(err)
		}
	}
}

func (c *wsClient) expectMessage(t *testing.T, op Op, payload string) {
	t.Helper()
	h, got := c.readFrame(t)
	if h.op != op || !h.fin || string(got) != payload {
		t.Fatalf("got frame op=%d fin=%v %q, want op=%d %q", h.op, h.fin, got, op, payload)
	}
}

func (c *wsClient) expectClose(t *testing.T, code uint16) {
	t.Helper()
	h, payload := c.readFrame(t)
	if h.op != OpClose {
		t.Fatalf("got frame op=%d %q, want close", h.op, payload)
	}
	got := CloseNoStatus
	if len(payload) >= 2 {
		got = uint16(payload[0])<<8 | uint16(payload[1])
	}
	if got != code {
		t.Fatalf("close code %d, want %d", got, code)
	}
}

func TestUpgradeHandshake(t *testing.T) {
	srv, ws := startWS(t, Config{}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String()) // asserts 101 + accept key
	c.send(t, true, OpText, []byte("hello"))
	c.expectMessage(t, OpText, "hello")
	if st := ws.Stats(); st.Open != 1 {
		t.Errorf("open = %d, want 1", st.Open)
	}

	// A non-upgrade request on the same server still speaks HTTP.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	fmt.Fprint(conn, "GET /plain HTTP/1.1\r\nHost: t\r\n\r\n")
	cl := &wsClient{conn: conn, br: bufio.NewReader(conn)}
	status, _ := cl.readResponseHead(t)
	if !strings.Contains(status, "200") {
		t.Fatalf("plain route status %q", status)
	}
}

func TestUpgradeRejections(t *testing.T) {
	srv, _ := startWS(t, Config{}, httpaff.Config{})
	cases := []struct {
		name, req string
		wantCode  string
	}{
		{"wrong version", "GET /ws HTTP/1.1\r\nHost: t\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: " + testKey + "\r\nSec-WebSocket-Version: 8\r\n\r\n", "426"},
		{"missing key", "GET /ws HTTP/1.1\r\nHost: t\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Version: 13\r\n\r\n", "400"},
		{"no upgrade header", "GET /ws HTTP/1.1\r\nHost: t\r\n\r\n", "400"},
		{"post", "POST /ws HTTP/1.1\r\nHost: t\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: " + testKey + "\r\nSec-WebSocket-Version: 13\r\n\r\n", "400"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			if _, err := conn.Write([]byte(tc.req)); err != nil {
				t.Fatal(err)
			}
			cl := &wsClient{conn: conn, br: bufio.NewReader(conn)}
			status, headers := cl.readResponseHead(t)
			if !strings.Contains(status, tc.wantCode) {
				t.Fatalf("status %q, want %s", status, tc.wantCode)
			}
			if tc.wantCode == "426" && headers["sec-websocket-version"] != "13" {
				t.Errorf("426 must advertise Sec-WebSocket-Version: 13, got %q", headers["sec-websocket-version"])
			}
		})
	}
}

// TestEchoAcrossParks round-trips messages with idle gaps: every
// message after the first wakes a parked connection, so each round trip
// exercises park → flow-table route → pass.
func TestEchoAcrossParks(t *testing.T) {
	srv, ws := startWS(t, Config{}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	for i := 0; i < 5; i++ {
		msg := fmt.Sprintf("message %d", i)
		c.send(t, true, OpText, []byte(msg))
		c.expectMessage(t, OpText, msg)
	}
	waitUntil(t, 5*time.Second, func() bool { return srv.Stats().Requeued >= 5 }, "connection never parked between messages")
	if st := ws.Stats(); st.MessagesIn != 5 || st.FramesIn != 5 {
		t.Errorf("messages %d frames %d, want 5/5", st.MessagesIn, st.FramesIn)
	}
}

// TestResidualFramesAfterUpgrade pipelines frames in the same TCP
// segment as the upgrade request: they must replay to the takeover on
// the upgrade pass itself, without waiting for fresh input.
func TestResidualFramesAfterUpgrade(t *testing.T) {
	srv, _ := startWS(t, Config{}, httpaff.Config{})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(20 * time.Second))
	key := [4]byte{9, 9, 9, 9}
	blob := []byte(upgradeRequest("/ws"))
	blob = appendMaskedFrame(blob, true, OpText, key, []byte("first"))
	blob = appendMaskedFrame(blob, true, OpText, key, []byte("second"))
	if _, err := conn.Write(blob); err != nil {
		t.Fatal(err)
	}
	c := &wsClient{conn: conn, br: bufio.NewReader(conn), key: key}
	status, _ := c.readResponseHead(t)
	if !strings.Contains(status, "101") {
		t.Fatalf("status %q", status)
	}
	c.expectMessage(t, OpText, "first")
	c.expectMessage(t, OpText, "second")
}

func TestFragmentedMessageWithInterleavedPing(t *testing.T) {
	srv, ws := startWS(t, Config{}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	c.send(t, false, OpText, []byte("frag"))
	c.send(t, true, OpPing, []byte("mid")) // control frames interleave legally
	c.send(t, false, OpContinuation, []byte("mented "))
	c.send(t, true, OpContinuation, []byte("message"))
	c.expectMessage(t, OpPong, "mid")
	c.expectMessage(t, OpText, "fragmented message")
	if st := ws.Stats(); st.MessagesIn != 1 {
		t.Errorf("messages = %d, want 1 (reassembled)", st.MessagesIn)
	}
}

func TestCloseHandshake(t *testing.T) {
	var closed atomic.Int64
	var code atomic.Int64
	srv, ws := startWS(t, Config{
		OnClose: func(c *Conn, cc uint16) { code.Store(int64(cc)); closed.Add(1) },
	}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	payload := []byte{byte(CloseNormal >> 8), byte(CloseNormal & 0xFF)}
	c.send(t, true, OpClose, payload)
	c.expectClose(t, CloseNormal)
	if _, err := c.br.ReadByte(); err != io.EOF {
		t.Fatalf("transport open after close handshake: %v", err)
	}
	waitUntil(t, 5*time.Second, func() bool { return closed.Load() == 1 }, "OnClose never fired")
	if got := uint16(code.Load()); got != CloseNormal {
		t.Errorf("OnClose code %d, want %d", got, CloseNormal)
	}
	waitUntil(t, 5*time.Second, func() bool { return ws.Stats().Open == 0 }, "open gauge never returned to 0")
}

func TestProtocolErrorCloses(t *testing.T) {
	srv, _ := startWS(t, Config{}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	// Unmasked client frame: 1002.
	if _, err := c.conn.Write(appendFrame(nil, OpText, []byte("bare"))); err != nil {
		t.Fatal(err)
	}
	c.expectClose(t, CloseProtocolError)

	// Continuation with no message in flight: 1002.
	c2 := dialWS(t, srv.Addr().String())
	c2.send(t, true, OpContinuation, []byte("orphan"))
	c2.expectClose(t, CloseProtocolError)
}

func TestMessageTooBigCloses(t *testing.T) {
	srv, _ := startWS(t, Config{MaxMessageBytes: 64}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	c.send(t, true, OpBinary, bytes.Repeat([]byte("x"), 65))
	c.expectClose(t, CloseTooBig)

	// The cap also bounds fragmented reassembly.
	c2 := dialWS(t, srv.Addr().String())
	c2.send(t, false, OpBinary, bytes.Repeat([]byte("x"), 60))
	c2.send(t, true, OpContinuation, bytes.Repeat([]byte("x"), 60))
	c2.expectClose(t, CloseTooBig)
}

// TestServerPingKeepAlive: a silent client is pinged by the timer
// wheel; its pong rides the park→route→pass path and keeps it alive.
func TestServerPingKeepAlive(t *testing.T) {
	srv, ws := startWS(t, Config{PingInterval: 50 * time.Millisecond, IdleTimeout: 5 * time.Second}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	c.send(t, true, OpText, []byte("hi")) // open the conn's first pass
	c.expectMessage(t, OpText, "hi")
	h, _ := c.readFrame(t) // wheel ping arrives while we idle
	if h.op != OpPing {
		t.Fatalf("expected ping, got op %d", h.op)
	}
	c.send(t, true, OpPong, nil)
	waitUntil(t, 5*time.Second, func() bool { return ws.Stats().PongsReceived >= 1 }, "pong never processed")
	st := ws.Stats()
	if st.PingsSent == 0 {
		t.Error("no pings counted")
	}
	if st.Open != 1 {
		t.Errorf("responsive conn was reaped: open = %d", st.Open)
	}
	// The pong wake is a served pass: keep-alive traffic itself flows
	// through the affinity machinery.
	if srv.Stats().Requeued == 0 {
		t.Error("pong pass did not ride the requeue path")
	}
}

// TestIdleTimeoutReapsSilentPeer: with pings disabled and a short idle
// timeout, a silent peer's park deadline fires and the wheel reaps it
// with OnClose(1006).
func TestIdleTimeoutReapsSilentPeer(t *testing.T) {
	var closed atomic.Int64
	srv, ws := startWS(t, Config{
		PingInterval: 30 * time.Millisecond,
		IdleTimeout:  90 * time.Millisecond,
		OnClose:      func(c *Conn, code uint16) { closed.Store(int64(code)) },
	}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	c.send(t, true, OpText, []byte("only message"))
	c.expectMessage(t, OpText, "only message")
	// Swallow pings, never pong, never send again.
	waitUntil(t, 10*time.Second, func() bool { return ws.Stats().Open == 0 }, "silent peer never reaped")
	waitUntil(t, 5*time.Second, func() bool { return closed.Load() == int64(CloseAbnormal) }, "OnClose(1006) never fired")
	_ = srv
}

func TestBroadcastFanOut(t *testing.T) {
	done := make(chan struct{})
	srv, ws := startWS(t, Config{
		OnOpen: func(c *Conn) { c.Subscribe() },
		OnMessage: func(c *Conn, op Op, payload []byte) {
			if string(payload) == "leave" {
				c.Unsubscribe()
				close(done)
				return
			}
			c.Send(op, payload)
		},
	}, httpaff.Config{})
	const n = 8
	clients := make([]*wsClient, n)
	for i := range clients {
		clients[i] = dialWS(t, srv.Addr().String())
		clients[i].send(t, true, OpText, []byte("join")) // force the first pass (OnOpen)
		clients[i].expectMessage(t, OpText, "join")
	}
	waitUntil(t, 5*time.Second, func() bool { return ws.Stats().Subscribers == n }, "subscriptions never registered")

	ws.Broadcast(OpText, []byte("to everyone"))
	for i, c := range clients {
		h, payload := c.readFrame(t)
		if h.op != OpText || string(payload) != "to everyone" {
			t.Fatalf("client %d got op=%d %q", i, h.op, payload)
		}
	}
	st := ws.Stats()
	if st.Broadcasts != 1 || st.Delivered != n {
		t.Errorf("broadcasts %d delivered %d, want 1 and %d", st.Broadcasts, st.Delivered, n)
	}
	// Unsubscribe one; it must stop receiving. (Driven via a message so
	// the operation runs inline on the owning worker, as it would in a
	// real application.)
	clients[0].send(t, true, OpText, []byte("leave"))
	<-done
	ws.Broadcast(OpText, []byte("round two"))
	for _, c := range clients[1:] {
		h, payload := c.readFrame(t)
		if h.op != OpText || string(payload) != "round two" {
			t.Fatalf("got op=%d %q", h.op, payload)
		}
	}
	if st := ws.Stats(); st.Subscribers != n-1 {
		t.Errorf("subscribers = %d, want %d", st.Subscribers, n-1)
	}
}

// TestMigrationMovesShard drives a skewed long-lived WebSocket workload
// — every connection's flow group initially owned by worker 0 — and
// checks that §3.3.2 migration moves connections *and* their shard
// registrations to the stealing workers.
func TestMigrationMovesShard(t *testing.T) {
	const groups = 16
	var mu sync.Mutex
	workersSeen := make(map[int]bool)
	ws, err := New(Config{
		Workers: 4,
		OnOpen:  func(c *Conn) { c.Subscribe() },
		OnMessage: func(c *Conn, op Op, payload []byte) {
			time.Sleep(200 * time.Microsecond) // service time: make the skew hurt
			mu.Lock()
			workersSeen[c.Worker()] = true
			mu.Unlock()
			c.Send(op, payload)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ws.Start()
	r := httpaff.NewRouter()
	r.Handle("/ws", func(ctx *httpaff.RequestCtx) { ws.Upgrade(ctx) })
	srv, err := httpaff.New(httpaff.Config{
		Workers:         4,
		Handler:         r.Serve,
		FlowGroups:      groups,
		MigrateInterval: 2 * time.Millisecond,
		Backlog:         4 * 64,
		HighPct:         20,
		LowPct:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
		ws.Close()
	})

	// Groups initially owned by worker 0.
	var hot []int
	base := loadgen.PortBase(groups)
	for g := 0; g < srv.FlowGroups(); g++ {
		if srv.OwnerOf(uint16(base+g)) == 0 {
			hot = append(hot, g)
		}
	}
	if len(hot) == 0 {
		t.Fatal("worker 0 owns no groups")
	}

	const conns = 16
	var wg sync.WaitGroup
	stop := time.Now().Add(500 * time.Millisecond)
	for i := 0; i < conns; i++ {
		nc, err := loadgen.DialGroup(srv.Addr().String(), hot[i%len(hot)], groups)
		if err != nil {
			t.Fatal(err)
		}
		c := upgradeClient(t, nc)
		wg.Add(1)
		go func(c *wsClient) {
			defer wg.Done()
			for time.Now().Before(stop) {
				c.send(t, true, OpBinary, []byte("workload"))
				h, _ := c.readFrame(t)
				if h.op != OpBinary {
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	if st.Migrations == 0 {
		t.Error("no flow-group migrations under a skewed WebSocket workload")
	}
	mu.Lock()
	multi := len(workersSeen) > 1
	mu.Unlock()
	if !multi {
		t.Error("connections never moved off worker 0's shard")
	}
	t.Logf("locality %.1f%%, %d migrations, workers seen %v", st.LocalityPct(), st.Migrations, workersSeen)
}

// TestShutdownClosesHeldOpenSockets: server shutdown closes parked
// WebSocket transports and WS.Close turns them into OnClose callbacks.
func TestShutdownClosesHeldOpenSockets(t *testing.T) {
	var closes atomic.Int64
	ws, err := New(Config{
		Workers:   2,
		OnMessage: func(c *Conn, op Op, payload []byte) { c.Send(op, payload) },
		OnClose:   func(c *Conn, code uint16) { closes.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ws.Start()
	r := httpaff.NewRouter()
	r.Handle("/ws", func(ctx *httpaff.RequestCtx) { ws.Upgrade(ctx) })
	srv, err := httpaff.New(httpaff.Config{Workers: 2, Handler: r.Serve})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	const n = 4
	clients := make([]*wsClient, n)
	for i := range clients {
		clients[i] = dialWS(t, srv.Addr().String())
		clients[i].send(t, true, OpText, []byte("hold"))
		clients[i].expectMessage(t, OpText, "hold")
	}
	waitUntil(t, 5*time.Second, func() bool { return srv.Transport().Parked() == n }, "sockets never parked")
	if got := srv.Stats().Parked; got != n {
		t.Errorf("Stats.Parked = %d, want %d", got, n)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ws.Close()
	if got := closes.Load(); got != n {
		t.Errorf("OnClose fired %d times, want %d", got, n)
	}
	for _, c := range clients {
		c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.br.ReadByte(); err == nil {
			t.Error("held-open socket still readable after shutdown")
		}
	}
}

// waitUntil is testutil.WaitFor: poll instead of sleep in
// timing-sensitive tests.
func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	testutil.WaitFor(t, d, cond, msg)
}
