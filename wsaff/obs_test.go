package wsaff

import (
	"strings"
	"testing"

	"affinityaccept/httpaff"
)

// TestWriteObsMetricsSeries drives one echo exchange and checks the
// Prometheus writer reports it across the subsystem's series.
func TestWriteObsMetricsSeries(t *testing.T) {
	srv, ws := startWS(t, Config{}, httpaff.Config{})
	c := dialWS(t, srv.Addr().String())
	c.send(t, true, OpText, []byte("hello"))
	c.expectMessage(t, OpText, "hello")

	var b strings.Builder
	ws.WriteObsMetrics(&b)
	out := b.String()
	for _, series := range []string{
		"affinity_ws_open 1",
		"affinity_ws_frames_total{direction=\"in\"}",
		"affinity_ws_frames_total{direction=\"out\"}",
		"affinity_ws_messages_total 1",
		"affinity_ws_pings_sent_total",
		"affinity_ws_broadcast_dropped_total 0",
		`affinity_ws_codec_reuses_total{worker="0"}`,
		`affinity_ws_codec_reuses_total{worker="1"}`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("ws metrics missing %q", series)
		}
	}
}
