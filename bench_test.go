// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per artifact, in reduced ("quick") form so the whole
// suite completes in minutes. The cmd/affinity-bench binary runs the
// full-scale versions. Each benchmark reports the reproduced artifact
// through -v logging and paper-shaped custom metrics where meaningful.
package affinityaccept

import (
	"fmt"
	"testing"
)

// benchOpts keeps benchmark runs reduced and deterministic.
var benchOpts = Options{Quick: true, Seed: 42}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkTable1Latencies(b *testing.B)     { runExperiment(b, "T1") }
func BenchmarkTable2LockStat(b *testing.B)      { runExperiment(b, "T2") }
func BenchmarkTable3KernelEntries(b *testing.B) { runExperiment(b, "T3") }
func BenchmarkTable4DProf(b *testing.B)         { runExperiment(b, "T4") }
func BenchmarkTable5NICs(b *testing.B)          { runExperiment(b, "T5") }

func BenchmarkFigure2ApacheAMD(b *testing.B)       { runExperiment(b, "F2") }
func BenchmarkFigure3LighttpdAMD(b *testing.B)     { runExperiment(b, "F3") }
func BenchmarkFigure4LatencyCDF(b *testing.B)      { runExperiment(b, "F4") }
func BenchmarkFigure5ApacheIntel(b *testing.B)     { runExperiment(b, "F5") }
func BenchmarkFigure6LighttpdIntel(b *testing.B)   { runExperiment(b, "F6") }
func BenchmarkFigure7RequestsPerConn(b *testing.B) { runExperiment(b, "F7") }
func BenchmarkFigure8ThinkTime(b *testing.B)       { runExperiment(b, "F8") }
func BenchmarkFigure9FileSize(b *testing.B)        { runExperiment(b, "F9") }
func BenchmarkFigure10TwentyPolicy(b *testing.B)   { runExperiment(b, "F10") }

func BenchmarkBalancerLatency(b *testing.B)  { runExperiment(b, "LB1") }
func BenchmarkBalancerMakeTime(b *testing.B) { runExperiment(b, "LB2") }

func BenchmarkAblationRequestTable(b *testing.B)  { runExperiment(b, "A1") }
func BenchmarkAblationStealRatio(b *testing.B)    { runExperiment(b, "A2") }
func BenchmarkAblationApachePinning(b *testing.B) { runExperiment(b, "A3") }
func BenchmarkAblationFlowGroups(b *testing.B)    { runExperiment(b, "A4") }
func BenchmarkAblationWatermarks(b *testing.B)    { runExperiment(b, "A5") }

func BenchmarkExtensionSoftwareRFS(b *testing.B) { runExperiment(b, "X1") }

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// requests processed per wall-clock second on the reference scenario.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var simReqs uint64
	for i := 0; i < b.N; i++ {
		r := Simulate(RunConfig{
			Cores:        12,
			Listen:       AffinityAccept,
			Server:       Apache,
			ConnsPerCore: 128,
			WarmupS:      0.2,
			MeasureS:     0.3,
			Seed:         int64(i),
		})
		simReqs += r.Requests
	}
	b.ReportMetric(float64(simReqs)/b.Elapsed().Seconds(), "simreq/s")
}

// BenchmarkListenSocketComparison reports the three designs' simulated
// throughput side by side as custom metrics (the paper's headline).
func BenchmarkListenSocketComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, kind := range []ListenKind{StockAccept, FineAccept, AffinityAccept} {
			r := Simulate(RunConfig{
				Cores:  12,
				Listen: kind,
				Server: Apache,
				Seed:   42,
			})
			b.ReportMetric(r.ReqPerSecPerCore, fmt.Sprintf("%s-req/s/core", kind))
			out += fmt.Sprintf("%s: %.0f  ", kind, r.ReqPerSecPerCore)
		}
		if i == 0 && testing.Verbose() {
			b.Log(out)
		}
	}
}
