package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestHistExactSmallValues pins the unit-bucket range: every value
// below 2^subBits must round-trip exactly through bucket and bound.
func TestHistExactSmallValues(t *testing.T) {
	h := NewHist(4)
	for v := int64(0); v < 16; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	for v := 0; v < 16; v++ {
		if s.Buckets[v] != 1 {
			t.Fatalf("value %d not in its exact bucket: %v", v, s.Buckets[:16])
		}
		if ub := s.UpperBound(v); ub != int64(v) {
			t.Fatalf("UpperBound(%d) = %d, want exact", v, ub)
		}
	}
	if s.Count != 16 || s.Sum != 120 {
		t.Fatalf("count %d sum %d, want 16 / 120", s.Count, s.Sum)
	}
}

// TestHistBucketBoundInvariant sweeps values across the whole range and
// checks the defining property of the log-linear layout: a value's
// bucket upper bound is >= the value and within the bucket's relative
// width (2^-subBits) of it.
func TestHistBucketBoundInvariant(t *testing.T) {
	for _, sb := range []int{1, 2, 4, 8} {
		h := NewHist(sb)
		snap := HistSnapshot{SubBits: uint(sb)}
		rng := rand.New(rand.NewSource(int64(sb)))
		for i := 0; i < 20000; i++ {
			// Log-uniform values up to 2^62.
			v := int64(1) << uint(rng.Intn(62))
			v += rng.Int63n(v)
			idx := h.bucketIndex(uint64(v))
			ub := snap.UpperBound(idx)
			if ub < v {
				t.Fatalf("sb=%d v=%d: upper bound %d below value (bucket %d)", sb, v, ub, idx)
			}
			maxErr := float64(v) / float64(int64(1)<<uint(sb))
			if float64(ub-v) > maxErr+1 {
				t.Fatalf("sb=%d v=%d: upper bound %d overshoots by %d (> %.0f)", sb, v, ub, ub-v, maxErr)
			}
			if idx > 0 {
				if lower := snap.UpperBound(idx - 1); lower >= v {
					t.Fatalf("sb=%d v=%d: previous bucket bound %d not below value", sb, v, lower)
				}
			}
		}
	}
}

// TestHistQuantileWithinErrorBound is the property test behind the
// scrape endpoints' quantiles: against a random sample, every reported
// quantile must be >= the exact order statistic and within the bucket
// relative error of it. Also exercised merged: two disjoint halves
// recorded into separate histograms and merged must report the same
// buckets as one histogram fed everything.
func TestHistQuantileWithinErrorBound(t *testing.T) {
	const sb = 4
	rng := rand.New(rand.NewSource(7))
	whole := NewHist(sb)
	h1, h2 := NewHist(sb), NewHist(sb)
	values := make([]int64, 0, 30000)
	for i := 0; i < 30000; i++ {
		var v int64
		switch rng.Intn(3) {
		case 0:
			v = rng.Int63n(1000) // sub-microsecond latencies
		case 1:
			v = 50_000 + rng.Int63n(500_000) // typical service times
		default:
			v = rng.Int63n(1 << 32) // heavy tail
		}
		values = append(values, v)
		whole.Record(v)
		if i%2 == 0 {
			h1.Record(v)
		} else {
			h2.Record(v)
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	merged := h1.Snapshot()
	merged.Merge(h2.Snapshot())
	ws := whole.Snapshot()
	if merged.Count != ws.Count || merged.Sum != ws.Sum {
		t.Fatalf("merge drifted: count %d/%d sum %d/%d", merged.Count, ws.Count, merged.Sum, ws.Sum)
	}
	for i := range ws.Buckets {
		if ws.Buckets[i] != merged.Buckets[i] {
			t.Fatalf("merged bucket %d = %d, whole = %d", i, merged.Buckets[i], ws.Buckets[i])
		}
	}

	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		exact := values[int(q*float64(len(values)-1))]
		got := merged.Quantile(q)
		if got < exact {
			t.Fatalf("q=%.3f: histogram %d below exact %d", q, got, exact)
		}
		maxErr := float64(exact)/16 + 1
		if float64(got-exact) > maxErr+float64(exact)/16 {
			// Allow one extra bucket width of rank slop at the edges.
			t.Fatalf("q=%.3f: histogram %d overshoots exact %d beyond bucket error", q, got, exact)
		}
	}
}

// TestHistConcurrentRecordSnapshot hammers Record from several
// goroutines while snapshotting concurrently: snapshots must always be
// internally consistent (count == bucket sum by construction — checked
// monotonic) and the final tally must be exact.
func TestHistConcurrentRecordSnapshot(t *testing.T) {
	const (
		writers = 8
		each    = 20000
	)
	h := NewHist(4)
	stop := make(chan struct{})
	var readers, writersWG sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader
		defer readers.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("snapshot count went backwards: %d -> %d", last, s.Count)
				return
			}
			last = s.Count
			var sum uint64
			for _, n := range s.Buckets {
				sum += n
			}
			if sum != s.Count {
				t.Errorf("snapshot buckets sum %d != count %d", sum, s.Count)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < each; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if got := h.Snapshot().Count; got != writers*each {
		t.Fatalf("final count %d, want %d", got, writers*each)
	}
}

// TestHistRecordAllocs pins the hot-path contract: recording allocates
// nothing.
func TestHistRecordAllocs(t *testing.T) {
	h := NewHist(0)
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(12345) }); allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

// TestWritePromCumulative checks the exported bucket series is
// cumulative, sparse and ends at +Inf == _count.
func TestWritePromCumulative(t *testing.T) {
	h := NewHist(4)
	for _, v := range []int64{5, 5, 1000, 1_000_000} {
		h.Record(v)
	}
	var b strings.Builder
	WriteProm(&b, "test_seconds", "help text", h.Snapshot(), 1e-9)
	out := b.String()
	if !strings.Contains(out, "# TYPE test_seconds histogram") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `test_seconds_bucket{le="+Inf"} 4`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "test_seconds_count 4") {
		t.Fatalf("missing count:\n%s", out)
	}
	// Sparse: far fewer bucket lines than the ~960 buckets.
	if n := strings.Count(out, "_bucket{"); n > 6 {
		t.Fatalf("expected sparse bucket export, got %d lines:\n%s", n, out)
	}
}
