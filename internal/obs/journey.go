package obs

import "sort"

// Journey is one flow group's stitched causal timeline: every event
// tagged with the group that is still held by the rings, ordered by the
// group's hop counter — accept → steal → migrate → requeue-reroute →
// park/wake → shed, whatever actually happened to the group, in the
// order it happened. Because hops are assigned by one atomic increment
// per group, the order is causal even though the events themselves were
// published to different workers' rings and interleave arbitrarily in
// the Seq timeline.
type Journey struct {
	// Group is the flow-group ID.
	Group int32 `json:"group"`
	// Owner is the worker owning the group after the journey's last
	// known placement decision: the destination of the last migrate hop,
	// or the accepting/serving worker of the last hop otherwise.
	Owner int32 `json:"owner"`
	// Migrations counts the migrate hops in this journey; Steals the
	// steal hops. These summarize the journey for "hottest groups"
	// ranking without the caller re-walking Hops.
	Migrations int `json:"migrations"`
	Steals     int `json:"steals"`
	// Hops is the group's event sequence, sorted by ascending Hop.
	Hops []Event `json:"hops"`
}

// Stitch folds a merged event timeline into per-group journeys: events
// with Group >= 0 are bucketed by group and each bucket is sorted by
// Hop. Events outside any journey (Group -1) are dropped. Journeys are
// returned sorted by ascending group ID. Diagnostic path: allocates.
//
// Ring eviction means a journey can be missing its oldest hops (the
// ring wrapped past them) — the surviving hops still sort into causal
// order, so the tail of every journey is trustworthy. Rare placement
// decisions (migrate, shed) live on the control ring precisely so that
// the hops a "why is this group here" question needs survive park/wake
// churn on the worker rings.
func Stitch(events []Event) []Journey {
	byGroup := make(map[int32]*Journey)
	var order []int32
	for _, ev := range events {
		if ev.Group < 0 {
			continue
		}
		j := byGroup[ev.Group]
		if j == nil {
			j = &Journey{Group: ev.Group}
			byGroup[ev.Group] = j
			order = append(order, ev.Group)
		}
		j.Hops = append(j.Hops, ev)
	}
	sort.Slice(order, func(i, k int) bool { return order[i] < order[k] })
	out := make([]Journey, 0, len(order))
	for _, g := range order {
		j := byGroup[g]
		sort.Slice(j.Hops, func(i, k int) bool { return j.Hops[i].Hop < j.Hops[k].Hop })
		j.finish()
		out = append(out, *j)
	}
	return out
}

// finish derives the summary fields from the sorted hops.
func (j *Journey) finish() {
	for _, ev := range j.Hops {
		switch ev.Kind {
		case KindMigrate:
			j.Migrations++
		case KindSteal:
			j.Steals++
		}
	}
	for i := len(j.Hops) - 1; i >= 0; i-- {
		// The last placement decision wins: a migrate names the new
		// owner in C; any other hop was recorded by the worker that
		// owned (or served) the group at that moment.
		if j.Hops[i].Kind == KindMigrate {
			j.Owner = int32(j.Hops[i].C)
			return
		}
		if j.Hops[i].Kind != KindSteal {
			// A steal is served by the thief, not the owner — skip it
			// when deriving ownership.
			j.Owner = j.Hops[i].Worker
			return
		}
	}
	if len(j.Hops) > 0 {
		j.Owner = j.Hops[len(j.Hops)-1].Worker
	}
}

// Tail returns the journey's last n hops (the whole journey when it has
// fewer) — the "journey tail" a dashboard shows for a hot group.
func (j Journey) Tail(n int) []Event {
	if n <= 0 || n >= len(j.Hops) {
		return j.Hops
	}
	return j.Hops[len(j.Hops)-n:]
}
