// Package obs is the stack's zero-allocation observability layer: the
// fixed-bucket atomic histograms and lock-free event rings every tier
// (serve, httpaff, proxyaff, wsaff) records into on its hot path, and
// the snapshot/merge/export machinery the metrics and debug endpoints
// read from.
//
// The design constraints come from the layers above, not from
// observability fashion:
//
//   - Recording must cost zero allocations and a handful of atomic
//     operations, because the request path it instruments is itself
//     allocation-free (the httpaff/proxyaff/wsaff steady-state gates)
//     and a telemetry layer that breaks that property cannot measure
//     it honestly.
//   - State must be per-worker, like everything else in the stack: a
//     worker records into its own histogram and its own event ring,
//     so the hot path shares no written cache line with other workers.
//     Cross-worker aggregation happens only at snapshot time, in the
//     (allocating, diagnostic) scrape handlers.
//   - Readers must never block writers. Snapshots are opportunistic:
//     a histogram snapshot is a per-bucket atomic sweep, an event-ring
//     drain validates each slot with a seqlock and simply skips a slot
//     it raced a writer on.
package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// epoch anchors Nanos. Using time.Since keeps the reading on Go's
// monotonic clock (one VDSO call, no allocation) and keeps values small
// enough that the histogram's range never saturates.
var epoch = time.Now()

// Nanos is the fine-grained monotonic clock the latency histograms are
// stamped from: nanoseconds since process start. It is the companion of
// the event loops' coarse per-worker clock — the coarse clock dates
// events (~50ms resolution is plenty for a timeline), Nanos measures
// durations (service latency, park time, steal cost).
func Nanos() int64 { return int64(time.Since(epoch)) }

// Kind classifies a control-plane event. The set mirrors the decisions
// the paper's policies make about a connection: where it was accepted,
// whether it was stolen or its group migrated, and why it was parked,
// woken, or shed.
type Kind uint8

const (
	// KindAccept: a fresh connection was routed to a worker's queue.
	// A = remote port (the flow-group key).
	KindAccept Kind = iota
	// KindSteal: a worker popped a connection from another worker's
	// queue (§3.3.1). A = victim worker, B = pop cost in nanoseconds,
	// C = remote port.
	KindSteal
	// KindMigrate: a flow group changed owners (§3.3.2).
	// A = flow group, B = old owner, C = new owner.
	KindMigrate
	// KindReroute: a parked connection woke on one worker's event loop
	// but its flow group had migrated, so it was pushed to the new
	// owner's queue. A = remote port, B = the loop it parked on,
	// C = 1 when the park loop and the new owner live on different
	// chips of the configured topology (the reroute crossed the
	// remote-cache line), else 0.
	KindReroute
	// KindPark: a keep-alive connection parked on a worker's event
	// loop to wait for its next request. A = remote port.
	KindPark
	// KindWake: a parked connection's next request bytes arrived.
	// A = remote port, B = park duration in nanoseconds.
	KindWake
	// KindShed: a parked connection was closed LIFO to reclaim its
	// descriptor or budget slot. A = remote port.
	KindShed
	// KindRatelimit: a connection was closed at accept because its
	// client IP's token bucket was empty. A = remote port.
	KindRatelimit
	// KindHeaderTimeout: a request head hit its read deadline (the
	// slowloris defense). A = remote port.
	KindHeaderTimeout
	// KindParkDead: a parked connection was closed by its event loop —
	// peer gone, park deadline expired, or shutdown sweep.
	// A = remote port, B = park duration in nanoseconds.
	KindParkDead
	// KindFreeze: the adaptive migration controller froze a flow group
	// that was ping-ponging between owners. A = flow group.
	KindFreeze
	// KindUnfreeze: a frozen flow group's cooldown expired and it became
	// migratable again. A = flow group.
	KindUnfreeze

	kindCount
)

var kindNames = [kindCount]string{
	KindAccept:        "accept",
	KindSteal:         "steal",
	KindMigrate:       "migrate",
	KindReroute:       "requeue-reroute",
	KindPark:          "park",
	KindWake:          "wake",
	KindShed:          "shed",
	KindRatelimit:     "ratelimit",
	KindHeaderTimeout: "header-timeout",
	KindParkDead:      "park-dead",
	KindFreeze:        "freeze",
	KindUnfreeze:      "unfreeze",
}

// String names the kind as it appears in /debug/events JSON.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name, so event dumps read as
// "migrate" rather than an enum ordinal that drifts when kinds are
// added.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON inverts MarshalJSON, so tools (the benchmark's event
// checker) can decode /debug/events dumps back into Event values.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", s)
}
