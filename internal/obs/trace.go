package obs

import (
	"encoding/json"
	"io"
	"strconv"
)

// traceEvent is one entry of the Chrome trace-event format (the JSON
// array consumed by chrome://tracing and Perfetto): "X" complete events
// are spans with a duration, "i" instants are point markers, "M"
// metadata events name the process and threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace renders a merged event timeline as a Chrome
// trace-event-format JSON document: each worker is a track (tid), each
// flow group's residency on a worker is a span on that worker's track
// (opened by the group's first hop there, closed by the migrate hop
// that moved it away), and the rare placement decisions — steals,
// migrations, reroutes, sheds — are instant markers. Park/wake churn is
// deliberately not emitted per event (it would dwarf the decisions the
// trace exists to show); it is visible as the span structure instead.
//
// Timestamps are rebased to the earliest event so the trace opens at
// t=0. Returns the number of residency spans written. Diagnostic path:
// allocates freely.
func WriteTrace(w io.Writer, workers int, events []Event) (spans int, err error) {
	var out []traceEvent
	out = append(out, traceEvent{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "affinityaccept"},
	})
	for i := 0; i < workers; i++ {
		out = append(out, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: i,
			Args: map[string]any{"name": workerTrackName(i)},
		})
	}

	var ts0, tsEnd int64
	for i, ev := range events {
		if i == 0 || ev.TS < ts0 {
			ts0 = ev.TS
		}
		if ev.TS > tsEnd {
			tsEnd = ev.TS
		}
	}
	us := func(ts int64) float64 { return float64(ts-ts0) / 1e3 }

	for _, j := range Stitch(events) {
		owner, start := int32(-1), int64(0)
		emit := func(end int64) {
			if owner < 0 || int(owner) >= workers {
				return
			}
			dur := us(end) - us(start)
			if dur < 1 {
				// The coarse event clock (~50ms resolution) stamps many
				// hops identically; a floor of 1µs keeps zero-length
				// residencies visible in the viewer.
				dur = 1
			}
			out = append(out, traceEvent{
				Name: groupSpanName(j.Group), Cat: "residency", Ph: "X",
				TS: us(start), Dur: dur, PID: 0, TID: int(owner),
				Args: map[string]any{"group": j.Group},
			})
			spans++
		}
		for _, ev := range j.Hops {
			switch ev.Kind {
			case KindMigrate:
				if owner < 0 {
					// The accept hop wrapped out of its ring: open the
					// residency retroactively on the migration's source.
					owner, start = int32(ev.B), ev.TS
				}
				emit(ev.TS)
				out = append(out, traceEvent{
					Name: "migrate", Cat: "decision", Ph: "i",
					TS: us(ev.TS), PID: 0, TID: int(int32(ev.C)), S: "t",
					Args: map[string]any{"group": j.Group, "from": ev.B, "to": ev.C, "hop": ev.Hop},
				})
				owner, start = int32(ev.C), ev.TS
			case KindSteal:
				// Served by the thief while the group stays put — an
				// instant on the thief's track, not a residency change.
				out = append(out, traceEvent{
					Name: "steal", Cat: "decision", Ph: "i",
					TS: us(ev.TS), PID: 0, TID: int(ev.Worker), S: "t",
					Args: map[string]any{"group": j.Group, "victim": ev.A, "popNs": ev.B, "hop": ev.Hop},
				})
				if owner < 0 {
					owner, start = int32(ev.A), ev.TS
				}
			case KindReroute:
				out = append(out, traceEvent{
					Name: "requeue-reroute", Cat: "decision", Ph: "i",
					TS: us(ev.TS), PID: 0, TID: int(ev.Worker), S: "t",
					Args: map[string]any{"group": j.Group, "parkLoop": ev.B, "crossChip": ev.C, "hop": ev.Hop},
				})
				if owner < 0 {
					owner, start = ev.Worker, ev.TS
				}
			case KindShed:
				out = append(out, traceEvent{
					Name: "shed", Cat: "decision", Ph: "i",
					TS: us(ev.TS), PID: 0, TID: int(ev.Worker), S: "t",
					Args: map[string]any{"group": j.Group, "hop": ev.Hop},
				})
				if owner < 0 {
					owner, start = ev.Worker, ev.TS
				}
			default:
				// accept / park / wake / park-dead / header-timeout: the
				// first of them opens the residency when nothing else has.
				if owner < 0 {
					owner, start = ev.Worker, ev.TS
				}
			}
		}
		emit(tsEnd)
	}

	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return spans, enc.Encode(doc)
}

func workerTrackName(w int) string {
	return "worker " + strconv.Itoa(w)
}

func groupSpanName(g int32) string {
	return "group " + strconv.Itoa(int(g))
}
