package obs

import (
	"fmt"
	"io"
)

// WriteProm renders a snapshot as a Prometheus histogram (text
// exposition format 0.0.4): cumulative _bucket{le=...} series, _sum
// and _count. scale converts recorded units into the exported unit —
// 1e-9 for nanosecond histograms exported as seconds, 1 for byte
// histograms. Empty buckets are skipped (the format permits sparse
// bucket lists as long as they are cumulative), so a 960-bucket
// histogram exports only the handful of edges that carry data plus
// +Inf. Diagnostic path: allocates.
func WriteProm(w io.Writer, name, help string, s HistSnapshot, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(s.UpperBound(i))*scale, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(s.Sum)*scale)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}
