package obs

import (
	"sort"
	"sync/atomic"
)

// DefaultRingSize is the per-ring slot count when the config knob is
// zero: 1024 events per worker keeps minutes of control-plane history
// (migrations, sheds, ratelimits are rare) and a second or two of
// park/wake churn under load, at 64KiB per ring.
const DefaultRingSize = 1024

// Event is one control-plane decision, as drained from a ring. Seq is
// a recorder-global sequence — events from different workers' rings
// interleave into one timeline by Seq. TS is coarse wall time (unix
// nanoseconds from the worker's event-loop clock, ~50ms resolution).
// A, B, C are Kind-specific operands; see the Kind constants.
//
// Group and Hop are the flow-journey tags: Group is the flow group the
// event belongs to (-1 for events outside any flow journey, e.g. a
// ratelimit refusal), and Hop is the group's monotonic hop counter at
// record time — assigned by one atomic increment per group, so however
// the per-worker rings interleave, sorting a group's events by Hop
// reconstructs the causal order of decisions about that group. See
// Stitch.
type Event struct {
	Seq    uint64 `json:"seq"`
	TS     int64  `json:"ts"`
	Kind   Kind   `json:"kind"`
	Worker int32  `json:"worker"`
	Group  int32  `json:"group"`
	Hop    uint32 `json:"hop,omitempty"`
	A      int64  `json:"a"`
	B      int64  `json:"b,omitempty"`
	C      int64  `json:"c,omitempty"`
}

// slot is one ring entry. Every field is atomic so concurrent
// record/drain is race-detector clean; the marker is a per-slot seqlock
// making torn drains detectable: 0 = never written, odd = a writer is
// mid-publish, even nonzero = published (value 2*pos+2 for the slot's
// pos'th occupant, so a reader that loads the same even marker before
// and after copying the fields got a consistent event).
type slot struct {
	marker atomic.Uint64
	seq    atomic.Uint64
	ts     atomic.Int64
	kw     atomic.Uint64 // kind<<32 | uint32(worker)
	gh     atomic.Uint64 // uint32(group)<<32 | hop — the flow-journey tag
	a, b   atomic.Int64
	c      atomic.Int64
}

// ring is one lock-free single-producer-ish event buffer. Writers are
// usually one worker, but the path is safe for any number: a slot is
// claimed by CAS on its marker, and the (astronomically unlikely) case
// of two writers lapping the whole ring onto the same slot drops the
// loser's event rather than tearing the winner's.
type ring struct {
	mask  uint64
	pos   atomic.Uint64
	drops atomic.Uint64
	slots []slot
}

func (r *ring) record(ev Event) {
	i := r.pos.Add(1) - 1
	s := &r.slots[i&r.mask]
	m := s.marker.Load()
	if m&1 == 1 || !s.marker.CompareAndSwap(m, 2*i+1) {
		// Another writer holds this slot mid-publish — it lapped the
		// ring while we were here. Lossy by design: drop ours.
		r.drops.Add(1)
		return
	}
	s.seq.Store(ev.Seq)
	s.ts.Store(ev.TS)
	s.kw.Store(uint64(ev.Kind)<<32 | uint64(uint32(ev.Worker)))
	s.gh.Store(uint64(uint32(ev.Group))<<32 | uint64(ev.Hop))
	s.a.Store(ev.A)
	s.b.Store(ev.B)
	s.c.Store(ev.C)
	s.marker.Store(2*i + 2)
}

// snapshot appends every consistently published event to into. A slot
// whose marker changes between the two loads was being rewritten; it is
// skipped (its previous occupant is lost — the ring already wrapped
// past it).
func (r *ring) snapshot(into []Event) []Event {
	for i := range r.slots {
		s := &r.slots[i]
		m := s.marker.Load()
		if m == 0 || m&1 == 1 {
			continue
		}
		ev := Event{
			Seq: s.seq.Load(),
			TS:  s.ts.Load(),
			A:   s.a.Load(),
			B:   s.b.Load(),
			C:   s.c.Load(),
		}
		kw := s.kw.Load()
		ev.Kind = Kind(kw >> 32)
		ev.Worker = int32(uint32(kw))
		gh := s.gh.Load()
		ev.Group = int32(uint32(gh >> 32))
		ev.Hop = uint32(gh)
		if s.marker.Load() != m {
			continue
		}
		into = append(into, ev)
	}
	return into
}

// Rings is a group of event rings sharing one sequence counter —
// typically one ring per worker plus one control ring, so high-churn
// per-worker events (park, wake, accept) can never evict the rare
// control-plane events (migrate, shed) a post-hoc "why did this flow
// move" question needs. The shared sequence makes a merged drain a
// single ordered timeline.
type Rings struct {
	seq   atomic.Uint64
	rings []ring
}

// NewRings creates n rings of the given size (0 = DefaultRingSize;
// sizes round up to a power of two).
func NewRings(n, size int) *Rings {
	if size <= 0 {
		size = DefaultRingSize
	}
	sz := 1
	for sz < size {
		sz <<= 1
	}
	g := &Rings{rings: make([]ring, n)}
	for i := range g.rings {
		g.rings[i].mask = uint64(sz - 1)
		g.rings[i].slots = make([]slot, sz)
	}
	return g
}

// Record publishes one event onto ring r, outside any flow journey
// (Group -1, Hop 0). Zero allocations; a handful of atomic stores.
// Out-of-range rings are dropped silently so callers don't need bounds
// logic on the hot path.
func (g *Rings) Record(r int, k Kind, worker int, ts, a, b, c int64) {
	g.RecordGroup(r, k, worker, ts, -1, 0, a, b, c)
}

// RecordGroup publishes one flow-journey event onto ring r, tagged with
// the flow group it belongs to and the group's hop counter. The caller
// owns hop assignment (one atomic increment per group, see the serve
// layer) so that hops are monotonic per group across all workers' rings.
// Zero allocations.
func (g *Rings) RecordGroup(r int, k Kind, worker int, ts int64, group int32, hop uint32, a, b, c int64) {
	if r < 0 || r >= len(g.rings) {
		return
	}
	g.rings[r].record(Event{
		Seq:    g.seq.Add(1),
		TS:     ts,
		Kind:   k,
		Worker: int32(worker),
		Group:  group,
		Hop:    hop,
		A:      a,
		B:      b,
		C:      c,
	})
}

// Events drains every ring into one slice ordered by Seq — the merged
// control-plane timeline. Diagnostic path: allocates.
func (g *Rings) Events() []Event {
	return g.EventsSince(0)
}

// EventsSince drains every ring like Events but keeps only events with
// Seq > since — the incremental-poll cursor behind /debug/events?since=.
// A poller that passes the largest Seq it has seen receives each event
// exactly once (events older than the cursor are filtered; events that
// wrapped out of a ring between polls are gone either way), so repeated
// polls never double-deliver. Diagnostic path: allocates.
func (g *Rings) EventsSince(since uint64) []Event {
	var evs []Event
	for i := range g.rings {
		evs = g.rings[i].snapshot(evs)
	}
	if since > 0 {
		kept := evs[:0]
		for _, ev := range evs {
			if ev.Seq > since {
				kept = append(kept, ev)
			}
		}
		evs = kept
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// Recorded reports how many events have been published across all
// rings since creation (including ones since overwritten).
func (g *Rings) Recorded() uint64 { return g.seq.Load() }

// Dropped reports events lost to writer collisions on a lapped slot —
// nonzero only under pathological event rates; ring overwrites of old
// events are not drops.
func (g *Rings) Dropped() uint64 {
	var n uint64
	for i := range g.rings {
		n += g.rings[i].drops.Load()
	}
	return n
}
