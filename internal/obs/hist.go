package obs

import (
	"math/bits"
	"sync/atomic"
)

// DefaultSubBits is the histogram resolution knob's default: 2^4 = 16
// sub-buckets per power of two, a worst-case relative error of 1/16 =
// 6.25% on any reconstructed quantile. One histogram at this resolution
// is ~960 buckets — under 8KiB — so a stack of them per worker is cache
// noise, not a footprint.
const DefaultSubBits = 4

// maxSubBits bounds the resolution knob: 2^8 sub-buckets is 0.4%
// relative error at ~14KiB per histogram, past which the bucket array
// stops fitting anywhere useful.
const maxSubBits = 8

// Hist is a fixed-size, log-linear (HDR-style) histogram of int64
// values, safe for concurrent recording from any number of writers and
// snapshotting from any number of readers, with no locks and no
// allocation after construction.
//
// Values in [0, 2^subBits) get exact unit buckets; above that, each
// power-of-two range is split into 2^subBits equal sub-buckets, so the
// relative width of any bucket — and therefore the worst-case error of
// any quantile read from a snapshot — is 2^-subBits. Record is two
// atomic adds: one bucket counter, one running sum. The count is the
// sum of the buckets, so a snapshot is consistent with itself even when
// taken mid-record (at worst it misses in-flight records entirely).
type Hist struct {
	subBits uint
	sum     atomic.Int64
	buckets []atomic.Uint64
}

// NewHist creates a histogram with 2^subBits sub-buckets per power of
// two. subBits outside [1, 8] (0 included) falls back to
// DefaultSubBits. The bucket count covers all of int64: 2^subBits
// exact unit buckets, then one 2^subBits-wide segment per remaining
// power of two up to bit 62.
func NewHist(subBits int) *Hist {
	if subBits <= 0 || subBits > maxSubBits {
		subBits = DefaultSubBits
	}
	sb := uint(subBits)
	n := (63-int(sb))<<sb + 1<<sb
	return &Hist{subBits: sb, buckets: make([]atomic.Uint64, n)}
}

// bucketIndex maps a value to its bucket. Exact below 2^subBits; above,
// segment = position of the value's top bit, sub-bucket = the next
// subBits bits.
func (h *Hist) bucketIndex(v uint64) int {
	sb := h.subBits
	if v < 1<<sb {
		return int(v)
	}
	msb := uint(bits.Len64(v)) - 1
	shift := msb - sb
	idx := int((uint64(msb-sb+1) << sb) + ((v >> shift) & (1<<sb - 1)))
	if idx >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return idx
}

// Record adds one observation. Negative values clamp to zero (they only
// arise from clock retrogression, which Nanos's monotonic source should
// preclude; clamping keeps the histogram total honest regardless).
// Zero allocations, two atomic adds.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[h.bucketIndex(uint64(v))].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's state. The copy is not an atomic
// cut of all buckets at one instant — records landing during the sweep
// may or may not be included — but every bucket value is itself a
// consistent atomic read, so totals never tear.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		SubBits: h.subBits,
		Sum:     h.sum.Load(),
		Buckets: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Hist, mergeable with other
// snapshots of the same resolution — the per-worker histograms are
// merged this way at scrape time, never on the hot path.
type HistSnapshot struct {
	SubBits uint
	Count   uint64
	Sum     int64
	Buckets []uint64
}

// Merge folds o into s. Snapshots must share a resolution; mismatched
// merges are ignored rather than corrupting the receiver (the resolution
// is a process-wide config knob, so a mismatch is a programming error
// surfaced by the absence of o's counts, not a runtime condition).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if o.SubBits != s.SubBits || len(o.Buckets) != len(s.Buckets) {
		if s.Count == 0 && s.Buckets == nil {
			*s = o
			s.Buckets = append([]uint64(nil), o.Buckets...)
		}
		return
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// UpperBound is bucket i's inclusive upper edge — the value Quantile
// reports for observations landing in it, making every reported
// quantile an overestimate by at most the bucket's relative width.
func (s HistSnapshot) UpperBound(i int) int64 {
	sb := s.SubBits
	if i < 1<<sb {
		return int64(i)
	}
	block := uint(i) >> sb // 1-based power-of-two segment
	pos := uint64(i) & (1<<sb - 1)
	shift := block - 1
	return int64(((1<<sb)+pos+1)<<shift - 1)
}

// Quantile reports the q-th quantile (0 < q <= 1) as the upper bound of
// the bucket holding that rank, or 0 on an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return s.UpperBound(i)
		}
	}
	return s.UpperBound(len(s.Buckets) - 1)
}

// Mean reports the arithmetic mean of the recorded values (exact: the
// sum is tracked separately from the buckets), or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
