package obs

import (
	"sync"
	"testing"
)

// TestRingSingleWriterWraparound fills one ring well past its capacity
// and checks the drain sees exactly the newest <size> events, ordered
// and gapless.
func TestRingSingleWriterWraparound(t *testing.T) {
	const size = 64
	g := NewRings(1, size)
	const total = 10 * size
	for i := 0; i < total; i++ {
		g.Record(0, KindAccept, 3, int64(i), int64(i), 0, 0)
	}
	evs := g.Events()
	if len(evs) != size {
		t.Fatalf("drained %d events from a %d-slot ring, want exactly %d", len(evs), size, size)
	}
	for i, ev := range evs {
		wantSeq := uint64(total - size + i + 1)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (newest %d survive, in order)", i, ev.Seq, wantSeq, size)
		}
		if ev.A != int64(ev.Seq-1) || ev.TS != int64(ev.Seq-1) {
			t.Fatalf("event %d payload torn: seq %d a %d ts %d", i, ev.Seq, ev.A, ev.TS)
		}
		if ev.Worker != 3 || ev.Kind != KindAccept {
			t.Fatalf("event %d identity torn: %+v", i, ev)
		}
	}
	if g.Recorded() != total {
		t.Fatalf("recorded %d, want %d", g.Recorded(), total)
	}
}

// TestRingControlRingSurvivesChurn is the flooding property the serve
// layer depends on: rare control events on their own ring must survive
// any volume of high-frequency events on the worker rings.
func TestRingControlRingSurvivesChurn(t *testing.T) {
	g := NewRings(3, 32) // rings 0,1 = workers, ring 2 = control
	g.Record(2, KindMigrate, 1, 0, 7, 0, 1)
	for i := 0; i < 100000; i++ {
		g.Record(i%2, KindPark, i%2, int64(i), 0, 0, 0)
	}
	var migrates int
	for _, ev := range g.Events() {
		if ev.Kind == KindMigrate {
			migrates++
			if ev.A != 7 {
				t.Fatalf("migrate event payload corrupted: %+v", ev)
			}
		}
	}
	if migrates != 1 {
		t.Fatalf("control-ring migrate event lost under churn: found %d", migrates)
	}
}

// TestRingConcurrentWritersNoTornEvents publishes events whose fields
// are functions of their A operand from many goroutines onto one ring
// while a reader drains continuously. Any event the drain accepts must
// satisfy the invariant — a torn slot read must be rejected, never
// surfaced.
func TestRingConcurrentWritersNoTornEvents(t *testing.T) {
	const (
		writers = 8
		each    = 5000
	)
	g := NewRings(1, 128)
	stop := make(chan struct{})
	var readers, writersWG sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range g.Events() {
				if ev.B != 2*ev.A || ev.C != 3*ev.A || ev.TS != ev.A {
					t.Errorf("torn event surfaced: %+v", ev)
					return
				}
				if ev.Kind != KindWake {
					t.Errorf("foreign kind surfaced: %+v", ev)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(base int64) {
			defer writersWG.Done()
			for i := int64(0); i < each; i++ {
				a := base*each + i
				g.Record(0, KindWake, int(base), a, a, 2*a, 3*a)
			}
		}(int64(w))
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if rec := g.Recorded(); rec != writers*each {
		t.Fatalf("recorded %d, want %d", rec, writers*each)
	}
	// After the dust settles every slot is stable: a full drain returns
	// only valid events, at most one ring's worth.
	evs := g.Events()
	if len(evs) == 0 || len(evs) > 128 {
		t.Fatalf("settled drain returned %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("drain not seq-ordered: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestRingRecordAllocs pins the hot-path contract: publishing an event
// allocates nothing.
func TestRingRecordAllocs(t *testing.T) {
	g := NewRings(2, 0)
	if allocs := testing.AllocsPerRun(1000, func() {
		g.Record(1, KindSteal, 1, 1, 2, 3, 4)
	}); allocs != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", allocs)
	}
}

// TestRingOutOfRange pins the hot-path tolerance for bad ring indexes.
func TestRingOutOfRange(t *testing.T) {
	g := NewRings(1, 8)
	g.Record(-1, KindShed, 0, 0, 0, 0, 0)
	g.Record(1, KindShed, 0, 0, 0, 0, 0)
	if got := len(g.Events()); got != 0 {
		t.Fatalf("out-of-range records landed: %d events", got)
	}
}
