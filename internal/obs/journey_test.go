package obs

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStitchAdversarialInterleavings is the journey layer's property
// test: concurrent workers record random accept/steal/migrate/park/
// wake/reroute/shed sequences for random groups — claiming hops from a
// shared per-group counter exactly as the serve layer does — and the
// stitcher must recover, for every group, a single journey whose hop
// counters are strictly increasing with no event orphaned into the
// wrong journey and none lost. The rings are sized so nothing wraps;
// the CI race job loops this test to shake out interleavings.
func TestStitchAdversarialInterleavings(t *testing.T) {
	const (
		workers   = 4
		groups    = 8
		perWorker = 200
	)
	kinds := []Kind{KindAccept, KindSteal, KindMigrate, KindPark, KindWake, KindReroute, KindShed}
	rings := NewRings(workers+1, 4096)
	var hops [groups]atomic.Uint32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			for i := 0; i < perWorker; i++ {
				g := rng.Intn(groups)
				hop := hops[g].Add(1)
				kind := kinds[rng.Intn(len(kinds))]
				ring := w
				if kind == KindMigrate || kind == KindShed {
					ring = workers // the control ring, as in serve
				}
				rings.RecordGroup(ring, kind, w, int64(i), int32(g), hop,
					int64(rng.Intn(65536)), int64(rng.Intn(workers)), int64(rng.Intn(workers)))
			}
		}(w)
	}
	wg.Wait()

	events := rings.Events()
	if len(events) != workers*perWorker {
		t.Fatalf("drained %d events, want %d (rings must not wrap in this test)",
			len(events), workers*perWorker)
	}
	journeys := Stitch(events)
	if len(journeys) != groups {
		t.Fatalf("stitched %d journeys, want %d", len(journeys), groups)
	}
	total := 0
	for _, j := range journeys {
		if j.Group < 0 || int(j.Group) >= groups {
			t.Fatalf("journey for out-of-range group %d", j.Group)
		}
		claimed := hops[j.Group].Load()
		if uint32(len(j.Hops)) != claimed {
			t.Errorf("group %d journey has %d hops, %d were claimed", j.Group, len(j.Hops), claimed)
		}
		for i, hop := range j.Hops {
			if hop.Group != j.Group {
				t.Fatalf("group %d journey contains an orphaned hop tagged group %d", j.Group, hop.Group)
			}
			if hop.Hop < 1 || hop.Hop > claimed {
				t.Errorf("group %d hop counter %d outside [1, %d]", j.Group, hop.Hop, claimed)
			}
			if i > 0 && hop.Hop <= j.Hops[i-1].Hop {
				t.Errorf("group %d hop counters not strictly increasing: %d after %d",
					j.Group, hop.Hop, j.Hops[i-1].Hop)
			}
		}
		total += len(j.Hops)
	}
	if total != workers*perWorker {
		t.Errorf("journeys cover %d events, want all %d", total, workers*perWorker)
	}
}

// TestStitchOwnerDerivation pins the ownership rule on a hand-built
// sequence: the last migrate hop's destination wins; a trailing steal
// (served by the thief) must not change ownership; without any migrate
// the last non-steal hop's worker owns.
func TestStitchOwnerDerivation(t *testing.T) {
	mk := func(k Kind, worker int32, hop uint32, a, b, c int64) Event {
		return Event{Seq: uint64(hop), Kind: k, Worker: worker, Group: 3, Hop: hop, A: a, B: b, C: c}
	}
	js := Stitch([]Event{
		mk(KindAccept, 0, 1, 4242, 0, 0),
		mk(KindMigrate, 1, 2, 3, 0, 1), // group 3 moved 0 -> 1
		mk(KindSteal, 2, 3, 1, 100, 4242),
	})
	if len(js) != 1 {
		t.Fatalf("stitched %d journeys, want 1", len(js))
	}
	j := js[0]
	if j.Owner != 1 {
		t.Errorf("owner %d, want the migrate destination 1 (trailing steal must not flip it)", j.Owner)
	}
	if j.Migrations != 1 || j.Steals != 1 {
		t.Errorf("summary migrations=%d steals=%d, want 1/1", j.Migrations, j.Steals)
	}

	js = Stitch([]Event{
		mk(KindAccept, 2, 1, 4242, 0, 0),
		mk(KindPark, 2, 2, 4242, 0, 0),
	})
	if js[0].Owner != 2 {
		t.Errorf("migrate-free journey owner %d, want the last hop's worker 2", js[0].Owner)
	}

	// Tail returns the newest n hops.
	tail := js[0].Tail(1)
	if len(tail) != 1 || tail[0].Kind != KindPark {
		t.Errorf("Tail(1) = %v, want the park hop", tail)
	}
}
