package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteTraceResidencySpans pins the span semantics on a
// deterministic journey: an accept opens residency on the accepting
// worker, a migrate closes it and opens one on the destination, so a
// single migrated group renders exactly two spans on two tracks plus
// the migrate instant.
func TestWriteTraceResidencySpans(t *testing.T) {
	base := int64(1_000_000_000)
	ms := func(n int64) int64 { return base + n*1_000_000 }
	events := []Event{
		{Seq: 1, TS: ms(0), Kind: KindAccept, Worker: 0, Group: 7, Hop: 1, A: 4242},
		{Seq: 2, TS: ms(50), Kind: KindMigrate, Worker: 1, Group: 7, Hop: 2, A: 7, B: 0, C: 1},
		{Seq: 3, TS: ms(100), Kind: KindWake, Worker: 1, Group: 7, Hop: 3, A: 4242},
	}
	var buf bytes.Buffer
	spans, err := WriteTrace(&buf, 2, events)
	if err != nil {
		t.Fatal(err)
	}
	if spans != 2 {
		t.Fatalf("wrote %d spans, want 2 (before and after the migration)", spans)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spanTIDs []int
	var sawMigrate bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spanTIDs = append(spanTIDs, ev.TID)
			if ev.Name != "group 7" || ev.Cat != "residency" {
				t.Errorf("span %q/%q, want group 7/residency", ev.Name, ev.Cat)
			}
			if ev.Dur <= 0 {
				t.Errorf("span duration %v, want > 0", ev.Dur)
			}
		case "i":
			if ev.Name == "migrate" {
				sawMigrate = true
				if ev.TID != 1 {
					t.Errorf("migrate instant on tid %d, want the destination 1", ev.TID)
				}
				if hop, ok := ev.Args["hop"].(float64); !ok || hop != 2 {
					t.Errorf("migrate instant hop arg %v, want 2", ev.Args["hop"])
				}
			}
		}
	}
	if len(spanTIDs) != 2 || spanTIDs[0] != 0 || spanTIDs[1] != 1 {
		t.Errorf("residency spans on tracks %v, want [0 1]", spanTIDs)
	}
	if !sawMigrate {
		t.Error("no migrate instant in the trace")
	}

	// Timestamps are rebased: the first span starts at t=0 and the
	// second at the 50ms migration, i.e. 50,000 trace microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.TID == 1 && ev.TS != 50_000 {
			t.Errorf("post-migration span starts at %vus, want 50000", ev.TS)
		}
	}
}

// TestWriteTraceEmptyTimeline: an empty window still renders a valid
// document with the worker-track metadata, zero spans.
func TestWriteTraceEmptyTimeline(t *testing.T) {
	var buf bytes.Buffer
	spans, err := WriteTrace(&buf, 3, nil)
	if err != nil || spans != 0 {
		t.Fatalf("spans=%d err=%v, want 0/nil", spans, err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok || len(evs) != 4 { // process_name + 3 thread_names
		t.Fatalf("empty trace has %d metadata events, want 4", len(evs))
	}
}
