package experiments

import (
	"fmt"
	"sort"
)

// Runner produces one reproduced table or figure.
type Runner func(Options) Result

// registry maps experiment IDs to runners.
var registry = map[string]struct {
	Desc string
	Run  Runner
}{
	"T1":  {"Table 1: memory hierarchy latencies", func(o Options) Result { return Table1(o) }},
	"F2":  {"Figure 2: Apache scaling, AMD48", func(o Options) Result { return Figure2(o) }},
	"F3":  {"Figure 3: lighttpd scaling, AMD48", func(o Options) Result { return Figure3(o) }},
	"T2":  {"Table 2: request time composition under lock_stat", func(o Options) Result { return Table2(o) }},
	"T3":  {"Table 3: perf counters by kernel entry", func(o Options) Result { return Table3(o) }},
	"T4":  {"Table 4: DProf sharing by type", func(o Options) Result { return Table4(o) }},
	"F4":  {"Figure 4: shared-access latency distribution", func(o Options) Result { return Figure4(o) }},
	"F5":  {"Figure 5: Apache scaling, Intel80", func(o Options) Result { return Figure5(o) }},
	"F6":  {"Figure 6: lighttpd scaling, Intel80", func(o Options) Result { return Figure6(o) }},
	"LB1": {"§6.5: latency under CPU contention", func(o Options) Result { return BalancerLatency(o) }},
	"LB2": {"§6.5: make runtime with/without migration", func(o Options) Result { return BalancerMakeTime(o) }},
	"F7":  {"Figure 7: connection reuse sweep", func(o Options) Result { return Figure7(o) }},
	"F8":  {"Figure 8: think time sweep", func(o Options) Result { return Figure8(o) }},
	"F9":  {"Figure 9: file size sweep", func(o Options) Result { return Figure9(o) }},
	"F10": {"Figure 10: Twenty-Policy", func(o Options) Result { return Figure10(o) }},
	"T5":  {"Table 5: NIC feature comparison", func(o Options) Result { return Table5(o) }},
	"A1":  {"Ablation: request-table design (§5.2)", func(o Options) Result { return AblationRequestTable(o) }},
	"A2":  {"Ablation: steal ratio (§3.3.1)", func(o Options) Result { return AblationStealRatio(o) }},
	"A3":  {"Ablation: Apache pinning (§4.2)", func(o Options) Result { return AblationApachePinning(o) }},
	"A4":  {"Ablation: flow-group count (§3.1)", func(o Options) Result { return AblationFlowGroups(o) }},
	"A5":  {"Ablation: busy watermarks (§3.3.1)", func(o Options) Result { return AblationWatermarks(o) }},
	"X1":  {"Extension: software RFS comparison (§7.2)", func(o Options) Result { return ExtensionRFS(o) }},
}

// IDs lists all experiment identifiers in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of an experiment.
func Describe(id string) string { return registry[id].Desc }

// RunByID executes one experiment by identifier.
func RunByID(id string, opt Options) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e.Run(opt), nil
}
