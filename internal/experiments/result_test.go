package experiments

import (
	"strings"
	"testing"

	"affinityaccept/internal/mem"
)

func amd() mem.Machine { return mem.AMD48() }

func TestSeriesRenderHandlesRaggedLines(t *testing.T) {
	s := &Series{
		ExpID:  "TST",
		Name:   "test",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{1, 2, 3},
		Lines:  map[string][]float64{"a": {10, 20, 30}, "b": {5}},
		Order:  []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	out := s.Render()
	if !strings.Contains(out, "TST — test") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "-") {
		t.Fatal("short line should render placeholders")
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatal("missing note")
	}
	if s.ID() != "TST" || s.Title() != "test" {
		t.Fatal("accessors wrong")
	}
}

func TestTableRenderAligns(t *testing.T) {
	tab := &Table{
		ExpID:  "TT",
		Name:   "table",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"longer-cell", "x"}, {"s", "y"}},
		Notes:  []string{"n"},
	}
	out := tab.Render()
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("short render: %q", out)
	}
	// The header and first column must be padded to the widest cell.
	if !strings.HasPrefix(lines[1], "a          ") {
		t.Fatalf("header not padded: %q", lines[1])
	}
	if tab.ID() != "TT" || tab.Title() != "table" {
		t.Fatal("accessors wrong")
	}
}

func TestTrimMachine(t *testing.T) {
	m := trimMachine(amd(), 4)
	if m.Cores() != 4 {
		t.Fatalf("trim to 4 gave %d cores", m.Cores())
	}
	m = trimMachine(amd(), 18)
	if m.Cores() < 18 || m.Cores() > 24 {
		t.Fatalf("trim to 18 gave %d cores (whole chips)", m.Cores())
	}
}

func TestRunResultMicros(t *testing.T) {
	r := Run(RunConfig{Cores: 1, ConnsPerCore: 8, WarmupS: 0.2, MeasureS: 0.2, Seed: 5})
	if us := r.MicrosPerReq(2400); us < 0.99 || us > 1.01 {
		t.Fatalf("2400 cycles = %v us at 2.4 GHz, want 1", us)
	}
	if r.ConnsPerCore != 8 {
		t.Fatal("explicit concurrency not recorded")
	}
}
