// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) plus the ablations DESIGN.md calls out. Each runner
// builds a simulated machine, applies a workload, and reports rows or
// series shaped like the paper's presentation.
package experiments

import (
	"affinityaccept/internal/app"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/sim"
	"affinityaccept/internal/tcp"
	"affinityaccept/internal/workload"
)

// ServerKind selects the application model.
type ServerKind int

const (
	Apache ServerKind = iota
	ApacheUnpinned
	Lighttpd
)

// String names the server.
func (s ServerKind) String() string {
	switch s {
	case Apache:
		return "apache"
	case ApacheUnpinned:
		return "apache-unpinned"
	default:
		return "lighttpd"
	}
}

// RunConfig is one simulation run's parameters.
type RunConfig struct {
	Machine mem.Machine
	Cores   int
	Listen  tcp.ListenKind
	Server  ServerKind

	// ConnsPerCore is the closed-loop concurrency per core (0 = auto:
	// enough to saturate given the pattern's think time).
	ConnsPerCore int
	// OpenRate switches to open-loop arrivals (connections/second).
	OpenRate float64

	// ReqsPerConn sets connection reuse (0 = the paper's 6).
	ReqsPerConn int
	// ThinkMS is think time between request groups (0 = 100 ms;
	// negative = no think time).
	ThinkMS float64
	// MeanFileBytes scales the served file mix (0 = ~700 B).
	MeanFileBytes int

	// WarmupS and MeasureS are simulated seconds.
	WarmupS, MeasureS float64

	// Stack knobs forwarded to tcp.Config.
	Profiling        bool
	LockStat         bool
	StealingDisabled bool
	MigrateEveryMS   float64 // 0 = default 100 ms for Affinity
	NICMode          nic.Mode
	FDirCapacity     int
	ReqTablePerCore  bool
	SoftwareRFS      bool
	FlowGroups       int
	StealRatio       int
	HighPct, LowPct  float64
	BacklogPerCore   int

	Seed int64

	// PreRun, when set, is called on the freshly built stack before the
	// simulation starts (used to arm DProf watch sets).
	PreRun func(*tcp.Stack)
}

// RunResult is what one run measured.
type RunResult struct {
	Cores            int
	ReqPerSec        float64
	ReqPerSecPerCore float64
	ConnsPerSec      float64
	GbitsPerSec      float64
	// IdleFrac is the fraction of core time spent idle in the window.
	IdleFrac float64
	// ConnsPerCore is the concurrency the run used (after saturation
	// search).
	ConnsPerCore int

	// Per-request decomposition (cycles), for Table 2.
	TotalPerReq   float64
	IdlePerReq    float64
	LockSpinWait  float64
	LockMutexWait float64
	LockHold      float64

	Stack *tcp.Stack
	Gen   *workload.Gen

	// Snapshot deltas across the measurement window.
	Requests uint64
	measured sim.Cycles
}

func (rc *RunConfig) fill() {
	if rc.Machine.Cores() == 0 {
		rc.Machine = mem.AMD48()
	}
	if rc.Cores <= 0 {
		rc.Cores = rc.Machine.Cores()
	}
	if rc.ReqsPerConn == 0 {
		rc.ReqsPerConn = 6
	}
	if rc.ThinkMS == 0 {
		rc.ThinkMS = 100
	}
	if rc.WarmupS == 0 {
		rc.WarmupS = 0.7
	}
	if rc.MeasureS == 0 {
		rc.MeasureS = 0.4
	}
	if rc.MigrateEveryMS == 0 {
		rc.MigrateEveryMS = 100
	}
}

// Run executes one configured simulation and returns its measurements.
// When no explicit load is given it first searches for the saturating
// concurrency, as the paper does for its request rates ("we first
// search for a request rate that saturates the server and then run the
// experiment with the discovered rate").
func Run(rc RunConfig) RunResult {
	rc.fill()
	if rc.ConnsPerCore == 0 && rc.OpenRate == 0 {
		rc.ConnsPerCore = findSaturation(rc)
	}
	return runOnce(rc)
}

// findSaturation grows closed-loop concurrency until the machine stops
// being idle (or the server starts refusing connections), then returns
// the discovered per-core concurrency.
func findSaturation(rc RunConfig) int {
	probe := rc
	probe.WarmupS = 0.45
	probe.MeasureS = 0.2
	conns := 24
	const maxConns = 4096
	best := conns
	bestRate := -1.0
	for iter := 0; iter < 8; iter++ {
		probe.ConnsPerCore = conns
		r := runOnce(probe)
		refused := float64(r.Gen.Refused)
		total := float64(r.Gen.Completed + r.Gen.Refused + 1)
		overloaded := refused/total > 0.05
		improved := r.ReqPerSec > bestRate*1.06
		if r.ReqPerSec > bestRate && !overloaded {
			bestRate = r.ReqPerSec
			best = conns
		}
		if overloaded || !improved {
			// Past the knee: the last improving load is the saturation
			// point.
			break
		}
		if r.IdleFrac < 0.12 || conns >= maxConns {
			best = conns
			break
		}
		conns *= 2
		if conns > maxConns {
			conns = maxConns
		}
	}
	return best
}

// runOnce executes one configured simulation.
func runOnce(rc RunConfig) RunResult {
	rc.fill()
	machine := rc.Machine.WithCores(rc.Cores)
	// Restrict to exactly rc.Cores even mid-chip.
	if machine.Cores() > rc.Cores {
		machine = trimMachine(machine, rc.Cores)
	}

	scfg := tcp.Config{
		Machine:          machine,
		Listen:           rc.Listen,
		Profiling:        rc.Profiling,
		LockStat:         rc.LockStat,
		StealingDisabled: rc.StealingDisabled,
		NICMode:          rc.NICMode,
		FDirCapacity:     rc.FDirCapacity,
		ReqTablePerCore:  rc.ReqTablePerCore,
		SoftwareRFS:      rc.SoftwareRFS,
		FlowGroups:       rc.FlowGroups,
		StealRatio:       rc.StealRatio,
		HighPct:          rc.HighPct,
		LowPct:           rc.LowPct,
		Seed:             rc.Seed,
	}
	if rc.BacklogPerCore > 0 {
		scfg.Backlog = rc.BacklogPerCore * machine.Cores()
	}
	s := tcp.NewStack(scfg)
	if rc.Listen == tcp.AffinityAccept && rc.MigrateEveryMS > 0 {
		s.Cfg.MigrateEvery = s.Eng.Millis(rc.MigrateEveryMS)
	}

	switch rc.Server {
	case Apache:
		app.NewApache(s, true)
	case ApacheUnpinned:
		app.NewApache(s, false)
	case Lighttpd:
		app.NewLighttpd(s)
	}

	think := s.Eng.Millis(rc.ThinkMS)
	if rc.ThinkMS < 0 {
		think = s.Eng.Micros(100)
	}
	pattern := workload.Pattern{Groups: workload.GroupsFor(rc.ReqsPerConn), Think: think}

	conns := rc.ConnsPerCore
	if conns == 0 {
		conns = 64
	}
	gen := workload.New(workload.Config{
		Stack:         s,
		Pattern:       pattern,
		Connections:   conns * machine.Cores(),
		OpenRate:      rc.OpenRate,
		MeanFileBytes: rc.MeanFileBytes,
		Seed:          rc.Seed,
	})

	if rc.PreRun != nil {
		rc.PreRun(s)
	}
	s.Start()
	gen.Start()

	warm := s.Eng.CyclesOf(rc.WarmupS)
	measure := s.Eng.CyclesOf(rc.MeasureS)

	s.Eng.Run(warm)
	gen.BeginMeasure(warm)
	startReqs := s.Stats.Requests
	startConns := s.Stats.ConnsAccepted
	startBytes := s.Stats.BytesTx
	startIdle := s.Eng.TotalIdle(warm)
	startLock := s.ListenLockStats()

	end := warm + measure
	s.Eng.Run(end)

	reqs := s.Stats.Requests - startReqs
	conns2 := s.Stats.ConnsAccepted - startConns
	bytes := s.Stats.BytesTx - startBytes
	idle := s.Eng.TotalIdle(end) - startIdle
	lock := s.ListenLockStats()

	secs := s.Eng.Seconds(measure)
	res := RunResult{
		Cores:            machine.Cores(),
		Requests:         reqs,
		ReqPerSec:        float64(reqs) / secs,
		ReqPerSecPerCore: float64(reqs) / secs / float64(machine.Cores()),
		ConnsPerSec:      float64(conns2) / secs,
		GbitsPerSec:      float64(bytes) * 8 / secs / 1e9,
		IdleFrac:         float64(idle) / (float64(measure) * float64(machine.Cores())),
		ConnsPerCore:     conns,
		Stack:            s,
		Gen:              gen,
		measured:         measure,
	}
	if reqs > 0 {
		fr := float64(reqs)
		res.TotalPerReq = float64(measure) * float64(machine.Cores()) / fr
		res.IdlePerReq = float64(idle) / fr
		res.LockSpinWait = float64(lock.SpinWait-startLock.SpinWait) / fr
		res.LockMutexWait = float64(lock.MutexWait-startLock.MutexWait) / fr
		res.LockHold = float64(lock.Hold-startLock.Hold) / fr
	}
	return res
}

// trimMachine cuts a machine to an exact core count by shrinking the
// last chip (used for odd sweep points like 4 cores on 6-core chips).
func trimMachine(m mem.Machine, cores int) mem.Machine {
	if cores < m.CoresPerChip {
		m.Chips = 1
		m.CoresPerChip = cores
		return m
	}
	// Keep whole chips; sweeps use multiples of the chip size mostly.
	m.Chips = cores / m.CoresPerChip
	if m.Chips*m.CoresPerChip < cores {
		m.Chips++
	}
	return m
}

// MicrosPerReq converts a per-request cycle figure to microseconds.
func (r RunResult) MicrosPerReq(cycles float64) float64 {
	return cycles / float64(r.Stack.Cfg.Machine.Freq) * 1e6
}
