package experiments

import (
	"fmt"

	"affinityaccept/internal/app"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/sched"
	"affinityaccept/internal/sim"
	"affinityaccept/internal/tcp"
	"affinityaccept/internal/workload"
)

// webShareUnderMake is the CFS share the web processes retain on cores
// running the parallel make: make jobs are always runnable while the
// event loops sleep between packets, so make dominates (§6.5 observes
// lighttpd being squeezed almost entirely off the make cores).
const webShareUnderMake = 0.12

// lbResult carries one §6.5 latency scenario's outcome.
type lbResult struct {
	medianS, p90S float64
	timeouts      uint64
	completed     uint64
	steals        uint64
	migrations    uint64
	drops         uint64
}

// lbLatencyScenario runs the §6.5 setup: Affinity-Accept lighttpd at
// ~50% load on the AMD machine, optionally a parallel make hogging half
// the cores, with the load balancer on or off.
func lbLatencyScenario(opt Options, withMake, balancer bool) lbResult {
	machine := mem.AMD48()
	cores := machine.Cores()
	if opt.Quick {
		machine = machine.WithCores(12)
		cores = 12
	}
	scfg := tcp.Config{
		Machine:          machine,
		Listen:           tcp.AffinityAccept,
		StealingDisabled: !balancer,
		SilentOverflow:   true,
		Seed:             opt.Seed,
	}
	// Flow-group migration drains one group per idle core per interval;
	// quick mode shrinks the group count and the interval together so
	// adaptation completes within the shortened run.
	if opt.Quick {
		scfg.FlowGroups = 256
	}
	s := tcp.NewStack(scfg)
	if balancer {
		if opt.Quick {
			s.Cfg.MigrateEvery = s.Eng.Millis(20)
		} else {
			s.Cfg.MigrateEvery = s.Eng.Millis(100)
		}
	}
	app.NewLighttpd(s)

	// ~50% CPU: lighttpd serves ~17k req/s/core at full tilt; offer half
	// of that as connection arrivals (6 requests each).
	ratePerCore := 7200.0 / 6
	timeout := s.Eng.CyclesOf(10)
	simS := 26.0
	measureFrom := 13.0 // after the balancer's adaptation window
	if opt.Quick {
		timeout = s.Eng.CyclesOf(1.5)
		simS = 5.0
		measureFrom = 2.2
	}
	gen := workload.New(workload.Config{
		Stack:    s,
		OpenRate: ratePerCore * float64(cores),
		Timeout:  timeout,
		Seed:     opt.Seed,
	})

	if withMake {
		// Kernel build on the upper half of the cores: effectively
		// endless for the duration of the latency measurement. The web
		// processes on those cores retain only their CFS share.
		for c := cores / 2; c < cores; c++ {
			s.Eng.Cores[c].UserShare = webShareUnderMake
			h := &sched.Hog{Core: c, Remaining: sim.Cycles(1) << 62}
			h.Start(s.Eng)
		}
	}

	s.Start()
	gen.Start()
	warm := s.Eng.CyclesOf(measureFrom)
	s.Eng.Run(warm)
	gen.BeginMeasure(warm)
	timeoutsBefore := gen.TimedOut
	s.Eng.Run(s.Eng.CyclesOf(simS))

	return lbResult{
		medianS:    gen.Latencies.Quantile(0.5),
		p90S:       gen.Latencies.Quantile(0.9),
		timeouts:   gen.TimedOut - timeoutsBefore,
		completed:  gen.Completed,
		steals:     s.Queues().Steals,
		migrations: s.Stats.FDirMigrations,
		drops:      s.Stats.SynDrops + s.Stats.AcceptDrops,
	}
}

// BalancerLatency reproduces the first §6.5 experiment: client-observed
// service latency with a kernel build on half the cores, with and
// without the connection load balancer.
func BalancerLatency(opt Options) *Table {
	base := lbLatencyScenario(opt, false, true)
	noBal := lbLatencyScenario(opt, true, false)
	withBal := lbLatencyScenario(opt, true, true)

	ms := func(v float64) string { return fmt.Sprintf("%.0f", v*1000) }
	row := func(name string, r lbResult) []string {
		return []string{name, ms(r.medianS), ms(r.p90S), d(r.timeouts),
			d(r.steals), d(r.migrations), d(r.drops)}
	}
	rows := [][]string{
		row("web only, balancer on", base),
		row("make on half cores, balancer off", noBal),
		row("make on half cores, balancer on", withBal),
	}
	notes := []string{
		"paper: 200ms baseline; 10s median without balancer (client give-up); 230/480ms with it",
	}
	if opt.Quick {
		notes = append(notes, "quick mode: client give-up scaled from 10s to 1.5s")
	}
	return &Table{
		ExpID:  "LB1",
		Name:   "Connection latency under CPU contention (§6.5, lighttpd, 50% load)",
		Header: []string{"Scenario", "Median ms", "p90 ms", "Timeouts", "Steals", "Migrations", "Drops"},
		Rows:   rows,
		Notes:  notes,
	}
}

// lbMakeScenario measures the runtime of the parallel make with the web
// server absent/present and flow-group migration off/on. Work is scaled
// 1:50 against the paper's 125-second build; the migration interval
// scales with it.
func lbMakeScenario(opt Options, withWeb, migration bool) float64 {
	// Time compression: flow-group migration drains at a steal-gated
	// rate that does not speed up linearly with the interval, so the
	// full run uses a gentler scale (and quick mode fewer groups) to
	// keep the paper's adaptation-to-runtime proportions.
	scale := 20.0
	machine := mem.AMD48()
	cores := machine.Cores()
	if opt.Quick {
		scale = 50.0
		machine = machine.WithCores(12)
		cores = 12
	}
	scfg := tcp.Config{
		Machine:        machine,
		Listen:         tcp.AffinityAccept,
		SilentOverflow: true,
		Seed:           opt.Seed,
	}
	if opt.Quick {
		scfg.FlowGroups = 512
	}
	s := tcp.NewStack(scfg)
	if migration {
		// The paper's 100 ms interval, scaled with the build's 1:50
		// time compression so adaptation speed matches.
		s.Cfg.MigrateEvery = s.Eng.Millis(100.0 / scale)
	}
	app.NewLighttpd(s)

	if withWeb {
		gen := workload.New(workload.Config{
			Stack:    s,
			OpenRate: 7200.0 / 6 * float64(cores),
			Timeout:  s.Eng.CyclesOf(2), // clients give up; keeps offered load bounded
			Seed:     opt.Seed,
		})
		gen.Start()
	}
	s.Start()

	// The paper's build: two parallel phases split by a serial stretch,
	// 125 s total on an otherwise idle half-machine. Web user work on
	// the make cores is squeezed to its CFS share; the make greedily
	// soaks up everything else.
	serialS := 5.0 / scale
	phaseS := (125.0/scale - serialS) / 2
	makeCores := make([]int, 0, cores/2)
	for c := cores / 2; c < cores; c++ {
		s.Eng.Cores[c].UserShare = webShareUnderMake
		makeCores = append(makeCores, c)
	}
	var doneAt sim.Time
	job := &sched.MakeJob{
		Cores:      makeCores,
		PhaseWork:  s.Eng.CyclesOf(phaseS),
		SerialWork: s.Eng.CyclesOf(serialS),
		Done:       func(at sim.Time) { doneAt = at },
	}
	start := s.Eng.Millis(150) // let the web load warm up first
	s.Eng.Run(start)
	job.Start(s.Eng)
	horizon := 125.0 / scale * 12
	s.Eng.Run(start + s.Eng.CyclesOf(horizon))
	if doneAt == 0 {
		// Did not finish inside the horizon: report the horizon, scaled.
		return horizon * scale
	}
	return s.Eng.Seconds(doneAt-start) * scale
}

// BalancerMakeTime reproduces the second §6.5 experiment: the make's
// completion time without the web server, with the web server but no
// flow-group migration, and with migration enabled.
func BalancerMakeTime(opt Options) *Table {
	base := lbMakeScenario(opt, false, false)
	noMig := lbMakeScenario(opt, true, false)
	withMig := lbMakeScenario(opt, true, true)

	rows := [][]string{
		{"make alone", fmt.Sprintf("%.0f", base)},
		{"make + web, no flow migration", fmt.Sprintf("%.0f", noMig)},
		{"make + web, flow migration", fmt.Sprintf("%.0f", withMig)},
	}
	return &Table{
		ExpID:  "LB2",
		Name:   "Kernel-build runtime under web load (§6.5, scaled 1:50)",
		Header: []string{"Scenario", "Runtime s (scaled to paper units)"},
		Rows:   rows,
		Notes: []string{
			"paper: 125 s alone, 168 s with web and no migration, 130 s with migration",
			"work and migration interval are scaled together",
		},
	}
}
