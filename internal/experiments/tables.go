package experiments

import (
	"fmt"

	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/tcp"
)

// Table1 reproduces the paper's Table 1: access times to each level of
// the memory hierarchy on both machines. In the simulator these are the
// configured model inputs; printing them documents the calibration.
func Table1(Options) *Table {
	rows := [][]string{}
	for _, m := range []mem.Machine{mem.AMD48(), mem.Intel80()} {
		l := m.Lat
		rows = append(rows, []string{
			m.Name,
			d(uint64(l.L1)), d(uint64(l.L2)), d(uint64(l.L3)), d(uint64(l.RAM)),
			d(uint64(l.RemoteL3)), d(uint64(l.RemoteRAM)),
		})
	}
	return &Table{
		ExpID:  "T1",
		Name:   "Memory hierarchy access times (cycles)",
		Header: []string{"Machine", "L1", "L2", "L3", "RAM", "RemoteL3", "RemoteRAM"},
		Rows:   rows,
		Notes: []string{
			"model inputs taken verbatim from the paper's Table 1",
		},
	}
}

// Table2 reproduces Table 2: the composition of per-request time with a
// lock_stat kernel at full core count, for the three listen sockets.
func Table2(opt Options) *Table {
	cores := 48
	if opt.Quick {
		cores = 12
	}
	rows := [][]string{}
	for _, kind := range []tcp.ListenKind{tcp.StockAccept, tcp.FineAccept, tcp.AffinityAccept} {
		r := Run(RunConfig{
			Cores:    cores,
			Listen:   kind,
			Server:   Apache,
			LockStat: true,
			Seed:     opt.Seed + int64(kind),
		})
		us := func(cyc float64) string { return fmt.Sprintf("%.0f", r.MicrosPerReq(cyc)) }
		other := r.TotalPerReq - r.IdlePerReq - r.LockSpinWait - r.LockHold
		rows = append(rows, []string{
			kind.String(),
			f0(r.ReqPerSecPerCore),
			us(r.TotalPerReq),
			us(r.IdlePerReq),
			us(r.LockSpinWait),
			us(r.LockHold),
			us(other),
		})
	}
	return &Table{
		ExpID: "T2",
		Name:  fmt.Sprintf("Per-request time composition, Apache, %d cores, lock_stat kernel", cores),
		Header: []string{"Listen Socket", "req/s/core", "Total us", "Idle us",
			"LockSpinWait us", "LockHold us", "Other us"},
		Rows: rows,
		Notes: []string{
			"idle includes mutex-mode lock wait, as in the paper",
			"lock columns cover the listen-socket lock (clone + request-table locks for the partitioned designs)",
		},
	}
}

// Table3 reproduces Table 3: performance counters by kernel entry point,
// per HTTP request, for Fine-Accept vs Affinity-Accept.
func Table3(opt Options) *Table {
	cores := 48
	if opt.Quick {
		cores = 12
	}
	fine := Run(RunConfig{Cores: cores, Listen: tcp.FineAccept, Server: Apache, Seed: opt.Seed})
	aff := Run(RunConfig{Cores: cores, Listen: tcp.AffinityAccept, Server: Apache, Seed: opt.Seed})
	rows3 := perfctr.BuildTable3(fine.Stack.Ctr, aff.Stack.Ctr,
		fine.Stack.Stats.Requests, aff.Stack.Stats.Requests)

	rows := [][]string{}
	for _, r := range rows3 {
		if r.FineCycles == 0 && r.AffinityCycles == 0 {
			continue
		}
		rows = append(rows, []string{
			r.Entry.String(),
			fmt.Sprintf("%d / %d", r.FineCycles, r.AffinityCycles),
			fmt.Sprintf("%d", r.DeltaCycles()),
			fmt.Sprintf("%d / %d", r.FineInstructions, r.AffinityInstructions),
			fmt.Sprintf("%d", r.DeltaInstructions()),
			fmt.Sprintf("%d / %d", r.FineL2Misses, r.AffinityL2Misses),
			fmt.Sprintf("%d", r.DeltaL2()),
		})
	}
	return &Table{
		ExpID: "T3",
		Name:  fmt.Sprintf("Performance counters by kernel entry (Fine / Affinity, per request, %d cores)", cores),
		Header: []string{"Kernel Entry", "Cycles F/A", "dCyc",
			"Instr F/A", "dInstr", "L2Miss F/A", "dL2"},
		Rows: rows,
	}
}

// table4Types lists the object types DProf reports in Table 4.
var table4Types = []string{
	"tcp_sock", "sk_buff", "tcp_request_sock", "slab:size-16384",
	"slab:size-128", "slab:size-1024", "slab:size-4096", "socket_fd",
	"slab:size-192", "task_struct", "file",
}

// table4Runs performs the paper's two-pass DProf methodology: profile
// Fine-Accept, then instrument the same (formerly shared) fields under
// Affinity-Accept.
func table4Runs(opt Options) (fine, aff RunResult) {
	cores := 48
	if opt.Quick {
		cores = 12
	}
	fine = Run(RunConfig{
		Cores: cores, Listen: tcp.FineAccept, Server: Apache,
		Profiling: true, Seed: opt.Seed,
		ConnsPerCore: 96, // fixed load: profiling changes speed, not shape
	})
	fine.Stack.HarvestProfiles()

	// DProf methodology (§6.4): instrument, under Affinity-Accept, the
	// exact set of fields that were shared under Fine-Accept, so the
	// measurement captures "the time to access data that is no longer
	// shared".
	shared := fine.Stack.Mem.SharedFields()
	aff = Run(RunConfig{
		Cores: cores, Listen: tcp.AffinityAccept, Server: Apache,
		Profiling: true, Seed: opt.Seed,
		ConnsPerCore: 96,
		PreRun: func(s *tcp.Stack) {
			for t, fields := range shared {
				s.Mem.WatchFields(t, fields)
			}
		},
	})
	aff.Stack.HarvestProfiles()
	return fine, aff
}

// Table4 reproduces Table 4: per-type sharing under Fine-Accept versus
// Affinity-Accept.
func Table4(opt Options) *Table {
	fine, aff := table4Runs(opt)
	fr := reportByName(fine.Stack.Mem.Report())
	ar := reportByName(aff.Stack.Mem.Report())

	rows := [][]string{}
	for _, name := range table4Types {
		f, fok := fr[name]
		a, aok := ar[name]
		if !fok && !aok {
			continue
		}
		var size int
		if fok {
			size = f.Size
		} else {
			size = a.Size
		}
		cycF, cycA := "-", "-"
		if fine.Requests > 0 {
			cycF = d(f.SharedCycles / maxU(fine.Requests, 1))
		}
		if aff.Requests > 0 {
			// The Affinity column uses the watched-field counters: the
			// cost of accessing the bytes Fine-Accept shared, whether or
			// not they are still shared.
			if t := typeByName(name); t != nil {
				cycA = d(aff.Stack.Mem.WatchedCycles(t) / maxU(aff.Requests, 1))
			} else {
				cycA = d(a.SharedCycles / maxU(aff.Requests, 1))
			}
		}
		rows = append(rows, []string{
			name,
			d(uint64(size)),
			fmt.Sprintf("%.0f / %.0f", f.PctLinesShared, a.PctLinesShared),
			fmt.Sprintf("%.0f / %.0f", f.PctBytesShared, a.PctBytesShared),
			fmt.Sprintf("%.0f / %.0f", f.PctBytesSharedRW, a.PctBytesSharedRW),
			fmt.Sprintf("%s / %s", cycF, cycA),
		})
	}
	return &Table{
		ExpID: "T4",
		Name:  "DProf sharing by type (Fine-Accept / Affinity-Accept)",
		Header: []string{"Data Type", "Size B", "%Lines Shared",
			"%Bytes Shared", "%Bytes RW", "SharedCyc/req"},
		Rows: rows,
		Notes: []string{
			"shared cycles count accesses to lines touched by >1 core",
		},
	}
}

func typeByName(name string) *mem.TypeInfo {
	for _, t := range tcp.TrackedTypes() {
		if t.Name == name {
			return t
		}
	}
	return nil
}

func reportByName(rows []mem.TypeReport) map[string]mem.TypeReport {
	m := make(map[string]mem.TypeReport, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Figure4 reproduces Figure 4: the CDF of memory access latencies to the
// locations that Fine-Accept shares, measured under both kernels.
func Figure4(opt Options) *Series {
	fine, aff := table4Runs(opt)
	fh := fine.Stack.Mem.SharedLatencies(table4Types...)
	ah := aff.Stack.Mem.WatchedLatencies(table4Types...)

	xs := []float64{}
	fl, al := []float64{}, []float64{}
	for _, p := range []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99} {
		xs = append(xs, p)
		fl = append(fl, fh.Quantile(p/100))
		al = append(al, ah.Quantile(p/100))
	}
	return &Series{
		ExpID:  "F4",
		Name:   "Latency of accesses to shared locations (quantiles)",
		XLabel: "percentile",
		YLabel: "cycles",
		X:      xs,
		Lines:  map[string][]float64{"Fine-Accept": fl, "Affinity-Accept": al},
		Order:  []string{"Fine-Accept", "Affinity-Accept"},
		Notes: []string{
			"the paper plots the CDF; quantiles carry the same information",
			fmt.Sprintf("samples: fine=%d affinity=%d", fh.Count(), ah.Count()),
		},
	}
}

// Table5 reproduces Table 5: steering features of contemporary 10 Gbit
// NICs.
func Table5(Options) *Table {
	rows := [][]string{}
	for _, m := range nic.Catalogue() {
		hw := fmt.Sprintf("%d", m.HWDMARings)
		if m.HWDMARingsAlt > 0 {
			hw = fmt.Sprintf("%d or %d", m.HWDMARings, m.HWDMARingsAlt)
		}
		rss := fmt.Sprintf("%d", m.RSSDMARings)
		if m.RSSDMARingsAlt > 0 {
			rss = fmt.Sprintf("%d or %d", m.RSSDMARings, m.RSSDMARingsAlt)
		}
		fs := m.FlowSteeringNote
		if m.FlowSteeringEntries > 0 {
			fs = fmt.Sprintf("%dK", m.FlowSteeringEntries/1024)
		}
		rows = append(rows, []string{m.Vendor, hw, rss, fs})
	}
	return &Table{
		ExpID:  "T5",
		Name:   "Features of modern NICs",
		Header: []string{"NIC", "HW DMA Rings", "RSS DMA Rings", "Flow Steering Table"},
		Rows:   rows,
	}
}
