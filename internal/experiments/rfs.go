package experiments

import (
	"fmt"

	"affinityaccept/internal/tcp"
)

// ExtensionRFS compares software Receive Flow Steering against the
// paper's designs (§7.2): RFS restores connection locality for
// established-flow processing but pays a routing step on every packet
// and frees packet buffers remotely, so it lands between Stock-Accept
// and Affinity-Accept — "routing in software does not perform as well
// as in hardware".
func ExtensionRFS(opt Options) *Table {
	cores := 48
	if opt.Quick {
		cores = 12
	}
	type cfg struct {
		name string
		rc   RunConfig
	}
	cases := []cfg{
		{"Stock-Accept", RunConfig{Cores: cores, Listen: tcp.StockAccept, Server: Apache, Seed: opt.Seed}},
		{"Stock-Accept + software RFS", RunConfig{Cores: cores, Listen: tcp.StockAccept, Server: Apache, SoftwareRFS: true, Seed: opt.Seed}},
		{"Fine-Accept + software RFS", RunConfig{Cores: cores, Listen: tcp.FineAccept, Server: Apache, SoftwareRFS: true, Seed: opt.Seed}},
		{"Affinity-Accept", RunConfig{Cores: cores, Listen: tcp.AffinityAccept, Server: Apache, Seed: opt.Seed}},
	}
	rows := [][]string{}
	for _, c := range cases {
		r := Run(c.rc)
		st := r.Stack.Stats
		local := 0.0
		if st.Requests > 0 {
			local = 100 * float64(st.RequestsLocal) / float64(st.Requests)
		}
		perReq := "-"
		if st.Requests > 0 {
			var busy uint64
			for _, co := range r.Stack.Eng.Cores {
				busy += uint64(co.BusyCycles())
			}
			perReq = fmt.Sprintf("%.0f", float64(busy)/float64(st.Requests))
		}
		rows = append(rows, []string{
			c.name,
			f0(r.ReqPerSecPerCore),
			fmt.Sprintf("%.0f%%", local),
			d(st.RFSRouted),
			perReq,
		})
	}
	return &Table{
		ExpID:  "X1",
		Name:   "Software Receive Flow Steering vs hardware steering (§7.2)",
		Header: []string{"Configuration", "req/s/core", "local processing", "routed pkts", "busy cyc/req"},
		Rows:   rows,
		Notes: []string{
			"RFS routes in software: per-packet routing CPU plus remote packet-buffer frees",
			"paper: \"routing in software does not perform as well as in hardware\"",
		},
	}
}
