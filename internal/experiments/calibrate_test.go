package experiments

import (
	"testing"

	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/tcp"
)

// TestCalibrationSnapshot prints headline numbers for manual calibration
// against the paper. Run with -v; assertions are deliberately loose
// sanity floors — the tight shape checks live in the experiment tests.
func TestCalibrationSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	for _, kind := range []tcp.ListenKind{tcp.StockAccept, tcp.FineAccept, tcp.AffinityAccept} {
		for _, cores := range []int{1, 12, 48} {
			r := Run(RunConfig{
				Cores:  cores,
				Listen: kind,
				Server: Apache,
				Seed:   7,
			})
			ns := r.Stack.NIC.Stats
			q := r.Stack.Queues()
			localPct := 0.0
			if r.Stack.Stats.Requests > 0 {
				localPct = 100 * float64(r.Stack.Stats.RequestsLocal) / float64(r.Stack.Stats.Requests)
			}
			t.Logf("%-16s %2d cores: %7.0f req/s/core (%8.0f total), %6.0f conn/s, %.2f Gbit/s, drops=%d syn=%d ringdrop=%d rtx=%d refused=%d idle/req=%.0fus local=%.0f%% steals=%d",
				kind, cores, r.ReqPerSecPerCore, r.ReqPerSec, r.ConnsPerSec, r.GbitsPerSec,
				r.Stack.Stats.AcceptDrops, r.Stack.Stats.SynDrops, ns.RxDropsFull,
				r.Gen.Retransmits, r.Gen.Refused, r.MicrosPerReq(r.IdlePerReq), localPct, q.Steals)
			if cores == 12 || cores == 48 {
				per := r.Stack.Ctr.PerRequest(r.Stack.Stats.Requests)
				for _, e := range perfctr.Entries() {
					c := per[e]
					if c.Cycles > 0 {
						t.Logf("    %-16s %8d cyc %8d instr %6d l2miss", e, c.Cycles, c.Instructions, c.L2Misses)
					}
				}
				ls := r.Stack.ListenLockStats()
				reqs := float64(r.Requests)
				t.Logf("    listen locks: acq/req=%.1f contended=%d spin/req=%.0f mutex/req=%.0f hold/req=%.0f",
					float64(ls.Acquisitions)/reqs, ls.Contended,
					float64(ls.SpinWait)/reqs, float64(ls.MutexWait)/reqs, float64(ls.Hold)/reqs)
			}
			if r.ReqPerSecPerCore < 100 {
				t.Fatalf("%v at %d cores: throughput collapsed (%f)", kind, cores, r.ReqPerSecPerCore)
			}
		}
	}
}
