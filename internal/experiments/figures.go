package experiments

import (
	"fmt"

	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/tcp"
)

var threeKinds = []tcp.ListenKind{tcp.StockAccept, tcp.FineAccept, tcp.AffinityAccept}

func kindNames(kinds []tcp.ListenKind) []string {
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// scalingFigure runs the core-count sweep behind Figures 2, 3, 5 and 6.
func scalingFigure(id, title string, machine mem.Machine, server ServerKind, opt Options) *Series {
	var steps []int
	if opt.Quick {
		steps = []int{1, machine.Cores() / 2, machine.Cores()}
	} else if machine.Cores() > 48 {
		steps = []int{1, 10, 20, 30, 40, 50, 60, 70, 80}
	} else {
		steps = []int{1, 4, 8, 12, 16, 24, 32, 40, 48}
	}
	xs := make([]float64, len(steps))
	lines := map[string][]float64{}
	for _, kind := range threeKinds {
		ys := make([]float64, len(steps))
		for i, cores := range steps {
			xs[i] = float64(cores)
			r := Run(RunConfig{
				Machine: machine,
				Cores:   cores,
				Listen:  kind,
				Server:  server,
				Seed:    opt.Seed + int64(kind)*100 + int64(cores),
			})
			ys[i] = r.ReqPerSecPerCore
		}
		lines[kind.String()] = ys
	}
	return &Series{
		ExpID:  id,
		Name:   title,
		XLabel: "cores",
		YLabel: "requests/sec/core",
		X:      xs,
		Lines:  lines,
		Order:  kindNames(threeKinds),
	}
}

// Figure2 reproduces Figure 2: Apache scaling on the AMD machine.
func Figure2(opt Options) *Series {
	return scalingFigure("F2", "Apache throughput vs cores (AMD48)", mem.AMD48(), Apache, opt)
}

// Figure3 reproduces Figure 3: lighttpd scaling on the AMD machine.
func Figure3(opt Options) *Series {
	return scalingFigure("F3", "Lighttpd throughput vs cores (AMD48)", mem.AMD48(), Lighttpd, opt)
}

// Figure5 reproduces Figure 5: Apache scaling on the Intel machine.
func Figure5(opt Options) *Series {
	return scalingFigure("F5", "Apache throughput vs cores (Intel80)", mem.Intel80(), Apache, opt)
}

// Figure6 reproduces Figure 6: lighttpd scaling on the Intel machine.
func Figure6(opt Options) *Series {
	return scalingFigure("F6", "Lighttpd throughput vs cores (Intel80)", mem.Intel80(), Lighttpd, opt)
}

// reuseFigure sweeps requests-per-connection (Figures 7 and 10).
func reuseFigure(id, title string, kinds []tcp.ListenKind, twenty bool, opt Options) *Series {
	reuse := []int{1, 2, 6, 20, 100, 500, 1000}
	if opt.Quick {
		reuse = []int{1, 6, 100}
	}
	xs := make([]float64, len(reuse))
	lines := map[string][]float64{}
	order := kindNames(kinds)

	runPoint := func(kind tcp.ListenKind, nicMode nic.Mode, n int) float64 {
		r := Run(RunConfig{
			Cores:       48,
			Listen:      kind,
			Server:      Apache,
			ReqsPerConn: n,
			// Shorter thinks keep long-reuse connections from needing
			// enormous client populations; Figure 7 varies the accept
			// rate, not the think structure.
			ThinkMS: 5,
			NICMode: nicMode,
			Seed:    opt.Seed + int64(kind)*1000 + int64(n),
		})
		return r.ReqPerSecPerCore
	}

	for _, kind := range kinds {
		ys := make([]float64, len(reuse))
		for i, n := range reuse {
			xs[i] = float64(n)
			ys[i] = runPoint(kind, nic.ModeFlowGroups, n)
		}
		lines[kind.String()] = ys
	}
	if twenty {
		name := "Twenty-Policy"
		order = append(order, name)
		ys := make([]float64, len(reuse))
		for i, n := range reuse {
			ys[i] = runPoint(tcp.StockAccept, nic.ModePerFlowFDir, n)
		}
		lines[name] = ys
	}
	return &Series{
		ExpID:  id,
		Name:   title,
		XLabel: "reqs/conn",
		YLabel: "requests/sec/core",
		X:      xs,
		Lines:  lines,
		Order:  order,
	}
}

// Figure7 reproduces Figure 7: the effect of TCP connection reuse.
func Figure7(opt Options) *Series {
	return reuseFigure("F7", "Connection reuse vs throughput (AMD48, Apache)", threeKinds, false, opt)
}

// Figure10 reproduces Figure 10: Figure 7 plus the Twenty-Policy driver
// (stock Linux with per-flow FDir steering updated from the transmit
// path).
func Figure10(opt Options) *Series {
	s := reuseFigure("F10", "Connection reuse incl. Twenty-Policy (AMD48, Apache)", threeKinds, true, opt)
	s.Notes = append(s.Notes,
		"Twenty-Policy: stock listen socket + FDir insert every 20th TX packet",
		"FDir insert 10k cycles; table flush halts TX and drops RX (~62.5 us)")
	return s
}

// Figure8 reproduces Figure 8: the effect of client think time.
func Figure8(opt Options) *Series {
	thinks := []float64{0.1, 1, 10, 100, 1000}
	if opt.Quick {
		thinks = []float64{1, 100}
	}
	xs := make([]float64, len(thinks))
	lines := map[string][]float64{}
	for _, kind := range threeKinds {
		ys := make([]float64, len(thinks))
		for i, th := range thinks {
			xs[i] = th
			r := Run(RunConfig{
				Cores:   48,
				Listen:  kind,
				Server:  Apache,
				ThinkMS: th,
				// Long thinks need a window long enough to cover several
				// think cycles.
				WarmupS:  0.5 + 2.2*th/1000,
				MeasureS: 0.4 + 2.2*th/1000,
				Seed:     opt.Seed + int64(kind)*1000 + int64(th*10),
			})
			ys[i] = r.ReqPerSecPerCore
		}
		lines[kind.String()] = ys
	}
	return &Series{
		ExpID:  "F8",
		Name:   "Client think time vs throughput (AMD48, Apache)",
		XLabel: "think ms",
		YLabel: "requests/sec/core",
		X:      xs,
		Lines:  lines,
		Order:  kindNames(threeKinds),
		Notes: []string{
			"long think times mean many concurrent connections; throughput should hold",
		},
	}
}

// Figure9 reproduces Figure 9: the effect of average file size, showing
// NIC bandwidth saturation above ~1 KB.
func Figure9(opt Options) *Series {
	sizes := []int{10, 30, 100, 300, 700, 1000, 3000, 10000}
	if opt.Quick {
		sizes = []int{100, 700, 3000}
	}
	xs := make([]float64, len(sizes))
	lines := map[string][]float64{}
	gbits := make([]float64, len(sizes))
	for _, kind := range threeKinds {
		ys := make([]float64, len(sizes))
		for i, sz := range sizes {
			xs[i] = float64(sz)
			r := Run(RunConfig{
				Cores:         48,
				Listen:        kind,
				Server:        Apache,
				MeanFileBytes: sz,
				Seed:          opt.Seed + int64(kind)*1000 + int64(sz),
			})
			ys[i] = r.ReqPerSecPerCore
			if kind == tcp.AffinityAccept {
				gbits[i] = r.GbitsPerSec
			}
		}
		lines[kind.String()] = ys
	}
	s := &Series{
		ExpID:  "F9",
		Name:   "Average file size vs throughput (AMD48, Apache)",
		XLabel: "avg file bytes",
		YLabel: "requests/sec/core",
		X:      xs,
		Lines:  lines,
		Order:  kindNames(threeKinds),
	}
	for i, sz := range sizes {
		s.Notes = append(s.Notes,
			fmt.Sprintf("affinity wire rate at %dB: %.2f Gbit/s", sz, gbits[i]))
	}
	return s
}
