package experiments

import (
	"fmt"

	"affinityaccept/internal/tcp"
)

// AblationRequestTable reproduces the §5.2 measurement: the shared,
// bucket-locked request hash table costs at most ~2% versus per-core
// request tables (which would break under flow-group migration).
func AblationRequestTable(opt Options) *Table {
	cores := 48
	if opt.Quick {
		cores = 12
	}
	shared := Run(RunConfig{
		Cores: cores, Listen: tcp.AffinityAccept, Server: Apache,
		Seed: opt.Seed,
	})
	perCore := Run(RunConfig{
		Cores: cores, Listen: tcp.AffinityAccept, Server: Apache,
		ReqTablePerCore: true,
		// Per-core tables only work without migration moving flows.
		MigrateEveryMS: -1,
		Seed:           opt.Seed,
	})
	delta := 100 * (perCore.ReqPerSecPerCore - shared.ReqPerSecPerCore) / perCore.ReqPerSecPerCore
	return &Table{
		ExpID:  "A1",
		Name:   "Request hash table design (§5.2)",
		Header: []string{"Design", "req/s/core"},
		Rows: [][]string{
			{"shared, bucket-locked", f0(shared.ReqPerSecPerCore)},
			{"per-core tables (no migration)", f0(perCore.ReqPerSecPerCore)},
		},
		Notes: []string{
			fmt.Sprintf("shared table costs %.1f%% (paper: at most ~2%%)", delta),
		},
	}
}

// AblationStealRatio sweeps the proportional-share ratio of §3.3.1; the
// paper reports overall performance is not significantly affected.
func AblationStealRatio(opt Options) *Series {
	ratios := []int{1, 2, 5, 10, 20}
	if opt.Quick {
		ratios = []int{1, 5, 20}
	}
	cores := 48
	if opt.Quick {
		cores = 12
	}
	xs := make([]float64, len(ratios))
	ys := make([]float64, len(ratios))
	for i, ratio := range ratios {
		xs[i] = float64(ratio)
		r := Run(RunConfig{
			Cores: cores, Listen: tcp.AffinityAccept, Server: Apache,
			StealRatio: ratio,
			Seed:       opt.Seed + int64(ratio),
		})
		ys[i] = r.ReqPerSecPerCore
	}
	return &Series{
		ExpID:  "A2",
		Name:   "Local:remote proportional-share ratio sweep (§3.3.1)",
		XLabel: "steal ratio",
		YLabel: "requests/sec/core",
		X:      xs,
		Lines:  map[string][]float64{"Affinity-Accept": ys},
		Order:  []string{"Affinity-Accept"},
		Notes:  []string{"paper: performance not significantly affected by this ratio"},
	}
}

// AblationApachePinning reproduces the §4.2 observation: without pinning,
// Apache's worker threads scatter across cores and break connection
// affinity even under Affinity-Accept.
func AblationApachePinning(opt Options) *Table {
	cores := 48
	if opt.Quick {
		cores = 12
	}
	pinned := Run(RunConfig{
		Cores: cores, Listen: tcp.AffinityAccept, Server: Apache, Seed: opt.Seed,
	})
	unpinned := Run(RunConfig{
		Cores: cores, Listen: tcp.AffinityAccept, Server: ApacheUnpinned, Seed: opt.Seed,
	})
	localPct := func(r RunResult) string {
		if r.Stack.Stats.Requests == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%",
			100*float64(r.Stack.Stats.RequestsLocal)/float64(r.Stack.Stats.Requests))
	}
	return &Table{
		ExpID:  "A3",
		Name:   "Apache worker pinning under Affinity-Accept (§4.2)",
		Header: []string{"Configuration", "req/s/core", "local processing"},
		Rows: [][]string{
			{"workers pinned to accept core", f0(pinned.ReqPerSecPerCore), localPct(pinned)},
			{"workers scattered (stock scheduler)", f0(unpinned.ReqPerSecPerCore), localPct(unpinned)},
		},
		Notes: []string{
			"unpinned workers hand accepted connections to other cores, violating affinity",
		},
	}
}

// AblationFlowGroups sweeps the number of flow groups; good balance
// requires many more groups than cores (§3.1).
func AblationFlowGroups(opt Options) *Series {
	groups := []int{48, 128, 512, 4096}
	if opt.Quick {
		groups = []int{64, 4096}
	}
	cores := 48
	if opt.Quick {
		cores = 12
	}
	xs := make([]float64, len(groups))
	ys := make([]float64, len(groups))
	imbalance := make([]float64, len(groups))
	for i, g := range groups {
		xs[i] = float64(g)
		r := Run(RunConfig{
			Cores: cores, Listen: tcp.AffinityAccept, Server: Apache,
			FlowGroups: g,
			Seed:       opt.Seed + int64(g),
		})
		ys[i] = r.ReqPerSecPerCore
		counts := r.Stack.FlowTable().GroupCount()
		min, max := counts[0], counts[0]
		for _, n := range counts {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if min > 0 {
			imbalance[i] = float64(max) / float64(min)
		}
	}
	s := &Series{
		ExpID:  "A4",
		Name:   "Flow-group count sweep (§3.1)",
		XLabel: "flow groups",
		YLabel: "requests/sec/core",
		X:      xs,
		Lines:  map[string][]float64{"Affinity-Accept": ys},
		Order:  []string{"Affinity-Accept"},
	}
	for i, g := range groups {
		s.Notes = append(s.Notes,
			fmt.Sprintf("%d groups: max/min groups per core = %.2f", g, imbalance[i]))
	}
	return s
}

// AblationWatermarks sweeps the busy watermarks of §3.3.1.
func AblationWatermarks(opt Options) *Table {
	type wm struct{ high, low float64 }
	settings := []wm{{50, 5}, {75, 10}, {90, 25}}
	if opt.Quick {
		settings = []wm{{75, 10}}
	}
	cores := 48
	if opt.Quick {
		cores = 12
	}
	rows := [][]string{}
	for _, w := range settings {
		r := Run(RunConfig{
			Cores: cores, Listen: tcp.AffinityAccept, Server: Apache,
			HighPct: w.high, LowPct: w.low,
			Seed: opt.Seed + int64(w.high),
		})
		rows = append(rows, []string{
			fmt.Sprintf("high=%.0f%% low=%.0f%%", w.high, w.low),
			f0(r.ReqPerSecPerCore),
			d(r.Stack.Queues().Steals),
			d(r.Stack.Stats.AcceptDrops + r.Stack.Stats.SynDrops),
		})
	}
	return &Table{
		ExpID:  "A5",
		Name:   "Busy watermark sweep (§3.3.1)",
		Header: []string{"Watermarks", "req/s/core", "steals", "drops"},
		Rows:   rows,
		Notes:  []string{"paper default: 75% high, 10% low of max local queue length"},
	}
}
