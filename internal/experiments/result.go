package experiments

import (
	"fmt"
	"strings"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks sweeps and windows so benchmarks finish promptly;
	// the full versions (CLI) use the paper's parameter ranges.
	Quick bool
	Seed  int64
}

// Result is a reproduced table or figure.
type Result interface {
	ID() string
	Title() string
	Render() string
}

// Series is a figure: one or more lines over a shared x axis.
type Series struct {
	ExpID  string
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Lines  map[string][]float64
	Order  []string
	Notes  []string
}

// ID implements Result.
func (s *Series) ID() string { return s.ExpID }

// Title implements Result.
func (s *Series) Title() string { return s.Name }

// Render prints the series as aligned columns.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", s.ExpID, s.Name)
	fmt.Fprintf(&b, "%-14s", s.XLabel)
	for _, name := range s.Order {
		fmt.Fprintf(&b, " %18s", name)
	}
	fmt.Fprintf(&b, "   (%s)\n", s.YLabel)
	for i, x := range s.X {
		fmt.Fprintf(&b, "%-14.4g", x)
		for _, name := range s.Order {
			ys := s.Lines[name]
			if i < len(ys) {
				fmt.Fprintf(&b, " %18.1f", ys[i])
			} else {
				fmt.Fprintf(&b, " %18s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range s.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Table is a reproduced table.
type Table struct {
	ExpID  string
	Name   string
	Header []string
	Rows   [][]string
	Notes  []string
}

// ID implements Result.
func (t *Table) ID() string { return t.ExpID }

// Title implements Result.
func (t *Table) Title() string { return t.Name }

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ExpID, t.Name)
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func d(v uint64) string   { return fmt.Sprintf("%d", v) }
