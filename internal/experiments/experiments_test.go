package experiments

import (
	"fmt"
	"strings"
	"testing"

	"affinityaccept/internal/tcp"
)

var quick = Options{Quick: true, Seed: 42}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5",
		"F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10",
		"LB1", "LB2", "A1", "A2", "A3", "A4", "A5", "X1"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
		if Describe(id) == "" {
			t.Fatalf("experiment %s has no description", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if _, err := RunByID("nope", quick); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1(quick)
	if len(tab.Rows) != 2 {
		t.Fatal("table 1 should have two machines")
	}
	if tab.Rows[0][1] != "3" || tab.Rows[0][6] != "500" {
		t.Fatalf("AMD row wrong: %v", tab.Rows[0])
	}
	if tab.Rows[1][1] != "4" || tab.Rows[1][6] != "280" {
		t.Fatalf("Intel row wrong: %v", tab.Rows[1])
	}
	if !strings.Contains(tab.Render(), "RemoteL3") {
		t.Fatal("render missing header")
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	tab := Table5(quick)
	if len(tab.Rows) != 4 {
		t.Fatal("table 5 should have four NICs")
	}
	out := tab.Render()
	for _, vendor := range []string{"Intel", "Chelsio", "Solarflare", "Myricom"} {
		if !strings.Contains(out, vendor) {
			t.Fatalf("missing %s", vendor)
		}
	}
	if !strings.Contains(out, "32K") || !strings.Contains(out, "tens of thousands") {
		t.Fatal("steering entries wrong")
	}
}

// TestScalingOrder asserts the paper's headline ordering at the machine's
// full size: Affinity >= Fine > Stock, with Affinity fully local.
func TestScalingOrder(t *testing.T) {
	results := map[tcp.ListenKind]RunResult{}
	for _, kind := range threeKinds {
		results[kind] = Run(RunConfig{
			Cores:  12,
			Listen: kind,
			Server: Apache,
			Seed:   42,
		})
	}
	stock := results[tcp.StockAccept].ReqPerSecPerCore
	fine := results[tcp.FineAccept].ReqPerSecPerCore
	aff := results[tcp.AffinityAccept].ReqPerSecPerCore
	if !(aff > fine && fine > stock) {
		t.Fatalf("ordering violated: stock=%.0f fine=%.0f affinity=%.0f", stock, fine, aff)
	}
	st := results[tcp.AffinityAccept].Stack.Stats
	if local := float64(st.RequestsLocal) / float64(st.Requests); local < 0.99 {
		t.Fatalf("affinity locality %.2f, want ~1.0", local)
	}
	st = results[tcp.FineAccept].Stack.Stats
	if local := float64(st.RequestsLocal) / float64(st.Requests); local > 0.2 {
		t.Fatalf("fine locality %.2f, want ~1/cores", local)
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2(quick)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Stock's lock columns dominate; the partitioned designs' don't.
	out := tab.Render()
	if !strings.Contains(out, "Stock-Accept") || !strings.Contains(out, "Affinity-Accept") {
		t.Fatal("rows missing")
	}
}

func TestTable3Shape(t *testing.T) {
	tab := Table3(quick)
	if len(tab.Rows) == 0 {
		t.Fatal("empty table 3")
	}
	if tab.Rows[0][0] != "softirq_net_rx" {
		t.Fatalf("top row %q, want softirq_net_rx (largest cycles)", tab.Rows[0][0])
	}
}

func TestTable4AndFigure4Shape(t *testing.T) {
	tab := Table4(quick)
	var sockRow []string
	for _, r := range tab.Rows {
		if r[0] == "tcp_sock" {
			sockRow = r
		}
	}
	if sockRow == nil {
		t.Fatal("no tcp_sock row")
	}
	// Fine shares a large fraction of tcp_sock lines; affinity almost none.
	parts := strings.Split(sockRow[2], " / ")
	if len(parts) != 2 {
		t.Fatalf("lines-shared cell: %q", sockRow[2])
	}
	var finePct, affPct float64
	if _, err := fmt.Sscanf(parts[0], "%f", &finePct); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(parts[1], "%f", &affPct); err != nil {
		t.Fatal(err)
	}
	if finePct < 40 {
		t.Fatalf("fine shares %.0f%% of tcp_sock lines, want most", finePct)
	}
	if affPct > finePct/2 {
		t.Fatalf("affinity sharing %.0f%% not collapsed vs fine %.0f%%", affPct, finePct)
	}

	fig := Figure4(quick)
	fl, al := fig.Lines["Fine-Accept"], fig.Lines["Affinity-Accept"]
	if len(fl) == 0 || len(al) == 0 {
		t.Fatal("figure 4 lines missing")
	}
	// High-percentile shared-access latencies collapse under affinity.
	if al[len(al)-1] >= fl[len(fl)-1] {
		t.Fatalf("p99 shared latency: affinity %.0f >= fine %.0f", al[len(al)-1], fl[len(fl)-1])
	}
}

func TestAblationRequestTableWithinFewPercent(t *testing.T) {
	tab := AblationRequestTable(quick)
	if len(tab.Rows) != 2 {
		t.Fatal("rows")
	}
	if len(tab.Notes) == 0 || !strings.Contains(tab.Notes[0], "%") {
		t.Fatal("missing delta note")
	}
}

// TestExtensionRFSOrdering: software RFS restores locality but costs
// routing CPU, so it should land between stock and affinity at scale.
func TestExtensionRFSOrdering(t *testing.T) {
	tab := ExtensionRFS(quick)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	var stockT, rfsT, affT float64
	fmt.Sscanf(tab.Rows[0][1], "%f", &stockT)
	fmt.Sscanf(tab.Rows[1][1], "%f", &rfsT)
	fmt.Sscanf(tab.Rows[3][1], "%f", &affT)
	if !(rfsT > stockT) {
		t.Fatalf("RFS (%.0f) should beat stock (%.0f): locality restored", rfsT, stockT)
	}
	if !(affT > rfsT) {
		t.Fatalf("affinity (%.0f) should beat RFS (%.0f): no routing tax", affT, rfsT)
	}
	// RFS actually routed packets and made processing local.
	if tab.Rows[1][3] == "0" {
		t.Fatal("RFS routed nothing")
	}
}

func TestAblationApachePinning(t *testing.T) {
	tab := AblationApachePinning(quick)
	if len(tab.Rows) != 2 {
		t.Fatal("rows")
	}
	if tab.Rows[0][2] == tab.Rows[1][2] {
		t.Fatalf("pinned and unpinned locality identical: %v", tab.Rows)
	}
}
