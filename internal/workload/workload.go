// Package workload is the httperf-style load generator of §6.2: many
// client connections issuing HTTP requests against the simulated server
// over a SpecWeb-inspired static file mix, with client think time, a
// group pattern (one file, think, two files, think, three files, close),
// a 10-second give-up timeout, and per-connection service-time
// recording.
package workload

import (
	"math/rand"

	"affinityaccept/internal/core"
	"affinityaccept/internal/sim"
	"affinityaccept/internal/stats"
	"affinityaccept/internal/tcp"
)

// Pattern describes request grouping on one connection: Groups[i]
// requests are issued back to back, separated by Think between groups.
type Pattern struct {
	Groups []int
	Think  sim.Cycles
}

// TotalRequests sums the group sizes.
func (p Pattern) TotalRequests() int {
	n := 0
	for _, g := range p.Groups {
		n += g
	}
	return n
}

// PaperPattern is the default workload: 6 requests as 1/2/3 with 100 ms
// thinks.
func PaperPattern(e *sim.Engine) Pattern {
	return Pattern{Groups: []int{1, 2, 3}, Think: e.Millis(100)}
}

// GroupsFor splits n requests into groups of at most three, mirroring
// the paper's 1/2/3 shape for its default of six.
func GroupsFor(n int) []int {
	if n <= 0 {
		n = 1
	}
	switch n {
	case 6:
		return []int{1, 2, 3}
	}
	var groups []int
	sizes := []int{1, 2, 3}
	i := 0
	for n > 0 {
		g := sizes[i%len(sizes)]
		if g > n {
			g = n
		}
		groups = append(groups, g)
		n -= g
		i++
	}
	return groups
}

// Config parameterizes the generator.
type Config struct {
	Stack   *tcp.Stack
	Pattern Pattern

	// Connections is the closed-loop concurrency: each finished
	// connection is immediately replaced.
	Connections int
	// OpenRate, when nonzero, switches to open-loop arrivals at this
	// many connections per second (used for the §6.5 latency runs,
	// which fix offered load rather than saturating).
	OpenRate float64

	// Timeout is the client's give-up time (default 10 s).
	Timeout sim.Cycles
	// DelayedAck is the standalone-ack delay after a think group ends.
	DelayedAck sim.Cycles

	// Files is the catalogue size (default 30,000).
	Files int
	// MeanFileBytes scales the file mix (default ~700 bytes, range
	// 30–5670 as in the paper).
	MeanFileBytes int

	// Seed drives the generator's private RNG.
	Seed int64
}

// Gen drives the workload.
type Gen struct {
	cfg   Config
	s     *tcp.Stack
	rng   *rand.Rand
	files []int

	nextPort uint32
	nextIP   uint32

	measureFrom sim.Time

	// Completed counts connections that finished all requests.
	Completed uint64
	// TimedOut counts connections abandoned at the timeout.
	TimedOut uint64
	// Retransmits counts client-side retransmissions (dropped packets).
	Retransmits uint64
	// Refused counts connections the server reset (queue overflow).
	Refused uint64
	// Latencies records per-connection service time in seconds for
	// connections finishing after measureFrom.
	Latencies stats.Sample
}

// clientConn is the client half of one connection.
type clientConn struct {
	conn     *tcp.Conn
	start    sim.Time
	group    int
	inGroup  int
	reqsLeft int
	done     bool

	// progress increments on every packet received; retransmit timers
	// compare snapshots of it to detect a stalled exchange.
	progress uint64
	// awaiting is true while a request is outstanding; duplicate
	// responses (from retransmitted requests) are ignored.
	awaiting bool
	// lastResp remembers the response size of the request in flight so
	// a retransmission asks for the same file.
	lastResp int
	// reqSeq is the serial of the next request; the server uses it to
	// discard retransmitted segments it already holds.
	reqSeq int
}

// New builds a generator over a stack. It installs itself as the
// stack's Deliver callback.
func New(cfg Config) *Gen {
	if cfg.Stack == nil {
		panic("workload: need a stack")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = cfg.Stack.Eng.CyclesOf(10)
	}
	if cfg.DelayedAck == 0 {
		cfg.DelayedAck = cfg.Stack.Eng.Millis(40)
	}
	if cfg.Files == 0 {
		cfg.Files = 30000
	}
	if cfg.MeanFileBytes == 0 {
		cfg.MeanFileBytes = 700
	}
	if len(cfg.Pattern.Groups) == 0 {
		cfg.Pattern = PaperPattern(cfg.Stack.Eng)
	}
	g := &Gen{
		cfg: cfg,
		s:   cfg.Stack,
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
		// Latency recording is off until BeginMeasure arms it.
		measureFrom: ^sim.Time(0),
	}
	g.buildFiles()
	g.s.Deliver = g.deliver
	return g
}

// buildFiles draws the catalogue: a right-skewed mix in [30, 5670]
// rescaled to the requested mean, like the static half of SpecWeb.
func (g *Gen) buildFiles() {
	g.files = make([]int, g.cfg.Files)
	var sum float64
	raw := make([]float64, g.cfg.Files)
	for i := range raw {
		// Exponential body plus a light tail, clipped to the paper's range.
		v := g.rng.ExpFloat64()
		if v > 8 {
			v = 8
		}
		raw[i] = v
		sum += v
	}
	meanRaw := sum / float64(len(raw))
	for i, v := range raw {
		b := int(v / meanRaw * float64(g.cfg.MeanFileBytes))
		if b < 30 {
			b = 30
		}
		if max := g.cfg.MeanFileBytes * 81 / 10; b > max {
			b = max
		}
		g.files[i] = b
	}
}

// MeanFileSize reports the catalogue's actual mean, for Figure 9 axes.
func (g *Gen) MeanFileSize() float64 {
	sum := 0
	for _, b := range g.files {
		sum += b
	}
	return float64(sum) / float64(len(g.files))
}

// Start launches the configured load at the engine's current time.
// Closed-loop connections are staggered over 50 ms to avoid a synthetic
// SYN burst.
func (g *Gen) Start() {
	e := g.s.Eng
	if g.cfg.OpenRate > 0 {
		g.scheduleArrival(e)
		return
	}
	// Spread starts over roughly one connection lifetime so the initial
	// SYN wave matches the steady-state rate.
	stagger := sim.Cycles(uint64(len(g.cfg.Pattern.Groups)))*g.cfg.Pattern.Think + e.Millis(60)
	for i := 0; i < g.cfg.Connections; i++ {
		delay := sim.Time(g.rng.Int63n(int64(stagger) + 1))
		e.After(delay, func(e *sim.Engine, _ *sim.Core) {
			g.open(e)
		})
	}
}

// BeginMeasure starts latency recording at the given virtual time.
func (g *Gen) BeginMeasure(at sim.Time) { g.measureFrom = at }

func (g *Gen) scheduleArrival(e *sim.Engine) {
	gap := e.CyclesOf(1 / g.cfg.OpenRate)
	// Uniform jitter around the mean arrival gap.
	jit := sim.Time(1)
	if gap > 1 {
		jit = sim.Time(g.rng.Int63n(int64(gap)))
	}
	e.After(gap/2+jit, func(e *sim.Engine, _ *sim.Core) {
		g.open(e)
		g.scheduleArrival(e)
	})
}

// open starts one connection: SYN now (with retransmission), timeout
// armed.
func (g *Gen) open(e *sim.Engine) {
	g.nextPort++
	g.nextIP++
	key := core.FlowKey{
		Proto:   6,
		SrcIP:   0x0a000000 + g.nextIP%1600, // 25 machines x 64 slots
		DstIP:   0x0a00ffff,
		SrcPort: uint16(g.nextPort),
		DstPort: 80,
	}
	cc := &clientConn{start: e.Now(), reqsLeft: g.cfg.Pattern.TotalRequests()}
	cc.conn = g.s.NewConn(key, cc)
	g.sendRetrying(e, cc, func(e *sim.Engine) {
		g.s.ClientSend(e, cc.conn, tcp.PktSYN, g.s.Cfg.Costs.AckBytes, 0, 0)
	}, 0)
	e.After(g.cfg.Timeout, func(e *sim.Engine, _ *sim.Core) {
		g.timeout(e, cc)
	})
}

// rto is TCP's retransmission timeout schedule (200 ms, doubling).
func (g *Gen) rto(attempt int) sim.Cycles {
	d := g.s.Eng.Millis(200)
	return d << uint(attempt)
}

const maxRetransmits = 6

// sendRetrying sends via the provided closure and re-sends it whenever
// no packet has been received since, on TCP's backoff schedule. The
// overall 10 s client timeout bounds the retries.
func (g *Gen) sendRetrying(e *sim.Engine, cc *clientConn, send func(e *sim.Engine), attempt int) {
	send(e)
	if attempt >= maxRetransmits {
		return
	}
	snapshot := cc.progress
	e.After(g.rto(attempt), func(e *sim.Engine, _ *sim.Core) {
		if cc.done || cc.progress != snapshot {
			return
		}
		g.Retransmits++
		g.sendRetrying(e, cc, send, attempt+1)
	})
}

func (g *Gen) timeout(e *sim.Engine, cc *clientConn) {
	if cc.done {
		return
	}
	cc.done = true
	g.TimedOut++
	g.s.ClientAbort(e, cc.conn)
	if e.Now() >= g.measureFrom {
		g.Latencies.Observe(e.Seconds(g.cfg.Timeout))
	}
	g.replace(e)
}

// replace sustains closed-loop concurrency.
func (g *Gen) replace(e *sim.Engine) {
	if g.cfg.OpenRate > 0 {
		return
	}
	g.open(e)
}

// sendReq issues the next request on a connection, with retransmission.
func (g *Gen) sendReq(e *sim.Engine, cc *clientConn) {
	respBytes := g.files[g.rng.Intn(len(g.files))]
	cc.awaiting = true
	cc.lastResp = respBytes
	cc.reqSeq++
	seq := cc.reqSeq
	g.sendRetrying(e, cc, func(e *sim.Engine) {
		g.s.ClientSend(e, cc.conn, tcp.PktREQ, g.s.Cfg.Costs.ReqBytes, cc.lastResp, seq)
	}, 0)
}

// deliver handles server-to-client packets.
func (g *Gen) deliver(e *sim.Engine, conn *tcp.Conn, kind uint8, bytes int) {
	cc, _ := conn.ClientData.(*clientConn)
	if cc == nil || cc.done {
		return
	}
	cc.progress++
	switch kind {
	case tcp.PktRST:
		// Refused: give up this connection and retry as a fresh one
		// after a SYN-retry-scale backoff, as a real client would.
		cc.done = true
		g.Refused++
		e.After(g.s.Eng.Millis(1000), func(e *sim.Engine, _ *sim.Core) {
			g.replace(e)
		})
	case tcp.PktSYNACK:
		if cc.awaiting || cc.group > 0 || cc.inGroup > 0 {
			return // duplicate SYN-ACK from a retransmitted SYN
		}
		g.s.ClientSend(e, conn, tcp.PktACK3, g.s.Cfg.Costs.AckBytes, 0, 0)
		cc.group = 0
		cc.inGroup = 0
		g.sendReq(e, cc)
	case tcp.PktRESP:
		if !cc.awaiting {
			return // duplicate response from a retransmitted request
		}
		cc.awaiting = false
		cc.inGroup++
		cc.reqsLeft--
		if cc.reqsLeft <= 0 {
			// All requests served: close gracefully and record latency.
			cc.done = true
			g.Completed++
			g.s.ClientSend(e, conn, tcp.PktFIN, g.s.Cfg.Costs.AckBytes, 0, 0)
			if e.Now() >= g.measureFrom {
				g.Latencies.Observe(e.Seconds(e.Now() - cc.start))
			}
			g.replace(e)
			return
		}
		if cc.inGroup >= g.cfg.Pattern.Groups[cc.group] {
			// Group done: delayed ack now, next group after think time.
			cc.group++
			cc.inGroup = 0
			e.After(g.cfg.DelayedAck, func(e *sim.Engine, _ *sim.Core) {
				if !cc.done {
					g.s.ClientSend(e, conn, tcp.PktACKData, g.s.Cfg.Costs.AckBytes, 0, 0)
				}
			})
			e.After(g.cfg.Pattern.Think, func(e *sim.Engine, _ *sim.Core) {
				if !cc.done {
					g.sendReq(e, cc)
				}
			})
			return
		}
		g.sendReq(e, cc)
	}
}
