package workload

import (
	"testing"

	"affinityaccept/internal/app"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/tcp"
)

func testStack(t *testing.T, cores int) *tcp.Stack {
	t.Helper()
	s := tcp.NewStack(tcp.Config{
		Machine: mem.AMD48().WithCores(cores),
		Listen:  tcp.AffinityAccept,
		Seed:    3,
	})
	app.NewLighttpd(s)
	return s
}

func TestGroupsFor(t *testing.T) {
	cases := map[int][]int{
		6:  {1, 2, 3},
		1:  {1},
		2:  {1, 1},
		0:  {1},
		10: {1, 2, 3, 1, 2, 1},
	}
	for n, want := range cases {
		got := GroupsFor(n)
		sum := 0
		for _, g := range got {
			sum += g
		}
		wantSum := n
		if wantSum <= 0 {
			wantSum = 1
		}
		if sum != wantSum {
			t.Fatalf("GroupsFor(%d) sums to %d", n, sum)
		}
		if n == 6 && len(got) != len(want) {
			t.Fatalf("GroupsFor(6) = %v", got)
		}
	}
}

func TestPatternTotal(t *testing.T) {
	p := Pattern{Groups: []int{1, 2, 3}}
	if p.TotalRequests() != 6 {
		t.Fatal("total wrong")
	}
}

func TestFileMixShape(t *testing.T) {
	s := testStack(t, 2)
	g := New(Config{Stack: s, Connections: 1, Seed: 9})
	mean := g.MeanFileSize()
	if mean < 500 || mean > 900 {
		t.Fatalf("mean file size %v, want ~700", mean)
	}
	// Files bounded like the paper's 30..5670 mix.
	for _, f := range g.files {
		if f < 30 || f > 5670 {
			t.Fatalf("file size %d out of bounds", f)
		}
	}
}

func TestFileMixScalesWithConfig(t *testing.T) {
	s := testStack(t, 2)
	g := New(Config{Stack: s, Connections: 1, MeanFileBytes: 3000, Seed: 9})
	mean := g.MeanFileSize()
	if mean < 2200 || mean > 3800 {
		t.Fatalf("scaled mean %v, want ~3000", mean)
	}
}

func TestClosedLoopServesRequests(t *testing.T) {
	s := testStack(t, 2)
	g := New(Config{Stack: s, Connections: 8, Seed: 4})
	s.Start()
	g.Start()
	s.Eng.Run(s.Eng.CyclesOf(1.0))
	if s.Stats.Requests == 0 {
		t.Fatal("no requests served")
	}
	if g.Completed == 0 {
		t.Fatal("no connections completed")
	}
	// Closed loop: finished connections are replaced.
	if s.Stats.ConnsAccepted <= uint64(8) {
		t.Fatalf("accepted only %d conns; replacements missing", s.Stats.ConnsAccepted)
	}
	// 6 requests per connection.
	if ratio := float64(s.Stats.Requests) / float64(g.Completed); ratio < 5.5 || ratio > 7 {
		t.Fatalf("requests per completed conn = %.1f, want ~6", ratio)
	}
}

func TestOpenLoopArrivalRate(t *testing.T) {
	s := testStack(t, 2)
	g := New(Config{Stack: s, OpenRate: 500, Seed: 4})
	s.Start()
	g.Start()
	s.Eng.Run(s.Eng.CyclesOf(1.0))
	acc := float64(s.Stats.ConnsAccepted)
	if acc < 300 || acc > 700 {
		t.Fatalf("open-loop accepted %v conns in 1s at rate 500", acc)
	}
}

func TestLatencyRecordingRespectsMeasureWindow(t *testing.T) {
	s := testStack(t, 2)
	g := New(Config{Stack: s, Connections: 4, Seed: 4})
	s.Start()
	g.Start()
	warm := s.Eng.CyclesOf(0.5)
	s.Eng.Run(warm)
	g.BeginMeasure(warm)
	before := g.Latencies.Count()
	if before != 0 {
		t.Fatalf("latencies recorded before measurement window: %d", before)
	}
	s.Eng.Run(s.Eng.CyclesOf(1.2))
	if g.Latencies.Count() == 0 {
		t.Fatal("no latencies recorded in window")
	}
	// The paper's baseline: ~200ms per connection (two 100ms thinks).
	med := g.Latencies.Quantile(0.5)
	if med < 0.2 || med > 0.3 {
		t.Fatalf("median connection time %.3fs, want ~0.2s", med)
	}
}

func TestTimeoutAbandonsStuckConnections(t *testing.T) {
	s := testStack(t, 2)
	// Tiny backlog and silent overflow: most SYNs vanish, clients must
	// give up on their own.
	s2 := tcp.NewStack(tcp.Config{
		Machine:        mem.AMD48().WithCores(1),
		Listen:         tcp.AffinityAccept,
		Backlog:        1,
		SilentOverflow: true,
		Seed:           3,
	})
	_ = s
	// No app: nothing ever accepts, queue stays full after first conn.
	noop := &noopApp{}
	s2.App = noop
	g := New(Config{Stack: s2, Connections: 4, Timeout: s2.Eng.CyclesOf(0.3), Seed: 4})
	s2.Start()
	g.Start()
	g.BeginMeasure(0)
	s2.Eng.Run(s2.Eng.CyclesOf(1.5))
	if g.TimedOut == 0 {
		t.Fatal("no clients timed out")
	}
	if g.Latencies.Count() == 0 || g.Latencies.Quantile(0.5) < 0.29 {
		t.Fatalf("timeouts not recorded as latency: %v", g.Latencies.Quantile(0.5))
	}
}

type noopApp struct{}

func (noopApp) ConnReady(*tcp.K, int)            {}
func (noopApp) ConnReadable(*tcp.K, *tcp.Conn)   {}
func (noopApp) ConnClosed(k *tcp.K, c *tcp.Conn) {}

func TestRetransmitRecoversFromRingDrop(t *testing.T) {
	// A 1-core stack with a tiny NIC ring: the initial burst overflows
	// the ring, and only client retransmissions let everything finish.
	s := tcp.NewStack(tcp.Config{
		Machine: mem.AMD48().WithCores(1),
		Listen:  tcp.AffinityAccept,
		Seed:    3,
	})
	app.NewLighttpd(s)
	g := New(Config{Stack: s, Connections: 64, Seed: 4})
	s.Start()
	g.Start()
	s.Eng.Run(s.Eng.CyclesOf(2.0))
	if g.Completed == 0 {
		t.Fatal("nothing completed")
	}
	t.Logf("retransmits=%d completed=%d", g.Retransmits, g.Completed)
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		s := testStack(t, 2)
		g := New(Config{Stack: s, Connections: 8, Seed: 11})
		s.Start()
		g.Start()
		s.Eng.Run(s.Eng.CyclesOf(0.6))
		return s.Stats.Requests
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced %d then %d requests", a, b)
	}
}
