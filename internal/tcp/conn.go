package tcp

import (
	"affinityaccept/internal/core"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/sim"
)

// ConnState tracks a server-side connection through its life.
type ConnState int

const (
	StateNew      ConnState = iota // created client-side, SYN not yet processed
	StateSynRcvd                   // request sock exists, SYN-ACK sent
	StateQueued                    // handshake done, waiting in an accept queue
	StateAccepted                  // owned by an application thread
	StateClosed
)

// PendingReq is one HTTP request queued on a connection awaiting read().
type PendingReq struct {
	ReqBytes  int
	RespBytes int
	skb       *mem.Object
}

// Conn is the server-side state of one TCP connection: the coherence
// shadows of its kernel objects plus simulation bookkeeping.
type Conn struct {
	Key   core.FlowKey
	State ConnState

	// SoftirqCore is where the NIC currently delivers this flow's
	// packets (its flow group's ring). Updated on flow-group migration.
	SoftirqCore int
	// AppCore is the core whose application thread accepted the
	// connection (-1 until accepted). Equal to SoftirqCore under
	// Affinity-Accept in the steady state; that equality is the paper.
	AppCore int

	sock    *mem.Object // tcp_sock (allocated at ACK3 on the softirq core)
	reqSock *mem.Object // tcp_request_sock between SYN and accept
	fd      *mem.Object // socket_fd, allocated at accept on the app core
	wqMeta  *mem.Object // slab:size-1024 write-queue bookkeeping
	sk192   *mem.Object // slab:size-192 sock_alloc glue

	// rxPending holds requests delivered but not yet read().
	rxPending []PendingReq
	// txInflight holds response skbs awaiting client acknowledgment.
	txInflight []*mem.Object

	// twentyCount counts transmitted packets for the Twenty-Policy
	// driver's every-20th FDir update.
	twentyCount int

	// reqTableCore records which core's request table holds the request
	// socket (meaningful in the per-core request-table ablation).
	reqTableCore int

	// rcvdSeq is the highest request serial received; retransmitted
	// segments at or below it are discarded, as TCP sequence numbers
	// would arrange.
	rcvdSeq uint32

	// rfsCore is the software-RFS steering entry: the core that last
	// called sendmsg() on this connection (-1 until trained).
	rfsCore int

	// reqsServed counts completed requests on this connection.
	reqsServed int

	// peerClosed is set when the client's FIN (or abort) arrives.
	peerClosed bool
	aborted    bool

	// AppData is the owning application's per-connection state.
	AppData interface{}
	// ClientData is the workload generator's per-connection state.
	ClientData interface{}

	// estabBucket caches the established-table bucket index.
	estabBucket uint32

	acceptedAt sim.Time
}

// ReqsServed reports completed requests.
func (c *Conn) ReqsServed() int { return c.reqsServed }

// Readable reports whether read() would return data.
func (c *Conn) Readable() bool { return len(c.rxPending) > 0 }

// PeerClosed reports whether the client has closed or aborted.
func (c *Conn) PeerClosed() bool { return c.peerClosed }

// Aborted reports whether the client abandoned the connection.
func (c *Conn) Aborted() bool { return c.aborted }

// Local reports whether the connection is currently being processed on
// the same core that receives its packets — the paper's definition of
// connection affinity.
func (c *Conn) Local() bool { return c.AppCore == c.SoftirqCore }

// Packet kinds on the simulated wire.
const (
	PktSYN uint8 = iota
	PktSYNACK
	PktACK3    // final handshake ack (client -> server)
	PktREQ     // HTTP request, also acks outstanding data
	PktRESP    // HTTP response (server -> client)
	PktACKData // standalone client ack of response data
	PktFIN     // client close (or abort)
	PktRST     // server refused/aborted the connection (overflow)
)
