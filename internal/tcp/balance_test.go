package tcp

import (
	"testing"

	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/sim"
)

// TestMigrationMovesFlowGroupsAwayFromStarvedCore drives an end-to-end
// imbalance: core 1 has almost no CPU for user work, its accept queue
// backs up, core 0 steals, and the periodic balancer re-points core 1's
// flow groups at core 0.
func TestMigrationMovesFlowGroupsAwayFromStarvedCore(t *testing.T) {
	s := NewStack(Config{
		Machine:    mem.AMD48().WithCores(2),
		Listen:     AffinityAccept,
		FlowGroups: 16,
		Backlog:    16,
		Seed:       9,
	})
	s.Cfg.MigrateEvery = s.Eng.Millis(5)
	s.Eng.Cores[1].UserShare = 0.02

	// A minimal app: every readiness signal wakes bounded, share-paced
	// accept turns on both cores (mirroring how the real app models
	// wake local waiters and non-busy remotes).
	drain := func(e *sim.Engine, c *sim.Core) {
		start := c.Now()
		for i := 0; i < 2; i++ {
			if conn := s.Accept(c); conn == nil {
				break
			}
		}
		c.DeferUser(start)
	}
	s.App = &funcApp{
		ready: func(k *K, coreID int) {
			for target := 0; target < 2; target++ {
				at := k.Core().Now()
				if el := k.Engine().Cores[target].UserEligibleAt(); el > at {
					at = el
				}
				k.Engine().OnCore(target, at, drain)
			}
		},
	}

	groupsBefore := s.FlowTable().GroupCount()[1]
	s.Start()
	// Stream connections into core 1's flow groups.
	port := uint16(1)
	var tick func(e *sim.Engine, _ *sim.Core)
	tick = func(e *sim.Engine, _ *sim.Core) {
		if s.FlowTable().GroupCount()[1] == 0 {
			// Migration already drained the starved core completely.
			return
		}
		for i := 0; i < 4; i++ {
			tries := 0
			for s.FlowTable().CoreForPort(port) != 1 {
				port++
				if tries++; tries > 1<<17 {
					return
				}
			}
			key := keyForCore(s, 1)
			key.SrcPort = port
			port++
			conn := s.NewConn(key, nil)
			s.ClientSend(e, conn, PktSYN, 66, 0, 0)
			// Complete the handshake shortly after.
			e.After(s.Eng.Millis(1), func(e *sim.Engine, _ *sim.Core) {
				if conn.State == StateSynRcvd {
					s.ClientSend(e, conn, PktACK3, 66, 0, 0)
				}
			})
		}
		e.After(s.Eng.Millis(2), tick)
	}
	s.Eng.After(0, tick)
	s.Deliver = func(*sim.Engine, *Conn, uint8, int) {}
	s.Eng.Run(s.Eng.CyclesOf(0.3))

	groupsAfter := s.FlowTable().GroupCount()[1]
	if s.Queues().Steals == 0 {
		t.Fatal("no stealing despite starved core")
	}
	if s.Stats.FDirMigrations == 0 {
		t.Fatal("no flow-group migrations")
	}
	if groupsAfter >= groupsBefore {
		t.Fatalf("groups on starved core went %d -> %d, want fewer", groupsBefore, groupsAfter)
	}
}

// funcApp adapts plain functions to the App interface.
type funcApp struct {
	ready func(k *K, coreID int)
}

func (f *funcApp) ConnReady(k *K, coreID int) {
	if f.ready != nil {
		f.ready(k, coreID)
	}
}
func (f *funcApp) ConnReadable(*K, *Conn) {}
func (f *funcApp) ConnClosed(*K, *Conn)   {}

// TestSoftwareRFSRoutesToSendmsgCore checks the §7.2 extension: after a
// sendmsg on one core, subsequent packets for the flow are processed
// there, with the packet buffer homed on the routing core.
func TestSoftwareRFSRoutesToSendmsgCore(t *testing.T) {
	s := NewStack(Config{
		Machine:     mem.AMD48().WithCores(4),
		Listen:      StockAccept,
		SoftwareRFS: true,
		Seed:        9,
	})
	s.App = &funcApp{}
	conn := handshake(t, s, 1) // packets land on core 1
	var accepted *Conn
	s.Eng.OnCore(3, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		accepted = s.Accept(c)
	})
	runFor(s, 0.01)
	if accepted == nil {
		t.Fatal("accept failed")
	}
	// Train the steering table: sendmsg from core 3.
	s.Eng.OnCore(3, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		s.Writev(c, conn, 100)
	})
	runFor(s, 0.01)

	// The next request is received on core 1 but must be processed on
	// core 3 via the software routing step.
	s.ClientSend(s.Eng, conn, PktREQ, 400, 500, 1)
	runFor(s, 0.01)
	if s.Stats.RFSRouted == 0 {
		t.Fatal("packet was not software-routed")
	}
	if conn.SoftirqCore != 3 {
		t.Fatalf("protocol processing ran on core %d, want 3", conn.SoftirqCore)
	}
	if !conn.Readable() {
		t.Fatal("request lost in routing")
	}
}

// TestNICModePerFlowFallsBackToRSS: without a trained FDir entry,
// per-flow mode spreads by RSS over at most 16 rings.
func TestNICModePerFlowFallsBackToRSS(t *testing.T) {
	s := NewStack(Config{
		Machine: mem.AMD48().WithCores(24),
		Listen:  StockAccept,
		NICMode: nic.ModePerFlowFDir,
		Seed:    9,
	})
	s.App = &funcApp{}
	s.Deliver = func(*sim.Engine, *Conn, uint8, int) {}
	seen := map[int]bool{}
	for p := 1; p < 200; p++ {
		key := keyForCore(s, 0)
		key.SrcPort = uint16(p * 97)
		conn := s.NewConn(key, nil)
		s.ClientSend(s.Eng, conn, PktSYN, 66, 0, 0)
		runFor(s, 0.0005)
		if conn.SoftirqCore >= 0 {
			seen[conn.SoftirqCore] = true
		}
	}
	for c := range seen {
		if c >= 16 {
			t.Fatalf("RSS fallback delivered to ring %d (>15)", c)
		}
	}
	if len(seen) < 4 {
		t.Fatalf("RSS fallback used only %d rings", len(seen))
	}
}
