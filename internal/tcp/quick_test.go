package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"affinityaccept/internal/core"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/sim"
)

// TestRandomTrafficInvariants drives the stack with arbitrary interleaved
// client behaviour — SYNs, handshake acks, requests, retransmissions,
// FINs and aborts in random order across random cores — under an app
// that accepts and serves sporadically, and checks global invariants.
func TestRandomTrafficInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, kind := range []ListenKind{StockAccept, FineAccept, AffinityAccept} {
			if !randomTrafficRun(t, rng, kind) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func randomTrafficRun(t *testing.T, rng *rand.Rand, kind ListenKind) bool {
	s := NewStack(Config{
		Machine: mem.AMD48().WithCores(4),
		Listen:  kind,
		Backlog: 16,
		Seed:    rng.Int63(),
	})
	// A lazy app: accepts and serves on random wakeups only.
	s.App = &funcApp{ready: func(k *K, coreID int) {
		target := coreID
		if target < 0 {
			target = k.Core().ID
		}
		k.Engine().OnCore(target, k.Core().Now(), func(e *sim.Engine, c *sim.Core) {
			for {
				conn := s.Accept(c)
				if conn == nil {
					return
				}
				for {
					req, ok := s.Read(c, conn)
					if !ok {
						break
					}
					s.Writev(c, conn, req.RespBytes)
				}
			}
		})
	}}
	s.Deliver = func(*sim.Engine, *Conn, uint8, int) {}
	s.Start()

	conns := make([]*Conn, 0, 32)
	for step := 0; step < 300; step++ {
		switch op := rng.Intn(10); {
		case op < 3 || len(conns) == 0: // new SYN
			key := core.FlowKey{
				Proto:   6,
				SrcIP:   rng.Uint32(),
				DstIP:   1,
				SrcPort: uint16(rng.Intn(65535) + 1),
				DstPort: 80,
			}
			c := s.NewConn(key, nil)
			conns = append(conns, c)
			s.ClientSend(s.Eng, c, PktSYN, 66, 0, 0)
		default:
			c := conns[rng.Intn(len(conns))]
			switch rng.Intn(5) {
			case 0:
				s.ClientSend(s.Eng, c, PktACK3, 66, 0, 0)
			case 1:
				s.ClientSend(s.Eng, c, PktREQ, 400, rng.Intn(3000)+30, rng.Intn(4)+1)
			case 2:
				s.ClientSend(s.Eng, c, PktACKData, 66, 0, 0)
			case 3:
				s.ClientSend(s.Eng, c, PktFIN, 66, 0, 0)
			case 4:
				s.ClientAbort(s.Eng, c)
			}
		}
		s.Eng.Run(s.Eng.Now() + s.Eng.Micros(200))
	}
	// Let everything settle, then close whatever the app still owns.
	s.Eng.Run(s.Eng.Now() + s.Eng.CyclesOf(0.05))
	for _, c := range conns {
		if c.State == StateAccepted {
			conn := c
			s.Eng.OnCore(conn.AppCore, s.Eng.Now(), func(e *sim.Engine, cc *sim.Core) {
				if conn.State == StateAccepted {
					s.CloseConn(cc, conn)
				}
			})
		}
	}
	s.Eng.Run(s.Eng.Now() + s.Eng.CyclesOf(0.05))

	// Invariants.
	st := s.Stats
	if st.ConnsAccepted > uint64(len(conns)) {
		t.Logf("%v: accepted %d > created %d", kind, st.ConnsAccepted, len(conns))
		return false
	}
	for _, c := range conns {
		switch c.State {
		case StateClosed, StateNew, StateSynRcvd, StateQueued, StateAccepted:
		default:
			t.Logf("%v: invalid state %v", kind, c.State)
			return false
		}
		if c.State == StateClosed && (c.sock != nil || c.fd != nil || c.reqSock != nil) {
			t.Logf("%v: closed conn retains kernel objects", kind)
			return false
		}
	}
	// Accept-queue accounting: nothing left queued should exceed bounds.
	q := s.Queues()
	for coreID := 0; coreID < 4; coreID++ {
		if q.Len(coreID) > q.MaxLocalLen() {
			t.Logf("%v: queue %d over capacity", kind, coreID)
			return false
		}
	}
	// The allocator balances except for per-stack global objects and
	// state still held by live connections.
	live := s.LiveConns()
	if st.ConnsClosed+uint64(len(live)) < uint64(len(conns))/2 {
		t.Logf("%v: connections unaccounted: closed=%d live=%d created=%d",
			kind, st.ConnsClosed, len(live), len(conns))
		return false
	}
	return true
}
