package tcp

import (
	"affinityaccept/internal/locks"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/sim"
)

// reqTable is a listen socket's request hash table (SYN-received
// connections). Affinity-Accept keeps a single table shared by all
// clones, guarded by per-bucket locks (§5.2); the per-core variant
// exists for the ablation that measured the shared design's ≤2% cost.
type reqTable struct {
	buckets [][]*Conn
	locksB  *locks.BucketLocks
	obj     *mem.Object // bucket-head cache lines
	nlines  int
}

func newReqTable(m *mem.Model, nBuckets, homeCore int, name string) *reqTable {
	if nBuckets < 8 {
		nBuckets = 8
	}
	obj, _ := m.Alloc(homeCore, TypeReqHash)
	return &reqTable{
		buckets: make([][]*Conn, nBuckets),
		locksB:  locks.NewBucketLocks(name, nBuckets),
		obj:     obj,
		nlines:  reqhashLines,
	}
}

func (t *reqTable) setOverhead(ov sim.Cycles) { t.locksB.SetOverhead(ov) }

func (t *reqTable) bucket(h uint32) int { return int(h) % len(t.buckets) }

// headField maps a bucket to the cache line holding its head pointer.
func (t *reqTable) headField(b int) mem.FieldID {
	return mem.FieldID((b / 8) % t.nlines)
}

// insert adds a request socket under the bucket lock. When lockHeld is
// true the caller already serializes (Stock-Accept's socket lock).
func (t *reqTable) insert(k *K, conn *Conn, lockHeld bool) {
	b := t.bucket(conn.Key.Hash())
	do := func() {
		k.Touch(t.obj, t.headField(b), true)
		k.Touch(conn.reqSock, 0, true) // hash_chain
		t.buckets[b] = append(t.buckets[b], conn)
	}
	if lockHeld {
		do()
		return
	}
	t.locksB.Bucket(uint64(b)).With(k.c, false, do)
}

// lookupRemove finds and unlinks a request socket; it reports whether
// the connection was present.
func (t *reqTable) lookupRemove(k *K, conn *Conn, lockHeld bool) bool {
	b := t.bucket(conn.Key.Hash())
	found := false
	do := func() {
		k.Touch(t.obj, t.headField(b), false)
		lst := t.buckets[b]
		for i, c := range lst {
			// Walking the chain reads each entry's chain pointers.
			k.Touch(c.reqSock, 0, false)
			if c == conn {
				lst[i] = lst[len(lst)-1]
				t.buckets[b] = lst[:len(lst)-1]
				k.Touch(t.obj, t.headField(b), true)
				found = true
				break
			}
		}
	}
	if lockHeld {
		do()
		return found
	}
	t.locksB.Bucket(uint64(b)).With(k.c, false, do)
	return found
}

func (t *reqTable) lockStats() locks.Stats { return t.locksB.Stats() }

// estabTable is the kernel's global established-connection hash table:
// fine-grained bucket locks, chains of tcp_socks linked through their
// chain-pointer fields. Chain walks by other cores are the residual
// sharing Affinity-Accept cannot remove (§6.4: "the kernel adds
// tcp_sock objects to global lists").
type estabTable struct {
	buckets [][]*Conn
	locksB  *locks.BucketLocks
	obj     *mem.Object
}

func newEstabTable(m *mem.Model, nBuckets int) *estabTable {
	obj, _ := m.Alloc(0, TypeEhash)
	return &estabTable{
		buckets: make([][]*Conn, nBuckets),
		locksB:  locks.NewBucketLocks("ehash", nBuckets),
		obj:     obj,
	}
}

func (t *estabTable) bucket(h uint32) int { return int(h) % len(t.buckets) }

func (t *estabTable) headField(b int) mem.FieldID {
	return mem.FieldID((b / 8) % ehashLines)
}

const chainWalkLimit = 3

func (t *estabTable) insert(k *K, conn *Conn) {
	b := t.bucket(conn.Key.Hash())
	conn.estabBucket = uint32(b)
	t.locksB.Bucket(uint64(b)).With(k.c, false, func() {
		k.Touch(t.obj, t.headField(b), true)
		k.Touch(conn.sock, sockChain, true)
		t.buckets[b] = append(t.buckets[b], conn)
	})
}

// lookup walks the bucket chain to the connection, touching the chain
// pointers of the entries passed over.
func (t *estabTable) lookup(k *K, conn *Conn) {
	b := int(conn.estabBucket)
	k.Touch(t.obj, t.headField(b), false)
	walked := 0
	for _, c := range t.buckets[b] {
		if walked >= chainWalkLimit {
			break
		}
		k.Touch(c.sock, sockChain, false)
		walked++
		if c == conn {
			break
		}
	}
}

func (t *estabTable) remove(k *K, conn *Conn) {
	b := int(conn.estabBucket)
	t.locksB.Bucket(uint64(b)).With(k.c, false, func() {
		k.Touch(t.obj, t.headField(b), true)
		k.Touch(conn.sock, sockChain, true)
		lst := t.buckets[b]
		for i, c := range lst {
			if c == conn {
				lst[i] = lst[len(lst)-1]
				t.buckets[b] = lst[:len(lst)-1]
				break
			}
		}
	})
}

func (t *estabTable) setOverhead(ov sim.Cycles) { t.locksB.SetOverhead(ov) }

func (t *estabTable) lockStats() locks.Stats { return t.locksB.Stats() }
