// Package tcp simulates the Linux TCP stack of the paper: listen
// sockets in the three designs under study (Stock-, Fine- and
// Affinity-Accept, §3 and §5), the request hash table (§5.2), the
// established-connection hash table, per-connection sockets with a
// cache-line-accurate field layout (§2.1), skbuffs drawn from per-core
// slabs, and the kernel entry points whose costs Table 3 reports.
//
// The stack runs inside the discrete-event engine: softirq work executes
// on the core owning the RX DMA ring that received the packet, and
// system calls execute on the core running the application, exactly the
// split whose cache consequences the paper measures.
package tcp

import "affinityaccept/internal/mem"

// Kernel object layouts. Sizes are the paper's Table 4 sizes. Fields
// mark the byte ranges the simulated kernel operations touch; hot fields
// that both the softirq side and the application side touch are
// scattered across the structure, as DProf observed ("these shared bytes
// are not packed into a few cache lines but spread across the data
// structure").
var (
	// TypeTCPSock is the established-socket structure (1664 bytes, 26
	// cache lines). The layout interleaves, per line, a hot region
	// (touched by packet processing and/or syscalls) and a cold remainder
	// so that line-level sharing exceeds byte-level sharing, as in the
	// paper (85% of lines vs 30% of bytes under Fine-Accept).
	TypeTCPSock = buildTCPSockType()

	// TypeRequestSock tracks a connection between SYN and accept().
	TypeRequestSock = mem.NewType("tcp_request_sock", 128,
		mem.Field{Name: "hash_chain", Off: 0, Len: 16},
		mem.Field{Name: "tuple", Off: 16, Len: 48},
		mem.Field{Name: "state", Off: 64, Len: 32},
		mem.Field{Name: "listener", Off: 96, Len: 32},
	)

	// TypeSKB is the packet metadata structure; its data buffer is a
	// separate slab page. Only the first half carries hot fields.
	TypeSKB = mem.NewType("sk_buff", 512,
		mem.Field{Name: "list", Off: 0, Len: 32},
		mem.Field{Name: "meta", Off: 32, Len: 64},
		mem.Field{Name: "data_ptrs", Off: 96, Len: 64},
		mem.Field{Name: "destructor", Off: 160, Len: 32},
	)

	// TypePage4K is a packet/file data page (slab:size-4096 in Table 4).
	TypePage4K = mem.NewType("slab:size-4096", 4096,
		mem.Field{Name: "head", Off: 0, Len: 64},
		mem.Field{Name: "tail", Off: 4032, Len: 64},
	)

	// TypeSockFD represents the socket-as-file-descriptor glue (socket
	// inode + private state).
	TypeSockFD = mem.NewType("socket_fd", 640,
		mem.Field{Name: "inode", Off: 0, Len: 64},
		mem.Field{Name: "wq", Off: 64, Len: 16},
		mem.Field{Name: "flags", Off: 128, Len: 64},
		mem.Field{Name: "private", Off: 192, Len: 128},
	)

	// TypeFile is the VFS file object. Only the listen socket's file is
	// tracked: it is the one whose reference count every core hammers in
	// accept(), which is why the paper sees it 100% shared under both
	// kernels. Per-connection files never leave their core and would
	// only dilute the statistic.
	TypeFile = mem.NewType("file", 192,
		mem.Field{Name: "f_count", Off: 0, Len: 16},
		mem.Field{Name: "f_op", Off: 64, Len: 32},
		mem.Field{Name: "f_flags", Off: 128, Len: 32},
	)

	// TypeTaskStruct is the scheduler's per-thread structure; the hot
	// prefix holds the run state and sched entity that wakeups touch.
	TypeTaskStruct = mem.NewType("task_struct", 5184,
		mem.Field{Name: "state", Off: 0, Len: 16},
		mem.Field{Name: "sched_entity", Off: 64, Len: 96},
		mem.Field{Name: "flags", Off: 192, Len: 32},
	)

	// TypeThreadStack is the 16 KB kernel stack (slab:size-16384); the
	// thread_info at its base is what remote wakeups read.
	TypeThreadStack = mem.NewType("slab:size-16384", 16384,
		mem.Field{Name: "thread_info", Off: 0, Len: 32},
		mem.Field{Name: "frame", Off: 64, Len: 64},
	)

	// TypeSock1K is socket write-queue bookkeeping (slab:size-1024).
	TypeSock1K = mem.NewType("slab:size-1024", 1024,
		mem.Field{Name: "wq_head", Off: 0, Len: 32},
		mem.Field{Name: "accounting", Off: 64, Len: 32},
		mem.Field{Name: "cold", Off: 128, Len: 256},
	)

	// TypePollEntry is a poll/epoll wait entry (slab:size-128).
	TypePollEntry = mem.NewType("slab:size-128", 128,
		mem.Field{Name: "wait", Off: 0, Len: 32},
		mem.Field{Name: "link", Off: 64, Len: 32},
	)

	// TypeSock192 is the sock_alloc inode glue (slab:size-192).
	TypeSock192 = mem.NewType("slab:size-192", 192,
		mem.Field{Name: "head", Off: 0, Len: 32},
		mem.Field{Name: "body", Off: 64, Len: 64},
	)

	// TypeRunqueue is one core's scheduler runqueue header; remote
	// wakeups write it.
	TypeRunqueue = mem.NewType("runqueue", 64,
		mem.Field{Name: "head", Off: 0, Len: 64},
	)

	// TypeEhash is the global established-connection hash table's bucket
	// head array region (one object models a window of buckets; each
	// field is one line of 8 bucket heads).
	TypeEhash = buildBucketArrayType("ehash", ehashLines)

	// TypeReqHash is the listen socket's request hash table bucket
	// array; shared by all clones under Affinity-Accept (§5.2).
	TypeReqHash = buildBucketArrayType("reqhash", reqhashLines)

	// TypeAcceptCursor is the shared round-robin cursor Fine-Accept uses
	// to pick the next clone queue in accept().
	TypeAcceptCursor = mem.NewType("accept_cursor", 64,
		mem.Field{Name: "cursor", Off: 0, Len: 64},
	)

	// TypeCloneQueue is one per-core accept-queue head (a clone of the
	// listen socket's queue state). Local in Affinity-Accept; bounced by
	// round-robin accept in Fine-Accept and by stealing.
	TypeCloneQueue = mem.NewType("clone_queue", 192,
		mem.Field{Name: "head", Off: 0, Len: 32},
		mem.Field{Name: "len", Off: 64, Len: 16},
		mem.Field{Name: "waiters", Off: 128, Len: 32},
	)
)

const (
	ehashLines   = 512 // 512 lines x 8 buckets/line = 4096 modeled bucket heads
	reqhashLines = 256
)

// TrackedTypes lists the kernel object types DProf reports on.
func TrackedTypes() []*mem.TypeInfo {
	return []*mem.TypeInfo{
		TypeTCPSock, TypeSKB, TypeRequestSock, TypeThreadStack,
		TypePollEntry, TypeSock1K, TypePage4K, TypeSockFD,
		TypeSock192, TypeTaskStruct, TypeFile,
	}
}

// tcpSockHotFields and friends index TypeTCPSock's generated fields.
// The generator interleaves per line i: hot_i (16 bytes) + cold_i, with
// dedicated named regions for the handshake-initialized block and the
// established-hash chain pointers.
var (
	sockHot       []mem.FieldID // one hot field per interleaved line
	sockCold      []mem.FieldID
	sockInitBlock mem.FieldID // written at creation, read by both sides
	sockChain     mem.FieldID // ehash chain pointers, read by bucket walks
)

func buildTCPSockType() *mem.TypeInfo {
	const (
		size  = 1664
		lines = size / mem.CacheLineSize // 26
		// hotLines carry a 16-byte field touched by both the softirq and
		// the syscall side of a connection. 20 hot + chain + 2 init
		// lines = 23 of 26 lines potentially shared under Fine-Accept.
		hotLines = 20
	)
	var fields []mem.Field
	// Lines 0..19: 16B hot + 48B cold each.
	for i := 0; i < hotLines; i++ {
		off := i * mem.CacheLineSize
		fields = append(fields,
			mem.Field{Name: hotName(i), Off: off, Len: 16},
			mem.Field{Name: coldName(i), Off: off + 16, Len: 48},
		)
	}
	// Lines 20-21: the init block (socket identity, options) written
	// once at creation and read by both sides afterwards.
	fields = append(fields, mem.Field{Name: "init_block", Off: hotLines * 64, Len: 128})
	// Line 22: established-hash chain pointers.
	fields = append(fields, mem.Field{Name: "chain", Off: (hotLines + 2) * 64, Len: 16})
	// Lines 23..25: cold application-private tail.
	fields = append(fields, mem.Field{Name: "app_tail", Off: (hotLines + 3) * 64, Len: size - (hotLines+3)*64})

	t := mem.NewType("tcp_sock", size, fields...)
	for i := 0; i < hotLines; i++ {
		h, _ := t.FieldByName(hotName(i))
		c, _ := t.FieldByName(coldName(i))
		sockHot = append(sockHot, h)
		sockCold = append(sockCold, c)
	}
	sockInitBlock, _ = t.FieldByName("init_block")
	sockChain, _ = t.FieldByName("chain")
	return t
}

func hotName(i int) string  { return "hot" + itoa2(i) }
func coldName(i int) string { return "cold" + itoa2(i) }

func itoa2(i int) string {
	return string([]byte{'0' + byte(i/10), '0' + byte(i%10)})
}

func buildBucketArrayType(name string, lines int) *mem.TypeInfo {
	fields := make([]mem.Field, lines)
	for i := range fields {
		fields[i] = mem.Field{Name: "b" + itoa3(i), Off: i * 64, Len: 64}
	}
	return mem.NewType(name, lines*64, fields...)
}

func itoa3(i int) string {
	return string([]byte{'0' + byte(i/100), '0' + byte((i/10)%10), '0' + byte(i%10)})
}

// Semantic groups of tcp_sock hot lines, so the kernel ops read like the
// operations they model. Indices into sockHot/sockCold.
const (
	hotLock    = 0 // socket spinlock word
	hotRxSeq   = 1 // rcv_nxt, copied_seq
	hotRxQueue = 2 // sk_receive_queue head
	hotTxSeq   = 3 // snd_nxt, snd_una
	hotTxQueue = 4 // retransmit queue head
	hotWmem    = 5 // sk_wmem_alloc / sndbuf accounting
	hotCong1   = 6 // congestion state
	hotCong2   = 7
	hotTimers  = 8 // retransmit / delack timers
	hotRcvBuf  = 9 // rcvbuf accounting
	// Remaining hot lines 10..19 model the long tail of flags, mibs,
	// timestamps and socket callbacks Linux touches on both sides.
	hotTailFirst = 10
	hotTailLast  = 19
)
