package tcp

import (
	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/sim"
)

// Accept implements accept() on the calling core for the configured
// listen-socket design. It returns nil when no connection is available.
// Aborted connections reaching the queue head are discarded in place.
func (s *Stack) Accept(c *sim.Core) *Conn {
	k := s.Enter(c, perfctr.SysAccept4)
	defer k.Leave()
	for {
		conn := s.acceptOne(k)
		if conn == nil {
			return nil
		}
		if conn.aborted {
			// Client gave up while queued: free and keep looking.
			s.dropEstablished(k, conn)
			continue
		}
		s.finishAccept(k, conn)
		return conn
	}
}

// acceptOne dequeues one connection according to the listen design.
func (s *Stack) acceptOne(k *K) *Conn {
	c := k.c
	cost := &s.Cfg.Costs
	k.Work(cost.Accept)

	switch s.Cfg.Listen {
	case StockAccept:
		s.listenLock.Acquire(c, true)
		at := c.Now()
		k.WorkCycles(cost.StockLockWork, uint64(cost.StockLockWork)/2)
		k.touchListenSock()
		var conn *Conn
		if len(s.stockQueue) > 0 {
			conn = s.stockQueue[0]
			copy(s.stockQueue, s.stockQueue[1:])
			s.stockQueue = s.stockQueue[:len(s.stockQueue)-1]
		}
		s.listenLock.Unlock(c, at)
		return conn

	case FineAccept:
		// Round-robin over clone queues through a shared cursor: the
		// cursor line itself bounces between every accepting core.
		// Fetch-and-add semantics spread concurrent acceptors over
		// different queues instead of converging on one.
		k.Touch(s.acceptCur, 0, true)
		start := s.fineCursor
		n := len(s.per)
		s.fineCursor = (s.fineCursor + 1) % n
		for i := 0; i < n; i++ {
			idx := (start + i) % n
			k.Touch(s.per[idx].cloneQueue, 1, false) // length peek
			if s.queues.Len(idx) == 0 {
				continue
			}
			lock := s.per[idx].cloneLock
			lock.Acquire(c, true)
			at := c.Now()
			k.Touch(s.per[idx].cloneQueue, 0, true)
			k.Touch(s.per[idx].cloneQueue, 1, true)
			conn, ok := s.queues.PopAt(idx)
			lock.Unlock(c, at)
			if ok {
				return conn
			}
		}
		return nil

	default: // AffinityAccept
		lock := s.per[c.ID].cloneLock
		lock.Acquire(c, true)
		at := c.Now()
		k.Touch(s.per[c.ID].cloneQueue, 0, true)
		k.Touch(s.per[c.ID].cloneQueue, 1, true)
		var (
			conn *Conn
			from int
			ok   bool
		)
		if s.Cfg.StealingDisabled || !s.coreHasCapacity(c.ID) {
			// Stealing disabled, or this core has no CPU to spare for
			// foreign connections: local accepts only.
			conn, ok = s.queues.PopAt(c.ID)
			from = c.ID
		} else {
			conn, from, ok = s.queues.Pop(c.ID)
		}
		lock.Unlock(c, at)
		if !ok {
			return nil
		}
		if from != c.ID {
			// Stolen: pay for the victim's queue lock and lines.
			vlock := s.per[from].cloneLock
			vlock.Acquire(c, true)
			vat := c.Now()
			k.Touch(s.per[from].cloneQueue, 0, true)
			k.Touch(s.per[from].cloneQueue, 1, true)
			vlock.Unlock(c, vat)
		}
		return conn
	}
}

// finishAccept installs the connection into the accepting process: file
// descriptor allocation, request-socket teardown, socket touches.
func (s *Stack) finishAccept(k *K, conn *Conn) {
	c := k.c
	k.ColdWalk(s.Cfg.Costs.AcceptCold)
	// Every accept bumps the listen file's reference count — the one
	// line that stays shared even under Affinity-Accept.
	k.Touch(s.listenFile, 0, true)

	// Read and free the request socket (it carried the handshake state
	// into the accept queue; Fine-Accept frees it on a remote core).
	if conn.reqSock != nil {
		k.Touch(conn.reqSock, 1, false)
		k.Touch(conn.reqSock, 2, false)
		k.Touch(conn.reqSock, 3, false)
		k.Free(conn.reqSock)
		conn.reqSock = nil
	}

	conn.fd = k.Alloc(TypeSockFD)
	k.TouchInit(conn.fd, 0)
	k.TouchInit(conn.fd, 2)
	k.Touch(conn.sock, sockInitBlock, false)
	k.Touch(conn.sock, sockHot[hotLock], true)
	k.Touch(conn.sock, sockHot[hotRcvBuf], false)

	conn.State = StateAccepted
	conn.AppCore = c.ID
	conn.acceptedAt = c.Now()
	s.Stats.ConnsAccepted++
}

// PostAcceptSetup models the fcntl(O_NONBLOCK) and getsockname() calls
// servers issue on fresh connections (Table 3's small entries).
func (s *Stack) PostAcceptSetup(c *sim.Core, conn *Conn) {
	k := s.Enter(c, perfctr.SysFcntl)
	k.Work(s.Cfg.Costs.Fcntl)
	k.Touch(conn.fd, 2, true)
	k.Leave()

	k = s.Enter(c, perfctr.SysGetsockname)
	k.Work(s.Cfg.Costs.Getsockname)
	k.Touch(conn.sock, sockInitBlock, false)
	k.Leave()
}

// Read implements read() of the next pending request. ok=false means
// the socket has no data (the caller blocks).
func (s *Stack) Read(c *sim.Core, conn *Conn) (PendingReq, bool) {
	k := s.Enter(c, perfctr.SysRead)
	defer k.Leave()
	cost := &s.Cfg.Costs
	k.Work(cost.Read)
	k.ColdWalk(cost.ReadCold)
	k.TouchRepeat(conn.sock, sockHot[hotLock], true, cost.SockTouchRepeat)
	k.TouchRepeat(conn.sock, sockHot[hotRxSeq], true, cost.SockTouchRepeat)
	k.Touch(conn.sock, sockHot[hotRxQueue], true)
	k.Touch(conn.sock, sockHot[hotRcvBuf], true)
	k.Touch(conn.sock, sockHot[hotTimers], true)
	k.Touch(conn.sock, sockHot[hotCong1], false)
	// The receive path crosses the same long tail of socket state the
	// softirq side writes, re-transferring those lines under Fine.
	for i := hotTailFirst; i <= hotTailLast-5; i++ {
		k.Touch(conn.sock, sockHot[i], true)
	}
	if len(conn.rxPending) == 0 {
		return PendingReq{}, false
	}
	req := conn.rxPending[0]
	copy(conn.rxPending, conn.rxPending[1:])
	conn.rxPending = conn.rxPending[:len(conn.rxPending)-1]

	// Copy the payload to user space and release the packet buffer —
	// on this core, which is remote from its allocator under Fine.
	k.Touch(req.skb, 1, false)
	k.Touch(req.skb, 2, false)
	k.WorkCycles(sim.Cycles(uint64(req.ReqBytes)*uint64(cost.CopyPerByteMilli)/1000),
		uint64(req.ReqBytes/16))
	k.skbFree(req.skb)
	req.skb = nil
	return req, true
}

// Writev implements writev() of one HTTP response: build and transmit
// the response segments from this core, updating the Twenty-Policy FDir
// table when that driver mode is active. It returns the time the last
// byte leaves the wire.
func (s *Stack) Writev(c *sim.Core, conn *Conn, respBytes int) sim.Time {
	k := s.Enter(c, perfctr.SysWritev)
	defer k.Leave()
	cost := &s.Cfg.Costs
	k.Work(cost.Writev)
	k.ColdWalk(cost.WritevCold)

	k.TouchRepeat(conn.sock, sockHot[hotLock], true, cost.SockTouchRepeat)
	k.TouchRepeat(conn.sock, sockHot[hotTxSeq], true, cost.SockTouchRepeat)
	k.Touch(conn.sock, sockHot[hotTxQueue], true)
	k.Touch(conn.sock, sockHot[hotWmem], true)
	k.Touch(conn.sock, sockHot[hotCong1], true)
	k.Touch(conn.sock, sockHot[hotCong2], true)
	k.Touch(conn.sock, sockHot[hotTimers], true)
	k.Touch(conn.sock, sockHot[hotRcvBuf], false)
	k.Touch(conn.wqMeta, 0, true)
	k.Touch(conn.wqMeta, 1, true)
	// Transmit also walks the socket's shared tail (sndbuf accounting,
	// timestamps, pacing state).
	for i := hotTailLast - 5; i <= hotTailLast; i++ {
		k.Touch(conn.sock, sockHot[i], true)
	}

	// Response payload pages, filled on this core.
	page := k.Alloc(TypePage4K)
	k.TouchInit(page, 0)
	k.TouchInit(page, 1)
	conn.txInflight = append(conn.txInflight, page)

	total := respBytes + cost.RespHeader
	var lastTx sim.Time
	for sent := 0; sent < total; {
		seg := total - sent
		if seg > cost.MSS {
			seg = cost.MSS
		}
		sent += seg
		skb := k.skbAlloc()
		conn.txInflight = append(conn.txInflight, skb)
		k.Work(cost.RespTx)
		k.WorkCycles(sim.Cycles(uint64(seg)*uint64(cost.CopyTxPerByteMil)/1000),
			uint64(seg/16))
		lastTx = s.NIC.Tx(c, &nic.Packet{
			Key:   conn.Key.Reverse(),
			Bytes: seg + cost.HeaderWire,
			Kind:  PktRESP,
			Conn:  conn,
		})
		s.Stats.BytesTx += uint64(seg + cost.HeaderWire)

		if s.NIC.Mode() == nic.ModePerFlowFDir {
			conn.twentyCount++
			if conn.twentyCount%s.NIC.TwentyPeriod() == 0 {
				s.NIC.FDirUpdate(s.Eng, c, conn.Key)
			}
		}
	}

	s.rfsNoteSend(k, conn)
	conn.reqsServed++
	s.Stats.Requests++
	// Locality is judged where the response is actually produced: the
	// core running this writev versus the core receiving the flow's
	// packets (an unpinned worker may run far from the accepting core).
	if c.ID == conn.SoftirqCore {
		s.Stats.RequestsLocal++
	}
	s.deliverAt(lastTx+cost.HalfRTT, conn, PktRESP, respBytes)
	return lastTx
}

// CloseConn implements the shutdown()+close() teardown servers perform
// when the client has finished.
func (s *Stack) CloseConn(c *sim.Core, conn *Conn) {
	cost := &s.Cfg.Costs

	k := s.Enter(c, perfctr.SysShutdown)
	k.Work(cost.Shutdown)
	if conn.sock != nil {
		k.Touch(conn.sock, sockHot[hotLock], true)
		k.Touch(conn.sock, sockHot[hotTxSeq], true)
	}
	k.Leave()

	k = s.Enter(c, perfctr.SysClose)
	k.Work(cost.Close)
	k.ColdWalk(cost.CloseCold)
	if conn.sock != nil {
		s.estab.remove(k, conn)
	}
	for _, r := range conn.rxPending {
		k.skbFree(r.skb)
	}
	conn.rxPending = nil
	for _, skb := range conn.txInflight {
		k.skbFree(skb)
	}
	conn.txInflight = nil
	k.Free(conn.fd)
	k.Free(conn.wqMeta)
	k.Free(conn.sk192)
	k.Free(conn.sock)
	conn.fd, conn.wqMeta, conn.sk192, conn.sock = nil, nil, nil, nil
	conn.State = StateClosed
	delete(s.liveConns, conn)
	s.Stats.ConnsClosed++
	k.Leave()

	// Socket teardown defers freeing through RCU.
	k = s.Enter(c, perfctr.SoftirqRCU)
	k.Work(cost.RCU)
	k.Leave()
}

// PollWait charges one poll() call watching nfds descriptors (the
// accept thread's wait). It touches the listen file, keeping that line
// shared across every polling core.
func (s *Stack) PollWait(c *sim.Core, nfds int) {
	k := s.Enter(c, perfctr.SysPoll)
	k.Work(s.Cfg.Costs.Poll)
	k.ColdWalk(s.Cfg.Costs.PollCold)
	for i := 0; i < nfds; i++ {
		k.Work(s.Cfg.Costs.PollPerFD)
	}
	pe := k.Alloc(TypePollEntry)
	k.TouchInit(pe, 0)
	k.Touch(s.listenFile, 0, false)
	k.Free(pe)
	k.Leave()
}

// EpollWait charges one epoll_wait() returning nReady events
// (lighttpd's event loop).
func (s *Stack) EpollWait(c *sim.Core, nReady int) {
	k := s.Enter(c, perfctr.SysEpollWait)
	k.Work(s.Cfg.Costs.Epoll)
	k.ColdWalk(s.Cfg.Costs.PollCold)
	for i := 0; i < nReady; i++ {
		k.Work(s.Cfg.Costs.PollPerFD)
	}
	k.Leave()
}

// FutexOp charges one futex system call (Apache's accept->worker
// handoff runs on futexes).
func (s *Stack) FutexOp(c *sim.Core) {
	k := s.Enter(c, perfctr.SysFutex)
	k.Work(s.Cfg.Costs.Futex)
	k.ColdWalk(s.Cfg.Costs.FutexCold)
	k.Leave()
}

// FutexWake charges a futex wake of a (possibly remote) thread.
func (s *Stack) FutexWake(c *sim.Core, t *Thread) {
	k := s.Enter(c, perfctr.SysFutex)
	k.Work(s.Cfg.Costs.Futex)
	k.ColdWalk(s.Cfg.Costs.FutexCold)
	k.WakeThread(t)
	k.Leave()
}

// Thread is a schedulable application thread's kernel-side footprint.
type Thread struct {
	Task   *mem.Object
	KStack *mem.Object
	Core   int
}

// NewThread allocates a thread's task_struct and kernel stack on a core.
func (s *Stack) NewThread(coreID int) *Thread {
	task, _ := s.Mem.Alloc(coreID, TypeTaskStruct)
	kst, _ := s.Mem.Alloc(coreID, TypeThreadStack)
	return &Thread{Task: task, KStack: kst, Core: coreID}
}

// FreeThread releases a thread's kernel objects.
func (s *Stack) FreeThread(c *sim.Core, t *Thread) {
	if t == nil {
		return
	}
	s.Mem.Free(c.ID, t.Task)
	s.Mem.Free(c.ID, t.KStack)
}

// ScheduleIn charges a context switch into the given thread on core c.
func (s *Stack) ScheduleIn(c *sim.Core, t *Thread) {
	k := s.Enter(c, perfctr.Schedule)
	k.Work(s.Cfg.Costs.Schedule)
	k.ColdWalk(s.Cfg.Costs.ScheduleCold)
	k.Touch(s.per[c.ID].runqueue, 0, true)
	if t != nil {
		k.Touch(t.Task, 0, true) // state
		k.Touch(t.Task, 1, true) // sched entity
		k.Touch(t.KStack, 0, false)
		k.Touch(t.KStack, 1, true)
	}
	k.Leave()
}

// ScheduleOut charges parking the given thread on core c.
func (s *Stack) ScheduleOut(c *sim.Core, t *Thread) {
	k := s.Enter(c, perfctr.Schedule)
	k.Work(s.Cfg.Costs.Schedule)
	k.ColdWalk(s.Cfg.Costs.ScheduleCold)
	k.Touch(s.per[c.ID].runqueue, 0, true)
	if t != nil {
		k.Touch(t.Task, 0, true)
	}
	k.Leave()
}

// WakeThread models a wakeup of a (possibly remote) parked thread from
// the current kernel context: runqueue insert plus task-state write.
func (k *K) WakeThread(t *Thread) {
	if t == nil {
		return
	}
	k.Touch(k.s.per[t.Core].runqueue, 0, true)
	k.Touch(t.Task, 0, true)
	k.Touch(t.KStack, 0, false)
	half := Op{k.s.Cfg.Costs.Schedule.Cycles / 2, k.s.Cfg.Costs.Schedule.Instr / 2}
	k.Work(half)
}

// Core returns the core this kernel context runs on.
func (k *K) Core() *sim.Core { return k.c }

// Stack returns the owning stack.
func (k *K) Stack() *Stack { return k.s }

// Engine returns the simulation engine.
func (k *K) Engine() *sim.Engine { return k.s.Eng }

// UserWork charges application-level (user-space) execution: cycles of
// compute plus cold working-set misses drawn through the local memory
// controller. It is not attributed to any kernel entry.
func (s *Stack) UserWork(c *sim.Core, cycles sim.Cycles, coldLines int) {
	c.Charge(cycles)
	s.Mem.IssueNow = c.Now()
	res := s.Mem.ColdMisses(c.ID, coldLines)
	c.Charge(res.Cycles)
}
