package tcp

import (
	"affinityaccept/internal/core"
	"affinityaccept/internal/locks"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/sim"
)

// ListenKind selects the listen-socket design under test (§6.2).
type ListenKind int

const (
	// StockAccept is unmodified Linux: one lock, one request table, one
	// accept queue per listen socket.
	StockAccept ListenKind = iota
	// FineAccept clones the listen socket per core with fine-grained
	// locks but accepts round-robin, without connection affinity.
	FineAccept
	// AffinityAccept is the paper's design: local accepts, connection
	// stealing, flow-group migration.
	AffinityAccept
)

// String names the listen kind as the paper does.
func (k ListenKind) String() string {
	switch k {
	case StockAccept:
		return "Stock-Accept"
	case FineAccept:
		return "Fine-Accept"
	default:
		return "Affinity-Accept"
	}
}

// App is the application half of the stack: web-server models implement
// it and call the Stack's syscalls back. The hooks run in softirq
// context: k identifies the interrupted core and carries the accounting
// context, so wakeup costs land in softirq_net_rx as they do in Linux.
type App interface {
	// ConnReady signals a new connection in core's accept queue; core is
	// -1 when the listen socket has no per-core association
	// (Stock-Accept and Fine-Accept wake any waiter).
	ConnReady(k *K, coreID int)
	// ConnReadable signals request data arrived on an accepted conn.
	ConnReadable(k *K, conn *Conn)
	// ConnClosed signals the peer closed or aborted an accepted conn.
	ConnClosed(k *K, conn *Conn)
}

// Delivery receives server-to-client packets at their arrival time.
type Delivery func(e *sim.Engine, conn *Conn, kind uint8, bytes int)

// Config assembles a simulated machine + kernel.
type Config struct {
	Machine mem.Machine
	Listen  ListenKind
	Costs   Costs

	// Backlog is the listen() queue bound (default 128 per core).
	Backlog int
	// StealRatio / watermarks forward to core.Config (zero = defaults).
	StealRatio      int
	HighPct, LowPct float64

	// StealingDisabled turns off connection stealing (LB experiments).
	StealingDisabled bool
	// MigrateEvery enables flow-group migration at this period (cycles);
	// zero disables it.
	MigrateEvery sim.Cycles

	// FlowGroups is the NIC steering granularity (default 4096).
	FlowGroups int
	// NICMode overrides steering (default ModeFlowGroups).
	NICMode nic.Mode
	// NICBandwidthBits overrides the port rate (default 10 Gbit).
	NICBandwidthBits uint64
	// FDirCapacity bounds the per-flow table in ModePerFlowFDir.
	FDirCapacity int

	// ReqTablePerCore selects the per-core request-table variant instead
	// of the shared bucket-locked table (§5.2 ablation).
	ReqTablePerCore bool

	// EhashBuckets sizes the established table (default 65536).
	EhashBuckets int
	// ReqHashBuckets sizes the request table (default 2048).
	ReqHashBuckets int

	// Profiling enables DProf object tracking (Table 4 / Figure 4).
	Profiling bool
	// LockStat enables lock_stat accounting overhead (Table 2).
	LockStat bool
	// SilentOverflow suppresses the reset normally sent when an accept
	// queue overflows (tcp_abort_on_overflow off, stock Linux default):
	// clients retransmit into the void until their own timeout fires,
	// which is the behaviour behind §6.5's 10-second medians.
	SilentOverflow bool
	// SoftwareRFS enables Google's Receive Flow Steering in software
	// (the paper's §7.2 comparison): packets are routed to the last
	// sendmsg() core by the receiving core, at per-packet routing cost.
	SoftwareRFS bool

	Seed int64
}

func (c *Config) fill() {
	cores := c.Machine.Cores()
	if cores == 0 {
		panic("tcp: config needs a machine")
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.Backlog == 0 {
		c.Backlog = core.DefaultBacklogPerCore * cores
	}
	if c.FlowGroups == 0 {
		c.FlowGroups = core.DefaultFlowGroups
	}
	if c.EhashBuckets == 0 {
		c.EhashBuckets = 65536
	}
	if c.ReqHashBuckets == 0 {
		c.ReqHashBuckets = 2048
	}
}

// perCore bundles one core's kernel-side state.
type perCore struct {
	cloneLock  *locks.Lock // clone listen-socket lock (Fine/Affinity)
	cloneQueue *mem.Object // accept-queue head lines
	runqueue   *mem.Object
	reqTable   *reqTable // per-core request table (ablation mode)
}

// Stats are the stack-level counters experiments sample.
type Stats struct {
	ConnsAccepted uint64
	Requests      uint64
	// RequestsLocal counts responses written on the same core that
	// receives the connection's packets — the affinity the paper is
	// after.
	RequestsLocal  uint64
	SynDrops       uint64
	AcceptDrops    uint64
	Aborts         uint64
	ConnsClosed    uint64
	BytesTx        uint64
	FDirMigrations uint64
	// RFSRouted counts packets re-dispatched by software RFS.
	RFSRouted uint64
}

// Stack is the simulated kernel instance.
type Stack struct {
	Cfg Config
	Eng *sim.Engine
	Mem *mem.Model
	NIC *nic.NIC
	Ctr *perfctr.Set

	App     App
	Deliver Delivery

	flow   *core.FlowTable
	queues *core.Queues[*Conn]

	// Stock-Accept state.
	listenLock *locks.Lock
	stockQueue []*Conn
	listenSock *mem.Object // the single listen tcp_sock
	listenFile *mem.Object // its file: refcount shared in every design
	acceptCur  *mem.Object // Fine-Accept's shared round-robin cursor
	fineCursor int
	reqShared  *reqTable
	estab      *estabTable
	per        []perCore
	liveConns  map[*Conn]struct{}

	// Software-RFS state: the in-memory steering table and the memory
	// home override for packets handed over between cores.
	rfsTable     *mem.Object
	skbAllocHome int

	Stats Stats
}

// NewStack builds the kernel, NIC and memory system for one run.
func NewStack(cfg Config) *Stack {
	cfg.fill()
	cores := cfg.Machine.Cores()
	eng := sim.New(sim.Config{
		Cores:        cores,
		CoresPerChip: cfg.Machine.CoresPerChip,
		Freq:         cfg.Machine.Freq,
		Seed:         cfg.Seed,
	})
	m := mem.NewModel(cfg.Machine)
	m.Profiling = cfg.Profiling
	m.EvictHits = true
	m.Clock = func() sim.Time { return eng.Now() }

	s := &Stack{
		Cfg:       cfg,
		Eng:       eng,
		Mem:       m,
		Ctr:       perfctr.NewSet(),
		flow:      core.NewFlowTable(cfg.FlowGroups, cores),
		liveConns: make(map[*Conn]struct{}),
	}

	s.queues = core.NewQueues[*Conn](core.Config{
		Cores:      cores,
		Backlog:    cfg.Backlog,
		StealRatio: cfg.StealRatio,
		HighPct:    cfg.HighPct,
		LowPct:     cfg.LowPct,
	})

	nicCfg := nic.Config{
		Rings:         cores,
		Mode:          cfg.NICMode,
		FlowTable:     s.flow,
		BandwidthBits: cfg.NICBandwidthBits,
		Freq:          cfg.Machine.Freq,
		FDirCapacity:  cfg.FDirCapacity,
	}
	s.NIC = nic.New(nicCfg, s.softirq)

	// Global kernel objects. The listen socket and its file live on core
	// 0's chip, as they would after boot-time allocation.
	s.listenSock, _ = m.Alloc(0, TypeTCPSock)
	s.listenFile, _ = m.Alloc(0, TypeFile)
	s.acceptCur, _ = m.Alloc(0, TypeAcceptCursor)
	s.skbAllocHome = -1
	if cfg.SoftwareRFS {
		s.rfsTable, _ = m.Alloc(0, TypeReqHash)
	}
	s.estab = newEstabTable(m, cfg.EhashBuckets)
	if !cfg.ReqTablePerCore {
		s.reqShared = newReqTable(m, cfg.ReqHashBuckets, 0, "reqhash")
	}

	s.listenLock = locks.NewSocketLock("listen_sock", cfg.Costs.SockLockSpinLimit)
	s.listenLock.HandoffDelay = cfg.Costs.MutexHandoff

	s.per = make([]perCore, cores)
	for i := range s.per {
		pc := &s.per[i]
		// Clone accept-queue locks are plain spinlocks: they protect a
		// few queue-pointer updates and are rarely contended, exactly
		// the fine-grained locks §3.2 introduces.
		pc.cloneLock = locks.New("clone_sock")
		pc.cloneQueue, _ = m.Alloc(i, TypeCloneQueue)
		pc.runqueue, _ = m.Alloc(i, TypeRunqueue)
		if cfg.ReqTablePerCore {
			pc.reqTable = newReqTable(m, cfg.ReqHashBuckets/cores+1, i, "reqhash_percore")
		}
	}
	if cfg.LockStat {
		s.applyLockStat()
	}
	return s
}

func (s *Stack) applyLockStat() {
	ov := s.Cfg.Costs.LockStatOverhead
	s.listenLock.Overhead = ov
	for i := range s.per {
		s.per[i].cloneLock.Overhead = ov
	}
	if s.reqShared != nil {
		s.reqShared.setOverhead(ov)
	}
	for i := range s.per {
		if s.per[i].reqTable != nil {
			s.per[i].reqTable.setOverhead(ov)
		}
	}
	s.estab.setOverhead(ov)
}

// Start arms periodic activities (flow-group migration).
func (s *Stack) Start() {
	if s.Cfg.Listen == AffinityAccept && s.Cfg.MigrateEvery > 0 {
		s.scheduleMigration()
	}
}

func (s *Stack) scheduleMigration() {
	s.Eng.After(s.Cfg.MigrateEvery, func(e *sim.Engine, _ *sim.Core) {
		n := core.Balance(s.flow, s.queues, s.coreHasCapacity)
		s.Stats.FDirMigrations += uint64(n)
		s.scheduleMigration()
	})
}

// coreHasCapacity reports whether a core has CPU to spare for extra
// connections: cores squeezed by unrelated CPU-bound work (a reduced
// user share) must neither steal nor attract flow groups, whatever
// their queue length says.
func (s *Stack) coreHasCapacity(coreID int) bool {
	us := s.Eng.Cores[coreID].UserShare
	return us <= 0 || us >= 1
}

// FlowTable exposes steering state to experiments.
func (s *Stack) FlowTable() *core.FlowTable { return s.flow }

// Queues exposes the accept queues to experiments and tests.
func (s *Stack) Queues() *core.Queues[*Conn] { return s.queues }

// ListenLockStats aggregates the listen-socket lock statistics the way
// Table 2 reports them: the single socket lock under Stock-Accept, or
// the clone locks plus request-table bucket locks otherwise.
func (s *Stack) ListenLockStats() locks.Stats {
	if s.Cfg.Listen == StockAccept {
		return s.listenLock.Stats
	}
	var agg locks.Stats
	for i := range s.per {
		agg.Merge(s.per[i].cloneLock.Stats)
		if s.per[i].reqTable != nil {
			agg.Merge(s.per[i].reqTable.lockStats())
		}
	}
	if s.reqShared != nil {
		agg.Merge(s.reqShared.lockStats())
	}
	return agg
}

// LiveConns returns the still-open connections (harvested for DProf at
// the end of profiling runs).
func (s *Stack) LiveConns() []*Conn {
	out := make([]*Conn, 0, len(s.liveConns))
	for c := range s.liveConns {
		out = append(out, c)
	}
	return out
}

// HarvestProfiles folds live objects into DProf statistics.
func (s *Stack) HarvestProfiles() {
	var objs []*mem.Object
	for c := range s.liveConns {
		for _, o := range []*mem.Object{c.sock, c.reqSock, c.fd, c.wqMeta, c.sk192} {
			if o != nil {
				objs = append(objs, o)
			}
		}
		for _, r := range c.rxPending {
			if r.skb != nil {
				objs = append(objs, r.skb)
			}
		}
		objs = append(objs, c.txInflight...)
	}
	objs = append(objs, s.listenSock, s.listenFile)
	s.Mem.HarvestLive(objs)
}

// ---- kernel entry context ----

// K tracks one kernel entry: cycles are measured as the core-clock delta
// between Enter and Leave (so lock waits and cache stalls are included,
// as a real cycle counter would), instructions and misses are explicit.
type K struct {
	s     *Stack
	c     *sim.Core
	e     perfctr.Entry
	start sim.Time
	instr uint64
}

// Enter opens a kernel entry on a core.
func (s *Stack) Enter(c *sim.Core, e perfctr.Entry) *K {
	s.Ctr.AddCall(e)
	return &K{s: s, c: c, e: e, start: c.Now()}
}

// Leave closes the entry and attributes its cycles.
func (k *K) Leave() {
	k.s.Ctr.Add(k.e, k.c.Now()-k.start, k.instr)
}

// Work charges base execution.
func (k *K) Work(op Op) {
	k.c.Charge(op.Cycles)
	k.instr += op.Instr
}

// WorkCycles charges raw cycles with an instruction estimate.
func (k *K) WorkCycles(cyc sim.Cycles, instr uint64) {
	k.c.Charge(cyc)
	k.instr += instr
}

// Touch accesses a field of an object, charging coherence costs.
func (k *K) Touch(o *mem.Object, f mem.FieldID, write bool) {
	k.s.Mem.IssueNow = k.c.Now()
	res := k.s.Mem.Access(k.c.ID, o, f, write)
	k.c.Charge(res.Cycles)
	k.instr++
	if res.Miss {
		k.s.Ctr.AddMiss(k.e)
	}
}

// TouchRepeat accesses a field n times back to back.
func (k *K) TouchRepeat(o *mem.Object, f mem.FieldID, write bool, n int) {
	k.s.Mem.IssueNow = k.c.Now()
	res := k.s.Mem.AccessRepeat(k.c.ID, o, f, write, n)
	k.c.Charge(res.Cycles)
	k.instr += uint64(n)
	if res.Miss {
		k.s.Ctr.AddMiss(k.e)
	}
}

// ColdWalk charges n capacity misses (cold working-set lines) to the
// current entry.
func (k *K) ColdWalk(n int) {
	if n <= 0 {
		return
	}
	k.s.Mem.IssueNow = k.c.Now()
	res := k.s.Mem.ColdMisses(k.c.ID, n)
	k.c.Charge(res.Cycles)
	k.instr += uint64(n)
	for i := 0; i < n; i++ {
		k.s.Ctr.AddMiss(k.e)
	}
}

// TouchInit performs an initialization write.
func (k *K) TouchInit(o *mem.Object, f mem.FieldID) {
	k.s.Mem.IssueNow = k.c.Now()
	res := k.s.Mem.AccessInit(k.c.ID, o, f)
	k.c.Charge(res.Cycles)
	k.instr++
	if res.Miss {
		k.s.Ctr.AddMiss(k.e)
	}
}

// Alloc allocates a tracked object on this core.
func (k *K) Alloc(t *mem.TypeInfo) *mem.Object {
	k.s.Mem.IssueNow = k.c.Now()
	o, cyc := k.s.Mem.Alloc(k.c.ID, t)
	k.c.Charge(cyc)
	return o
}

// Free releases a tracked object from this core (remote frees pay).
func (k *K) Free(o *mem.Object) {
	if o == nil {
		return
	}
	k.s.Mem.IssueNow = k.c.Now()
	cyc := k.s.Mem.Free(k.c.ID, o)
	k.c.Charge(cyc)
}

// WakeRemote models waking a thread parked on another core: a write to
// that core's runqueue plus schedule bookkeeping on the waker.
func (k *K) WakeRemote(coreID int) {
	k.Touch(k.s.per[coreID].runqueue, 0, true)
	k.Work(Op{k.s.Cfg.Costs.Schedule.Cycles / 2, k.s.Cfg.Costs.Schedule.Instr / 2})
}
