package tcp

import (
	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/sim"
)

// Software Receive Flow Steering (the paper's §7.2: Google's RFS patch
// for Linux). Instead of steering in the NIC, every core receiving a
// packet does a minimal routing step — extract the flow hash, look up
// the destination core in a software table populated by sendmsg(), and
// append the packet to that core's backlog — and the destination core
// performs the real protocol processing. The paper's critique, which
// the model reproduces: the routing work costs CPU on every packet, the
// backlog handoff bounces cache lines, and packet buffers allocated on
// the routing core are freed on the destination core ("our analysis of
// RFS ... points to remote memory deallocation of packet buffers as
// part of the problem").

// rfsRouteCost is the routing core's per-packet work: demux, table
// lookup, backlog append, IPI.
var rfsRouteCost = Op{2600, 2100}

// rfsRoute intercepts a packet on the receiving (routing) core and
// re-dispatches protocol processing to the flow's destination core. It
// reports whether the packet was rerouted.
func (s *Stack) rfsRoute(e *sim.Engine, c *sim.Core, pkt *nic.Packet) bool {
	if !s.Cfg.SoftwareRFS {
		return false
	}
	conn := pkt.Conn.(*Conn)
	// Only established-flow traffic has a sendmsg()-trained entry; new
	// connections are processed where they land.
	if conn.rfsCore < 0 || conn.rfsCore == c.ID {
		return false
	}
	switch pkt.Kind {
	case PktREQ, PktACKData, PktFIN:
	default:
		return false
	}

	k := s.Enter(c, perfctr.SoftirqNetRX)
	k.Work(rfsRouteCost)
	// The software steering table and the destination backlog head are
	// written from every routing core: both lines bounce.
	k.Touch(s.rfsTable, s.rfsTableField(conn), false)
	k.Touch(s.per[conn.rfsCore].runqueue, 0, true)
	k.Leave()

	dest := conn.rfsCore
	routedFrom := c.ID
	e.OnCore(dest, c.Now(), func(e *sim.Engine, c2 *sim.Core) {
		// Packet buffers were DMA'd into the routing core's memory;
		// everything the destination core allocates for this packet
		// lives remotely and will be freed remotely.
		s.skbAllocHome = routedFrom
		s.deliver(e, c2, pkt)
		s.skbAllocHome = -1
	})
	s.Stats.RFSRouted++
	return true
}

// rfsTableField maps a connection to its steering-table cache line.
func (s *Stack) rfsTableField(conn *Conn) mem.FieldID {
	return mem.FieldID(int(conn.Key.Hash()) % reqhashLines)
}

// rfsNoteSend records the sendmsg() core in the software steering
// table, as the RFS patch does on every sendmsg.
func (s *Stack) rfsNoteSend(k *K, conn *Conn) {
	if !s.Cfg.SoftwareRFS {
		return
	}
	if conn.rfsCore != k.c.ID {
		conn.rfsCore = k.c.ID
		k.Touch(s.rfsTable, s.rfsTableField(conn), true)
	}
}
