package tcp

import "affinityaccept/internal/sim"

// Op is the base cost of one kernel operation: cycles of execution with
// all data in L1, and retired instructions. The memory model adds
// cache-transfer cycles on top; those additions are where the
// Fine-vs-Affinity differences come from.
type Op struct {
	Cycles sim.Cycles
	Instr  uint64
}

// Costs collects every tunable base cost of the simulated kernel.
// Calibration targets, from the paper's evaluation on the AMD machine:
// ~12–13k requests/sec/core for Apache at low core counts, ~60–70k
// cycles of softirq work per request under Affinity-Accept, and
// Stock-Accept's listen socket serializing around 10–15k conn/sec.
type Costs struct {
	// Softirq per-packet work (driver, IP, TCP demux) and per-kind extras.
	SoftirqBase Op
	SynExtra    Op
	Ack3Extra   Op
	ReqExtra    Op
	AckProc     Op
	FinExtra    Op
	RespTx      Op

	// Syscall base costs.
	Accept      Op
	Read        Op
	Writev      Op
	Poll        Op
	PollPerFD   Op
	Epoll       Op
	Futex       Op
	Schedule    Op
	Shutdown    Op
	Close       Op
	Fcntl       Op
	Getsockname Op
	RCU         Op

	// Allocation and copy work.
	SkbWork          Op
	SockAllocWork    Op
	CopyPerByteMilli int // milli-cycles per byte copied on read
	CopyTxPerByteMil int // milli-cycles per byte copied+checksummed on writev

	// Lock behaviour.
	SockLockSpinLimit sim.Cycles // spin-then-sleep threshold of the listen socket lock
	MutexHandoff      sim.Cycles // dead time handing a mutex-mode lock to a parked waiter
	LockStatOverhead  sim.Cycles // per lock op when lock_stat is enabled
	// StockLockWork is the extra work Stock-Accept performs inside each
	// listen-socket critical section (request-table scan, accept-queue
	// manipulation, wakeups — all serialized under the single lock in
	// unmodified Linux; the clone designs do the same work outside any
	// global lock).
	StockLockWork sim.Cycles

	// Wire parameters.
	HalfRTT    sim.Cycles
	MSS        int
	HeaderWire int // per-packet wire overhead (eth+ip+tcp)
	RespHeader int // HTTP response header bytes
	ReqBytes   int // HTTP request size on the wire
	AckBytes   int // pure-ack wire size

	// HerdWakeups is how many extra pollers a Stock/Fine listen socket
	// wakes per new connection (Affinity-Accept wakes local ones only).
	HerdWakeups int

	// User-space application work per request.
	ApacheUserWork   sim.Cycles
	LighttpdUserWork sim.Cycles

	// SockTouchRepeat is how many times each hot socket field is
	// re-touched per operation (Linux crosses these lines many times per
	// packet; repeats hit L1, so they add little local cost but make the
	// absolute shared-access cycle counts realistic).
	SockTouchRepeat int

	// Cold working-set walks: capacity misses per operation, matching
	// the magnitude of the paper's Table 3 L2-miss counters. The
	// coherence model's caches are infinite, so capacity misses are
	// charged explicitly and drawn through the chip memory controllers.
	SoftirqColdPerPkt int
	ReadCold          int
	WritevCold        int
	AcceptCold        int // per accepted connection
	PollCold          int
	FutexCold         int
	ScheduleCold      int
	CloseCold         int // per closed connection
	UserColdApache    int // per request, in application code
	UserColdLighttpd  int
}

// DefaultCosts returns the calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		SoftirqBase: Op{9000, 7500},
		SynExtra:    Op{7000, 5000},
		Ack3Extra:   Op{12000, 9000},
		ReqExtra:    Op{7000, 5500},
		AckProc:     Op{3500, 2800},
		FinExtra:    Op{7000, 5000},
		RespTx:      Op{4000, 3200},

		Accept:      Op{14000, 9000},
		Read:        Op{7000, 3600},
		Writev:      Op{9000, 4000},
		Poll:        Op{6000, 3500},
		PollPerFD:   Op{400, 300},
		Epoll:       Op{1800, 560},
		Futex:       Op{5000, 2600},
		Schedule:    Op{4200, 2700},
		Shutdown:    Op{5500, 2800},
		Close:       Op{4200, 1900},
		Fcntl:       Op{375, 275},
		Getsockname: Op{700, 277},
		RCU:         Op{650, 200},

		SkbWork:          Op{900, 700},
		SockAllocWork:    Op{2500, 1800},
		CopyPerByteMilli: 400, // 0.4 cycles/byte
		CopyTxPerByteMil: 600,

		SockLockSpinLimit: 24_000, // ~10 us before the socket lock sleeps
		MutexHandoff:      16_000, // ~7 us to wake and run the next waiter
		StockLockWork:     26_000,
		LockStatOverhead:  90,

		HalfRTT:    120_000, // 50 us each way
		MSS:        1448,
		HeaderWire: 66,
		RespHeader: 250,
		ReqBytes:   400,
		AckBytes:   66,

		HerdWakeups: 1,

		ApacheUserWork:   60_000,
		LighttpdUserWork: 18_000,

		SockTouchRepeat: 3,

		SoftirqColdPerPkt: 28,
		ReadCold:          14,
		WritevCold:        16,
		AcceptCold:        60,
		PollCold:          10,
		FutexCold:         10,
		ScheduleCold:      10,
		CloseCold:         40,
		UserColdApache:    65,
		UserColdLighttpd:  30,
	}
}
