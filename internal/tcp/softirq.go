package tcp

import (
	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/sim"
)

// softirq is the NIC's packet handler: it runs on the core owning the
// receiving DMA ring, in softirq_net_rx context. With software RFS the
// receiving core may only route the packet; protocol processing then
// happens on the steering table's destination core.
func (s *Stack) softirq(e *sim.Engine, c *sim.Core, pkt *nic.Packet) {
	if s.rfsRoute(e, c, pkt) {
		return
	}
	s.deliver(e, c, pkt)
}

// deliver performs the protocol processing of one packet on this core.
func (s *Stack) deliver(e *sim.Engine, c *sim.Core, pkt *nic.Packet) {
	conn := pkt.Conn.(*Conn)
	k := s.Enter(c, perfctr.SoftirqNetRX)
	defer k.Leave()
	k.Work(s.Cfg.Costs.SoftirqBase)
	k.ColdWalk(s.Cfg.Costs.SoftirqColdPerPkt)
	conn.SoftirqCore = c.ID

	switch pkt.Kind {
	case PktSYN:
		s.rxSyn(k, conn)
	case PktACK3:
		s.rxAck3(k, conn)
	case PktREQ:
		s.rxReq(k, conn, pkt)
	case PktACKData:
		s.rxAckData(k, conn)
	case PktFIN:
		s.rxFin(k, conn)
	}
}

// skbuff models the allocation and immediate processing of one packet's
// sk_buff on the current core (or, under software RFS, on the routing
// core that DMA'd the packet — whoever frees it later pays remotely).
func (k *K) skbAlloc() *mem.Object {
	k.Work(k.s.Cfg.Costs.SkbWork)
	home := k.c.ID
	if k.s.skbAllocHome >= 0 {
		home = k.s.skbAllocHome
	}
	k.s.Mem.IssueNow = k.c.Now()
	skb, cyc := k.s.Mem.Alloc(home, TypeSKB)
	k.c.Charge(cyc)
	k.TouchInit(skb, 0) // list
	k.TouchInit(skb, 1) // meta
	k.TouchInit(skb, 2) // data_ptrs
	return skb
}

// skbFree releases a transmit/receive buffer: an sk_buff (destructor
// runs) or an attached data page.
func (k *K) skbFree(skb *mem.Object) {
	if skb == nil {
		return
	}
	if skb.Type == TypeSKB {
		k.Touch(skb, 3, false) // destructor
	}
	k.Free(skb)
}

// touchListenSock models the Stock-Accept critical section's cache
// footprint: the listen socket's state is walked end to end while the
// single lock is held, and at high core counts every one of those lines
// is dirty in some other core's cache.
func (k *K) touchListenSock() {
	s := k.s
	k.TouchRepeat(s.listenSock, sockHot[hotLock], true, 2)
	for i := 0; i < len(sockHot); i++ {
		k.Touch(s.listenSock, sockHot[i], i%2 == 0)
	}
	k.Touch(s.listenSock, sockInitBlock, false)
}

// acceptQueueFull applies the kernel's early SYN drop when the target
// accept queue is already full.
func (s *Stack) acceptQueueFull(k *K, coreID int) bool {
	switch s.Cfg.Listen {
	case StockAccept:
		return len(s.stockQueue) >= s.Cfg.Backlog
	default:
		return s.queues.Len(coreID) >= s.queues.MaxLocalLen()
	}
}

// rxSyn handles a connection request: create a request socket, reply
// SYN-ACK. Under Stock-Accept the whole operation serializes on the
// listen socket lock; the clone designs only take a request-table bucket
// lock.
func (s *Stack) rxSyn(k *K, conn *Conn) {
	c := k.c
	cost := &s.Cfg.Costs
	skb := k.skbAlloc()
	defer k.skbFree(skb)
	k.Work(cost.SynExtra)

	if conn.State != StateNew {
		// Duplicate SYN (client retransmission): just re-send SYN-ACK.
		txDone := s.NIC.Tx(c, &nic.Packet{Key: conn.Key.Reverse(), Bytes: cost.AckBytes, Kind: PktSYNACK, Conn: conn})
		s.deliverAt(txDone+cost.HalfRTT, conn, PktSYNACK, 0)
		return
	}
	if s.acceptQueueFull(k, c.ID) {
		// Dropped before any expensive processing (and before the
		// Stock-Accept socket lock), as the kernel's early check does.
		s.Stats.SynDrops++
		if s.Cfg.SilentOverflow {
			// Stock behaviour: say nothing; the client's SYN
			// retransmissions may succeed later or time out.
			return
		}
		// Refusal tells the load generator to give up on this
		// connection rather than retransmitting into a dead slot.
		conn.State = StateClosed
		delete(s.liveConns, conn)
		s.Stats.ConnsClosed++
		s.refuse(k, conn)
		return
	}

	create := func(lockHeld bool) {
		conn.reqSock = k.Alloc(TypeRequestSock)
		k.TouchInit(conn.reqSock, 1) // tuple
		k.TouchInit(conn.reqSock, 2) // state
		k.TouchInit(conn.reqSock, 3) // listener back-pointer
		s.reqTableFor(c.ID).insert(k, conn, lockHeld)
		conn.State = StateSynRcvd
		conn.reqTableCore = c.ID
	}

	if s.Cfg.Listen == StockAccept {
		s.listenLock.Acquire(c, false)
		at := c.Now()
		// Processing under the single lock touches the listen socket's
		// hot state from whichever core the interrupt landed on, and
		// does the whole request-table scan while holding it.
		k.WorkCycles(cost.StockLockWork, uint64(cost.StockLockWork)/2)
		k.touchListenSock()
		create(true)
		s.listenLock.Unlock(c, at)
	} else {
		// Clone designs: only the bucket lock; listen state is per-core.
		k.Touch(s.per[c.ID].cloneQueue, 1, false) // local length check
		create(false)
	}

	// SYN-ACK reply from this core's TX ring.
	txDone := s.NIC.Tx(c, &nic.Packet{Key: conn.Key.Reverse(), Bytes: cost.AckBytes, Kind: PktSYNACK, Conn: conn})
	s.deliverAt(txDone+cost.HalfRTT, conn, PktSYNACK, 0)
}

// rxAck3 completes the three-way handshake: promote the request socket
// to an established tcp_sock and queue it for accept().
func (s *Stack) rxAck3(k *K, conn *Conn) {
	c := k.c
	cost := &s.Cfg.Costs
	skb := k.skbAlloc()
	defer k.skbFree(skb)
	k.Work(cost.Ack3Extra)

	if conn.State != StateSynRcvd {
		// Request socket was dropped or timed out; the kernel sends a
		// RST. Nothing to charge beyond base processing.
		return
	}

	promote := func(lockHeld bool) bool {
		if !s.lookupRequest(k, conn, lockHeld) {
			return false
		}
		// Create the child socket on this core: its memory home is here.
		k.Work(cost.SockAllocWork)
		conn.sock = k.Alloc(TypeTCPSock)
		k.TouchInit(conn.sock, sockInitBlock)
		k.TouchInit(conn.sock, sockHot[hotLock])
		k.TouchInit(conn.sock, sockHot[hotRxSeq])
		k.TouchInit(conn.sock, sockHot[hotTxSeq])
		conn.wqMeta = k.Alloc(TypeSock1K)
		k.TouchInit(conn.wqMeta, 0)
		conn.sk192 = k.Alloc(TypeSock192)
		k.TouchInit(conn.sk192, 0)
		s.estab.insert(k, conn)
		return true
	}

	enqueue := func() bool {
		switch s.Cfg.Listen {
		case StockAccept:
			if len(s.stockQueue) >= s.Cfg.Backlog {
				return false
			}
			k.Touch(s.listenSock, sockHot[hotRxQueue], true)
			k.Touch(s.listenSock, sockHot[hotRcvBuf], true)
			s.stockQueue = append(s.stockQueue, conn)
			return true
		default:
			k.Touch(s.per[c.ID].cloneQueue, 0, true) // head
			k.Touch(s.per[c.ID].cloneQueue, 1, true) // len
			return s.queues.Push(c.ID, conn)
		}
	}

	if s.Cfg.Listen == StockAccept {
		s.listenLock.Acquire(c, false)
		at := c.Now()
		k.WorkCycles(cost.StockLockWork, uint64(cost.StockLockWork)/2)
		k.touchListenSock()
		ok := promote(true)
		queued := ok && enqueue()
		s.listenLock.Unlock(c, at)
		if !ok {
			return
		}
		if !queued {
			s.dropEstablished(k, conn)
			return
		}
	} else {
		if !promote(false) {
			return
		}
		lock := s.per[c.ID].cloneLock
		lock.Acquire(c, false)
		at := c.Now()
		queued := enqueue()
		lock.Unlock(c, at)
		if !queued {
			s.dropEstablished(k, conn)
			return
		}
	}

	conn.State = StateQueued
	if s.Cfg.Listen == AffinityAccept {
		s.App.ConnReady(k, c.ID)
	} else {
		s.App.ConnReady(k, -1)
	}
}

// lookupRequest finds and removes the request socket. With per-core
// request tables a flow-group migration can strand the entry on another
// core; the lookup then has to scan the other tables (§5.2's problem).
func (s *Stack) lookupRequest(k *K, conn *Conn, lockHeld bool) bool {
	t := s.reqTableFor(k.c.ID)
	if s.Cfg.ReqTablePerCore && conn.reqTableCore != k.c.ID {
		// Miss in the local table: scan others (expensive and intrusive).
		for i := range s.per {
			if i == k.c.ID {
				continue
			}
			if s.per[i].reqTable.lookupRemove(k, conn, false) {
				return true
			}
		}
		return false
	}
	return t.lookupRemove(k, conn, lockHeld)
}

func (s *Stack) reqTableFor(coreID int) *reqTable {
	if s.Cfg.ReqTablePerCore {
		return s.per[coreID].reqTable
	}
	return s.reqShared
}

// dropEstablished tears down a connection whose accept queue overflowed,
// resetting the client (tcp_abort_on_overflow behaviour).
func (s *Stack) dropEstablished(k *K, conn *Conn) {
	s.Stats.AcceptDrops++
	s.estab.remove(k, conn)
	k.Free(conn.sock)
	k.Free(conn.wqMeta)
	k.Free(conn.sk192)
	k.Free(conn.reqSock)
	for _, r := range conn.rxPending {
		k.skbFree(r.skb)
	}
	conn.rxPending = nil
	conn.sock, conn.wqMeta, conn.sk192, conn.reqSock = nil, nil, nil, nil
	wasAborted := conn.aborted
	conn.State = StateClosed
	delete(s.liveConns, conn)
	s.Stats.ConnsClosed++
	if !wasAborted {
		s.refuse(k, conn)
	}
}

// refuse sends the client a reset (unless overflow is silent, the stock
// Linux default behind §6.5's client timeouts).
func (s *Stack) refuse(k *K, conn *Conn) {
	if s.Cfg.SilentOverflow {
		return
	}
	cost := &s.Cfg.Costs
	txDone := s.NIC.Tx(k.c, &nic.Packet{Key: conn.Key.Reverse(), Bytes: cost.AckBytes, Kind: PktRST, Conn: conn})
	s.deliverAt(txDone+cost.HalfRTT, conn, PktRST, 0)
}

// touchSockRx models the receive-side socket work of one data packet.
func (k *K) touchSockRx(conn *Conn) {
	rep := k.s.Cfg.Costs.SockTouchRepeat
	k.TouchRepeat(conn.sock, sockHot[hotLock], true, rep)
	k.TouchRepeat(conn.sock, sockHot[hotRxSeq], true, rep)
	k.TouchRepeat(conn.sock, sockHot[hotRxQueue], true, rep)
	k.Touch(conn.sock, sockHot[hotRcvBuf], true)
	k.Touch(conn.sock, sockHot[hotTimers], true)
	k.Touch(conn.sock, sockInitBlock, false)
	// Long tail of flags/mibs/timestamps crossed on the receive path.
	for i := hotTailFirst; i <= hotTailLast-5; i++ {
		k.Touch(conn.sock, sockHot[i], true)
	}
}

// touchSockAck models processing an acknowledgment of our transmitted
// data: the transmit-side state written by the application core.
func (k *K) touchSockAck(conn *Conn) {
	rep := k.s.Cfg.Costs.SockTouchRepeat
	k.TouchRepeat(conn.sock, sockHot[hotTxSeq], true, rep)
	k.TouchRepeat(conn.sock, sockHot[hotTxQueue], true, rep)
	k.Touch(conn.sock, sockHot[hotWmem], true)
	k.TouchRepeat(conn.sock, sockHot[hotCong1], true, 2)
	k.Touch(conn.sock, sockHot[hotCong2], true)
	k.Touch(conn.wqMeta, 0, true) // write-queue head
	k.Touch(conn.wqMeta, 1, true) // accounting
	for i := hotTailLast - 4; i <= hotTailLast-2; i++ {
		k.Touch(conn.sock, sockHot[i], true)
	}
	// Release acknowledged transmit buffers: allocated on the
	// application core, freed here on the softirq core.
	for _, skb := range conn.txInflight {
		k.skbFree(skb)
	}
	conn.txInflight = conn.txInflight[:0]
}

// rxReq handles an HTTP request packet, which also acknowledges all
// outstanding response data.
func (s *Stack) rxReq(k *K, conn *Conn, pkt *nic.Packet) {
	cost := &s.Cfg.Costs
	k.Work(cost.ReqExtra)
	if conn.State == StateSynRcvd {
		// The handshake ACK was lost but this data packet carries the
		// same acknowledgment: complete the handshake from it.
		s.rxAck3(k, conn)
	}
	if conn.State == StateClosed || conn.sock == nil {
		return
	}
	s.estab.lookup(k, conn)
	if pkt.Seq <= conn.rcvdSeq {
		// Retransmitted segment already received: TCP discards it after
		// the demux, acking what it holds.
		k.Touch(conn.sock, sockHot[hotRxSeq], false)
		return
	}
	conn.rcvdSeq = pkt.Seq
	skb := k.skbAlloc()

	// Requests acknowledge outstanding data: ack processing walks the
	// transmit state the application core last wrote.
	k.Work(cost.AckProc)
	k.touchSockAck(conn)
	k.touchSockRx(conn)

	conn.rxPending = append(conn.rxPending, PendingReq{
		ReqBytes:  pkt.Bytes,
		RespBytes: int(pkt.Aux),
		skb:       skb,
	})
	if conn.State == StateAccepted {
		s.App.ConnReadable(k, conn)
	}
}

// rxAckData handles a standalone client acknowledgment (end of a think
// group: no further request is coming soon, so the client's delayed-ack
// timer fires).
func (s *Stack) rxAckData(k *K, conn *Conn) {
	if conn.State == StateClosed || conn.sock == nil {
		return
	}
	k.Work(s.Cfg.Costs.AckProc)
	s.estab.lookup(k, conn)
	if len(conn.txInflight) > 0 {
		k.touchSockAck(conn)
	}
}

// rxFin handles the client's FIN (graceful close or abort).
func (s *Stack) rxFin(k *K, conn *Conn) {
	cost := &s.Cfg.Costs
	k.Work(cost.FinExtra)
	conn.peerClosed = true

	switch conn.State {
	case StateAccepted:
		if len(conn.txInflight) > 0 {
			k.touchSockAck(conn)
		}
		k.Touch(conn.sock, sockHot[hotLock], true)
		k.Touch(conn.sock, sockHot[hotRxSeq], true)
		s.App.ConnClosed(k, conn)
	case StateQueued:
		// Client gave up while the connection sat in an accept queue;
		// accept() will discard it when it reaches the head.
		conn.aborted = true
		s.Stats.Aborts++
	case StateSynRcvd:
		if conn.reqSock != nil {
			s.reqTableFor(conn.reqTableCore).lookupRemove(k, conn, false)
			k.Free(conn.reqSock)
			conn.reqSock = nil
		}
		conn.State = StateClosed
		delete(s.liveConns, conn)
		s.Stats.ConnsClosed++
		s.Stats.Aborts++
	case StateNew:
		// SYN was dropped before any state existed.
		conn.State = StateClosed
		delete(s.liveConns, conn)
		s.Stats.ConnsClosed++
		s.Stats.Aborts++
	}
}

// deliverAt schedules a server-to-client packet arrival.
func (s *Stack) deliverAt(at sim.Time, conn *Conn, kind uint8, bytes int) {
	if s.Deliver == nil {
		return
	}
	s.Eng.At(at, func(e *sim.Engine, _ *sim.Core) {
		s.Deliver(e, conn, kind, bytes)
	})
}
