package tcp

import (
	"testing"

	"affinityaccept/internal/core"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/sim"
)

// testApp records stack callbacks and optionally drives accepts.
type testApp struct {
	s         *Stack
	ready     []int
	readable  []*Conn
	closed    []*Conn
	autoDrain bool
}

func (a *testApp) ConnReady(k *K, coreID int) {
	a.ready = append(a.ready, coreID)
	if !a.autoDrain {
		return
	}
	target := coreID
	if target < 0 {
		target = k.Core().ID
	}
	k.Engine().OnCore(target, k.Core().Now(), func(e *sim.Engine, c *sim.Core) {
		for {
			conn := a.s.Accept(c)
			if conn == nil {
				return
			}
		}
	})
}

func (a *testApp) ConnReadable(k *K, conn *Conn) { a.readable = append(a.readable, conn) }
func (a *testApp) ConnClosed(k *K, conn *Conn)   { a.closed = append(a.closed, conn) }

// runFor advances the simulation by a relative number of seconds.
func runFor(s *Stack, sec float64) {
	s.Eng.Run(s.Eng.Now() + s.Eng.CyclesOf(sec))
}

func testStack(t *testing.T, kind ListenKind, cores int) (*Stack, *testApp) {
	t.Helper()
	s := NewStack(Config{
		Machine: mem.AMD48().WithCores(cores),
		Listen:  kind,
		Seed:    1,
	})
	app := &testApp{s: s}
	s.App = app
	return s, app
}

// key with a source port steered to the given core under flow groups.
func keyForCore(s *Stack, coreID int) core.FlowKey {
	for p := 1; p < 65535; p++ {
		if s.flow.CoreForPort(uint16(p)) == coreID {
			return core.FlowKey{Proto: 6, SrcIP: 0x0a000001, DstIP: 0x0a00ffff,
				SrcPort: uint16(p), DstPort: 80}
		}
	}
	panic("no port steers to core")
}

// handshake drives SYN -> SYNACK -> ACK3 and returns the connection.
func handshake(t *testing.T, s *Stack, coreID int) *Conn {
	t.Helper()
	var gotSynAck bool
	conn := s.NewConn(keyForCore(s, coreID), nil)
	s.Deliver = func(e *sim.Engine, c *Conn, kind uint8, bytes int) {
		if kind == PktSYNACK && c == conn && !gotSynAck {
			gotSynAck = true
			s.ClientSend(e, conn, PktACK3, 66, 0, 0)
		}
	}
	s.ClientSend(s.Eng, conn, PktSYN, 66, 0, 0)
	runFor(s, 0.01)
	if !gotSynAck {
		t.Fatal("no SYN-ACK delivered")
	}
	return conn
}

func TestHandshakeQueuesConnection(t *testing.T) {
	s, app := testStack(t, AffinityAccept, 6)
	conn := handshake(t, s, 3)
	if conn.State != StateQueued {
		t.Fatalf("state = %v, want queued", conn.State)
	}
	if conn.SoftirqCore != 3 {
		t.Fatalf("softirq core = %d, want 3 (flow steering)", conn.SoftirqCore)
	}
	if len(app.ready) != 1 || app.ready[0] != 3 {
		t.Fatalf("ConnReady calls: %v, want [3]", app.ready)
	}
	if s.Queues().Len(3) != 1 {
		t.Fatal("connection not in core 3's accept queue")
	}
}

func TestAcceptLocalAffinity(t *testing.T) {
	s, _ := testStack(t, AffinityAccept, 6)
	conn := handshake(t, s, 2)
	var accepted *Conn
	s.Eng.OnCore(2, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		accepted = s.Accept(c)
	})
	runFor(s, 0.02)
	if accepted != conn {
		t.Fatal("local accept did not return the queued connection")
	}
	if conn.State != StateAccepted || conn.AppCore != 2 {
		t.Fatalf("state=%v appcore=%d", conn.State, conn.AppCore)
	}
	if !conn.Local() {
		t.Fatal("connection should be local (softirq core == app core)")
	}
	if s.Stats.ConnsAccepted != 1 {
		t.Fatalf("accept count %d", s.Stats.ConnsAccepted)
	}
}

func TestStockAcceptAnyCore(t *testing.T) {
	s, app := testStack(t, StockAccept, 6)
	conn := handshake(t, s, 2)
	if len(app.ready) != 1 || app.ready[0] != -1 {
		t.Fatalf("stock ConnReady should pass -1, got %v", app.ready)
	}
	var accepted *Conn
	s.Eng.OnCore(5, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		accepted = s.Accept(c)
	})
	runFor(s, 0.02)
	if accepted != conn {
		t.Fatal("stock accept from another core failed")
	}
	if conn.Local() {
		t.Fatal("cross-core accept should not be local")
	}
}

func TestRequestReadWriteRoundTrip(t *testing.T) {
	s, app := testStack(t, AffinityAccept, 6)
	conn := handshake(t, s, 1)
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		s.Accept(c)
	})
	runFor(s, 0.02)

	var gotResp int
	s.Deliver = func(e *sim.Engine, c *Conn, kind uint8, bytes int) {
		if kind == PktRESP {
			gotResp = bytes
		}
	}
	s.ClientSend(s.Eng, conn, PktREQ, 400, 2000, 1)
	runFor(s, 0.03)
	if len(app.readable) == 0 {
		t.Fatal("no ConnReadable callback")
	}

	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		req, ok := s.Read(c, conn)
		if !ok {
			t.Error("read returned no data")
			return
		}
		if req.RespBytes != 2000 {
			t.Errorf("respBytes = %d", req.RespBytes)
		}
		s.Writev(c, conn, req.RespBytes)
	})
	runFor(s, 0.05)
	if gotResp != 2000 {
		t.Fatalf("client got %d response bytes, want 2000", gotResp)
	}
	if s.Stats.Requests != 1 || s.Stats.RequestsLocal != 1 {
		t.Fatalf("requests=%d local=%d", s.Stats.Requests, s.Stats.RequestsLocal)
	}
	// Multi-segment response: 2000+250 header = 2 MSS segments.
	if s.NIC.Stats.TxPackets < 3 { // SYNACK + 2 data segments
		t.Fatalf("tx packets = %d", s.NIC.Stats.TxPackets)
	}
}

func TestDuplicateRequestDiscarded(t *testing.T) {
	s, _ := testStack(t, AffinityAccept, 6)
	conn := handshake(t, s, 1)
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) { s.Accept(c) })
	runFor(s, 0.02)
	s.ClientSend(s.Eng, conn, PktREQ, 400, 1000, 1)
	s.ClientSend(s.Eng, conn, PktREQ, 400, 1000, 1) // retransmission
	runFor(s, 0.03)
	if got := len(conn.rxPending); got != 1 {
		t.Fatalf("pending requests = %d, want 1 (duplicate dropped)", got)
	}
}

func TestCloseReleasesEverything(t *testing.T) {
	s, app := testStack(t, AffinityAccept, 6)
	conn := handshake(t, s, 1)
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) { s.Accept(c) })
	runFor(s, 0.02)
	s.ClientSend(s.Eng, conn, PktFIN, 66, 0, 0)
	runFor(s, 0.02)
	if len(app.closed) != 1 {
		t.Fatal("no ConnClosed callback")
	}
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		s.CloseConn(c, conn)
	})
	runFor(s, 0.02)
	if conn.State != StateClosed {
		t.Fatal("connection not closed")
	}
	if conn.sock != nil || conn.fd != nil {
		t.Fatal("kernel objects not freed")
	}
	if len(s.LiveConns()) != 0 {
		t.Fatal("connection still tracked")
	}
	if s.Mem.Allocs == s.Mem.Frees+3 { // global objects stay allocated
		t.Log("allocation balance plausible")
	}
}

func TestSynDropWhenQueueFull(t *testing.T) {
	s := NewStack(Config{
		Machine: mem.AMD48().WithCores(2),
		Listen:  AffinityAccept,
		Backlog: 2, // 1 per core
		Seed:    1,
	})
	s.App = &testApp{s: s}
	refused := 0
	s.Deliver = func(e *sim.Engine, c *Conn, kind uint8, bytes int) {
		if kind == PktRST {
			refused++
		}
	}
	// Two connections to the same core: second SYN must be refused
	// (queue holds at most 1 and nobody accepts).
	c1 := s.NewConn(keyForCore(s, 0), nil)
	s.ClientSend(s.Eng, c1, PktSYN, 66, 0, 0)
	runFor(s, 0.01)
	// Complete c1's handshake so it occupies the queue.
	s.ClientSend(s.Eng, c1, PktACK3, 66, 0, 0)
	runFor(s, 0.01)

	k2 := keyForCore(s, 0)
	k2.SrcPort += uint16(s.flow.Groups()) // same group, different port
	c2 := s.NewConn(k2, nil)
	s.ClientSend(s.Eng, c2, PktSYN, 66, 0, 0)
	runFor(s, 0.01)

	if s.Stats.SynDrops != 1 || refused != 1 {
		t.Fatalf("synDrops=%d refused=%d, want 1/1", s.Stats.SynDrops, refused)
	}
}

func TestSilentOverflowSendsNothing(t *testing.T) {
	s := NewStack(Config{
		Machine:        mem.AMD48().WithCores(2),
		Listen:         AffinityAccept,
		Backlog:        2,
		SilentOverflow: true,
		Seed:           1,
	})
	s.App = &testApp{s: s}
	resets := 0
	s.Deliver = func(e *sim.Engine, c *Conn, kind uint8, bytes int) {
		if kind == PktRST {
			resets++
		}
	}
	c1 := s.NewConn(keyForCore(s, 0), nil)
	s.ClientSend(s.Eng, c1, PktSYN, 66, 0, 0)
	runFor(s, 0.01)
	s.ClientSend(s.Eng, c1, PktACK3, 66, 0, 0)
	runFor(s, 0.01)
	k2 := keyForCore(s, 0)
	k2.SrcPort += uint16(s.flow.Groups())
	c2 := s.NewConn(k2, nil)
	s.ClientSend(s.Eng, c2, PktSYN, 66, 0, 0)
	runFor(s, 0.01)
	if s.Stats.SynDrops != 1 || resets != 0 {
		t.Fatalf("synDrops=%d resets=%d, want 1/0", s.Stats.SynDrops, resets)
	}
	// The connection is still pending: a retried SYN can succeed after
	// the queue drains.
	if c2.State != StateNew {
		t.Fatalf("silently dropped conn state = %v, want StateNew", c2.State)
	}
}

func TestAbortedConnDiscardedAtAccept(t *testing.T) {
	s, _ := testStack(t, AffinityAccept, 6)
	conn := handshake(t, s, 1)
	s.ClientAbort(s.Eng, conn)
	runFor(s, 0.01)
	var accepted *Conn
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		accepted = s.Accept(c)
	})
	runFor(s, 0.02)
	if accepted != nil {
		t.Fatal("aborted connection was accepted")
	}
	if conn.State != StateClosed {
		t.Fatalf("aborted conn state = %v", conn.State)
	}
}

func TestImplicitHandshakeAckFromData(t *testing.T) {
	s, _ := testStack(t, AffinityAccept, 6)
	conn := s.NewConn(keyForCore(s, 1), nil)
	s.Deliver = func(e *sim.Engine, c *Conn, kind uint8, bytes int) {}
	s.ClientSend(s.Eng, conn, PktSYN, 66, 0, 0)
	runFor(s, 0.01)
	// The ACK3 is lost; the first request must complete the handshake.
	s.ClientSend(s.Eng, conn, PktREQ, 400, 500, 1)
	runFor(s, 0.01)
	if conn.State != StateQueued {
		t.Fatalf("state = %v, want queued via implicit ack", conn.State)
	}
	if !conn.Readable() {
		t.Fatal("request data lost during implicit handshake")
	}
}

func TestFineAcceptRoundRobins(t *testing.T) {
	s, _ := testStack(t, FineAccept, 6)
	for i := 0; i < 3; i++ {
		handshake(t, s, i)
	}
	got := map[*Conn]bool{}
	s.Eng.OnCore(5, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		for {
			conn := s.Accept(c)
			if conn == nil {
				break
			}
			got[conn] = true
		}
	})
	runFor(s, 0.05)
	if len(got) != 3 {
		t.Fatalf("fine accept drained %d of 3 queues", len(got))
	}
}

func TestStealingFromBusyCore(t *testing.T) {
	s := NewStack(Config{
		Machine: mem.AMD48().WithCores(2),
		Listen:  AffinityAccept,
		Backlog: 8, // 4 per core
		Seed:    1,
	})
	s.App = &testApp{s: s}
	// Overfill core 0's queue to mark it busy.
	for i := 0; i < 5; i++ {
		k := keyForCore(s, 0)
		k.SrcPort += uint16(i * s.flow.Groups())
		c := s.NewConn(k, nil)
		s.ClientSend(s.Eng, c, PktSYN, 66, 0, 0)
		runFor(s, 0.001)
		s.ClientSend(s.Eng, c, PktACK3, 66, 0, 0)
		runFor(s, 0.001)
	}
	if !s.Queues().Busy(0) {
		t.Skip("core 0 not busy in this configuration")
	}
	var stolen *Conn
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		stolen = s.Accept(c)
	})
	runFor(s, 0.02)
	if stolen == nil {
		t.Fatal("idle core failed to steal from busy core")
	}
	if s.Queues().Steals == 0 {
		t.Fatal("steal not counted")
	}
}

func TestTwentyPolicyUpdatesFDir(t *testing.T) {
	s := NewStack(Config{
		Machine: mem.AMD48().WithCores(6),
		Listen:  StockAccept,
		NICMode: nic.ModePerFlowFDir,
		Seed:    1,
	})
	app := &testApp{s: s}
	s.App = app
	conn := handshake(t, s, 1)
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) { s.Accept(c) })
	runFor(s, 0.02)
	// 21 single-segment responses: the 20th transmitted packet triggers
	// one FDir insert.
	s.Eng.OnCore(1, s.Eng.Now(), func(e *sim.Engine, c *sim.Core) {
		for i := 0; i < 21; i++ {
			s.Writev(c, conn, 100)
		}
	})
	runFor(s, 0.05)
	if s.NIC.Stats.FDirInserts < 1 {
		t.Fatal("twenty-policy made no FDir updates")
	}
}

func TestLockStatEnablesOverhead(t *testing.T) {
	s := NewStack(Config{
		Machine:  mem.AMD48().WithCores(2),
		Listen:   StockAccept,
		LockStat: true,
		Seed:     1,
	})
	app := &testApp{s: s}
	s.App = app
	handshake(t, s, 0)
	if s.listenLock.Overhead == 0 {
		t.Fatal("lock_stat overhead not applied")
	}
	st := s.ListenLockStats()
	if st.Acquisitions == 0 {
		t.Fatal("no lock activity recorded")
	}
}

func TestPerCoreRequestTableSurvivesCrossCoreAck(t *testing.T) {
	s := NewStack(Config{
		Machine:         mem.AMD48().WithCores(4),
		Listen:          AffinityAccept,
		ReqTablePerCore: true,
		Seed:            1,
	})
	app := &testApp{s: s}
	s.App = app
	conn := s.NewConn(keyForCore(s, 2), nil)
	s.Deliver = func(*sim.Engine, *Conn, uint8, int) {}
	s.ClientSend(s.Eng, conn, PktSYN, 66, 0, 0)
	runFor(s, 0.005)
	// Migrate the flow group so the ACK lands on another core: the
	// lookup must scan the other per-core tables (§5.2).
	s.flow.Migrate(s.flow.GroupOf(conn.Key.SrcPort), 3)
	s.ClientSend(s.Eng, conn, PktACK3, 66, 0, 0)
	runFor(s, 0.005)
	if conn.State != StateQueued {
		t.Fatalf("cross-core ACK lost the request sock: state=%v", conn.State)
	}
	if conn.SoftirqCore != 3 {
		t.Fatalf("softirq core = %d after migration", conn.SoftirqCore)
	}
}

func TestTrackedTypesHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, ti := range TrackedTypes() {
		if seen[ti.Name] {
			t.Fatalf("duplicate type name %s", ti.Name)
		}
		seen[ti.Name] = true
	}
	if !seen["tcp_sock"] || !seen["sk_buff"] {
		t.Fatal("core types missing")
	}
}

func TestListenKindString(t *testing.T) {
	if StockAccept.String() != "Stock-Accept" ||
		FineAccept.String() != "Fine-Accept" ||
		AffinityAccept.String() != "Affinity-Accept" {
		t.Fatal("kind names wrong")
	}
}
