package tcp

import (
	"affinityaccept/internal/core"
	"affinityaccept/internal/nic"
	"affinityaccept/internal/sim"
)

// Client-facing API: the workload generator creates connections and
// injects packets on the wire; the stack delivers responses through the
// Deliver callback.

// NewConn registers a new client connection handle. The connection does
// not exist server-side until its SYN is processed.
func (s *Stack) NewConn(key core.FlowKey, clientData interface{}) *Conn {
	conn := &Conn{
		Key:          key,
		State:        StateNew,
		SoftirqCore:  -1,
		AppCore:      -1,
		reqTableCore: -1,
		rfsCore:      -1,
		ClientData:   clientData,
	}
	s.liveConns[conn] = struct{}{}
	return conn
}

// ClientSend puts a client packet on the wire; it reaches the server's
// NIC half an RTT later. respBytes rides along on request packets to
// tell the simulated server how large a response to produce; seq is the
// client's request serial, used server-side to discard retransmitted
// segments already received.
func (s *Stack) ClientSend(e *sim.Engine, conn *Conn, kind uint8, bytes, respBytes, seq int) {
	pkt := &nic.Packet{
		Key:   conn.Key,
		Bytes: bytes,
		Kind:  kind,
		Conn:  conn,
		Seq:   uint32(seq),
		Aux:   uint32(respBytes),
	}
	e.After(s.Cfg.Costs.HalfRTT, func(e *sim.Engine, _ *sim.Core) {
		s.NIC.Rx(e, pkt)
	})
}

// ClientAbort abandons a connection from the client side (httperf's
// 10-second give-up in §6.5): a FIN/RST travels to the server and
// whatever state exists is torn down through the normal paths.
func (s *Stack) ClientAbort(e *sim.Engine, conn *Conn) {
	if conn.State == StateClosed {
		return
	}
	conn.aborted = true
	s.ClientSend(e, conn, PktFIN, s.Cfg.Costs.AckBytes, 0, 0)
}
