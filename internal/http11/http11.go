// Package http11 holds the byte-level HTTP/1.1 primitives shared by
// the server-side parser (httpaff) and the client-side relay parser
// (proxyaff). Everything here is allocation-free and inlinable — these
// run on both layers' zero-allocation hot paths.
package http11

// EqualFold reports whether b equals the lowercase ASCII string s,
// folding A-Z, without allocating.
func EqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// TrimOWS strips optional whitespace (SP / HTAB) from both ends.
func TrimOWS(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// TokenListContains reports whether the comma-separated token list
// (a Connection header value, e.g. "close, TE") contains the lowercase
// token s, ASCII case-insensitively, ignoring optional whitespace
// around tokens.
func TokenListContains(list []byte, s string) bool {
	for len(list) > 0 {
		var tok []byte
		if i := indexComma(list); i >= 0 {
			tok, list = list[:i], list[i+1:]
		} else {
			tok, list = list, nil
		}
		if EqualFold(TrimOWS(tok), s) {
			return true
		}
	}
	return false
}

func indexComma(b []byte) int {
	for i := 0; i < len(b); i++ {
		if b[i] == ',' {
			return i
		}
	}
	return -1
}
