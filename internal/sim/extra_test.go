package sim

import "testing"

func TestSleepAndStallAccounting(t *testing.T) {
	e := newTestEngine(1)
	e.OnCore(0, 0, func(_ *Engine, c *Core) {
		c.Stall(100)
		c.Sleep(50)
		c.AddIdle(5)
		if c.Now() != 150 {
			t.Errorf("clock %d", c.Now())
		}
		if c.BusyCycles() != 100 || c.IdleCycles() != 55 {
			t.Errorf("busy=%d idle=%d", c.BusyCycles(), c.IdleCycles())
		}
	})
	e.Run(1000)
}

func TestGlobalNowTracksDispatch(t *testing.T) {
	e := newTestEngine(1)
	e.OnCore(0, 123, func(_ *Engine, c *Core) {
		c.Charge(10_000) // local clock runs ahead
		if c.GlobalNow() != 123 {
			t.Errorf("global now %d, want dispatch time 123", c.GlobalNow())
		}
	})
	e.Run(1000_000)
	// Without an engine the fallback is the local clock.
	orphan := &Core{now: 7}
	if orphan.GlobalNow() != 7 {
		t.Error("orphan core fallback wrong")
	}
}

func TestDeferUserAccumulates(t *testing.T) {
	e := newTestEngine(1)
	c := e.Cores[0]
	c.UserShare = 0.5
	e.OnCore(0, 0, func(_ *Engine, c *Core) {
		s1 := c.Now()
		c.Charge(100)
		first := c.DeferUser(s1)
		s2 := c.Now()
		c.Charge(100)
		second := c.DeferUser(s2)
		// Debt accumulates across turns.
		if second <= first {
			t.Errorf("debt did not accumulate: %d then %d", first, second)
		}
	})
	e.Run(1 << 30)
}

func TestEventsCounter(t *testing.T) {
	e := newTestEngine(1)
	for i := 0; i < 5; i++ {
		e.At(Time(i), func(*Engine, *Core) {})
	}
	e.Run(100)
	if e.Events() != 5 {
		t.Fatalf("events = %d", e.Events())
	}
}
