// Package sim is the discrete-event simulation engine underneath the
// Affinity-Accept reproduction: it supplies the virtual multicore
// machine on which the evaluation of §6 is re-run, standing in for the
// paper's 48-core AMD and 80-core Intel testbeds (§2, Table 1).
//
// Virtual time is measured in CPU cycles. A single min-heap of events
// drives the run; every event either targets a core (kernel or
// application work that occupies that core's timeline) or is global
// (client-side workload actions, NIC wire delays, timers).
//
// Each core keeps a busyUntil timestamp. When a core event is dispatched
// its handler starts at max(event time, busyUntil); the positive gap when
// the core was free is recorded as idle time. Handlers advance the core's
// clock with Charge and related helpers, and the engine stores the new
// busyUntil when the handler returns. This "timeline" model resolves CPU
// contention, lock serialization and queueing without simulating
// individual instructions.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in CPU cycles since simulation start.
type Time uint64

// Cycles is a duration in CPU cycles.
type Cycles = Time

// Handler is the body of an event. It runs on the engine goroutine; the
// core argument is the executing core's context, or nil for global events.
type Handler func(e *Engine, c *Core)

type event struct {
	at      Time
	seq     uint64
	core    int // -1 for global events
	handler Handler
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Core is one simulated CPU core's execution context.
type Core struct {
	ID   int
	Chip int

	// Eng points back to the owning engine, giving handlers access to
	// the global (monotone) event clock for cross-core resources.
	Eng *Engine

	// now is the core-local clock while a handler is running.
	now Time
	// busyUntil is the end of the last work executed on this core.
	busyUntil Time
	// idle accumulates cycles the core spent with nothing to run.
	idle Cycles
	// busy accumulates cycles of executed work.
	busy Cycles

	// UserShare caps the fraction of this core available to
	// process-context (user) work, modelling CFS shares against
	// CPU-bound competitors: 0 or 1 means uncontended. Interrupt work
	// is never paced — it preempts everything.
	UserShare float64
	// userFreeAt is when share-constrained user work may next run.
	userFreeAt Time

	// Data is substrate-owned per-core state (TCP stack, scheduler, NIC
	// ring bindings). The engine never inspects it.
	Data interface{}
}

// DeferUser accounts the user work executed since start against the
// core's UserShare and returns the earliest time further user work may
// run: a task that consumed d cycles of CPU must wait d*(1/share-1)
// before its next turn against always-runnable competitors. Deferral —
// rather than stretching the work in place — caps the user-work rate at
// the share while leaving the remaining core time to the competitor,
// exactly what a fair-share scheduler does; backlog then accumulates in
// the application's queues where the balancer can see it.
func (c *Core) DeferUser(start Time) Time {
	if c.UserShare <= 0 || c.UserShare >= 1 {
		return c.now
	}
	if c.userFreeAt < c.now {
		c.userFreeAt = c.now
	}
	if c.now > start {
		used := float64(c.now - start)
		c.userFreeAt += Time(used * (1/c.UserShare - 1))
	}
	return c.userFreeAt
}

// UserEligibleAt reports when user-context work may next run on this
// core (now, when the core is not share-constrained).
func (c *Core) UserEligibleAt() Time {
	if c.userFreeAt < c.now {
		return c.now
	}
	return c.userFreeAt
}

// Now reports the core-local clock. Valid only inside a handler running
// on this core.
func (c *Core) Now() Time { return c.now }

// SetNow advances the core-local clock to t (used when a handler must
// wait on an external resource such as a lock that frees in the future).
// Time never moves backwards.
func (c *Core) SetNow(t Time) {
	if t > c.now {
		c.busy += Cycles(t - c.now)
		c.now = t
	}
}

// Charge advances the core's clock by d cycles of busy work.
func (c *Core) Charge(d Cycles) {
	c.now += d
	c.busy += d
}

// Stall advances the core's clock by d cycles without counting the time
// as useful work (the caller accounts it separately, e.g. as lock wait).
func (c *Core) Stall(d Cycles) {
	c.now += d
	c.busy += d
}

// BusyUntil reports the end of the last scheduled work on this core.
func (c *Core) BusyUntil() Time { return c.busyUntil }

// IdleCycles reports accumulated idle time.
func (c *Core) IdleCycles() Cycles { return c.idle }

// BusyCycles reports accumulated executed work.
func (c *Core) BusyCycles() Cycles { return c.busy }

// AddIdle accounts d cycles of idleness without moving the clock; used by
// blocking primitives (mutex-mode socket locks park the caller).
func (c *Core) AddIdle(d Cycles) { c.idle += d }

// Sleep advances the clock by d cycles of idleness (the core is parked:
// time passes but no work executes).
func (c *Core) Sleep(d Cycles) {
	c.now += d
	c.idle += d
}

// Engine is the discrete-event simulator.
type Engine struct {
	Cores []*Core
	Rand  *rand.Rand

	// Freq is the simulated core clock in cycles per second.
	Freq uint64

	heap   eventHeap
	seq    uint64
	now    Time
	nEvent uint64

	// stop aborts the run loop when set by a handler.
	stop bool
}

// Config configures an Engine.
type Config struct {
	Cores        int
	CoresPerChip int
	// ChipOf, when non-nil, assigns each core an explicit chip and
	// overrides CoresPerChip. Uneven assignments are allowed — the
	// topology-simulation harness uses this to model machines whose
	// workers are spread irregularly across chips.
	ChipOf []int
	// Freq is cycles per second; the paper's machines run at 2.4 GHz.
	Freq uint64
	Seed int64
}

// DefaultFreq is the clock rate of both evaluation machines in the paper.
const DefaultFreq = 2_400_000_000

// New creates an engine with the given core count and topology.
func New(cfg Config) *Engine {
	if cfg.Cores <= 0 {
		panic("sim: need at least one core")
	}
	if cfg.CoresPerChip <= 0 {
		cfg.CoresPerChip = cfg.Cores
	}
	if cfg.ChipOf != nil && len(cfg.ChipOf) != cfg.Cores {
		panic("sim: ChipOf must assign every core a chip")
	}
	if cfg.Freq == 0 {
		cfg.Freq = DefaultFreq
	}
	e := &Engine{
		Rand: rand.New(rand.NewSource(cfg.Seed)),
		Freq: cfg.Freq,
	}
	for i := 0; i < cfg.Cores; i++ {
		chip := i / cfg.CoresPerChip
		if cfg.ChipOf != nil {
			chip = cfg.ChipOf[i]
		}
		e.Cores = append(e.Cores, &Core{ID: i, Chip: chip, Eng: e})
	}
	return e
}

// GlobalNow reports the engine's monotone event-dispatch clock. Unlike
// per-core clocks, which drift ahead while a handler runs, this value
// never decreases between events, which makes it the right anchor for
// cross-core queueing resources (locks, memory controllers).
func (c *Core) GlobalNow() Time {
	if c.Eng == nil {
		return c.now
	}
	return c.Eng.Now()
}

// Now reports the engine's global clock: the time of the event currently
// being dispatched.
func (e *Engine) Now() Time { return e.now }

// Events reports how many events have been dispatched.
func (e *Engine) Events() uint64 { return e.nEvent }

// At schedules a global event at absolute time t.
func (e *Engine) At(t Time, h Handler) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, core: -1, handler: h})
}

// After schedules a global event d cycles from the global clock.
func (e *Engine) After(d Cycles, h Handler) { e.At(e.now+d, h) }

// OnCore schedules an event on a core at absolute time t. If the core is
// busy at t the handler starts when the core frees up.
func (e *Engine) OnCore(core int, t Time, h Handler) {
	if core < 0 || core >= len(e.Cores) {
		panic(fmt.Sprintf("sim: no such core %d", core))
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, core: core, handler: h})
}

// Stop aborts the run loop after the current event completes.
func (e *Engine) Stop() { e.stop = true }

// Run dispatches events until the heap empties, the global clock passes
// until, or Stop is called. It returns the final global time.
func (e *Engine) Run(until Time) Time {
	e.stop = false
	for len(e.heap) > 0 && !e.stop {
		ev := heap.Pop(&e.heap).(event)
		if ev.at > until {
			// Push back so a later Run can resume exactly here.
			heap.Push(&e.heap, ev)
			e.now = until
			return e.now
		}
		e.now = ev.at
		e.nEvent++
		if ev.core < 0 {
			ev.handler(e, nil)
			continue
		}
		c := e.Cores[ev.core]
		start := ev.at
		if c.busyUntil > start {
			start = c.busyUntil
		} else {
			c.idle += Cycles(start - c.busyUntil)
		}
		c.now = start
		ev.handler(e, c)
		if c.now > c.busyUntil {
			c.busyUntil = c.now
		}
	}
	if len(e.heap) == 0 && e.now < until {
		e.now = until
	}
	return e.now
}

// Seconds converts a cycle duration to seconds at the engine frequency.
func (e *Engine) Seconds(d Cycles) float64 { return float64(d) / float64(e.Freq) }

// CyclesOf converts seconds to cycles at the engine frequency.
func (e *Engine) CyclesOf(sec float64) Cycles { return Cycles(sec * float64(e.Freq)) }

// Millis converts milliseconds to cycles.
func (e *Engine) Millis(ms float64) Cycles { return e.CyclesOf(ms / 1e3) }

// Micros converts microseconds to cycles.
func (e *Engine) Micros(us float64) Cycles { return e.CyclesOf(us / 1e6) }

// TotalIdle sums idle cycles across cores, including trailing idleness up
// to the given horizon.
func (e *Engine) TotalIdle(horizon Time) Cycles {
	var idle Cycles
	for _, c := range e.Cores {
		idle += c.idle
		if horizon > c.busyUntil {
			idle += Cycles(horizon - c.busyUntil)
		}
	}
	return idle
}
