package sim

import (
	"testing"
	"testing/quick"
)

func newTestEngine(cores int) *Engine {
	return New(Config{Cores: cores, CoresPerChip: 6, Seed: 1})
}

func TestEventOrdering(t *testing.T) {
	e := newTestEngine(1)
	var order []int
	e.At(300, func(*Engine, *Core) { order = append(order, 3) })
	e.At(100, func(*Engine, *Core) { order = append(order, 1) })
	e.At(200, func(*Engine, *Core) { order = append(order, 2) })
	e.Run(1000)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := newTestEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func(*Engine, *Core) { order = append(order, i) })
	}
	e.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCoreQueueingDelaysWork(t *testing.T) {
	e := newTestEngine(1)
	var secondStart Time
	e.OnCore(0, 100, func(_ *Engine, c *Core) { c.Charge(500) })
	e.OnCore(0, 200, func(_ *Engine, c *Core) { secondStart = c.Now() })
	e.Run(10_000)
	if secondStart != 600 {
		t.Fatalf("second event started at %d, want 600 (after first's work)", secondStart)
	}
}

func TestIdleAccounting(t *testing.T) {
	e := newTestEngine(1)
	e.OnCore(0, 100, func(_ *Engine, c *Core) { c.Charge(50) })
	e.OnCore(0, 1000, func(_ *Engine, c *Core) { c.Charge(10) })
	e.Run(10_000)
	c := e.Cores[0]
	// Idle: 0->100 (100) plus 150->1000 (850).
	if c.IdleCycles() != 950 {
		t.Fatalf("idle = %d, want 950", c.IdleCycles())
	}
	if c.BusyCycles() != 60 {
		t.Fatalf("busy = %d, want 60", c.BusyCycles())
	}
}

func TestRunHorizonPausesAndResumes(t *testing.T) {
	e := newTestEngine(1)
	fired := 0
	e.At(500, func(*Engine, *Core) { fired++ })
	if got := e.Run(400); got != 400 {
		t.Fatalf("Run returned %d, want horizon 400", got)
	}
	if fired != 0 {
		t.Fatal("event fired before horizon")
	}
	e.Run(1000)
	if fired != 1 {
		t.Fatal("event lost across Run calls")
	}
}

func TestStop(t *testing.T) {
	e := newTestEngine(1)
	count := 0
	e.At(1, func(en *Engine, _ *Core) { count++; en.Stop() })
	e.At(2, func(*Engine, *Core) { count++ })
	e.Run(100)
	if count != 1 {
		t.Fatalf("Stop did not halt dispatch: count=%d", count)
	}
	// A later Run picks the remaining event back up.
	e.Run(100)
	if count != 2 {
		t.Fatal("remaining event lost after Stop")
	}
}

func TestHandlerSchedulesMore(t *testing.T) {
	e := newTestEngine(2)
	hops := 0
	var hop func(en *Engine, c *Core)
	hop = func(en *Engine, c *Core) {
		hops++
		if hops < 5 {
			en.OnCore((c.ID+1)%2, c.Now()+10, hop)
		}
	}
	e.OnCore(0, 0, hop)
	e.Run(1000)
	if hops != 5 {
		t.Fatalf("hops = %d, want 5", hops)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := newTestEngine(1)
	var at Time
	e.At(100, func(en *Engine, _ *Core) {
		en.At(50, func(en2 *Engine, _ *Core) { at = en2.Now() }) // in the past
	})
	e.Run(1000)
	if at != 100 {
		t.Fatalf("past event ran at %d, want clamped to 100", at)
	}
}

func TestSetNowNeverRewinds(t *testing.T) {
	e := newTestEngine(1)
	e.OnCore(0, 100, func(_ *Engine, c *Core) {
		c.Charge(10)
		c.SetNow(50) // earlier: must be ignored
		if c.Now() != 110 {
			t.Errorf("SetNow rewound the clock to %d", c.Now())
		}
		c.SetNow(200)
		if c.Now() != 200 {
			t.Errorf("SetNow failed to advance: %d", c.Now())
		}
	})
	e.Run(1000)
}

func TestUnitConversions(t *testing.T) {
	e := newTestEngine(1)
	if e.CyclesOf(1) != Time(DefaultFreq) {
		t.Fatal("1 second should be Freq cycles")
	}
	if e.Millis(1) != Time(DefaultFreq/1000) {
		t.Fatal("1 ms wrong")
	}
	if e.Micros(1) != Time(DefaultFreq/1_000_000) {
		t.Fatal("1 us wrong")
	}
	if got := e.Seconds(Time(DefaultFreq)); got != 1 {
		t.Fatalf("Seconds(Freq) = %v", got)
	}
}

func TestChipAssignment(t *testing.T) {
	e := New(Config{Cores: 12, CoresPerChip: 6, Seed: 0})
	if e.Cores[0].Chip != 0 || e.Cores[5].Chip != 0 || e.Cores[6].Chip != 1 {
		t.Fatal("chip layout wrong")
	}
}

func TestTotalIdleIncludesTrailing(t *testing.T) {
	e := newTestEngine(2)
	e.OnCore(0, 0, func(_ *Engine, c *Core) { c.Charge(100) })
	e.Run(1000)
	// Core 0: trailing idle 900. Core 1: fully idle 1000.
	if got := e.TotalIdle(1000); got != 1900 {
		t.Fatalf("TotalIdle = %d, want 1900", got)
	}
}

// Property: for any batch of events, dispatch observes global time order.
func TestDispatchMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := newTestEngine(4)
		var seen []Time
		for i, raw := range times {
			tm := Time(raw)
			core := i % 4
			e.OnCore(core, tm, func(en *Engine, _ *Core) {
				seen = append(seen, en.Now())
			})
		}
		e.Run(1 << 30)
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: busy + idle accounting never loses cycles on a single core:
// busyUntil == sum of charged work + idle gaps.
func TestTimelineConservation(t *testing.T) {
	f := func(gaps []uint8) bool {
		e := newTestEngine(1)
		var at Time
		for _, g := range gaps {
			at += Time(g)
			work := Cycles(10)
			e.OnCore(0, at, func(_ *Engine, c *Core) { c.Charge(work) })
		}
		e.Run(1 << 40)
		c := e.Cores[0]
		return c.BusyUntil() == c.BusyCycles()+c.IdleCycles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOnCoreBadCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestEngine(1).OnCore(7, 0, func(*Engine, *Core) {})
}

func BenchmarkEventDispatch(b *testing.B) {
	e := newTestEngine(8)
	var pump func(en *Engine, c *Core)
	n := 0
	pump = func(en *Engine, c *Core) {
		n++
		if n < b.N {
			en.OnCore(n%8, c.Now()+100, pump)
		}
	}
	b.ResetTimer()
	e.OnCore(0, 0, pump)
	e.Run(1 << 62)
}
