package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// checkTableInvariants asserts the structural flow-table properties
// that must hold at every instant: every group owned by exactly one
// in-range core (sum of per-core counts equals the group count — a
// group can be neither lost nor double-owned), and no group steered to
// a core outside [0, cores).
func checkTableInvariants(t *testing.T, counts []int, groups, cores int, context string) {
	t.Helper()
	if len(counts) != cores {
		t.Fatalf("%s: GroupCount over %d cores, want %d", context, len(counts), cores)
	}
	sum := 0
	for c, n := range counts {
		if n < 0 {
			t.Fatalf("%s: core %d owns %d groups", context, c, n)
		}
		sum += n
	}
	if sum != groups {
		t.Fatalf("%s: %d groups accounted for, want %d (a group was lost or double-owned)", context, sum, groups)
	}
}

// TestFlowTablePropertyRandomInterleavings drives random interleavings
// of the operations a live server performs against the flow table —
// accept/requeue routing (Route), queue pressure and stealing
// (Push/Pop), and §3.3.2 balance ticks with a random subset of workers
// marked dead (ineligible) — and asserts after every step that no group
// is lost or double-owned, routing never targets an out-of-range
// worker, and migration never claims a group for a dead worker.
func TestFlowTablePropertyRandomInterleavings(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cores := 2 + rng.Intn(6)
			groups := 1 << (1 + rng.Intn(6))
			q := NewQueues[int](Config{Cores: cores, Backlog: cores * 16, HighPct: 20, LowPct: 5})
			tbl := NewFlowTable(groups, cores)
			groups = tbl.Groups()

			// A random minority of workers is dead: their queues never
			// pop and balance must never migrate a group to them.
			dead := make([]bool, cores)
			for c := range dead {
				if c > 0 && rng.Intn(4) == 0 {
					dead[c] = true
				}
			}
			eligible := func(c int) bool { return !dead[c] }

			deadGroups := func(counts []int) int {
				n := 0
				for c, owned := range counts {
					if dead[c] {
						n += owned
					}
				}
				return n
			}
			// Dead workers start with their diagonal share of groups;
			// they may only ever lose them.
			maxDead := deadGroups(tbl.GroupCount())

			for step := 0; step < 4000; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // accept/requeue routing
					port := uint16(rng.Intn(1 << 16))
					g := tbl.GroupOf(port)
					c := tbl.CoreOf(g)
					if g < 0 || g >= groups {
						t.Fatalf("step %d: port %d routed to group %d of %d", step, port, g, groups)
					}
					if c < 0 || c >= cores {
						t.Fatalf("step %d: group %d routed to worker %d of %d", step, g, c, cores)
					}
					tbl.ObserveLoad(g, 1)
					q.Push(c, step)
				case 4, 5, 6: // live workers pop (and steal)
					c := rng.Intn(cores)
					if !dead[c] {
						q.Pop(c)
					}
				case 7: // idle decay on a live worker
					c := rng.Intn(cores)
					if !dead[c] {
						q.ObserveIdle(c, 1+rng.Intn(20))
					}
				case 8, 9: // §3.3.2 balance tick
					moves := BalanceRecord(tbl, q, eligible)
					for _, m := range moves {
						if m.To < 0 || m.To >= cores {
							t.Fatalf("step %d: migration %+v targets out-of-range worker", step, m)
						}
						if dead[m.To] {
							t.Fatalf("step %d: migration %+v targets dead worker", step, m)
						}
						if m.Group < 0 || m.Group >= groups {
							t.Fatalf("step %d: migration %+v of nonexistent group", step, m)
						}
						if got := tbl.CoreOf(m.Group); got != m.To {
							t.Fatalf("step %d: migration %+v not applied (owner %d)", step, m, got)
						}
					}
				}
				counts := tbl.GroupCount()
				checkTableInvariants(t, counts, groups, cores, fmt.Sprintf("step %d", step))
				if n := deadGroups(counts); n > maxDead {
					t.Fatalf("step %d: dead workers own %d groups, up from %d — a group migrated to a dead worker", step, n, maxDead)
				} else {
					maxDead = n
				}
			}
		})
	}
}

// TestGuardedFlowTablePropertyConcurrent is the same contract under
// real concurrency, shaped like the serve package's use: acceptor
// goroutines route and charge load, worker goroutines push/pop, and a
// migration goroutine runs balance ticks through the nested-lock
// BalanceTable path — all while a reader snapshots. Run under -race
// this is the proof the lock protocol covers every table access; the
// assertions are the same no-lost-groups / in-range-owner invariants.
func TestGuardedFlowTablePropertyConcurrent(t *testing.T) {
	const (
		cores  = 4
		groups = 32
		dur    = 200 * time.Millisecond
	)
	g := NewGuarded[int](Config{Cores: cores, Backlog: cores * 16, HighPct: 20, LowPct: 5})
	tbl := NewGuardedFlowTable(groups, cores)
	eligible := func(c int) bool { return c != 3 } // worker 3 is dead

	var stop atomic.Bool
	var bad atomic.Value // first invariant violation, reported after join
	fail := func(msg string) {
		if bad.CompareAndSwap(nil, msg) {
			stop.Store(true)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ { // acceptors
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				_, worker := tbl.Route(uint16(rng.Intn(1<<16)), 1)
				if worker < 0 || worker >= cores {
					fail(fmt.Sprintf("Route returned worker %d of %d", worker, cores))
					return
				}
				g.Push(worker, 1)
			}
		}(int64(i + 100))
	}
	for c := 0; c < cores; c++ { // workers (the dead one never pops)
		if c == 3 {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for !stop.Load() {
				if _, _, ok := g.Pop(c); !ok {
					g.ObserveIdle(c, 5)
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() { // migration loop
		defer wg.Done()
		for !stop.Load() {
			for _, m := range g.BalanceTable(tbl, eligible) {
				if m.To == 3 || m.To < 0 || m.To >= cores {
					fail(fmt.Sprintf("migration %+v targets dead/out-of-range worker", m))
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // stats reader
		defer wg.Done()
		for !stop.Load() {
			counts := tbl.GroupCount()
			sum := 0
			for _, n := range counts {
				sum += n
			}
			if sum != tbl.Groups() {
				fail(fmt.Sprintf("snapshot accounts for %d of %d groups", sum, tbl.Groups()))
				return
			}
			tbl.Migrations()
		}
	}()

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if msg := bad.Load(); msg != nil {
		t.Fatal(msg)
	}
	checkTableInvariants(t, tbl.GroupCount(), tbl.Groups(), cores, "final")
}
