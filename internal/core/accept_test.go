package core

import (
	"testing"
	"testing/quick"
)

func qcfg(cores, backlog int) Config { return Config{Cores: cores, Backlog: backlog} }

func TestConfigDefaults(t *testing.T) {
	q := NewQueues[int](Config{Cores: 4})
	if q.MaxLocalLen() != DefaultBacklogPerCore {
		t.Fatalf("default max local = %d", q.MaxLocalLen())
	}
	high, low := q.Watermarks()
	if high != float64(DefaultBacklogPerCore)*0.75 || low != float64(DefaultBacklogPerCore)*0.10 {
		t.Fatalf("watermarks %v/%v", high, low)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Cores: 0},
		{Cores: 2, HighPct: 10, LowPct: 50},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", bad)
				}
			}()
			NewQueues[int](bad)
		}()
	}
}

func TestPushPopFIFO(t *testing.T) {
	q := NewQueues[int](qcfg(2, 16))
	for i := 0; i < 5; i++ {
		if !q.Push(0, i) {
			t.Fatalf("push %d rejected", i)
		}
	}
	for i := 0; i < 5; i++ {
		v, from, ok := q.Pop(0)
		if !ok || v != i || from != 0 {
			t.Fatalf("pop %d: got v=%d from=%d ok=%v", i, v, from, ok)
		}
	}
	if _, _, ok := q.Pop(0); ok {
		t.Fatal("pop from empty should fail")
	}
}

func TestOverflowDropsAndMarksBusy(t *testing.T) {
	q := NewQueues[int](qcfg(2, 8)) // 4 per core
	for i := 0; i < 4; i++ {
		if !q.Push(0, i) {
			t.Fatalf("push %d rejected early", i)
		}
	}
	if q.Push(0, 99) {
		t.Fatal("overflow push accepted")
	}
	if q.Drops != 1 {
		t.Fatalf("drops = %d", q.Drops)
	}
	if !q.Busy(0) {
		t.Fatal("overflowed core not marked busy")
	}
}

func TestHighWatermarkMarksBusy(t *testing.T) {
	q := NewQueues[int](qcfg(1, 100)) // maxLocal 100, high 75
	for i := 0; i < 75; i++ {
		q.Push(0, i)
	}
	if q.Busy(0) {
		t.Fatal("busy before crossing high watermark")
	}
	q.Push(0, 75) // length 76 > 75
	if !q.Busy(0) {
		t.Fatal("not busy after crossing high watermark")
	}
}

func TestBusyClearsOnlyWhenEWMALow(t *testing.T) {
	q := NewQueues[int](qcfg(2, 200)) // 100/core, high 75, low 10
	for i := 0; i < 80; i++ {
		q.Push(0, i)
	}
	if !q.Busy(0) {
		t.Fatal("core should be busy")
	}
	// Drain fully; instantaneous length is 0 but EWMA is still high, so a
	// single check must not clear busy.
	for {
		if _, _, ok := q.Pop(0); !ok {
			break
		}
	}
	if !q.Busy(0) {
		t.Fatal("busy cleared while EWMA still above low watermark")
	}
	// Push/pop one connection at a time: queue stays near empty, EWMA
	// decays below low, then busy clears.
	for i := 0; i < 2000 && q.Busy(0); i++ {
		q.Push(0, i)
		q.Pop(0)
	}
	if q.Busy(0) {
		t.Fatalf("busy never cleared; EWMA=%v low=%v", q.EWMAValue(0), 10.0)
	}
}

func TestBusyVectorSnapshot(t *testing.T) {
	q := NewQueues[int](qcfg(70, 70)) // 1 per core
	q.Push(3, 1)
	q.Push(3, 2) // overflow -> busy
	q.Push(69, 1)
	q.Push(69, 2)
	v := q.BusyVector()
	if v[0]&(1<<3) == 0 || v[1]&(1<<5) == 0 {
		t.Fatalf("busy vector wrong: %x", v)
	}
}

func TestStealOnlyFromBusy(t *testing.T) {
	q := NewQueues[int](qcfg(2, 40)) // 20/core
	// Core 1 has connections but is NOT busy: its own thread is about
	// to serve them, so core 0 must leave them alone.
	q.Push(1, 42)
	if _, _, ok := q.Pop(0); ok {
		t.Fatal("stole from a non-busy core")
	}
	// Once core 1 is marked busy (overflow), stealing is allowed.
	for i := 0; i < 25; i++ {
		q.Push(1, i)
	}
	if !q.Busy(1) {
		t.Fatal("expected busy after overflow")
	}
	if _, from, ok := q.Pop(0); !ok || from != 1 {
		t.Fatalf("expected steal from busy core 1: from=%d ok=%v", from, ok)
	}
}

func TestBusyCoresNeverSteal(t *testing.T) {
	q := NewQueues[int](qcfg(2, 4)) // 2/core
	// Make core 0 busy via overflow.
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(0, 3) // dropped, busy set
	// Core 1 also busy with queued work.
	q.Push(1, 10)
	q.Push(1, 11)
	q.Push(1, 12)
	// Drain core 0's local queue.
	q.Pop(0)
	q.Pop(0)
	// Core 0 is still busy (EWMA high): it must not steal from core 1.
	if _, _, ok := q.Pop(0); ok {
		t.Fatal("busy core stole a connection")
	}
}

func TestProportionalShareRatio(t *testing.T) {
	q := NewQueues[int](qcfg(2, 200))
	// Make core 1 permanently busy with a deep queue.
	for i := 0; i < 90; i++ {
		q.Push(1, i)
	}
	if !q.Busy(1) {
		t.Fatal("victim not busy")
	}
	locals, steals := 0, 0
	for i := 0; i < 600; i++ {
		// Keep core 0 supplied and core 1 topped up so both choices are
		// always available ("when both types are available").
		if q.Len(0) < 5 {
			q.Push(0, 1000+i)
		}
		if q.Len(1) < 85 {
			q.Push(1, 2000+i)
		}
		_, from, ok := q.Pop(0)
		if !ok {
			t.Fatal("pop failed with both queues non-empty")
		}
		if from == 0 {
			locals++
		} else {
			steals++
		}
	}
	if steals == 0 {
		t.Fatal("no steals despite busy remote")
	}
	ratio := float64(locals) / float64(steals)
	if ratio < 4 || ratio > 6.5 {
		t.Fatalf("local:remote ratio = %.2f, want ~5", ratio)
	}
}

func TestRoundRobinVictims(t *testing.T) {
	q := NewQueues[int](Config{Cores: 4, Backlog: 16, StealRatio: 1})
	// Cores 1, 2, 3 all busy with work.
	for _, v := range []int{1, 2, 3} {
		for i := 0; i < 4; i++ {
			q.Push(v, v*100+i)
		}
		q.Push(v, 999) // overflow -> busy
	}
	victims := map[int]int{}
	for i := 0; i < 9; i++ {
		q.Push(0, i) // keep one local accept between steals
		_, from, ok := q.Pop(0)
		if !ok {
			t.Fatal("pop failed")
		}
		if from != 0 {
			victims[from]++
		}
	}
	if len(victims) < 2 {
		t.Fatalf("steals not spread round-robin: %v", victims)
	}
}

func TestPopScanPrefersBusyRemotes(t *testing.T) {
	q := NewQueues[int](qcfg(3, 12)) // 4/core
	// Core 1: non-busy with work; core 2: busy with work.
	q.Push(1, 100)
	for i := 0; i < 4; i++ {
		q.Push(2, 200+i)
	}
	q.Push(2, 999) // overflow -> busy
	_, from, ok := q.Pop(0)
	if !ok || from != 2 {
		t.Fatalf("expected steal from busy core 2, got from=%d", from)
	}
}

func TestStolenFromAndReset(t *testing.T) {
	q := NewQueues[int](Config{Cores: 2, Backlog: 8, StealRatio: 1})
	for i := 0; i < 4; i++ {
		q.Push(1, i)
	}
	q.Push(1, 9) // busy
	q.Push(0, 7)
	q.Pop(0) // local
	q.Pop(0) // steal due
	counts := q.StolenFrom(0)
	if counts[1] != 1 {
		t.Fatalf("stolenFrom = %v", counts)
	}
	q.ResetSteals(0)
	if q.StolenFrom(0)[1] != 0 {
		t.Fatal("reset failed")
	}
}

// Property: no connection is ever lost or duplicated through any mix of
// pushes and pops across cores.
func TestConservationProperty(t *testing.T) {
	type op struct {
		Core uint8
		Push bool
		Val  uint16
	}
	f := func(ops []op) bool {
		const cores = 4
		q := NewQueues[uint16](Config{Cores: cores, Backlog: 32})
		pushed := map[uint16]int{}
		popped := map[uint16]int{}
		for _, o := range ops {
			c := int(o.Core) % cores
			if o.Push {
				if q.Push(c, o.Val) {
					pushed[o.Val]++
				}
			} else if v, _, ok := q.Pop(c); ok {
				popped[v]++
			}
		}
		// Drain everything left.
		for c := 0; c < cores; c++ {
			for {
				v, _, ok := q.Pop(c)
				if !ok {
					break
				}
				popped[v]++
			}
		}
		// Some connections may remain when all cores are busy and queues
		// non-empty... but the drain above uses Pop on each core which
		// pops locally first, so local queues always drain.
		for v, n := range pushed {
			if popped[v] != n {
				return false
			}
		}
		for v, n := range popped {
			if pushed[v] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue length never exceeds capacity, busy bit always set
// whenever instantaneous length is above the high watermark.
func TestInvariantsProperty(t *testing.T) {
	type op struct {
		Core uint8
		Push bool
	}
	f := func(ops []op) bool {
		const cores = 3
		q := NewQueues[int](Config{Cores: cores, Backlog: 30}) // 10/core
		high, _ := q.Watermarks()
		for i, o := range ops {
			c := int(o.Core) % cores
			if o.Push {
				q.Push(c, i)
			} else {
				q.Pop(c)
			}
			for k := 0; k < cores; k++ {
				if q.Len(k) > q.MaxLocalLen() {
					return false
				}
				if float64(q.Len(k)) > high && !q.Busy(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountersConsistent(t *testing.T) {
	q := NewQueues[int](qcfg(2, 8))
	for i := 0; i < 10; i++ {
		q.Push(i%2, i)
	}
	for {
		if _, _, ok := q.Pop(0); !ok {
			break
		}
	}
	for {
		if _, _, ok := q.Pop(1); !ok {
			break
		}
	}
	if q.Locals+q.Steals+uint64(q.TotalLen()) != q.Pushes-q.Drops {
		t.Fatalf("counter identity violated: locals=%d steals=%d drops=%d pushes=%d left=%d",
			q.Locals, q.Steals, q.Drops, q.Pushes, q.TotalLen())
	}
}
