package core

// FlowKey is a TCP/IP five-tuple, the NIC's steering input.
type FlowKey struct {
	Proto            uint8
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
}

// Hash computes a deterministic flow hash over the five-tuple, standing
// in for the NIC's Toeplitz hash. All packets of one connection hash
// identically, which is the only property steering relies on.
func (k FlowKey) Hash() uint32 {
	// FNV-1a over the packed tuple.
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(b byte) {
		h ^= uint32(b)
		h *= prime
	}
	mix(k.Proto)
	for i := 0; i < 4; i++ {
		mix(byte(k.SrcIP >> (8 * i)))
		mix(byte(k.DstIP >> (8 * i)))
	}
	for i := 0; i < 2; i++ {
		mix(byte(k.SrcPort >> (8 * i)))
		mix(byte(k.DstPort >> (8 * i)))
	}
	return h
}

// Reverse returns the key of the opposite flow direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		Proto:   k.Proto,
		SrcIP:   k.DstIP,
		DstIP:   k.SrcIP,
		SrcPort: k.DstPort,
		DstPort: k.SrcPort,
	}
}
