package core

import "sync"

// Guarded wraps Queues with a single mutex for use from real concurrent
// code (the examples/reuseport demo). The paper's kernel implementation
// uses one lock per queue; a single mutex is enough for a user-space
// demonstration where the queues are not the bottleneck, and it keeps
// the policy code identical to the simulator's.
type Guarded[T any] struct {
	mu sync.Mutex
	q  *Queues[T]
}

// NewGuarded creates mutex-protected accept queues.
func NewGuarded[T any](cfg Config) *Guarded[T] {
	return &Guarded[T]{q: NewQueues[T](cfg)}
}

// Push appends a connection to core's queue; false means overflow.
func (g *Guarded[T]) Push(core int, v T) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.Push(core, v)
}

// Pop accepts a connection on core, applying the stealing policy.
func (g *Guarded[T]) Pop(core int) (T, int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.Pop(core)
}

// Busy reports core's busy flag.
func (g *Guarded[T]) Busy(core int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.Busy(core)
}

// AllBusy reports whether every core's §3.3.1 busy bit is set — the
// whole-server saturation signal overload backpressure keys on. One
// lock acquisition covers all cores, so callers on the accept path pay
// the same as a single Busy probe.
func (g *Guarded[T]) AllBusy() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < g.q.Cores(); i++ {
		if !g.q.Busy(i) {
			return false
		}
	}
	return true
}

// Len reports core's local queue length.
func (g *Guarded[T]) Len(core int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.Len(core)
}

// TotalLen reports queued connections across all cores.
func (g *Guarded[T]) TotalLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.TotalLen()
}

// DiscardAt dequeues directly from queue idx without touching the
// accept counters or EWMA. Forced shutdown paths use it to drain
// queues of connections that will be closed, not served.
func (g *Guarded[T]) DiscardAt(idx int) (T, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.DiscardAt(idx)
}

// Cores reports the configured core count.
func (g *Guarded[T]) Cores() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.Cores()
}

// ObserveIdle folds `samples` observations of the current queue length
// into core's EWMA and re-evaluates the busy bit (see
// Queues.ObserveIdle).
func (g *Guarded[T]) ObserveIdle(core, samples int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.q.ObserveIdle(core, samples)
}

// Balance runs one migration tick against a flow table.
func (g *Guarded[T]) Balance(t *FlowTable) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Balance(t, g.q, nil)
}

// BalanceTable runs one §3.3.2 migration tick against a concurrently
// used flow table and returns the applied migrations. It holds both
// locks — queues first, then table — so routing never observes a
// half-applied tick; this is the only code path that nests the two, so
// the ordering cannot deadlock against acceptors (which take each lock
// separately).
func (g *Guarded[T]) BalanceTable(gt *GuardedFlowTable, eligible func(core int) bool) []Migration {
	return g.BalanceTableFiltered(gt, eligible, nil)
}

// BalanceTableFiltered is BalanceTable with a group veto: groups for
// which groupOK returns false sit the tick out (the adaptive
// controller's oscillation freeze). groupOK is called with both locks
// held and must not touch the balancer or the table.
func (g *Guarded[T]) BalanceTableFiltered(gt *GuardedFlowTable, eligible func(core int) bool, groupOK func(group int) bool) []Migration {
	g.mu.Lock()
	defer g.mu.Unlock()
	gt.mu.Lock()
	defer gt.mu.Unlock()
	return BalanceRecordFiltered(gt.t, g.q, eligible, groupOK)
}

// Stats returns (pushes, locals, steals, drops).
func (g *Guarded[T]) Stats() (pushes, locals, steals, drops uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.q.Pushes, g.q.Locals, g.q.Steals, g.q.Drops
}
