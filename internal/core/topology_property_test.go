package core

import (
	"math/rand"
	"testing"
)

// randomChipOf assigns each of n cores a random chip out of 1–8 chips —
// deliberately uneven (some chips crowded, some possibly empty), the
// worker spreads a real deployment's cgroup masks produce.
func randomChipOf(rng *rand.Rand, n int) (func(int) int, int) {
	chips := 1 + rng.Intn(8)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(chips)
	}
	return func(c int) int { return assign[c] }, chips
}

// stealable mirrors stealFrom's victim test: the victim has queued work
// and its busy bit survives the low-watermark check the scan applies.
func stealable[T any](q *Queues[T], victim int) bool {
	if q.Len(victim) == 0 || !q.Busy(victim) {
		return false
	}
	_, low := q.Watermarks()
	return q.EWMAValue(victim) >= low
}

// TestStealOrderPropertyRandomTopologies is the distance-ordering
// property over random topologies and busy masks: for every core, the
// victim scan order is sorted by non-decreasing chip distance and
// covers every other core exactly once; and every actual steal picks a
// victim at the minimum distance among the cores stealable at that
// moment. CI runs it 50x under -race.
func TestStealOrderPropertyRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(11) // 2–12 cores
		chipOf, chips := randomChipOf(rng, n)
		q := NewQueues[int](Config{
			Cores:   n,
			Backlog: 8 * n, // maxLocal 8, high 6, low 0.8
			ChipOf:  chipOf,
		})

		// Structural invariant: order sorted, complete, tiers consistent.
		for c := 0; c < n; c++ {
			order := q.VictimOrder(c)
			if len(order) != n-1 {
				t.Fatalf("iter %d (%d cores, %d chips): core %d order has %d victims, want %d",
					iter, n, chips, c, len(order), n-1)
			}
			seen := make(map[int]bool, n)
			prev := -1
			for _, v := range order {
				if v == c || seen[v] {
					t.Fatalf("iter %d: core %d order %v repeats or includes self", iter, c, order)
				}
				seen[v] = true
				d := q.Distance(c, v)
				if d < prev {
					t.Fatalf("iter %d: core %d order %v not sorted by distance (%d after %d)",
						iter, c, order, d, prev)
				}
				prev = d
			}
			tiers := q.VictimTiers(c)
			if len(tiers) == 0 || tiers[len(tiers)-1] != n-1 {
				t.Fatalf("iter %d: core %d tiers %v do not cover order of %d", iter, c, tiers, n-1)
			}
			start := 0
			for _, end := range tiers {
				if end <= start {
					t.Fatalf("iter %d: core %d empty tier in %v", iter, c, tiers)
				}
				d0 := q.Distance(c, order[start])
				for i := start; i < end; i++ {
					if q.Distance(c, order[i]) != d0 {
						t.Fatalf("iter %d: core %d tier %v mixes distances", iter, c, order[start:end])
					}
				}
				start = end
			}
		}

		// Behavioral invariant: random busy mask, then steals from a
		// random non-busy thief always hit the nearest stealable tier.
		busyMask := 1 + rng.Intn(1<<(n-1)) // at least one victim busy
		thief := rng.Intn(n)
		for v := 0; v < n; v++ {
			if v == thief || busyMask&(1<<v) == 0 {
				continue
			}
			for i := 0; i < 7; i++ { // cross the high watermark: busy
				q.Push(v, v*100+i)
			}
		}
		for step := 0; step < 10; step++ {
			minDist := -1
			for v := 0; v < n; v++ {
				if v == thief || !stealable(q, v) {
					continue
				}
				if d := q.Distance(thief, v); minDist < 0 || d < minDist {
					minDist = d
				}
			}
			_, from, ok := q.Pop(thief)
			if !ok || from == thief {
				break // nothing stealable left (or a local pop)
			}
			if d := q.Distance(thief, from); d != minDist {
				t.Fatalf("iter %d (%d cores, %d chips): thief %d stole from %d at distance %d, nearest stealable was %d",
					iter, n, chips, thief, from, d, minDist)
			}
		}
	}
}

// TestStealShareWithinTier asserts the paper's 5:1 proportional share
// survives distance ordering: a non-busy core with local work steals
// exactly once per StealRatio local accepts, and each of those steals
// comes from the same-chip victim while one is stealable — the far
// victim is touched only once the near tier is dry.
func TestStealShareWithinTier(t *testing.T) {
	// 3 cores: thief 0 and victim 1 on chip 0, victim 2 on chip 1.
	chip := []int{0, 0, 1}
	q := NewQueues[int](Config{
		Cores:   3,
		Backlog: 24, // maxLocal 8, high 6
		ChipOf:  func(c int) int { return chip[c] },
	})
	const ratio = DefaultStealRatio
	// Keep the thief supplied with local work and both victims busy.
	for i := 0; i < 7; i++ {
		q.Push(1, 100+i)
		q.Push(2, 200+i)
	}
	nearAvail := 7
	localSince := 0
	var nearSteals, farSteals, locals int
	for step := 0; step < 40; step++ {
		if q.Len(0) < 2 {
			q.Push(0, step) // top up local work without crossing busy
		}
		v, from, ok := q.Pop(0)
		if !ok {
			t.Fatalf("step %d: pop failed with work queued", step)
		}
		switch from {
		case 0:
			locals++
			localSince++
			if localSince > ratio {
				t.Fatalf("step %d: %d local accepts without a steal (ratio %d) while victims busy",
					step, localSince, ratio)
			}
		case 1:
			nearSteals++
			nearAvail--
			localSince = 0
		case 2:
			farSteals++
			localSince = 0
			if nearAvail > 0 && stealable(q, 1) {
				t.Fatalf("step %d: stole %d from far victim 2 while same-chip victim 1 still stealable", step, v)
			}
		}
	}
	if nearSteals == 0 {
		t.Fatal("same-chip victim was never stolen from")
	}
	if locals < ratio*nearSteals {
		t.Fatalf("proportional share broken: %d locals for %d near steals (want >= %d)",
			locals, nearSteals, ratio*nearSteals)
	}
}
