package core

import "sync"

// GuardedFlowTable wraps FlowTable with a mutex for use from real
// concurrent code: acceptor goroutines route connections and charge
// group load while a migration goroutine re-points groups. It is the
// flow-table counterpart of Guarded — the paper's kernel locks the FDir
// shadow table the same way around driver reprogramming.
type GuardedFlowTable struct {
	mu sync.Mutex
	t  *FlowTable
}

// NewGuardedFlowTable builds a mutex-protected flow table of nGroups
// groups (rounded up to a power of two) spread evenly over cores.
func NewGuardedFlowTable(nGroups, cores int) *GuardedFlowTable {
	return &GuardedFlowTable{t: NewFlowTable(nGroups, cores)}
}

// Groups reports the number of flow groups (immutable after creation).
func (g *GuardedFlowTable) Groups() int { return g.t.Groups() }

// GroupOf maps a source port to its flow group. The mask is immutable,
// so no lock is needed.
func (g *GuardedFlowTable) GroupOf(srcPort uint16) int { return g.t.GroupOf(srcPort) }

// Route maps a source port to its flow group and the group's current
// owning core, charging `weight` units of load to the group. This is
// the one call an acceptor makes per routed connection.
func (g *GuardedFlowTable) Route(srcPort uint16, weight uint64) (group, core int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	group = g.t.GroupOf(srcPort)
	core = int(g.t.groupOf[group])
	g.t.ObserveLoad(group, weight)
	return group, core
}

// CoreOf reports which core a group is currently steered to.
func (g *GuardedFlowTable) CoreOf(group int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.CoreOf(group)
}

// CoreForPort composes GroupOf and CoreOf without charging load.
func (g *GuardedFlowTable) CoreForPort(srcPort uint16) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.CoreForPort(srcPort)
}

// Migrate re-points one flow group to a new core.
func (g *GuardedFlowTable) Migrate(group, toCore int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.t.Migrate(group, toCore)
}

// Migrations reports the number of applied flow-group migrations.
func (g *GuardedFlowTable) Migrations() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.Migrations
}

// GroupCount reports how many groups are currently steered to each core.
func (g *GuardedFlowTable) GroupCount() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.GroupCount()
}

// LoadOf reports a group's accumulated (decayed) routing activity.
func (g *GuardedFlowTable) LoadOf(group int) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.t.LoadOf(group)
}
