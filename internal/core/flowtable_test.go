package core

import (
	"testing"
	"testing/quick"
)

func TestFlowTableInitialSpread(t *testing.T) {
	ft := NewFlowTable(DefaultFlowGroups, 48)
	counts := ft.GroupCount()
	// 4096 groups over 48 cores: 85 or 86 each.
	for c, n := range counts {
		if n < 85 || n > 86 {
			t.Fatalf("core %d has %d groups", c, n)
		}
	}
	if ft.Groups() != 4096 {
		t.Fatalf("groups = %d", ft.Groups())
	}
}

func TestFlowTableRoundsToPowerOfTwo(t *testing.T) {
	ft := NewFlowTable(100, 4)
	if ft.Groups() != 128 {
		t.Fatalf("groups = %d, want 128", ft.Groups())
	}
}

func TestGroupOfUsesLowPortBits(t *testing.T) {
	ft := NewFlowTable(4096, 8)
	if ft.GroupOf(0x1234) != 0x234 {
		t.Fatalf("group of 0x1234 = %#x, want 0x234", ft.GroupOf(0x1234))
	}
	// Ports differing only above bit 11 land in the same group.
	if ft.GroupOf(0x0042) != ft.GroupOf(0xF042) {
		t.Fatal("high port bits leaked into group")
	}
}

func TestMigrateMovesGroup(t *testing.T) {
	ft := NewFlowTable(16, 4)
	g := 5
	from := ft.CoreOf(g)
	to := (from + 1) % 4
	ft.Migrate(g, to)
	if ft.CoreOf(g) != to {
		t.Fatal("migration did not apply")
	}
	if ft.Migrations != 1 {
		t.Fatalf("migrations = %d", ft.Migrations)
	}
	// Self-migration is a no-op.
	ft.Migrate(g, to)
	if ft.Migrations != 1 {
		t.Fatal("no-op migration counted")
	}
}

func TestMigrateInvalidCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFlowTable(16, 4).Migrate(0, 9)
}

func TestPickMigrationChoosesTopVictim(t *testing.T) {
	ft := NewFlowTable(16, 4)
	stolen := []uint64{0, 3, 7, 1} // core 2 is the top victim
	g, victim, ok := ft.PickMigration(0, stolen)
	if !ok || victim != 2 {
		t.Fatalf("victim = %d ok=%v, want 2", victim, ok)
	}
	if ft.CoreOf(g) != 2 {
		t.Fatal("picked group not owned by victim")
	}
}

func TestPickMigrationIgnoresSelfAndZero(t *testing.T) {
	ft := NewFlowTable(16, 4)
	if _, _, ok := ft.PickMigration(0, []uint64{100, 0, 0, 0}); ok {
		t.Fatal("migrated based on self-steals")
	}
	if _, _, ok := ft.PickMigration(0, []uint64{0, 0, 0, 0}); ok {
		t.Fatal("migrated with no steals")
	}
}

func TestPickMigrationVictimOutOfGroups(t *testing.T) {
	ft := NewFlowTable(4, 4)
	// Strip core 3 of all groups.
	for g := 0; g < ft.Groups(); g++ {
		if ft.CoreOf(g) == 3 {
			ft.Migrate(g, 0)
		}
	}
	if _, _, ok := ft.PickMigration(1, []uint64{0, 0, 0, 9}); ok {
		t.Fatal("migration picked from a core with no groups")
	}
}

func TestInitialOwnerBalancedAndParitySafe(t *testing.T) {
	// Exactly balanced: every core owns the same number of groups ±1.
	for _, cores := range []int{2, 4, 7, 48} {
		ft := NewFlowTable(4096, cores)
		counts := ft.GroupCount()
		min, max := counts[0], counts[0]
		for _, n := range counts {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("cores=%d: group counts uneven: %v", cores, counts)
		}
	}
	// Parity-safe: Linux gives connect() odd ephemeral ports, so a
	// stride-2 port sequence must still spread over an even core count.
	ft := NewFlowTable(4096, 4)
	counts := make([]int, 4)
	for p := 40001; p < 40001+256; p += 2 {
		counts[ft.CoreForPort(uint16(p))]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("odd-port clients starve core %d: %v", c, counts)
		}
	}
}

func TestPickMigrationPrefersHottestGroup(t *testing.T) {
	ft := NewFlowTable(16, 4)
	victim := 2
	// Two groups on the victim; make the second one hot.
	var groups []int
	for g := 0; g < ft.Groups(); g++ {
		if ft.CoreOf(g) == victim {
			groups = append(groups, g)
		}
	}
	if len(groups) < 2 {
		t.Fatalf("victim owns %d groups, need 2", len(groups))
	}
	ft.ObserveLoad(groups[0], 3)
	ft.ObserveLoad(groups[1], 50)
	g, v, ok := ft.PickMigration(0, []uint64{0, 0, 7, 0})
	if !ok || v != victim {
		t.Fatalf("victim=%d ok=%v, want %d", v, ok, victim)
	}
	if g != groups[1] {
		t.Fatalf("picked group %d (load %d), want hottest %d (load %d)",
			g, ft.LoadOf(g), groups[1], ft.LoadOf(groups[1]))
	}
}

func TestBalanceDecaysLoads(t *testing.T) {
	ft := NewFlowTable(16, 2)
	q := NewQueues[int](Config{Cores: 2, Backlog: 8})
	ft.ObserveLoad(3, 8)
	BalanceRecord(ft, q, nil)
	if ft.LoadOf(3) != 4 {
		t.Fatalf("load after one tick = %d, want 4 (halved)", ft.LoadOf(3))
	}
}

func TestBalanceMovesGroupsTowardStealers(t *testing.T) {
	ft := NewFlowTable(64, 4)
	q := NewQueues[int](Config{Cores: 4, Backlog: 16, StealRatio: 1})
	// Core 3 busy, core 0 steals from it repeatedly.
	for i := 0; i < 4; i++ {
		q.Push(3, i)
	}
	q.Push(3, 9) // overflow -> busy
	q.Push(0, 7)
	q.Pop(0) // local
	q.Pop(0) // steal
	before := ft.GroupCount()
	n := Balance(ft, q, nil)
	after := ft.GroupCount()
	if n != 1 {
		t.Fatalf("balance applied %d migrations, want 1", n)
	}
	if after[0] != before[0]+1 || after[3] != before[3]-1 {
		t.Fatalf("groups did not move 3->0: before=%v after=%v", before, after)
	}
	// Steal counters were reset, so an immediate second tick is a no-op.
	if Balance(ft, q, nil) != 0 {
		t.Fatal("second balance tick migrated without new steals")
	}
}

func TestBalanceSkipsBusyCores(t *testing.T) {
	ft := NewFlowTable(64, 2)
	q := NewQueues[int](Config{Cores: 2, Backlog: 4, StealRatio: 1})
	// Both cores busy.
	for c := 0; c < 2; c++ {
		q.Push(c, 1)
		q.Push(c, 2)
		q.Push(c, 3) // overflow -> busy
	}
	// Even with synthetic steal counts, busy cores must not migrate.
	q.cores[0].stolenFrom[1] = 5
	if n := Balance(ft, q, nil); n != 0 {
		t.Fatalf("busy core migrated %d groups", n)
	}
}

// Property: migrations conserve groups — every group is always mapped to
// exactly one valid core.
func TestFlowTableConservationProperty(t *testing.T) {
	f := func(moves []uint16) bool {
		const cores = 6
		ft := NewFlowTable(64, cores)
		for _, mv := range moves {
			g := int(mv) % ft.Groups()
			to := int(mv>>8) % cores
			ft.Migrate(g, to)
		}
		counts := ft.GroupCount()
		total := 0
		for _, n := range counts {
			if n < 0 {
				return false
			}
			total += n
		}
		return total == ft.Groups()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowKeyHashStableAndDirectional(t *testing.T) {
	k := FlowKey{Proto: 6, SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 12345, DstPort: 80}
	if k.Hash() != k.Hash() {
		t.Fatal("hash not deterministic")
	}
	k2 := k
	k2.SrcPort++
	if k.Hash() == k2.Hash() {
		t.Fatal("adjacent ports collided (suspicious for FNV)")
	}
	rev := k.Reverse()
	if rev.SrcPort != 80 || rev.DstPort != 12345 || rev.SrcIP != k.DstIP {
		t.Fatal("reverse wrong")
	}
	if rev.Reverse() != k {
		t.Fatal("double reverse not identity")
	}
}

// Property: hash distributes source ports over cores roughly evenly via
// the flow-group table.
func TestPortDistributionRoughlyEven(t *testing.T) {
	ft := NewFlowTable(4096, 48)
	counts := make([]int, 48)
	for p := 0; p < 65536; p++ {
		counts[ft.CoreForPort(uint16(p))]++
	}
	for c, n := range counts {
		if n < 1200 || n > 1500 { // ideal 1365
			t.Fatalf("core %d got %d ports", c, n)
		}
	}
}
