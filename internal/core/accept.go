// Package core implements the Affinity-Accept algorithms from §3 of the
// paper as pure data structures, independent of the simulator:
//
//   - per-core accept queues with the paper's watermark-based busy
//     tracking (high/low watermarks, EWMA of queue length, busy bit
//     vector readable in one load);
//   - the connection-stealing policy (non-busy cores steal from busy
//     cores, 5:1 proportional share between local and remote accepts,
//     round-robin victim selection);
//   - the flow-group table and migration policy (4,096 source-port
//     groups spread over cores; every balancing interval a non-busy core
//     migrates one group away from the victim it stole from most).
//
// The simulator wires these into its TCP stack and charges lock and
// cache costs around them; the examples/reuseport program wires the same
// structures around real SO_REUSEPORT listeners. The structures
// themselves do no locking: callers either run single-threaded (the
// simulator) or use Guarded.
package core

import (
	"fmt"

	"affinityaccept/internal/stats"
)

// Defaults from the paper.
const (
	// DefaultHighPct marks a core busy when its instantaneous local
	// queue length exceeds this percentage of the max local length.
	DefaultHighPct = 75
	// DefaultLowPct clears busy when the EWMA of the queue length drops
	// below this percentage of the max local length.
	DefaultLowPct = 10
	// DefaultStealRatio is the local:remote proportional share (§3.3.1).
	DefaultStealRatio = 5
	// DefaultBacklogPerCore is within the 64–256 range the paper found
	// effective per core for its benchmarks.
	DefaultBacklogPerCore = 128
)

// Config parameterizes the accept queues.
type Config struct {
	Cores int
	// Backlog is the application-specified maximum accept queue length
	// (the listen() argument), split evenly across cores.
	Backlog int
	// HighPct/LowPct are busy watermarks in percent of max local length.
	// Zero selects the paper defaults (75 and 10).
	HighPct, LowPct float64
	// StealRatio is the number of local accepts per remote accept on a
	// non-busy core. Zero selects the paper default (5).
	StealRatio int
	// ChipOf maps a core to its chip, making the steal victim scan
	// NUMA-distance-aware: victims are ordered by non-decreasing chip
	// distance (same chip first, then chips one interconnect hop away,
	// and so on — Table 1's remote latencies are between the chips
	// farthest apart), with round-robin fairness preserved within each
	// distance tier. The paper's 5:1 proportional share is untouched;
	// only *which* busy victim a steal prefers changes. nil means a
	// flat machine: every core equidistant, the original wraparound
	// scan order.
	ChipOf func(core int) int
}

func (c *Config) fill() {
	if c.Cores <= 0 {
		panic("core: Config.Cores must be positive")
	}
	if c.Backlog <= 0 {
		c.Backlog = DefaultBacklogPerCore * c.Cores
	}
	if c.HighPct == 0 {
		c.HighPct = DefaultHighPct
	}
	if c.LowPct == 0 {
		c.LowPct = DefaultLowPct
	}
	if c.StealRatio == 0 {
		c.StealRatio = DefaultStealRatio
	}
	if c.LowPct >= c.HighPct {
		panic(fmt.Sprintf("core: low watermark %v%% must be below high %v%%",
			c.LowPct, c.HighPct))
	}
}

// ring is a FIFO ring buffer with a hard capacity.
type ring[T any] struct {
	buf        []T
	head, size int
}

func newRing[T any](capacity int) ring[T] { return ring[T]{buf: make([]T, capacity)} }

func (r *ring[T]) push(v T) bool {
	if r.size == len(r.buf) {
		return false
	}
	r.buf[(r.head+r.size)%len(r.buf)] = v
	r.size++
	return true
}

func (r *ring[T]) pop() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v, true
}

func (r *ring[T]) len() int { return r.size }

// perCore is the accept state of one core.
type perCore struct {
	ewma       *stats.EWMA
	sinceSteal int // local accepts since the last remote accept
	stolenFrom []uint64

	// order is the core's steal-scan order: every other core sorted by
	// non-decreasing chip distance (see Config.ChipOf), ties broken by
	// wraparound core number so a flat topology reproduces the original
	// round-robin scan. tierEnd marks the exclusive end of each distance
	// tier within order; cursor holds one rotation offset per tier so
	// victims within a tier are still picked round-robin.
	order   []int32
	tierEnd []int32
	cursor  []int32
}

// Queues implements Affinity-Accept's per-core accept queues and
// balancing policy for connection values of type T.
type Queues[T any] struct {
	cfg      Config
	maxLocal int
	high     float64
	low      float64

	rings []ring[T]
	cores []perCore

	// busy is the per-listen-socket busy bit vector (§3.3.1): one bit
	// per core, readable in a single sweep.
	busy []uint64

	// Counters for tests and reports.
	Drops   uint64 // pushes rejected because the local queue was full
	Steals  uint64 // remote accepts
	Locals  uint64 // local accepts
	Pushes  uint64
	BusySet uint64 // busy transitions (non-busy -> busy)
}

// NewQueues creates the per-core accept queues.
func NewQueues[T any](cfg Config) *Queues[T] {
	cfg.fill()
	maxLocal := cfg.Backlog / cfg.Cores
	if maxLocal < 1 {
		maxLocal = 1
	}
	q := &Queues[T]{
		cfg:      cfg,
		maxLocal: maxLocal,
		high:     float64(maxLocal) * cfg.HighPct / 100,
		low:      float64(maxLocal) * cfg.LowPct / 100,
		rings:    make([]ring[T], cfg.Cores),
		cores:    make([]perCore, cfg.Cores),
		busy:     make([]uint64, (cfg.Cores+63)/64),
	}
	for i := range q.rings {
		q.rings[i] = newRing[T](maxLocal)
		order, tierEnd := victimOrder(i, cfg.Cores, cfg.ChipOf)
		q.cores[i] = perCore{
			ewma:       stats.NewQueueEWMA(maxLocal),
			stolenFrom: make([]uint64, cfg.Cores),
			order:      order,
			tierEnd:    tierEnd,
			cursor:     make([]int32, len(tierEnd)),
		}
	}
	return q
}

// MaxLocalLen reports the per-core queue capacity.
func (q *Queues[T]) MaxLocalLen() int { return q.maxLocal }

// Cores reports the configured core count.
func (q *Queues[T]) Cores() int { return q.cfg.Cores }

// Len reports the instantaneous local queue length of a core.
func (q *Queues[T]) Len(core int) int { return q.rings[core].len() }

// TotalLen reports queued connections across all cores.
func (q *Queues[T]) TotalLen() int {
	n := 0
	for i := range q.rings {
		n += q.rings[i].len()
	}
	return n
}

// Busy reports whether a core is currently marked busy.
func (q *Queues[T]) Busy(core int) bool {
	return q.busy[core>>6]&(1<<(core&63)) != 0
}

func (q *Queues[T]) setBusy(core int) {
	w := &q.busy[core>>6]
	bit := uint64(1) << (core & 63)
	if *w&bit == 0 {
		*w |= bit
		q.BusySet++
	}
}

func (q *Queues[T]) clearBusy(core int) { q.busy[core>>6] &^= 1 << (core & 63) }

// anyBusy reports whether any core is marked busy (one vector read).
func (q *Queues[T]) anyBusy() bool {
	for _, w := range q.busy {
		if w != 0 {
			return true
		}
	}
	return false
}

// BusyVector returns a copy of the busy bit vector.
func (q *Queues[T]) BusyVector() []uint64 {
	out := make([]uint64, len(q.busy))
	copy(out, q.busy)
	return out
}

// Push appends an established connection to core's local accept queue.
// It returns false when the queue is full, in which case the kernel
// drops the connection request (§3.3: queue overflow).
func (q *Queues[T]) Push(core int, v T) bool {
	q.Pushes++
	r := &q.rings[core]
	ok := r.push(v)
	if !ok {
		q.Drops++
		// A full queue certainly exceeds the high watermark.
		q.setBusy(core)
		return false
	}
	st := &q.cores[core]
	// The paper updates the EWMA on every push and compares the
	// instantaneous length against the high watermark.
	st.ewma.Observe(float64(r.len()))
	if float64(r.len()) > q.high {
		q.setBusy(core)
	}
	return true
}

// maybeClearBusy applies the low-watermark rule: busy clears when the
// EWMA drops below the low watermark. In the paper the work stealer
// performs this check when scanning for victims.
func (q *Queues[T]) maybeClearBusy(core int) {
	if q.Busy(core) && q.cores[core].ewma.Value() < q.low {
		q.clearBusy(core)
	}
}

// popLocal dequeues from the core's own queue.
func (q *Queues[T]) popLocal(core int) (T, bool) {
	v, ok := q.rings[core].pop()
	if ok {
		q.Locals++
		q.cores[core].sinceSteal++
		q.maybeClearBusy(core)
	}
	return v, ok
}

// stealFrom scans busy cores in distance order — nearest tier first,
// round-robin within a tier starting one past the last victim — and
// steals the oldest connection from the first busy core with queued
// work. A cross-chip victim is therefore chosen only when no same-chip
// (or nearer-chip) core is stealable, keeping the stolen connection's
// cache lines on the cheap side of Table 1's latency cliff. Returns the
// victim core.
func (q *Queues[T]) stealFrom(core int) (T, int, bool) {
	var zero T
	st := &q.cores[core]
	start := int32(0)
	for t, end := range st.tierEnd {
		size := end - start
		cur := st.cursor[t]
		for j := int32(0); j < size; j++ {
			victim := int(st.order[start+(cur+j)%size])
			if !q.Busy(victim) {
				continue
			}
			q.maybeClearBusy(victim)
			if !q.Busy(victim) {
				continue
			}
			if v, ok := q.rings[victim].pop(); ok {
				st.cursor[t] = (cur + j + 1) % size
				st.stolenFrom[victim]++
				st.sinceSteal = 0
				q.Steals++
				q.cores[victim].ewma.Observe(float64(q.rings[victim].len()))
				return v, victim, true
			}
		}
		start = end
	}
	return zero, -1, false
}

// scanRemote takes from a busy remote queue when the local queue is
// empty — the pre-sleep scan of §3.3.1. It deliberately skips non-busy
// remote cores: their own local threads are about to serve those
// connections, and yanking them away would destroy the very affinity
// the design exists to preserve. (The paper's prose scans non-busy
// cores last; in a discrete-event model that scan wins races against
// the local thread far more often than real timing allows, so the
// conservative policy reproduces the measured behaviour.)
func (q *Queues[T]) scanRemote(core int) (T, int, bool) {
	var zero T
	for _, o := range q.cores[core].order {
		other := int(o)
		if !q.Busy(other) {
			continue
		}
		if v, ok := q.rings[other].pop(); ok {
			q.Steals++
			q.cores[core].stolenFrom[other]++
			q.cores[core].sinceSteal = 0
			return v, other, true
		}
	}
	return zero, -1, false
}

// PopAt dequeues directly from queue idx without applying the stealing
// policy. Fine-Accept's round-robin accept and tests use it.
func (q *Queues[T]) PopAt(idx int) (T, bool) {
	v, ok := q.rings[idx].pop()
	if ok {
		q.Locals++
		q.cores[idx].ewma.Observe(float64(q.rings[idx].len()))
		q.maybeClearBusy(idx)
	}
	return v, ok
}

// DiscardAt dequeues directly from queue idx without counting the pop
// as an accept or updating the EWMA: the connection is being thrown
// away (forced shutdown), not served.
func (q *Queues[T]) DiscardAt(idx int) (T, bool) {
	return q.rings[idx].pop()
}

// Pop implements accept() on the given core: proportional-share between
// local and stolen connections when the core is non-busy, local-only
// preference when busy, and a full remote scan before reporting empty.
// It returns the connection and the core whose queue supplied it.
func (q *Queues[T]) Pop(core int) (v T, from int, ok bool) {
	st := &q.cores[core]
	busySelf := q.Busy(core)
	q.maybeClearBusy(core)

	// Proportional share: after StealRatio local accepts, a non-busy
	// core prefers one remote accept if any core is busy.
	if !busySelf && st.sinceSteal >= q.cfg.StealRatio && q.anyBusy() {
		if v, victim, ok := q.stealFrom(core); ok {
			return v, victim, true
		}
	}
	if v, ok := q.popLocal(core); ok {
		return v, core, true
	}
	if busySelf {
		// Busy cores never steal.
		var zero T
		return zero, -1, false
	}
	// Nothing local: check busy cores, then any remote queue.
	if v, victim, ok := q.stealFrom(core); ok {
		return v, victim, true
	}
	return q.scanRemote(core)
}

// StolenFrom returns how many connections `core` has stolen from each
// other core since the last ResetSteals — the signal driving flow-group
// migration (§3.3.2).
func (q *Queues[T]) StolenFrom(core int) []uint64 {
	out := make([]uint64, q.cfg.Cores)
	copy(out, q.cores[core].stolenFrom)
	return out
}

// ResetSteals clears core's steal counters (called once per balancing
// interval after a migration decision).
func (q *Queues[T]) ResetSteals(core int) {
	for i := range q.cores[core].stolenFrom {
		q.cores[core].stolenFrom[i] = 0
	}
}

// ObserveIdle folds `samples` observations of the current local queue
// length into core's EWMA and re-evaluates the busy bit. Real-server
// pollers (the serve package) call it when an accept attempt finds no
// work: the EWMA is otherwise sampled only on pushes, so once arrivals
// stop it — and therefore the busy bit — would freeze at its burst-time
// value and non-busy cores would never resume stealing. The kernel gets
// these samples for free at softirq arrival frequency; a user-space
// poller supplies the observations its sleep skipped by scaling
// `samples` with the wall-clock time since its previous poll.
func (q *Queues[T]) ObserveIdle(core, samples int) {
	q.cores[core].ewma.ObserveN(float64(q.rings[core].len()), samples)
	q.maybeClearBusy(core)
}

// EWMAValue exposes a core's queue-length average for tests and reports.
func (q *Queues[T]) EWMAValue(core int) float64 { return q.cores[core].ewma.Value() }

// Watermarks reports the absolute high and low watermark values.
func (q *Queues[T]) Watermarks() (high, low float64) { return q.high, q.low }
