package core

import (
	"fmt"
	"time"
)

// DefaultFlowGroups is the paper's flow-group count: the NIC hashes the
// low 12 bits of the source port, yielding 4,096 groups (§3.1).
const DefaultFlowGroups = 4096

// DefaultMigrateInterval is how often each non-busy core considers
// migrating one flow group to itself (§3.3.2).
const DefaultMigrateInterval = 100 * time.Millisecond

// FlowTable maps flow groups to cores, mirroring the FDir hash table the
// kernel programs into the NIC. Migrating a group re-points one entry.
type FlowTable struct {
	groupOf []int32 // group -> core
	nCores  int
	mask    uint32

	// Migrations counts applied flow-group migrations.
	Migrations uint64
}

// NewFlowTable builds a table of nGroups groups (rounded up to a power
// of two) spread round-robin over cores, as the driver initializes FDir.
func NewFlowTable(nGroups, cores int) *FlowTable {
	if cores <= 0 {
		panic("core: FlowTable needs at least one core")
	}
	size := 1
	for size < nGroups {
		size <<= 1
	}
	t := &FlowTable{
		groupOf: make([]int32, size),
		nCores:  cores,
		mask:    uint32(size - 1),
	}
	for g := range t.groupOf {
		t.groupOf[g] = int32(g % cores)
	}
	return t
}

// Groups reports the number of flow groups.
func (t *FlowTable) Groups() int { return len(t.groupOf) }

// GroupOf maps a source port to its flow group: the low bits of the
// source port, per §3.1.
func (t *FlowTable) GroupOf(srcPort uint16) int {
	return int(uint32(srcPort) & t.mask)
}

// CoreOf reports which core (RX DMA ring) a group is steered to.
func (t *FlowTable) CoreOf(group int) int { return int(t.groupOf[group]) }

// CoreForPort composes GroupOf and CoreOf.
func (t *FlowTable) CoreForPort(srcPort uint16) int {
	return t.CoreOf(t.GroupOf(srcPort))
}

// Migrate re-points one flow group to a new core.
func (t *FlowTable) Migrate(group, toCore int) {
	if toCore < 0 || toCore >= t.nCores {
		panic(fmt.Sprintf("core: migrate to invalid core %d", toCore))
	}
	if int(t.groupOf[group]) != toCore {
		t.groupOf[group] = int32(toCore)
		t.Migrations++
	}
}

// GroupCount reports how many groups are currently steered to each core.
func (t *FlowTable) GroupCount() []int {
	counts := make([]int, t.nCores)
	for _, c := range t.groupOf {
		counts[c]++
	}
	return counts
}

// anyGroupOn returns some group currently steered to the core, or -1.
func (t *FlowTable) anyGroupOn(core int) int {
	for g, c := range t.groupOf {
		if int(c) == core {
			return g
		}
	}
	return -1
}

// PickMigration implements the §3.3.2 policy for one non-busy core at
// the end of a balancing interval: choose the victim core from which
// `core` stole the most connections, and select one of the victim's flow
// groups to migrate to `core`. It returns ok=false when the core stole
// nothing, is itself the top victim, or the victim has no groups left.
func (t *FlowTable) PickMigration(core int, stolenFrom []uint64) (group, victim int, ok bool) {
	best, bestCount := -1, uint64(0)
	for v, n := range stolenFrom {
		if v == core || n == 0 {
			continue
		}
		if n > bestCount {
			best, bestCount = v, n
		}
	}
	if best < 0 {
		return 0, -1, false
	}
	g := t.anyGroupOn(best)
	if g < 0 {
		return 0, -1, false
	}
	return g, best, true
}

// Balance runs one full balancing tick: every non-busy core that stole
// connections migrates one flow group from its top victim, then resets
// its steal counters. It returns the number of migrations applied.
// The simulator calls this every DefaultMigrateInterval; real deployments
// would reprogram the NIC's FDir table here.
//
// The optional eligible predicate vetoes migration targets beyond the
// busy check: a core whose CPU is consumed by unrelated work has an
// empty accept queue (nothing reaches it) yet must not pull flow groups
// to itself.
func Balance[T any](t *FlowTable, q *Queues[T], eligible func(core int) bool) int {
	applied := 0
	for core := 0; core < q.Cores(); core++ {
		q.maybeClearBusy(core)
		if q.Busy(core) {
			// Busy cores never migrate additional groups to themselves.
			continue
		}
		if eligible != nil && !eligible(core) {
			q.ResetSteals(core)
			continue
		}
		if group, _, ok := t.PickMigration(core, q.cores[core].stolenFrom); ok {
			t.Migrate(group, core)
			applied++
		}
		q.ResetSteals(core)
	}
	return applied
}
