package core

import (
	"fmt"
	"time"
)

// DefaultFlowGroups is the paper's flow-group count: the NIC hashes the
// low 12 bits of the source port, yielding 4,096 groups (§3.1).
const DefaultFlowGroups = 4096

// DefaultMigrateInterval is how often each non-busy core considers
// migrating one flow group to itself (§3.3.2).
const DefaultMigrateInterval = 100 * time.Millisecond

// FlowTable maps flow groups to cores, mirroring the FDir hash table the
// kernel programs into the NIC. Migrating a group re-points one entry.
type FlowTable struct {
	groupOf []int32  // group -> core
	load    []uint64 // group -> recent routing activity (decayed each tick)
	nCores  int
	mask    uint32

	// Migrations counts applied flow-group migrations.
	Migrations uint64
}

// InitialOwner is the core a group is steered to before any migration:
// a diagonal (latin-square) spread that is exactly balanced like
// round-robin but decorrelated from the group number's low bits. Plain
// `group % cores` would alias the client's source-port parity onto the
// core choice (Linux hands connect() odd ephemeral ports, so with an
// even core count every client would land on an odd core); offsetting
// each block of `cores` groups by one breaks that resonance.
func InitialOwner(group, cores int) int {
	return (group + group/cores) % cores
}

// NewFlowTable builds a table of nGroups groups (rounded up to a power
// of two) spread evenly over cores, as the driver initializes FDir.
func NewFlowTable(nGroups, cores int) *FlowTable {
	if cores <= 0 {
		panic("core: FlowTable needs at least one core")
	}
	size := 1
	for size < nGroups {
		size <<= 1
	}
	t := &FlowTable{
		groupOf: make([]int32, size),
		load:    make([]uint64, size),
		nCores:  cores,
		mask:    uint32(size - 1),
	}
	for g := range t.groupOf {
		t.groupOf[g] = int32(InitialOwner(g, cores))
	}
	return t
}

// Groups reports the number of flow groups.
func (t *FlowTable) Groups() int { return len(t.groupOf) }

// GroupOf maps a source port to its flow group: the low bits of the
// source port, per §3.1.
func (t *FlowTable) GroupOf(srcPort uint16) int {
	return int(uint32(srcPort) & t.mask)
}

// CoreOf reports which core (RX DMA ring) a group is steered to.
func (t *FlowTable) CoreOf(group int) int { return int(t.groupOf[group]) }

// CoreForPort composes GroupOf and CoreOf.
func (t *FlowTable) CoreForPort(srcPort uint16) int {
	return t.CoreOf(t.GroupOf(srcPort))
}

// Migrate re-points one flow group to a new core.
func (t *FlowTable) Migrate(group, toCore int) {
	if toCore < 0 || toCore >= t.nCores {
		panic(fmt.Sprintf("core: migrate to invalid core %d", toCore))
	}
	if int(t.groupOf[group]) != toCore {
		t.groupOf[group] = int32(toCore)
		t.Migrations++
	}
}

// GroupCount reports how many groups are currently steered to each core.
func (t *FlowTable) GroupCount() []int {
	counts := make([]int, t.nCores)
	for _, c := range t.groupOf {
		counts[c]++
	}
	return counts
}

// ObserveLoad charges n units of routing activity to a group. Real
// servers call it once per connection routed through the group, so the
// migration policy can move the *hottest* group rather than an
// arbitrary one.
func (t *FlowTable) ObserveLoad(group int, n uint64) { t.load[group] += n }

// LoadOf reports a group's accumulated (decayed) routing activity.
func (t *FlowTable) LoadOf(group int) uint64 { return t.load[group] }

// hottestGroupOn returns the victim's group with the highest recent
// load, or -1 when the victim owns none. With no load data (the
// simulator never observes load) every group ties at zero and the
// lowest-numbered group wins, matching the original arbitrary pick.
// The optional groupOK veto excludes groups (the adaptive controller's
// oscillation freeze); a vetoed group is skipped, not counted.
func (t *FlowTable) hottestGroupOn(core int, groupOK func(group int) bool) int {
	best, bestLoad := -1, uint64(0)
	for g, c := range t.groupOf {
		if int(c) != core {
			continue
		}
		if groupOK != nil && !groupOK(g) {
			continue
		}
		if best < 0 || t.load[g] > bestLoad {
			best, bestLoad = g, t.load[g]
		}
	}
	return best
}

// decayLoads halves every group's activity counter, so hotness reflects
// the recent balancing intervals rather than all time.
func (t *FlowTable) decayLoads() {
	for g := range t.load {
		t.load[g] >>= 1
	}
}

// PickMigration implements the §3.3.2 policy for one non-busy core at
// the end of a balancing interval: choose the victim core from which
// `core` stole the most connections, and select the victim's hottest
// flow group to migrate to `core`. It returns ok=false when the core
// stole nothing, is itself the top victim, or the victim has no groups
// left.
func (t *FlowTable) PickMigration(core int, stolenFrom []uint64) (group, victim int, ok bool) {
	return t.PickMigrationFiltered(core, stolenFrom, nil)
}

// PickMigrationFiltered is PickMigration with a group veto: groups for
// which groupOK returns false are never selected. The adaptive
// controller passes its oscillation-freeze set here, so a ping-ponging
// group sits out its cooldown while the victim's other groups remain
// migratable.
func (t *FlowTable) PickMigrationFiltered(core int, stolenFrom []uint64, groupOK func(group int) bool) (group, victim int, ok bool) {
	best, bestCount := -1, uint64(0)
	for v, n := range stolenFrom {
		if v == core || n == 0 {
			continue
		}
		if n > bestCount {
			best, bestCount = v, n
		}
	}
	if best < 0 {
		return 0, -1, false
	}
	g := t.hottestGroupOn(best, groupOK)
	if g < 0 {
		return 0, -1, false
	}
	return g, best, true
}

// Migration describes one applied flow-group migration: Group moved
// from core From to core To.
type Migration struct {
	Group, From, To int
}

// Balance runs one full balancing tick and returns the number of
// migrations applied. See BalanceRecord.
func Balance[T any](t *FlowTable, q *Queues[T], eligible func(core int) bool) int {
	return len(BalanceRecord(t, q, eligible))
}

// BalanceRecord runs one full balancing tick: every non-busy core that
// stole connections migrates its top victim's hottest flow group to
// itself, then resets its steal counters; finally all group loads decay.
// It returns the applied migrations. The simulator calls this every
// DefaultMigrateInterval; the serve package calls it from its migration
// goroutine; a kernel deployment would reprogram the NIC's FDir table
// here.
//
// The optional eligible predicate vetoes migration targets beyond the
// busy check: a core whose CPU is consumed by unrelated work has an
// empty accept queue (nothing reaches it) yet must not pull flow groups
// to itself.
func BalanceRecord[T any](t *FlowTable, q *Queues[T], eligible func(core int) bool) []Migration {
	return BalanceRecordFiltered(t, q, eligible, nil)
}

// BalanceRecordFiltered is BalanceRecord with a group veto: groups for
// which groupOK returns false are never migrated this tick. The serve
// package's adaptive controller passes its frozen-group set here.
func BalanceRecordFiltered[T any](t *FlowTable, q *Queues[T], eligible func(core int) bool, groupOK func(group int) bool) []Migration {
	var applied []Migration
	for core := 0; core < q.Cores(); core++ {
		q.maybeClearBusy(core)
		if q.Busy(core) {
			// Busy cores never migrate additional groups to themselves.
			continue
		}
		if eligible != nil && !eligible(core) {
			q.ResetSteals(core)
			continue
		}
		if group, victim, ok := t.PickMigrationFiltered(core, q.cores[core].stolenFrom, groupOK); ok {
			t.Migrate(group, core)
			applied = append(applied, Migration{Group: group, From: victim, To: core})
		}
		q.ResetSteals(core)
	}
	t.decayLoads()
	return applied
}
