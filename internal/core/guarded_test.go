package core

import (
	"sync"
	"testing"
)

func TestGuardedBasics(t *testing.T) {
	g := NewGuarded[int](Config{Cores: 2, Backlog: 8})
	if !g.Push(0, 42) {
		t.Fatal("push failed")
	}
	if g.Len(0) != 1 {
		t.Fatal("len wrong")
	}
	v, from, ok := g.Pop(0)
	if !ok || v != 42 || from != 0 {
		t.Fatalf("pop: %d %d %v", v, from, ok)
	}
	if g.Busy(0) {
		t.Fatal("unexpected busy")
	}
}

func TestGuardedConcurrentConservation(t *testing.T) {
	const (
		cores   = 4
		perCore = 500
	)
	g := NewGuarded[int](Config{Cores: cores, Backlog: cores * 64})
	var wg sync.WaitGroup
	var mu sync.Mutex
	got := map[int]bool{}
	var accepted int

	// Consumers.
	done := make(chan struct{})
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				v, _, ok := g.Pop(c)
				if ok {
					mu.Lock()
					if got[v] {
						t.Errorf("duplicate pop of %d", v)
					}
					got[v] = true
					accepted++
					mu.Unlock()
					continue
				}
				select {
				case <-done:
					// Final drain.
					for {
						v, _, ok := g.Pop(c)
						if !ok {
							return
						}
						mu.Lock()
						got[v] = true
						accepted++
						mu.Unlock()
					}
				default:
				}
			}
		}(c)
	}

	pushed := 0
	var pmu sync.Mutex
	var pwg sync.WaitGroup
	for c := 0; c < cores; c++ {
		pwg.Add(1)
		go func(c int) {
			defer pwg.Done()
			for i := 0; i < perCore; i++ {
				v := c*perCore + i
				for !g.Push(c, v) {
					// Queue full: spin until a consumer drains.
				}
				pmu.Lock()
				pushed++
				pmu.Unlock()
			}
		}(c)
	}
	pwg.Wait()
	close(done)
	wg.Wait()

	if accepted != pushed || accepted != cores*perCore {
		t.Fatalf("accepted %d of %d pushed", accepted, pushed)
	}
	p, l, s, d := g.Stats()
	if p < uint64(pushed) {
		t.Fatalf("stats pushes %d < %d", p, pushed)
	}
	if l+s != uint64(accepted) {
		t.Fatalf("locals %d + steals %d != accepted %d", l, s, accepted)
	}
	_ = d
}

func TestGuardedBalance(t *testing.T) {
	g := NewGuarded[int](Config{Cores: 2, Backlog: 4, StealRatio: 1})
	ft := NewFlowTable(16, 2)
	// Build up steals from core 1.
	g.Push(1, 1)
	g.Push(1, 2)
	g.Push(1, 3) // overflow -> busy
	g.Push(0, 7)
	g.Pop(0)
	g.Pop(0)
	if n := g.Balance(ft); n != 1 {
		t.Fatalf("balance = %d, want 1", n)
	}
}
