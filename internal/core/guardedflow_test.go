package core

import (
	"sync"
	"testing"
)

func TestGuardedFlowTableRoute(t *testing.T) {
	gt := NewGuardedFlowTable(16, 4)
	port := uint16(0x1235)
	group, core := gt.Route(port, 2)
	if group != gt.GroupOf(port) {
		t.Fatalf("Route group %d != GroupOf %d", group, gt.GroupOf(port))
	}
	if core != gt.CoreForPort(port) {
		t.Fatalf("Route core %d != CoreForPort %d", core, gt.CoreForPort(port))
	}
	if gt.LoadOf(group) != 2 {
		t.Fatalf("load = %d, want 2", gt.LoadOf(group))
	}
	gt.Migrate(group, (core+1)%4)
	if gt.CoreOf(group) != (core+1)%4 {
		t.Fatal("migration not visible through the guard")
	}
	if gt.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", gt.Migrations())
	}
}

// TestGuardedFlowTableConcurrent hammers routing, migration and balance
// from many goroutines; run with -race this proves the guard covers
// every FlowTable access the serve package performs.
func TestGuardedFlowTableConcurrent(t *testing.T) {
	const cores = 4
	gt := NewGuardedFlowTable(64, cores)
	g := NewGuarded[int](Config{Cores: cores, Backlog: 4 * cores, StealRatio: 1})
	var wg sync.WaitGroup
	for w := 0; w < cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				_, core := gt.Route(uint16(i*cores+w), 1)
				if g.Push(core, i) {
					g.Pop(w)
				}
				if i%100 == 0 {
					gt.Migrate(gt.GroupOf(uint16(i)), w)
					gt.GroupCount()
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			g.BalanceTable(gt, nil)
		}
	}()
	wg.Wait()
	total := 0
	for _, n := range gt.GroupCount() {
		total += n
	}
	if total != gt.Groups() {
		t.Fatalf("groups not conserved: %d != %d", total, gt.Groups())
	}
}
