package core

import "sort"

// This file holds the NUMA-distance machinery behind Config.ChipOf: the
// paper's stealing policy treats all cores as equidistant, but its own
// Table 1 prices a same-chip cache-line transfer at ~28 cycles (L3)
// versus ~460 to the farthest chip (RemoteL3). Ordering the victim scan
// by chip distance closes that gap without touching the 5:1
// proportional-share policy itself.

// ChipDistance is the steal-ordering distance between two chips: the
// absolute difference of their chip numbers, modeling chips laid out
// along the interconnect (Table 1's "remote" latencies are measured
// between the two chips farthest apart). Same chip is distance 0.
func ChipDistance(chipA, chipB int) int {
	if chipA > chipB {
		return chipA - chipB
	}
	return chipB - chipA
}

// victimOrder builds core's steal-scan order: every other core sorted
// by non-decreasing chip distance, ties broken by wraparound core
// number from core+1 so a flat topology (chipOf == nil, or all cores on
// one chip) reproduces the original round-robin scan exactly. tierEnd
// holds the exclusive end index of each distance tier within order.
func victimOrder(core, n int, chipOf func(int) int) (order, tierEnd []int32) {
	if n <= 1 {
		return nil, nil
	}
	order = make([]int32, 0, n-1)
	for i := 1; i < n; i++ {
		order = append(order, int32((core+i)%n))
	}
	dist := func(v int32) int {
		if chipOf == nil {
			return 0
		}
		return ChipDistance(chipOf(core), chipOf(int(v)))
	}
	// Stable sort keeps the wraparound tie-break inside each tier.
	sort.SliceStable(order, func(i, j int) bool {
		return dist(order[i]) < dist(order[j])
	})
	for i := 1; i < len(order); i++ {
		if dist(order[i]) != dist(order[i-1]) {
			tierEnd = append(tierEnd, int32(i))
		}
	}
	tierEnd = append(tierEnd, int32(len(order)))
	return order, tierEnd
}

// VictimOrder returns a copy of core's steal-scan order: every other
// core sorted by non-decreasing chip distance under the configured
// topology. Tests assert the distance-ordering invariant against it.
func (q *Queues[T]) VictimOrder(core int) []int {
	st := &q.cores[core]
	out := make([]int, len(st.order))
	for i, v := range st.order {
		out[i] = int(v)
	}
	return out
}

// VictimTiers returns the exclusive end index of each distance tier in
// core's VictimOrder — victims order[tierEnd[i-1]:tierEnd[i]] are all
// at the same chip distance, and tiers appear in increasing distance.
func (q *Queues[T]) VictimTiers(core int) []int {
	st := &q.cores[core]
	out := make([]int, len(st.tierEnd))
	for i, v := range st.tierEnd {
		out[i] = int(v)
	}
	return out
}

// ChipOf reports the chip a core maps to under the configured topology
// (0 on a flat machine).
func (q *Queues[T]) ChipOf(core int) int {
	if q.cfg.ChipOf == nil {
		return 0
	}
	return q.cfg.ChipOf(core)
}

// Distance reports the steal-ordering chip distance between two cores
// under the configured topology (0 on a flat machine).
func (q *Queues[T]) Distance(a, b int) int {
	if q.cfg.ChipOf == nil {
		return 0
	}
	return ChipDistance(q.cfg.ChipOf(a), q.cfg.ChipOf(b))
}
