// Package testutil holds the small helpers the packages' tests share.
package testutil

import (
	"testing"
	"time"
)

// WaitFor polls cond every millisecond until it holds, failing the test
// after the deadline. It is the deflaked replacement for fixed sleeps
// in timing-sensitive tests: the test advances the moment the condition
// is observable, and a slow machine gets the full deadline instead of a
// flake. The CI race job repeats the tests built on it 50× to prove
// they stay deterministic.
func WaitFor(t testing.TB, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}
