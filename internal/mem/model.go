package mem

import (
	"sort"

	"affinityaccept/internal/sim"
	"affinityaccept/internal/stats"
)

// AccessResult reports what one memory access cost and where it hit.
type AccessResult struct {
	Cycles sim.Cycles
	// Miss is true when the access missed the core's private L1/L2 and
	// had to reach the shared L3, a remote cache, or DRAM. These are the
	// "L2 misses" of the paper's Table 3.
	Miss bool
	// Shared is true when the line was touched by more than one core
	// over the object's lifetime (DProf's sharing criterion).
	Shared bool
}

// typeStats aggregates DProf statistics for one type.
type typeStats struct {
	info *TypeInfo

	objects      uint64
	linesTotal   uint64
	linesShared  uint64
	sharedCycles uint64 // cycles of accesses landing on shared lines
	accesses     uint64

	// byte accounting, accumulated when profiled objects are released
	bytesTotal    uint64
	bytesShared   uint64
	bytesSharedRW uint64

	// latency samples on shared lines (Figure 4)
	latencies *stats.Histogram

	// fieldMultiReader marks fields observed with >1 reader in some
	// object; SharedFields exports it so a later run can watch exactly
	// the accesses that were shared in this run (DProf's methodology:
	// "we instrument the set of instructions collected from running
	// DProf on Fine-Accept").
	fieldMultiReader []bool

	// watch marks fields whose accesses are accumulated regardless of
	// current sharing, with their own cycle counter and latency samples.
	watch         []bool
	watchedCycles uint64
	watchLat      *stats.Histogram
}

// Model is the machine-wide memory system: coherence directory, slab
// allocator and DProf aggregation.
type Model struct {
	Machine Machine

	// Profiling enables per-object field mask tracking (Table 4 byte
	// columns and the Figure 4 latency CDF). Costs memory; leave off
	// for throughput sweeps.
	Profiling bool

	// Clock, when set, provides the engine's monotone global time so
	// DRAM accesses can queue on their chip's memory controller. Nil
	// disables contention modelling.
	Clock func() sim.Time
	// IssueNow is the issuing core's local clock, set by callers before
	// accesses. Sequential misses from one core are naturally spaced by
	// the DRAM latency itself, so anchoring issues at the core's time
	// (rather than the event's start) keeps a single core from queueing
	// against itself; the controller then only models cross-core
	// contention.
	IssueNow sim.Time
	// EvictHits models finite private caches: a line found "still owned"
	// by the accessing core costs a local-DRAM refill instead of an
	// L1/L2 hit, because the thousands of connections processed between
	// two touches of the same line evict it. Repeat accesses within one
	// operation (AccessRepeat) still hit L1. This is what makes even the
	// fully-local Affinity-Accept configuration take ~180 memory misses
	// per request, as the paper's Table 3 counters show; the Fine
	// configuration pays remote-cache latencies on the same accesses.
	EvictHits bool

	// CtlService is the memory controller's per-line service time; the
	// default models random-access DRAM on the paper's era of hardware.
	CtlService sim.Cycles
	ctlFree    []sim.Time

	// CtlDelays accumulates queueing delay cycles for diagnostics.
	CtlDelays uint64

	stats map[*TypeInfo]*typeStats
	free  map[*TypeInfo]*Object

	// pools[class][core] is the coherence line of a per-core slab pool
	// head; remote frees touch a remote pool head and pay for it.
	pools map[*TypeInfo][]Line

	// Counters
	Allocs, Frees, RemoteFrees uint64
}

// NewModel creates a memory model for a machine.
func NewModel(m Machine) *Model {
	return &Model{
		Machine:    m,
		stats:      make(map[*TypeInfo]*typeStats),
		free:       make(map[*TypeInfo]*Object),
		pools:      make(map[*TypeInfo][]Line),
		CtlService: 36,
		ctlFree:    make([]sim.Time, m.Chips),
	}
}

// dramDelay reserves one line transfer on a chip's memory controller at
// the given issue time and returns the queueing delay in front of it.
// The queue is bounded (a controller can only have so many outstanding
// requests).
func (m *Model) dramDelay(chip int, issue sim.Time) sim.Cycles {
	if m.Clock == nil || chip >= len(m.ctlFree) {
		return 0
	}
	if g := m.Clock(); issue < g {
		issue = g
	}
	const queueBound = 20_000
	free := m.ctlFree[chip]
	if free > issue+queueBound {
		free = issue + queueBound
	}
	start := issue
	if free > start {
		start = free
	}
	m.ctlFree[chip] = start + m.CtlService
	d := sim.Cycles(start - issue)
	m.CtlDelays += uint64(d)
	return d
}

func (m *Model) statsOf(t *TypeInfo) *typeStats {
	ts := m.stats[t]
	if ts == nil {
		ts = &typeStats{info: t, latencies: stats.NewLatencyHistogram()}
		m.stats[t] = ts
	}
	return ts
}

// Alloc returns a fresh object of type t allocated from core's pool.
// The returned cost covers allocator bookkeeping (pool head touch).
func (m *Model) Alloc(core int, t *TypeInfo) (*Object, sim.Cycles) {
	m.Allocs++
	o := m.free[t]
	if o != nil {
		m.free[t] = o.nextFree
		o.nextFree = nil
	} else {
		o = &Object{Type: t, lines: make([]Line, t.Lines())}
	}
	o.reset(int16(core), m.Profiling)
	ts := m.statsOf(t)
	ts.objects++
	ts.linesTotal += uint64(t.LinesFull())
	ts.bytesTotal += uint64(t.Size)
	cost := m.poolTouch(core, t)
	return o, cost
}

// Free releases an object from the given core. Freeing on a core other
// than the allocating core pays the remote-pool penalty the paper
// describes for packet buffers (§2.2).
func (m *Model) Free(core int, o *Object) sim.Cycles {
	m.Frees++
	m.harvest(o)
	cost := m.poolTouch(int(o.AllocCore), o.Type)
	if int(o.AllocCore) != core {
		m.RemoteFrees++
		// The free itself executes on `core` but manipulates the remote
		// pool head: pay a remote transfer in addition to the touch.
		cost += m.remotePenalty(core, int(o.AllocCore))
	}
	o.nextFree = m.free[o.Type]
	m.free[o.Type] = o
	return cost
}

// poolTouch models a write to the per-core slab pool head line.
func (m *Model) poolTouch(core int, t *TypeInfo) sim.Cycles {
	pool := m.pools[t]
	if pool == nil {
		pool = make([]Line, m.Machine.Cores())
		for i := range pool {
			pool[i] = Line{owner: -1, last: -1}
		}
		m.pools[t] = pool
	}
	if core >= len(pool) {
		return m.Machine.Lat.L1
	}
	cyc, _, _ := m.lineAccess(&pool[core], core, true, -1)
	return cyc
}

func (m *Model) remotePenalty(from, to int) sim.Cycles {
	if m.Machine.SameChip(from, to) {
		return m.Machine.Lat.L3
	}
	return m.Machine.Lat.RemoteL3
}

// lineAccess performs the coherence transition for one line access and
// returns (cycles, missedPrivate, sharedLine). home is the chip holding
// the line's backing DRAM, or -1 for "local to accessor".
func (m *Model) lineAccess(l *Line, core int, write bool, homeChip int) (sim.Cycles, bool, bool) {
	lat := &m.Machine.Lat
	var cost sim.Cycles
	miss := false

	switch {
	case int(l.last) == core && (l.sharers.has(core) || l.last == l.owner):
		// Same core touched this line last. With finite caches the line
		// has been evicted by intervening work and refills from local
		// memory; with infinite caches it is an L1 hit.
		if m.EvictHits {
			cost = lat.RAM + m.dramDelay(m.Machine.Chip(core), m.IssueNow)
			miss = true
		} else {
			cost = lat.L1
		}
	case l.sharers.has(core) && (!l.dirty || int(l.owner) == core):
		// Valid copy in this core's private cache, a bit colder.
		if m.EvictHits {
			cost = lat.RAM + m.dramDelay(m.Machine.Chip(core), m.IssueNow)
			miss = true
		} else {
			cost = lat.L2
		}
	default:
		miss = true
		switch {
		case l.dirty && l.owner >= 0 && int(l.owner) != core:
			// Modified in another core's cache: cache-to-cache transfer.
			if m.Machine.SameChip(core, int(l.owner)) {
				cost = lat.L3
			} else {
				cost = lat.RemoteL3
			}
		case l.last >= 0 && m.chipHasSharer(l, core):
			// Clean copy somewhere on this chip: serve from shared L3.
			cost = lat.L3
		default:
			// Serve from DRAM at the line's home node, queueing on that
			// node's memory controller.
			home := homeChip
			if home < 0 {
				home = m.Machine.Chip(core)
			}
			if home == m.Machine.Chip(core) {
				cost = lat.RAM
			} else {
				cost = lat.RemoteRAM
			}
			cost += m.dramDelay(home, m.IssueNow)
		}
	}

	if l.last >= 0 && int(l.last) != core {
		l.shared = true
	}
	if write {
		// Invalidate all other copies; this core becomes exclusive owner.
		l.sharers.clear()
		l.sharers.set(core)
		l.owner = int16(core)
		l.dirty = true
	} else {
		l.sharers.set(core)
	}
	l.last = int16(core)
	return cost, miss, l.shared
}

func (m *Model) chipHasSharer(l *Line, core int) bool {
	chip := m.Machine.Chip(core)
	lo := chip * m.Machine.CoresPerChip
	hi := lo + m.Machine.CoresPerChip
	return l.sharers.anyInRange(lo, hi)
}

// Access touches one field of an object from a core and returns the cost.
func (m *Model) Access(core int, o *Object, f FieldID, write bool) AccessResult {
	return m.access(core, o, f, write, false)
}

// ColdMisses charges n capacity misses from the core's local DRAM: the
// working-set accesses (request buffers, application heap, log and
// stat structures) that fall out of real, finite caches between
// requests. The coherence directory models infinite caches, so without
// this the simulator would undercount misses by the large factor the
// paper's Table 3 counters reveal.
func (m *Model) ColdMisses(core, n int) AccessResult {
	if n <= 0 {
		return AccessResult{}
	}
	chip := m.Machine.Chip(core)
	issue := m.IssueNow
	var total sim.Cycles
	for i := 0; i < n; i++ {
		step := m.Machine.Lat.RAM + m.dramDelay(chip, issue)
		total += step
		issue += step
	}
	return AccessResult{Cycles: total, Miss: true}
}

// AccessInit performs initialization writes: the coherence transitions
// and costs of a write, without registering the core as a sharing writer
// (DProf does not count the allocator populating a fresh object).
func (m *Model) AccessInit(core int, o *Object, f FieldID) AccessResult {
	return m.access(core, o, f, true, true)
}

func (m *Model) access(core int, o *Object, f FieldID, write, init bool) AccessResult {
	t := o.Type
	homeChip := m.Machine.Chip(int(o.AllocCore))
	ts := m.statsOf(t)
	var res AccessResult
	watched := len(ts.watch) > 0 && ts.watch[f]
	for li := t.firstLine[f]; li <= t.lastLine[f]; li++ {
		l := &o.lines[li]
		cyc, miss, shared := m.lineAccess(l, core, write, homeChip)
		res.Cycles += cyc
		res.Miss = res.Miss || miss
		res.Shared = res.Shared || shared
		ts.accesses++
		if shared {
			ts.sharedCycles += uint64(cyc)
			if m.Profiling {
				ts.latencies.Observe(float64(cyc))
			}
		}
		if watched {
			ts.watchedCycles += uint64(cyc)
			if ts.watchLat != nil {
				ts.watchLat.Observe(float64(cyc))
			}
		}
	}
	if m.Profiling && o.prof != nil && !init {
		if write {
			o.prof.writers[f].set(core)
		}
		o.prof.readers[f].set(core)
	}
	return res
}

// AccessRepeat models n back-to-back touches of the same field from the
// same core: the first access pays the full coherence cost, the rest hit
// L1. It exists because Linux touches hot socket fields many times per
// packet; simulating each touch through the directory would be wasted
// work once the line is local.
func (m *Model) AccessRepeat(core int, o *Object, f FieldID, write bool, n int) AccessResult {
	if n <= 0 {
		return AccessResult{}
	}
	res := m.access(core, o, f, write, false)
	if n > 1 {
		extra := sim.Cycles(uint64(n-1)) * m.Machine.Lat.L1
		res.Cycles += extra
		ts := m.statsOf(o.Type)
		ts.accesses += uint64(n - 1)
		if res.Shared {
			ts.sharedCycles += uint64(extra)
		}
	}
	return res
}

// WatchFields arms watched-access accounting for the given fields of a
// type (used to measure, under Affinity-Accept, the cost of accessing
// the bytes that Fine-Accept shared).
func (m *Model) WatchFields(t *TypeInfo, fields []FieldID) {
	ts := m.statsOf(t)
	ts.watch = make([]bool, len(t.Fields))
	for _, f := range fields {
		ts.watch[f] = true
	}
	ts.watchLat = stats.NewLatencyHistogram()
}

// SharedFields reports, per type, the fields that were observed with
// more than one reader (requires Profiling; call after the run).
func (m *Model) SharedFields() map[*TypeInfo][]FieldID {
	out := make(map[*TypeInfo][]FieldID)
	for t, ts := range m.stats {
		for fi, shared := range ts.fieldMultiReader {
			if shared {
				out[t] = append(out[t], FieldID(fi))
			}
		}
	}
	return out
}

// WatchedCycles reports accumulated watched-access cycles for a type.
func (m *Model) WatchedCycles(t *TypeInfo) uint64 {
	return m.statsOf(t).watchedCycles
}

// WatchedLatencies merges watched-access latency histograms of the named
// types (or all types when none are named).
func (m *Model) WatchedLatencies(names ...string) *stats.Histogram {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	h := stats.NewLatencyHistogram()
	for _, ts := range m.stats {
		if ts.watchLat != nil && (len(names) == 0 || want[ts.info.Name]) {
			h.Merge(ts.watchLat)
		}
	}
	return h
}

// harvest folds a dying object's sharing state into its type statistics.
func (m *Model) harvest(o *Object) {
	ts := m.statsOf(o.Type)
	for i := range o.lines {
		if o.lines[i].shared {
			ts.linesShared++
		}
	}
	if o.prof != nil {
		t := o.Type
		if ts.fieldMultiReader == nil {
			ts.fieldMultiReader = make([]bool, len(t.Fields))
		}
		// Byte accounting: a field's bytes are shared when more than one
		// core accessed the field; shared RW when additionally some core
		// wrote it after initialization.
		for fi, f := range t.Fields {
			readers := o.prof.readers[fi]
			writers := o.prof.writers[fi]
			if readers.count() > 1 {
				ts.bytesShared += uint64(f.Len)
				ts.fieldMultiReader[fi] = true
				if writers.count() > 0 {
					ts.bytesSharedRW += uint64(f.Len)
				}
			}
		}
	}
}

// HarvestLive folds still-allocated objects into statistics at the end of
// a run (connections still open when measurement stops).
func (m *Model) HarvestLive(objs []*Object) {
	for _, o := range objs {
		m.harvest(o)
	}
}

// TypeReport is one row of the paper's Table 4.
type TypeReport struct {
	Name             string
	Size             int
	PctLinesShared   float64
	PctBytesShared   float64
	PctBytesSharedRW float64
	// SharedCycles is the total cycle cost of accesses to shared lines;
	// the experiment divides by HTTP request count for the table's last
	// column.
	SharedCycles uint64
	Accesses     uint64
	Objects      uint64
	// Latencies holds shared-access latency samples (Figure 4).
	Latencies *stats.Histogram
}

// Report produces DProf rows for all tracked types, sorted by shared
// cycles descending (the paper's presentation order).
func (m *Model) Report() []TypeReport {
	rows := make([]TypeReport, 0, len(m.stats))
	for _, ts := range m.stats {
		r := TypeReport{
			Name:         ts.info.Name,
			Size:         ts.info.Size,
			SharedCycles: ts.sharedCycles,
			Accesses:     ts.accesses,
			Objects:      ts.objects,
			Latencies:    ts.latencies,
		}
		if ts.linesTotal > 0 {
			r.PctLinesShared = 100 * float64(ts.linesShared) / float64(ts.linesTotal)
		}
		if ts.bytesTotal > 0 {
			r.PctBytesShared = 100 * float64(ts.bytesShared) / float64(ts.bytesTotal)
			r.PctBytesSharedRW = 100 * float64(ts.bytesSharedRW) / float64(ts.bytesTotal)
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].SharedCycles > rows[j].SharedCycles })
	return rows
}

// SharedLatencies merges the shared-access latency histograms of the
// given type names (Figure 4 plots the union of the top shared types).
func (m *Model) SharedLatencies(names ...string) *stats.Histogram {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	h := stats.NewLatencyHistogram()
	for _, ts := range m.stats {
		if len(names) == 0 || want[ts.info.Name] {
			h.Merge(ts.latencies)
		}
	}
	return h
}
