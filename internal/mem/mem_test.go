package mem

import (
	"testing"
	"testing/quick"
)

var testType = NewType("test_sock", 256,
	Field{Name: "rx", Off: 0, Len: 64},
	Field{Name: "tx", Off: 64, Len: 64},
	Field{Name: "meta", Off: 128, Len: 16},
	Field{Name: "wide", Off: 120, Len: 80}, // straddles two lines
)

func TestMachinePresetsMatchTable1(t *testing.T) {
	amd := AMD48()
	if amd.Cores() != 48 || amd.Chips != 8 || amd.CoresPerChip != 6 {
		t.Fatal("AMD topology wrong")
	}
	if amd.Lat.L1 != 3 || amd.Lat.L2 != 14 || amd.Lat.L3 != 28 ||
		amd.Lat.RAM != 120 || amd.Lat.RemoteL3 != 460 || amd.Lat.RemoteRAM != 500 {
		t.Fatal("AMD latencies do not match Table 1")
	}
	intel := Intel80()
	if intel.Cores() != 80 {
		t.Fatal("Intel core count wrong")
	}
	if intel.Lat.L1 != 4 || intel.Lat.L2 != 12 || intel.Lat.L3 != 24 ||
		intel.Lat.RAM != 90 || intel.Lat.RemoteL3 != 200 || intel.Lat.RemoteRAM != 280 {
		t.Fatal("Intel latencies do not match Table 1")
	}
}

func TestSameChip(t *testing.T) {
	m := AMD48()
	if !m.SameChip(0, 5) || m.SameChip(5, 6) || !m.SameChip(42, 47) {
		t.Fatal("chip adjacency wrong")
	}
}

func TestWithCores(t *testing.T) {
	m := AMD48().WithCores(12)
	if m.Chips != 2 || m.Cores() != 12 {
		t.Fatalf("WithCores(12): %d chips, %d cores", m.Chips, m.Cores())
	}
	if got := AMD48().WithCores(100).Cores(); got != 48 {
		t.Fatalf("WithCores beyond machine grew it: %d", got)
	}
	if got := AMD48().WithCores(7).Cores(); got != 12 {
		// Rounds up to whole chips.
		t.Fatalf("WithCores(7) = %d cores, want 12", got)
	}
}

func TestTypeLineSpans(t *testing.T) {
	if testType.Lines() != 4 {
		t.Fatalf("lines = %d, want 4", testType.Lines())
	}
	id, ok := testType.FieldByName("wide")
	if !ok {
		t.Fatal("field lookup failed")
	}
	if testType.firstLine[id] != 1 || testType.lastLine[id] != 3 {
		t.Fatalf("wide spans lines %d..%d, want 1..3",
			testType.firstLine[id], testType.lastLine[id])
	}
}

func TestTypeFieldOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewType("bad", 64, Field{Name: "f", Off: 60, Len: 10})
}

func fieldID(t *testing.T, name string) FieldID {
	t.Helper()
	id, ok := testType.FieldByName(name)
	if !ok {
		t.Fatalf("no field %s", name)
	}
	return id
}

func TestLocalAccessPattern(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	rx := fieldID(t, "rx")

	// First touch: DRAM (local home).
	r := m.Access(0, o, rx, true)
	if r.Cycles != m.Machine.Lat.RAM || !r.Miss {
		t.Fatalf("cold write cost %d miss=%v, want RAM %d miss",
			r.Cycles, r.Miss, m.Machine.Lat.RAM)
	}
	// Re-touch on same core: L1, no miss, never shared.
	r = m.Access(0, o, rx, false)
	if r.Cycles != m.Machine.Lat.L1 || r.Miss || r.Shared {
		t.Fatalf("hot read: %+v", r)
	}
}

func TestCrossCoreDirtyTransfer(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	rx := fieldID(t, "rx")

	m.Access(0, o, rx, true) // dirty on core 0
	// Core 1 (same chip) reads: dirty cache-to-cache on chip = L3.
	r := m.Access(1, o, rx, false)
	if r.Cycles != m.Machine.Lat.L3 || !r.Miss || !r.Shared {
		t.Fatalf("same-chip dirty read: %+v, want L3 %d", r, m.Machine.Lat.L3)
	}
	// Re-dirty on 0, then core 6 (remote chip) reads: RemoteL3.
	m.Access(0, o, rx, true)
	r = m.Access(6, o, rx, false)
	if r.Cycles != m.Machine.Lat.RemoteL3 {
		t.Fatalf("remote dirty read cost %d, want RemoteL3 %d",
			r.Cycles, m.Machine.Lat.RemoteL3)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	rx := fieldID(t, "rx")

	m.Access(0, o, rx, true)
	m.Access(1, o, rx, false) // core 1 now shares
	m.Access(0, o, rx, true)  // write invalidates core 1
	r := m.Access(1, o, rx, false)
	if !r.Miss {
		t.Fatal("core 1 should miss after invalidation")
	}
}

func TestCleanSharedServedFromChipL3(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	meta := fieldID(t, "meta")

	m.Access(0, o, meta, false) // clean copy on chip 0
	r := m.Access(1, o, meta, false)
	if r.Cycles != m.Machine.Lat.L3 {
		t.Fatalf("clean on-chip read cost %d, want L3", r.Cycles)
	}
	// Remote chip with no copy: home DRAM is chip 0, remote to core 6.
	r = m.Access(12, o, meta, false)
	if r.Cycles != m.Machine.Lat.RemoteRAM {
		t.Fatalf("remote clean read cost %d, want RemoteRAM %d",
			r.Cycles, m.Machine.Lat.RemoteRAM)
	}
}

func TestRemoteHomeDRAM(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(47, testType) // home chip 7
	rx := fieldID(t, "rx")
	r := m.Access(0, o, rx, false)
	if r.Cycles != m.Machine.Lat.RemoteRAM {
		t.Fatalf("cold read of remote-home line cost %d, want RemoteRAM", r.Cycles)
	}
}

func TestWideFieldChargesPerLine(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	wide := fieldID(t, "wide")
	r := m.Access(0, o, wide, true)
	// wide spans 3 lines; all cold -> 3x RAM.
	if r.Cycles != 3*m.Machine.Lat.RAM {
		t.Fatalf("wide access cost %d, want %d", r.Cycles, 3*m.Machine.Lat.RAM)
	}
}

func TestRemoteFreePenalty(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	m.Access(0, o, fieldID(t, "rx"), true)
	costLocal := m.Free(0, o)

	o2, _ := m.Alloc(0, testType)
	m.Access(0, o2, fieldID(t, "rx"), true)
	costRemote := m.Free(12, o2) // cross-chip free
	if costRemote <= costLocal {
		t.Fatalf("remote free (%d) not more expensive than local (%d)",
			costRemote, costLocal)
	}
	if m.RemoteFrees != 1 {
		t.Fatalf("RemoteFrees = %d", m.RemoteFrees)
	}
}

func TestFreelistRecyclesAndResets(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	m.Access(3, o, fieldID(t, "rx"), true)
	m.Free(0, o)
	o2, _ := m.Alloc(1, testType)
	if o2 != o {
		t.Fatal("freelist did not recycle the object")
	}
	r := m.Access(1, o2, fieldID(t, "rx"), false)
	if r.Shared {
		t.Fatal("recycled object kept stale sharing state")
	}
	if o2.AllocCore != 1 {
		t.Fatal("alloc core not reset")
	}
}

func TestDProfSharingReport(t *testing.T) {
	m := NewModel(AMD48())
	m.Profiling = true
	rx, tx := fieldID(t, "rx"), fieldID(t, "tx")

	// Object A: single-core use (affinity behaviour).
	a, _ := m.Alloc(0, testType)
	m.Access(0, a, rx, true)
	m.Access(0, a, tx, true)
	m.Free(0, a)

	// Object B: softirq on core 1 writes rx, app on core 7 reads rx and
	// writes tx (fine-accept behaviour).
	b, _ := m.Alloc(1, testType)
	m.Access(1, b, rx, true)
	m.Access(7, b, rx, false)
	m.Access(7, b, tx, true)
	m.Access(1, b, tx, false)
	m.Free(7, b)

	rows := m.Report()
	var row *TypeReport
	for i := range rows {
		if rows[i].Name == "test_sock" {
			row = &rows[i]
		}
	}
	if row == nil {
		t.Fatal("no report row for test_sock")
	}
	// Object B had rx+tx lines shared (2 of 4); object A none: 2/8 lines.
	if row.PctLinesShared != 25 {
		t.Fatalf("lines shared = %v%%, want 25%%", row.PctLinesShared)
	}
	// Bytes: B shares rx (64) and tx (64) of 2*256 total = 25%.
	if row.PctBytesShared != 25 {
		t.Fatalf("bytes shared = %v%%, want 25%%", row.PctBytesShared)
	}
	// Both shared fields were written by someone: RW == shared here.
	if row.PctBytesSharedRW != 25 {
		t.Fatalf("bytes shared RW = %v%%, want 25%%", row.PctBytesSharedRW)
	}
	if row.SharedCycles == 0 {
		t.Fatal("no shared cycles recorded")
	}
	if row.Latencies.Count() == 0 {
		t.Fatal("no latency samples for Figure 4")
	}
}

func TestHarvestLive(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	m.Access(0, o, fieldID(t, "rx"), true)
	m.Access(1, o, fieldID(t, "rx"), false)
	m.HarvestLive([]*Object{o})
	rows := m.Report()
	if len(rows) == 0 || rows[0].PctLinesShared == 0 {
		t.Fatal("live harvest did not record sharing")
	}
}

func TestSharedLatenciesFilter(t *testing.T) {
	m := NewModel(AMD48())
	m.Profiling = true
	o, _ := m.Alloc(0, testType)
	m.Access(0, o, fieldID(t, "rx"), true)
	m.Access(1, o, fieldID(t, "rx"), false)
	if m.SharedLatencies("test_sock").Count() == 0 {
		t.Fatal("filtered latencies empty")
	}
	if m.SharedLatencies("absent_type").Count() != 0 {
		t.Fatal("filter matched wrong type")
	}
	if m.SharedLatencies().Count() == 0 {
		t.Fatal("unfiltered latencies empty")
	}
}

// Property: access cost is always one of the hierarchy latencies per line,
// and single-core access streams never mark lines shared.
func TestSingleCoreNeverShares(t *testing.T) {
	f := func(ops []bool) bool {
		m := NewModel(AMD48())
		o, _ := m.Alloc(3, testType)
		for _, w := range ops {
			r := m.Access(3, o, FieldID(0), w)
			if r.Shared {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: costs are bounded by the extreme hierarchy latencies.
func TestAccessCostBounds(t *testing.T) {
	mach := AMD48()
	f := func(cores []uint8, writes []bool) bool {
		m := NewModel(mach)
		o, _ := m.Alloc(0, testType)
		n := len(cores)
		if len(writes) < n {
			n = len(writes)
		}
		for i := 0; i < n; i++ {
			core := int(cores[i]) % mach.Cores()
			r := m.Access(core, o, FieldID(0), writes[i])
			if r.Cycles < mach.Lat.L1 || r.Cycles > mach.Lat.RemoteRAM {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreMaskOps(t *testing.T) {
	var m coreMask
	if m.count() != 0 || !m.onlySelfOrEmpty(3) {
		t.Fatal("empty mask misbehaves")
	}
	m.set(3)
	m.set(70)
	if !m.has(3) || !m.has(70) || m.has(4) {
		t.Fatal("set/has wrong")
	}
	if m.count() != 2 {
		t.Fatalf("count = %d", m.count())
	}
	if m.onlySelfOrEmpty(3) {
		t.Fatal("mask with 2 cores claimed exclusive")
	}
	var solo coreMask
	solo.set(5)
	if !solo.onlySelfOrEmpty(5) || solo.onlySelfOrEmpty(6) {
		t.Fatal("onlySelfOrEmpty wrong")
	}
	if !m.anyInRange(64, 128) || m.anyInRange(8, 16) {
		t.Fatal("anyInRange wrong")
	}
	m.clear()
	if m.count() != 0 {
		t.Fatal("clear failed")
	}
}
