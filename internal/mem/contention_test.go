package mem

import (
	"testing"

	"affinityaccept/internal/sim"
)

// clockAt returns a Clock function reading from a settable time.
func clockAt(t *sim.Time) func() sim.Time {
	return func() sim.Time { return *t }
}

func TestEvictHitsTurnsHitsIntoDRAMRefills(t *testing.T) {
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, testType)
	f, _ := testType.FieldByName("rx")

	m.Access(0, o, f, true)
	r := m.Access(0, o, f, false)
	if r.Cycles != m.Machine.Lat.L1 || r.Miss {
		t.Fatalf("without eviction: %+v, want L1 hit", r)
	}

	m.EvictHits = true
	r = m.Access(0, o, f, false)
	if r.Cycles < m.Machine.Lat.RAM || !r.Miss {
		t.Fatalf("with eviction: %+v, want DRAM refill", r)
	}
	// Repeats within one operation still hit L1.
	r = m.AccessRepeat(0, o, f, false, 3)
	want := m.Machine.Lat.RAM + 2*m.Machine.Lat.L1
	if r.Cycles != want {
		t.Fatalf("repeat cost %d, want %d (one refill + L1 repeats)", r.Cycles, want)
	}
}

func TestEvictHitsKeepsRemoteTransfersRemote(t *testing.T) {
	m := NewModel(AMD48())
	m.EvictHits = true
	o, _ := m.Alloc(0, testType)
	f, _ := testType.FieldByName("rx")
	m.Access(0, o, f, true)
	// A cross-chip reader still pays the remote-cache latency, which
	// exceeds the local refill: the Fine-vs-Affinity asymmetry.
	r := m.Access(12, o, f, false)
	if r.Cycles < m.Machine.Lat.RemoteL3 {
		t.Fatalf("remote dirty read %d, want >= RemoteL3", r.Cycles)
	}
}

func TestDRAMControllerQueues(t *testing.T) {
	m := NewModel(AMD48())
	var now sim.Time
	m.Clock = clockAt(&now)
	m.CtlService = 40

	// Two cores on the same chip issue misses at the same instant: the
	// second one queues behind the first.
	m.IssueNow = 0
	r1 := m.ColdMisses(0, 1)
	m.IssueNow = 0
	r2 := m.ColdMisses(1, 1)
	if r1.Cycles != m.Machine.Lat.RAM {
		t.Fatalf("first access %d, want bare RAM", r1.Cycles)
	}
	if r2.Cycles != m.Machine.Lat.RAM+40 {
		t.Fatalf("second access %d, want RAM+service", r2.Cycles)
	}
	if m.CtlDelays == 0 {
		t.Fatal("no delay recorded")
	}
}

func TestDRAMControllerNoSelfQueueing(t *testing.T) {
	m := NewModel(AMD48())
	var now sim.Time
	m.Clock = clockAt(&now)
	m.CtlService = 40

	// One core's sequential misses are spaced by the DRAM latency
	// itself (120 > 40), so they never queue against each other.
	m.IssueNow = 0
	r := m.ColdMisses(0, 10)
	if r.Cycles != 10*m.Machine.Lat.RAM {
		t.Fatalf("10 sequential misses cost %d, want %d", r.Cycles, 10*m.Machine.Lat.RAM)
	}
}

func TestDRAMControllerSeparateChips(t *testing.T) {
	m := NewModel(AMD48())
	var now sim.Time
	m.Clock = clockAt(&now)
	m.CtlService = 40
	m.IssueNow = 0
	m.ColdMisses(0, 1) // chip 0
	m.IssueNow = 0
	r := m.ColdMisses(6, 1) // chip 1: independent controller
	if r.Cycles != m.Machine.Lat.RAM {
		t.Fatalf("other chip queued: %d", r.Cycles)
	}
}

func TestDRAMQueueBounded(t *testing.T) {
	m := NewModel(AMD48())
	var now sim.Time
	m.Clock = clockAt(&now)
	m.CtlService = 40
	// Hammer the controller from many "cores" at the same instant; the
	// delay must stay below the bound.
	for c := 0; c < 6; c++ {
		for i := 0; i < 200; i++ {
			m.IssueNow = 0
			r := m.ColdMisses(c, 1)
			if d := r.Cycles - m.Machine.Lat.RAM; d > 25_000 {
				t.Fatalf("unbounded queue delay %d", d)
			}
		}
	}
}

func TestWatchFieldsAccumulate(t *testing.T) {
	m := NewModel(AMD48())
	m.Profiling = true
	f, _ := testType.FieldByName("rx")
	m.WatchFields(testType, []FieldID{f})

	o, _ := m.Alloc(0, testType)
	m.Access(0, o, f, true)
	m.Access(0, o, f, false)
	if m.WatchedCycles(testType) == 0 {
		t.Fatal("watched cycles not recorded")
	}
	if m.WatchedLatencies("test_sock").Count() != 2 {
		t.Fatalf("watched samples = %d", m.WatchedLatencies("test_sock").Count())
	}
	if m.WatchedLatencies("absent").Count() != 0 {
		t.Fatal("filter leak")
	}
}

func TestSharedFieldsFeedWatch(t *testing.T) {
	// Pass 1: shared access under "fine" conditions.
	m1 := NewModel(AMD48())
	m1.Profiling = true
	rx, _ := testType.FieldByName("rx")
	tx, _ := testType.FieldByName("tx")
	o, _ := m1.Alloc(0, testType)
	m1.Access(0, o, rx, true)
	m1.Access(7, o, rx, false) // shared
	m1.Access(0, o, tx, true)  // private
	m1.Free(0, o)

	shared := m1.SharedFields()
	fields, ok := shared[testType]
	if !ok || len(fields) != 1 || fields[0] != rx {
		t.Fatalf("shared fields = %v, want [rx]", fields)
	}

	// Pass 2: watch exactly those fields in a local-only run.
	m2 := NewModel(AMD48())
	m2.Profiling = true
	m2.WatchFields(testType, fields)
	o2, _ := m2.Alloc(3, testType)
	m2.Access(3, o2, rx, true)
	m2.Access(3, o2, tx, true) // unwatched
	if m2.WatchedCycles(testType) == 0 {
		t.Fatal("watched access not counted")
	}
	wl := m2.WatchedLatencies()
	if wl.Count() != 1 {
		t.Fatalf("watched %d accesses, want only the rx one", wl.Count())
	}
}

func TestLinesFullVsTracked(t *testing.T) {
	big := NewType("big", 16384, Field{Name: "hot", Off: 0, Len: 64})
	if big.Lines() != 1 {
		t.Fatalf("tracked lines = %d, want 1", big.Lines())
	}
	if big.LinesFull() != 256 {
		t.Fatalf("full lines = %d, want 256", big.LinesFull())
	}
	// Sharing percentages divide by the full size.
	m := NewModel(AMD48())
	o, _ := m.Alloc(0, big)
	m.Access(0, o, 0, true)
	m.Access(1, o, 0, false)
	m.HarvestLive([]*Object{o})
	rows := m.Report()
	for _, r := range rows {
		if r.Name == "big" {
			if r.PctLinesShared > 0.5 {
				t.Fatalf("pct lines shared %.2f, want 1/256", r.PctLinesShared)
			}
			return
		}
	}
	t.Fatal("no report row")
}
