package mem

import "fmt"

// FieldID names a byte range inside a TypeInfo.
type FieldID int

// Field is a named byte range of a kernel structure. Kernel operations
// touch fields, and DProf byte-sharing statistics are computed per field.
type Field struct {
	Name string
	Off  int
	Len  int
}

// TypeInfo describes the layout of one kernel data structure tracked by
// the coherence model (for example tcp_sock, 1664 bytes, Table 4).
type TypeInfo struct {
	Name   string
	Size   int
	Fields []Field

	lines     int
	linesFull int
	// firstLine/lastLine cache the cache-line span of each field.
	firstLine, lastLine []int
}

// NewType builds a TypeInfo. Fields may overlap lines arbitrarily; they
// must lie within the object. Coherence state is only allocated for the
// line span actually covered by fields (the "tracked" prefix): a 16 KB
// kernel stack whose hot data sits in its first 128 bytes costs two
// tracked lines, while sharing percentages are still reported against
// the full object size — untouched lines are never shared, so the
// denominator is exact either way.
func NewType(name string, size int, fields ...Field) *TypeInfo {
	t := &TypeInfo{
		Name:      name,
		Size:      size,
		Fields:    fields,
		linesFull: (size + CacheLineSize - 1) / CacheLineSize,
	}
	maxEnd := 0
	for _, f := range fields {
		if f.Len <= 0 || f.Off < 0 || f.Off+f.Len > size {
			panic(fmt.Sprintf("mem: field %s.%s out of range", name, f.Name))
		}
		t.firstLine = append(t.firstLine, f.Off/CacheLineSize)
		t.lastLine = append(t.lastLine, (f.Off+f.Len-1)/CacheLineSize)
		if end := f.Off + f.Len; end > maxEnd {
			maxEnd = end
		}
	}
	t.lines = (maxEnd + CacheLineSize - 1) / CacheLineSize
	if t.lines == 0 {
		t.lines = 1
	}
	return t
}

// Lines reports how many cache lines carry coherence state.
func (t *TypeInfo) Lines() int { return t.lines }

// LinesFull reports how many lines the whole object spans (the
// denominator for Table 4's "% of cache lines shared").
func (t *TypeInfo) LinesFull() int { return t.linesFull }

// FieldByName returns the FieldID for a named field, for tests.
func (t *TypeInfo) FieldByName(name string) (FieldID, bool) {
	for i, f := range t.Fields {
		if f.Name == name {
			return FieldID(i), true
		}
	}
	return 0, false
}

// coreMask is a bitmask over cores.
type coreMask [MaxCores / 64]uint64

func (m *coreMask) set(core int)      { m[core>>6] |= 1 << (core & 63) }
func (m *coreMask) has(core int) bool { return m[core>>6]&(1<<(core&63)) != 0 }
func (m *coreMask) clear()            { *m = coreMask{} }

func (m *coreMask) count() int {
	n := 0
	for _, w := range m {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// onlyOther reports whether the mask is empty or contains only the given
// core.
func (m *coreMask) onlySelfOrEmpty(core int) bool {
	for i, w := range m {
		if i == core>>6 {
			w &^= 1 << (core & 63)
		}
		if w != 0 {
			return false
		}
	}
	return true
}

// anyInChipRange reports whether any set bit falls in [lo, hi).
func (m *coreMask) anyInRange(lo, hi int) bool {
	for c := lo; c < hi; c++ {
		if m.has(c) {
			return true
		}
	}
	return false
}

// Line is the coherence state of one cache line of one object.
type Line struct {
	sharers coreMask
	owner   int16 // last writer, -1 if never written
	last    int16 // last accessor, -1 initially
	dirty   bool
	shared  bool // accessed by more than one core over object lifetime
}

// Object is the coherence shadow of one allocated kernel structure.
type Object struct {
	Type      *TypeInfo
	AllocCore int16

	lines []Line
	prof  *objProf // field-level masks; nil unless profiling

	// nextFree links free-list entries inside the allocator.
	nextFree *Object
}

// objProf holds per-object field access masks for DProf byte accounting.
type objProf struct {
	readers []coreMask // per field
	writers []coreMask
}

func (o *Object) reset(core int16, profiling bool) {
	o.AllocCore = core
	for i := range o.lines {
		o.lines[i] = Line{owner: -1, last: -1}
	}
	if profiling {
		if o.prof == nil {
			o.prof = &objProf{
				readers: make([]coreMask, len(o.Type.Fields)),
				writers: make([]coreMask, len(o.Type.Fields)),
			}
		} else {
			for i := range o.prof.readers {
				o.prof.readers[i].clear()
				o.prof.writers[i].clear()
			}
		}
	} else {
		o.prof = nil
	}
}
