// Package mem models the memory system of the paper's evaluation
// machines (§2): cache-line coherence between cores, the latency
// hierarchy of Table 1, a slab allocator with per-core pools and
// remote-free penalties, and the per-type sharing statistics that DProf
// reports in Table 4 (§2.1). This is the cost model that makes
// off-core connection processing expensive, which is the paper's whole
// case for connection affinity.
//
// The simulator does not store application data; an Object is purely a
// coherence shadow — a set of cache lines with owner/sharer metadata.
// Substrates declare the layout of kernel structures (tcp_sock, sk_buff,
// …) as TypeInfos with named byte-range fields, and every simulated
// kernel operation touches the fields it would touch in Linux. The model
// charges the access latency implied by where the line currently lives.
package mem

import "affinityaccept/internal/sim"

// CacheLineSize is the coherence granularity of both machines.
const CacheLineSize = 64

// MaxCores bounds the sharer bitmask width.
const MaxCores = 128

// Latencies holds access times in cycles to each level of the memory
// hierarchy (the paper's Table 1). Remote values are between the two
// chips farthest apart on the interconnect.
type Latencies struct {
	L1, L2, L3, RAM     sim.Cycles
	RemoteL3, RemoteRAM sim.Cycles
}

// Machine describes one of the evaluation hosts.
type Machine struct {
	Name         string
	Chips        int
	CoresPerChip int
	Freq         uint64
	Lat          Latencies
}

// Cores reports the machine's total core count.
func (m Machine) Cores() int { return m.Chips * m.CoresPerChip }

// Chip reports which chip a core belongs to.
func (m Machine) Chip(core int) int { return core / m.CoresPerChip }

// SameChip reports whether two cores share an L3.
func (m Machine) SameChip(a, b int) bool { return m.Chip(a) == m.Chip(b) }

// WithCores returns a copy of the machine restricted to n cores, keeping
// the chip topology (used for core-count sweeps in Figures 2/3/5/6).
func (m Machine) WithCores(n int) Machine {
	c := m
	if n < m.Cores() {
		// Keep cores-per-chip; the sweep enables whole cores in order,
		// matching how the paper onlines CPUs.
		c.Chips = (n + m.CoresPerChip - 1) / m.CoresPerChip
	}
	return c
}

// AMD48 is the paper's 48-core machine: eight 6-core 2.4 GHz AMD Opteron
// 8431 chips. Latencies are Table 1's AMD row.
func AMD48() Machine {
	return Machine{
		Name:         "AMD48",
		Chips:        8,
		CoresPerChip: 6,
		Freq:         sim.DefaultFreq,
		Lat: Latencies{
			L1: 3, L2: 14, L3: 28, RAM: 120,
			RemoteL3: 460, RemoteRAM: 500,
		},
	}
}

// Intel80 is the paper's 80-core machine: eight 10-core 2.4 GHz Intel
// Xeon E7 8870 chips. Latencies are Table 1's Intel row.
func Intel80() Machine {
	return Machine{
		Name:         "Intel80",
		Chips:        8,
		CoresPerChip: 10,
		Freq:         sim.DefaultFreq,
		Lat: Latencies{
			L1: 4, L2: 12, L3: 24, RAM: 90,
			RemoteL3: 200, RemoteRAM: 280,
		},
	}
}
