package locks

import (
	"testing"

	"affinityaccept/internal/sim"
)

// TestGlobalClockAnchoring: a handler that advanced its core's local
// clock far ahead must not make later acquirers (at earlier local times
// but later dispatch order) wait spuriously.
func TestGlobalClockAnchoring(t *testing.T) {
	e := engine(2)
	l := New("t")
	// Core 0's event at t=0 runs long and uses the lock near its end.
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		c.Charge(1_000_000) // drift far ahead
		l.With(c, false, func() { c.Charge(100) })
	})
	// Core 1's event dispatches later (t=10) at a much earlier local
	// clock; the lock's service queue is anchored at dispatch time, so
	// it waits only the hold time, not the drift.
	var waited sim.Cycles
	e.OnCore(1, 10, func(_ *sim.Engine, c *sim.Core) {
		before := c.Now()
		l.Acquire(c, false)
		waited = c.Now() - before
		l.Unlock(c, c.Now())
	})
	e.Run(1 << 40)
	if waited > 200 {
		t.Fatalf("spurious cross-drift wait: %d cycles", waited)
	}
}

func TestQueueCapBoundsBacklog(t *testing.T) {
	e := engine(8)
	l := New("t")
	l.QueueCap = 1000
	// Many acquisitions at the same dispatch instant, each holding 500:
	// the virtual queue would grow unboundedly without the cap.
	var maxWait sim.Cycles
	for i := 0; i < 20; i++ {
		e.OnCore(i%8, 0, func(_ *sim.Engine, c *sim.Core) {
			before := c.Now()
			l.Acquire(c, false)
			if w := c.Now() - before; w > maxWait {
				maxWait = w
			}
			at := c.Now()
			c.Charge(500)
			l.Unlock(c, at)
		})
	}
	e.Run(1 << 40)
	if maxWait > 1000 {
		t.Fatalf("wait %d exceeded queue cap", maxWait)
	}
}

func TestSerializationThroughputBound(t *testing.T) {
	// A saturated lock serializes at ~1/hold: with 4 cores each
	// re-acquiring immediately, total acquisitions over a window track
	// window/hold.
	e := engine(4)
	l := New("t")
	const hold = 10_000
	var done int
	var loop func(en *sim.Engine, c *sim.Core)
	loop = func(en *sim.Engine, c *sim.Core) {
		l.Acquire(c, false)
		at := c.Now()
		c.Charge(hold)
		l.Unlock(c, at)
		done++
		if c.Now() < 10_000_000 {
			en.OnCore(c.ID, c.Now(), loop)
		}
	}
	for i := 0; i < 4; i++ {
		e.OnCore(i, 0, loop)
	}
	e.Run(12_000_000)
	// Window 10M cycles / 10k hold = ~1000 serialized sections.
	if done < 800 || done > 1400 {
		t.Fatalf("served %d critical sections, want ~1000 (serialized)", done)
	}
}

func TestSleepAdvancesIdleClock(t *testing.T) {
	e := engine(1)
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		c.Charge(100)
		c.Sleep(400)
		if c.Now() != 500 {
			t.Errorf("clock = %d", c.Now())
		}
		if c.IdleCycles() != 400 || c.BusyCycles() != 100 {
			t.Errorf("idle=%d busy=%d", c.IdleCycles(), c.BusyCycles())
		}
	})
	e.Run(1000)
}
