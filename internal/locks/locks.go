// Package locks models kernel locks in virtual time and gathers the
// lock_stat-style statistics behind the paper's Table 2.
//
// A lock is a timestamp resource: it is free again at freeAt. A core
// acquiring at time t waits max(0, freeAt-t) and then holds the lock
// until it calls Unlock with its (advanced) clock. Chains of contending
// acquirers therefore serialize exactly as a FIFO ticket lock would,
// without simulating individual spin iterations.
//
// Linux's socket lock runs in two modes (§6.3): process context first
// spins briefly, then sleeps (mutex mode), while softirq context always
// spins. The Lock type models both: waits up to SpinLimit are charged to
// the core as busy spinning; longer waits from process context park the
// caller and are accounted as idle time, matching how the paper's Table 2
// splits "socket lock wait" between spin and mutex columns.
package locks

import "affinityaccept/internal/sim"

// Stats aggregates lock_stat counters for one lock or one lock class.
type Stats struct {
	Acquisitions uint64
	Contended    uint64
	// SpinWait is total cycles spent spinning for the lock.
	SpinWait sim.Cycles
	// MutexWait is total cycles spent parked waiting for the lock
	// (counted as idle, like the paper's mutex-mode wait).
	MutexWait sim.Cycles
	// Hold is total cycles the lock was held.
	Hold sim.Cycles
}

// Merge folds other into s.
func (s *Stats) Merge(other Stats) {
	s.Acquisitions += other.Acquisitions
	s.Contended += other.Contended
	s.SpinWait += other.SpinWait
	s.MutexWait += other.MutexWait
	s.Hold += other.Hold
}

// Lock is a simulated kernel lock.
type Lock struct {
	Name string
	// SpinLimit is the longest wait charged as spinning; waits beyond it
	// from process context park the caller instead (mutex mode). Zero
	// means pure spinlock.
	SpinLimit sim.Cycles
	// HandoffDelay is the dead time between a mutex-mode holder's
	// release and a parked waiter actually resuming (wakeup IPI,
	// schedule-in, cache refill). Heavily contended mutex-mode locks
	// serialize at hold+handoff per critical section, which is what
	// collapses Stock-Accept's throughput in the paper's Figure 2.
	HandoffDelay sim.Cycles
	// QueueCap bounds the virtual wait queue: a core can have at most
	// one acquisition outstanding, so the backlog ahead of any acquirer
	// cannot exceed roughly (cores-1) holds. Zero means a generous
	// default. Without the cap, sustained overload would grow the
	// queue without bound, which no physical lock does.
	QueueCap sim.Cycles

	// vFree is when the lock's FIFO service queue drains, measured on
	// the engine's global event clock. Using the monotone dispatch
	// clock instead of per-core clocks (which drift ahead inside
	// handlers) makes the lock a proper single-server queue: each
	// acquisition waits for the queue, then appends its own hold time.
	vFree      sim.Time
	curStart   sim.Time
	curLocal   sim.Time
	lastHolder int16

	Stats Stats

	// Overhead, when nonzero, is added to every acquisition to model
	// lock_stat's accounting cost (the paper notes lock_stat measurably
	// lowers throughput).
	Overhead sim.Cycles
}

// New returns a named spinlock.
func New(name string) *Lock { return &Lock{Name: name, lastHolder: -1} }

// NewSocketLock returns a lock with Linux socket-lock behaviour: spin up
// to the given limit, then sleep.
func NewSocketLock(name string, spinLimit sim.Cycles) *Lock {
	return &Lock{Name: name, SpinLimit: spinLimit, lastHolder: -1}
}

// Acquire takes the lock on core c, advancing the core's clock across
// the wait. fromProcess selects process-context behaviour (mutex mode
// allowed); softirq context always spins. Queueing is anchored to the
// engine's global clock, so acquisitions serialize in dispatch order
// regardless of per-core clock drift.
func (l *Lock) Acquire(c *sim.Core, fromProcess bool) {
	l.Stats.Acquisitions++
	if l.Overhead > 0 {
		c.Charge(l.Overhead)
	}
	g := c.GlobalNow()
	cap := l.QueueCap
	if cap == 0 {
		cap = 400_000
	}
	if l.vFree > g+cap {
		// More backlog than physically possible: the excess reflects
		// acquirers whose cores gave up their slots; pull the queue in.
		l.vFree = g + cap
	}
	start := g
	if l.vFree > start {
		start = l.vFree
	}
	wait := sim.Cycles(start - g)
	if wait > 0 {
		l.Stats.Contended++
		if fromProcess && l.SpinLimit > 0 && wait > l.SpinLimit {
			// Spin for the limit, then park: the remainder plus the
			// wakeup handoff is idle time.
			parked := wait - l.SpinLimit + l.HandoffDelay
			l.Stats.SpinWait += l.SpinLimit
			l.Stats.MutexWait += parked
			c.Stall(l.SpinLimit)
			c.Sleep(parked)
			start += l.HandoffDelay
		} else {
			l.Stats.SpinWait += wait
			c.Stall(wait)
		}
	}
	l.lastHolder = int16(c.ID)
	l.curStart = start
	l.curLocal = c.Now()
	// Reserve the slot immediately so re-acquisitions within the same
	// event still queue behind this hold (the hold length is appended
	// at Unlock).
	l.vFree = start
}

// Unlock releases the lock: the hold time, measured on the holder's
// core clock, extends the lock's global service queue.
func (l *Lock) Unlock(c *sim.Core, acquiredAt sim.Time) {
	now := c.Now()
	var hold sim.Cycles
	if now > acquiredAt {
		hold = sim.Cycles(now - acquiredAt)
	}
	l.Stats.Hold += hold
	if l.Overhead > 0 {
		c.Charge(l.Overhead)
	}
	l.vFree = l.curStart + hold
}

// With runs fn while holding the lock and accounts hold time.
func (l *Lock) With(c *sim.Core, fromProcess bool, fn func()) {
	l.Acquire(c, fromProcess)
	at := c.Now()
	fn()
	l.Unlock(c, at)
}

// LastHolder reports the core that last held the lock, or -1.
func (l *Lock) LastHolder() int { return int(l.lastHolder) }

// BucketLocks is an array of locks guarding hash-table buckets, as the
// kernel uses for the established-connection table and as Affinity-Accept
// adds for the listen socket's request hash table (§5.2).
type BucketLocks struct {
	locks []Lock
	mask  uint64
}

// NewBucketLocks creates n bucket locks; n is rounded up to a power of 2.
func NewBucketLocks(name string, n int) *BucketLocks {
	size := 1
	for size < n {
		size <<= 1
	}
	b := &BucketLocks{locks: make([]Lock, size), mask: uint64(size - 1)}
	for i := range b.locks {
		b.locks[i].Name = name
		b.locks[i].lastHolder = -1
	}
	return b
}

// Bucket returns the lock guarding the bucket for hash h.
func (b *BucketLocks) Bucket(h uint64) *Lock { return &b.locks[h&b.mask] }

// Len reports the number of buckets.
func (b *BucketLocks) Len() int { return len(b.locks) }

// SetOverhead applies a lock_stat accounting cost to every bucket.
func (b *BucketLocks) SetOverhead(ov sim.Cycles) {
	for i := range b.locks {
		b.locks[i].Overhead = ov
	}
}

// Stats sums statistics across all buckets.
func (b *BucketLocks) Stats() Stats {
	var s Stats
	for i := range b.locks {
		s.Merge(b.locks[i].Stats)
	}
	return s
}
