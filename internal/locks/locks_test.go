package locks

import (
	"testing"
	"testing/quick"

	"affinityaccept/internal/sim"
)

func engine(cores int) *sim.Engine {
	return sim.New(sim.Config{Cores: cores, CoresPerChip: 6, Seed: 1})
}

func TestUncontendedAcquireIsFree(t *testing.T) {
	e := engine(1)
	l := New("test")
	e.OnCore(0, 100, func(_ *sim.Engine, c *sim.Core) {
		before := c.Now()
		l.Acquire(c, true)
		if c.Now() != before {
			t.Errorf("uncontended acquire advanced clock by %d", c.Now()-before)
		}
		c.Charge(50)
		l.Unlock(c, before)
	})
	e.Run(1000)
	if l.Stats.Acquisitions != 1 || l.Stats.Contended != 0 {
		t.Fatalf("stats: %+v", l.Stats)
	}
	if l.Stats.Hold != 50 {
		t.Fatalf("hold = %d, want 50", l.Stats.Hold)
	}
}

func TestContendedAcquireSerializes(t *testing.T) {
	e := engine(2)
	l := New("test")
	var order []int
	work := func(_ *sim.Engine, c *sim.Core) {
		l.Acquire(c, true)
		at := c.Now()
		order = append(order, c.ID)
		c.Charge(100)
		l.Unlock(c, at)
	}
	e.OnCore(0, 10, work)
	e.OnCore(1, 20, work) // overlaps the first holder
	e.Run(10_000)
	if len(order) != 2 {
		t.Fatalf("order: %v", order)
	}
	if l.Stats.SpinWait != 90 {
		t.Fatalf("spin wait = %d, want 90 (10+100-20)", l.Stats.SpinWait)
	}
	if l.LastHolder() != 1 {
		t.Fatalf("last holder = %d", l.LastHolder())
	}
}

func TestMutexModeParksBeyondSpinLimit(t *testing.T) {
	e := engine(2)
	l := NewSocketLock("sock", 100)
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		l.Acquire(c, true)
		at := c.Now()
		c.Charge(1000) // long hold
		l.Unlock(c, at)
	})
	var idleSeen sim.Cycles
	e.OnCore(1, 0, func(_ *sim.Engine, c *sim.Core) {
		l.Acquire(c, true)
		idleSeen = c.IdleCycles()
		l.Unlock(c, c.Now())
	})
	e.Run(100_000)
	// Wait was 1000: spin 100, park 900.
	if l.Stats.SpinWait != 100 {
		t.Fatalf("spin wait = %d, want 100", l.Stats.SpinWait)
	}
	if l.Stats.MutexWait != 900 {
		t.Fatalf("mutex wait = %d, want 900", l.Stats.MutexWait)
	}
	if idleSeen < 900 {
		t.Fatalf("parked wait not accounted as idle: %d", idleSeen)
	}
}

func TestSoftirqContextAlwaysSpins(t *testing.T) {
	e := engine(2)
	l := NewSocketLock("sock", 100)
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		l.Acquire(c, false)
		at := c.Now()
		c.Charge(1000)
		l.Unlock(c, at)
	})
	e.OnCore(1, 0, func(_ *sim.Engine, c *sim.Core) {
		l.Acquire(c, false) // softirq: must spin the whole wait
		l.Unlock(c, c.Now())
	})
	e.Run(100_000)
	if l.Stats.MutexWait != 0 {
		t.Fatalf("softirq context parked: %+v", l.Stats)
	}
	if l.Stats.SpinWait != 1000 {
		t.Fatalf("spin wait = %d, want 1000", l.Stats.SpinWait)
	}
}

func TestLockStatOverheadCharged(t *testing.T) {
	e := engine(1)
	l := New("test")
	l.Overhead = 25
	var elapsed sim.Cycles
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		start := c.Now()
		l.With(c, true, func() {})
		elapsed = c.Now() - start
	})
	e.Run(1000)
	if elapsed != 50 { // acquire + release overhead
		t.Fatalf("lockstat overhead charged %d, want 50", elapsed)
	}
}

func TestWithReleasesAndAccountsHold(t *testing.T) {
	e := engine(1)
	l := New("test")
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		l.With(c, true, func() { c.Charge(77) })
	})
	e.Run(1000)
	if l.Stats.Hold != 77 {
		t.Fatalf("hold = %d", l.Stats.Hold)
	}
}

func TestThreeWayPileupFIFOWait(t *testing.T) {
	e := engine(3)
	l := New("test")
	var starts []sim.Time
	work := func(_ *sim.Engine, c *sim.Core) {
		l.Acquire(c, false)
		at := c.Now()
		starts = append(starts, at)
		c.Charge(100)
		l.Unlock(c, at)
	}
	for core := 0; core < 3; core++ {
		e.OnCore(core, 0, work)
	}
	e.Run(100_000)
	if len(starts) != 3 {
		t.Fatalf("starts: %v", starts)
	}
	if starts[0] != 0 || starts[1] != 100 || starts[2] != 200 {
		t.Fatalf("pileup not serialized: %v", starts)
	}
}

func TestBucketLocksRoundUpAndDistribute(t *testing.T) {
	b := NewBucketLocks("req", 100)
	if b.Len() != 128 {
		t.Fatalf("len = %d, want 128", b.Len())
	}
	if b.Bucket(0) == b.Bucket(1) {
		t.Fatal("adjacent hashes share a bucket")
	}
	if b.Bucket(5) != b.Bucket(5+128) {
		t.Fatal("bucket mapping not modular")
	}
}

func TestBucketLocksStatsAggregate(t *testing.T) {
	e := engine(2)
	b := NewBucketLocks("req", 4)
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		b.Bucket(0).With(c, false, func() { c.Charge(10) })
		b.Bucket(1).With(c, false, func() { c.Charge(20) })
	})
	e.Run(1000)
	s := b.Stats()
	if s.Acquisitions != 2 || s.Hold != 30 {
		t.Fatalf("aggregate stats: %+v", s)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Acquisitions: 1, Contended: 1, SpinWait: 10, MutexWait: 20, Hold: 30}
	b := Stats{Acquisitions: 2, Contended: 0, SpinWait: 5, MutexWait: 0, Hold: 7}
	a.Merge(b)
	if a.Acquisitions != 3 || a.SpinWait != 15 || a.MutexWait != 20 || a.Hold != 37 {
		t.Fatalf("merge: %+v", a)
	}
}

// Property: under arbitrary contention, total hold time equals the sum of
// individual critical sections, and waits are non-negative (no time loss).
func TestHoldConservationProperty(t *testing.T) {
	f := func(offsets []uint8) bool {
		if len(offsets) == 0 || len(offsets) > 40 {
			return true
		}
		e := engine(8)
		l := New("p")
		var total sim.Cycles
		for i, off := range offsets {
			hold := sim.Cycles(10 + i%5)
			total += hold
			e.OnCore(i%8, sim.Time(off), func(_ *sim.Engine, c *sim.Core) {
				l.Acquire(c, false)
				at := c.Now()
				c.Charge(hold)
				l.Unlock(c, at)
			})
		}
		e.Run(1 << 40)
		return l.Stats.Hold == total && l.Stats.Acquisitions == uint64(len(offsets))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
