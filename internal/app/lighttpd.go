package app

import (
	"affinityaccept/internal/sim"
	"affinityaccept/internal/tcp"
)

// eventLoop is one core's lighttpd event loop. The paper runs ten
// processes per core; one loop entity with a small thread set models
// their combined behaviour (they share the core's timeline anyway).
type eventLoop struct {
	thread *tcp.Thread
	idle   bool
	kicked bool
	ready  []*tcp.Conn
}

// lighttpdConn is the per-connection application state.
type lighttpdConn struct {
	queued bool // already on a loop's ready list
}

// Lighttpd is the event-driven server model.
type Lighttpd struct {
	stack      *tcp.Stack
	loops      []*eventLoop
	wakeCursor int

	// UserWork overrides per-request application cycles (zero = default).
	UserWork sim.Cycles
}

// NewLighttpd builds the lighttpd model and registers it with the stack.
func NewLighttpd(s *tcp.Stack) *Lighttpd {
	n := len(s.Eng.Cores)
	l := &Lighttpd{stack: s, loops: make([]*eventLoop, n)}
	for i := range l.loops {
		l.loops[i] = &eventLoop{thread: s.NewThread(i), idle: true}
	}
	s.App = l
	return l
}

func (l *Lighttpd) userWork() sim.Cycles {
	if l.UserWork > 0 {
		return l.UserWork
	}
	return l.stack.Cfg.Costs.LighttpdUserWork
}

// ConnReady wakes an event loop for a new connection.
func (l *Lighttpd) ConnReady(k *tcp.K, coreID int) {
	if coreID >= 0 {
		l.wakeLocalOrRemote(k, coreID)
		return
	}
	// Stock/Fine: thundering herd of pollers.
	herd := 1 + l.stack.Cfg.Costs.HerdWakeups
	n := len(l.loops)
	for i := 0; i < n && herd > 0; i++ {
		idx := (l.wakeCursor + i) % n
		if l.loops[idx].idle {
			l.wakeLoop(k, idx)
			herd--
		}
	}
	l.wakeCursor = (l.wakeCursor + 1) % n
}

func (l *Lighttpd) wakeLocalOrRemote(k *tcp.K, coreID int) {
	if l.loops[coreID].idle {
		l.wakeLoop(k, coreID)
		return
	}
	l.loops[coreID].kicked = true
	q := l.stack.Queues()
	if !q.Busy(coreID) {
		return
	}
	n := len(l.loops)
	for i := 1; i < n; i++ {
		idx := (coreID + i) % n
		if l.loops[idx].idle && !q.Busy(idx) {
			l.wakeLoop(k, idx)
			return
		}
	}
}

func (l *Lighttpd) wakeLoop(k *tcp.K, coreID int) {
	lp := l.loops[coreID]
	lp.idle = false
	k.WakeThread(lp.thread)
	at := k.Core().Now()
	if el := k.Engine().Cores[coreID].UserEligibleAt(); el > at {
		at = el
	}
	k.Engine().OnCore(coreID, at, func(e *sim.Engine, c *sim.Core) {
		l.runLoop(e, c)
	})
}

// ConnReadable queues the connection on its owning core's ready list.
func (l *Lighttpd) ConnReadable(k *tcp.K, conn *tcp.Conn) {
	lc, _ := conn.AppData.(*lighttpdConn)
	if lc == nil || lc.queued {
		return
	}
	lc.queued = true
	lp := l.loops[conn.AppCore]
	lp.ready = append(lp.ready, conn)
	if lp.idle {
		l.wakeLoop(k, conn.AppCore)
	} else {
		lp.kicked = true
	}
}

// ConnClosed treats the close like readiness: the loop notices
// PeerClosed when it services the connection.
func (l *Lighttpd) ConnClosed(k *tcp.K, conn *tcp.Conn) {
	l.ConnReadable(k, conn)
}

// Bounded batch sizes per loop turn: a real event loop takes limited
// bites, which also throttles how much work a slow (CPU-starved) core
// can pull ahead of itself by stealing.
const (
	acceptBatch = 8
	readyBatch  = 16
)

// runLoop is one scheduling turn of the event loop: epoll, accept a
// bounded batch, service a bounded batch of ready connections, then
// either reschedule itself (more work) or sleep. User-share pacing
// stretches each turn on cores contended by CPU-bound jobs.
func (l *Lighttpd) runLoop(e *sim.Engine, c *sim.Core) {
	s := l.stack
	lp := l.loops[c.ID]
	paceStart := c.Now()
	lp.kicked = false
	s.ScheduleIn(c, lp.thread)
	nReady := len(lp.ready) + 1
	s.EpollWait(c, nReady)

	// Accept a bounded batch for this core — but only while the loop is
	// keeping up with its existing connections. Lighttpd caps open
	// connections per process (the paper configures 200), which pushes
	// backlog into the kernel accept queue where the busy watermarks
	// (and hence stealing and migration) can see it.
	accepted := 0
	for accepted < acceptBatch && len(lp.ready) < 2*readyBatch {
		conn := s.Accept(c)
		if conn == nil {
			break
		}
		accepted++
		s.PostAcceptSetup(c, conn)
		lc := &lighttpdConn{}
		conn.AppData = lc
		if conn.Readable() || conn.PeerClosed() {
			lc.queued = true
			lp.ready = append(lp.ready, conn)
		}
	}
	moreAccepts := accepted == acceptBatch

	// Service a bounded batch of ready connections.
	n := len(lp.ready)
	if n > readyBatch {
		n = readyBatch
	}
	batch := lp.ready[:n]
	rest := append([]*tcp.Conn(nil), lp.ready[n:]...)
	lp.ready = rest
	for _, conn := range batch {
		lc, _ := conn.AppData.(*lighttpdConn)
		if lc == nil {
			continue
		}
		lc.queued = false
		for {
			req, ok := s.Read(c, conn)
			if !ok {
				break
			}
			s.UserWork(c, l.userWork(), s.Cfg.Costs.UserColdLighttpd)
			s.Writev(c, conn, req.RespBytes)
		}
		if conn.PeerClosed() && !conn.Readable() {
			s.CloseConn(c, conn)
			conn.AppData = nil
		}
	}

	eligible := c.DeferUser(paceStart)
	if lp.kicked || len(lp.ready) > 0 || moreAccepts {
		e.OnCore(c.ID, eligible, func(e *sim.Engine, c *sim.Core) {
			l.runLoop(e, c)
		})
		return
	}
	lp.idle = true
	s.ScheduleOut(c, lp.thread)
}
