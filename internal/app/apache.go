// Package app models the two web servers the paper profiles.
//
// Apache runs in "worker" mode: per process, one thread accepts
// connections and hands each to a worker thread that carries it to
// completion. The paper pins one process per core so accept and worker
// threads share a core, which is what lets Affinity-Accept help; the
// unpinned variant reproduces the §4.2 observation that the scheduler
// disperses worker threads and breaks connection affinity.
//
// Lighttpd is event-driven: several single-threaded processes per core,
// each running an accept/read/write loop — naturally affine.
package app

import (
	"affinityaccept/internal/sim"
	"affinityaccept/internal/tcp"
)

// worker is one Apache worker thread.
type worker struct {
	thread *tcp.Thread
	core   int
	conn   *tcp.Conn
	// waiting is true while the worker is blocked in read().
	waiting bool
}

// acceptLoop is one core's accept thread.
type acceptLoop struct {
	thread *tcp.Thread
	idle   bool
	// kicked notes a wakeup arriving while the loop ran, so it loops
	// again instead of sleeping (avoids lost wakeups).
	kicked bool
}

// Apache is the worker-mode Apache model.
type Apache struct {
	stack *tcp.Stack
	loops []*acceptLoop
	pools [][]*worker // free workers per core

	// Pinned keeps each worker on its process's core (the paper's tuned
	// configuration). Unpinned scatters workers round-robin across all
	// cores, as the stock scheduler does.
	Pinned bool

	nextWorkerCore int // round-robin for the unpinned mode
	wakeCursor     int
	workersCreated int

	// UserWork overrides the per-request application cycles (zero =
	// config default).
	UserWork sim.Cycles
}

// NewApache builds the Apache model and registers it with the stack.
func NewApache(s *tcp.Stack, pinned bool) *Apache {
	n := len(s.Eng.Cores)
	a := &Apache{
		stack:  s,
		loops:  make([]*acceptLoop, n),
		pools:  make([][]*worker, n),
		Pinned: pinned,
	}
	for i := range a.loops {
		a.loops[i] = &acceptLoop{thread: s.NewThread(i), idle: true}
	}
	s.App = a
	return a
}

// WorkersCreated reports how many worker threads were ever spawned;
// recycling keeps this near peak concurrency, not total connections.
func (a *Apache) WorkersCreated() int { return a.workersCreated }

func (a *Apache) userWork() sim.Cycles {
	if a.UserWork > 0 {
		return a.UserWork
	}
	return a.stack.Cfg.Costs.ApacheUserWork
}

// ConnReady wakes an accept thread. Affinity-Accept passes the queue's
// core and only that loop is woken; the other designs wake a herd.
func (a *Apache) ConnReady(k *tcp.K, coreID int) {
	e := k.Engine()
	if coreID >= 0 {
		if !a.wakeLocalOrRemote(k, coreID) {
			// Everyone is awake and will drain queues on their own.
		}
		_ = e
		return
	}
	// Stock/Fine: wake up to 1+Herd idle loops — the thundering herd.
	herd := 1 + a.stack.Cfg.Costs.HerdWakeups
	n := len(a.loops)
	for i := 0; i < n && herd > 0; i++ {
		idx := (a.wakeCursor + i) % n
		if a.loops[idx].idle {
			a.wakeLoop(k, idx)
			herd--
		}
	}
	a.wakeCursor = (a.wakeCursor + 1) % n
}

// wakeLocalOrRemote implements §3.3.1's wakeup policy: local waiter
// first; only when the local core is overloaded (busy) is a waiter on a
// non-busy remote core woken to come steal.
func (a *Apache) wakeLocalOrRemote(k *tcp.K, coreID int) bool {
	if a.loops[coreID].idle {
		a.wakeLoop(k, coreID)
		return true
	}
	a.loops[coreID].kicked = true
	q := a.stack.Queues()
	if !q.Busy(coreID) {
		return false
	}
	n := len(a.loops)
	for i := 1; i < n; i++ {
		idx := (coreID + i) % n
		if a.loops[idx].idle && !q.Busy(idx) {
			a.wakeLoop(k, idx)
			return true
		}
	}
	return false
}

func (a *Apache) wakeLoop(k *tcp.K, coreID int) {
	l := a.loops[coreID]
	l.idle = false
	k.WakeThread(l.thread)
	at := k.Core().Now()
	if el := k.Engine().Cores[coreID].UserEligibleAt(); el > at {
		at = el
	}
	k.Engine().OnCore(coreID, at, func(e *sim.Engine, c *sim.Core) {
		a.runAcceptLoop(e, c)
	})
}

// acceptTurnBatch bounds accepts per accept-thread turn, throttling how
// far a CPU-starved core can pull work ahead of itself.
const acceptTurnBatch = 8

// runAcceptLoop is the accept thread's turn on its core: poll, accept a
// bounded batch, dispatch workers, reschedule or go back to sleep.
func (a *Apache) runAcceptLoop(e *sim.Engine, c *sim.Core) {
	s := a.stack
	l := a.loops[c.ID]
	paceStart := c.Now()
	l.kicked = false
	s.ScheduleIn(c, l.thread)
	s.PollWait(c, 1)
	accepted := 0
	for accepted < acceptTurnBatch {
		conn := s.Accept(c)
		if conn == nil {
			break
		}
		accepted++
		s.PostAcceptSetup(c, conn)
		a.dispatch(e, c, conn)
	}
	eligible := c.DeferUser(paceStart)
	if l.kicked || accepted == acceptTurnBatch {
		e.OnCore(c.ID, eligible, func(e *sim.Engine, c *sim.Core) {
			a.runAcceptLoop(e, c)
		})
		return
	}
	l.idle = true
	s.ScheduleOut(c, l.thread)
}

// dispatch hands a fresh connection to a worker thread.
func (a *Apache) dispatch(e *sim.Engine, c *sim.Core, conn *tcp.Conn) {
	s := a.stack
	wcore := c.ID
	if !a.Pinned {
		wcore = a.nextWorkerCore % len(a.loops)
		a.nextWorkerCore++
	}
	var w *worker
	if pool := a.pools[wcore]; len(pool) > 0 {
		w = pool[len(pool)-1]
		a.pools[wcore] = pool[:len(pool)-1]
	} else {
		w = &worker{thread: s.NewThread(wcore), core: wcore}
		a.workersCreated++
	}
	w.conn = conn
	w.waiting = false
	conn.AppData = w
	s.FutexWake(c, w.thread)
	at := c.Now()
	if el := e.Cores[wcore].UserEligibleAt(); el > at {
		at = el
	}
	e.OnCore(wcore, at, func(e *sim.Engine, c *sim.Core) {
		a.runWorker(e, c, w)
	})
}

// runWorker is a worker thread's turn: serve every request available,
// then block in read() or finish the connection.
func (a *Apache) runWorker(e *sim.Engine, c *sim.Core, w *worker) {
	s := a.stack
	conn := w.conn
	if conn == nil {
		return
	}
	paceStart := c.Now()
	defer c.DeferUser(paceStart)
	s.ScheduleIn(c, w.thread)
	s.FutexOp(c) // futex-wait return
	for {
		req, ok := s.Read(c, conn)
		if !ok {
			break
		}
		s.UserWork(c, a.userWork(), s.Cfg.Costs.UserColdApache)
		s.Writev(c, conn, req.RespBytes)
	}
	if conn.PeerClosed() && !conn.Readable() {
		s.CloseConn(c, conn)
		conn.AppData = nil
		w.conn = nil
		a.pools[w.core] = append(a.pools[w.core], w)
		s.ScheduleOut(c, w.thread)
		return
	}
	w.waiting = true
	s.ScheduleOut(c, w.thread)
}

// ConnReadable wakes the worker blocked on this connection.
func (a *Apache) ConnReadable(k *tcp.K, conn *tcp.Conn) {
	a.wakeWorker(k, conn)
}

// ConnClosed wakes the worker so it can tear the connection down.
func (a *Apache) ConnClosed(k *tcp.K, conn *tcp.Conn) {
	a.wakeWorker(k, conn)
}

func (a *Apache) wakeWorker(k *tcp.K, conn *tcp.Conn) {
	w, _ := conn.AppData.(*worker)
	if w == nil || !w.waiting {
		return
	}
	w.waiting = false
	k.WakeThread(w.thread)
	at := k.Core().Now()
	if el := k.Engine().Cores[w.core].UserEligibleAt(); el > at {
		at = el
	}
	k.Engine().OnCore(w.core, at, func(e *sim.Engine, c *sim.Core) {
		a.runWorker(e, c, w)
	})
}
