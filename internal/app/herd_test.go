package app

import (
	"testing"

	"affinityaccept/internal/mem"
	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/tcp"
	"affinityaccept/internal/workload"
)

// TestStockHerdWakesMultipleLoops: under Stock/Fine the listen socket
// has no per-core association, so new connections wake a herd of
// pollers (the §4.1 thundering-herd behaviour); under Affinity only the
// local loop wakes.
func TestStockHerdWakesMultipleLoops(t *testing.T) {
	run := func(kind tcp.ListenKind) uint64 {
		s := tcp.NewStack(tcp.Config{
			Machine: mem.AMD48().WithCores(6),
			Listen:  kind,
			Seed:    4,
		})
		NewLighttpd(s)
		g := workload.New(workload.Config{Stack: s, Connections: 12, Seed: 4})
		s.Start()
		g.Start()
		s.Eng.Run(s.Eng.CyclesOf(0.5))
		if s.Stats.Requests == 0 {
			t.Fatalf("%v: nothing served", kind)
		}
		// epoll_wait invocations per request proxy for wakeup volume.
		return s.Ctr.Get(perfctr.SysEpollWait).Calls * 1000 / s.Stats.Requests
	}
	stockPolls := run(tcp.StockAccept)
	affinityPolls := run(tcp.AffinityAccept)
	if stockPolls <= affinityPolls {
		t.Fatalf("herd effect missing: stock %d polls/1000req vs affinity %d",
			stockPolls, affinityPolls)
	}
}
