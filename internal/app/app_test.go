package app

import (
	"testing"

	"affinityaccept/internal/mem"
	"affinityaccept/internal/perfctr"
	"affinityaccept/internal/tcp"
	"affinityaccept/internal/workload"
)

func runServer(t *testing.T, build func(*tcp.Stack), cores int, seconds float64) *tcp.Stack {
	t.Helper()
	s := tcp.NewStack(tcp.Config{
		Machine: mem.AMD48().WithCores(cores),
		Listen:  tcp.AffinityAccept,
		Seed:    2,
	})
	build(s)
	g := workload.New(workload.Config{Stack: s, Connections: 8 * cores, Seed: 2})
	s.Start()
	g.Start()
	s.Eng.Run(s.Eng.CyclesOf(seconds))
	return s
}

func TestApacheServesWorkload(t *testing.T) {
	s := runServer(t, func(s *tcp.Stack) { NewApache(s, true) }, 4, 1.0)
	if s.Stats.Requests == 0 {
		t.Fatal("apache served nothing")
	}
	if s.Stats.ConnsClosed == 0 {
		t.Fatal("no connections completed their lifecycle")
	}
	// Pinned apache keeps processing local under Affinity-Accept.
	local := float64(s.Stats.RequestsLocal) / float64(s.Stats.Requests)
	if local < 0.95 {
		t.Fatalf("local fraction %.2f, want ~1.0 for pinned apache", local)
	}
}

func TestApacheUnpinnedBreaksAffinity(t *testing.T) {
	s := runServer(t, func(s *tcp.Stack) { NewApache(s, false) }, 4, 1.0)
	if s.Stats.Requests == 0 {
		t.Fatal("unpinned apache served nothing")
	}
	local := float64(s.Stats.RequestsLocal) / float64(s.Stats.Requests)
	if local > 0.6 {
		t.Fatalf("local fraction %.2f; scattering workers should break affinity", local)
	}
}

func TestLighttpdServesWorkload(t *testing.T) {
	s := runServer(t, NewLighttpdApp, 4, 1.0)
	if s.Stats.Requests == 0 {
		t.Fatal("lighttpd served nothing")
	}
	local := float64(s.Stats.RequestsLocal) / float64(s.Stats.Requests)
	if local < 0.95 {
		t.Fatalf("local fraction %.2f, want ~1.0 for event loops", local)
	}
	// Lighttpd performs no futex handoffs.
	if s.Ctr.Get(perfctr.SysFutex).Calls != 0 {
		t.Fatal("lighttpd charged futex operations")
	}
}

// NewLighttpdApp adapts NewLighttpd to the test harness signature.
func NewLighttpdApp(s *tcp.Stack) { NewLighttpd(s) }

func TestLighttpdCheaperPerRequestThanApache(t *testing.T) {
	ap := runServer(t, func(s *tcp.Stack) { NewApache(s, true) }, 2, 1.0)
	lt := runServer(t, NewLighttpdApp, 2, 1.0)
	perReq := func(s *tcp.Stack) float64 {
		var busy uint64
		for _, c := range s.Eng.Cores {
			busy += uint64(c.BusyCycles())
		}
		return float64(busy) / float64(s.Stats.Requests)
	}
	if perReq(lt) >= perReq(ap) {
		t.Fatalf("lighttpd %.0f cyc/req should be cheaper than apache %.0f (no futex/worker handoff)",
			perReq(lt), perReq(ap))
	}
}

func TestApacheWorkersRecycled(t *testing.T) {
	s := tcp.NewStack(tcp.Config{
		Machine: mem.AMD48().WithCores(2),
		Listen:  tcp.AffinityAccept,
		Seed:    2,
	})
	a := NewApache(s, true)
	g := workload.New(workload.Config{Stack: s, Connections: 6, Seed: 2})
	s.Start()
	g.Start()
	s.Eng.Run(s.Eng.CyclesOf(1.5))
	// Many connections completed but thread creation stays bounded by
	// peak concurrency, not total connections.
	if s.Stats.ConnsClosed < 20 {
		t.Fatalf("too few connection lifecycles: %d", s.Stats.ConnsClosed)
	}
	if a.WorkersCreated() > 12 {
		t.Fatalf("%d workers created for %d conns; recycling broken",
			a.WorkersCreated(), s.Stats.ConnsClosed)
	}
}

func TestPacedCoreDefersButServes(t *testing.T) {
	s := tcp.NewStack(tcp.Config{
		Machine: mem.AMD48().WithCores(2),
		Listen:  tcp.AffinityAccept,
		Seed:    2,
	})
	NewLighttpd(s)
	// Core 1 is CPU-starved.
	s.Eng.Cores[1].UserShare = 0.2
	g := workload.New(workload.Config{Stack: s, Connections: 16, Seed: 2})
	s.Start()
	g.Start()
	s.Eng.Run(s.Eng.CyclesOf(1.5))
	if s.Stats.Requests == 0 || g.Completed == 0 {
		t.Fatal("starved machine served nothing")
	}
}
