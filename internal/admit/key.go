package admit

import (
	"net"
	"strings"
)

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// KeyIP hashes an IP address to a bucket key with FNV-1a over its
// canonical bytes. IPv4 addresses hash identically whether they arrive
// as 4-byte slices, 16-byte v4-in-v6-mapped slices (what a TCPAddr from
// a dual-stack listener carries), or were parsed from dotted-quad text:
// To4 reduces all three to the same 4 bytes without allocating (it
// returns a subslice). A nil or malformed IP hashes to the empty-input
// FNV offset — a stable shared bucket, not a panic.
func KeyIP(ip net.IP) uint64 {
	if v4 := ip.To4(); v4 != nil {
		ip = v4
	}
	return hashBytes(ip)
}

// KeyAddr hashes a net.Addr's host to a bucket key. TCP addresses — the
// only kind the accept path sees — take the allocation-free KeyIP path;
// anything else falls back to hashing the textual form.
func KeyAddr(a net.Addr) uint64 {
	if t, ok := a.(*net.TCPAddr); ok {
		return KeyIP(t.IP)
	}
	if a == nil {
		return hashBytes(nil)
	}
	return KeyAddrString(a.String())
}

// KeyAddrString hashes a textual remote address ("1.2.3.4:80",
// "[::1]:443", "fe80::1%eth0", or arbitrary garbage) to a bucket key.
// Valid IP forms agree with KeyIP on the parsed address — mapped and
// plain spellings of the same IPv4 address shard together — and
// anything unparseable hashes its raw bytes, so every input shards
// stably and none panics. The string path allocates (net.ParseIP);
// it exists for diagnostics and fuzzing, not the accept hot path.
func KeyAddrString(s string) uint64 {
	host := s
	if len(host) > 0 && host[0] == '[' {
		// "[v6-or-garbage]:port" — key on the bracketed host.
		if i := strings.IndexByte(host, ']'); i >= 0 {
			host = host[1:i]
		}
	} else if i := strings.LastIndexByte(host, ':'); i >= 0 && strings.IndexByte(host, ':') == i {
		// Exactly one colon: "v4:port" or "host:port". A bare IPv6
		// address has two or more and is left whole.
		host = host[:i]
	}
	if i := strings.IndexByte(host, '%'); i >= 0 {
		host = host[:i] // scoped v6: the zone is not part of the client identity
	}
	if ip := net.ParseIP(host); ip != nil {
		return KeyIP(ip)
	}
	return hashBytes([]byte(host))
}

func hashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}
