package admit

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterNeverExceedsCapacity is the bucket's safety property:
// however goroutines interleave their Allow calls on one key, the
// number of admissions over a window never exceeds window/interval +
// burst. Time is virtual (each attempt carries a random timestamp
// inside the window), so the bound is exact and the test is
// deterministic in its verdict while the goroutine interleavings — the
// thing -race and the CAS loop are being exercised against — stay real.
func TestLimiterNeverExceedsCapacity(t *testing.T) {
	const (
		interval = 1000 // ns per token => rate 1e6/s
		burst    = 50
		window   = 2000 * interval
		gor      = 8
		attempts = 5000
	)
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			l := NewLimiter(1e9/float64(interval), burst, 64)
			var granted atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < gor; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed<<8 | int64(g)))
					for i := 0; i < attempts; i++ {
						now := rng.Int63n(window + 1)
						if l.Allow(42, now) {
							granted.Add(1)
						}
					}
				}(g)
			}
			wg.Wait()
			bound := uint64(window/interval + burst)
			if got := granted.Load(); got > bound {
				t.Fatalf("granted %d admissions over a %dns window; capacity bound is %d", got, int64(window), bound)
			}
			if granted.Load() != l.Allowed() {
				t.Fatalf("counter drift: observed %d grants, limiter counted %d", granted.Load(), l.Allowed())
			}
			if l.Allowed()+l.Limited() != gor*attempts {
				t.Fatalf("allowed %d + limited %d != %d attempts", l.Allowed(), l.Limited(), gor*attempts)
			}
		})
	}
}

// TestLimiterRefillConverges checks the liveness half: after a key is
// driven to exhaustion, waiting n emission intervals restores ~n
// admissions — the implicit-refill arithmetic converges to the
// configured rate rather than drifting.
func TestLimiterRefillConverges(t *testing.T) {
	const (
		interval = int64(1000)
		burst    = 10
	)
	l := NewLimiter(1e9/float64(interval), burst, 64)
	drain := func(now int64) (n int64) {
		for l.Allow(7, now) {
			n++
			if n > 1e6 {
				t.Fatal("limiter never denies: refill arithmetic is broken")
			}
		}
		return n
	}
	if got := drain(0); got != burst {
		t.Fatalf("fresh bucket granted %d, want the full burst %d", got, burst)
	}
	now := int64(0)
	// Waits below the burst restore exactly that many tokens; a wait
	// beyond the burst is checked after the loop (credit caps there).
	for _, wait := range []int64{1, 3, 7, 2} {
		now += wait * interval
		got := drain(now)
		if got < wait-1 || got > wait+1 {
			t.Fatalf("after waiting %d intervals the bucket granted %d admissions; refill should converge to the rate (want %d±1)", wait, got, wait)
		}
	}
	// A wait far beyond the burst restores only the burst: credit does
	// not accrue past capacity.
	now += 100 * burst * int64(interval)
	if got := drain(now); got != burst {
		t.Fatalf("after a long idle the bucket granted %d, want exactly the burst %d", got, burst)
	}
}

// TestLimiterKeysIndependent: exhausting one bucket leaves keys that
// hash to other buckets untouched.
func TestLimiterKeysIndependent(t *testing.T) {
	l := NewLimiter(1e6, 4, 8)
	for l.Allow(0, 0) {
	}
	if !l.Allow(1, 0) {
		t.Fatal("exhausting key 0 starved key 1 in a different bucket")
	}
}

func TestKeyStability(t *testing.T) {
	v4 := net.ParseIP("192.0.2.7")
	mapped := net.IPv4(192, 0, 2, 7).To16()
	if KeyIP(v4) != KeyIP(mapped) {
		t.Fatal("plain and v4-mapped spellings of one IPv4 address shard differently")
	}
	tcp := &net.TCPAddr{IP: mapped, Port: 12345}
	if KeyAddr(tcp) != KeyIP(v4) {
		t.Fatal("KeyAddr(TCPAddr) disagrees with KeyIP")
	}
	for _, s := range []string{"192.0.2.7:80", "192.0.2.7:9999", "[::ffff:192.0.2.7]:80", "192.0.2.7"} {
		if KeyAddrString(s) != KeyIP(v4) {
			t.Fatalf("KeyAddrString(%q) disagrees with KeyIP of the same address", s)
		}
	}
	if KeyAddrString("[2001:db8::1]:443") != KeyIP(net.ParseIP("2001:db8::1")) {
		t.Fatal("bracketed v6 form disagrees with KeyIP")
	}
	if KeyAddrString("fe80::1%eth0") != KeyIP(net.ParseIP("fe80::1")) {
		t.Fatal("zoned v6 form should key on the address without its zone")
	}
	if KeyIP(net.ParseIP("192.0.2.7")) == KeyIP(net.ParseIP("192.0.2.8")) {
		t.Fatal("adjacent addresses collided — hash is degenerate")
	}
	// Garbage must not panic and must be stable.
	for _, s := range []string{"", ":", "[", "[]", "]:80", "not-an-ip:80", "%%%", "[::1", "1.2.3.4.5:6"} {
		if KeyAddrString(s) != KeyAddrString(s) {
			t.Fatalf("KeyAddrString(%q) is not deterministic", s)
		}
	}
}

// TestAdmitHotPathZeroAlloc pins the accept-path cost: keying a
// TCPAddr and consulting the bucket must not allocate, or the admission
// layer would put garbage on every accepted connection and break the
// zero-alloc gates upstream.
func TestAdmitHotPathZeroAlloc(t *testing.T) {
	l := NewLimiter(1e6, 1<<20, 64)
	addr := &net.TCPAddr{IP: net.IPv4(10, 0, 0, 1), Port: 4242}
	now := time.Now().UnixNano()
	avg := testing.AllocsPerRun(1000, func() {
		l.Allow(KeyAddr(addr), now)
	})
	if avg != 0 {
		t.Fatalf("KeyAddr+Allow allocated %.1f objects per call, want 0", avg)
	}
}
