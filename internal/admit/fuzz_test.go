package admit

import (
	"net"
	"testing"
)

// FuzzClientIPKey throws arbitrary RemoteAddr-shaped strings at the
// keying path: nothing may panic, every input must shard
// deterministically, and inputs that parse as the same IP must land in
// the same bucket regardless of spelling (dotted-quad vs v4-mapped,
// bracketed vs bare, with or without port or zone).
func FuzzClientIPKey(f *testing.F) {
	f.Add("192.0.2.7:80")
	f.Add("[2001:db8::1]:443")
	f.Add("[::ffff:10.1.2.3]:8080")
	f.Add("fe80::1%eth0")
	f.Add("not an address at all")
	f.Add("")
	f.Add("[")
	f.Add("256.256.256.256:99999")
	f.Fuzz(func(t *testing.T, s string) {
		k1 := KeyAddrString(s)
		k2 := KeyAddrString(s)
		if k1 != k2 {
			t.Fatalf("KeyAddrString(%q) unstable: %#x then %#x", s, k1, k2)
		}
		// If the whole input parses as an IP, the key must agree with
		// the canonical KeyIP — and with the v4-mapped spelling.
		if ip := net.ParseIP(s); ip != nil {
			if k1 != KeyIP(ip) {
				t.Fatalf("KeyAddrString(%q)=%#x disagrees with KeyIP=%#x", s, k1, KeyIP(ip))
			}
			if v4 := ip.To4(); v4 != nil && KeyIP(v4.To16()) != KeyIP(ip) {
				t.Fatalf("mapped and plain spellings of %q shard differently", s)
			}
		}
		// Whatever the key, it must index a bucket without panicking.
		l := NewLimiter(1000, 4, 8)
		l.Allow(k1, 0)
	})
}
