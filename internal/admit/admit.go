// Package admit implements lock-free admission control for the serve
// layer: per-client-IP token buckets that can be checked on the accept
// hot path without a mutex, a map, or an allocation.
//
// The paper's core argument (§2) is that shared mutable state on the
// connection path destroys multicore scalability; an admission layer
// guarding that path must not reintroduce the bottleneck it is meant to
// protect. Two choices follow. Each acceptor owns a private Limiter —
// no state is shared between workers, exactly as each owns a private
// accept queue — and within a Limiter each bucket is a single atomic
// word updated by compare-and-swap, so concurrent callers (the shared-
// listener fallback has one acceptor, but tests hammer one Limiter from
// many goroutines) coordinate without locks.
//
// The bucket algorithm is GCRA (the virtual-scheduling form of the
// token bucket): the word holds the flow's theoretical arrival time
// (TAT) in nanoseconds. An arrival at time now conforms when the
// stored TAT is no more than burst-1 emission intervals ahead of now;
// conforming arrivals advance the TAT by one interval. Refill is
// implicit — the gap between now and the TAT *is* the accumulated
// credit — so there is no refill goroutine and no last-refill field,
// and the whole bucket fits in the one word a CAS can update.
//
// Buckets are addressed by hashing the client IP into a fixed-size
// power-of-two array. Distinct IPs that collide share a bucket; for
// admission control that is an acceptable bias (a flood's collision
// victims are throttled a little early) and what makes the no-map,
// no-allocation hot path possible.
package admit

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// DefaultBuckets is the per-Limiter bucket-array size. At 8 bytes per
// bucket a limiter costs 8KiB per worker; with typical per-worker
// client cardinality far below 1024 the collision bias stays small.
const DefaultBuckets = 1024

// Limiter is a sharded set of GCRA token buckets enforcing a per-key
// rate. All methods are safe for concurrent use; none allocates.
type Limiter struct {
	interval int64 // nanoseconds per token (1e9 / rate)
	tau      int64 // (burst-1) * interval: max credit a key accrues
	mask     uint64
	buckets  []atomic.Int64 // theoretical arrival times, ns

	allowed atomic.Uint64
	limited atomic.Uint64
}

// NewLimiter returns a Limiter granting each key `rate` admissions per
// second with bursts of up to `burst`. buckets is rounded up to a
// power of two; 0 means DefaultBuckets. Panics if rate or burst is not
// positive — the caller gates construction on rate > 0.
func NewLimiter(rate float64, burst, buckets int) *Limiter {
	if rate <= 0 || burst <= 0 {
		panic(fmt.Sprintf("admit: NewLimiter(rate=%v, burst=%d): both must be positive", rate, burst))
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	interval := int64(float64(time.Second) / rate)
	if interval < 1 {
		interval = 1
	}
	tau := int64(burst-1) * interval
	if tau < 0 || (burst > 1 && tau/int64(burst-1) != interval) {
		tau = math.MaxInt64 / 2 // overflow: effectively unlimited burst
	}
	return &Limiter{
		interval: interval,
		tau:      tau,
		mask:     uint64(n - 1),
		buckets:  make([]atomic.Int64, n),
	}
}

// Allow reports whether an arrival for key at time now (UnixNano) is
// admitted, and charges it if so. Lock-free: one load and one CAS per
// call in the uncontended case.
//
// The capacity invariant the property tests check falls out of the CAS
// discipline: every admission advances the key's TAT by exactly one
// interval, the TAT never exceeds now+burst·interval at the moment of
// admission, and it never decreases — so admissions over any window
// are bounded by window/interval + burst regardless of interleaving.
func (l *Limiter) Allow(key uint64, now int64) bool {
	b := &l.buckets[key&l.mask]
	for {
		tat := b.Load()
		t := tat
		if t < now {
			t = now // bucket full: credit does not accrue past burst
		}
		if t-now > l.tau {
			l.limited.Add(1)
			return false
		}
		if b.CompareAndSwap(tat, t+l.interval) {
			l.allowed.Add(1)
			return true
		}
		// Lost the race to a concurrent arrival on this bucket: re-read
		// and re-decide against the advanced TAT.
	}
}

// AllowNow is Allow against the wall clock.
func (l *Limiter) AllowNow(key uint64) bool {
	return l.Allow(key, time.Now().UnixNano())
}

// Allowed reports how many arrivals this limiter has admitted.
func (l *Limiter) Allowed() uint64 { return l.allowed.Load() }

// Limited reports how many arrivals this limiter has rejected.
func (l *Limiter) Limited() uint64 { return l.limited.Load() }
