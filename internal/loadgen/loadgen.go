// Package loadgen holds the client-side helper the benchmark, the
// examples and the serve tests share to construct the paper's skewed
// workloads: dialing with an explicit loopback source port that hashes
// into a chosen flow group.
package loadgen

import (
	"fmt"
	"net"
)

// PortBase is the lowest source port DialGroup binds: the largest
// multiple of the (power-of-two) flow-group count not above 20000, so
// PortBase+g hashes into group g and stays clear of well-known ports.
func PortBase(groups int) int { return 20000 - 20000%groups }

// DialGroup opens a connection to target whose local source port hashes
// into the given flow group, binding explicit ports base+group,
// base+group+groups, ... until one is free.
func DialGroup(target string, group, groups int) (net.Conn, error) {
	var lastErr error
	for port := PortBase(groups) + group; port < 61000; port += groups {
		d := net.Dialer{LocalAddr: &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port}}
		conn, err := d.Dial("tcp", target)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("loadgen: no free source port for group %d: %w", group, lastErr)
}
