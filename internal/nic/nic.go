// Package nic simulates the multi-queue Ethernet controller of the
// paper's testbed (Intel 82599 "IXGBE"), the hardware half of §4's flow
// steering: per-core RX/TX DMA rings, RSS and FDir flow-group steering
// (§3.1, §4.1), a 10 Gbit port with serialization delay, and the
// driver behaviours the paper measures around FDir — per-flow steering
// updates on transmit ("Twenty-Policy", §7.1) with their insert and
// table-flush costs.
//
// The NIC's only job in the reproduction is deciding which core's ring
// receives each incoming packet, at what time, and how fast outgoing
// bytes drain. Packet payloads are never materialized.
package nic

import (
	"affinityaccept/internal/core"
	"affinityaccept/internal/sim"
)

// Mode selects the steering mechanism.
type Mode int

const (
	// ModeFlowGroups is Affinity-Accept's configuration (§3.1): the NIC
	// hashes the low bits of the source port into a flow group and FDir
	// maps each group to a ring. Steering follows the core.FlowTable.
	ModeFlowGroups Mode = iota
	// ModeRSS spreads flows by hash over at most RSSRings rings (the
	// 82599's RSS indirection supports only 16 distinct rings).
	ModeRSS
	// ModePerFlowFDir steers exact flows via the bounded FDir hash
	// table, falling back to RSS on a miss. The Twenty-Policy driver
	// (§7.1) populates the table from the transmit path.
	ModePerFlowFDir
)

// Packet is a simulated frame. The NIC treats Kind, Conn, Seq and Aux as
// opaque; the TCP stack interprets them (Seq carries a request serial
// for duplicate suppression, Aux the response size a request asks for).
type Packet struct {
	Key   core.FlowKey
	Bytes int
	Kind  uint8
	Conn  interface{}
	Seq   uint32
	Aux   uint32
}

// Handler processes one received packet on the ring's core (the TCP
// stack's softirq entry).
type Handler func(e *sim.Engine, c *sim.Core, pkt *Packet)

// Config parameterizes the simulated NIC. Zero values select defaults
// matching the paper's hardware.
type Config struct {
	Rings     int
	Mode      Mode
	FlowTable *core.FlowTable // required in ModeFlowGroups

	// RSSRings is the number of rings reachable through RSS (82599: 16).
	RSSRings int
	// FDirCapacity bounds the per-flow steering table (8K–32K; §3.1).
	FDirCapacity int
	// TwentyPeriod is how many transmitted packets between FDir updates
	// in ModePerFlowFDir (the driver's policy: 20).
	TwentyPeriod int

	// BandwidthBits is the port rate in bits/second (default 10 Gbit).
	BandwidthBits uint64
	// Freq converts seconds to cycles (default sim.DefaultFreq).
	Freq uint64

	// IRQDelay is interrupt signalling latency from ring write to
	// softirq start.
	IRQDelay sim.Cycles
	// NAPIBudget is packets drained per softirq invocation.
	NAPIBudget int
	// RingCapacity is the RX descriptor count per ring.
	RingCapacity int

	// FDir maintenance costs (paper §7.1): inserting an entry costs
	// ~10,000 cycles (hash computation dominates; the table write is
	// ~600); scheduling a flush ~80,000 and the flush itself ~70,000,
	// during which transmit halts and received packets are missed.
	FDirInsertCost    sim.Cycles
	FDirFlushSchedule sim.Cycles
	FDirFlushCost     sim.Cycles
}

func (c *Config) fill() {
	if c.Rings <= 0 {
		panic("nic: need at least one ring")
	}
	if c.RSSRings == 0 {
		c.RSSRings = 16
	}
	if c.RSSRings > c.Rings {
		c.RSSRings = c.Rings
	}
	if c.FDirCapacity == 0 {
		c.FDirCapacity = 32 * 1024
	}
	if c.TwentyPeriod == 0 {
		c.TwentyPeriod = 20
	}
	if c.BandwidthBits == 0 {
		c.BandwidthBits = 10_000_000_000
	}
	if c.Freq == 0 {
		c.Freq = sim.DefaultFreq
	}
	if c.IRQDelay == 0 {
		c.IRQDelay = 4800 // 2 us at 2.4 GHz
	}
	if c.NAPIBudget == 0 {
		// Real NAPI polls 64 descriptors per turn; the simulator uses a
		// smaller batch so one softirq event does not advance its
		// core's clock far beyond the rest of the machine (bounding
		// cross-core timestamp drift).
		c.NAPIBudget = 8
	}
	if c.RingCapacity == 0 {
		c.RingCapacity = 1024
	}
	if c.FDirInsertCost == 0 {
		c.FDirInsertCost = 10_000
	}
	if c.FDirFlushSchedule == 0 {
		c.FDirFlushSchedule = 80_000
	}
	if c.FDirFlushCost == 0 {
		c.FDirFlushCost = 70_000
	}
	if c.Mode == ModeFlowGroups && c.FlowTable == nil {
		panic("nic: ModeFlowGroups requires a FlowTable")
	}
}

type rxRing struct {
	q       []*Packet
	pending bool
}

// Stats aggregates NIC counters.
type Stats struct {
	RxPackets, RxDropsFull, RxDropsFlush uint64
	TxPackets                            uint64
	RxBytes, TxBytes                     uint64
	FDirInserts, FDirFlushes             uint64
}

// NIC is the simulated controller.
type NIC struct {
	cfg     Config
	rings   []rxRing
	handler Handler

	cyclesPerByte float64
	txFree        sim.Time
	flushUntil    sim.Time

	fdir map[uint32]int32

	Stats Stats
}

// New builds a NIC; the handler runs for every delivered packet on the
// receiving ring's core.
func New(cfg Config, h Handler) *NIC {
	cfg.fill()
	n := &NIC{
		cfg:           cfg,
		rings:         make([]rxRing, cfg.Rings),
		handler:       h,
		cyclesPerByte: 8 * float64(cfg.Freq) / float64(cfg.BandwidthBits),
		fdir:          make(map[uint32]int32),
	}
	return n
}

// Config reports the effective configuration after defaults.
func (n *NIC) Config() Config { return n.cfg }

// steer picks the RX ring for a packet.
func (n *NIC) steer(key core.FlowKey) int {
	switch n.cfg.Mode {
	case ModeFlowGroups:
		r := n.cfg.FlowTable.CoreForPort(key.SrcPort)
		if r >= n.cfg.Rings {
			r %= n.cfg.Rings
		}
		return r
	case ModePerFlowFDir:
		if r, ok := n.fdir[key.Hash()]; ok {
			return int(r)
		}
		return int(key.Hash()) % n.cfg.RSSRings
	default: // ModeRSS
		return int(key.Hash()) % n.cfg.RSSRings
	}
}

// Rx accepts a packet from the wire at the engine's current time,
// steering it to a ring and scheduling softirq processing. Packets are
// dropped when the target ring is full or an FDir flush is in progress.
func (n *NIC) Rx(e *sim.Engine, pkt *Packet) {
	if e.Now() < n.flushUntil {
		n.Stats.RxDropsFlush++
		return
	}
	ringID := n.steer(pkt.Key)
	r := &n.rings[ringID]
	if len(r.q) >= n.cfg.RingCapacity {
		n.Stats.RxDropsFull++
		return
	}
	n.Stats.RxPackets++
	n.Stats.RxBytes += uint64(pkt.Bytes)
	r.q = append(r.q, pkt)
	if !r.pending {
		r.pending = true
		e.OnCore(ringID, e.Now()+n.cfg.IRQDelay, func(e *sim.Engine, c *sim.Core) {
			n.drain(e, c, ringID)
		})
	}
}

// drain is the NAPI poll loop: process up to budget packets, then yield
// the core and reschedule if a backlog remains.
func (n *NIC) drain(e *sim.Engine, c *sim.Core, ringID int) {
	r := &n.rings[ringID]
	budget := n.cfg.NAPIBudget
	for budget > 0 && len(r.q) > 0 {
		pkt := r.q[0]
		copy(r.q, r.q[1:])
		r.q = r.q[:len(r.q)-1]
		budget--
		n.handler(e, c, pkt)
	}
	if len(r.q) > 0 {
		e.OnCore(ringID, c.Now(), func(e *sim.Engine, c *sim.Core) {
			n.drain(e, c, ringID)
		})
	} else {
		r.pending = false
	}
}

// Backlog reports the RX queue depth of a ring, for tests.
func (n *NIC) Backlog(ring int) int { return len(n.rings[ring].q) }

// Tx transmits a packet from the calling core's TX ring and returns the
// time the last byte leaves the wire. Per-core TX rings need no lock;
// the port itself serializes bytes at the configured bandwidth, and a
// pending FDir flush halts transmission (§7.1).
func (n *NIC) Tx(c *sim.Core, pkt *Packet) sim.Time {
	start := c.Now()
	if n.txFree > start {
		start = n.txFree
	}
	if n.flushUntil > start {
		start = n.flushUntil
	}
	n.txFree = start + sim.Cycles(float64(pkt.Bytes)*n.cyclesPerByte)
	n.Stats.TxPackets++
	n.Stats.TxBytes += uint64(pkt.Bytes)
	return n.txFree
}

// TxBacklogCycles reports how far the TX port lags the given time; the
// TCP stack uses it to model send-buffer pushback.
func (n *NIC) TxBacklogCycles(now sim.Time) sim.Cycles {
	if n.txFree > now {
		return sim.Cycles(n.txFree - now)
	}
	return 0
}

// FDirUpdate inserts or refreshes a per-flow steering entry pointing the
// flow at the calling core, charging the paper's insert cost. When the
// table is full the driver schedules a full flush: the table empties,
// transmission halts and incoming packets are missed until it completes.
func (n *NIC) FDirUpdate(e *sim.Engine, c *sim.Core, key core.FlowKey) {
	c.Charge(n.cfg.FDirInsertCost)
	n.Stats.FDirInserts++
	if len(n.fdir) >= n.cfg.FDirCapacity {
		n.Stats.FDirFlushes++
		n.fdir = make(map[uint32]int32, n.cfg.FDirCapacity)
		end := c.Now() + n.cfg.FDirFlushSchedule + n.cfg.FDirFlushCost
		if end > n.flushUntil {
			n.flushUntil = end
		}
		if n.flushUntil > n.txFree {
			n.txFree = n.flushUntil
		}
	}
	n.fdir[key.Hash()] = int32(c.ID)
}

// FDirEntries reports the per-flow table occupancy.
func (n *NIC) FDirEntries() int { return len(n.fdir) }

// TwentyPeriod exposes the driver's update period for the TCP stack.
func (n *NIC) TwentyPeriod() int { return n.cfg.TwentyPeriod }

// Mode reports the steering mode.
func (n *NIC) Mode() Mode { return n.cfg.Mode }
