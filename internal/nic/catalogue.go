package nic

// Model describes the steering capabilities of a commercial 10 Gbit NIC,
// reproducing the paper's Table 5. FlowSteeringEntries of -1 means the
// vendor documentation gives no number ("-" in the paper); a
// FlowSteeringNote carries qualitative sizes like "tens of thousands".
type Model struct {
	Vendor              string
	HWDMARings          int
	HWDMARingsAlt       int // second option where the paper lists "32 or 64"
	RSSDMARings         int
	RSSDMARingsAlt      int
	FlowSteeringEntries int
	FlowSteeringNote    string
}

// Catalogue returns the paper's Table 5 rows.
func Catalogue() []Model {
	return []Model{
		{Vendor: "Intel", HWDMARings: 64, RSSDMARings: 16, FlowSteeringEntries: 32 * 1024},
		{Vendor: "Chelsio", HWDMARings: 32, HWDMARingsAlt: 64, RSSDMARings: 32, RSSDMARingsAlt: 64,
			FlowSteeringEntries: -1, FlowSteeringNote: "tens of thousands"},
		{Vendor: "Solarflare", HWDMARings: 32, RSSDMARings: 32, FlowSteeringEntries: 8 * 1024},
		{Vendor: "Myricom", HWDMARings: 32, RSSDMARings: 32, FlowSteeringEntries: -1, FlowSteeringNote: "-"},
	}
}
