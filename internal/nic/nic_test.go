package nic

import (
	"testing"

	"affinityaccept/internal/core"
	"affinityaccept/internal/sim"
)

func testNIC(t *testing.T, mode Mode, rings int, h Handler) (*NIC, *sim.Engine, *core.FlowTable) {
	t.Helper()
	ft := core.NewFlowTable(64, rings)
	if h == nil {
		h = func(e *sim.Engine, c *sim.Core, pkt *Packet) {}
	}
	n := New(Config{Rings: rings, Mode: mode, FlowTable: ft}, h)
	e := sim.New(sim.Config{Cores: rings, Seed: 1})
	return n, e, ft
}

func pkt(port uint16) *Packet {
	return &Packet{
		Key:   core.FlowKey{Proto: 6, SrcIP: 1, DstIP: 2, SrcPort: port, DstPort: 80},
		Bytes: 100,
	}
}

func TestFlowGroupSteeringFollowsTable(t *testing.T) {
	var got []int
	n, e, ft := testNIC(t, ModeFlowGroups, 4, func(_ *sim.Engine, c *sim.Core, _ *Packet) {
		got = append(got, c.ID)
	})
	p := pkt(7)
	want := ft.CoreForPort(7)
	n.Rx(e, p)
	e.Run(1 << 40)
	if len(got) != 1 || got[0] != want {
		t.Fatalf("delivered on %v, want [%d]", got, want)
	}
	// Migrating the group redirects subsequent packets.
	ft.Migrate(ft.GroupOf(7), (want+1)%4)
	n.Rx(e, pkt(7))
	e.Run(1 << 41)
	if got[len(got)-1] != (want+1)%4 {
		t.Fatal("migration did not redirect steering")
	}
}

func TestRSSLimitsRings(t *testing.T) {
	counts := map[int]int{}
	ft := core.NewFlowTable(64, 32)
	n := New(Config{Rings: 32, Mode: ModeRSS, FlowTable: ft, RSSRings: 16},
		func(_ *sim.Engine, c *sim.Core, _ *Packet) { counts[c.ID]++ })
	e := sim.New(sim.Config{Cores: 32, Seed: 1})
	for p := 0; p < 512; p++ {
		n.Rx(e, pkt(uint16(p)))
	}
	e.Run(1 << 42)
	for ring := range counts {
		if ring >= 16 {
			t.Fatalf("RSS delivered to ring %d beyond its 16-ring limit", ring)
		}
	}
	if len(counts) < 8 {
		t.Fatalf("RSS used only %d rings", len(counts))
	}
}

func TestPerFlowFDirSteersToUpdatedCore(t *testing.T) {
	var cores []int
	n, e, _ := testNIC(t, ModePerFlowFDir, 8, func(_ *sim.Engine, c *sim.Core, _ *Packet) {
		cores = append(cores, c.ID)
	})
	key := pkt(99).Key
	// Install a steering entry from core 5's transmit path.
	e.OnCore(5, 0, func(_ *sim.Engine, c *sim.Core) {
		n.FDirUpdate(e, c, key)
	})
	e.Run(1 << 30)
	n.Rx(e, pkt(99))
	e.Run(1 << 40)
	if len(cores) != 1 || cores[0] != 5 {
		t.Fatalf("FDir steering delivered on %v, want [5]", cores)
	}
	if n.FDirEntries() != 1 {
		t.Fatalf("entries = %d", n.FDirEntries())
	}
}

func TestFDirInsertCostCharged(t *testing.T) {
	n, e, _ := testNIC(t, ModePerFlowFDir, 2, nil)
	var spent sim.Cycles
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		before := c.Now()
		n.FDirUpdate(e, c, pkt(1).Key)
		spent = c.Now() - before
	})
	e.Run(1 << 30)
	if spent != n.Config().FDirInsertCost {
		t.Fatalf("insert cost %d, want %d", spent, n.Config().FDirInsertCost)
	}
}

func TestFDirFlushHaltsTxAndDropsRx(t *testing.T) {
	ft := core.NewFlowTable(64, 2)
	n := New(Config{Rings: 2, Mode: ModePerFlowFDir, FlowTable: ft, FDirCapacity: 4}, nil)
	e := sim.New(sim.Config{Cores: 2, Seed: 1})
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		for i := 0; i < 5; i++ { // fifth insert overflows capacity 4
			n.FDirUpdate(e, c, pkt(uint16(i)).Key)
		}
	})
	e.Run(1)
	if n.Stats.FDirFlushes != 1 {
		t.Fatalf("flushes = %d, want 1", n.Stats.FDirFlushes)
	}
	// During the flush, received packets are missed.
	n.Rx(e, pkt(77))
	if n.Stats.RxDropsFlush != 1 {
		t.Fatalf("flush drops = %d", n.Stats.RxDropsFlush)
	}
	// And transmission is pushed past the flush window.
	var txDone sim.Time
	e.OnCore(0, 2, func(_ *sim.Engine, c *sim.Core) {
		txDone = n.Tx(c, pkt(3))
	})
	e.Run(1 << 30)
	cfg := n.Config()
	if txDone < cfg.FDirFlushSchedule {
		t.Fatalf("tx finished at %d, inside the flush window", txDone)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	ft := core.NewFlowTable(64, 1)
	n := New(Config{Rings: 1, Mode: ModeFlowGroups, FlowTable: ft, RingCapacity: 4},
		func(_ *sim.Engine, _ *sim.Core, _ *Packet) {})
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	for i := 0; i < 10; i++ {
		n.Rx(e, pkt(uint16(i)))
	}
	if n.Stats.RxDropsFull == 0 {
		t.Fatal("no drops despite ring overflow")
	}
	if n.Backlog(0) > 4 {
		t.Fatalf("ring grew past capacity: %d", n.Backlog(0))
	}
}

func TestNAPIBatchingDrainsBacklog(t *testing.T) {
	served := 0
	ft := core.NewFlowTable(64, 1)
	n := New(Config{Rings: 1, Mode: ModeFlowGroups, FlowTable: ft, NAPIBudget: 2},
		func(_ *sim.Engine, c *sim.Core, _ *Packet) { c.Charge(100); served++ })
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	for i := 0; i < 7; i++ {
		n.Rx(e, pkt(uint16(i)))
	}
	e.Run(1 << 40)
	if served != 7 {
		t.Fatalf("served %d of 7 packets", served)
	}
}

func TestTxBandwidthSerializes(t *testing.T) {
	n, e, _ := testNIC(t, ModeFlowGroups, 2, nil)
	var t1, t2 sim.Time
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		big := &Packet{Key: pkt(1).Key, Bytes: 125_000} // 100 us at 10 Gbit
		t1 = n.Tx(c, big)
	})
	e.OnCore(1, 0, func(_ *sim.Engine, c *sim.Core) {
		t2 = n.Tx(c, &Packet{Key: pkt(2).Key, Bytes: 125_000})
	})
	e.Run(1 << 30)
	if t2 <= t1 {
		t.Fatalf("port did not serialize: %d then %d", t1, t2)
	}
	// 125 kB at 10 Gbit = 100 us = 240k cycles at 2.4 GHz.
	if t1 < 200_000 || t1 > 280_000 {
		t.Fatalf("first tx finished at %d cycles, want ~240k", t1)
	}
	if n.TxBacklogCycles(0) == 0 {
		t.Fatal("tx backlog not visible")
	}
}

func TestCatalogueMatchesTable5(t *testing.T) {
	cat := Catalogue()
	if len(cat) != 4 {
		t.Fatalf("catalogue has %d rows", len(cat))
	}
	intel := cat[0]
	if intel.Vendor != "Intel" || intel.HWDMARings != 64 ||
		intel.RSSDMARings != 16 || intel.FlowSteeringEntries != 32*1024 {
		t.Fatalf("intel row wrong: %+v", intel)
	}
	chelsio := cat[1]
	if chelsio.FlowSteeringNote != "tens of thousands" {
		t.Fatal("chelsio note wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rings")
		}
	}()
	New(Config{}, nil)
}

func TestFlowGroupsRequiresTable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without FlowTable")
		}
	}()
	New(Config{Rings: 2, Mode: ModeFlowGroups}, nil)
}
