package sched

import (
	"testing"

	"affinityaccept/internal/sim"
)

func TestHogCompletesAndReportsTime(t *testing.T) {
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	var done sim.Time
	h := &Hog{Core: 0, Remaining: 1_000_000, Slice: 100_000,
		Done: func(at sim.Time) { done = at }}
	h.Start(e)
	e.Run(1 << 40)
	if done != 1_000_000 {
		t.Fatalf("greedy hog finished at %d, want exactly its work", done)
	}
}

func TestHogSharePacing(t *testing.T) {
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	var done sim.Time
	h := &Hog{Core: 0, Remaining: 1_000_000, Slice: 100_000, Share: 0.5,
		Done: func(at sim.Time) { done = at }}
	h.Start(e)
	e.Run(1 << 40)
	// At 50% share the hog yields one slice-gap per slice: ~2x runtime
	// minus the final gap.
	if done < 1_800_000 || done > 2_000_000 {
		t.Fatalf("paced hog finished at %d, want ~1.9M", done)
	}
}

func TestHogInterleavesWithOtherWork(t *testing.T) {
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	var hogDone, otherRan sim.Time
	h := &Hog{Core: 0, Remaining: 1_000_000, Slice: 100_000,
		Done: func(at sim.Time) { hogDone = at }}
	h.Start(e)
	e.OnCore(0, 50_000, func(_ *sim.Engine, c *sim.Core) {
		c.Charge(200_000)
		otherRan = c.Now()
	})
	e.Run(1 << 40)
	if otherRan == 0 || otherRan >= hogDone {
		t.Fatalf("competing work starved: other=%d hog=%d", otherRan, hogDone)
	}
	if hogDone != 1_200_000 {
		t.Fatalf("hog end = %d, want work+interference", hogDone)
	}
}

func TestHogStop(t *testing.T) {
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	called := false
	h := &Hog{Core: 0, Remaining: 1 << 40, Slice: 1000,
		Done: func(sim.Time) { called = true }}
	h.Start(e)
	e.Run(10_000)
	h.Stop()
	e.Run(100_000)
	if called {
		t.Fatal("stopped hog still completed")
	}
	c := e.Cores[0]
	if c.BusyCycles() > 20_000 {
		t.Fatalf("stopped hog kept burning: %d", c.BusyCycles())
	}
}

func TestMakeJobPhases(t *testing.T) {
	e := sim.New(sim.Config{Cores: 4, Seed: 1})
	var phases []int
	var done sim.Time
	job := &MakeJob{
		Cores:      []int{0, 1, 2, 3},
		PhaseWork:  1_000_000,
		SerialWork: 500_000,
		Done:       func(at sim.Time) { done = at },
		PhaseStarted: func(p int, at sim.Time) {
			phases = append(phases, p)
		},
	}
	job.Start(e)
	e.Run(1 << 40)
	if len(phases) != 2 || phases[0] != 1 || phases[1] != 2 {
		t.Fatalf("phases: %v", phases)
	}
	// Two parallel phases (1M each, on idle cores) + 0.5M serial.
	if done != 2_500_000 {
		t.Fatalf("make finished at %d, want 2.5M", done)
	}
}

func TestMakeJobNeedsCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&MakeJob{}).Start(sim.New(sim.Config{Cores: 1, Seed: 1}))
}

func TestDeferUserCapsRate(t *testing.T) {
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	c := e.Cores[0]
	c.UserShare = 0.25
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		start := c.Now()
		c.Charge(100_000)
		next := c.DeferUser(start)
		// 100k of work at 25% share defers the next turn 300k out.
		if next != c.Now()+300_000 {
			t.Errorf("next eligible = %d, want now+300k", next)
		}
	})
	e.Run(1 << 30)
}

func TestDeferUserUnconstrained(t *testing.T) {
	e := sim.New(sim.Config{Cores: 1, Seed: 1})
	e.OnCore(0, 0, func(_ *sim.Engine, c *sim.Core) {
		start := c.Now()
		c.Charge(100_000)
		if next := c.DeferUser(start); next != c.Now() {
			t.Errorf("unconstrained core deferred to %d", next)
		}
		if c.UserEligibleAt() != c.Now() {
			t.Error("eligibility should be now")
		}
	})
	e.Run(1 << 30)
}
