package sched

import (
	"math/rand"
	"testing"
	"time"

	"affinityaccept/internal/core"
	"affinityaccept/internal/sim"
)

// groupsOwnedBy returns the first n flow groups initially steered to
// core under the diagonal spread, so scenarios can aim traffic at a
// chosen owner.
func groupsOwnedBy(t *testing.T, table *core.FlowTable, owner, n int) []int {
	t.Helper()
	var out []int
	for g := 0; g < table.Groups() && len(out) < n; g++ {
		if table.CoreOf(g) == owner {
			out = append(out, g)
		}
	}
	if len(out) < n {
		t.Fatalf("only %d of %d groups initially on core %d", len(out), n, owner)
	}
	return out
}

const msCycles = sim.Cycles(2_400_000) // 1 ms at the default 2.4 GHz

// TestHarnessSkewedConvergence replays the tentpole's canonical
// scenario: every connection aimed at groups homed on one overloaded
// core of a 2-chip machine. The real policy must (a) never steal from a
// farther victim while a closer one is stealable, (b) migrate the hot
// groups out until locality converges, and (c) back the adaptive
// interval off once it has.
func TestHarnessSkewedConvergence(t *testing.T) {
	h := NewHarness(HarnessConfig{
		Topology:     Regular(6, 2),
		Seed:         1,
		MigrateEvery: time.Millisecond,
		Adaptive:     true,
	})
	hot := groupsOwnedBy(t, h.Table, 0, 6)
	res := h.Run([]Phase{{Until: 40 * msCycles, ArrivalGap: 20_000, Port: PortForGroups(hot)}})

	if res.OrderViolations != 0 {
		t.Fatalf("%d steal-order violations", res.OrderViolations)
	}
	if res.Steals == 0 || res.Migrations == 0 {
		t.Fatalf("scenario did not exercise the policy: steals=%d migrations=%d", res.Steals, res.Migrations)
	}
	n := len(res.TickLocality)
	early := LocalityOver(res.TickLocality, 0, n/4)
	late := LocalityOver(res.TickLocality, 3*n/4, n)
	if late <= early {
		t.Fatalf("locality did not converge: early %.3f, late %.3f", early, late)
	}
	if late < 0.9 {
		t.Fatalf("late-window locality %.3f, want >= 0.9", late)
	}
	final := res.Reports[len(res.Reports)-1]
	if !final.Converged {
		t.Fatalf("adaptive interval never backed off: final %v", final.Interval)
	}
}

// TestHarnessShiftingWorkloadReconverges shifts the skew to the other
// chip mid-run: the controller must snap back from its backed-off
// interval to the aggressive base, then re-converge.
func TestHarnessShiftingWorkloadReconverges(t *testing.T) {
	h := NewHarness(HarnessConfig{
		Topology:     Regular(6, 2),
		Seed:         2,
		MigrateEvery: time.Millisecond,
		Adaptive:     true,
	})
	hotA := groupsOwnedBy(t, h.Table, 0, 4) // chip 0 owner
	hotB := groupsOwnedBy(t, h.Table, 3, 4) // chip 1 owner
	res := h.Run([]Phase{
		{Until: 40 * msCycles, ArrivalGap: 20_000, Port: PortForGroups(hotA)},
		{Until: 80 * msCycles, ArrivalGap: 20_000, Port: PortForGroups(hotB)},
	})

	if res.OrderViolations != 0 {
		t.Fatalf("%d steal-order violations", res.OrderViolations)
	}
	// The controller converged at some tick, then a later tick snapped
	// back to the base interval when the skew moved.
	snapped := false
	seenConverged := false
	for _, rep := range res.Reports {
		if rep.Converged {
			seenConverged = true
		} else if seenConverged {
			snapped = true
			break
		}
	}
	if !seenConverged {
		t.Fatal("controller never converged in phase A")
	}
	if !snapped {
		t.Fatal("controller never snapped back to aggressive after the shift")
	}
	n := len(res.TickLocality)
	if late := LocalityOver(res.TickLocality, 3*n/4, n); late < 0.9 {
		t.Fatalf("did not re-converge after shift: late-window locality %.3f", late)
	}
}

// TestHarnessOscillationFreeze replays the adversarial scenario: one
// group hot enough to overload any single owner on a 3-core machine.
// Under the real §3.3.2 policy the two idle cores alternate as top
// thief, so the group ping-pongs; the controller must freeze it, the
// frozen group must not move during its cooldown, and it must thaw
// afterwards. The freeze must also strictly reduce how often the hot
// group moves versus the non-adaptive baseline.
func TestHarnessOscillationFreeze(t *testing.T) {
	run := func(adaptive bool) (Result, int) {
		h := NewHarness(HarnessConfig{
			Topology:     Regular(3, 1),
			Seed:         3,
			MigrateEvery: time.Millisecond,
			Adaptive:     adaptive,
			Controller:   ControllerConfig{FreezeTicks: 5},
		})
		hot := groupsOwnedBy(t, h.Table, 0, 1)
		res := h.Run([]Phase{{Until: 40 * msCycles, ArrivalGap: 15_000, Port: PortForGroups(hot)}})
		hotMoves := 0
		for _, moves := range res.TickMoves {
			for _, m := range moves {
				if m.Group == hot[0] {
					hotMoves++
				}
			}
		}
		return res, hotMoves
	}

	res, hotMoves := run(true)
	if res.OrderViolations != 0 {
		t.Fatalf("%d steal-order violations", res.OrderViolations)
	}
	if !res.Frozen() {
		t.Fatal("ping-ponging group was never frozen")
	}
	if !res.Unfroze() {
		t.Fatal("frozen group never thawed after cooldown")
	}
	// While frozen, the hot group must not move. Walk the report/tick
	// pairs: from the tick after a freeze until the tick that reports
	// the thaw, no move may touch a frozen group.
	frozen := map[int]bool{}
	for i, rep := range res.Reports {
		for _, m := range res.TickMoves[i] {
			if frozen[m.Group] {
				t.Fatalf("tick %d moved frozen group %d", i, m.Group)
			}
		}
		for _, g := range rep.Unfrozen {
			delete(frozen, g)
		}
		for _, g := range rep.NewlyFrozen {
			frozen[g] = true
		}
	}

	_, baselineMoves := run(false)
	if hotMoves >= baselineMoves {
		t.Fatalf("freeze did not reduce churn: hot group moved %d times adaptive vs %d baseline",
			hotMoves, baselineMoves)
	}
}

// TestHarnessDistanceAwareReducesCrossChipSteals is the simulated A/B
// behind the bench gate: identical seed and workload — one overloaded
// owner per chip — with the only difference being whether the steal
// scan sees the topology. Distance-aware must strictly reduce both the
// cross-chip steal share and the Table 1-priced per-steal cost, without
// serving fewer connections.
func TestHarnessDistanceAwareReducesCrossChipSteals(t *testing.T) {
	run := func(blind bool) Result {
		h := NewHarness(HarnessConfig{
			Topology:      Regular(6, 2),
			Seed:          4,
			MigrateEvery:  time.Second, // no migrations: isolate stealing
			PollGap:       100_000,     // coarse polling keeps the idle tail cheap
			DistanceBlind: blind,
		})
		hot := append(groupsOwnedBy(t, h.Table, 0, 1), groupsOwnedBy(t, h.Table, 3, 1)...)
		return h.Run([]Phase{{Until: 40 * msCycles, ArrivalGap: 10_000, Port: PortForGroups(hot)}})
	}
	aware, blind := run(false), run(true)

	if aware.OrderViolations != 0 {
		t.Fatalf("%d steal-order violations", aware.OrderViolations)
	}
	if aware.Steals == 0 || blind.Steals == 0 {
		t.Fatalf("A/B did not steal: aware=%d blind=%d", aware.Steals, blind.Steals)
	}
	awareShare := float64(aware.CrossChipSteals) / float64(aware.Steals)
	blindShare := float64(blind.CrossChipSteals) / float64(blind.Steals)
	if awareShare >= blindShare {
		t.Fatalf("cross-chip steal share not reduced: aware %.3f vs blind %.3f", awareShare, blindShare)
	}
	awareCost := float64(aware.EstStealCycles) / float64(aware.Steals)
	blindCost := float64(blind.EstStealCycles) / float64(blind.Steals)
	if awareCost >= blindCost {
		t.Fatalf("per-steal cost not reduced: aware %.1f vs blind %.1f cycles", awareCost, blindCost)
	}
	if float64(aware.Served) < 0.97*float64(blind.Served) {
		t.Fatalf("distance awareness cost throughput: served %d vs %d", aware.Served, blind.Served)
	}
}

// TestHarnessRandomTopologies sweeps seeded random uneven topologies
// through a skewed workload and holds the tentpole's core invariant on
// every one: zero steal-order violations, with the policy genuinely
// exercised.
func TestHarnessRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		top := RandomTopology(rng, 3+rng.Intn(8))
		h := NewHarness(HarnessConfig{
			Topology:     top,
			Seed:         int64(100 + i),
			MigrateEvery: time.Millisecond,
			Adaptive:     true,
		})
		owner := rng.Intn(top.Cores())
		hot := groupsOwnedBy(t, h.Table, owner, 2)
		res := h.Run([]Phase{{Until: 20 * msCycles, ArrivalGap: 15_000, Port: PortForGroups(hot)}})
		if res.OrderViolations != 0 {
			t.Fatalf("topology %d (%d cores, %d chips): %d steal-order violations",
				i, top.Cores(), top.Chips, res.OrderViolations)
		}
		if res.Served == 0 {
			t.Fatalf("topology %d served nothing", i)
		}
		if top.Cores() > 1 && res.Steals == 0 {
			t.Fatalf("topology %d: skewed workload produced no steals", i)
		}
	}
}
