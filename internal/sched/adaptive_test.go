package sched

import (
	"testing"
	"time"

	"affinityaccept/internal/core"
)

// tick is one Advance call's inputs plus the assertions to run on its
// Report (zero-valued assertion fields are skipped).
type tick struct {
	local, stolen uint64
	moves         []core.Migration

	wantInterval time.Duration
	wantFrozen   []int // groups newly frozen this tick
	wantUnfrozen []int // groups unfrozen this tick
}

func mv(group, from, to int) core.Migration {
	return core.Migration{Group: group, From: from, To: to}
}

// TestControllerStateMachine drives the adaptive controller through the
// state transitions the tentpole promises: poor locality keeps it
// aggressive, sustained convergence backs it off, a shift snaps it
// back, and a ping-ponging group is frozen then unfrozen after its
// cooldown.
func TestControllerStateMachine(t *testing.T) {
	const base = 100 * time.Millisecond
	cfg := ControllerConfig{
		BaseInterval:   base,
		MaxInterval:    8 * base,
		ConvergedTicks: 3,
		FreezeTicks:    4,
		PingPongWindow: 6,
	}
	cases := []struct {
		name  string
		ticks []tick
	}{
		{
			// 60% locality is far below AggressiveLocality: every tick
			// stays at the base interval no matter how many pass.
			name: "poor locality stays aggressive",
			ticks: []tick{
				{local: 60, stolen: 40, wantInterval: base},
				{local: 60, stolen: 40, wantInterval: base},
				{local: 60, stolen: 40, wantInterval: base},
				{local: 60, stolen: 40, wantInterval: base},
				{local: 60, stolen: 40, wantInterval: base},
			},
		},
		{
			// Perfect locality and a quiet balancer: every ConvergedTicks
			// the interval doubles, saturating at MaxInterval.
			name: "converged backs off to max",
			ticks: []tick{
				{local: 100, wantInterval: base},
				{local: 100, wantInterval: base},
				{local: 100, wantInterval: 2 * base},
				{local: 100, wantInterval: 2 * base},
				{local: 100, wantInterval: 2 * base},
				{local: 100, wantInterval: 4 * base},
				{local: 100, wantInterval: 4 * base},
				{local: 100, wantInterval: 4 * base},
				{local: 100, wantInterval: 8 * base},
				{local: 100, wantInterval: 8 * base},
				{local: 100, wantInterval: 8 * base},
				{local: 100, wantInterval: 8 * base}, // capped
			},
		},
		{
			// An idle server (no accepts at all) counts as quiet: the
			// interval backs off rather than churning the NIC table.
			name: "idle ticks back off",
			ticks: []tick{
				{wantInterval: base},
				{wantInterval: base},
				{wantInterval: 2 * base},
			},
		},
		{
			// Back off first, then the workload shifts (migrations fire,
			// locality craters): one tick snaps back to base.
			name: "shift snaps back to aggressive",
			ticks: []tick{
				{local: 100, wantInterval: base},
				{local: 100, wantInterval: base},
				{local: 100, wantInterval: 2 * base},
				{local: 20, stolen: 80, moves: []core.Migration{mv(7, 0, 1)}, wantInterval: base},
				{local: 20, stolen: 80, wantInterval: base},
			},
		},
		{
			// A migration alone — locality still fine — also resets the
			// back-off: the balancer acting means not yet converged.
			name: "moves reset good-tick credit",
			ticks: []tick{
				{local: 100, wantInterval: base},
				{local: 100, wantInterval: base},
				{local: 100, moves: []core.Migration{mv(3, 2, 0)}, wantInterval: base},
				{local: 100, wantInterval: base},
				{local: 100, wantInterval: base},
				{local: 100, wantInterval: 2 * base},
			},
		},
		{
			// Group 9 bounces 1→0→1: the third move completes the
			// [X, Y, X] pattern and freezes it for FreezeTicks; the
			// cooldown expiring unfreezes it.
			name: "oscillating group frozen then unfrozen",
			ticks: []tick{
				{local: 50, stolen: 50, moves: []core.Migration{mv(9, 0, 1)}, wantInterval: base},
				{local: 50, stolen: 50, moves: []core.Migration{mv(9, 1, 0)}, wantInterval: base},
				{local: 50, stolen: 50, moves: []core.Migration{mv(9, 0, 1)}, wantFrozen: []int{9}},
				{local: 50, stolen: 50},
				{local: 50, stolen: 50},
				{local: 50, stolen: 50},
				{local: 50, stolen: 50, wantUnfrozen: []int{9}}, // tick 7 = freeze tick 3 + 4
			},
		},
		{
			// The same [X, Y, X] owners spread over more ticks than
			// PingPongWindow is genuine re-balancing, not oscillation.
			name: "slow alternation outside window is not frozen",
			ticks: []tick{
				{local: 90, stolen: 10, moves: []core.Migration{mv(5, 0, 1)}},
				{local: 100}, {local: 100}, {local: 100},
				{local: 90, stolen: 10, moves: []core.Migration{mv(5, 1, 0)}},
				{local: 100}, {local: 100}, {local: 100},
				{local: 90, stolen: 10, moves: []core.Migration{mv(5, 0, 1)}, wantFrozen: nil},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewController(cfg)
			for i, tk := range tc.ticks {
				rep := c.Advance(tk.local, tk.stolen, tk.moves)
				if tk.wantInterval != 0 && rep.Interval != tk.wantInterval {
					t.Fatalf("tick %d: interval %v, want %v", i, rep.Interval, tk.wantInterval)
				}
				if tk.wantFrozen != nil && !equalInts(rep.NewlyFrozen, tk.wantFrozen) {
					t.Fatalf("tick %d: newly frozen %v, want %v", i, rep.NewlyFrozen, tk.wantFrozen)
				}
				if len(tk.wantFrozen) == 0 && len(rep.NewlyFrozen) > 0 {
					t.Fatalf("tick %d: unexpected freeze %v", i, rep.NewlyFrozen)
				}
				if tk.wantUnfrozen != nil && !equalInts(rep.Unfrozen, tk.wantUnfrozen) {
					t.Fatalf("tick %d: unfrozen %v, want %v", i, rep.Unfrozen, tk.wantUnfrozen)
				}
				for _, g := range tk.wantFrozen {
					if c.GroupOK(g) {
						t.Fatalf("tick %d: group %d frozen but GroupOK true", i, g)
					}
				}
				for _, g := range tk.wantUnfrozen {
					if !c.GroupOK(g) {
						t.Fatalf("tick %d: group %d unfrozen but GroupOK false", i, g)
					}
				}
			}
		})
	}
}

// TestControllerFreezeVetoIsScoped checks the freeze only vetoes the
// frozen group: the rest of the table keeps balancing, and the thawed
// group's cleared history means its next move does not instantly
// re-freeze it.
func TestControllerFreezeVetoIsScoped(t *testing.T) {
	c := NewController(ControllerConfig{FreezeTicks: 2, ConvergedTicks: 3})
	c.Advance(50, 50, []core.Migration{mv(1, 0, 1)})
	c.Advance(50, 50, []core.Migration{mv(1, 1, 0)})
	rep := c.Advance(50, 50, []core.Migration{mv(1, 0, 1)})
	if !equalInts(rep.NewlyFrozen, []int{1}) {
		t.Fatalf("group 1 not frozen: %+v", rep)
	}
	if c.GroupOK(1) || !c.GroupOK(2) {
		t.Fatal("freeze veto leaked beyond group 1")
	}
	if c.FrozenCount() != 1 {
		t.Fatalf("FrozenCount = %d, want 1", c.FrozenCount())
	}
	c.Advance(50, 50, nil)
	rep = c.Advance(50, 50, nil) // cooldown expires
	if !equalInts(rep.Unfrozen, []int{1}) {
		t.Fatalf("group 1 not unfrozen: %+v", rep)
	}
	// Two fresh moves after the thaw: only one alternation in the ring,
	// so no re-freeze.
	c.Advance(50, 50, []core.Migration{mv(1, 0, 1)})
	rep = c.Advance(50, 50, []core.Migration{mv(1, 1, 0)})
	if len(rep.NewlyFrozen) != 0 {
		t.Fatalf("thawed group re-frozen from stale history: %+v", rep)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
