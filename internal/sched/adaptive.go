package sched

import (
	"sort"
	"time"

	"affinityaccept/internal/core"
)

// This file holds the adaptive migration controller: §3.3.2 fixes the
// flow-group balancing interval at 100ms forever, which keeps paying
// the migration-scan cost (and keeps perturbing the NIC steering table)
// long after the workload has converged. The controller watches the
// locality ratio — the share of connections accepted on their home core
// versus stolen — and stretches the interval once stealing dies down,
// snapping back to the aggressive base the moment locality degrades. A
// per-group recent-owner ring catches groups that migrate back and
// forth between two cores (two equally idle cores fighting over one hot
// group) and freezes them for a cooldown, letting the rest of the table
// keep balancing.
//
// The controller is pure and deterministic: it advances only when
// Advance is called (one call per migration tick), takes all inputs as
// arguments, and never reads the clock. That is what lets the
// simulation harness replay it tick-for-tick on virtual time and the
// serve package drive it from its migration goroutine unchanged.

// ControllerConfig tunes the adaptive migration controller. Zero values
// select the defaults listed on each field.
type ControllerConfig struct {
	// BaseInterval is the aggressive balancing interval used while the
	// workload is still converging (default core.DefaultMigrateInterval).
	BaseInterval time.Duration
	// MaxInterval caps the backed-off interval (default 8×BaseInterval).
	MaxInterval time.Duration
	// AggressiveLocality: EWMA locality below this snaps the interval
	// back to BaseInterval (default 0.90).
	AggressiveLocality float64
	// ConvergedLocality: EWMA locality at or above this counts the tick
	// toward backing off (default 0.95). Ticks landing between the two
	// thresholds hold the current interval (hysteresis).
	ConvergedLocality float64
	// ConvergedTicks is how many consecutive good ticks double the
	// interval (default 3).
	ConvergedTicks int
	// Alpha is the locality EWMA weight for the newest tick (default 0.4).
	Alpha float64
	// RingSize is the per-group recent-owner ring capacity (default 4).
	RingSize int
	// PingPongWindow is the tick span within which an owner pattern
	// [X, Y, X] counts as ping-ponging (default 6).
	PingPongWindow int
	// FreezeTicks is how many ticks a ping-ponging group sits out
	// (default 8).
	FreezeTicks int
}

func (c *ControllerConfig) fill() {
	if c.BaseInterval <= 0 {
		c.BaseInterval = core.DefaultMigrateInterval
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = 8 * c.BaseInterval
	}
	if c.AggressiveLocality == 0 {
		c.AggressiveLocality = 0.90
	}
	if c.ConvergedLocality == 0 {
		c.ConvergedLocality = 0.95
	}
	if c.ConvergedTicks <= 0 {
		c.ConvergedTicks = 3
	}
	if c.Alpha == 0 {
		c.Alpha = 0.4
	}
	if c.RingSize <= 0 {
		c.RingSize = 4
	}
	if c.PingPongWindow <= 0 {
		c.PingPongWindow = 6
	}
	if c.FreezeTicks <= 0 {
		c.FreezeTicks = 8
	}
}

// ownerAt is one recent-owner ring entry: group moved to Core at Tick.
type ownerAt struct {
	Core int
	Tick int
}

// Report is what one Advance call decided.
type Report struct {
	// Interval is the balancing interval to use until the next tick.
	Interval time.Duration
	// Locality is the smoothed locality ratio after this tick.
	Locality float64
	// NewlyFrozen lists groups frozen this tick (ascending).
	NewlyFrozen []int
	// Unfrozen lists groups whose cooldown expired this tick (ascending).
	Unfrozen []int
	// Converged reports whether the interval is backed off past base.
	Converged bool
}

// Controller is the adaptive migration controller. Not safe for
// concurrent use; serve drives it from its single migration goroutine.
type Controller struct {
	cfg ControllerConfig

	tick      int
	interval  time.Duration
	locality  float64
	seen      bool
	goodTicks int

	rings  map[int][]ownerAt // group -> recent owners, newest last
	frozen map[int]int       // group -> tick at which it thaws
}

// NewController builds a controller starting at the aggressive interval.
func NewController(cfg ControllerConfig) *Controller {
	cfg.fill()
	return &Controller{
		cfg:      cfg,
		interval: cfg.BaseInterval,
		rings:    make(map[int][]ownerAt),
		frozen:   make(map[int]int),
	}
}

// Interval reports the current balancing interval.
func (c *Controller) Interval() time.Duration { return c.interval }

// Locality reports the smoothed locality ratio (1.0 before any sample).
func (c *Controller) Locality() float64 {
	if !c.seen {
		return 1.0
	}
	return c.locality
}

// FrozenCount reports how many groups are currently frozen.
func (c *Controller) FrozenCount() int { return len(c.frozen) }

// GroupOK is the veto the balancer consults: false while the group is
// frozen. Pass it as groupOK to core.BalanceRecordFiltered.
func (c *Controller) GroupOK(group int) bool {
	_, frozen := c.frozen[group]
	return !frozen
}

// Advance folds one migration tick into the controller: localDelta and
// stolenDelta are the connections accepted locally and by stealing
// since the previous tick, and moves are the migrations the balancer
// just applied (with GroupOK as its veto). It returns the decisions for
// the next interval.
func (c *Controller) Advance(localDelta, stolenDelta uint64, moves []core.Migration) Report {
	c.tick++
	rep := Report{}

	// Thaw groups whose cooldown expired, clearing their history so
	// stale entries cannot re-freeze them on their next legitimate move.
	for g, thaw := range c.frozen {
		if c.tick >= thaw {
			delete(c.frozen, g)
			delete(c.rings, g)
			rep.Unfrozen = append(rep.Unfrozen, g)
		}
	}
	sort.Ints(rep.Unfrozen)

	// Record this tick's moves and catch ping-pongs: a group whose last
	// three owners read X, Y, X within the window is bouncing between
	// two cores that each look like the better home from where they sit.
	for _, m := range moves {
		ring := append(c.rings[m.Group], ownerAt{Core: m.To, Tick: c.tick})
		if len(ring) > c.cfg.RingSize {
			ring = ring[len(ring)-c.cfg.RingSize:]
		}
		c.rings[m.Group] = ring
		if n := len(ring); n >= 3 {
			a, b, x := ring[n-3], ring[n-2], ring[n-1]
			if a.Core == x.Core && a.Core != b.Core && x.Tick-a.Tick <= c.cfg.PingPongWindow {
				if _, already := c.frozen[m.Group]; !already {
					c.frozen[m.Group] = c.tick + c.cfg.FreezeTicks
					rep.NewlyFrozen = append(rep.NewlyFrozen, m.Group)
				}
			}
		}
	}
	sort.Ints(rep.NewlyFrozen)

	// Fold the tick's locality sample into the EWMA. A tick with no
	// accepts at all contributes no sample — an idle server is neither
	// converged nor struggling.
	total := localDelta + stolenDelta
	if total > 0 {
		sample := float64(localDelta) / float64(total)
		if !c.seen {
			c.locality, c.seen = sample, true
		} else {
			c.locality += c.cfg.Alpha * (sample - c.locality)
		}
	}

	// Adapt the interval: migrations or degraded locality mean the
	// workload is shifting — snap back to aggressive. Sustained high
	// locality with a quiet balancer earns a doubling, up to the cap.
	switch {
	case len(moves) > 0 || (c.seen && c.locality < c.cfg.AggressiveLocality):
		c.interval = c.cfg.BaseInterval
		c.goodTicks = 0
	case total == 0 || c.locality >= c.cfg.ConvergedLocality:
		c.goodTicks++
		if c.goodTicks >= c.cfg.ConvergedTicks && c.interval < c.cfg.MaxInterval {
			c.interval *= 2
			if c.interval > c.cfg.MaxInterval {
				c.interval = c.cfg.MaxInterval
			}
			c.goodTicks = 0
		}
	}

	rep.Interval = c.interval
	rep.Locality = c.Locality()
	rep.Converged = c.interval > c.cfg.BaseInterval
	return rep
}
