// Package sched provides the background CPU load used in the paper's
// load-balancer evaluation (§6.5): a parallel "make" job that consumes
// entire cores in two parallel phases separated by a short serial phase,
// time-sliced against whatever else runs on those cores.
package sched

import "affinityaccept/internal/sim"

// DefaultSlice is the scheduling quantum a CPU-bound task runs before
// yielding the simulated core.
const DefaultSlice sim.Cycles = 480_000 // 200 us at 2.4 GHz

// Hog is a CPU-bound task bound to one core. It competes for the core's
// timeline in slices. Share models the CFS share the task would win
// against user-space competitors: after each slice the hog yields
// (1-Share)/Share of a slice before claiming the core again, so user
// work gets at most that fraction of the non-interrupt time — interrupt
// work always runs (it preempts everything on the shared timeline).
// Share 0 or 1 means greedy: the hog soaks up whatever is left over.
type Hog struct {
	Core      int
	Remaining sim.Cycles
	Slice     sim.Cycles
	Share     float64
	// Done is called at the virtual time the work completes.
	Done func(at sim.Time)

	stopped bool
}

// Start begins executing the hog.
func (h *Hog) Start(e *sim.Engine) {
	if h.Slice == 0 {
		h.Slice = DefaultSlice
	}
	e.OnCore(h.Core, e.Now(), h.run)
}

// Stop cancels remaining work (the hog's Done is not called).
func (h *Hog) Stop() { h.stopped = true }

func (h *Hog) gap() sim.Cycles {
	if h.Share <= 0 || h.Share >= 1 {
		return 0
	}
	return sim.Cycles(float64(h.Slice) * (1 - h.Share) / h.Share)
}

func (h *Hog) run(e *sim.Engine, c *sim.Core) {
	if h.stopped {
		return
	}
	slice := h.Slice
	if slice > h.Remaining {
		slice = h.Remaining
	}
	c.Charge(slice)
	h.Remaining -= slice
	if h.Remaining > 0 {
		e.OnCore(h.Core, c.Now()+h.gap(), h.run)
		return
	}
	if h.Done != nil {
		h.Done(c.Now())
	}
}

// MakeJob models the paper's parallel kernel build: two parallel phases
// over a set of cores, separated by a serial single-core phase ("the
// kernel make process has two parallel phases separated by a
// multi-second serial process"). Flow-group migration therefore has to
// adapt twice.
type MakeJob struct {
	Cores []int
	// PhaseWork is per-core work in each parallel phase.
	PhaseWork sim.Cycles
	// SerialWork runs on Cores[0] between the phases.
	SerialWork sim.Cycles
	Slice      sim.Cycles
	// Share is each job's CFS share against user-space work (see Hog).
	Share float64
	// Done receives the completion time of the whole job.
	Done func(at sim.Time)

	// PhaseStarted, if set, is called as each parallel phase begins
	// (1-based), letting experiments observe migration behaviour.
	PhaseStarted func(phase int, at sim.Time)

	remaining int
	phase     int
}

// Start launches phase 1.
func (m *MakeJob) Start(e *sim.Engine) {
	if len(m.Cores) == 0 {
		panic("sched: MakeJob needs cores")
	}
	m.phase = 1
	if m.PhaseStarted != nil {
		m.PhaseStarted(1, e.Now())
	}
	m.startPhase(e)
}

func (m *MakeJob) startPhase(e *sim.Engine) {
	m.remaining = len(m.Cores)
	var phaseEnd sim.Time
	for _, coreID := range m.Cores {
		h := &Hog{Core: coreID, Remaining: m.PhaseWork, Slice: m.Slice, Share: m.Share}
		h.Done = func(at sim.Time) {
			if at > phaseEnd {
				phaseEnd = at
			}
			m.remaining--
			if m.remaining == 0 {
				m.phaseDone(e, phaseEnd)
			}
		}
		h.Start(e)
	}
}

func (m *MakeJob) phaseDone(e *sim.Engine, at sim.Time) {
	switch m.phase {
	case 1:
		m.phase = 2
		serial := &Hog{Core: m.Cores[0], Remaining: m.SerialWork, Slice: m.Slice, Share: m.Share}
		serial.Done = func(sat sim.Time) {
			if m.PhaseStarted != nil {
				m.PhaseStarted(2, sat)
			}
			m.startPhase(e)
		}
		serial.Start(e)
	case 2:
		if m.Done != nil {
			m.Done(at)
		}
	}
}
