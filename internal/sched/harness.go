package sched

import (
	"fmt"
	"math/rand"
	"time"

	"affinityaccept/internal/core"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/sim"
)

// This file is the deterministic topology-simulation harness: a seeded
// fake topology and fake clock replaying workloads through the REAL
// steal and migrate code (core.Queues, core.FlowTable, Controller).
// Nothing here reimplements policy — the harness only supplies
// arrivals, service time, and timers, so whatever the tests prove about
// distance ordering, convergence and oscillation freezing is proved
// about the production code paths, without real hardware.

// Conn is the connection payload replayed through the queues.
type Conn struct {
	Port uint16
	At   sim.Time
}

// Phase is one segment of a replayed workload: until Until (virtual
// time), connections arrive every ArrivalGap cycles with a source port
// drawn from Port. Phases let a scenario shift its skew mid-run.
type Phase struct {
	Until      sim.Time
	ArrivalGap sim.Cycles
	Port       func(rng *rand.Rand) uint16
}

// PortForGroups returns a port chooser that draws uniformly from the
// given flow groups (the port's low bits are the group, §3.1).
func PortForGroups(groups []int) func(rng *rand.Rand) uint16 {
	return func(rng *rand.Rand) uint16 {
		return uint16(groups[rng.Intn(len(groups))])
	}
}

// HarnessConfig configures one deterministic replay.
type HarnessConfig struct {
	Topology Topology
	Seed     int64
	// Groups is the flow-group count (default 64 — small enough that
	// scenarios can aim traffic at specific owners).
	Groups int
	// Backlog is the total accept backlog (default 16 per core).
	Backlog int
	// ServiceCycles is the per-connection service time (default 40k,
	// ~17 µs at 2.4 GHz).
	ServiceCycles sim.Cycles
	// PollGap is how often an idle core re-polls its queue (default 20k).
	PollGap sim.Cycles
	// MigrateEvery is the base balancing interval (default 1 ms).
	MigrateEvery time.Duration
	// Adaptive enables the Controller: it drives the balancing timer
	// and vetoes frozen groups. Off, the interval is fixed and no group
	// is ever frozen — the §3.3.2 baseline.
	Adaptive   bool
	Controller ControllerConfig
	// DistanceBlind drops the topology from the steal path (the
	// ablation arm): the queues scan victims in flat round-robin order
	// while the harness still prices every steal against the topology.
	DistanceBlind bool
	// Machine prices steals (default mem.AMD48 latencies): same-chip at
	// L3, cross-chip scaled linearly up to RemoteL3 for the two chips
	// farthest apart, matching Table 1's measurement convention.
	Machine mem.Machine
}

// Result is what one replay measured.
type Result struct {
	Locals, Steals uint64
	Drops          uint64
	Served         uint64
	// StealsByDistance counts steals by thief↔victim chip distance
	// (index 0 = same chip).
	StealsByDistance []uint64
	CrossChipSteals  uint64
	// EstStealCycles prices every steal at the machine's line-transfer
	// latency for its distance.
	EstStealCycles uint64
	Migrations     uint64
	// OrderViolations counts steals for which a strictly closer
	// stealable victim existed at steal time. The invariant the
	// tentpole promises is that this is always zero.
	OrderViolations int
	// Reports holds the controller's per-tick decisions (adaptive only).
	Reports []Report
	// TickMoves holds the migrations each balancing tick applied, in
	// tick order — the freeze tests read which ticks touched a group.
	TickMoves [][]core.Migration
	// TickLocality is the locality ratio of each balancing tick's
	// delta window, in tick order (NaN-free: ticks with no accepts are
	// recorded as -1).
	TickLocality  []float64
	FinalLocality float64
}

// Frozen reports whether any tick froze a group.
func (r Result) Frozen() bool {
	for _, rep := range r.Reports {
		if len(rep.NewlyFrozen) > 0 {
			return true
		}
	}
	return false
}

// Unfroze reports whether any tick unfroze a group.
func (r Result) Unfroze() bool {
	for _, rep := range r.Reports {
		if len(rep.Unfrozen) > 0 {
			return true
		}
	}
	return false
}

// Harness replays a workload through the real policy code on a
// simulated clock.
type Harness struct {
	cfg HarnessConfig
	eng *sim.Engine
	rng *rand.Rand

	Q     *core.Queues[Conn]
	Table *core.FlowTable
	Ctl   *Controller

	phases  []Phase
	phaseIx int

	lastLocals, lastSteals uint64
	res                    Result
	maxDist                int
}

// NewHarness builds the harness: the real queues (distance-aware unless
// DistanceBlind), the real flow table, and — when Adaptive — the real
// controller.
func NewHarness(cfg HarnessConfig) *Harness {
	if cfg.Topology.Cores() == 0 {
		panic("sched: harness needs a topology")
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 64
	}
	if cfg.Backlog <= 0 {
		cfg.Backlog = 16 * cfg.Topology.Cores()
	}
	if cfg.ServiceCycles == 0 {
		cfg.ServiceCycles = 40_000
	}
	if cfg.PollGap == 0 {
		cfg.PollGap = 20_000
	}
	if cfg.MigrateEvery <= 0 {
		cfg.MigrateEvery = time.Millisecond
	}
	if cfg.Machine.Name == "" {
		cfg.Machine = mem.AMD48()
	}
	n := cfg.Topology.Cores()
	qcfg := core.Config{Cores: n, Backlog: cfg.Backlog}
	if !cfg.DistanceBlind {
		qcfg.ChipOf = cfg.Topology.ChipOf
	}
	h := &Harness{
		cfg:   cfg,
		eng:   sim.New(cfg.Topology.SimConfig(cfg.Seed)),
		rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
		Q:     core.NewQueues[Conn](qcfg),
		Table: core.NewFlowTable(cfg.Groups, n),
	}
	if cfg.Adaptive {
		ctlCfg := cfg.Controller
		if ctlCfg.BaseInterval <= 0 {
			ctlCfg.BaseInterval = cfg.MigrateEvery
		}
		h.Ctl = NewController(ctlCfg)
	}
	for _, chip := range cfg.Topology.Chip {
		if chip > h.maxDist {
			h.maxDist = chip
		}
	}
	h.res.StealsByDistance = make([]uint64, h.maxDist+1)
	return h
}

// stealCost prices a steal at the machine's line-transfer latency for
// the thief↔victim chip distance: L3 on the same chip, scaling linearly
// to RemoteL3 at the maximum distance (Table 1 measures its remote
// latencies "between the two chips farthest apart").
func (h *Harness) stealCost(dist int) uint64 {
	l3 := uint64(h.cfg.Machine.Lat.L3)
	remote := uint64(h.cfg.Machine.Lat.RemoteL3)
	if dist <= 0 || h.maxDist == 0 {
		return l3
	}
	return l3 + (remote-l3)*uint64(dist)/uint64(h.maxDist)
}

// stealable mirrors stealFrom's effective victim predicate.
func (h *Harness) stealable(victim int) bool {
	if h.Q.Len(victim) == 0 || !h.Q.Busy(victim) {
		return false
	}
	_, low := h.Q.Watermarks()
	return h.Q.EWMAValue(victim) >= low
}

// checkStealOrder verifies no strictly closer stealable victim existed
// when thief stole from victim. Sound as a post-check: the scan only
// clears stale busy bits, so a victim stealable now was stealable
// during the scan.
func (h *Harness) checkStealOrder(thief, victim int) {
	d := chipDist(h.cfg.Topology, thief, victim)
	for v := 0; v < h.cfg.Topology.Cores(); v++ {
		if v == thief || v == victim {
			continue
		}
		if chipDist(h.cfg.Topology, thief, v) < d && h.stealable(v) {
			h.res.OrderViolations++
			return
		}
	}
}

func chipDist(t Topology, a, b int) int {
	return core.ChipDistance(t.Chip[a], t.Chip[b])
}

// arrive is the global arrival process: route one connection through
// the flow table, then schedule the next arrival from the active phase.
func (h *Harness) arrive(e *sim.Engine, _ *sim.Core) {
	for h.phaseIx < len(h.phases) && e.Now() >= h.phases[h.phaseIx].Until {
		h.phaseIx++
	}
	if h.phaseIx >= len(h.phases) {
		return
	}
	ph := h.phases[h.phaseIx]
	port := ph.Port(h.rng)
	group := h.Table.GroupOf(port)
	h.Table.ObserveLoad(group, 1)
	dest := h.Table.CoreOf(group)
	if !h.Q.Push(dest, Conn{Port: port, At: e.Now()}) {
		h.res.Drops++
	}
	e.After(ph.ArrivalGap, h.arrive)
}

// serveLoop is each core's accept loop: Pop via the real policy, charge
// service time, account the steal if the connection came from another
// core's queue; on empty, observe idleness (decaying the EWMA exactly
// as serve's poller does) and re-poll after PollGap.
func (h *Harness) serveLoop(e *sim.Engine, c *sim.Core) {
	if _, from, ok := h.Q.Pop(c.ID); ok {
		h.res.Served++
		if from != c.ID {
			d := chipDist(h.cfg.Topology, c.ID, from)
			h.res.StealsByDistance[d]++
			if h.cfg.Topology.Chip[c.ID] != h.cfg.Topology.Chip[from] {
				h.res.CrossChipSteals++
			}
			h.res.EstStealCycles += h.stealCost(d)
			h.checkStealOrder(c.ID, from)
		}
		c.Charge(h.cfg.ServiceCycles)
		e.OnCore(c.ID, c.Now(), h.serveLoop)
		return
	}
	h.Q.ObserveIdle(c.ID, 1)
	e.OnCore(c.ID, c.Now()+h.cfg.PollGap, h.serveLoop)
}

// balanceTick runs one migration tick through the real balancer — with
// the controller's freeze veto when adaptive — then feeds the window's
// accept deltas back into the controller and schedules the next tick at
// whatever interval it chose.
func (h *Harness) balanceTick(e *sim.Engine, _ *sim.Core) {
	var groupOK func(int) bool
	if h.Ctl != nil {
		groupOK = h.Ctl.GroupOK
	}
	moves := core.BalanceRecordFiltered(h.Table, h.Q, nil, groupOK)
	h.res.TickMoves = append(h.res.TickMoves, moves)

	locals, steals := h.Q.Locals, h.Q.Steals
	dLocal, dSteal := locals-h.lastLocals, steals-h.lastSteals
	h.lastLocals, h.lastSteals = locals, steals
	tickLoc := -1.0
	if dLocal+dSteal > 0 {
		tickLoc = float64(dLocal) / float64(dLocal+dSteal)
	}
	h.res.TickLocality = append(h.res.TickLocality, tickLoc)

	next := h.cfg.MigrateEvery
	if h.Ctl != nil {
		rep := h.Ctl.Advance(dLocal, dSteal, moves)
		h.res.Reports = append(h.res.Reports, rep)
		next = rep.Interval
	}
	e.After(h.eng.CyclesOf(next.Seconds()), h.balanceTick)
}

// Run replays the phases and returns the measurements. The run extends
// one extra base interval past the last phase so queued work drains.
func (h *Harness) Run(phases []Phase) Result {
	if len(phases) == 0 {
		panic("sched: harness needs at least one phase")
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].Until <= phases[i-1].Until {
			panic(fmt.Sprintf("sched: phase %d does not advance time", i))
		}
	}
	h.phases = phases
	h.phaseIx = 0
	for i := 0; i < h.cfg.Topology.Cores(); i++ {
		h.eng.OnCore(i, 0, h.serveLoop)
	}
	h.eng.After(0, h.arrive)
	h.eng.After(h.eng.CyclesOf(h.cfg.MigrateEvery.Seconds()), h.balanceTick)
	horizon := phases[len(phases)-1].Until + h.eng.CyclesOf(h.cfg.MigrateEvery.Seconds())
	h.eng.Run(horizon)

	h.res.Locals, h.res.Steals = h.Q.Locals, h.Q.Steals
	h.res.Migrations = h.Table.Migrations
	if h.res.Locals+h.res.Steals > 0 {
		h.res.FinalLocality = float64(h.res.Locals) / float64(h.res.Locals+h.res.Steals)
	}
	return h.res
}

// LocalityOver averages the tick locality over the window [from, to)
// of tick indices, skipping empty ticks.
func LocalityOver(ticks []float64, from, to int) float64 {
	if to > len(ticks) {
		to = len(ticks)
	}
	sum, n := 0.0, 0
	for i := from; i < to; i++ {
		if ticks[i] >= 0 {
			sum += ticks[i]
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}
