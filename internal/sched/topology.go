package sched

import (
	"math/rand"

	"affinityaccept/internal/sim"
)

// Topology is an explicit core→chip assignment for the simulation
// harness. Unlike the regular cores-per-chip layout of the paper's
// testbeds (Table 1), a Topology may be arbitrarily uneven — the shape
// a pinned deployment gets when its cgroup mask hands it a ragged
// subset of a machine.
type Topology struct {
	Chips int
	// Chip maps each core (by index) to its chip number.
	Chip []int
}

// Cores reports the number of cores in the topology.
func (t Topology) Cores() int { return len(t.Chip) }

// ChipOf returns the core→chip function the distance-aware steal path
// consumes (core.Config.ChipOf).
func (t Topology) ChipOf(core int) int { return t.Chip[core] }

// SimConfig builds a sim.Config that places each simulated core on the
// topology's chips.
func (t Topology) SimConfig(seed int64) sim.Config {
	chips := make([]int, len(t.Chip))
	copy(chips, t.Chip)
	return sim.Config{Cores: len(t.Chip), ChipOf: chips, Seed: seed}
}

// Regular builds the even layout of the paper's machines: cores filled
// chip by chip, coresPerChip on each.
func Regular(cores, chips int) Topology {
	if chips <= 0 {
		chips = 1
	}
	perChip := (cores + chips - 1) / chips
	t := Topology{Chips: chips, Chip: make([]int, cores)}
	for i := range t.Chip {
		t.Chip[i] = i / perChip
	}
	return t
}

// RandomTopology draws a machine with 1–8 chips and an uneven worker
// spread: every chip gets at least one core, the rest land at random.
// The property and harness tests sweep these to show the invariants
// hold on shapes no real SKU ships.
func RandomTopology(rng *rand.Rand, cores int) Topology {
	chips := 1 + rng.Intn(8)
	if chips > cores {
		chips = cores
	}
	t := Topology{Chips: chips, Chip: make([]int, cores)}
	perm := rng.Perm(cores)
	for i := 0; i < chips; i++ {
		t.Chip[perm[i]] = i // every chip occupied
	}
	for i := chips; i < cores; i++ {
		t.Chip[perm[i]] = rng.Intn(chips)
	}
	return t
}
