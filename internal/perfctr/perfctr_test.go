package perfctr

import (
	"strings"
	"testing"
)

func TestEntryNames(t *testing.T) {
	if SoftirqNetRX.String() != "softirq_net_rx" {
		t.Fatal("softirq name wrong")
	}
	if SysAccept4.String() != "sys_accept4" {
		t.Fatal("accept name wrong")
	}
	if Entry(99).String() != "entry(99)" {
		t.Fatal("out-of-range name wrong")
	}
	if len(Entries()) != int(numEntries) {
		t.Fatal("entry list wrong length")
	}
}

func TestAccumulationAndPerRequest(t *testing.T) {
	s := NewSet()
	s.Add(SysRead, 1000, 50)
	s.Add(SysRead, 2000, 100)
	s.AddMiss(SysRead)
	s.AddMiss(SysRead)
	s.AddCall(SysRead)

	got := s.Get(SysRead)
	if got.Cycles != 3000 || got.Instructions != 150 || got.L2Misses != 2 || got.Calls != 1 {
		t.Fatalf("counters: %+v", got)
	}
	per := s.PerRequest(2)
	if per[SysRead].Cycles != 1500 || per[SysRead].L2Misses != 1 {
		t.Fatalf("per-request: %+v", per[SysRead])
	}
	if s.TotalCycles() != 3000 {
		t.Fatalf("total = %d", s.TotalCycles())
	}
}

func TestPerRequestZeroRequests(t *testing.T) {
	s := NewSet()
	s.Add(SysRead, 100, 1)
	if len(s.PerRequest(0)) != 0 {
		t.Fatal("zero requests should return empty map")
	}
}

func TestBuildTable3SortsAndDiffs(t *testing.T) {
	fine, aff := NewSet(), NewSet()
	fine.Add(SoftirqNetRX, 9700, 330)
	fine.AddMiss(SoftirqNetRX)
	aff.Add(SoftirqNetRX, 6900, 340)
	fine.Add(SysRead, 1700, 40)
	aff.Add(SysRead, 1000, 40)

	rows := BuildTable3(fine, aff, 1, 1)
	if rows[0].Entry != SoftirqNetRX {
		t.Fatal("rows not sorted by fine cycles")
	}
	if rows[0].DeltaCycles() != 2800 {
		t.Fatalf("delta = %d", rows[0].DeltaCycles())
	}
	if rows[0].DeltaInstructions() != -10 {
		t.Fatalf("instr delta = %d", rows[0].DeltaInstructions())
	}
	if rows[0].DeltaL2() != 1 {
		t.Fatalf("l2 delta = %d", rows[0].DeltaL2())
	}

	out := FormatTable3(rows)
	if !strings.Contains(out, "softirq_net_rx") {
		t.Fatal("format missing entries")
	}
}
