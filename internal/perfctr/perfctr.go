// Package perfctr attributes simulated cycles, instruction counts and L2
// misses to kernel entry points, reproducing the profiling methodology
// of §2.1 behind the paper's Table 3 ("we instrumented the kernel to
// record a number of performance counter events during each type of
// system call and interrupt").
package perfctr

import (
	"fmt"
	"sort"
	"strings"

	"affinityaccept/internal/sim"
)

// Entry identifies a kernel entry point.
type Entry int

// The kernel entry points of Table 3, in the paper's order.
const (
	SoftirqNetRX Entry = iota
	SysRead
	Schedule
	SysAccept4
	SysWritev
	SysPoll
	SysShutdown
	SysFutex
	SysClose
	SoftirqRCU
	SysFcntl
	SysGetsockname
	SysEpollWait
	numEntries
)

var entryNames = [...]string{
	SoftirqNetRX:   "softirq_net_rx",
	SysRead:        "sys_read",
	Schedule:       "schedule",
	SysAccept4:     "sys_accept4",
	SysWritev:      "sys_writev",
	SysPoll:        "sys_poll",
	SysShutdown:    "sys_shutdown",
	SysFutex:       "sys_futex",
	SysClose:       "sys_close",
	SoftirqRCU:     "softirq_rcu",
	SysFcntl:       "sys_fcntl",
	SysGetsockname: "sys_getsockname",
	SysEpollWait:   "sys_epoll_wait",
}

// String names the entry as the paper prints it.
func (e Entry) String() string {
	if e < 0 || int(e) >= len(entryNames) {
		return fmt.Sprintf("entry(%d)", int(e))
	}
	return entryNames[e]
}

// Entries lists all entry points in presentation order.
func Entries() []Entry {
	out := make([]Entry, numEntries)
	for i := range out {
		out[i] = Entry(i)
	}
	return out
}

// Counters holds the three performance counters for one entry point.
type Counters struct {
	Cycles       uint64
	Instructions uint64
	L2Misses     uint64
	Calls        uint64
}

// Set accumulates counters for every entry point.
type Set struct {
	c [numEntries]Counters
}

// NewSet returns an empty counter set.
func NewSet() *Set { return &Set{} }

// Add charges cycles and instructions to an entry.
func (s *Set) Add(e Entry, cycles sim.Cycles, instructions uint64) {
	s.c[e].Cycles += uint64(cycles)
	s.c[e].Instructions += instructions
}

// AddMiss records an L2 miss for an entry.
func (s *Set) AddMiss(e Entry) { s.c[e].L2Misses++ }

// AddCall records one invocation of an entry.
func (s *Set) AddCall(e Entry) { s.c[e].Calls++ }

// Get returns the counters of one entry.
func (s *Set) Get(e Entry) Counters { return s.c[e] }

// TotalCycles sums cycles across all entries.
func (s *Set) TotalCycles() uint64 {
	var t uint64
	for i := range s.c {
		t += s.c[i].Cycles
	}
	return t
}

// PerRequest divides every counter by the request count, yielding the
// per-HTTP-request normalization of Table 3.
func (s *Set) PerRequest(requests uint64) map[Entry]Counters {
	out := make(map[Entry]Counters, numEntries)
	if requests == 0 {
		return out
	}
	for i := range s.c {
		out[Entry(i)] = Counters{
			Cycles:       s.c[i].Cycles / requests,
			Instructions: s.c[i].Instructions / requests,
			L2Misses:     s.c[i].L2Misses / requests,
			Calls:        s.c[i].Calls / requests,
		}
	}
	return out
}

// Table3Row is one line of the paper's Table 3: per-request counters for
// two kernels (Fine-Accept and Affinity-Accept) and their difference.
type Table3Row struct {
	Entry                Entry
	FineCycles           uint64
	AffinityCycles       uint64
	FineInstructions     uint64
	AffinityInstructions uint64
	FineL2Misses         uint64
	AffinityL2Misses     uint64
}

// DeltaCycles reports Fine minus Affinity cycles (positive = Affinity wins).
func (r Table3Row) DeltaCycles() int64 {
	return int64(r.FineCycles) - int64(r.AffinityCycles)
}

// DeltaInstructions reports the instruction difference.
func (r Table3Row) DeltaInstructions() int64 {
	return int64(r.FineInstructions) - int64(r.AffinityInstructions)
}

// DeltaL2 reports the L2-miss difference.
func (r Table3Row) DeltaL2() int64 {
	return int64(r.FineL2Misses) - int64(r.AffinityL2Misses)
}

// BuildTable3 normalizes two counter sets per request and pairs them up,
// sorted by descending Fine cycles (the paper's order).
func BuildTable3(fine, affinity *Set, fineReqs, affinityReqs uint64) []Table3Row {
	f := fine.PerRequest(fineReqs)
	a := affinity.PerRequest(affinityReqs)
	rows := make([]Table3Row, 0, numEntries)
	for _, e := range Entries() {
		rows = append(rows, Table3Row{
			Entry:                e,
			FineCycles:           f[e].Cycles,
			AffinityCycles:       a[e].Cycles,
			FineInstructions:     f[e].Instructions,
			AffinityInstructions: a[e].Instructions,
			FineL2Misses:         f[e].L2Misses,
			AffinityL2Misses:     a[e].L2Misses,
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].FineCycles > rows[j].FineCycles })
	return rows
}

// FormatTable3 renders rows in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %22s %22s %18s\n", "Kernel Entry",
		"Cycles (F/A, delta)", "Instr (F/A, delta)", "L2 (F/A, delta)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %8d/%8d %6d %8d/%8d %5d %6d/%6d %5d\n",
			r.Entry, r.FineCycles, r.AffinityCycles, r.DeltaCycles(),
			r.FineInstructions, r.AffinityInstructions, r.DeltaInstructions(),
			r.FineL2Misses, r.AffinityL2Misses, r.DeltaL2())
	}
	return b.String()
}
