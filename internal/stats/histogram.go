package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a log-bucketed streaming histogram of non-negative values.
// It is used for memory-access latency distributions (Figure 4) and for
// client-observed service latency (§6.5), where only quantiles and CDF
// shapes matter, not exact sample storage.
type Histogram struct {
	// buckets[i] counts samples v with bound(i-1) < v <= bound(i),
	// where bound(i) = floor(base^(i+1)). Bucket boundaries grow
	// geometrically so that relative error is bounded by base-1.
	buckets []uint64
	base    float64
	logBase float64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

// NewHistogram returns a histogram with geometric buckets of the given
// growth factor. A factor of 1.05 keeps quantile error under 5%.
func NewHistogram(base float64) *Histogram {
	if base <= 1 {
		panic("stats: histogram base must be > 1")
	}
	return &Histogram{
		base:    base,
		logBase: math.Log(base),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// NewLatencyHistogram returns the histogram configuration used for
// cycle-latency distributions: 5% geometric buckets.
func NewLatencyHistogram() *Histogram { return NewHistogram(1.05) }

func (h *Histogram) bucketIndex(v float64) int {
	if v < 1 {
		return 0
	}
	return int(math.Log(v)/h.logBase) + 1
}

// bucketUpper reports the inclusive upper bound of bucket i.
func (h *Histogram) bucketUpper(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Pow(h.base, float64(i))
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	i := h.bucketIndex(v)
	for len(h.buckets) <= i {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the sample mean, or zero with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest sample, or zero with no samples.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample, or zero with no samples.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile reports an estimate of the q-quantile (q in [0, 1]) using the
// bucket upper bound, so estimates are biased at most one bucket upward.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			upper := h.bucketUpper(i)
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.Max()
}

// CDFPoint is one point of a cumulative distribution: the fraction
// Fraction of samples with value <= Value.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the cumulative distribution over non-empty buckets.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	pts := make([]CDFPoint, 0, 32)
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		v := h.bucketUpper(i)
		if v > h.max {
			v = h.max
		}
		pts = append(pts, CDFPoint{Value: v, Fraction: float64(cum) / float64(h.count)})
	}
	return pts
}

// Merge folds other into h. The two histograms must share a base.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if other.base != h.base {
		panic("stats: merging histograms with different bases")
	}
	for len(h.buckets) < len(other.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// String renders a compact summary for logs and test failures.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f}",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
}

// Sample is an exact-storage sample set for small populations where the
// paper reports exact medians (for example per-connection service times).
type Sample struct {
	values []float64
	sorted bool
}

// Observe appends one value.
func (s *Sample) Observe(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// Count reports the number of observations.
func (s *Sample) Count() int { return len(s.values) }

// Quantile reports the exact q-quantile by nearest-rank.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if q <= 0 {
		return s.values[0]
	}
	rank := int(math.Ceil(q*float64(len(s.values)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.values) {
		rank = len(s.values) - 1
	}
	return s.values[rank]
}

// Mean reports the arithmetic mean, or zero with no samples.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Max reports the largest observation, or zero with no samples.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	return s.values[len(s.values)-1]
}

// FormatSeries renders an (x, y) series as aligned text columns, the form
// used by the experiment runners to print paper figures.
func FormatSeries(header string, xs []float64, series map[string][]float64, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", header)
	for _, name := range order {
		fmt.Fprintf(&b, " %16s", name)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%-14.4g", x)
		for _, name := range order {
			ys := series[name]
			if i < len(ys) {
				fmt.Fprintf(&b, " %16.1f", ys[i])
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
