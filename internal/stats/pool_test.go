package stats

import (
	"sync"
	"testing"
)

func TestPoolCountersSnapshot(t *testing.T) {
	var c PoolCounters
	snap := c.Snapshot()
	if snap.Gets() != 0 {
		t.Fatalf("fresh counters report %d gets", snap.Gets())
	}
	if pct := snap.ReusePct(); pct != 100 {
		t.Fatalf("untouched pool reuse = %v%%, want 100%%", pct)
	}

	c.Miss()
	for i := 0; i < 9; i++ {
		c.Reuse()
	}
	c.Drop()
	snap = c.Snapshot()
	if snap.Gets() != 10 || snap.Misses != 1 || snap.Reuses != 9 || snap.Drops != 1 {
		t.Fatalf("snapshot = %+v, want 9 reuses, 1 miss, 1 drop", snap)
	}
	if pct := snap.ReusePct(); pct != 90 {
		t.Fatalf("reuse = %v%%, want 90%%", pct)
	}
}

func TestPoolSnapshotAdd(t *testing.T) {
	a := PoolSnapshot{Reuses: 3, Misses: 1, Drops: 2}
	b := PoolSnapshot{Reuses: 7, Misses: 9, Drops: 0}
	sum := a.Add(b)
	want := PoolSnapshot{Reuses: 10, Misses: 10, Drops: 2}
	if sum != want {
		t.Fatalf("Add = %+v, want %+v", sum, want)
	}
	if pct := sum.ReusePct(); pct != 50 {
		t.Fatalf("reuse = %v%%, want 50%%", pct)
	}
}

// TestPoolCountersConcurrent exercises the observe-from-another-
// goroutine contract: counters are bumped by an owner while snapshots
// are taken concurrently. Run under -race this proves the lock-free
// read is sound.
func TestPoolCountersConcurrent(t *testing.T) {
	var c PoolCounters
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			c.Reuse()
			c.Miss()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			snap := c.Snapshot()
			if snap.Reuses > n || snap.Misses > n {
				t.Errorf("impossible snapshot %+v", snap)
				return
			}
		}
	}()
	wg.Wait()
	if snap := c.Snapshot(); snap.Gets() != 2*n {
		t.Fatalf("final gets = %d, want %d", snap.Gets(), 2*n)
	}
}
