package stats

import "sync/atomic"

// Gauge is an atomically updated instantaneous count — connections
// currently parked, sockets currently held open, subscribers currently
// registered. Unlike the PoolCounters events it can go down; unlike an
// EWMA it carries no history. Owners update it from their own
// goroutines and snapshots read it from anywhere, which is the same
// single-writer-many-reader contract the pool counters follow.
type Gauge struct {
	n atomic.Int64
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.n.Load() }
