// Package stats provides the small statistical primitives used throughout
// the Affinity-Accept simulator: the exponentially weighted moving average
// from §3.3 of the paper, streaming histograms, percentile sets and CDFs.
//
// Everything in this package is deterministic and allocation-light; the
// simulator updates these structures on hot paths (every accept-queue push
// updates an EWMA, every sampled memory access lands in a histogram).
package stats

import "math"

// EWMA is an exponentially weighted moving average.
//
// Affinity-Accept (paper §3.3) tracks the long-term length of each per-core
// accept queue with an EWMA whose alpha parameter is one over twice the
// maximum local accept queue length, so that the average tracks the slowly
// moving mean while the instantaneous length oscillates around it.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA with the given alpha in (0, 1].
// Larger alphas weigh recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// NewQueueEWMA returns the EWMA the paper prescribes for an accept queue
// with the given maximum local length: alpha = 1 / (2 * maxLocalLen).
// A max length of 64 therefore yields alpha = 1/128.
func NewQueueEWMA(maxLocalLen int) *EWMA {
	if maxLocalLen <= 0 {
		panic("stats: queue EWMA needs a positive max length")
	}
	return NewEWMA(1 / (2 * float64(maxLocalLen)))
}

// Observe folds a new sample into the average.
// The first observation seeds the average directly.
func (e *EWMA) Observe(sample float64) {
	if !e.seen {
		e.value = sample
		e.seen = true
		return
	}
	e.value += e.alpha * (sample - e.value)
}

// ObserveN folds n consecutive observations of the same sample into the
// average in closed form: v' = sample + (v - sample)·(1-alpha)^n.
// Pollers that sample a queue far less often than events arrive use it
// to catch the average up with the wall-clock time they slept through.
func (e *EWMA) ObserveN(sample float64, n int) {
	if n <= 0 {
		return
	}
	if !e.seen {
		e.value = sample
		e.seen = true
		return
	}
	e.value = sample + (e.value-sample)*math.Pow(1-e.alpha, float64(n))
}

// Value reports the current average, or zero before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Alpha reports the smoothing parameter.
func (e *EWMA) Alpha() float64 { return e.alpha }

// Seen reports whether any sample has been observed.
func (e *EWMA) Seen() bool { return e.seen }

// Reset discards all state, as when a listen socket is closed and reopened.
func (e *EWMA) Reset() {
	e.value = 0
	e.seen = false
}
