package stats

import "sync/atomic"

// PoolCounters tracks the traffic of one object pool with atomic
// counters, so a pool touched only by its owning goroutine (the
// worker-local arenas of the httpaff layer) can still be observed
// lock-free from a stats snapshot on another goroutine.
//
// The three events mirror the life of a pooled object:
//
//   - Reuse: a get was served from the free list — the warm, local path.
//   - Miss: the free list was empty and a new object was allocated.
//   - Drop: a put found the free list full and the object was discarded
//     to the garbage collector instead of retained.
//
// Gets = Reuses + Misses. A pool that stays core-local and warm shows a
// reuse rate near 100% after startup: the only misses are the first
// acquisition per concurrently live object on each core.
type PoolCounters struct {
	reuses atomic.Uint64
	misses atomic.Uint64
	drops  atomic.Uint64
}

// Reuse records a get served from the free list.
func (c *PoolCounters) Reuse() { c.reuses.Add(1) }

// Miss records a get that had to allocate a new object.
func (c *PoolCounters) Miss() { c.misses.Add(1) }

// Drop records a put discarded because the free list was full.
func (c *PoolCounters) Drop() { c.drops.Add(1) }

// Snapshot returns a consistent-enough copy of the counters.
func (c *PoolCounters) Snapshot() PoolSnapshot {
	return PoolSnapshot{
		Reuses: c.reuses.Load(),
		Misses: c.misses.Load(),
		Drops:  c.drops.Load(),
	}
}

// PoolSnapshot is a point-in-time copy of a PoolCounters.
type PoolSnapshot struct {
	Reuses, Misses, Drops uint64
}

// Gets is the total number of acquisitions (reuses plus misses).
func (s PoolSnapshot) Gets() uint64 { return s.Reuses + s.Misses }

// ReusePct is the percentage of gets served from the free list, or 100
// for an untouched pool (no gets yet means nothing was ever cold).
func (s PoolSnapshot) ReusePct() float64 {
	gets := s.Gets()
	if gets == 0 {
		return 100
	}
	return 100 * float64(s.Reuses) / float64(gets)
}

// Add returns the element-wise sum of two snapshots, for aggregating
// per-worker pools into a server-wide figure.
func (s PoolSnapshot) Add(o PoolSnapshot) PoolSnapshot {
	return PoolSnapshot{
		Reuses: s.Reuses + o.Reuses,
		Misses: s.Misses + o.Misses,
		Drops:  s.Drops + o.Drops,
	}
}
