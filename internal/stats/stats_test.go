package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEWMAFirstObservationSeeds(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Seen() {
		t.Fatal("fresh EWMA claims to have seen samples")
	}
	e.Observe(10)
	if got := e.Value(); got != 10 {
		t.Fatalf("first observation should seed value: got %v", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.1)
	for i := 0; i < 500; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA of constant stream = %v, want 42", e.Value())
	}
}

func TestEWMATracksShift(t *testing.T) {
	e := NewEWMA(0.25)
	for i := 0; i < 100; i++ {
		e.Observe(0)
	}
	for i := 0; i < 100; i++ {
		e.Observe(100)
	}
	if e.Value() < 99 {
		t.Fatalf("EWMA did not track level shift: %v", e.Value())
	}
}

func TestQueueEWMAAlphaRule(t *testing.T) {
	// Paper §3.3: max local accept queue length 64 -> alpha 1/128.
	e := NewQueueEWMA(64)
	if got, want := e.Alpha(), 1.0/128; got != want {
		t.Fatalf("alpha = %v, want %v", got, want)
	}
}

func TestQueueEWMARejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive max length")
		}
	}()
	NewQueueEWMA(0)
}

func TestEWMARejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v should panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(3)
	e.Reset()
	if e.Seen() || e.Value() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: EWMA stays within the [min, max] hull of its inputs.
func TestEWMABoundedByInputHull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEWMA(0.2)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 200; i++ {
			v := rng.Float64() * 1000
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			e.Observe(v)
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 450 || med > 560 {
		t.Fatalf("median of 1..1000 = %v, want ~500 within bucket error", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1050 {
		t.Fatalf("p99 = %v, want ~990", p99)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 1000 {
		t.Fatalf("extremes: %v %v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramMeanMinMax(t *testing.T) {
	h := NewHistogram(2)
	for _, v := range []float64{2, 4, 6} {
		h.Observe(v)
	}
	if h.Mean() != 4 || h.Min() != 2 || h.Max() != 6 {
		t.Fatalf("mean/min/max = %v/%v/%v", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: %v", h.Min())
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewLatencyHistogram()
		for i := 0; i < 300; i++ {
			h.Observe(rng.ExpFloat64() * 100)
		}
		pts := h.CDF()
		if len(pts) == 0 {
			return false
		}
		prevV, prevF := -1.0, 0.0
		for _, p := range pts {
			if p.Value <= prevV || p.Fraction < prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		return math.Abs(pts[len(pts)-1].Fraction-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med > 11 {
		t.Fatalf("median after merge = %v, want <= bucket containing 10", med)
	}
	// Merging nil or empty is a no-op.
	a.Merge(nil)
	a.Merge(NewLatencyHistogram())
	if a.Count() != 200 {
		t.Fatal("no-op merges changed the histogram")
	}
}

func TestHistogramMergeBaseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a, b := NewHistogram(1.05), NewHistogram(2)
	b.Observe(1)
	a.Merge(b)
}

// Property: quantile estimates are within one bucket (5%) of exact.
func TestHistogramQuantileAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewLatencyHistogram()
		var exact Sample
		for i := 0; i < 500; i++ {
			v := 1 + rng.Float64()*10000
			h.Observe(v)
			exact.Observe(v)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			est, ref := h.Quantile(q), exact.Quantile(q)
			if est < ref*0.9 || est > ref*1.11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 10; i >= 1; i-- {
		s.Observe(float64(i))
	}
	if s.Quantile(0.5) != 5 {
		t.Fatalf("median = %v, want 5", s.Quantile(0.5))
	}
	if s.Quantile(0.9) != 9 {
		t.Fatalf("p90 = %v, want 9", s.Quantile(0.9))
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 10 {
		t.Fatal("extreme quantiles wrong")
	}
	if s.Mean() != 5.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Max() != 10 {
		t.Fatalf("max = %v", s.Max())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 || s.Count() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleObserveAfterQuantile(t *testing.T) {
	var s Sample
	s.Observe(5)
	_ = s.Quantile(0.5)
	s.Observe(1) // must re-sort
	if s.Quantile(0) != 1 {
		t.Fatal("sample not re-sorted after new observation")
	}
}

func TestFormatSeries(t *testing.T) {
	out := FormatSeries("cores",
		[]float64{1, 4},
		map[string][]float64{"stock": {100, 90}, "affinity": {100}},
		[]string{"stock", "affinity"})
	if out == "" {
		t.Fatal("empty render")
	}
	// The short series must render a dash placeholder, not panic.
	if want := "-"; !contains(out, want) {
		t.Fatalf("missing placeholder in:\n%s", out)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestEWMAObserveNMatchesRepeatedObserve(t *testing.T) {
	a := NewEWMA(1.0 / 128)
	b := NewEWMA(1.0 / 128)
	a.Observe(40)
	b.Observe(40)
	for i := 0; i < 257; i++ {
		a.Observe(3)
	}
	b.ObserveN(3, 257)
	if math.Abs(a.Value()-b.Value()) > 1e-9 {
		t.Fatalf("ObserveN(3, 257) = %v, repeated Observe = %v", b.Value(), a.Value())
	}
}

func TestEWMAObserveNSeedsAndIgnoresNonPositive(t *testing.T) {
	e := NewEWMA(0.5)
	e.ObserveN(7, 0)
	if e.Seen() {
		t.Fatal("ObserveN with n=0 should be a no-op")
	}
	e.ObserveN(7, 3)
	if got := e.Value(); got != 7 {
		t.Fatalf("first ObserveN should seed value: got %v", got)
	}
}
