//go:build !linux

package evloop

// poller is unavailable off Linux: every loop runs portably, parking
// each handle on its persistent parker goroutine. (kqueue would slot in
// here the same way epoll does on Linux.)
type poller struct{}

func newPoller() *poller                { return nil }
func (p *poller) add(int, uint64) error { return nil }
func (p *poller) del(int)               {}
func (p *poller) wakeup()               {}
func (p *poller) close()                {}

// probeReadable has no portable non-consuming implementation; the park
// fast path simply never triggers off Linux.
func (h *Handle) probeReadable() bool { return false }

// Poll has nothing to drain without a platform poller: portable parking
// delivers wakes from each handle's parker goroutine directly.
func (l *Loop) Poll() int { return 0 }

// run is never reached off Linux (l.p is always nil), but keeps the
// Loop.Start call sites platform-independent.
func (l *Loop) run() { l.runPortable() }
