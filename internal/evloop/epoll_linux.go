//go:build linux

package evloop

import (
	"errors"
	"os"
	"syscall"
	"time"
	"unsafe"
)

// poller is one epoll(7) instance plus a self-pipe for shutdown wakeup
// (closing an epoll descriptor does not unblock epoll_wait). Interest
// is edge-triggered EPOLLIN|EPOLLRDHUP|EPOLLET, registered once per
// connection on its first park and kept until Retire: re-parking a
// keep-alive connection costs zero syscalls, and an event for an
// unarmed (being-served) handle is simply dropped. The classic ET
// lost-wakeup hazard — input arriving while unarmed fires an edge into
// a dropped event, and no new edge comes until new bytes do — is
// closed by the MSG_PEEK probes: ReadyNow at Requeue and the post-arm
// probe in Arm observe the buffered input directly.
type poller struct {
	epfd  int
	wakeR int
	wakeW int

	// evbuf is Poll's reusable event buffer. Poll has a single caller
	// by contract (the loop's worker), so no lock guards it; the loop
	// goroutine's run() keeps its own buffer.
	evbuf []syscall.EpollEvent
}

// newPoller returns nil when epoll is unavailable (restricted sandbox);
// the loop then runs portably.
func newPoller() *poller {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return nil
	}
	p := &poller{epfd: epfd, wakeR: pipe[0], wakeW: pipe[1],
		evbuf: make([]syscall.EpollEvent, 64)}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN, Fd: int32(p.wakeR)}
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, p.wakeR, &ev); err != nil {
		p.close()
		return nil
	}
	return p
}

// epollET is EPOLLET as the positive uint32 bit; the syscall package
// spells it as a negative int constant, which won't assign to Events.
const epollET = 1 << 31

// add registers a descriptor, edge-triggered, for the connection's
// lifetime. The event stashes the registration's low-order park-
// sequence bits so a stale event for a recycled descriptor number is
// detectable at delivery. If the descriptor is already readable, the
// kernel queues an initial event at ADD time — a fresh registration
// therefore needs no race-closing probe.
func (p *poller) add(fd int, seq uint64) error {
	ev := syscall.EpollEvent{
		Events: syscall.EPOLLIN | syscall.EPOLLRDHUP | epollET,
		Fd:     int32(fd),
		Pad:    int32(uint32(seq)),
	}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

// del drops a descriptor from the interest set. Best-effort: a closed
// descriptor has already removed itself.
func (p *poller) del(fd int) {
	var ev syscall.EpollEvent
	syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, &ev)
}

// wakeup unblocks epoll_wait via the self-pipe.
func (p *poller) wakeup() {
	var b [1]byte
	syscall.Write(p.wakeW, b[:])
}

func (p *poller) close() {
	syscall.Close(p.epfd)
	syscall.Close(p.wakeR)
	syscall.Close(p.wakeW)
}

// Poll drains readiness events that are already pending, without
// blocking: an epoll_wait with a zero timeout returns immediately, so
// the calling goroutine never surrenders its P the way the loop
// goroutine's blocking wait does. The serve layer calls it from a
// worker's idle loop — on a loaded machine (think GOMAXPROCS=1) parked
// wakes are then delivered inline by the worker itself, with no
// M-handoff out of a blocked epoll_wait, while the loop goroutine
// remains the delivery path when every worker is asleep. Poll reports
// how many events it delivered.
//
// Contract: one caller at a time (the loop's owning worker). Racing the
// loop goroutine is safe — delivery is idempotent per park, the
// armed/tag check in deliver drops an event the other path handled —
// but the event buffer is deliberately unsynchronized.
func (l *Loop) Poll() int {
	p := l.p
	if p == nil || l.closedFlag.Load() {
		return 0
	}
	n, err := syscall.EpollWait(p.epfd, p.evbuf, 0)
	if err != nil || n <= 0 {
		return 0
	}
	delivered := 0
	for i := 0; i < n; i++ {
		ev := &p.evbuf[i]
		if int(ev.Fd) == p.wakeR {
			continue // shutdown signal: left unread for the loop goroutine
		}
		if l.deliver(ev.Fd, ev.Pad) {
			delivered++
		}
	}
	return delivered
}

// probeReadable reports whether the descriptor has input deliverable
// right now — data, EOF, or a pending transport error — without
// consuming anything: one non-blocking MSG_PEEK into the handle's wake
// buffer (resident in the handle, so the probe allocates nothing; the
// same idiom as proxyaff's checkout liveness peek). Only EAGAIN (open
// and quiet — the park case) and EINTR report false.
func (h *Handle) probeReadable() bool {
	n, _, errno := syscall.Syscall6(syscall.SYS_RECVFROM, uintptr(h.fd),
		uintptr(unsafe.Pointer(&h.buf[0])), 1,
		syscall.MSG_PEEK|syscall.MSG_DONTWAIT, 0, 0)
	_ = n
	return errno != syscall.EAGAIN && errno != syscall.EINTR
}

// run is the epoll loop goroutine. EPOLLERR/EPOLLHUP/EPOLLRDHUP are
// delivered as readability like EPOLLIN — the woken handler's next read
// observes the EOF or error and closes the connection on its normal
// path. It prefers the netpolled wait (see runNetpolled); if the
// runtime cannot poll an epoll descriptor it degrades to a goroutine
// blocked in raw epoll_wait, which is correct but pays an OS thread
// wake per delivery batch.
func (l *Loop) run() {
	defer close(l.done)
	if l.runNetpolled() {
		return
	}
	l.runBlocking()
}

// runNetpolled waits for events by registering the epoll descriptor
// itself with the Go runtime's netpoller (an epoll instance is a
// pollable descriptor: it reads as readable while events are pending).
// That one level of indirection matters enormously under CPU
// contention: the loop goroutine parks like any other netpoller waiter,
// so an idle scheduler thread discovers the readable epfd inline in
// findrunnable and runs the delivery on the spot — no OS thread sits
// blocked in epoll_wait needing a kernel wake and an M/P handoff per
// batch (on GOMAXPROCS=1 that handoff throttled the whole server).
// The wait deadline doubles as the coarse-clock tick. Reports false,
// having delivered nothing, if the runtime refuses the registration —
// the caller then falls back to runBlocking.
func (l *Loop) runNetpolled() bool {
	dupfd, err := syscall.Dup(l.p.epfd)
	if err != nil {
		return false
	}
	// A nonblocking descriptor tells os.NewFile to try the runtime
	// poller rather than treating the file as blocking.
	if err := syscall.SetNonblock(dupfd, true); err != nil {
		syscall.Close(dupfd)
		return false
	}
	f := os.NewFile(uintptr(dupfd), "evloop-epfd")
	if f == nil {
		syscall.Close(dupfd)
		return false
	}
	defer f.Close()
	if f.SetReadDeadline(time.Now().Add(pollInterval)) != nil {
		return false // not pollable on this runtime/kernel
	}
	rc, err := f.SyscallConn()
	if err != nil {
		return false
	}
	events := make([]syscall.EpollEvent, 128)
	// One closure for the life of the loop — allocating it (and the
	// harvest count it captures) per iteration would cost two heap
	// objects per delivery batch, which the zero-alloc gates notice.
	var n int
	harvest := func(uintptr) bool {
		// Harvest without blocking; an empty harvest parks in the
		// netpoller until the epfd reports readable again. Events the
		// workers' inline Poll already drained land here as an empty
		// harvest, not a stale delivery.
		n, _ = syscall.EpollWait(l.p.epfd, events, 0)
		return n > 0 || l.closedFlag.Load()
	}
	lastSweep := time.Now().UnixNano()
	for {
		n = 0
		f.SetReadDeadline(time.Now().Add(pollInterval))
		rerr := rc.Read(harvest)
		now := time.Now().UnixNano()
		l.clock.Store(now)
		for i := 0; i < n; i++ {
			ev := &events[i]
			if int(ev.Fd) == l.p.wakeR {
				var buf [16]byte
				syscall.Read(l.p.wakeR, buf[:])
				continue
			}
			l.deliver(ev.Fd, ev.Pad)
		}
		if l.closedFlag.Load() {
			return true
		}
		if rerr != nil && !errors.Is(rerr, os.ErrDeadlineExceeded) {
			// The netpoller wait itself failed; the raw loop still
			// works, so degrade rather than stop delivering.
			return false
		}
		if now-lastSweep >= int64(sweepInterval) {
			lastSweep = now
			l.sweep(now)
		}
	}
}

// runBlocking waits in raw epoll_wait (bounded by pollInterval so the
// coarse clock stays fresh), stamps the clock, delivers the batch, and
// sweeps deadlines.
func (l *Loop) runBlocking() {
	events := make([]syscall.EpollEvent, 128)
	lastSweep := time.Now().UnixNano()
	for {
		n, err := syscall.EpollWait(l.p.epfd, events, int(pollInterval/time.Millisecond))
		now := time.Now().UnixNano()
		l.clock.Store(now)
		if err != nil {
			if err == syscall.EINTR {
				continue
			}
			return
		}
		for i := 0; i < n; i++ {
			ev := &events[i]
			if int(ev.Fd) == l.p.wakeR {
				var buf [16]byte
				syscall.Read(l.p.wakeR, buf[:])
				continue
			}
			l.deliver(ev.Fd, ev.Pad)
		}
		if l.closedFlag.Load() {
			return
		}
		if now-lastSweep >= int64(sweepInterval) {
			lastSweep = now
			l.sweep(now)
		}
	}
}
