package evloop

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// collector is a test Callbacks sink recording every delivery, and
// asserting (at check time) that no connection was delivered twice.
type collector struct {
	mu    sync.Mutex
	ready []net.Conn
	dead  []net.Conn
}

func (k *collector) callbacks() Callbacks {
	return Callbacks{
		Ready: func(c net.Conn) {
			k.mu.Lock()
			k.ready = append(k.ready, c)
			k.mu.Unlock()
		},
		Dead: func(c net.Conn) {
			k.mu.Lock()
			k.dead = append(k.dead, c)
			k.mu.Unlock()
		},
	}
}

func (k *collector) counts() (ready, dead int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.ready), len(k.dead)
}

// delivered reports how many times c appears across both callbacks.
func (k *collector) delivered(c net.Conn) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	n := 0
	for _, x := range k.ready {
		if x == c {
			n++
		}
	}
	for _, x := range k.dead {
		if x == c {
			n++
		}
	}
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// tcpPair returns a connected TCP pair on loopback; these have real
// descriptors, so on Linux they exercise the epoll path.
func tcpPair(t *testing.T) (server, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.c, client
}

// readWakeByte reads the single byte the peer wrote to wake a parked
// handle, honoring a fallback-consumed byte held in the handle.
func readWakeByte(t *testing.T, h *Handle) byte {
	t.Helper()
	var b [1]byte
	if n, ok := h.Replay(b[:]); ok {
		if n != 1 {
			t.Fatalf("Replay returned n=%d", n)
		}
		return b[0]
	}
	h.ClearReadable()
	h.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := h.c.Read(b[:]); err != nil {
		t.Fatalf("reading wake byte: %v", err)
	}
	return b[0]
}

// paritySuite runs the behavioral contract against one implementation.
// The epoll path and the portable parker-goroutine path must both pass
// the identical suite — that equivalence is what lets serve treat
// Requeue as implementation-agnostic.
func paritySuite(t *testing.T, portable bool) {
	newLoop := func(t *testing.T, k *collector) *Loop {
		l := New(Config{Callbacks: k.callbacks(), ForcePortable: portable})
		l.Start()
		t.Cleanup(l.Close)
		return l
	}

	t.Run("WakeOnInput", func(t *testing.T) {
		k := &collector{}
		l := newLoop(t, k)
		srv, cli := tcpPair(t)
		defer srv.Close()
		defer cli.Close()
		var h Handle
		h.Init(srv)
		defer h.Retire()
		if !l.Arm(&h, time.Time{}) {
			t.Fatal("Arm refused on an open loop")
		}
		if l.Len() != 1 {
			t.Fatalf("Len = %d, want 1", l.Len())
		}
		if _, err := cli.Write([]byte{'x'}); err != nil {
			t.Fatal(err)
		}
		waitFor(t, "Ready delivery", func() bool { r, _ := k.counts(); return r == 1 })
		if got := readWakeByte(t, &h); got != 'x' {
			t.Fatalf("wake byte = %q, want 'x'", got)
		}
		if l.Len() != 0 {
			t.Fatalf("Len after delivery = %d, want 0", l.Len())
		}
		if _, d := k.counts(); d != 0 {
			t.Fatalf("unexpected Dead deliveries: %d", d)
		}
	})

	t.Run("RearmAfterWake", func(t *testing.T) {
		// A connection parks, wakes, and parks again many times — the
		// keep-alive lifecycle. Every wake must deliver exactly once and
		// carry the right byte (the fallback path holds a consumed byte
		// across the re-park; the epoll path leaves it in the kernel).
		k := &collector{}
		l := newLoop(t, k)
		srv, cli := tcpPair(t)
		defer srv.Close()
		defer cli.Close()
		var h Handle
		h.Init(srv)
		defer h.Retire()
		for i := 0; i < 10; i++ {
			if !l.Arm(&h, time.Time{}) {
				t.Fatalf("round %d: Arm refused", i)
			}
			want := byte('a' + i)
			if _, err := cli.Write([]byte{want}); err != nil {
				t.Fatal(err)
			}
			waitFor(t, "Ready delivery", func() bool { r, _ := k.counts(); return r == i+1 })
			if got := readWakeByte(t, &h); got != want {
				t.Fatalf("round %d: wake byte = %q, want %q", i, got, want)
			}
		}
	})

	t.Run("DeadlineSweepReapsIdle", func(t *testing.T) {
		k := &collector{}
		l := newLoop(t, k)
		srv, cli := tcpPair(t)
		defer srv.Close()
		defer cli.Close()
		var h Handle
		h.Init(srv)
		defer h.Retire()
		if !l.Arm(&h, time.Now().Add(50*time.Millisecond)) {
			t.Fatal("Arm refused")
		}
		// No input ever arrives; the sweep must report the handle Dead.
		waitFor(t, "sweep expiry", func() bool { _, d := k.counts(); return d == 1 })
		if r, _ := k.counts(); r != 0 {
			t.Fatalf("unexpected Ready deliveries: %d", r)
		}
		if l.Len() != 0 {
			t.Fatalf("Len after expiry = %d, want 0", l.Len())
		}
	})

	t.Run("PeerCloseDelivers", func(t *testing.T) {
		// A peer disconnect while parked must surface exactly once. The
		// epoll path reports it as readability (the owner reads the EOF);
		// the fallback parker's blocking read fails, reporting Dead.
		// Either way the loop lets go of the connection.
		k := &collector{}
		l := newLoop(t, k)
		srv, cli := tcpPair(t)
		defer srv.Close()
		var h Handle
		h.Init(srv)
		defer h.Retire()
		if !l.Arm(&h, time.Time{}) {
			t.Fatal("Arm refused")
		}
		cli.Close()
		waitFor(t, "peer-close delivery", func() bool { r, d := k.counts(); return r+d == 1 })
		if l.Len() != 0 {
			t.Fatalf("Len after delivery = %d, want 0", l.Len())
		}
		if n := k.delivered(srv); n != 1 {
			t.Fatalf("connection delivered %d times, want 1", n)
		}
	})

	t.Run("ShedNewestIsLIFO", func(t *testing.T) {
		k := &collector{}
		l := newLoop(t, k)
		const n = 3
		conns := make([]net.Conn, n)
		handles := make([]*Handle, n)
		for i := range conns {
			srv, cli := tcpPair(t)
			defer srv.Close()
			defer cli.Close()
			conns[i] = srv
			handles[i] = &Handle{}
			handles[i].Init(srv)
			defer handles[i].Retire()
			if !l.Arm(handles[i], time.Time{}) {
				t.Fatalf("Arm %d refused", i)
			}
		}
		seq, ok := l.NewestSeq()
		if !ok || seq != handles[n-1].seq {
			t.Fatalf("NewestSeq = %d,%v, want %d,true", seq, ok, handles[n-1].seq)
		}
		for i := n - 1; i >= 0; i-- {
			c, ok := l.ShedNewest()
			if !ok {
				t.Fatalf("ShedNewest %d: empty loop", i)
			}
			if c != conns[i] {
				t.Fatalf("ShedNewest returned conn %v, want index %d", c, i)
			}
		}
		if _, ok := l.ShedNewest(); ok {
			t.Fatal("ShedNewest succeeded on an empty loop")
		}
		if r, d := k.counts(); r+d != 0 {
			t.Fatalf("shed connections were also delivered: ready=%d dead=%d", r, d)
		}
	})

	t.Run("ShedRacesWake", func(t *testing.T) {
		// Shed-while-armed: peers write wake bytes while another
		// goroutine sheds as fast as it can. Every connection must end
		// up owned exactly once — woken, reaped, or shed; never two of
		// those, never zero.
		k := &collector{}
		l := newLoop(t, k)
		const n = 32
		type ent struct {
			srv, cli net.Conn
			h        Handle
		}
		ents := make([]*ent, n)
		for i := range ents {
			srv, cli := tcpPair(t)
			defer srv.Close()
			defer cli.Close()
			e := &ent{srv: srv, cli: cli}
			e.h.Init(srv)
			defer e.h.Retire()
			ents[i] = e
			if !l.Arm(&e.h, time.Time{}) {
				t.Fatalf("Arm %d refused", i)
			}
		}
		var shed []net.Conn
		var shedMu sync.Mutex
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c, ok := l.ShedNewest(); ok {
					shedMu.Lock()
					shed = append(shed, c)
					shedMu.Unlock()
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
		go func() {
			defer wg.Done()
			for _, e := range ents {
				e.cli.Write([]byte{'w'})
				time.Sleep(100 * time.Microsecond)
			}
		}()
		waitFor(t, "all connections accounted for", func() bool {
			r, d := k.counts()
			shedMu.Lock()
			s := len(shed)
			shedMu.Unlock()
			return r+d+s >= n
		})
		close(stop)
		wg.Wait()
		shedMu.Lock()
		defer shedMu.Unlock()
		seen := make(map[net.Conn]int)
		k.mu.Lock()
		for _, c := range k.ready {
			seen[c]++
		}
		for _, c := range k.dead {
			seen[c]++
		}
		k.mu.Unlock()
		for _, c := range shed {
			seen[c]++
		}
		for i, e := range ents {
			if seen[e.srv] != 1 {
				t.Fatalf("conn %d delivered %d times, want exactly 1", i, seen[e.srv])
			}
		}
	})

	t.Run("ArmAfterCloseRefused", func(t *testing.T) {
		k := &collector{}
		l := New(Config{Callbacks: k.callbacks(), ForcePortable: portable})
		l.Start()
		srv, cli := tcpPair(t)
		defer srv.Close()
		defer cli.Close()
		l.Close()
		var h Handle
		h.Init(srv)
		defer h.Retire()
		if l.Arm(&h, time.Time{}) {
			t.Fatal("Arm succeeded on a closed loop")
		}
	})

	t.Run("CloseDeliversDeadOnce", func(t *testing.T) {
		k := &collector{}
		l := New(Config{Callbacks: k.callbacks(), ForcePortable: portable})
		l.Start()
		const n = 8
		conns := make([]net.Conn, n)
		for i := range conns {
			srv, cli := tcpPair(t)
			defer srv.Close()
			defer cli.Close()
			conns[i] = srv
			h := &Handle{}
			h.Init(srv)
			defer h.Retire()
			if !l.Arm(h, time.Time{}) {
				t.Fatalf("Arm %d refused", i)
			}
		}
		l.Close()
		// Close guarantees no delivery after it returns: counts are
		// final the moment it comes back.
		r, d := k.counts()
		if r != 0 || d != n {
			t.Fatalf("after Close: ready=%d dead=%d, want 0/%d", r, d, n)
		}
		for i, c := range conns {
			if k.delivered(c) != 1 {
				t.Fatalf("conn %d delivered %d times", i, k.delivered(c))
			}
		}
	})

	t.Run("CoarseClockAdvances", func(t *testing.T) {
		k := &collector{}
		l := newLoop(t, k)
		waitFor(t, "clock tick", func() bool {
			return time.Since(l.Now()) < 2*pollInterval
		})
		if lag := time.Since(l.Now()); lag < 0 || lag > 2*pollInterval {
			t.Fatalf("coarse clock lag %v outside [0, %v]", lag, 2*pollInterval)
		}
	})
}

func TestEvloop(t *testing.T) {
	t.Run("platform", func(t *testing.T) { paritySuite(t, false) })
	t.Run("portable", func(t *testing.T) { paritySuite(t, true) })
}

// TestPipeConnFallsBack proves a descriptor-less connection (net.Pipe)
// parks on the fallback path even when the platform poller exists, and
// still wakes correctly.
func TestPipeConnFallsBack(t *testing.T) {
	k := &collector{}
	l := New(Config{Callbacks: k.callbacks()})
	l.Start()
	defer l.Close()
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	var h Handle
	h.Init(a)
	defer h.Retire()
	if h.fd >= 0 {
		t.Fatalf("net.Pipe resolved fd %d, want -1", h.fd)
	}
	if !l.Arm(&h, time.Time{}) {
		t.Fatal("Arm refused")
	}
	go b.Write([]byte{'p'})
	waitFor(t, "Ready via fallback", func() bool { r, _ := k.counts(); return r == 1 })
	if !h.fallback {
		t.Fatal("handle did not mark itself fallback")
	}
	if got := readWakeByte(t, &h); got != 'p' {
		t.Fatalf("wake byte = %q, want 'p'", got)
	}
}

// TestCtlFailureDegradesSticky forces every poller registration to fail
// (as EMFILE on the interest list would) and checks the handle degrades
// to the fallback parker, wakes correctly, and stays on the fallback
// path for later arms even after registrations start succeeding again.
func TestCtlFailureDegradesSticky(t *testing.T) {
	k := &collector{}
	l := New(Config{Callbacks: k.callbacks()})
	l.Start()
	defer l.Close()
	if l.Portable() {
		t.Skip("no platform poller on this OS")
	}
	srv, cli := tcpPair(t)
	defer srv.Close()
	defer cli.Close()
	var h Handle
	h.Init(srv)
	defer h.Retire()

	testForceCtlError.Store(true)
	armed := l.Arm(&h, time.Time{})
	testForceCtlError.Store(false)
	if !armed {
		t.Fatal("Arm refused under ctl failure — must degrade, not refuse")
	}
	if !h.fallback || h.registered {
		t.Fatalf("fallback=%v registered=%v, want true/false", h.fallback, h.registered)
	}
	if _, err := cli.Write([]byte{'1'}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "Ready via degraded path", func() bool { r, _ := k.counts(); return r == 1 })
	if got := readWakeByte(t, &h); got != '1' {
		t.Fatalf("wake byte = %q, want '1'", got)
	}

	// Re-arm with registrations healthy again: the handle must remain
	// on the fallback (sticky), never flip-flopping implementations.
	if !l.Arm(&h, time.Time{}) {
		t.Fatal("re-Arm refused")
	}
	if h.registered {
		t.Fatal("degraded handle re-registered with the poller")
	}
	if _, err := cli.Write([]byte{'2'}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "Ready on re-arm", func() bool { r, _ := k.counts(); return r == 2 })
	if got := readWakeByte(t, &h); got != '2' {
		t.Fatalf("wake byte = %q, want '2'", got)
	}
}

// TestManyHandlesOneLoop parks a few hundred connections on one loop and
// wakes them all: the O(connections)-goroutines regression guard at unit
// scale (CI's bench job asserts it at 100k).
func TestManyHandlesOneLoop(t *testing.T) {
	k := &collector{}
	l := New(Config{Callbacks: k.callbacks()})
	l.Start()
	defer l.Close()
	const n = 200
	clis := make([]net.Conn, n)
	for i := 0; i < n; i++ {
		srv, cli := tcpPair(t)
		defer srv.Close()
		defer cli.Close()
		clis[i] = cli
		h := &Handle{}
		h.Init(srv)
		defer h.Retire()
		if !l.Arm(h, time.Time{}) {
			t.Fatalf("Arm %d refused", i)
		}
	}
	if l.Len() != n {
		t.Fatalf("Len = %d, want %d", l.Len(), n)
	}
	for _, cli := range clis {
		if _, err := cli.Write([]byte{'m'}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all wakes", func() bool { r, d := k.counts(); return r+d == n })
	r, d := k.counts()
	if r != n || d != 0 {
		t.Fatalf("ready=%d dead=%d, want %d/0", r, d, n)
	}
}

// TestHandleClockWithoutLoop covers the pre-first-park case: a handle
// that has never been armed reports real time, not a zero clock.
func TestHandleClockWithoutLoop(t *testing.T) {
	var h Handle
	if d := time.Since(h.Clock()); d < 0 || d > time.Second {
		t.Fatalf("unparked handle clock drift %v", d)
	}
}

// TestStress arms/wakes/sheds/expires concurrently under -race. No
// assertion beyond "accounted exactly once" — the race detector is the
// real check.
func TestStress(t *testing.T) {
	for _, portable := range []bool{false, true} {
		t.Run(fmt.Sprintf("portable=%v", portable), func(t *testing.T) {
			k := &collector{}
			l := New(Config{Callbacks: k.callbacks(), ForcePortable: portable})
			l.Start()
			const n = 48
			var shedCount int64
			var shedMu sync.Mutex
			type ent struct {
				srv, cli net.Conn
				h        Handle
			}
			ents := make([]*ent, n)
			for i := range ents {
				srv, cli := tcpPair(t)
				defer srv.Close()
				defer cli.Close()
				e := &ent{srv: srv, cli: cli}
				e.h.Init(srv)
				ents[i] = e
				var dl time.Time
				if i%3 == 0 {
					dl = time.Now().Add(100 * time.Millisecond)
				}
				if !l.Arm(&e.h, dl) {
					t.Fatalf("Arm %d refused", i)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, ok := l.ShedNewest(); ok {
						shedMu.Lock()
						shedCount++
						shedMu.Unlock()
					}
					time.Sleep(300 * time.Microsecond)
				}
			}()
			go func() {
				defer wg.Done()
				for i, e := range ents {
					if i%2 == 0 {
						e.cli.Write([]byte{'s'})
					}
					time.Sleep(150 * time.Microsecond)
				}
			}()
			time.Sleep(300 * time.Millisecond)
			close(stop)
			wg.Wait()
			l.Close()
			for _, e := range ents {
				e.h.Retire()
			}
			r, d := k.counts()
			shedMu.Lock()
			s := shedCount
			shedMu.Unlock()
			if int64(r+d)+s != n {
				t.Fatalf("deliveries %d + sheds %d != %d conns", r+d, s, n)
			}
		})
	}
}
