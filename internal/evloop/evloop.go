// Package evloop is the per-worker event loop behind serve.Requeue: one
// epoll(7) instance per worker owns readability for every parked
// (between-requests) connection that worker's flow groups hold, so a
// million held-open sockets cost one epoll registration each instead of
// a goroutine each. The paper's argument (and ROADMAP item 1) is that
// locality wins evaporate unless steady-state bookkeeping is O(cores),
// not O(connections) — this package is that collapse for the park path.
//
// A Loop owns three things:
//
//   - a platform poller (epoll on Linux) plus one goroutine blocked in
//     epoll_wait, which wakes batches of parked conns and hands each to
//     the Ready callback (serve routes it through the flow table, so
//     migration/steal semantics are untouched);
//   - an intrusive doubly-linked park-order list (newest at the head)
//     giving O(1) arm/disarm, O(1) LIFO shedding under fd or budget
//     pressure, and a cheap idle sweep for park deadlines;
//   - a coarse per-worker clock, stamped once per loop iteration —
//     layers above read Loop.Now instead of calling time.Now per
//     request (à la fasthttp's coarseTime).
//
// Handles that cannot use the poller — connections without a file
// descriptor (net.Pipe in tests), non-Linux platforms, or an epoll_ctl
// failure such as EMFILE — degrade to a portable fallback: a persistent
// per-handle parker goroutine blocked in a one-byte read, exactly the
// pre-evloop design. The fallback is sticky per handle once a poller
// registration fails, so a connection never flip-flops between paths.
package evloop

import (
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

const (
	// pollInterval bounds how long a loop iteration may block, and is
	// therefore the resolution of the coarse clock: Now() is at most
	// this far behind time.Now.
	pollInterval = 50 * time.Millisecond

	// sweepInterval is how often a loop walks its park list looking for
	// expired park deadlines. The walk is skipped entirely while no
	// armed handle carries a deadline (the million-idle-sockets case).
	sweepInterval = 500 * time.Millisecond
)

// armSeq is the global park-order sequence. Monotonic across loops, so
// "the newest parked connection in the whole server" — the LIFO shed
// victim — is simply the handle with the largest seq among the loops'
// list heads.
var armSeq atomic.Uint64

// testForceCtlError, when set, makes Arm treat every poller registration
// as having failed with EMFILE. Tests use it to exercise the degrade-to-
// fallback path without actually exhausting the interest list.
var testForceCtlError atomic.Bool

// Callbacks are how a Loop hands connections back to its owner. Both
// run on loop-internal goroutines and must not block for long.
type Callbacks struct {
	// Ready delivers a connection whose next request bytes (or EOF —
	// the handler observes that on its next read) arrived while parked.
	// The receiver owns the connection again.
	Ready func(c net.Conn)
	// Dead delivers a connection the loop gave up on: its park deadline
	// expired, its fallback read failed, or the loop is closing. The
	// receiver owns it and is expected to close it.
	Dead func(c net.Conn)
}

// Config parameterizes a Loop.
type Config struct {
	Callbacks

	// ForcePortable disables the platform poller so every handle runs
	// the portable parker-goroutine path. Tests use it to prove the two
	// implementations behave identically; on platforms without a poller
	// it is implicitly true.
	ForcePortable bool
}

// Loop is one worker's park event loop. Create with New, then Start;
// Arm parks handles on it; Close tears it down and reports every
// still-parked connection Dead.
type Loop struct {
	cb Callbacks

	mu     sync.Mutex
	newest *Handle // intrusive park-order list head (most recent arm)
	oldest *Handle
	n      int
	timed  int // armed handles carrying a park deadline
	closed bool
	start  bool

	// byFD maps a registered descriptor to its handle, for event
	// delivery. Registrations persist across parks (armed or not);
	// Retire removes the entry.
	byFD map[int32]*Handle

	count      atomic.Int64 // == n, readable without the lock
	clock      atomic.Int64 // coarse time, unix nanos
	closedFlag atomic.Bool

	// Lifetime delivery counters, exported by Counters for the metrics
	// plane: ready wakes, dead deliveries (all causes), and the subset
	// of deads caused by park-deadline expiry.
	ready   atomic.Uint64
	dead    atomic.Uint64
	expired atomic.Uint64

	p    *poller       // nil: portable mode
	done chan struct{} // closed when the loop goroutine exits
	stop chan struct{} // signals the portable loop goroutine to exit

	// inflight counts fallback deliveries between detach and callback
	// return, so Close can guarantee no delivery outlives it.
	inflight sync.WaitGroup

	scratch []*Handle // sweep's reusable expired-handle buffer
}

// Handle is one connection's park state, embedded by value in the
// owner's per-connection wrapper so parking allocates nothing. Init
// once, then Arm on each park.
type Handle struct {
	c    net.Conn
	fd   int // -1: no descriptor, portable path only
	loop *Loop

	armed      bool
	registered bool  // in the poller's interest set (persists across parks)
	regTag     int32 // seq low bits stashed in the registration's events
	fallback   bool  // sticky: this handle parks via its parker goroutine
	readable   bool  // poller reported readability at last wake
	deadline   int64
	seq        uint64
	next       *Handle // toward older
	prev       *Handle // toward newer

	// Portable-path state: the parker goroutine, its signal channel,
	// and the consumed-but-unreplayed wake byte.
	parkCh    chan struct{}
	closeOnce sync.Once
	head      byte
	has       bool
	buf       [1]byte
}

// New creates a Loop. It is not polling until Start.
func New(cfg Config) *Loop {
	l := &Loop{
		cb:   cfg.Callbacks,
		byFD: make(map[int32]*Handle),
		done: make(chan struct{}),
		stop: make(chan struct{}),
	}
	l.clock.Store(time.Now().UnixNano())
	if !cfg.ForcePortable {
		l.p = newPoller()
	}
	return l
}

// Start launches the loop goroutine.
func (l *Loop) Start() {
	l.mu.Lock()
	if l.start || l.closed {
		l.mu.Unlock()
		return
	}
	l.start = true
	l.mu.Unlock()
	if l.p != nil {
		go l.run()
	} else {
		go l.runPortable()
	}
}

// Now returns the loop's coarse clock: the wall time as of the last
// loop iteration, at most pollInterval behind time.Now. Layers above
// use it for idle/read deadlines so the request hot path performs no
// clock syscalls.
func (l *Loop) Now() time.Time { return time.Unix(0, l.clock.Load()) }

// Len reports how many handles are currently parked on this loop.
func (l *Loop) Len() int { return int(l.count.Load()) }

// Portable reports whether this loop runs without a platform poller
// (every handle on the parker-goroutine fallback).
func (l *Loop) Portable() bool { return l.p == nil }

// Closed reports whether Close has begun; Arm refuses from then on.
func (l *Loop) Closed() bool { return l.closedFlag.Load() }

// Counters reports the loop's lifetime delivery totals: ready is parked
// connections delivered because input arrived, dead is connections the
// loop gave up on (peer gone, deadline, shutdown), expired the subset
// of dead closed by park-deadline expiry.
func (l *Loop) Counters() (ready, dead, expired uint64) {
	return l.ready.Load(), l.dead.Load(), l.expired.Load()
}

// Registered reports whether the handle holds a persistent poller
// registration. A registered handle is bound to the loop that holds the
// registration: the owner must keep arming it there (readability events
// arrive on that loop's poller), and serve pins its park loop
// accordingly. Wake-time routing through the flow table — not the park
// loop — is what tracks flow-group migration.
func (h *Handle) Registered() bool { return h.registered }

// Init prepares a handle for its connection, resolving the underlying
// file descriptor once. Call exactly once per handle, before the first
// Arm.
func (h *Handle) Init(c net.Conn) {
	h.c = c
	h.fd = rawFD(c)
}

// Pending reports whether the handle holds replayable input — a
// consumed fallback wake byte, or poller-reported readability — ahead
// of the transport.
func (h *Handle) Pending() bool { return h.has || h.readable }

// Replay copies the consumed fallback wake byte into b, reporting
// whether one was held. A zero-length b leaves the byte held.
func (h *Handle) Replay(b []byte) (int, bool) {
	if !h.has {
		return 0, false
	}
	if len(b) == 0 {
		return 0, true
	}
	b[0] = h.head
	h.has = false
	return 1, true
}

// Clock returns the coarse clock of the loop the handle last parked on
// (time.Now before any park). Wrappers expose it upward so request
// layers can arm deadlines without a clock syscall.
func (h *Handle) Clock() time.Time {
	if h.loop == nil {
		return time.Now()
	}
	return h.loop.Now()
}

// ClearReadable drops the poller's readability hint; the owner calls it
// when it is about to read the transport directly.
func (h *Handle) ClearReadable() { h.readable = false }

// ReadyNow reports whether the handle's next input — data, EOF, or a
// pending transport error — is already deliverable, marking the handle
// readable when so. A pipelined client's next request has usually
// arrived by the time the handler finishes the previous one, so the
// park path probes this first (one MSG_PEEK) and skips the poller
// round-trip — an epoll_wait delivery hop — on a hit.
// Descriptorless handles and non-Linux builds always report false and
// take the normal park path.
func (h *Handle) ReadyNow() bool {
	if h.has {
		return true
	}
	if h.fd < 0 {
		return false
	}
	if h.probeReadable() {
		h.readable = true
		return true
	}
	return false
}

// Retire releases the handle's loop-side resources: its persistent
// poller registration, and its parker goroutine if it ever grew one.
// The owner calls it when closing the connection; it must not race an
// Arm (the owner either requeues or closes, never both).
func (h *Handle) Retire() {
	if h.registered {
		l := h.loop
		l.mu.Lock()
		if h.registered {
			h.registered = false
			if l.byFD[int32(h.fd)] == h {
				delete(l.byFD, int32(h.fd))
			}
			if !l.closed {
				// After Close the epoll descriptor is gone (and its
				// number may be recycled); an EPOLL_CTL_DEL then could
				// touch an unrelated descriptor. closed is written
				// under l.mu strictly before the poller closes, so
				// this check suffices.
				l.p.del(h.fd)
			}
		}
		l.mu.Unlock()
	}
	h.closeOnce.Do(func() {
		if h.parkCh != nil {
			close(h.parkCh)
		}
	})
}

// Arm parks the handle on the loop: the loop now owns the connection
// and will deliver it to exactly one of Ready (input arrived) or Dead
// (deadline, error, close) — unless ShedNewest takes it first. deadline,
// when non-zero, is the park deadline enforced by the idle sweep.
// Arm reports false, parking nothing, once the loop is closed; the
// caller then still owns the connection.
func (l *Loop) Arm(h *Handle, deadline time.Time) bool {
	var dl int64
	if !deadline.IsZero() {
		dl = deadline.UnixNano()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return false
	}
	h.loop = l
	h.seq = armSeq.Add(1)
	h.readable = false
	h.deadline = dl
	if dl != 0 {
		l.timed++
	}
	h.prev = nil
	h.next = l.newest
	if l.newest != nil {
		l.newest.prev = h
	}
	l.newest = h
	if l.oldest == nil {
		l.oldest = h
	}
	l.n++
	l.count.Store(int64(l.n))
	h.armed = true

	// A handle holding an unreplayed wake byte must be delivered
	// immediately — the byte is already out of the kernel, so the
	// poller would never fire for it. The parker path handles that.
	usePoller := l.p != nil && l.start && !h.fallback && h.fd >= 0 && !h.has
	fresh := false
	if usePoller && !h.registered {
		// First park: register once, edge-triggered, and keep the
		// registration for the connection's lifetime. Every later park
		// is a pure flag flip — zero syscalls on the requeue hot path.
		var err error = syscall.EMFILE
		if !testForceCtlError.Load() {
			err = l.p.add(h.fd, h.seq)
		}
		if err != nil {
			// epoll_ctl failed (EMFILE on the interest list, exotic
			// fd): degrade this handle to the portable path, sticky,
			// so it never bounces between implementations.
			h.fallback = true
			usePoller = false
		} else {
			h.registered = true
			h.regTag = int32(uint32(h.seq))
			l.byFD[int32(h.fd)] = h
			fresh = true
		}
	}
	if usePoller && !fresh {
		// Edge-triggered close race: input that arrived while the
		// handle was unarmed fired its edge into a dropped event, and
		// no new edge comes until new bytes do. One MSG_PEEK after
		// arming catches it; a fresh registration needs no probe —
		// EPOLL_CTL_ADD on an already-readable descriptor generates
		// the initial event itself.
		if h.probeReadable() {
			l.detachLocked(h)
			h.readable = true
			l.mu.Unlock()
			l.ready.Add(1)
			l.cb.Ready(h.c)
			return true
		}
	}
	if !usePoller {
		if h.fd < 0 || l.p == nil {
			h.fallback = true
		}
		if h.parkCh == nil {
			h.parkCh = make(chan struct{}, 1)
			go h.parker()
		}
		// Signal under the lock: the buffer slot is free by the
		// ownership contract (one outstanding park per handle), so this
		// never blocks — and Close cannot observe the handle armed,
		// deliver it Dead, and let the owner Retire (closing parkCh)
		// before the signal lands.
		h.parkCh <- struct{}{}
	}
	l.mu.Unlock()
	return true
}

// detachLocked unlinks an armed handle from the park list. The poller
// registration, if any, deliberately survives — deregistration happens
// once, at Retire — so detach is pure pointer surgery. Callers hold
// l.mu.
func (l *Loop) detachLocked(h *Handle) {
	if h.prev != nil {
		h.prev.next = h.next
	} else {
		l.newest = h.next
	}
	if h.next != nil {
		h.next.prev = h.prev
	} else {
		l.oldest = h.prev
	}
	h.prev, h.next = nil, nil
	l.n--
	l.count.Store(int64(l.n))
	if h.deadline != 0 {
		l.timed--
	}
	h.armed = false
}

// deliver hands a poller readability event to its handle's owner,
// reporting whether it did. tag is the registration's stashed low-order
// seq bits: a stale event for a since-recycled descriptor number fails
// the comparison; an edge that fired while the handle was between parks
// — or that the concurrent Poll/run delivery path already handled —
// fails the armed check. Either way the event is dropped (the post-arm
// probe in Arm recovers any input a dropped edge announced).
func (l *Loop) deliver(fd int32, tag int32) bool {
	l.mu.Lock()
	h, ok := l.byFD[fd]
	if !ok || !h.armed || h.regTag != tag {
		l.mu.Unlock()
		return false
	}
	l.detachLocked(h)
	h.readable = true
	l.mu.Unlock()
	l.ready.Add(1)
	l.cb.Ready(h.c)
	return true
}

// sweep reports every handle whose park deadline has passed as Dead.
// Skipped in O(1) while nothing armed carries a deadline.
func (l *Loop) sweep(now int64) {
	l.mu.Lock()
	if l.timed == 0 || l.closed {
		l.mu.Unlock()
		return
	}
	expired := l.scratch[:0]
	for h := l.newest; h != nil; h = h.next {
		if h.deadline != 0 && h.deadline <= now {
			expired = append(expired, h)
		}
	}
	for _, h := range expired {
		l.detachLocked(h)
	}
	l.scratch = expired[:0]
	l.mu.Unlock()
	l.dead.Add(uint64(len(expired)))
	l.expired.Add(uint64(len(expired)))
	for _, h := range expired {
		l.cb.Dead(h.c)
	}
}

// NewestSeq reports the park-order sequence of the loop's most recently
// armed handle. The global LIFO shed compares heads across loops.
func (l *Loop) NewestSeq() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.newest == nil {
		return 0, false
	}
	return l.newest.seq, true
}

// ShedNewest detaches and returns the most recently parked connection —
// the LIFO victim under descriptor or budget pressure. The caller owns
// it (and closes it); the loop will not deliver it.
func (l *Loop) ShedNewest() (net.Conn, bool) {
	l.mu.Lock()
	h := l.newest
	if h == nil {
		l.mu.Unlock()
		return nil, false
	}
	l.detachLocked(h)
	l.mu.Unlock()
	return h.c, true
}

// Close stops the loop, reports every still-parked connection Dead, and
// waits until no delivery can be in flight. Arm refuses afterwards.
func (l *Loop) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	started := l.start
	l.mu.Unlock()
	l.closedFlag.Store(true)
	if started {
		if l.p != nil {
			l.p.wakeup()
		} else {
			close(l.stop)
		}
		<-l.done
	}
	l.mu.Lock()
	var all []*Handle
	for h := l.newest; h != nil; h = h.next {
		all = append(all, h)
	}
	for _, h := range all {
		l.detachLocked(h)
	}
	l.mu.Unlock()
	l.dead.Add(uint64(len(all)))
	for _, h := range all {
		l.cb.Dead(h.c)
	}
	// Fallback parkers that detached their handle just before closed
	// was set are still completing a Ready delivery; join them so no
	// callback runs after Close returns.
	l.inflight.Wait()
	if l.p != nil {
		l.p.close()
	}
}

// runPortable is the loop goroutine without a poller: it only keeps the
// coarse clock fresh and runs the deadline sweep — wakes come from the
// per-handle parkers.
func (l *Loop) runPortable() {
	defer close(l.done)
	t := time.NewTicker(pollInterval)
	defer t.Stop()
	lastSweep := time.Now().UnixNano()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			l.clock.Store(now)
			if now-lastSweep >= int64(sweepInterval) {
				lastSweep = now
				l.sweep(now)
			}
		}
	}
}

// parker is a fallback handle's persistent park goroutine: once per Arm
// signal it blocks in a one-byte read and delivers the handle. It exits
// when the connection dies or the owner Retires it.
func (h *Handle) parker() {
	for range h.parkCh {
		if !h.parkOnce() {
			return
		}
	}
}

// parkOnce waits for the handle's next input byte and delivers Ready,
// or Dead on a read failure, reporting whether the handle can park
// again. A handle re-armed with its wake byte still unreplayed is
// delivered immediately — that byte is the next input.
func (h *Handle) parkOnce() bool {
	l := h.loop
	if !h.has {
		n, err := h.c.Read(h.buf[:1])
		if err != nil || n == 0 {
			l.mu.Lock()
			if !h.armed {
				// Shed, sweep or Close beat us to the handle; whoever
				// detached it owns the close and the notification.
				l.mu.Unlock()
				return false
			}
			l.detachLocked(h)
			l.inflight.Add(1)
			l.mu.Unlock()
			l.dead.Add(1)
			l.cb.Dead(h.c)
			l.inflight.Done()
			return false
		}
		h.head, h.has = h.buf[0], true
	}
	l.mu.Lock()
	if !h.armed {
		l.mu.Unlock()
		return false
	}
	l.detachLocked(h)
	l.inflight.Add(1)
	l.mu.Unlock()
	l.ready.Add(1)
	l.cb.Ready(h.c)
	l.inflight.Done()
	return true
}

// rawFD resolves the file descriptor under a connection wrapper chain,
// unwrapping NetConn links (the idiom proxyaff's MSG_PEEK probe uses).
// Returns -1 when the chain bottoms out without a syscall.Conn — such
// connections park on the portable path.
func rawFD(c net.Conn) int {
	for c != nil {
		if sc, ok := c.(syscall.Conn); ok {
			rc, err := sc.SyscallConn()
			if err != nil {
				return -1
			}
			fd := -1
			if err := rc.Control(func(u uintptr) { fd = int(u) }); err != nil {
				return -1
			}
			return fd
		}
		u, ok := c.(interface{ NetConn() net.Conn })
		if !ok {
			return -1
		}
		c = u.NetConn()
	}
	return -1
}
