//go:build linux

// Reuseport applies Affinity-Accept's user-space half to Go's real
// network stack: SO_REUSEPORT gives each worker its own kernel accept
// queue (the per-core clone queues of §3.2), and the library's Balancer
// adds the paper's busy tracking and 5:1 proportional-share stealing on
// top, so a slow worker's connections get picked up by idle ones.
//
// This is the part of the paper a user-space program can adopt directly;
// kernel-side flow steering is what the simulator models.
package main

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"affinityaccept"
)

const soReusePort = 0xf // SO_REUSEPORT on Linux

func listenReusePort(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	return lc.Listen(nil, "tcp", addr) //nolint:staticcheck // background ctx not needed
}

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	bal := affinityaccept.NewBalancer(affinityaccept.BalancerConfig{
		Cores:   workers,
		Backlog: workers * 512, // ample: the self-test bursts all clients at once
	})

	const addr = "127.0.0.1:0"
	first, err := listenReusePort(addr)
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}
	bound := first.Addr().String()
	listeners := []net.Listener{first}
	for i := 1; i < workers; i++ {
		l, err := listenReusePort(bound)
		if err != nil {
			fmt.Println("SO_REUSEPORT unavailable:", err)
			return
		}
		listeners = append(listeners, l)
	}
	fmt.Printf("%d SO_REUSEPORT listeners on %s (per-core accept queues)\n", workers, bound)

	var served int64
	var wg sync.WaitGroup

	// Acceptors: one per listener, pushing onto that "core"'s queue.
	for i, l := range listeners {
		wg.Add(1)
		go func(core int, l net.Listener) {
			defer wg.Done()
			for {
				conn, err := l.Accept()
				if err != nil {
					return
				}
				if !bal.Push(core, conn) {
					conn.Close() // queue overflow: shed load
				}
			}
		}(i, l)
	}

	// Workers: pop with the proportional-share stealing policy; worker 0
	// is artificially slow so the others demonstrably steal from it.
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			for {
				conn, _, ok := bal.Pop(core)
				if ok {
					if core == 0 {
						time.Sleep(500 * time.Microsecond) // the "busy" core
					}
					io.Copy(conn, conn) // echo
					conn.Close()
					atomic.AddInt64(&served, 1)
					continue
				}
				select {
				case <-done:
					return
				case <-time.After(200 * time.Microsecond):
				}
			}
		}(i)
	}

	// Self-test clients.
	const total = 200
	var cwg sync.WaitGroup
	for i := 0; i < total; i++ {
		cwg.Add(1)
		go func(i int) {
			defer cwg.Done()
			conn, err := net.Dial("tcp", bound)
			if err != nil {
				return
			}
			defer conn.Close()
			msg := []byte(fmt.Sprintf("hello %d", i))
			conn.Write(msg)
			buf := make([]byte, len(msg))
			io.ReadFull(conn, buf)
			conn.(*net.TCPConn).CloseWrite()
		}(i)
	}
	cwg.Wait()
	deadline := time.Now().Add(3 * time.Second)
	for atomic.LoadInt64(&served) < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	for _, l := range listeners {
		l.Close()
	}
	wg.Wait()

	pushes, locals, steals, drops := bal.Stats()
	fmt.Printf("served %d connections: %d accepted locally, %d stolen (busy core rescued), %d dropped, %d pushed\n",
		atomic.LoadInt64(&served), locals, steals, drops, pushes)
}
