// Reuseport applies Affinity-Accept's user-space half to Go's real
// network stack via the serve package: SO_REUSEPORT gives each worker
// its own kernel accept queue (the per-core clone queues of §3.2), and
// the Balancer underneath adds the paper's busy tracking and 5:1
// proportional-share stealing, so a slow worker's connections get
// picked up by idle ones.
//
// Worker 0 is made artificially slow; the final report shows the other
// workers rescuing its backlog (nonzero "stolen" column).
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"affinityaccept"
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	srv, err := affinityaccept.NewServer(affinityaccept.ServeConfig{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		HighPct: 20, // mark a lagging worker busy early so the demo steals visibly
		LowPct:  5,
		WorkerHandler: func(worker int, conn net.Conn) {
			if worker == 0 {
				time.Sleep(2 * time.Millisecond) // the "busy" core
			}
			io.Copy(conn, conn) // echo
			conn.Close()
		},
	})
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}
	srv.Start()
	addr := srv.Addr().String()
	if srv.Sharded() {
		fmt.Printf("%d SO_REUSEPORT listeners on %s (per-core accept queues)\n", workers, addr)
	} else {
		fmt.Printf("shared listener on %s (%d worker queues, round-robin)\n", addr, workers)
	}

	// Self-test clients: burst everything at once.
	const total = 200
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			msg := []byte(fmt.Sprintf("hello %d", i))
			conn.Write(msg)
			conn.(*net.TCPConn).CloseWrite()
			io.ReadAll(conn)
		}(i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("shutdown:", err)
	}
	fmt.Println()
	fmt.Print(srv.Stats())
}
