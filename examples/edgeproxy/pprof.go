package main

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
)

// startPprof serves Go's profiler on a loopback sidecar listener —
// net/http/pprof wants a net/http mux, and a separate listener keeps
// profiling traffic (and the stock mux's allocations) off the httpaff
// serving path. Returns the listen address, or a note when the sandbox
// refuses a second listener.
func startPprof() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "(unavailable: " + err.Error() + ")"
	}
	go http.Serve(ln, nil)
	return ln.Addr().String()
}
