// Edgeproxy demonstrates the full core-local edge — every layer of the
// reproduction stacked into the deployment shape the paper's §6.2 web
// workload implies for production:
//
//	clients ──> serve (per-core SO_REUSEPORT accept queues, §3.3 stealing,
//	            §3.3.2 flow-group migration)
//	        ──> httpaff (zero-alloc parsing in per-worker arenas)
//	        ──> proxyaff (per-worker upstream pools, worker-pinned backends)
//	        ──> two httpaff origin servers
//
// A request that arrives on worker i is parsed in worker i's arena,
// forwarded over worker i's pooled upstream connection, and relayed
// back through worker i's response buffer: the connection's whole
// round trip — inbound AND outbound — touches one core's caches. The
// run drives the edge with stock net/http clients, scrapes the live
// /_stats debug endpoint mid-flight (httpaff.StatsHandler), and closes
// with the locality / pool / upstream-reuse report.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/proxyaff"
)

const (
	clients   = 32
	duration  = 2 * time.Second
	fileBytes = 700
)

func startOrigin(name string) (*httpaff.Server, error) {
	payload := make([]byte, fileBytes)
	for i := range payload {
		payload[i] = 'x'
	}
	r := httpaff.NewRouter()
	r.HandleMethod("GET", "/asset", func(ctx *httpaff.RequestCtx) {
		ctx.SetHeader("X-Origin", name)
		ctx.Write(payload)
	})
	r.HandleMethod("GET", "/whoami", func(ctx *httpaff.RequestCtx) {
		ctx.WriteString(name)
	})
	s, err := httpaff.New(httpaff.Config{Workers: 2, Handler: r.Serve, ServerName: name})
	if err != nil {
		return nil, err
	}
	s.Start()
	return s, nil
}

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}

	// Two origin servers behind the edge.
	originA, err := startOrigin("origin-a")
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}
	originB, err := startOrigin("origin-b")
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}

	// The proxy: worker-pinned, so each edge worker's pool concentrates
	// on one origin and reuse stays maximal.
	proxy, err := proxyaff.New(proxyaff.Config{
		Backends: []string{originA.Addr().String(), originB.Addr().String()},
		Policy:   proxyaff.WorkerPinned,
		Workers:  workers,
	})
	if err != nil {
		fmt.Println("proxy:", err)
		return
	}

	// The edge server: proxy on every path, plus the JSON stats
	// endpoint mounted beside it.
	router := httpaff.NewRouter()
	router.Handle("/asset", proxy.Serve)
	router.Handle("/whoami", proxy.Serve)
	edge, err := httpaff.New(httpaff.Config{
		Workers:        workers,
		Handler:        router.Serve,
		WorkerUpstream: proxy.PoolSnapshot,
		ServerName:     "edgeproxy",
	})
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}
	// Setup-time registration: nothing has connected yet. The unified
	// metrics endpoint composes the proxy's series (upstream exchange
	// histogram, backend health) into the edge server's scrape via the
	// extras hook; /debug/events serves the control-plane timeline.
	router.Handle("/_stats", httpaff.StatsHandler(edge.Transport()))
	router.Handle("/metrics", httpaff.MetricsHandler(edge, proxy.WriteObsMetrics))
	router.Handle("/debug/events", httpaff.EventsHandler(edge))
	// Flow journeys and the Chrome trace export: affinity-top polls
	// /debug/flows; /debug/trace loads in chrome://tracing / Perfetto.
	router.Handle("/debug/flows", httpaff.FlowsHandler(edge, httpaff.FlowsConfig{}))
	router.Handle("/debug/trace", httpaff.TraceHandler(edge))
	pprofAddr := startPprof()
	edge.Start()
	addr := edge.Addr().String()
	fmt.Printf("edge: %d workers on %s (sharded=%v) fronting %s and %s, worker-pinned upstream pools\n",
		workers, addr, edge.Sharded(), originA.Addr(), originB.Addr())
	fmt.Printf("observability: http://%s/metrics (edge + proxy series), /debug/events, /debug/flows, /debug/trace; pprof on http://%s/debug/pprof/\n\n",
		addr, pprofAddr)

	var requests, failures atomic.Int64
	start := time.Now()
	stop := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			transport := &http.Transport{MaxIdleConnsPerHost: 1}
			client := &http.Client{Transport: transport, Timeout: 10 * time.Second}
			defer transport.CloseIdleConnections()
			for time.Now().Before(stop) {
				resp, err := client.Get("http://" + addr + "/asset")
				if err != nil {
					failures.Add(1)
					return
				}
				n, err := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != 200 || n != fileBytes {
					failures.Add(1)
					continue
				}
				requests.Add(1)
			}
		}()
	}

	// Mid-flight, scrape the live debug endpoint like a dashboard would.
	time.Sleep(duration / 2)
	var scraped struct {
		Served           uint64
		LocalityPct      float64 `json:"localityPct"`
		PoolReusePct     float64 `json:"poolReusePct"`
		UpstreamReusePct float64 `json:"upstreamReusePct"`
	}
	if resp, err := http.Get("http://" + addr + "/_stats"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if json.Unmarshal(body, &scraped) == nil {
			fmt.Printf("live /_stats at t=%.1fs: %d passes served, locality %.1f%%, ctx pool reuse %.1f%%, upstream reuse %.1f%%\n\n",
				time.Since(start).Seconds(), scraped.Served, scraped.LocalityPct,
				scraped.PoolReusePct, scraped.UpstreamReusePct)
		}
	}

	wg.Wait()
	secs := time.Since(start).Seconds()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	edge.Shutdown(ctx)
	st := edge.Stats()
	proxy.Close()
	originA.Shutdown(ctx)
	originB.Shutdown(ctx)

	fmt.Printf("%.0f req/s end-to-end (%d requests, %d failures, in %.1fs)\n\n",
		float64(requests.Load())/secs, requests.Load(), failures.Load(), secs)
	fmt.Print(st)
	fmt.Printf("\nupstream reuse %.1f%%: each edge worker forwarded over its own pooled backend connections —\n"+
		"the inbound half (accept locality, arena parsing) and the outbound half (dial, keep-alive,\n"+
		"relay) of every request stayed on the worker that accepted it.\n",
		st.Upstream.ReusePct())
}
