// Quickstart: compare the three listen-socket designs on a 12-core
// slice of the paper's AMD machine and print throughput and locality.
package main

import (
	"fmt"

	"affinityaccept"
)

func main() {
	fmt.Println("Affinity-Accept quickstart: Apache on 12 AMD cores")
	fmt.Println()
	for _, kind := range []affinityaccept.ListenKind{
		affinityaccept.StockAccept,
		affinityaccept.FineAccept,
		affinityaccept.AffinityAccept,
	} {
		r := affinityaccept.Simulate(affinityaccept.RunConfig{
			Machine: affinityaccept.AMD48(),
			Cores:   12,
			Listen:  kind,
			Server:  affinityaccept.Apache,
			Seed:    1,
		})
		stats := r.Stack.Stats
		local := 0.0
		if stats.Requests > 0 {
			local = 100 * float64(stats.RequestsLocal) / float64(stats.Requests)
		}
		fmt.Printf("%-16s %8.0f req/s/core   %5.1f%% processed locally   %.2f Gbit/s\n",
			kind, r.ReqPerSecPerCore, local, r.GbitsPerSec)
	}
	fmt.Println()
	fmt.Println("Affinity-Accept keeps packet and application processing on one core;")
	fmt.Println("run cmd/affinity-bench for the full paper reproduction.")
}
