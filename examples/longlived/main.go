// Longlived demonstrates the half of the paper that accept-time
// stealing cannot deliver: flow-group migration (§3.3.2) for long-lived
// keep-alive connections.
//
// The demo constructs the pathological workload — every persistent
// connection's source port hashes into a flow group owned by worker 0 —
// and runs it twice against the real serve.Server: once with stealing
// only (every keep-alive pass re-enters worker 0's queue and is stolen
// remotely, forever) and once with the migration loop on (non-busy
// workers claim worker 0's hot groups, so later passes land locally).
// The side-by-side report shows locality jumping and a nonzero
// migration count.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"affinityaccept"
	"affinityaccept/internal/loadgen"
)

const (
	workers  = 4
	groups   = 64
	conns    = 24
	payload  = 64
	workTime = 200 * time.Microsecond // per-request service time
	window   = 2 * time.Second
)

func main() {
	fmt.Println("skewed keep-alive workload: every connection hashes into a flow group owned by worker 0")
	fmt.Println()

	steal, err := run(true)
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}
	migr, err := run(false)
	if err != nil {
		fmt.Println("second run failed:", err)
		return
	}

	fmt.Printf("%-22s %12s %12s %12s\n", "", "locality", "stolen", "migrations")
	fmt.Printf("%-22s %11.1f%% %12d %12d\n", "stealing only (§3.3.1)",
		steal.LocalityPct(), steal.ServedStolen, steal.Migrations)
	fmt.Printf("%-22s %11.1f%% %12d %12d\n", "with migration (§3.3.2)",
		migr.LocalityPct(), migr.ServedStolen, migr.Migrations)
	fmt.Println()
	fmt.Println("stealing alone keeps the clients served but every pass stays remote;")
	fmt.Println("migration re-points the hot groups so the same connections become local:")
	fmt.Println()
	fmt.Print(migr)
}

// run serves the skewed workload once and returns the final stats.
func run(stealOnly bool) (affinityaccept.ServeStats, error) {
	var srv *affinityaccept.Server
	srv, err := affinityaccept.NewServer(affinityaccept.ServeConfig{
		Addr:             "127.0.0.1:0",
		Workers:          workers,
		FlowGroups:       groups,
		DisableMigration: stealOnly,
		MigrateInterval:  50 * time.Millisecond,
		Backlog:          workers * 64,
		HighPct:          20, // engage stealing (and thus migration) early
		LowPct:           5,
		Handler: func(conn net.Conn) {
			buf := make([]byte, payload)
			if _, err := io.ReadFull(conn, buf); err != nil {
				conn.Close()
				return
			}
			time.Sleep(workTime)
			if _, err := conn.Write(buf); err != nil {
				conn.Close()
				return
			}
			if !srv.Requeue(conn) { // keep-alive: back through the flow table
				conn.Close()
			}
		},
	})
	if err != nil {
		return affinityaccept.ServeStats{}, err
	}
	srv.Start()

	// Flow groups initially steered to worker 0.
	var hot []int
	for g := 0; g < srv.FlowGroups(); g++ {
		if affinityaccept.InitialFlowOwner(g, workers) == 0 {
			hot = append(hot, g)
		}
	}

	mode := "stealing only"
	if !stealOnly {
		mode = "stealing + migration"
	}
	fmt.Printf("run (%s): %d workers, %d flow groups, %d long-lived conns on worker 0's %d groups\n",
		mode, workers, srv.FlowGroups(), conns, len(hot))

	var wg sync.WaitGroup
	stop := time.Now().Add(window)
	for i := 0; i < conns; i++ {
		conn, err := loadgen.DialGroup(srv.Addr().String(), hot[i%len(hot)], groups)
		if err != nil {
			continue
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(window + 30*time.Second))
			msg := make([]byte, payload)
			for time.Now().Before(stop) {
				if _, err := conn.Write(msg); err != nil {
					return
				}
				if _, err := io.ReadFull(conn, msg); err != nil {
					return
				}
			}
		}(conn)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("shutdown:", err)
	}
	st := srv.Stats()
	fmt.Printf("  -> locality %.1f%%, %d migrations, %d requeues\n\n",
		st.LocalityPct(), st.Migrations, st.Requeued)
	return st, nil
}
