// Webfarm: sweep both web-server architectures (threaded Apache and
// event-driven lighttpd) across machine sizes under Affinity-Accept,
// mirroring the workload of the paper's §6.2.
package main

import (
	"fmt"

	"affinityaccept"
)

func main() {
	fmt.Println("Web-server architectures under Affinity-Accept (AMD machine)")
	fmt.Println()
	fmt.Printf("%-8s %18s %18s\n", "cores", "apache req/s/core", "lighttpd req/s/core")
	for _, cores := range []int{1, 6, 12, 24} {
		row := make([]float64, 0, 2)
		for _, server := range []affinityaccept.ServerKind{
			affinityaccept.Apache, affinityaccept.Lighttpd,
		} {
			r := affinityaccept.Simulate(affinityaccept.RunConfig{
				Machine: affinityaccept.AMD48(),
				Cores:   cores,
				Listen:  affinityaccept.AffinityAccept,
				Server:  server,
				Seed:    7,
			})
			row = append(row, r.ReqPerSecPerCore)
		}
		fmt.Printf("%-8d %18.0f %18.0f\n", cores, row[0], row[1])
	}
	fmt.Println()
	fmt.Println("Event-driven lighttpd avoids Apache's per-request futex and")
	fmt.Println("context-switch costs; both keep connections core-local.")
}
