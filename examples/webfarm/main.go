// Webfarm runs a miniature web farm on the serve package, mirroring
// the workload of the paper's §6.2 on a real loopback network: every
// worker owns a SO_REUSEPORT accept queue, each connection issues six
// requests for ~700-byte responses (the paper's connection-reuse and
// SpecWeb-like file mix), and the closing report shows throughput plus
// the per-worker locality/steal breakdown.
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept"
)

const (
	reqsPerConn = 6   // the paper's connection reuse (§6.2)
	fileBytes   = 700 // mean file size of the static mix
	clients     = 64
	duration    = 2 * time.Second
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	payload := bytes.Repeat([]byte("x"), fileBytes)

	var requests atomic.Int64
	srv, err := affinityaccept.NewServer(affinityaccept.ServeConfig{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		Handler: func(conn net.Conn) {
			defer conn.Close()
			r := bufio.NewReader(conn)
			for {
				if _, err := r.ReadString('\n'); err != nil {
					return // client closed the connection
				}
				header := fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n", len(payload))
				if _, err := conn.Write(append([]byte(header), payload...)); err != nil {
					return
				}
				requests.Add(1)
			}
		},
	})
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}
	srv.Start()
	addr := srv.Addr().String()
	fmt.Printf("web farm: %d workers on %s (sharded=%v), %d clients, %d reqs/conn\n\n",
		workers, addr, srv.Sharded(), clients, reqsPerConn)

	start := time.Now()
	stop := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4096)
			for time.Now().Before(stop) {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				conn.SetDeadline(time.Now().Add(10 * time.Second))
				r := bufio.NewReader(conn)
				for i := 0; i < reqsPerConn && time.Now().Before(stop); i++ {
					if _, err := fmt.Fprintf(conn, "GET /f%d\n", i); err != nil {
						break
					}
					// Header line, blank line, then the body.
					if _, err := r.ReadString('\n'); err != nil {
						break
					}
					if _, err := r.ReadString('\n'); err != nil {
						break
					}
					if _, err := r.ReadString('\n'); err != nil {
						break
					}
					want := fileBytes
					for want > 0 {
						n, err := r.Read(buf[:min(want, len(buf))])
						if err != nil {
							want = -1
							break
						}
						want -= n
					}
					if want != 0 {
						break
					}
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	secs := time.Since(start).Seconds() // actual window, including the tail

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)

	st := srv.Stats()
	fmt.Printf("%.0f req/s  %.0f conn/s  (%d requests in %.1fs)\n\n",
		float64(requests.Load())/secs, float64(st.Served)/secs, requests.Load(), secs)
	fmt.Print(st)
}
