// Webfarm runs a miniature web farm on the httpaff layer, mirroring
// the workload of the paper's §6.2 on a real loopback network: every
// worker owns a SO_REUSEPORT accept queue and a private arena of pooled
// request contexts, the farm serves a SpecWeb-like static mix over
// keep-alive connections (the paper's six requests per connection), and
// the closing report shows throughput plus the per-worker
// locality/steal/pool-reuse breakdown — proving the connections AND the
// memory serving them stayed core-local.
//
// The clients are net/http — the stock library talking to httpaff over
// the wire, connection pooling and all.
package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/httpaff"
)

const (
	reqsPerConn = 6   // the paper's connection reuse (§6.2)
	fileBytes   = 700 // mean file size of the static mix
	files       = 6
	clients     = 64
	duration    = 2 * time.Second
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	payload := strings.Repeat("x", fileBytes)

	var srv *httpaff.Server
	router := httpaff.NewRouter()
	router.Handle("/", func(ctx *httpaff.RequestCtx) {
		ctx.SetContentType("text/html; charset=utf-8")
		ctx.WriteString("<html><body>webfarm index</body></html>")
	})
	for i := 0; i < files; i++ {
		router.Handle(fmt.Sprintf("/f%d", i), func(ctx *httpaff.RequestCtx) {
			ctx.WriteString(payload)
		})
	}
	// The observability plane: one Prometheus endpoint covering the
	// request histograms and the transport's control-plane series, plus
	// the event timeline for debugging migration behavior.
	router.Handle("/metrics", func(ctx *httpaff.RequestCtx) {
		httpaff.MetricsHandler(srv)(ctx)
	})
	router.Handle("/debug/events", func(ctx *httpaff.RequestCtx) {
		httpaff.EventsHandler(srv)(ctx)
	})
	// The flow-journey layer: stitched per-group journeys (poll with
	// affinity-top, or curl "/debug/flows?group=N&since=SEQ") and the
	// Chrome trace export for chrome://tracing / Perfetto.
	router.Handle("/debug/flows", func(ctx *httpaff.RequestCtx) {
		httpaff.FlowsHandler(srv, httpaff.FlowsConfig{})(ctx)
	})
	router.Handle("/debug/trace", func(ctx *httpaff.RequestCtx) {
		httpaff.TraceHandler(srv)(ctx)
	})
	// Go's profiler serves over net/http; a sidecar listener keeps the
	// hot httpaff path out of the stock mux's allocation profile.
	pprofAddr := startPprof()

	srv, err := httpaff.New(httpaff.Config{
		Addr:    "127.0.0.1:0",
		Workers: workers,
		Handler: router.Serve,
	})
	if err != nil {
		fmt.Println("cannot listen (sandboxed environment?):", err)
		return
	}
	srv.Start()
	addr := srv.Addr().String()
	fmt.Printf("web farm: %d workers on %s (sharded=%v), %d net/http clients, %d reqs/conn\n",
		workers, addr, srv.Sharded(), clients, reqsPerConn)
	fmt.Printf("observability: http://%s/metrics, /debug/events, /debug/flows, /debug/trace; pprof on http://%s/debug/pprof/\n\n",
		addr, pprofAddr)

	var requests, failures atomic.Int64
	start := time.Now()
	stop := start.Add(duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A private transport per client, with its idle pool
			// dropped after every batch, enforces the paper's
			// connection reuse: each TCP connection carries exactly
			// reqsPerConn requests, then the next batch dials fresh.
			transport := &http.Transport{MaxIdleConnsPerHost: 1}
			client := &http.Client{Transport: transport, Timeout: 10 * time.Second}
			defer transport.CloseIdleConnections()
			for time.Now().Before(stop) {
				for i := 0; i < reqsPerConn && time.Now().Before(stop); i++ {
					resp, err := client.Get(fmt.Sprintf("http://%s/f%d", addr, i%files))
					if err != nil {
						failures.Add(1)
						return
					}
					n, err := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if err != nil || resp.StatusCode != 200 || n != fileBytes {
						failures.Add(1)
						continue
					}
					requests.Add(1)
				}
				transport.CloseIdleConnections()
			}
		}()
	}
	wg.Wait()
	secs := time.Since(start).Seconds() // actual window, including the tail

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)

	st := srv.Stats()
	fmt.Printf("%.0f req/s  (%d requests, %d failures, in %.1fs)\n\n",
		float64(requests.Load())/secs, requests.Load(), failures.Load(), secs)
	fmt.Print(st)
	fmt.Printf("\npool reuse %.1f%%: after warm-up every request context came from the serving worker's own arena —\n"+
		"the keep-alive connections moved between workers (stealing/migration), the memory never did.\n",
		st.Pool.ReusePct())
}
