// Chat demonstrates the wsaff WebSocket subsystem end to end: a chat
// room where every message a client sends is broadcast to every
// connected client through the per-worker broadcast shards.
//
// The demo starts an httpaff server whose /ws route upgrades into
// wsaff, connects a handful of scripted clients, lets them chat, and
// prints the transport + wsaff statistics: the point to look at is that
// every handler pass ran on the worker owning the connection's flow
// group (locality), the sockets sat parked (not occupying workers)
// between messages, and the broadcast deliveries came from each
// worker's local subscriber shard.
//
// Run it:
//
//	go run ./examples/chat
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"affinityaccept/httpaff"
	"affinityaccept/wsaff"
)

const (
	workers = 4
	clients = 6
	rounds  = 3
)

func main() {
	// The room: every opened socket subscribes; every text message is
	// stamped with a nickname and broadcast to the whole room.
	var ws *wsaff.WS
	ws, err := wsaff.New(wsaff.Config{
		Workers: workers,
		OnOpen: func(c *wsaff.Conn) {
			c.Subscribe()
		},
		OnMessage: func(c *wsaff.Conn, op wsaff.Op, payload []byte) {
			if c.Data == nil {
				// First message names the speaker.
				c.Data = string(payload)
				ws.Broadcast(wsaff.OpText, []byte(fmt.Sprintf("* %s joined (worker %d)", payload, c.Worker())))
				return
			}
			ws.Broadcast(wsaff.OpText, []byte(fmt.Sprintf("%s: %s", c.Data, payload)))
		},
	})
	if err != nil {
		panic(err)
	}
	ws.Start()

	r := httpaff.NewRouter()
	r.Handle("/ws", func(ctx *httpaff.RequestCtx) { ws.Upgrade(ctx) })
	srv, err := httpaff.New(httpaff.Config{Workers: workers, Handler: r.Serve})
	if err != nil {
		panic(err)
	}
	srv.Start()
	fmt.Printf("chat server on %s (%d workers)\n\n", srv.Addr(), workers)

	// Scripted clients: join, chat a few rounds, read everything the
	// room broadcasts.
	var wg sync.WaitGroup
	var printMu sync.Mutex
	done := make(chan struct{})
	for i := 0; i < clients; i++ {
		c, err := wsaff.Dial(srv.Addr().String(), "/ws")
		if err != nil {
			panic(err)
		}
		name := fmt.Sprintf("client-%d", i)
		c.Send(wsaff.OpText, []byte(name))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				op, msg, err := c.ReadMessage()
				if err != nil || op == wsaff.OpClose {
					return
				}
				if name == "client-0" { // one client narrates the room
					printMu.Lock()
					fmt.Printf("  %s\n", msg)
					printMu.Unlock()
				}
			}
		}()
		defer c.Close()

		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				time.Sleep(time.Duration(50+10*i) * time.Millisecond)
				if err := c.Send(wsaff.OpText, []byte(fmt.Sprintf("hello, round %d", round))); err != nil {
					return
				}
			}
			<-done
		}(i)
	}

	// Let the room chat, then shut down.
	time.Sleep(time.Duration(rounds)*200*time.Millisecond + 500*time.Millisecond)
	close(done)

	st := srv.Stats()
	wst := ws.Stats()
	fmt.Printf("\nroom: %d sockets open, %d subscribed, %d parked between messages\n",
		wst.Open, wst.Subscribers, st.Parked)
	fmt.Printf("traffic: %d messages in, %d broadcasts fanned out to %d deliveries (codec reuse %.1f%%)\n",
		wst.MessagesIn, wst.Broadcasts, wst.Delivered, wst.Pool.ReusePct())
	fmt.Printf("locality: %.1f%% of %d passes served by the owning worker, %d requeues\n\n%s",
		st.LocalityPct(), st.Served, st.Requeued, st)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	ws.Close()
	wg.Wait()
}
