// Loadbalance: demonstrate §6.5 — when a CPU-hungry job occupies half
// the cores, connection stealing and flow-group migration keep client
// latency bounded instead of letting accept queues overflow.
package main

import (
	"fmt"

	"affinityaccept"
)

func main() {
	fmt.Println("Load balancer demo (paper §6.5, reduced scale)")
	fmt.Println()
	res, err := affinityaccept.RunExperiment("LB1", affinityaccept.Options{Quick: true, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Render())

	res, err = affinityaccept.RunExperiment("LB2", affinityaccept.Options{Quick: true, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Render())
}
