// Package affinityaccept reproduces "Improving Network Connection
// Locality on Multicore Systems" (Pesterev, Strauss, Zeldovich, Morris —
// EuroSys 2012) as a Go library.
//
// The paper's contribution, Affinity-Accept, keeps every phase of a TCP
// connection's processing — NIC receive, softirq protocol work,
// accept(), reads, writes, transmit — on one core, by combining NIC
// flow-group steering, per-core accept queues, connection stealing and
// flow-group migration.
//
// This package exposes three layers:
//
//   - The experiment harness: every table and figure of the paper's
//     evaluation can be regenerated with RunExperiment (see DESIGN.md
//     for the experiment index and EXPERIMENTS.md for paper-vs-measured
//     results).
//
//   - The simulator: Simulate runs one configured workload on a
//     simulated multicore machine (cache-coherence cost model, NIC with
//     FDir flow steering, Linux-like TCP stack with the Stock-, Fine-
//     and Affinity-Accept listen sockets, Apache/lighttpd application
//     models, httperf-like load generation).
//
//   - The algorithms: NewBalancer and NewFlowTable expose the paper's
//     per-core accept queues, busy tracking, proportional-share
//     stealing and flow-group migration as plain data structures, ready
//     to wrap real SO_REUSEPORT listeners.
//
//   - The server: NewServer runs a production TCP server that applies
//     the algorithms to real traffic — one SO_REUSEPORT listener per
//     worker (with a portable shared-listener fallback), flow-group
//     routing of every connection, Balancer-backed stealing, the
//     §3.3.2 flow-group migration loop, a Requeue keep-alive path,
//     graceful shutdown and per-worker locality/migration stats (see
//     the serve package, examples/reuseport, examples/webfarm and
//     examples/longlived).
//
//   - The HTTP layer: the httpaff package serves HTTP/1.1 with
//     keep-alive and pipelining on top of serve, keeping request
//     memory as core-local as the connections via worker-private
//     context arenas — zero allocations per request on the
//     steady-state path, with per-worker pool-reuse counters in the
//     server stats to prove the locality (see examples/webfarm).
package affinityaccept

import (
	"net"

	"affinityaccept/internal/core"
	"affinityaccept/internal/experiments"
	"affinityaccept/internal/mem"
	"affinityaccept/internal/tcp"
	"affinityaccept/serve"
)

// Options tunes experiment execution (Quick shrinks sweeps).
type Options = experiments.Options

// Result is a reproduced table or figure; Render prints it in the
// paper's presentation shape.
type Result = experiments.Result

// RunConfig configures one simulation run.
type RunConfig = experiments.RunConfig

// RunResult is one simulation run's measurements.
type RunResult = experiments.RunResult

// ServerKind selects the application model (Apache, ApacheUnpinned,
// Lighttpd).
type ServerKind = experiments.ServerKind

// Application models.
const (
	Apache         = experiments.Apache
	ApacheUnpinned = experiments.ApacheUnpinned
	Lighttpd       = experiments.Lighttpd
)

// ListenKind selects the listen-socket design under test.
type ListenKind = tcp.ListenKind

// The three listen-socket designs of the paper's evaluation.
const (
	StockAccept    = tcp.StockAccept
	FineAccept     = tcp.FineAccept
	AffinityAccept = tcp.AffinityAccept
)

// Machine describes a simulated host (chips, cores, Table-1 latencies).
type Machine = mem.Machine

// AMD48 returns the paper's 48-core AMD evaluation machine.
func AMD48() Machine { return mem.AMD48() }

// Intel80 returns the paper's 80-core Intel evaluation machine.
func Intel80() Machine { return mem.Intel80() }

// Experiments lists the identifiers of every reproducible table and
// figure (T1–T5, F2–F10, LB1/LB2, ablations A1–A5).
func Experiments() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's one-line description.
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, opt Options) (Result, error) {
	return experiments.RunByID(id, opt)
}

// Simulate executes one simulation run (with saturation search when no
// explicit load is configured) and returns its measurements.
func Simulate(cfg RunConfig) RunResult { return experiments.Run(cfg) }

// BalancerConfig parameterizes a real-world accept balancer.
type BalancerConfig struct {
	// Cores is the number of accept queues (usually GOMAXPROCS).
	Cores int
	// Backlog is the total queued-connection bound across queues.
	Backlog int
	// StealRatio is local accepts per remote accept on a non-busy core
	// (0 = the paper's 5).
	StealRatio int
	// HighPct / LowPct are the busy watermarks in percent of the
	// per-core queue bound (0 = the paper's 75 and 10).
	HighPct, LowPct float64
}

// Balancer applies Affinity-Accept's queueing and stealing policy to
// real network connections: push accepted connections on the accepting
// core's queue, pop from worker cores.
type Balancer = core.Guarded[net.Conn]

// NewBalancer builds a connection balancer over per-core queues.
func NewBalancer(cfg BalancerConfig) *Balancer {
	return core.NewGuarded[net.Conn](core.Config{
		Cores:      cfg.Cores,
		Backlog:    cfg.Backlog,
		StealRatio: cfg.StealRatio,
		HighPct:    cfg.HighPct,
		LowPct:     cfg.LowPct,
	})
}

// FlowTable maps flow groups (low source-port bits) to cores, as the
// paper programs the NIC's FDir table.
type FlowTable = core.FlowTable

// NewFlowTable builds a flow-group table spread over cores.
func NewFlowTable(groups, cores int) *FlowTable {
	return core.NewFlowTable(groups, cores)
}

// GuardedFlowTable is a mutex-protected FlowTable for concurrent use:
// acceptors route connections and charge per-group load while a
// migration loop re-points groups (see serve).
type GuardedFlowTable = core.GuardedFlowTable

// NewGuardedFlowTable builds a concurrency-safe flow-group table.
func NewGuardedFlowTable(groups, cores int) *GuardedFlowTable {
	return core.NewGuardedFlowTable(groups, cores)
}

// InitialFlowOwner reports which core a flow group is steered to before
// any migration — useful for load generators that construct skewed
// workloads against a fresh server.
func InitialFlowOwner(group, cores int) int { return core.InitialOwner(group, cores) }

// FlowKey is a TCP/IP five-tuple.
type FlowKey = core.FlowKey

// Server is a production TCP server applying Affinity-Accept's per-core
// accept queues and stealing policy to real connections: one
// SO_REUSEPORT listener per worker on Linux, a shared listener
// elsewhere.
type Server = serve.Server

// ServeConfig parameterizes NewServer; its Backlog, StealRatio and
// watermark fields mirror BalancerConfig.
type ServeConfig = serve.Config

// Handler serves one accepted connection and must close it.
type Handler = serve.Handler

// ServeStats is a Server counter snapshot (accepted, served locally,
// stolen, dropped, per-worker breakdown).
type ServeStats = serve.Stats

// WorkerStats is one worker's slice of ServeStats.
type WorkerStats = serve.WorkerStats

// NewServer creates a Server and binds its listeners; call Start to
// begin accepting and Shutdown to drain and stop.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }
