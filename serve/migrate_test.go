package serve

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"affinityaccept/internal/loadgen"
)

// dialHot opens a connection whose local (ephemeral) port hashes into
// the given flow group. This is how the tests and the benchmark
// construct the paper's skewed workload: every connection lands in a
// group owned by one worker.
func dialHot(t *testing.T, addr string, group, groups int) net.Conn {
	t.Helper()
	conn, err := loadgen.DialGroup(addr, group, groups)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

// requeueEcho builds a keep-alive handler: each pass reads msgLen
// bytes, spends `work` of service time, echoes them, and returns the
// connection to the server. Nonzero work is what makes a skewed
// workload overload its owning worker — a bare 8-byte echo is so cheap
// one worker keeps up with any number of closed-loop clients.
func requeueEcho(srv **Server, msgLen int, work time.Duration) Handler {
	return func(conn net.Conn) {
		buf := make([]byte, msgLen)
		if _, err := io.ReadFull(conn, buf); err != nil {
			conn.Close()
			return
		}
		if work > 0 {
			time.Sleep(work)
		}
		if _, err := conn.Write(buf); err != nil {
			conn.Close()
			return
		}
		if !(*srv).Requeue(conn) {
			conn.Close()
		}
	}
}

// runSkewedKeepAlive drives one server with the paper's §3.3.2 problem
// workload: long-lived connections, all hashing into flow groups owned
// by worker 0, each looping request/response for the window. It returns
// the final stats.
func runSkewedKeepAlive(t *testing.T, disableMigration bool) Stats {
	t.Helper()
	const (
		workers = 4
		groups  = 16
		conns   = 24
		msgLen  = 8
		window  = 400 * time.Millisecond
	)
	var srv *Server
	s, err := New(Config{
		Workers:          workers,
		FlowGroups:       groups,
		MigrateInterval:  2 * time.Millisecond,
		DisableMigration: disableMigration,
		Backlog:          workers * 64,
		HighPct:          20,
		LowPct:           5,
		Handler:          requeueEcho(&srv, msgLen, 200*time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Groups initially owned by worker 0.
	var hot []int
	base := loadgen.PortBase(groups)
	for g := 0; g < s.FlowGroups(); g++ {
		if s.OwnerOf(uint16(base+g)) == 0 {
			hot = append(hot, g)
		}
	}
	if len(hot) == 0 {
		t.Fatal("worker 0 owns no groups")
	}

	var wg sync.WaitGroup
	stop := time.Now().Add(window)
	for i := 0; i < conns; i++ {
		conn := dialHot(t, s.Addr().String(), hot[i%len(hot)], groups)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			msg := make([]byte, msgLen)
			for time.Now().Before(stop) {
				if _, err := conn.Write(msg); err != nil {
					return
				}
				if _, err := io.ReadFull(conn, msg); err != nil {
					return
				}
			}
		}(conn)
	}
	wg.Wait()
	return s.Stats()
}

// TestMigrationRescuesSkewedKeepAlive is the §3.3.2 headline: with all
// long-lived connections hashed into worker 0's flow groups, stealing
// alone serves most passes remotely forever; the migration loop
// re-points the hot groups at the stealing workers, so locality
// improves and the migration count is nonzero.
func TestMigrationRescuesSkewedKeepAlive(t *testing.T) {
	stealOnly := runSkewedKeepAlive(t, true)
	migrating := runSkewedKeepAlive(t, false)

	t.Logf("steal-only: locality %.1f%% migrations %d\n%s",
		stealOnly.LocalityPct(), stealOnly.Migrations, stealOnly)
	t.Logf("migrating:  locality %.1f%% migrations %d\n%s",
		migrating.LocalityPct(), migrating.Migrations, migrating)

	if stealOnly.Migrations != 0 {
		t.Errorf("DisableMigration run applied %d migrations", stealOnly.Migrations)
	}
	if migrating.Migrations == 0 {
		t.Fatal("migration run applied no migrations")
	}
	if migrating.LocalityPct() <= stealOnly.LocalityPct() {
		t.Errorf("migration did not improve locality: %.1f%% (migrating) vs %.1f%% (steal-only)",
			migrating.LocalityPct(), stealOnly.LocalityPct())
	}
	// The skew itself must have been real: the steal-only run relied on
	// remote serving.
	if stealOnly.ServedStolen == 0 {
		t.Error("steal-only run recorded no steals; workload was not skewed enough")
	}
}

// TestMigrationPausesWhileAllWorkersBusy drives balanceOnce directly
// against synthesized queue state: a worker that stole keeps the claim
// pending while it is itself busy, and applies it once its queue
// drains. This is §3.3.2's "only non-busy cores migrate" rule at the
// serve layer. The server is never started, so the queues are fully
// test-controlled.
func TestMigrationPausesWhileAllWorkersBusy(t *testing.T) {
	s, err := New(Config{
		Workers:          2,
		FlowGroups:       8,
		DisableMigration: true, // ticks are manual
		Backlog:          40,   // 20 per worker: high = 4, low = 1
		HighPct:          20,
		LowPct:           5,
		Handler:          echoHandler,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Never started, but New bound listeners; release them.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// Worker 0 crosses its high watermark; worker 1 steals from it.
	for i := 0; i < 6; i++ {
		s.bal.Push(0, nil)
	}
	if !s.bal.Busy(0) {
		t.Fatal("worker 0 not busy after overfilling its queue")
	}
	if _, from, ok := s.bal.Pop(1); !ok || from != 0 {
		t.Fatalf("worker 1 pop = (from %d, ok %v), want steal from 0", from, ok)
	}

	// Now worker 1 goes busy too: migration must pause entirely.
	for i := 0; i < 6; i++ {
		s.bal.Push(1, nil)
	}
	if !s.bal.Busy(1) {
		t.Fatal("worker 1 not busy")
	}
	if n := s.balanceOnce(); n != 0 {
		t.Fatalf("balance applied %d migrations while every worker was busy", n)
	}

	// Drain worker 1 and let its EWMA decay below the low watermark:
	// the pending claim applies on the next tick.
	for {
		if _, ok := s.bal.DiscardAt(1); !ok {
			break
		}
	}
	for i := 0; i < 1000 && s.bal.Busy(1); i++ {
		s.bal.ObserveIdle(1, 10)
	}
	if s.bal.Busy(1) {
		t.Fatal("worker 1 still busy after draining")
	}
	if n := s.balanceOnce(); n != 1 {
		t.Fatalf("balance applied %d migrations after worker 1 drained, want 1", n)
	}
	st := s.Stats()
	if st.Migrations != 1 {
		t.Errorf("stats migrations = %d, want 1", st.Migrations)
	}
	if st.Workers[1].MigratedIn != 1 {
		t.Errorf("worker 1 migrated-in = %d, want 1", st.Workers[1].MigratedIn)
	}
	if st.Workers[1].GroupsOwned != 5 || st.Workers[0].GroupsOwned != 3 {
		t.Errorf("groups owned = %d/%d, want 3/5 after one 0->1 migration",
			st.Workers[0].GroupsOwned, st.Workers[1].GroupsOwned)
	}
}

// TestRequeueRoutesToOwningWorker checks the keep-alive return path:
// every pass of an uncontended connection is served by the worker that
// owns its flow group.
func TestRequeueRoutesToOwningWorker(t *testing.T) {
	const groups = 8
	var srv *Server
	var mu sync.Mutex
	var passWorkers []int
	s, err := New(Config{
		Workers:          2,
		FlowGroups:       groups,
		DisableMigration: true,
		WorkerHandler: func(worker int, conn net.Conn) {
			buf := make([]byte, 4)
			if _, err := io.ReadFull(conn, buf); err != nil {
				conn.Close()
				return
			}
			mu.Lock()
			passWorkers = append(passWorkers, worker)
			mu.Unlock()
			if _, err := conn.Write(buf); err != nil {
				conn.Close()
				return
			}
			if !srv.Requeue(conn) {
				conn.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()

	conn := dialHot(t, s.Addr().String(), 3, groups)
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	localPort := conn.LocalAddr().(*net.TCPAddr).Port
	owner := s.OwnerOf(uint16(localPort))

	buf := make([]byte, 4)
	for pass := 0; pass < 3; pass++ {
		if _, err := conn.Write([]byte("ping")); err != nil {
			t.Fatalf("pass %d write: %v", pass, err)
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("pass %d read: %v", pass, err)
		}
	}
	conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(passWorkers) != 3 {
		t.Fatalf("served %d passes, want 3", len(passWorkers))
	}
	for pass, w := range passWorkers {
		if w != owner {
			t.Errorf("pass %d served by worker %d, want owner %d", pass, w, owner)
		}
	}
	if st := s.Stats(); st.Requeued < 2 {
		t.Errorf("requeued = %d, want >= 2", st.Requeued)
	}
}

// TestRequeueDuringShutdown covers the drain interaction: parked
// keep-alive connections are closed by Shutdown (the client sees EOF,
// the server does not hang), and Requeue refuses new parks once
// shutdown has begun.
func TestRequeueDuringShutdown(t *testing.T) {
	var srv *Server
	s, err := New(Config{
		Workers: 1,
		Handler: requeueEcho(&srv, 4, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// The connection is now parked server-side, waiting for the next
	// request that will never come.
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Requeued > 0 },
		"connection never requeued")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := conn.Read(buf); err == nil {
		t.Error("parked connection still open after shutdown")
	}

	// Requeue after shutdown is refused; the caller keeps ownership.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if s.Requeue(c1) {
		t.Error("Requeue accepted a connection after shutdown")
	}
}

// TestFlowGroupCountAblationRealServer runs the A4 ablation (§3.1,
// flow-group count) against the real server instead of the simulator:
// with a single group every connection clumps onto one worker, while
// larger counts spread accepts — the same shape the simulated A4 sweep
// reports.
func TestFlowGroupCountAblationRealServer(t *testing.T) {
	for _, groups := range []int{1, 8, 256} {
		s, err := New(Config{
			Workers:    2,
			FlowGroups: groups,
			Handler:    echoHandler,
		})
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		s.Start()
		burst(t, s.Addr().String(), 40)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = s.Shutdown(ctx)
		cancel()
		if err != nil {
			t.Fatalf("groups=%d shutdown: %v", groups, err)
		}
		st := s.Stats()
		if st.Served != 40 {
			t.Fatalf("groups=%d: served %d, want 40", groups, st.Served)
		}
		owned := 0
		for _, w := range st.Workers {
			owned += w.GroupsOwned
		}
		if owned != s.FlowGroups() {
			t.Errorf("groups=%d: owned sum %d != %d", groups, owned, s.FlowGroups())
		}
		if groups == 1 {
			// One group: every connection routes to its single owner.
			if st.Workers[0].Accepted+st.Workers[1].Accepted != 40 ||
				(st.Workers[0].Accepted != 0 && st.Workers[1].Accepted != 0) {
				t.Errorf("groups=1: accepts split %d/%d, want all on one worker",
					st.Workers[0].Accepted, st.Workers[1].Accepted)
			}
		}
		if groups == 256 {
			// Plenty of groups: ephemeral ports reach both workers.
			if st.Workers[0].Accepted == 0 || st.Workers[1].Accepted == 0 {
				t.Errorf("groups=256: accepts split %d/%d, want both workers used",
					st.Workers[0].Accepted, st.Workers[1].Accepted)
			}
		}
	}
}
