package serve

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestPinWorkersFallbackParity is the portable half of the pinning
// contract: with PinWorkers set, the server must serve identically
// whether pinning took or degraded — every worker either pinned to its
// expected CPU or cleanly unpinned (-1), with the two accounts summing
// to the worker count. On platforms without sched_setaffinity the whole
// run exercises the no-op fallback.
func TestPinWorkersFallbackParity(t *testing.T) {
	s, err := New(Config{
		Workers:    2,
		Handler:    echoHandler,
		PinWorkers: true,
		DisableObs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())

	burst(t, s.Addr().String(), 8)

	st := s.Stats()
	if st.PinnedWorkers+int(st.PinFailures) != s.Workers() {
		t.Fatalf("pin accounting: %d pinned + %d failed != %d workers",
			st.PinnedWorkers, st.PinFailures, s.Workers())
	}
	for i := 0; i < s.Workers(); i++ {
		cpu := s.PinnedCPU(i)
		if cpu == -1 {
			continue // degraded gracefully
		}
		if want := i % runtime.NumCPU(); cpu != want {
			t.Errorf("worker %d pinned to CPU %d, want %d", i, cpu, want)
		}
		if st.Workers[i].PinnedCPU != cpu {
			t.Errorf("worker %d: Stats PinnedCPU %d != accessor %d", i, st.Workers[i].PinnedCPU, cpu)
		}
	}
	if st.Served < 8 {
		t.Fatalf("served %d < 8 with PinWorkers set", st.Served)
	}
}

// TestPinWorkersOffReportsUnpinned: without the knob, every worker
// reports -1 and the stats carry no pinning line.
func TestPinWorkersOffReportsUnpinned(t *testing.T) {
	s, err := New(Config{Workers: 2, Handler: echoHandler, DisableObs: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())
	dialEcho(t, s.Addr().String(), 0)
	for i := 0; i < s.Workers(); i++ {
		if cpu := s.PinnedCPU(i); cpu != -1 {
			t.Errorf("worker %d reports CPU %d with pinning off", i, cpu)
		}
	}
	st := s.Stats()
	if st.PinnedWorkers != 0 || st.PinFailures != 0 {
		t.Errorf("pinning counters nonzero with pinning off: %d/%d", st.PinnedWorkers, st.PinFailures)
	}
}

// TestAdaptiveMigrationBacksOffAndSnapsBack drives the server's balance
// tick directly (as the migrate loop would) and checks the controller
// wiring end to end: idle converged ticks stretch the interval past the
// configured base, and Stats reports the backed-off value.
func TestAdaptiveMigrationBacksOffAndSnapsBack(t *testing.T) {
	base := 50 * time.Millisecond
	s, err := New(Config{
		Workers:           2,
		Handler:           echoHandler,
		AdaptiveMigration: true,
		MigrateInterval:   base,
		DisableMigration:  false,
		DisableObs:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	if got := s.Stats().AdaptiveInterval; got != base {
		t.Fatalf("initial adaptive interval %v, want %v", got, base)
	}
	// Three quiet ticks earn one doubling (ConvergedTicks = 3).
	for i := 0; i < 3; i++ {
		s.balanceOnce()
	}
	if got := s.Stats().AdaptiveInterval; got != 2*base {
		t.Fatalf("interval after 3 idle ticks = %v, want %v", got, 2*base)
	}
}

// TestAdaptiveMigrationDisabled: without the knob the interval stays
// fixed and Stats reports no adaptive state.
func TestAdaptiveMigrationDisabled(t *testing.T) {
	s, err := New(Config{Workers: 2, Handler: echoHandler, DisableObs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	s.balanceOnce()
	st := s.Stats()
	if st.AdaptiveInterval != 0 || st.FrozenGroups != 0 || st.GroupFreezes != 0 {
		t.Fatalf("adaptive state reported with controller off: %+v", st.AdaptiveInterval)
	}
}
