package serve

import (
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAddrWithoutListeners guards the nil path: a Server that never
// bound (zero value, or a construction that failed before listen)
// reports a nil address instead of panicking.
func TestAddrWithoutListeners(t *testing.T) {
	var s Server
	if addr := s.Addr(); addr != nil {
		t.Fatalf("Addr on an unbound server = %v, want nil", addr)
	}
}

// TestRequeueConcurrentWithShutdown races live keep-alive traffic —
// handlers calling Requeue, park goroutines pushing woken connections —
// against Shutdown. The existing coverage only shuts down after the
// traffic has settled into a parked state; here clients keep writing
// while Shutdown runs, so Requeue and park hit every phase of the
// closeAll / wait / drain sequence. The invariants: Shutdown returns
// within its deadline without force-closing, and every client observes
// a clean close rather than a hang.
func TestRequeueConcurrentWithShutdown(t *testing.T) {
	const (
		workers = 4
		conns   = 16
		msgLen  = 4
	)
	var srv *Server
	s, err := New(Config{
		Workers: workers,
		Handler: func(conn net.Conn) {
			buf := make([]byte, msgLen)
			if _, err := io.ReadFull(conn, buf); err != nil {
				conn.Close()
				return
			}
			if _, err := conn.Write(buf); err != nil {
				conn.Close()
				return
			}
			if !srv.Requeue(conn) {
				conn.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			msg := make([]byte, msgLen)
			// Write until the server's shutdown closes the connection
			// under us — parked connections read EOF, in-flight ones
			// are refused at Requeue and closed.
			for {
				if _, err := conn.Write(msg); err != nil {
					return
				}
				if _, err := io.ReadFull(conn, msg); err != nil {
					return
				}
			}
		}(conn)
	}

	// Let traffic flow so parks and requeues are genuinely in flight,
	// then shut down while the clients are still writing.
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Requeued >= conns },
		"requeue traffic never started")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with live requeue traffic: %v", err)
	}
	wg.Wait()

	// After shutdown, Requeue must refuse and leave ownership with the
	// caller.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if s.Requeue(c1) {
		t.Error("Requeue accepted a connection after shutdown")
	}
}

// TestParkSetCloseAllRacesRemove drives the parkSet's add / remove /
// closeAll paths from many goroutines at once — the exact interleaving
// Shutdown produces when park reads complete while closeAll walks the
// map. Under -race this proves the locking; in any mode it proves the
// contract: add never succeeds after closeAll, and wait returns only
// after every successful add was matched by done.
func TestParkSetCloseAllRacesRemove(t *testing.T) {
	for round := 0; round < 50; round++ {
		ps := newParkSet()
		const parkers = 8
		var added, finished atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < parkers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 20; j++ {
					c1, c2 := net.Pipe()
					p := &parkedConn{Conn: c1}
					if !ps.add(p) {
						c1.Close()
						c2.Close()
						return // closed: caller keeps ownership
					}
					added.Add(1)
					// Simulate the park read completing (remove) or the
					// connection dying while parked (closeAll already
					// closed it) — both end with done.
					ps.remove(p)
					finished.Add(1)
					ps.done()
					c1.Close()
					c2.Close()
				}
			}()
		}
		// Race closeAll into the middle of the adds.
		ps.closeAll()
		ps.wait()
		if got, want := finished.Load(), added.Load(); got < want {
			// wait returned while an accepted parker had not finished:
			// the Shutdown ordering guarantee would be broken.
			t.Fatalf("round %d: wait returned with %d of %d parks unfinished", round, want-got, want)
		}
		wg.Wait()
		if ps.add(&parkedConn{}) {
			t.Fatal("add succeeded after closeAll")
		}
	}
}
