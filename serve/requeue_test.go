package serve

import (
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAddrWithoutListeners guards the nil path: a Server that never
// bound (zero value, or a construction that failed before listen)
// reports a nil address instead of panicking.
func TestAddrWithoutListeners(t *testing.T) {
	var s Server
	if addr := s.Addr(); addr != nil {
		t.Fatalf("Addr on an unbound server = %v, want nil", addr)
	}
}

// TestRequeueConcurrentWithShutdown races live keep-alive traffic —
// handlers calling Requeue, park goroutines pushing woken connections —
// against Shutdown. The existing coverage only shuts down after the
// traffic has settled into a parked state; here clients keep writing
// while Shutdown runs, so Requeue and park hit every phase of the
// closeAll / wait / drain sequence. The invariants: Shutdown returns
// within its deadline without force-closing, and every client observes
// a clean close rather than a hang.
func TestRequeueConcurrentWithShutdown(t *testing.T) {
	const (
		workers = 4
		conns   = 16
		msgLen  = 4
	)
	var srv *Server
	s, err := New(Config{
		Workers: workers,
		Handler: func(conn net.Conn) {
			buf := make([]byte, msgLen)
			if _, err := io.ReadFull(conn, buf); err != nil {
				conn.Close()
				return
			}
			if _, err := conn.Write(buf); err != nil {
				conn.Close()
				return
			}
			if !srv.Requeue(conn) {
				conn.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			msg := make([]byte, msgLen)
			// Write until the server's shutdown closes the connection
			// under us — parked connections read EOF, in-flight ones
			// are refused at Requeue and closed.
			for {
				if _, err := conn.Write(msg); err != nil {
					return
				}
				if _, err := io.ReadFull(conn, msg); err != nil {
					return
				}
			}
		}(conn)
	}

	// Let traffic flow so parks and requeues are genuinely in flight,
	// then shut down while the clients are still writing.
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Requeued >= conns },
		"requeue traffic never started")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with live requeue traffic: %v", err)
	}
	wg.Wait()

	// After shutdown, Requeue must refuse and leave ownership with the
	// caller.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if s.Requeue(c1) {
		t.Error("Requeue accepted a connection after shutdown")
	}
}

// TestParkShedRacesWakeAndShutdown drives Requeue, the global LIFO
// shed, client wakes and Shutdown against each other — the exact
// interleavings the admission path produces when descriptor pressure
// sheds parked connections while their next request bytes are arriving.
// Under -race this proves the event-loop locking; in any mode it proves
// the contract: every client observes either its echo or a clean close
// (never a hang), nothing stays parked after Shutdown, and Requeue
// refuses afterwards.
func TestParkShedRacesWakeAndShutdown(t *testing.T) {
	const conns = 24
	var srv *Server
	s, err := New(Config{
		Workers: 4,
		Handler: func(conn net.Conn) {
			buf := make([]byte, 1)
			if _, err := io.ReadFull(conn, buf); err != nil {
				conn.Close()
				return
			}
			if _, err := conn.Write(buf); err != nil {
				conn.Close()
				return
			}
			if !srv.Requeue(conn) {
				conn.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()

	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			msg := []byte{'x'}
			for {
				if _, err := conn.Write(msg); err != nil {
					return // shed or shutdown closed us: clean exit
				}
				if _, err := io.ReadFull(conn, msg); err != nil {
					return
				}
			}
		}(conn)
	}

	// Race the global LIFO shed against the wake traffic.
	shedStop := make(chan struct{})
	var sheds atomic.Int64
	var shedWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		shedWG.Add(1)
		go func() {
			defer shedWG.Done()
			for {
				select {
				case <-shedStop:
					return
				default:
				}
				if s.shedNewestParked() {
					sheds.Add(1)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}

	waitFor(t, 5*time.Second, func() bool { return s.Stats().Requeued >= conns },
		"requeue traffic never started")
	time.Sleep(50 * time.Millisecond)
	close(shedStop)
	shedWG.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with shed/wake races in flight: %v", err)
	}
	wg.Wait()

	if sheds.Load() == 0 {
		t.Error("the shedding goroutines never reclaimed a parked connection")
	}
	if got := s.Parked(); got != 0 {
		t.Errorf("Parked() = %d after Shutdown, want 0", got)
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if s.Requeue(c1) {
		t.Error("Requeue accepted a connection after shutdown")
	}
}
