package serve

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
)

// TestPinWorkersAffinityMask is the Linux smoke test for worker
// pinning: handlers run inline on the worker goroutine, whose OS
// thread was locked and sched_setaffinity'd before the loop started,
// so reading the mask from inside a handler observes exactly what the
// kernel will schedule that worker on. Each pinned worker must report
// a single-CPU mask equal to worker % NumCPU. Skips when the
// environment (cgroup cpuset, restricted CI) refused every pin.
func TestPinWorkersAffinityMask(t *testing.T) {
	const workers = 2
	var mu sync.Mutex
	masks := make(map[int][]int) // worker -> mask seen inside its handler

	s, err := New(Config{
		Workers:    workers,
		PinWorkers: true,
		DisableObs: true,
		WorkerHandler: func(worker int, conn net.Conn) {
			if cpus, err := threadAffinity(); err == nil {
				mu.Lock()
				masks[worker] = cpus
				mu.Unlock()
			}
			echoHandler(conn)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())

	// Enough connections that both SO_REUSEPORT listeners are very
	// likely to have fielded at least one each; the assertion below
	// only inspects workers that actually ran a handler.
	burst(t, s.Addr().String(), 32)

	st := s.Stats()
	if st.PinnedWorkers == 0 {
		t.Skipf("no worker could be pinned (pin failures %d); cpuset-restricted environment", st.PinFailures)
	}

	mu.Lock()
	defer mu.Unlock()
	checked := 0
	for worker, mask := range masks {
		cpu := s.PinnedCPU(worker)
		if cpu < 0 {
			continue // this worker's pin was refused; fallback path
		}
		checked++
		want := worker % runtime.NumCPU()
		if cpu != want {
			t.Errorf("worker %d reports pinned CPU %d, want %d", worker, cpu, want)
		}
		if len(mask) != 1 || mask[0] != cpu {
			t.Errorf("worker %d thread affinity mask = %v, want [%d]", worker, mask, cpu)
		}
	}
	if checked == 0 {
		t.Skip("no pinned worker fielded a connection; nothing to assert")
	}
}

// TestSetThreadAffinityRejectsBadCPU: the syscall wrapper must reject
// an out-of-range CPU with an error rather than silently pinning to
// nothing, and must leave the calling thread usable afterwards.
func TestSetThreadAffinityRejectsBadCPU(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()

	before, err := threadAffinity()
	if err != nil {
		t.Fatalf("reading current affinity: %v", err)
	}
	if err := setThreadAffinity(cpuSetWords * 64); err == nil {
		t.Fatal("setThreadAffinity accepted an out-of-range CPU")
	}
	after, err := threadAffinity()
	if err != nil {
		t.Fatalf("reading affinity after failed set: %v", err)
	}
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Errorf("failed set changed the mask: %v -> %v", before, after)
	}
}
