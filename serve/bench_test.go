package serve

import (
	"context"
	"io"
	"net"
	"testing"
	"time"
)

// BenchmarkAcceptEcho measures the full accept path: dial, one echo
// round trip, close — the short-lived-connection regime where
// accept-queue locality (§3.2/§3.3.1) is the whole story.
func BenchmarkAcceptEcho(b *testing.B) {
	s, err := New(Config{Workers: 4, Handler: echoHandler})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	addr := s.Addr().String()
	msg := []byte("benchmark")
	buf := make([]byte, len(msg))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		conn.(*net.TCPConn).CloseWrite()
		if _, err := io.ReadFull(conn, buf); err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// BenchmarkRequeuePass measures one keep-alive pass through the
// Requeue path: park, wait-readable, re-route through the flow table,
// pop, handle — the long-lived-connection regime that flow-group
// migration (§3.3.2) optimizes.
func BenchmarkRequeuePass(b *testing.B) {
	var srv *Server
	s, err := New(Config{Workers: 2, Handler: requeueEcho(&srv, 8, 0)})
	if err != nil {
		b.Fatal(err)
	}
	srv = s
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Minute))
	msg := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(conn, msg); err != nil {
			b.Fatal(err)
		}
	}
}
