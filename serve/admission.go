package serve

import (
	"errors"
	"net"
	"sync/atomic"
	"syscall"

	"affinityaccept/internal/evloop"
	"affinityaccept/internal/obs"
)

// ParkCloseNotifier is implemented by connection values that want a
// prompt, synchronous callback when the *server* closes them while
// parked — the peer vanished mid-park, the shedding policy reclaimed
// the descriptor, or Shutdown swept the parked population. Application
// layers that index parked connections in their own registries (the
// wsaff shards) use it to unregister immediately instead of waiting
// for a keep-alive probe to discover the corpse. The callback runs on
// the goroutine doing the close (an event loop or an acceptor) and must
// not block; it is never invoked for connections the handler itself
// closes.
type ParkCloseNotifier interface {
	ParkClosed()
}

// fdPressureSheds is how many parked connections one EMFILE/ENFILE
// accept failure reclaims. More than one, because descriptor exhaustion
// is a global condition and a single freed fd would be re-consumed by
// the very next accept; a small batch gives the acceptor headroom.
const fdPressureSheds = 8

// isFDPressure reports whether an accept error means the process (or
// system) descriptor table is full — the condition shedding can fix.
func isFDPressure(err error) bool {
	return errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE)
}

// budgetConn wraps an accepted connection when MaxConns is set so the
// budget is released exactly once, wherever in the stack the final
// Close happens. It is the budget mode's one per-connection allocation
// — per connection, not per request, so the zero-alloc request gates
// are unaffected.
type budgetConn struct {
	net.Conn
	srv      *Server
	released atomic.Bool
}

func (b *budgetConn) Close() error {
	if b.released.CompareAndSwap(false, true) {
		b.srv.live.Add(-1)
	}
	return b.Conn.Close()
}

// NetConn exposes the wrapped connection, keeping the unwrap chain
// (parkedConn → httpaff conn → budgetConn → *net.TCPConn) walkable.
func (b *budgetConn) NetConn() net.Conn { return b.Conn }

// admitBudget charges one accepted connection to the budget. If the
// budget is exhausted it sheds the newest parked connection — closing
// it synchronously, so the descriptor and budget slot are free before
// this accept proceeds — and only rejects the newcomer when nothing is
// parked (every slot is doing work; shedding an *active* connection is
// never on the table). Returns the wrapped connection, or nil if it
// was rejected and closed.
func (s *Server) admitBudget(conn net.Conn) net.Conn {
	n := s.live.Add(1)
	if n > int64(s.cfg.MaxConns) {
		if !s.shedNewestParked() {
			s.live.Add(-1)
			s.budgetRejected.Add(1)
			conn.Close()
			return nil
		}
		s.shedParked.Add(1)
	}
	s.notePeak()
	return &budgetConn{Conn: conn, srv: s}
}

// notePeak folds the current live count into livePeak. Called after
// admission has settled, so the peak records budget-enforced reality:
// it can never exceed MaxConns.
func (s *Server) notePeak() {
	n := s.live.Load()
	for {
		peak := s.livePeak.Load()
		if n <= peak || s.livePeak.CompareAndSwap(peak, n) {
			return
		}
	}
}

// shedParkedConns closes up to n of the newest parked connections
// (LIFO) and reports how many it closed. The accept loop calls it on
// descriptor exhaustion; each close runs synchronously so the freed
// descriptors are available to the retried accept.
func (s *Server) shedParkedConns(n int) int {
	shed := 0
	for ; shed < n; shed++ {
		if !s.shedNewestParked() {
			break
		}
	}
	s.shedParked.Add(uint64(shed))
	return shed
}

// shedNewestParked closes the most recently parked connection in the
// whole server — the global LIFO victim. Park order is a monotonic
// sequence across the per-worker loops, so the victim is simply the
// loop head with the largest sequence: O(workers) per shed, against the
// old design's single global lock on every park. The close is
// synchronous (the caller gets the descriptor back before its next
// accept) and fires the victim's ParkCloseNotifier.
func (s *Server) shedNewestParked() bool {
	// Two attempts: between reading the heads and detaching, the chosen
	// loop's head can wake and drain; rescan once before giving up.
	for attempt := 0; attempt < 2; attempt++ {
		var best *evloop.Loop
		var bestWorker int
		var bestSeq uint64
		for i, l := range s.loops {
			if seq, ok := l.NewestSeq(); ok && (best == nil || seq > bestSeq) {
				best, bestWorker, bestSeq = l, i, seq
			}
		}
		if best == nil {
			return false
		}
		if c, ok := best.ShedNewest(); ok {
			p := c.(*parkedConn)
			// Sheds are rare, high-value decisions: control ring, where
			// park/wake churn can't overwrite them.
			port := remotePort(p.Conn)
			s.recordControl(bestWorker, obs.KindShed, s.GroupOfPort(port), port, 0, 0)
			s.closeParked(p)
			return true
		}
	}
	return false
}

// ChargeConn charges (delta > 0) or releases (delta < 0) descriptors
// the accept path cannot see against the connection budget — a reverse
// proxy's upstream tunnel leg is the motivating case: one CONNECT-style
// tunnel holds two descriptors but only the downstream one was counted
// at accept. Over-budget charges shed parked connections to make room
// but never fail: the descriptor already exists, so the budget adapts
// rather than lying. No-op when MaxConns is 0.
func (s *Server) ChargeConn(delta int) {
	if s.cfg.MaxConns == 0 || delta == 0 {
		return
	}
	n := s.live.Add(int64(delta))
	if delta < 0 {
		return
	}
	for over := n - int64(s.cfg.MaxConns); over > 0; over-- {
		if !s.shedNewestParked() {
			break
		}
		s.shedParked.Add(1)
	}
	s.notePeak()
}

// Overloaded reports whether every worker is over its §3.3.1 busy
// watermark — the saturation signal application layers use to shed
// fresh connections with backpressure (httpaff's 503-with-Retry-After)
// while established flows keep their workers. One lock acquisition;
// callers gate it to new-connection setup, not the per-request path.
func (s *Server) Overloaded() bool { return s.bal.AllBusy() }

// Live reports connections currently charged against the budget
// (0 when MaxConns is unset — budget accounting is off).
func (s *Server) Live() int64 { return s.live.Load() }

// LivePeak reports the high-water mark of Live. Budget enforcement
// happens before the peak is recorded, so LivePeak ≤ MaxConns is the
// server's no-overrun invariant, checkable from outside.
func (s *Server) LivePeak() int64 { return s.livePeak.Load() }
