package serve

import (
	"testing"
	"time"
)

// TestStatsStringGolden pins the exact rendering of the stats table —
// header/row alignment included — against a fixture wide enough to
// stress every column (11-digit accept counters, 8-digit parked
// populations). The header and row formats in stats.go share their
// widths by construction; this golden is the tripwire for the next
// column someone adds to one format but not the other.
func TestStatsStringGolden(t *testing.T) {
	st := Stats{
		Sharded:      true,
		FlowGroups:   512,
		Accepted:     12345678901,
		Served:       23456789012,
		ServedLocal:  21000000000,
		ServedStolen: 2456789012,
		Dropped:      42,
		Requeued:     9876543210,
		Migrations:   1234,
		Parked:       1000000,
		Queued:       7,
		Active:       64,

		Ratelimited:    5,
		ShedParked:     6,
		BudgetRejected: 7,
		AcceptRetries:  8,
		Live:           900000,
		LivePeak:       1000000,
		MaxConns:       1048576,

		Chips:               2,
		CrossChipSteals:     12345678,
		CrossChipMigrations: 617,
		StealEstCycles:      5679012345678,

		AdaptiveInterval: 400 * time.Millisecond,
		FrozenGroups:     2,
		GroupFreezes:     9,
		GroupUnfreezes:   7,

		PinnedWorkers: 1,
		PinFailures:   1,

		Pool:     PoolStats{Reuses: 999, Misses: 1, Drops: 3},
		Upstream: PoolStats{Reuses: 75, Misses: 25, Drops: 2},

		Workers: []WorkerStats{
			{
				Worker: 0, Chip: 0, PinnedCPU: 0, Accepted: 12345678901, ServedLocal: 21000000000,
				ServedStolen: 2456789012, StolenCross: 12345678, Active: 32, QueueDepth: 3,
				Parked: 12345678, GroupsOwned: 256, MigratedIn: 617,
				ClockLagUs: 49021, Busy: true,
				Pool:     PoolStats{Reuses: 999, Misses: 1},
				Upstream: PoolStats{Reuses: 75, Misses: 25},
			},
			{
				Worker: 1, Chip: 1, PinnedCPU: -1, GroupsOwned: 256,
			},
		},
	}

	const want = "" +
		"mode: SO_REUSEPORT per-worker listeners, 512 flow groups\n" +
		"accepted 12345678901  served 23456789012 (89.5% local)  stolen 2456789012  dropped 42  requeued 9876543210  parked 1000000  migrations 1234  queued 7  active 64\n" +
		"admission: ratelimited 5  shed-parked 6  budget-rejected 7  accept-retries 8  live 900000 (peak 1000000 / budget 1048576)\n" +
		"numa: 2 chips  cross-chip steals 12345678  cross-chip migrations 617  est steal cycles 5679012345678\n" +
		"adaptive: interval 400ms  frozen groups 2 (freezes 9, thaws 7)\n" +
		"pinning: 1 workers pinned, 1 failed\n" +
		"pools: 1000 gets, 99.9% reused from the worker-local free list (1 misses, 3 drops)\n" +
		"upstream: 100 checkouts, 75.0% reused from the worker-local pool (25 dials, 2 drops)\n" +
		"worker chip  cpu    accepted       local      stolen  x-steal  active  qdepth   parked  groups  migr-in   lag-us  busy   pool-get  reuse%     up-get  up-re%\n" +
		"0         0    0 12345678901 21000000000  2456789012 12345678      32       3 12345678     256      617    49021     *       1000    99.9        100    75.0\n" +
		"1         1    -           0           0           0        0       0       0        0     256        0        0                0   100.0          0   100.0\n"

	if got := st.String(); got != want {
		t.Errorf("stats rendering drifted from the golden:\ngot:\n%s\nwant:\n%s\ngot %q", got, want, got)
	}

	// A minimal snapshot (no pools, no admission knobs, no adaptive
	// controller, unpinned workers) must render only the core table.
	bare := Stats{FlowGroups: 8, Workers: []WorkerStats{{Worker: 0, PinnedCPU: -1, GroupsOwned: 8}}}
	const wantBare = "" +
		"mode: shared listener, 8 flow groups\n" +
		"accepted 0  served 0 (100.0% local)  stolen 0  dropped 0  requeued 0  parked 0  migrations 0  queued 0  active 0\n" +
		"worker chip  cpu    accepted       local      stolen  x-steal  active  qdepth   parked  groups  migr-in   lag-us  busy\n" +
		"0         0    -           0           0           0        0       0       0        0       8        0        0      \n"
	if got := bare.String(); got != wantBare {
		t.Errorf("bare stats rendering drifted:\ngot:\n%s\nwant:\n%s\ngot %q", got, wantBare, got)
	}
}
