package serve

import (
	"net"
	"sync"

	"affinityaccept/internal/stats"
)

// parkedConn wraps a requeued keep-alive connection while it waits for
// its next request. The park goroutine blocks on a one-byte read — the
// only portable "wait until readable" Go offers — and the byte is
// replayed to the handler through Read. The wrapper is reused across
// requeue passes so a long-lived connection never accretes nesting, and
// so is its parker goroutine: parkCh hands the connection back to one
// persistent per-connection goroutine (spawned on the first Requeue)
// instead of spawning a fresh goroutine per park, which would put a
// closure allocation on every keep-alive pass.
type parkedConn struct {
	net.Conn
	head      byte
	has       bool
	wakeBuf   [1]byte       // park's read scratch: a field, so the interface Read cannot heap-escape it per pass
	parkCh    chan struct{} // buffered(1): signals the parker to take ownership
	closeOnce sync.Once
}

// Close is the handler's half of the ownership contract: a handler
// finishes a connection either by a successful Requeue (the server owns
// it) or by Close — never both. Closing retires the persistent parker
// goroutine along with the transport connection.
func (p *parkedConn) Close() error {
	p.closeOnce.Do(func() { close(p.parkCh) })
	return p.Conn.Close()
}

// NetConn returns the connection the park wrapper wraps, mirroring
// (*tls.Conn).NetConn. Application layers stacked above Requeue (the
// httpaff server) wrap connections in their own state-carrying type and
// use NetConn to recover it on the passes after the first, when the
// handler receives the park wrapper instead of the original value.
func (p *parkedConn) NetConn() net.Conn { return p.Conn }

// InputPending reports whether replayable input — the park wake-up
// byte, or bytes a lower wrapper buffered — is queued ahead of the
// transport. Handlers that serve discrete protocol units per pass (the
// wsaff frame loop) use it to decide between reading and re-parking
// without risking a blocking read on a connection that sent nothing.
func (p *parkedConn) InputPending() bool {
	if p.has {
		return true
	}
	if ip, ok := p.Conn.(interface{ InputPending() bool }); ok {
		return ip.InputPending()
	}
	return false
}

func (p *parkedConn) Read(b []byte) (int, error) {
	if p.has {
		if len(b) == 0 {
			return 0, nil
		}
		b[0] = p.head
		p.has = false
		return 1, nil
	}
	return p.Conn.Read(b)
}

// parkSet tracks connections currently parked (waiting for their next
// request between requeue passes). Shutdown closes every parked
// connection — their park goroutines then unblock and exit — and waits
// for in-flight park goroutines to finish pushing before the worker
// drain begins, so no connection is pushed onto a queue after the
// workers have exited.
type parkSet struct {
	mu     sync.Mutex
	conns  map[*parkedConn]struct{}
	closed bool
	wg     sync.WaitGroup

	// parked gauges how many connections are waiting between passes
	// right now — the held-open population a long-lived workload (the
	// wsaff layer's mostly-idle sockets) keeps against the server.
	parked stats.Gauge
}

func newParkSet() *parkSet {
	return &parkSet{conns: make(map[*parkedConn]struct{})}
}

// add registers a connection about to park. It reports false — and
// registers nothing — once closeAll has run; the caller then still owns
// the connection.
func (ps *parkSet) add(p *parkedConn) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed {
		return false
	}
	ps.conns[p] = struct{}{}
	ps.wg.Add(1)
	ps.parked.Inc()
	return true
}

// remove unregisters a connection whose park read completed; the park
// goroutine still owns it until push or close, and must call done.
func (ps *parkSet) remove(p *parkedConn) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	delete(ps.conns, p)
	ps.parked.Dec()
}

func (ps *parkSet) done() { ps.wg.Done() }

// closeAll rejects future parks and closes every currently parked
// connection, unblocking their park reads.
func (ps *parkSet) closeAll() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.closed = true
	for p := range ps.conns {
		p.Conn.Close()
	}
}

// wait blocks until every in-flight park goroutine has finished
// (pushed its connection or closed it).
func (ps *parkSet) wait() { ps.wg.Wait() }

// Requeue returns a still-open connection to the server for another
// handler pass — the keep-alive path that makes flow-group migration
// matter (§3.3.2): each pass re-consults the flow table, so after a
// group migrates, the connection's next request is served by the new
// owning worker instead of being stolen remotely forever.
//
// The server parks the connection until its next request byte arrives,
// then routes it through the flow table onto the owning worker's queue;
// the handler sees the byte again. Requeue reports false when the
// server is shutting down — the caller then still owns the connection
// and must close it. After a successful Requeue the server owns the
// connection; if its queue overflows or the peer disconnects while
// parked, the server closes it.
func (s *Server) Requeue(conn net.Conn) bool {
	p, ok := conn.(*parkedConn)
	fresh := !ok
	if fresh {
		p = &parkedConn{Conn: conn, parkCh: make(chan struct{}, 1)}
	}
	if !s.parked.add(p) {
		return false // no parker spawned yet for a fresh conn: p is plain garbage
	}
	s.requeued.Add(1)
	if fresh {
		go s.parkLoop(p)
	}
	p.parkCh <- struct{}{}
	return true
}

// parkLoop is a connection's persistent parker: it owns the connection
// between a Requeue and the next request byte, once per signal on
// parkCh. It exits when the connection finishes — park saw EOF or shed
// it, or the handler Closed the wrapper (closing parkCh).
func (s *Server) parkLoop(p *parkedConn) {
	for range p.parkCh {
		if !s.park(p) {
			return
		}
	}
}

// park waits for the connection's next request byte, then routes it
// back into the balancer, reporting whether the connection is still
// live. A handler may requeue without having consumed the replayed byte
// (responding early, backpressure); that byte is still the next unread
// input, so the connection re-routes immediately instead of reading —
// and losing — a second byte.
func (s *Server) park(p *parkedConn) (alive bool) {
	defer s.parked.done()
	if !p.has {
		n, err := p.Conn.Read(p.wakeBuf[:])
		if err != nil || n == 0 {
			s.parked.remove(p)
			p.Conn.Close() // peer gone, or Shutdown closed us mid-park
			return false
		}
		p.head, p.has = p.wakeBuf[0], true
	}
	s.parked.remove(p)
	worker := s.route(p)
	if !s.bal.Push(worker, p) {
		p.Conn.Close() // queue overflow: shed load, as at accept time
		return false
	}
	s.wakeWorkers()
	return true
}
