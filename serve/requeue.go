package serve

import (
	"net"
	"sync"

	"affinityaccept/internal/stats"
)

// parkedConn wraps a requeued keep-alive connection while it waits for
// its next request. The park goroutine blocks on a one-byte read — the
// only portable "wait until readable" Go offers — and the byte is
// replayed to the handler through Read. The wrapper is reused across
// requeue passes so a long-lived connection never accretes nesting, and
// so is its parker goroutine: parkCh hands the connection back to one
// persistent per-connection goroutine (spawned on the first Requeue)
// instead of spawning a fresh goroutine per park, which would put a
// closure allocation on every keep-alive pass.
type parkedConn struct {
	net.Conn
	head      byte
	has       bool
	wakeBuf   [1]byte       // park's read scratch: a field, so the interface Read cannot heap-escape it per pass
	parkCh    chan struct{} // buffered(1): signals the parker to take ownership
	closeOnce sync.Once

	// newer/older link the connection into the parkSet's intrusive
	// park-order list (guarded by parkSet.mu). The list is what makes
	// LIFO shedding O(1): under descriptor or budget pressure the
	// *newest* parked connection is reclaimed, so the longest-idle
	// survivors — the ones whose continued existence is cheapest and
	// whose flow-group state is warmest — are kept.
	newer, older *parkedConn
}

// Close is the handler's half of the ownership contract: a handler
// finishes a connection either by a successful Requeue (the server owns
// it) or by Close — never both. Closing retires the persistent parker
// goroutine along with the transport connection.
func (p *parkedConn) Close() error {
	p.closeOnce.Do(func() { close(p.parkCh) })
	return p.Conn.Close()
}

// NetConn returns the connection the park wrapper wraps, mirroring
// (*tls.Conn).NetConn. Application layers stacked above Requeue (the
// httpaff server) wrap connections in their own state-carrying type and
// use NetConn to recover it on the passes after the first, when the
// handler receives the park wrapper instead of the original value.
func (p *parkedConn) NetConn() net.Conn { return p.Conn }

// InputPending reports whether replayable input — the park wake-up
// byte, or bytes a lower wrapper buffered — is queued ahead of the
// transport. Handlers that serve discrete protocol units per pass (the
// wsaff frame loop) use it to decide between reading and re-parking
// without risking a blocking read on a connection that sent nothing.
func (p *parkedConn) InputPending() bool {
	if p.has {
		return true
	}
	if ip, ok := p.Conn.(interface{ InputPending() bool }); ok {
		return ip.InputPending()
	}
	return false
}

func (p *parkedConn) Read(b []byte) (int, error) {
	if p.has {
		if len(b) == 0 {
			return 0, nil
		}
		b[0] = p.head
		p.has = false
		return 1, nil
	}
	return p.Conn.Read(b)
}

// parkSet tracks connections currently parked (waiting for their next
// request between requeue passes). Shutdown closes every parked
// connection — their park goroutines then unblock and exit — and waits
// for in-flight park goroutines to finish pushing before the worker
// drain begins, so no connection is pushed onto a queue after the
// workers have exited.
type parkSet struct {
	mu     sync.Mutex
	conns  map[*parkedConn]struct{}
	newest *parkedConn // head of the intrusive LIFO list (park order)
	closed bool
	wg     sync.WaitGroup

	// parked gauges how many connections are waiting between passes
	// right now — the held-open population a long-lived workload (the
	// wsaff layer's mostly-idle sockets) keeps against the server.
	parked stats.Gauge
}

func newParkSet() *parkSet {
	return &parkSet{conns: make(map[*parkedConn]struct{})}
}

// add registers a connection about to park. It reports false — and
// registers nothing — once closeAll has run; the caller then still owns
// the connection.
func (ps *parkSet) add(p *parkedConn) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.closed {
		return false
	}
	ps.conns[p] = struct{}{}
	p.older = ps.newest
	p.newer = nil
	if ps.newest != nil {
		ps.newest.newer = p
	}
	ps.newest = p
	ps.wg.Add(1)
	ps.parked.Inc()
	return true
}

// remove unregisters a connection whose park read completed and reports
// whether it was still registered — false means the shedding policy
// reclaimed (and closed) it first, and the caller must not route it.
// On true the park goroutine still owns it until push or close, and
// must call done.
func (ps *parkSet) remove(p *parkedConn) bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, ok := ps.conns[p]; !ok {
		return false
	}
	ps.removeLocked(p)
	return true
}

func (ps *parkSet) removeLocked(p *parkedConn) {
	delete(ps.conns, p)
	if p.newer != nil {
		p.newer.older = p.older
	} else {
		ps.newest = p.older
	}
	if p.older != nil {
		p.older.newer = p.newer
	}
	p.newer, p.older = nil, nil
	ps.parked.Dec()
}

// shedNewest unregisters and closes the most recently parked
// connection — the LIFO victim — reporting whether there was one. The
// close is synchronous, so the caller (an acceptor under fd or budget
// pressure) gets the descriptor back before its next accept; the
// victim's parker then wakes with a read error and retires itself, and
// any ParkCloseNotifier fires from there.
func (ps *parkSet) shedNewest() bool {
	ps.mu.Lock()
	p := ps.newest
	if p != nil {
		ps.removeLocked(p)
	}
	ps.mu.Unlock()
	if p == nil {
		return false
	}
	p.Conn.Close()
	return true
}

func (ps *parkSet) done() { ps.wg.Done() }

// closeAll rejects future parks and closes every currently parked
// connection, unblocking their park reads.
func (ps *parkSet) closeAll() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.closed = true
	for p := range ps.conns {
		p.Conn.Close()
	}
}

// wait blocks until every in-flight park goroutine has finished
// (pushed its connection or closed it).
func (ps *parkSet) wait() { ps.wg.Wait() }

// Requeue returns a still-open connection to the server for another
// handler pass — the keep-alive path that makes flow-group migration
// matter (§3.3.2): each pass re-consults the flow table, so after a
// group migrates, the connection's next request is served by the new
// owning worker instead of being stolen remotely forever.
//
// The server parks the connection until its next request byte arrives,
// then routes it through the flow table onto the owning worker's queue;
// the handler sees the byte again. Requeue reports false when the
// server is shutting down — the caller then still owns the connection
// and must close it. After a successful Requeue the server owns the
// connection; if its queue overflows or the peer disconnects while
// parked, the server closes it.
func (s *Server) Requeue(conn net.Conn) bool {
	p, ok := conn.(*parkedConn)
	fresh := !ok
	if fresh {
		p = &parkedConn{Conn: conn, parkCh: make(chan struct{}, 1)}
	}
	if !s.parked.add(p) {
		return false // no parker spawned yet for a fresh conn: p is plain garbage
	}
	s.requeued.Add(1)
	if fresh {
		go s.parkLoop(p)
	}
	p.parkCh <- struct{}{}
	return true
}

// parkLoop is a connection's persistent parker: it owns the connection
// between a Requeue and the next request byte, once per signal on
// parkCh. It exits when the connection finishes — park saw EOF or shed
// it, or the handler Closed the wrapper (closing parkCh).
func (s *Server) parkLoop(p *parkedConn) {
	for range p.parkCh {
		if !s.park(p) {
			return
		}
	}
}

// park waits for the connection's next request byte, then routes it
// back into the balancer, reporting whether the connection is still
// live. A handler may requeue without having consumed the replayed byte
// (responding early, backpressure); that byte is still the next unread
// input, so the connection re-routes immediately instead of reading —
// and losing — a second byte.
func (s *Server) park(p *parkedConn) (alive bool) {
	defer s.parked.done()
	if !p.has {
		n, err := p.Conn.Read(p.wakeBuf[:])
		if err != nil || n == 0 {
			s.parked.remove(p)
			p.Conn.Close() // peer gone, shed, or Shutdown closed us mid-park
			notifyParkClosed(p.Conn)
			return false
		}
		p.head, p.has = p.wakeBuf[0], true
	}
	if !s.parked.remove(p) {
		// Shedding reclaimed this connection between its wake-up byte
		// and here; it is already closed. Do not route a corpse.
		p.Conn.Close()
		notifyParkClosed(p.Conn)
		return false
	}
	worker := s.route(p)
	if !s.bal.Push(worker, p) {
		p.Conn.Close() // queue overflow: shed load, as at accept time
		notifyParkClosed(p.Conn)
		return false
	}
	s.wakeWorkers()
	return true
}

// notifyParkClosed fires the connection's ParkCloseNotifier, if it has
// one, after a server-side close of a parked connection. Exactly one
// call per connection: every parked connection that dies does so
// through its parker's exit path above, whichever policy (peer EOF,
// shed, shutdown, queue overflow) pulled the trigger.
func notifyParkClosed(c net.Conn) {
	if n, ok := c.(ParkCloseNotifier); ok {
		n.ParkClosed()
	}
}
