package serve

import (
	"net"
	"time"

	"affinityaccept/internal/evloop"
	"affinityaccept/internal/obs"
)

// forcePortableParking makes New build its park loops without the
// platform poller, so every parked connection runs the portable
// parker-goroutine path. Tests flip it to prove the two evloop
// implementations are behaviorally identical.
var forcePortableParking = false

// ParkDeadliner is implemented by connection values that carry an idle
// deadline for their parked phase. Requeue consults the outermost
// implementation in the wrapper chain at park time; a parked connection
// whose deadline passes is closed by its worker's event-loop sweep (and
// its ParkCloseNotifier fires). The httpaff layer implements it from
// Config.IdleTimeout. A zero deadline means the connection may park
// forever — the million-held-sockets configuration.
type ParkDeadliner interface {
	ParkDeadline() time.Time
}

// parkedConn wraps a requeued keep-alive connection while it waits for
// its next request on a worker's event loop. The wrapper is reused
// across requeue passes so a long-lived connection never accretes
// nesting, and its evloop.Handle is embedded by value, so parking
// allocates nothing after the first pass. On Linux the handle is an
// epoll registration — a million parked sockets cost O(workers)
// goroutines; descriptorless transports (net.Pipe in tests) and
// non-Linux builds fall back to the handle's parker goroutine.
type parkedConn struct {
	net.Conn
	h evloop.Handle

	// loop is the index of the last loop the connection parked on.
	// While the handle holds a persistent poller registration the
	// connection must keep parking there — its readability events
	// arrive on that loop — even if its flow group has since migrated;
	// the wake path re-routes through the flow table regardless, so
	// migration semantics don't depend on the park loop. -1 until the
	// first park.
	loop int32

	// armedAt is the obs.Nanos timestamp of the last slow-path park, 0
	// when the connection took the ReadyNow fast path (no park
	// happened). Written strictly before Arm and read after the loop's
	// delivery, so the loop's mutex orders the accesses; the wake path
	// turns it into the park-duration histogram sample.
	armedAt int64
}

// Close is the handler's half of the ownership contract: a handler
// finishes a connection either by a successful Requeue (the server owns
// it) or by Close — never both. Closing retires the handle's fallback
// parker goroutine, if it ever grew one, along with the transport
// connection.
func (p *parkedConn) Close() error {
	p.h.Retire()
	return p.Conn.Close()
}

// NetConn returns the connection the park wrapper wraps, mirroring
// (*tls.Conn).NetConn. Application layers stacked above Requeue (the
// httpaff server) wrap connections in their own state-carrying type and
// use NetConn to recover it on the passes after the first, when the
// handler receives the park wrapper instead of the original value.
func (p *parkedConn) NetConn() net.Conn { return p.Conn }

// CoarseNow exposes the owning worker's coarse clock — stamped once per
// event-loop iteration instead of a time.Now call per request. Layers
// above use it to arm idle and read deadlines cheaply; it lags the wall
// clock by at most one loop iteration (~50ms).
func (p *parkedConn) CoarseNow() time.Time { return p.h.Clock() }

// InputPending reports whether replayable input — a fallback wake-up
// byte, poller-reported readability, or bytes a lower wrapper buffered
// — is queued ahead of the transport. Handlers that serve discrete
// protocol units per pass (the wsaff frame loop) use it to decide
// between reading and re-parking without risking a blocking read on a
// connection that sent nothing.
func (p *parkedConn) InputPending() bool {
	if p.h.Pending() {
		return true
	}
	if ip, ok := p.Conn.(interface{ InputPending() bool }); ok {
		return ip.InputPending()
	}
	return false
}

func (p *parkedConn) Read(b []byte) (int, error) {
	if n, ok := p.h.Replay(b); ok {
		return n, nil
	}
	p.h.ClearReadable()
	return p.Conn.Read(b)
}

// Requeue returns a still-open connection to the server for another
// handler pass — the keep-alive path that makes flow-group migration
// matter (§3.3.2): each pass re-consults the flow table, so after a
// group migrates, the connection's next request is served by the new
// owning worker instead of being stolen remotely forever.
//
// The connection parks on the event loop of the worker currently owning
// its flow group; when its next request bytes arrive the loop re-routes
// it through the flow table onto the (possibly different, post-
// migration) owner's queue. Requeue reports false when the server is
// shutting down — the caller then still owns the connection and must
// close it. After a successful Requeue the server owns the connection;
// if its queue overflows, its park deadline passes, or the peer
// disconnects while parked, the server closes it.
func (s *Server) Requeue(conn net.Conn) bool {
	p, ok := conn.(*parkedConn)
	if !ok {
		p = &parkedConn{Conn: conn, loop: -1}
		p.h.Init(p)
	}
	// Fast path: a pipelined client's next request (or its EOF) has
	// usually arrived by the time the handler requeues. One MSG_PEEK
	// detects that and routes the connection straight back onto the
	// owning worker's queue — no epoll registration, no loop-goroutine
	// hop. The Closed guard keeps shutdown's contract: once the loops
	// have closed, Requeue refuses rather than feeding the drained
	// queues forever. (Loops close together; checking the first is
	// enough, and Arm re-checks its own loop authoritatively.)
	if !s.loops[0].Closed() && p.h.ReadyNow() {
		p.armedAt = 0 // no park: the wake path must not bill a duration
		s.requeued.Add(1)
		s.parkWake(p)
		return true
	}
	w := s.parkWorker(p)
	if s.obs != nil {
		p.armedAt = obs.Nanos()
	}
	// p.loop (like armedAt) must be written before Arm publishes the
	// handle: the loop-side callbacks read both, and Arm's mutex is the
	// happens-before edge that makes the plain fields safe.
	p.loop = int32(w)
	if !s.loops[w].Arm(&p.h, parkDeadline(p.Conn)) {
		return false // shutting down: nothing registered, p is plain garbage when fresh
	}
	s.requeued.Add(1)
	port := remotePort(p.Conn)
	s.RecordGroupEvent(w, obs.KindPark, s.GroupOfPort(port), port, 0, 0)
	return true
}

// parkWorker picks the loop a connection parks on: the worker that owns
// its flow group right now — unless the handle already holds a poller
// registration, which pins it to the registration's loop (arming a
// registered handle elsewhere would split its list and event state
// across two loops). No load is charged here — the charge happens at
// wake time, in route, so a group that migrates while the connection is
// parked bills the wake to the new owner either way.
func (s *Server) parkWorker(p *parkedConn) int {
	if p.loop >= 0 && p.h.Registered() {
		return int(p.loop)
	}
	if addr, ok := p.RemoteAddr().(*net.TCPAddr); ok {
		return s.flow.CoreForPort(uint16(addr.Port))
	}
	return int(s.rr.Add(1)-1) % s.cfg.Workers
}

// parkDeadline finds the wrapper chain's ParkDeadliner, if any.
func parkDeadline(c net.Conn) time.Time {
	for c != nil {
		if d, ok := c.(ParkDeadliner); ok {
			return d.ParkDeadline()
		}
		u, ok := c.(interface{ NetConn() net.Conn })
		if !ok {
			break
		}
		c = u.NetConn()
	}
	return time.Time{}
}

// parkWake is the loops' Ready callback: a parked connection's next
// request bytes arrived. Route it through the flow table — the same
// authority accept-time routing uses, so a group that migrated while
// the connection was parked steers it to its new owner — and push it
// onto that worker's queue.
func (s *Server) parkWake(c net.Conn) {
	p := c.(*parkedConn)
	group, worker := s.route(p)
	if s.obs != nil {
		if at := p.armedAt; at != 0 {
			p.armedAt = 0
			d := obs.Nanos() - at
			s.obs.park[worker].Record(d)
			port := remotePort(p.Conn)
			s.RecordGroupEvent(worker, obs.KindWake, group, port, d, 0)
			if p.loop >= 0 && int(p.loop) != worker {
				// The flow group migrated while the connection was
				// parked: it woke on its park loop but routes to the
				// group's new owner — the moment §3.3.2 pays off for a
				// requeued connection. C carries the distance verdict:
				// 1 when the park loop and the new owner live on
				// different chips of the configured topology, i.e. the
				// reroute crossed the Table 1 RemoteL3 line.
				var cross int64
				if s.crossChip(int(p.loop), worker) {
					cross = 1
				}
				s.RecordGroupEvent(worker, obs.KindReroute, group, port, int64(p.loop), cross)
			}
		}
	}
	if !s.bal.Push(worker, p) {
		s.closeParked(p) // queue overflow: shed load, as at accept time
		return
	}
	s.wakeWorkers()
}

// parkDead is the loops' Dead callback: the loop gave up on a parked
// connection — peer gone, park deadline expired, or shutdown swept it.
func (s *Server) parkDead(c net.Conn) {
	p := c.(*parkedConn)
	if w := int(p.loop); w >= 0 {
		port := remotePort(p.Conn)
		s.RecordGroupEvent(w, obs.KindParkDead, s.GroupOfPort(port), port, 0, 0)
	}
	s.closeParked(p)
}

// closeParked closes a parked connection server-side and fires its
// ParkCloseNotifier. Every parked connection that dies does so through
// here (or through a handler that received it back), so the notifier
// fires exactly once whichever policy — peer EOF, deadline, shed,
// shutdown, queue overflow — pulled the trigger.
func (s *Server) closeParked(p *parkedConn) {
	p.Close()
	notifyParkClosed(p.Conn)
}

// notifyParkClosed fires the connection's ParkCloseNotifier, if it has
// one, after a server-side close of a parked connection.
func notifyParkClosed(c net.Conn) {
	if n, ok := c.(ParkCloseNotifier); ok {
		n.ParkClosed()
	}
}
