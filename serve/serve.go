// Package serve is the production half of the Affinity-Accept
// reproduction: a real TCP server built on the paper's per-core accept
// queues (§3.2), connection-stealing policy (§3.3.1) and flow-group
// migration (§3.3.2).
//
// On Linux the server opens one SO_REUSEPORT listener per worker, so
// the kernel gives every worker its own accept queue — the user-space
// equivalent of the paper's per-core clone sockets. Each accepted
// connection's remote port is hashed into a flow group (the paper's
// low-source-port-bits FDir groups, §3.1) and the connection is pushed
// onto the queue of the worker that currently *owns* that group, in a
// core.Guarded balancer. Workers pop with the paper's policy: local
// connections preferred, one remote steal per StealRatio local accepts
// when some other worker is over its high watermark. A stalled worker's
// backlog is therefore drained by idle workers instead of timing out.
//
// Stealing alone leaves a long-lived connection remote forever: every
// keep-alive pass re-enters the overloaded owner's queue and is stolen
// again. The migration loop fixes that — every MigrateInterval, each
// non-busy worker re-points the hottest flow group of the victim it
// stole from most at itself (§3.3.2), so subsequent connections in that
// group, and requeued keep-alive connections returned via
// Server.Requeue, land locally.
//
// Between requests a keep-alive connection parks on the event loop of
// the worker owning its flow group (internal/evloop): one epoll
// instance per worker owns readability for that worker's whole parked
// population, so a million held-open sockets cost O(workers)
// goroutines, not O(connections). Each loop also stamps a coarse
// per-worker clock once per iteration, which the layers above use for
// deadlines instead of calling time.Now per request.
//
// On other platforms, or when SO_REUSEPORT is unavailable, the server
// falls back to a single shared listener; connections are still routed
// through the same flow-group table, so locality and migration stats
// stay meaningful.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/internal/admit"
	"affinityaccept/internal/core"
	"affinityaccept/internal/evloop"
	"affinityaccept/internal/obs"
	"affinityaccept/internal/sched"
)

// Handler serves one accepted connection. The handler owns the
// connection and must close it.
type Handler func(conn net.Conn)

// WorkerHandler is an optional Handler variant that also receives the
// index of the worker serving the connection, for per-worker state
// (caches, buffers, CPU pinning checks) or tests that stall one worker.
type WorkerHandler func(worker int, conn net.Conn)

// Config parameterizes a Server. Handler or WorkerHandler is required;
// everything else has working defaults.
type Config struct {
	// Network and Addr are passed to net.Listen ("tcp", ":0" style).
	// Network defaults to "tcp", Addr to "127.0.0.1:0".
	Network string
	Addr    string

	// Workers is the number of worker goroutines and (on Linux) of
	// SO_REUSEPORT listeners. 0 means GOMAXPROCS.
	Workers int

	// Handler serves each connection. Exactly one of Handler and
	// WorkerHandler must be set.
	Handler Handler
	// WorkerHandler, if set, is used instead of Handler.
	WorkerHandler WorkerHandler

	// Backlog bounds queued-but-unserved connections across all
	// workers (0 = 128 per worker, the paper's effective per-core
	// range). Connections pushed onto a full worker queue are closed.
	Backlog int
	// StealRatio is local accepts per remote steal on a non-busy
	// worker (0 = the paper's 5).
	StealRatio int
	// HighPct / LowPct are the busy watermarks in percent of the
	// per-worker queue bound (0 = the paper's 75 and 10).
	HighPct, LowPct float64

	// DisableReusePort forces the single-shared-listener fallback even
	// on Linux. Connections are still routed through the flow-group
	// table, exactly as in sharded mode.
	DisableReusePort bool

	// FlowGroups is the number of flow groups connections are hashed
	// into by the low bits of their remote port, rounded up to a power
	// of two (0 = the paper's 4,096, §3.1).
	FlowGroups int
	// MigrateInterval is how often each non-busy worker considers
	// claiming one flow group from the victim it stole from most
	// (0 = the paper's 100ms, §3.3.2).
	MigrateInterval time.Duration
	// DisableMigration turns the migration loop off, leaving accept-time
	// stealing as the only balancing mechanism (the paper's §3.3.1-only
	// configuration; useful for A/B comparison).
	DisableMigration bool
	// AdaptiveMigration replaces the fixed MigrateInterval ticker with
	// the internal/sched controller: the interval starts at
	// MigrateInterval and doubles (up to 8x) while the per-tick locality
	// ratio stays converged, snapping back the moment migrations fire or
	// locality degrades; flow groups caught ping-ponging between two
	// owners are frozen for a cooldown so the rest of the table keeps
	// balancing. Ignored when DisableMigration is set.
	AdaptiveMigration bool

	// MaxConns, when positive, is the server's connection budget: the
	// maximum number of accepted connections (plus descriptors charged
	// via ChargeConn, e.g. proxy tunnel upstreams) alive at once. An
	// accept that would exceed the budget sheds the newest parked
	// keep-alive connection to make room — LIFO, so the longest-idle
	// survivors keep their warm state — and is rejected outright only
	// when nothing is parked. 0 means unlimited (and the accept path
	// skips budget accounting entirely).
	MaxConns int
	// PerIPAcceptRate, when positive, limits each client IP to this
	// many accepted connections per second (burst PerIPAcceptBurst).
	// Each acceptor owns a private lock-free bucket array — no state is
	// shared between workers, mirroring the paper's no-shared-state
	// accept path — so under SO_REUSEPORT a single IP sprayed across
	// all listeners is effectively allowed Workers× the configured
	// rate; set the rate with that in mind. Over-rate connections are
	// closed immediately after accept, before any routing or handler
	// work. 0 disables per-IP limiting.
	PerIPAcceptRate float64
	// PerIPAcceptBurst is the per-IP bucket depth (0 = max(8, rate)).
	PerIPAcceptBurst int

	// WorkerPool, if set, is called by Stats with each worker index and
	// reports that worker's application-layer object-pool counters. The
	// httpaff layer wires its worker-local arenas through this, so the
	// same snapshot that proves connections stay local (ServedLocal)
	// also proves the memory behind them does (pool reuse rate).
	WorkerPool func(worker int) PoolStats

	// WorkerUpstream, if set, reports each worker's upstream
	// connection-pool counters — the outbound dual of WorkerPool. The
	// proxyaff layer wires its per-worker backend pools through this, so
	// one Stats snapshot covers the whole core-local path: inbound
	// locality (ServedLocal), request memory (Pool) and upstream
	// connection reuse (Upstream).
	WorkerUpstream func(worker int) PoolStats

	// EventRingSize is the per-worker control-plane event ring's slot
	// count, rounded up to a power of two (0 = 1024). One extra ring of
	// the same size holds the rare migrate/shed events so worker-ring
	// churn cannot evict them.
	EventRingSize int
	// HistSubBits sets the latency-histogram resolution: 2^HistSubBits
	// sub-buckets per power of two, a worst-case relative quantile
	// error of 2^-HistSubBits (0 = 4, i.e. 6.25%; max 8).
	HistSubBits int
	// DisableObs turns the observability plane off entirely: no event
	// rings, no serve-layer histograms, and the hot paths skip even the
	// clock reads that feed them.
	DisableObs bool
	// Chips is the chip count of the topology the NUMA attribution pass
	// prices steals and migrations against: workers split contiguously
	// into Chips chips (worker w lives on chip w/(Workers/Chips), like
	// internal/mem's Machine.Chip), and a hop whose two workers land on
	// different chips is counted cross-chip at the paper's Table 1
	// RemoteL3 latency instead of L3. 0 or 1 means a flat single-chip
	// machine — every hop same-chip. With Chips > 1 the same topology
	// also orders the steal path (see DisableDistanceAware); the
	// accounting model and the policy always agree on who is remote.
	Chips int
	// DisableDistanceAware drops the topology from the steal path: with
	// Chips > 1 the balancer normally scans victims in non-decreasing
	// chip-distance order (same-chip victims first, round-robin within
	// each distance tier); disabling reverts to the paper's flat
	// wraparound scan while keeping the cross-chip *accounting*. The
	// ablation arm of the distance-aware A/B.
	DisableDistanceAware bool
	// PinWorkers pins each worker goroutine's OS thread to CPU
	// worker%NumCPU via sched_setaffinity (Linux; a no-op that reports
	// unpinned elsewhere), so the serve worker really is the paper's
	// "one core" and the Chips topology can describe physical placement.
	// Pinning failures (cgroup cpuset restrictions, exotic sandboxes)
	// degrade gracefully: the worker runs unpinned and PinnedCPU
	// reports -1.
	PinWorkers bool
}

func (c *Config) fill() error {
	if c.Handler == nil && c.WorkerHandler == nil {
		return errors.New("serve: Config.Handler or Config.WorkerHandler is required")
	}
	if c.Handler != nil && c.WorkerHandler != nil {
		return errors.New("serve: set only one of Handler and WorkerHandler")
	}
	if c.Network == "" {
		c.Network = "tcp"
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	// Validate the watermarks here so New returns an error instead of
	// letting core.NewQueues panic on a bad combination.
	high, low := c.HighPct, c.LowPct
	if high == 0 {
		high = core.DefaultHighPct
	}
	if low == 0 {
		low = core.DefaultLowPct
	}
	if high < 0 || high > 100 || low < 0 || low >= high {
		return fmt.Errorf("serve: watermarks must satisfy 0 <= low < high <= 100, got low %v%% high %v%%", low, high)
	}
	if c.Backlog < 0 || c.StealRatio < 0 {
		return errors.New("serve: Backlog and StealRatio must be non-negative")
	}
	if c.FlowGroups < 0 || c.MigrateInterval < 0 {
		return errors.New("serve: FlowGroups and MigrateInterval must be non-negative")
	}
	if c.FlowGroups == 0 {
		c.FlowGroups = core.DefaultFlowGroups
	}
	if c.MaxConns < 0 || c.PerIPAcceptRate < 0 || c.PerIPAcceptBurst < 0 {
		return errors.New("serve: MaxConns, PerIPAcceptRate and PerIPAcceptBurst must be non-negative")
	}
	if c.EventRingSize < 0 || c.HistSubBits < 0 {
		return errors.New("serve: EventRingSize and HistSubBits must be non-negative")
	}
	if c.Chips < 0 {
		return errors.New("serve: Chips must be non-negative")
	}
	if c.Chips > c.Workers {
		c.Chips = c.Workers
	}
	if c.PerIPAcceptRate > 0 && c.PerIPAcceptBurst == 0 {
		c.PerIPAcceptBurst = 8
		if r := int(c.PerIPAcceptRate); r > 8 {
			c.PerIPAcceptBurst = r
		}
	}
	if c.MigrateInterval == 0 {
		c.MigrateInterval = core.DefaultMigrateInterval
	}
	return nil
}

// Server is a multi-listener TCP server applying Affinity-Accept's
// queueing, stealing and flow-group-migration policies to real
// connections.
type Server struct {
	cfg     Config
	handler WorkerHandler

	bal       *core.Guarded[net.Conn]
	flow      *core.GuardedFlowTable
	listeners []net.Listener
	sharded   bool // one listener per worker (SO_REUSEPORT)

	wake    chan struct{} // signaled on every push
	drainCh chan struct{} // closed when acceptors have stopped

	started  atomic.Bool
	draining atomic.Bool
	shutOnce sync.Once

	acceptWG sync.WaitGroup
	workerWG sync.WaitGroup

	workers []workerState
	// loops are the per-worker park event loops: loops[i] owns
	// readability (one epoll instance on Linux) for every keep-alive
	// connection parked between requeue passes whose flow group worker
	// i owns, plus worker i's coarse clock.
	loops    []*evloop.Loop
	requeued atomic.Uint64 // successful Requeue calls
	rr       atomic.Uint64 // round-robin cursor for non-TCP remote addresses

	// limiters are the per-acceptor per-IP token buckets (nil slots
	// when PerIPAcceptRate is 0). limiters[i] belongs to acceptLoop i
	// alone in sharded mode; the single-listener fallback has one.
	limiters []*admit.Limiter

	// live / livePeak track the connection budget (MaxConns > 0 only):
	// accepted connections not yet closed, plus ChargeConn charges.
	live     atomic.Int64
	livePeak atomic.Int64

	ratelimited    atomic.Uint64 // conns closed at accept by the per-IP buckets
	shedParked     atomic.Uint64 // parked conns closed to make room (budget or fd pressure)
	budgetRejected atomic.Uint64 // conns rejected because the budget was exhausted and nothing was parked
	acceptRetries  atomic.Uint64 // transient accept errors survived (EMFILE/ENFILE/ECONNABORTED)

	// ctl is the adaptive migration controller (Config.AdaptiveMigration;
	// nil = fixed-interval ticker). Only the balance path touches it; the
	// atomics below republish its decisions for Stats and /metrics.
	ctl               *sched.Controller
	ctlLocals         uint64       // accept deltas fed to ctl (balance path only)
	ctlSteals         uint64       //
	migrateIntervalNs atomic.Int64 // current balancing interval
	frozenGroups      atomic.Int64 // groups currently frozen
	groupFreezes      atomic.Uint64
	groupUnfreezes    atomic.Uint64

	pinFailures atomic.Uint64 // workers that asked to pin but could not

	// obs is the observability plane: event rings and serve-layer
	// histograms. nil when Config.DisableObs is set — every hook
	// nil-checks, so disabling removes even the timestamp reads.
	obs *serverObs
}

// workerState holds one worker's atomically updated counters.
type workerState struct {
	accepted     atomic.Uint64 // connections routed to this worker at accept time
	servedLocal  atomic.Uint64 // served from this worker's own queue
	servedStolen atomic.Uint64 // served by this worker from another queue
	active       atomic.Int64  // handlers currently running on this worker
	migratedIn   atomic.Uint64 // flow groups this worker claimed via §3.3.2
	pinnedCPU    atomic.Int64  // CPU the worker's thread is pinned to, -1 unpinned
}

// New creates a Server and binds its listeners; the returned server is
// not accepting until Start. On Linux it opens Config.Workers
// SO_REUSEPORT listeners on the same address; elsewhere (or if
// SO_REUSEPORT fails, or DisableReusePort is set) it opens one shared
// listener.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		flow:    core.NewGuardedFlowTable(cfg.FlowGroups, cfg.Workers),
		wake:    make(chan struct{}, cfg.Workers),
		drainCh: make(chan struct{}),
		workers: make([]workerState, cfg.Workers),
	}
	if !cfg.DisableObs {
		s.obs = newServerObs(cfg.Workers, s.flow.Groups(), cfg.EventRingSize, cfg.HistSubBits, cfg.Chips)
	}
	s.loops = make([]*evloop.Loop, cfg.Workers)
	for i := range s.loops {
		s.loops[i] = evloop.New(evloop.Config{
			Callbacks:     evloop.Callbacks{Ready: s.parkWake, Dead: s.parkDead},
			ForcePortable: forcePortableParking,
		})
	}
	if cfg.WorkerHandler != nil {
		s.handler = cfg.WorkerHandler
	} else {
		s.handler = func(_ int, conn net.Conn) { cfg.Handler(conn) }
	}
	bcfg := core.Config{
		Cores:      cfg.Workers,
		Backlog:    cfg.Backlog,
		StealRatio: cfg.StealRatio,
		HighPct:    cfg.HighPct,
		LowPct:     cfg.LowPct,
	}
	if cfg.Chips > 1 && !cfg.DisableDistanceAware {
		// Distance-aware stealing: the balancer scans victims in chip
		// order under the same contiguous worker→chip layout the obs
		// attribution prices (worker w on chip w/perChip), independent
		// of DisableObs so the policy works without the metrics plane.
		perChip := (cfg.Workers + cfg.Chips - 1) / cfg.Chips
		bcfg.ChipOf = func(w int) int { return w / perChip }
	}
	s.bal = core.NewGuarded[net.Conn](bcfg)
	if cfg.AdaptiveMigration && !cfg.DisableMigration {
		s.ctl = sched.NewController(sched.ControllerConfig{BaseInterval: cfg.MigrateInterval})
	}
	s.migrateIntervalNs.Store(int64(cfg.MigrateInterval))
	for i := range s.workers {
		s.workers[i].pinnedCPU.Store(-1)
	}
	if err := s.listen(); err != nil {
		return nil, err
	}
	if cfg.PerIPAcceptRate > 0 {
		s.limiters = make([]*admit.Limiter, len(s.listeners))
		for i := range s.limiters {
			s.limiters[i] = admit.NewLimiter(cfg.PerIPAcceptRate, cfg.PerIPAcceptBurst, admit.DefaultBuckets)
		}
	}
	return s, nil
}

// listen binds the listeners, preferring one SO_REUSEPORT listener per
// worker and falling back to a single shared listener.
func (s *Server) listen() error {
	if !s.cfg.DisableReusePort && reusePortAvailable {
		listeners, err := listenShards(s.cfg.Network, s.cfg.Addr, s.cfg.Workers)
		if err == nil {
			s.listeners = listeners
			s.sharded = len(listeners) == s.cfg.Workers
			return nil
		}
		// SO_REUSEPORT refused (restricted sandbox, exotic network):
		// fall through to the portable single-listener path.
	}
	l, err := net.Listen(s.cfg.Network, s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s %s: %w", s.cfg.Network, s.cfg.Addr, err)
	}
	s.listeners = []net.Listener{l}
	s.sharded = false
	return nil
}

// Addr returns the bound address (useful with ":0"), or nil on a
// server that has no listeners — a zero-value Server, or one whose
// construction failed partway.
func (s *Server) Addr() net.Addr {
	if len(s.listeners) == 0 {
		return nil
	}
	return s.listeners[0].Addr()
}

// Sharded reports whether the server runs one SO_REUSEPORT listener
// per worker (true) or the single-shared-listener fallback (false).
func (s *Server) Sharded() bool { return s.sharded }

// Workers reports the configured worker count.
func (s *Server) Workers() int { return s.cfg.Workers }

// FlowGroups reports the (rounded-up) flow-group count.
func (s *Server) FlowGroups() int { return s.flow.Groups() }

// OwnerOf reports which worker currently owns the flow group a remote
// port hashes into — the queue a connection from that port would be
// routed to right now.
func (s *Server) OwnerOf(remotePort uint16) int { return s.flow.CoreForPort(remotePort) }

// PinnedCPU reports the CPU the given worker's OS thread is pinned to
// under Config.PinWorkers, or -1 when the worker is unpinned (pinning
// off, unsupported platform, or a restricted CPU mask). A worker pins
// itself as its loop starts, so immediately after Start this may
// briefly read -1.
func (s *Server) PinnedCPU(worker int) int {
	if worker < 0 || worker >= len(s.workers) {
		return -1
	}
	return int(s.workers[worker].pinnedCPU.Load())
}

// Parked reports how many requeued connections are currently waiting
// for their next request bytes on the workers' event loops. Long-lived-
// workload drivers use it to confirm a held-open population really is
// parked (costing no goroutine and no worker) rather than queued or
// in-flight.
func (s *Server) Parked() int64 {
	var n int64
	for _, l := range s.loops {
		n += int64(l.Len())
	}
	return n
}

// CoarseNow returns the given worker's coarse clock — wall time as of
// that worker's last event-loop iteration, at most ~50ms stale.
// Application layers arm per-request deadlines from it instead of
// calling time.Now on every request (à la fasthttp's coarse time).
// Out-of-range workers get the real clock.
func (s *Server) CoarseNow(worker int) time.Time {
	if worker < 0 || worker >= len(s.loops) {
		return time.Now()
	}
	return s.loops[worker].Now()
}

// Start launches the acceptor, worker and migration goroutines. It
// returns immediately; use Shutdown to stop.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for _, l := range s.loops {
		l.Start()
	}
	for i, l := range s.listeners {
		s.acceptWG.Add(1)
		go s.acceptLoop(i, l)
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.workerLoop(i)
	}
	if !s.cfg.DisableMigration {
		s.workerWG.Add(1)
		go s.migrateLoop()
	}
}

// route maps a connection to the worker owning its flow group, charging
// one unit of load to the group, and reports both so the accept event
// can carry its journey tag. The flow table — not the accepting
// listener — is the routing authority, exactly as the paper's NIC FDir
// table decides which core receives a flow's packets; under
// SO_REUSEPORT the kernel's four-tuple hash merely picks which acceptor
// goroutine performs the push. Non-TCP remote addresses (unix sockets)
// have no port to hash and fall back to round-robin with group -1.
func (s *Server) route(conn net.Conn) (group, worker int) {
	if addr, ok := conn.RemoteAddr().(*net.TCPAddr); ok {
		return s.flow.Route(uint16(addr.Port), 1)
	}
	return -1, int(s.rr.Add(1)-1) % s.cfg.Workers
}

// wakeWorkers nudges one sleeping worker after a push.
func (s *Server) wakeWorkers() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// acceptLoop accepts connections from one listener, applies admission
// control (per-IP rate, connection budget) and pushes each survivor
// onto the queue of the worker owning its flow group. idx names the
// listener: in sharded mode it is also the index of the acceptor's
// private per-IP limiter.
func (s *Server) acceptLoop(idx int, l net.Listener) {
	defer s.acceptWG.Done()
	var lim *admit.Limiter
	if s.limiters != nil {
		lim = s.limiters[idx]
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // Shutdown closed the listener
			}
			// Transient accept failure — EMFILE/ENFILE when a large
			// held-open population grazes the descriptor limit,
			// ECONNABORTED on a client that gave up in the queue. A
			// production listener must not die for these. Descriptor
			// exhaustion gets deliberate policy rather than hope:
			// shed the newest parked keep-alive connections — freeing
			// their descriptors right now, on this goroutine — and
			// retry immediately. Only when there is nothing to shed
			// (or the error is not fd pressure) back off a beat. A
			// closed listener surfaces as ErrClosed next iteration.
			s.acceptRetries.Add(1)
			if isFDPressure(err) && s.shedParkedConns(fdPressureSheds) > 0 {
				continue
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if lim != nil && !lim.AllowNow(admit.KeyAddr(conn.RemoteAddr())) {
			// Over-rate IP: close before any routing or handler work.
			// The bucket is the acceptor's own, so a flood's cost is
			// one accept+close per attempt and no shared-state touch.
			s.ratelimited.Add(1)
			s.RecordEvent(idx, obs.KindRatelimit, remotePort(conn), 0, 0)
			conn.Close()
			continue
		}
		if s.cfg.MaxConns > 0 {
			conn = s.admitBudget(conn)
			if conn == nil {
				continue
			}
		}
		group, worker := s.route(conn)
		s.workers[worker].accepted.Add(1)
		s.RecordGroupEvent(worker, obs.KindAccept, group, remotePort(conn), 0, 0)
		if !s.bal.Push(worker, conn) {
			conn.Close() // queue overflow: shed load (§3.3 drop)
			continue
		}
		s.wakeWorkers()
	}
}

// migrateLoop runs the §3.3.2 balancing tick until shutdown: each
// non-busy worker claims the hottest flow group of the victim it stole
// from most, so that group's future connections — and requeued
// keep-alive passes — become local. With AdaptiveMigration the
// controller re-arms the timer with whatever interval it chose after
// each tick; otherwise the interval is the fixed MigrateInterval.
func (s *Server) migrateLoop() {
	defer s.workerWG.Done()
	timer := time.NewTimer(s.cfg.MigrateInterval)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			s.balanceOnce()
			timer.Reset(time.Duration(s.migrateIntervalNs.Load()))
		case <-s.drainCh:
			return
		}
	}
}

// balanceOnce applies one migration tick and attributes each claimed
// group to its new owner. Tests drive it directly for determinism.
// Every applied move lands on the control event ring — migrations are
// the decisions a "why did this flow move" question needs, and the
// control ring guarantees park/wake churn can't evict them. Under
// AdaptiveMigration the tick also advances the controller: frozen
// groups sit the tick out via the GroupOK veto, freeze/thaw decisions
// land on the control ring, and the next interval is republished for
// the migrate loop and Stats.
func (s *Server) balanceOnce() int {
	var t0 int64
	if s.obs != nil {
		t0 = obs.Nanos()
	}
	var groupOK func(int) bool
	if s.ctl != nil {
		groupOK = s.ctl.GroupOK
	}
	moves := s.bal.BalanceTableFiltered(s.flow, nil, groupOK)
	for _, m := range moves {
		s.workers[m.To].migratedIn.Add(1)
		if s.obs != nil {
			s.obs.countMigrate(m.From, m.To, s.cfg.Workers)
		}
		s.recordControl(m.To, obs.KindMigrate, m.Group, int64(m.Group), int64(m.From), int64(m.To))
	}
	if s.ctl != nil {
		s.advanceController(moves)
	}
	if s.obs != nil {
		s.obs.migrate.Record(obs.Nanos() - t0)
	}
	return len(moves)
}

// advanceController feeds one tick's accept deltas and applied moves to
// the adaptive controller and republishes its decisions. Only the
// balance path calls it (the migrate loop, or tests driving balanceOnce
// directly), matching the controller's single-caller contract.
func (s *Server) advanceController(moves []core.Migration) {
	_, locals, steals, _ := s.bal.Stats()
	rep := s.ctl.Advance(locals-s.ctlLocals, steals-s.ctlSteals, moves)
	s.ctlLocals, s.ctlSteals = locals, steals
	for _, g := range rep.NewlyFrozen {
		s.groupFreezes.Add(1)
		s.recordControl(0, obs.KindFreeze, g, int64(g), 0, 0)
	}
	for _, g := range rep.Unfrozen {
		s.groupUnfreezes.Add(1)
		s.recordControl(0, obs.KindUnfreeze, g, int64(g), 0, 0)
	}
	s.frozenGroups.Store(int64(s.ctl.FrozenCount()))
	s.migrateIntervalNs.Store(int64(rep.Interval))
}

// idleSamplePeriod is the virtual sampling interval an idle worker's
// EWMA observations are scaled by. The kernel samples a core's queue
// EWMA on every softirq arrival — microseconds apart under load — while
// a user-space worker polls every few hundred microseconds at best and
// far less often under CPU contention. Charging one observation per
// elapsed 10µs makes the busy bit decay at wall-clock speed rather than
// poll-count speed, so a worker that has been idle a few milliseconds
// becomes steal-eligible regardless of scheduler jitter.
const idleSamplePeriod = 10 * time.Microsecond

// workerLoop pops connections with the stealing policy and runs the
// handler inline, so a worker's concurrency is exactly one connection —
// the paper's one-thread-per-core service model.
func (s *Server) workerLoop(worker int) {
	defer s.workerWG.Done()
	st := &s.workers[worker]
	if s.cfg.PinWorkers {
		// Pin this worker's OS thread to its CPU. LockOSThread first so
		// the affinity call binds the thread this goroutine will keep;
		// on failure (non-Linux, cgroup cpuset restrictions) release the
		// thread and run unpinned — the policy layers never depend on
		// pinning, only the placement fidelity does.
		runtime.LockOSThread()
		cpu := worker % runtime.NumCPU()
		if err := setThreadAffinity(cpu); err != nil {
			s.pinFailures.Add(1)
			runtime.UnlockOSThread()
		} else {
			st.pinnedCPU.Store(int64(cpu))
		}
	}
	var idleMark time.Time // start of the unobserved idle stretch
	// One reusable timer per worker for the idle re-poll: time.After in
	// this loop would allocate a timer per poll, and an idle worker
	// polls 5,000 times a second — enough garbage to show up in the
	// zero-allocation accounting of the layers above.
	poll := time.NewTimer(time.Hour)
	defer poll.Stop()
	for {
		var t0 int64
		if s.obs != nil {
			t0 = obs.Nanos()
		}
		conn, from, ok := s.bal.Pop(worker)
		if ok {
			idleMark = time.Time{}
			if from == worker {
				st.servedLocal.Add(1)
			} else {
				st.servedStolen.Add(1)
				if s.obs != nil {
					// Steal cost: the pop itself — the cross-queue lock
					// walk the paper's policy pays for load balance.
					d := obs.Nanos() - t0
					s.obs.steal[worker].Record(d)
					s.obs.countSteal(worker, from, s.cfg.Workers)
					port := remotePort(conn)
					g := s.GroupOfPort(port)
					s.RecordGroupEvent(worker, obs.KindSteal, g, int64(from), d, port)
				}
			}
			st.active.Add(1)
			s.handler(worker, conn)
			st.active.Add(-1)
			continue
		}
		// No work: let the empty queue decay this worker's EWMA so a
		// burst-time busy bit clears and stealing can resume.
		now := time.Now()
		if idleMark.IsZero() {
			idleMark = now
			s.bal.ObserveIdle(worker, 1)
		} else if n := int(now.Sub(idleMark) / idleSamplePeriod); n > 0 {
			s.bal.ObserveIdle(worker, n)
			idleMark = now
		}
		// Before sleeping, drain our own event loop's pending wakes
		// inline: a zero-timeout epoll_wait never surrenders the P, so on
		// a loaded machine (or GOMAXPROCS=1) a parked connection's next
		// request is delivered by the worker itself instead of waiting
		// for the loop goroutine to be scheduled out of its blocking
		// wait. Delivery is idempotent, so racing the loop is safe.
		if s.loops[worker].Poll() > 0 {
			continue
		}
		if s.draining.Load() && s.bal.TotalLen() == 0 {
			return
		}
		poll.Reset(200 * time.Microsecond)
		select {
		case <-s.wake:
		case <-s.drainCh:
			// Draining: re-poll promptly, but yield so workers whose
			// queues cannot be stolen from don't spin.
			time.Sleep(50 * time.Microsecond)
		case <-poll.C:
			// Periodic re-poll: a remote queue may have crossed its
			// high watermark and become stealable.
		}
	}
}

// Shutdown gracefully stops the server: it closes every listener and
// every parked keep-alive connection, lets the workers drain all queued
// connections, and waits for in-flight handlers. If ctx expires first,
// still-queued connections are closed and ctx.Err is returned; handlers
// already running are not interrupted.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		for _, l := range s.listeners {
			l.Close()
		}
		s.acceptWG.Wait() // all accept-time pushes are done
		// Close the park loops: every idle keep-alive connection is
		// closed (its ParkCloseNotifier fires), and any wake already in
		// flight finishes its push before Close returns — so nothing is
		// pushed onto a queue after the workers have drained and exited.
		for _, l := range s.loops {
			l.Close()
		}
		s.draining.Store(true)
		close(s.drainCh)
	})
	if !s.started.Load() {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force: close whatever is still queued so clients see EOF
		// rather than a hang, then report the deadline.
		for i := 0; i < s.bal.Cores(); i++ {
			for {
				conn, ok := s.bal.DiscardAt(i)
				if !ok {
					break
				}
				conn.Close()
			}
		}
		return ctx.Err()
	}
}

// Stats returns a consistent-enough snapshot of the server's counters.
// With keep-alive requeueing in play, Served counts handler passes, not
// connections: a long-lived connection contributes one pass per
// request, each classified local or stolen by the queue it was popped
// from — exactly the per-packet-batch locality the paper measures.
func (s *Server) Stats() Stats {
	_, locals, steals, drops := s.bal.Stats()
	groups := s.flow.GroupCount()
	st := Stats{
		Sharded:      s.sharded,
		FlowGroups:   s.flow.Groups(),
		Served:       locals + steals,
		ServedLocal:  locals,
		ServedStolen: steals,
		Dropped:      drops,
		Requeued:     s.requeued.Load(),
		Parked:       s.Parked(),
		Migrations:   s.flow.Migrations(),
		Workers:      make([]WorkerStats, s.cfg.Workers),

		Ratelimited:    s.ratelimited.Load(),
		ShedParked:     s.shedParked.Load(),
		BudgetRejected: s.budgetRejected.Load(),
		AcceptRetries:  s.acceptRetries.Load(),
		Live:           s.live.Load(),
		LivePeak:       s.livePeak.Load(),
		MaxConns:       s.cfg.MaxConns,
	}
	var stealM CostMatrix
	if s.obs != nil {
		st.Chips = s.obs.machine.Chips
		stealM = s.StealMatrix()
		st.CrossChipSteals = stealM.CrossChip
		st.CrossChipMigrations = s.MigrateMatrix().CrossChip
		st.StealEstCycles = stealM.EstCycles
	}
	if s.ctl != nil {
		st.AdaptiveInterval = time.Duration(s.migrateIntervalNs.Load())
		st.FrozenGroups = s.frozenGroups.Load()
		st.GroupFreezes = s.groupFreezes.Load()
		st.GroupUnfreezes = s.groupUnfreezes.Load()
	}
	st.PinFailures = s.pinFailures.Load()
	for i := range st.Workers {
		w := &s.workers[i]
		st.Workers[i] = WorkerStats{
			Worker:       i,
			Accepted:     w.accepted.Load(),
			ServedLocal:  w.servedLocal.Load(),
			ServedStolen: w.servedStolen.Load(),
			PinnedCPU:    int(w.pinnedCPU.Load()),
			Active:       w.active.Load(),
			QueueDepth:   s.bal.Len(i),
			Busy:         s.bal.Busy(i),
			GroupsOwned:  groups[i],
			MigratedIn:   w.migratedIn.Load(),
			Parked:       s.loops[i].Len(),
			ClockLagUs:   s.ClockLag(i).Microseconds(),
		}
		if s.obs != nil {
			ws := &st.Workers[i]
			ws.Chip = s.obs.machine.Chip(i)
			for v := 0; v < s.cfg.Workers; v++ {
				if !s.obs.machine.SameChip(i, v) {
					ws.StolenCross += stealM.Counts[i][v]
				}
			}
		}
		if s.cfg.WorkerPool != nil {
			st.Workers[i].Pool = s.cfg.WorkerPool(i)
			st.Pool = st.Pool.Add(st.Workers[i].Pool)
		}
		if s.cfg.WorkerUpstream != nil {
			st.Workers[i].Upstream = s.cfg.WorkerUpstream(i)
			st.Upstream = st.Upstream.Add(st.Workers[i].Upstream)
		}
		st.Accepted += st.Workers[i].Accepted
		st.Queued += st.Workers[i].QueueDepth
		st.Active += st.Workers[i].Active
		if st.Workers[i].PinnedCPU >= 0 {
			st.PinnedWorkers++
		}
	}
	return st
}
