//go:build linux

package serve

import (
	"context"
	"net"
	"syscall"
)

// reusePortAvailable reports platform support for SO_REUSEPORT
// sharding; the serve package falls back to one shared listener when
// false (or when binding with it fails at runtime).
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT on Linux (not exported by the syscall
// package on all architectures).
const soReusePort = 0xf

// listenShards opens n listeners on the same address with
// SO_REUSEPORT, giving each worker its own kernel accept queue — the
// user-space analogue of the paper's per-core clone sockets (§3.2).
// The kernel hashes each incoming connection's four-tuple to pick the
// listener, standing in for the NIC's FDir flow steering (§4).
func listenShards(network, addr string, n int) ([]net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			})
			if err != nil {
				return err
			}
			return serr
		},
	}
	listeners := make([]net.Listener, 0, n)
	first, err := lc.Listen(context.Background(), network, addr)
	if err != nil {
		return nil, err
	}
	listeners = append(listeners, first)
	// Re-bind the resolved address so ":0" shards share one port.
	bound := first.Addr().String()
	for i := 1; i < n; i++ {
		l, err := lc.Listen(context.Background(), network, bound)
		if err != nil {
			for _, prev := range listeners {
				prev.Close()
			}
			return nil, err
		}
		listeners = append(listeners, l)
	}
	return listeners, nil
}
