//go:build !linux

package serve

import "errors"

// errPinUnsupported is returned on platforms without sched_setaffinity.
// Config.PinWorkers degrades to a no-op: workers run unpinned and
// PinnedCPU reports -1, with every policy identical to the Linux path.
var errPinUnsupported = errors.New("serve: worker pinning is not supported on this platform")

func setThreadAffinity(int) error { return errPinUnsupported }

func threadAffinity() ([]int, error) { return nil, errPinUnsupported }
