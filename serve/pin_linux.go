//go:build linux

package serve

import (
	"syscall"
	"unsafe"
)

// cpuSetWords sizes the affinity mask at 1024 CPUs — the kernel's
// historical CPU_SETSIZE, comfortably above any machine this runs on.
const cpuSetWords = 16

// setThreadAffinity pins the calling OS thread (the caller must hold
// runtime.LockOSThread) to the single CPU `cpu` via sched_setaffinity.
// A raw syscall keeps the dependency surface at zero; pid 0 means "this
// thread". EPERM/EINVAL — cgroup cpuset restrictions, offline CPUs —
// come back as errors for the caller's graceful-degradation path.
func setThreadAffinity(cpu int) error {
	if cpu < 0 || cpu >= cpuSetWords*64 {
		return syscall.EINVAL
	}
	var mask [cpuSetWords]uint64
	mask[cpu/64] = 1 << (cpu % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return errno
	}
	return nil
}

// threadAffinity reports the calling thread's current CPU mask as a
// sorted CPU list (sched_getaffinity). The pinning smoke test reads it
// from inside a worker's handler to prove the mask really took.
func threadAffinity() ([]int, error) {
	var mask [cpuSetWords]uint64
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_GETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return nil, errno
	}
	var cpus []int
	for w, bits := range mask {
		for b := 0; bits != 0; b++ {
			if bits&(1<<b) != 0 {
				cpus = append(cpus, w*64+b)
				bits &^= 1 << b
			}
		}
	}
	return cpus, nil
}
