//go:build !linux

package serve

import (
	"errors"
	"net"
)

// reusePortAvailable reports platform support for SO_REUSEPORT
// sharding. On non-Linux platforms the server always uses the portable
// single-shared-listener fallback with round-robin queue assignment.
const reusePortAvailable = false

// listenShards is never called when reusePortAvailable is false; it
// exists so the package compiles on every platform.
func listenShards(network, addr string, n int) ([]net.Listener, error) {
	return nil, errors.New("serve: SO_REUSEPORT sharding requires linux")
}
