package serve

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"affinityaccept/internal/mem"
	"affinityaccept/internal/obs"
)

// serverObs is the server's observability plane: per-worker event rings
// plus one control ring, the serve-layer latency histograms, the
// per-flow-group hop counters behind the journey tags, and the
// worker-pair steal/migrate matrices the NUMA attribution pass joins
// with the machine distance model. All of it is allocation-free on the
// hot path — histograms are atomic bucket arrays, rings are
// preallocated slots, hop counters and pair cells are single atomic
// adds — and merged only at snapshot time. nil when Config.DisableObs
// is set; every hook checks.
type serverObs struct {
	// rings holds Workers+1 event rings sharing one sequence counter.
	// Ring i carries worker i's high-churn events (accept, park, wake,
	// steal); the final ring is the control ring, reserved for the rare
	// decisions a post-hoc "why did this flow move" question needs
	// (migrate, shed) so park/wake churn can never evict them.
	rings   *obs.Rings
	control int

	// hops holds one monotonic hop counter per flow group. Every
	// group-tagged event claims the group's next hop with one atomic
	// increment, so a group's events sort into causal order however the
	// per-worker rings interleave — the property the journey stitcher
	// (obs.Stitch) rests on.
	hops []atomic.Uint32

	// machine is the topology the attribution pass judges distance
	// against: workers map to cores in internal/mem's contiguous chip
	// layout (chip = worker / CoresPerChip). On real flat hardware it is
	// one chip; Config.Chips simulates a multi-chip machine so loopback
	// runs can still exercise the distance-aware accounting. Latencies
	// are Table 1's AMD row — the cycle estimates use RemoteL3 vs L3 as
	// the cross- vs same-chip line-transfer cost.
	machine mem.Machine

	// stealPairs / migratePairs are the Workers×Workers cost matrices,
	// flattened row-major: stealPairs[thief*W+victim] counts handler
	// passes worker "thief" popped from worker "victim"'s queue;
	// migratePairs[from*W+to] counts §3.3.2 group moves. Joined with
	// machine at snapshot time they become the same-chip vs cross-chip
	// attribution Table 1 prices.
	stealPairs   []atomic.Uint64
	migratePairs []atomic.Uint64

	park    []*obs.Hist // per worker: ns parked between requests
	steal   []*obs.Hist // per worker: queue-pop ns of stolen connections
	migrate *obs.Hist   // ns per balance tick (BalanceTable call)
}

func newServerObs(workers, groups, ringSize, subBits, chips int) *serverObs {
	o := &serverObs{
		rings:        obs.NewRings(workers+1, ringSize),
		control:      workers,
		hops:         make([]atomic.Uint32, groups),
		machine:      topology(workers, chips),
		stealPairs:   make([]atomic.Uint64, workers*workers),
		migratePairs: make([]atomic.Uint64, workers*workers),
		park:         make([]*obs.Hist, workers),
		steal:        make([]*obs.Hist, workers),
		migrate:      obs.NewHist(subBits),
	}
	for i := range o.park {
		o.park[i] = obs.NewHist(subBits)
		o.steal[i] = obs.NewHist(subBits)
	}
	return o
}

// topology builds the distance model workers are attributed against:
// chips <= 1 is a flat single-chip machine (every steal same-chip);
// otherwise workers split contiguously into chips exactly like
// internal/mem's Machine.Chip. Latencies are the paper's Table 1 AMD
// row, the machine whose remote-vs-local gap motivates §3.3's policies.
func topology(workers, chips int) mem.Machine {
	if chips <= 1 {
		chips = 1
	}
	perChip := (workers + chips - 1) / chips
	if perChip < 1 {
		perChip = 1
	}
	m := mem.AMD48()
	m.Name = "serve"
	m.Chips = chips
	m.CoresPerChip = perChip
	return m
}

// nextHop claims flow group g's next hop counter (1-based), 0 for
// out-of-journey events. One atomic add; zero allocations.
func (o *serverObs) nextHop(g int) uint32 {
	if g < 0 || g >= len(o.hops) {
		return 0
	}
	return o.hops[g].Add(1)
}

// coarseUnix is the event-timestamp source: worker w's coarse clock as
// unix nanoseconds — one atomic load, no syscall, ~50ms resolution.
func (s *Server) coarseUnix(w int) int64 {
	if w < 0 || w >= len(s.loops) {
		w = 0
	}
	return s.loops[w].Now().UnixNano()
}

// RecordEvent publishes one control-plane event onto worker w's event
// ring, outside any flow journey. Application layers stacked above
// serve use it to land their events in the same merged timeline as the
// server's own. No-op when observability is disabled; zero allocations.
func (s *Server) RecordEvent(w int, k obs.Kind, a, b, c int64) {
	if s.obs == nil {
		return
	}
	r := w
	if r < 0 || r >= s.cfg.Workers {
		r = 0
	}
	s.obs.rings.Record(r, k, w, s.coarseUnix(r), a, b, c)
}

// RecordGroupEvent publishes one flow-journey event onto worker w's
// event ring, tagged with flow group g and the group's next hop
// counter. Layers above serve (httpaff's shed and header-timeout paths)
// use it so their decisions stitch into the same per-group journeys as
// the server's accept/steal/migrate hops. Pass a negative group for an
// event outside any journey. Zero allocations.
func (s *Server) RecordGroupEvent(w int, k obs.Kind, g int, a, b, c int64) {
	if s.obs == nil {
		return
	}
	r := w
	if r < 0 || r >= s.cfg.Workers {
		r = 0
	}
	s.recordGroup(r, k, w, g, a, b, c)
}

// recordGroup claims group g's next hop and publishes the tagged event
// onto ring r (which may be the control ring). The hop counter is
// claimed even when the ring later drops the event on a writer
// collision — hop sequences may have gaps, never reorderings.
func (s *Server) recordGroup(r int, k obs.Kind, w, g int, a, b, c int64) {
	hop := uint32(0)
	group := int32(-1)
	if g >= 0 && g < len(s.obs.hops) {
		hop = s.obs.nextHop(g)
		group = int32(g)
	}
	s.obs.rings.RecordGroup(r, k, w, s.coarseUnix(w), group, hop, a, b, c)
}

// recordControl publishes a rare control-plane event (migrate, shed)
// onto the control ring, where worker-ring churn cannot overwrite it,
// tagged with flow group g (negative for none).
func (s *Server) recordControl(w int, k obs.Kind, g int, a, b, c int64) {
	if s.obs == nil {
		return
	}
	s.recordGroup(s.obs.control, k, w, g, a, b, c)
}

// countSteal attributes one stolen connection to the (thief, victim)
// worker pair. One atomic add; zero allocations.
func (o *serverObs) countSteal(thief, victim, workers int) {
	if thief >= 0 && thief < workers && victim >= 0 && victim < workers {
		o.stealPairs[thief*workers+victim].Add(1)
	}
}

// countMigrate attributes one flow-group migration to the (from, to)
// worker pair.
func (o *serverObs) countMigrate(from, to, workers int) {
	if from >= 0 && from < workers && to >= 0 && to < workers {
		o.migratePairs[from*workers+to].Add(1)
	}
}

// crossChip reports whether workers a and b live on different chips of
// the configured topology — the distance line the attribution pass
// prices hops against.
func (s *Server) crossChip(a, b int) bool {
	if s.obs == nil {
		return false
	}
	return !s.obs.machine.SameChip(a, b)
}

// WorkerChip reports which chip of the configured topology worker w
// maps to (always 0 on a flat machine).
func (s *Server) WorkerChip(w int) int {
	if s.obs == nil {
		return 0
	}
	return s.obs.machine.Chip(w)
}

// CostMatrix is the snapshot of one worker-pair attribution matrix
// joined with the machine distance model: Counts[a][b] is the number of
// hops from worker a to worker b (thief→victim for steals, from→to for
// migrations), split into same-chip and cross-chip totals, with an
// estimated cycle cost priced at the paper's Table 1 line-transfer
// latencies (L3 for same-chip, RemoteL3 for cross-chip).
type CostMatrix struct {
	Counts    [][]uint64 `json:"counts"`
	SameChip  uint64     `json:"sameChip"`
	CrossChip uint64     `json:"crossChip"`
	EstCycles uint64     `json:"estCycles"`
}

func (o *serverObs) matrix(cells []atomic.Uint64, workers int) CostMatrix {
	m := CostMatrix{Counts: make([][]uint64, workers)}
	for a := 0; a < workers; a++ {
		m.Counts[a] = make([]uint64, workers)
		for b := 0; b < workers; b++ {
			n := cells[a*workers+b].Load()
			m.Counts[a][b] = n
			if o.machine.SameChip(a, b) {
				m.SameChip += n
				m.EstCycles += n * uint64(o.machine.Lat.L3)
			} else {
				m.CrossChip += n
				m.EstCycles += n * uint64(o.machine.Lat.RemoteL3)
			}
		}
	}
	return m
}

// StealMatrix returns the thief×victim steal attribution matrix.
// Diagnostic path: allocates. Zero-valued when observability is off.
func (s *Server) StealMatrix() CostMatrix {
	if s.obs == nil {
		return CostMatrix{}
	}
	return s.obs.matrix(s.obs.stealPairs, s.cfg.Workers)
}

// MigrateMatrix returns the from×to migration attribution matrix.
// Diagnostic path: allocates. Zero-valued when observability is off.
func (s *Server) MigrateMatrix() CostMatrix {
	if s.obs == nil {
		return CostMatrix{}
	}
	return s.obs.matrix(s.obs.migratePairs, s.cfg.Workers)
}

// GroupOfPort reports which flow group a remote TCP port hashes into —
// the join key layers above serve need to tag their own events onto the
// right journey. -1 for invalid ports or when observability is off.
func (s *Server) GroupOfPort(port int64) int {
	if s.obs == nil || port < 0 || port > 65535 {
		return -1
	}
	return s.flow.GroupOf(uint16(port))
}

// Events drains every event ring into one timeline ordered by sequence
// number — the server's recent control-plane history. Diagnostic path:
// allocates. Empty when observability is disabled.
func (s *Server) Events() []obs.Event {
	if s.obs == nil {
		return nil
	}
	return s.obs.rings.Events()
}

// EventsSince drains the merged timeline keeping only events with
// Seq > since — the incremental-poll cursor behind /debug/events?since=.
// Diagnostic path: allocates. Empty when observability is disabled.
func (s *Server) EventsSince(since uint64) []obs.Event {
	if s.obs == nil {
		return nil
	}
	return s.obs.rings.EventsSince(since)
}

// Journeys stitches the merged timeline into per-flow-group causal
// journeys (see obs.Stitch), keeping only events with Seq > since.
// Diagnostic path: allocates. Empty when observability is disabled.
func (s *Server) Journeys(since uint64) []obs.Journey {
	if s.obs == nil {
		return nil
	}
	return obs.Stitch(s.obs.rings.EventsSince(since))
}

// EventsRecorded reports how many events have been published since
// start (including ones since overwritten by ring wraparound).
func (s *Server) EventsRecorded() uint64 {
	if s.obs == nil {
		return 0
	}
	return s.obs.rings.Recorded()
}

// EventsDropped reports events lost to writer collisions on a lapped
// ring slot — nonzero only under pathological event rates.
func (s *Server) EventsDropped() uint64 {
	if s.obs == nil {
		return 0
	}
	return s.obs.rings.Dropped()
}

// ClockLag reports how far worker w's coarse clock currently trails the
// wall clock — at most one event-loop iteration (~50ms) on a healthy
// loop; a persistently larger lag means the loop goroutine is starved.
func (s *Server) ClockLag(w int) time.Duration {
	if w < 0 || w >= len(s.loops) {
		return 0
	}
	return time.Since(s.loops[w].Now())
}

// ParkDurationSnapshot returns the merged park-duration histogram
// (nanoseconds parked between requests), empty when observability is
// disabled. Diagnostic path: allocates.
func (s *Server) ParkDurationSnapshot() obs.HistSnapshot {
	if s.obs == nil {
		return obs.HistSnapshot{}
	}
	return mergeHists(s.obs.park)
}

// StealCostSnapshot returns the merged steal-cost histogram (queue-pop
// nanoseconds for stolen connections). Diagnostic path: allocates.
func (s *Server) StealCostSnapshot() obs.HistSnapshot {
	if s.obs == nil {
		return obs.HistSnapshot{}
	}
	return mergeHists(s.obs.steal)
}

func mergeHists(hs []*obs.Hist) obs.HistSnapshot {
	m := hs[0].Snapshot()
	for _, h := range hs[1:] {
		m.Merge(h.Snapshot())
	}
	return m
}

// WriteObsMetrics renders the serve layer's observability series in
// Prometheus text format: park/steal/migrate histograms, event-ring
// counters, per-worker event-loop delivery counters and coarse-clock
// lag gauges. The httpaff metrics handler composes it into the unified
// exporter; it writes nothing when observability is disabled.
func (s *Server) WriteObsMetrics(w io.Writer) {
	if s.obs == nil {
		return
	}
	obs.WriteProm(w, "affinity_park_duration_seconds",
		"Time keep-alive connections spent parked between requests.",
		mergeHists(s.obs.park), 1e-9)
	obs.WriteProm(w, "affinity_steal_pop_seconds",
		"Queue-pop latency of connections served via stealing.",
		mergeHists(s.obs.steal), 1e-9)
	obs.WriteProm(w, "affinity_migrate_tick_seconds",
		"Duration of flow-group balance ticks (sec 3.3.2).",
		s.obs.migrate.Snapshot(), 1e-9)

	fmt.Fprintf(w, "# HELP affinity_events_recorded_total Control-plane events published to the trace rings.\n# TYPE affinity_events_recorded_total counter\naffinity_events_recorded_total %d\n",
		s.obs.rings.Recorded())
	fmt.Fprintf(w, "# HELP affinity_events_dropped_total Trace events lost to ring writer collisions.\n# TYPE affinity_events_dropped_total counter\naffinity_events_dropped_total %d\n",
		s.obs.rings.Dropped())

	fmt.Fprintf(w, "# HELP affinity_evloop_ready_total Parked connections delivered ready by each worker's event loop.\n# TYPE affinity_evloop_ready_total counter\n")
	for i, l := range s.loops {
		ready, _, _ := l.Counters()
		fmt.Fprintf(w, "affinity_evloop_ready_total{worker=\"%d\"} %d\n", i, ready)
	}
	fmt.Fprintf(w, "# HELP affinity_evloop_dead_total Parked connections the event loops gave up on (peer gone, deadline, shutdown).\n# TYPE affinity_evloop_dead_total counter\n")
	for i, l := range s.loops {
		_, dead, _ := l.Counters()
		fmt.Fprintf(w, "affinity_evloop_dead_total{worker=\"%d\"} %d\n", i, dead)
	}
	fmt.Fprintf(w, "# HELP affinity_evloop_expired_total Parked connections closed by park-deadline expiry.\n# TYPE affinity_evloop_expired_total counter\n")
	for i, l := range s.loops {
		_, _, expired := l.Counters()
		fmt.Fprintf(w, "affinity_evloop_expired_total{worker=\"%d\"} %d\n", i, expired)
	}
	fmt.Fprintf(w, "# HELP affinity_clock_lag_seconds How far each worker's coarse clock trails the wall clock.\n# TYPE affinity_clock_lag_seconds gauge\n")
	for i := range s.loops {
		fmt.Fprintf(w, "affinity_clock_lag_seconds{worker=\"%d\"} %g\n", i, s.ClockLag(i).Seconds())
	}

	// NUMA attribution: the pair matrices collapsed along the machine
	// distance model. Same-chip vs cross-chip totals carry a "dist"
	// label so one query prices the remote traffic; the estimated cycle
	// series applies Table 1's L3 / RemoteL3 line-transfer latencies.
	sm, mm := s.StealMatrix(), s.MigrateMatrix()
	fmt.Fprintf(w, "# HELP affinity_cross_chip_steals_total Stolen connections by thief/victim chip distance (Table 1 pricing).\n# TYPE affinity_cross_chip_steals_total counter\n")
	fmt.Fprintf(w, "affinity_cross_chip_steals_total{dist=\"same\"} %d\n", sm.SameChip)
	fmt.Fprintf(w, "affinity_cross_chip_steals_total{dist=\"cross\"} %d\n", sm.CrossChip)
	fmt.Fprintf(w, "# HELP affinity_cross_chip_migrations_total Flow-group migrations by from/to chip distance.\n# TYPE affinity_cross_chip_migrations_total counter\n")
	fmt.Fprintf(w, "affinity_cross_chip_migrations_total{dist=\"same\"} %d\n", mm.SameChip)
	fmt.Fprintf(w, "affinity_cross_chip_migrations_total{dist=\"cross\"} %d\n", mm.CrossChip)
	fmt.Fprintf(w, "# HELP affinity_steal_est_cycles_total Estimated line-transfer cycles spent on steals (L3 same-chip, RemoteL3 cross-chip).\n# TYPE affinity_steal_est_cycles_total counter\naffinity_steal_est_cycles_total %d\n", sm.EstCycles)
	fmt.Fprintf(w, "# HELP affinity_worker_chip Which chip of the configured topology each worker maps to.\n# TYPE affinity_worker_chip gauge\n")
	for i := 0; i < s.cfg.Workers; i++ {
		fmt.Fprintf(w, "affinity_worker_chip{worker=\"%d\"} %d\n", i, s.obs.machine.Chip(i))
	}

	// Adaptive migration: the controller's current interval and freeze
	// state (the interval gauge reads MigrateInterval when the fixed
	// ticker is in use, so dashboards need no mode branch).
	fmt.Fprintf(w, "# HELP affinity_migrate_interval_seconds Current flow-group balancing interval (adaptive controller or fixed).\n# TYPE affinity_migrate_interval_seconds gauge\naffinity_migrate_interval_seconds %g\n",
		time.Duration(s.migrateIntervalNs.Load()).Seconds())
	fmt.Fprintf(w, "# HELP affinity_frozen_groups Flow groups currently frozen for ping-ponging between owners.\n# TYPE affinity_frozen_groups gauge\naffinity_frozen_groups %d\n",
		s.frozenGroups.Load())
	fmt.Fprintf(w, "# HELP affinity_group_freezes_total Flow groups frozen by the adaptive controller.\n# TYPE affinity_group_freezes_total counter\naffinity_group_freezes_total %d\n",
		s.groupFreezes.Load())
	fmt.Fprintf(w, "# HELP affinity_group_unfreezes_total Frozen flow groups thawed after their cooldown.\n# TYPE affinity_group_unfreezes_total counter\naffinity_group_unfreezes_total %d\n",
		s.groupUnfreezes.Load())
	fmt.Fprintf(w, "# HELP affinity_worker_pinned_cpu CPU each worker's thread is pinned to (-1 unpinned).\n# TYPE affinity_worker_pinned_cpu gauge\n")
	for i := range s.workers {
		fmt.Fprintf(w, "affinity_worker_pinned_cpu{worker=\"%d\"} %d\n", i, s.workers[i].pinnedCPU.Load())
	}
}

// remotePort extracts a connection's remote TCP port for event
// operands, -1 for portless transports (unix sockets, pipes).
func remotePort(c net.Conn) int64 {
	if a, ok := c.RemoteAddr().(*net.TCPAddr); ok {
		return int64(a.Port)
	}
	return -1
}
