package serve

import (
	"fmt"
	"io"
	"net"
	"time"

	"affinityaccept/internal/obs"
)

// serverObs is the server's observability plane: per-worker event rings
// plus one control ring, and the serve-layer latency histograms. All of
// it is allocation-free on the hot path — histograms are atomic bucket
// arrays, rings are preallocated slots — and merged only at scrape
// time. nil when Config.DisableObs is set; every hook checks.
type serverObs struct {
	// rings holds Workers+1 event rings sharing one sequence counter.
	// Ring i carries worker i's high-churn events (accept, park, wake,
	// steal); the final ring is the control ring, reserved for the rare
	// decisions a post-hoc "why did this flow move" question needs
	// (migrate, shed) so park/wake churn can never evict them.
	rings   *obs.Rings
	control int

	park    []*obs.Hist // per worker: ns parked between requests
	steal   []*obs.Hist // per worker: queue-pop ns of stolen connections
	migrate *obs.Hist   // ns per balance tick (BalanceTable call)
}

func newServerObs(workers, ringSize, subBits int) *serverObs {
	o := &serverObs{
		rings:   obs.NewRings(workers+1, ringSize),
		control: workers,
		park:    make([]*obs.Hist, workers),
		steal:   make([]*obs.Hist, workers),
		migrate: obs.NewHist(subBits),
	}
	for i := range o.park {
		o.park[i] = obs.NewHist(subBits)
		o.steal[i] = obs.NewHist(subBits)
	}
	return o
}

// coarseUnix is the event-timestamp source: worker w's coarse clock as
// unix nanoseconds — one atomic load, no syscall, ~50ms resolution.
func (s *Server) coarseUnix(w int) int64 {
	if w < 0 || w >= len(s.loops) {
		w = 0
	}
	return s.loops[w].Now().UnixNano()
}

// RecordEvent publishes one control-plane event onto worker w's event
// ring. Application layers stacked above serve (httpaff's header-timeout
// shed) use it to land their events in the same merged timeline as the
// server's own. No-op when observability is disabled; zero allocations.
func (s *Server) RecordEvent(w int, k obs.Kind, a, b, c int64) {
	if s.obs == nil {
		return
	}
	r := w
	if r < 0 || r >= s.cfg.Workers {
		r = 0
	}
	s.obs.rings.Record(r, k, w, s.coarseUnix(r), a, b, c)
}

// recordControl publishes a rare control-plane event (migrate, shed)
// onto the control ring, where worker-ring churn cannot overwrite it.
func (s *Server) recordControl(w int, k obs.Kind, a, b, c int64) {
	if s.obs == nil {
		return
	}
	s.obs.rings.Record(s.obs.control, k, w, s.coarseUnix(w), a, b, c)
}

// Events drains every event ring into one timeline ordered by sequence
// number — the server's recent control-plane history. Diagnostic path:
// allocates. Empty when observability is disabled.
func (s *Server) Events() []obs.Event {
	if s.obs == nil {
		return nil
	}
	return s.obs.rings.Events()
}

// EventsRecorded reports how many events have been published since
// start (including ones since overwritten by ring wraparound).
func (s *Server) EventsRecorded() uint64 {
	if s.obs == nil {
		return 0
	}
	return s.obs.rings.Recorded()
}

// EventsDropped reports events lost to writer collisions on a lapped
// ring slot — nonzero only under pathological event rates.
func (s *Server) EventsDropped() uint64 {
	if s.obs == nil {
		return 0
	}
	return s.obs.rings.Dropped()
}

// ClockLag reports how far worker w's coarse clock currently trails the
// wall clock — at most one event-loop iteration (~50ms) on a healthy
// loop; a persistently larger lag means the loop goroutine is starved.
func (s *Server) ClockLag(w int) time.Duration {
	if w < 0 || w >= len(s.loops) {
		return 0
	}
	return time.Since(s.loops[w].Now())
}

// ParkDurationSnapshot returns the merged park-duration histogram
// (nanoseconds parked between requests), empty when observability is
// disabled. Diagnostic path: allocates.
func (s *Server) ParkDurationSnapshot() obs.HistSnapshot {
	if s.obs == nil {
		return obs.HistSnapshot{}
	}
	return mergeHists(s.obs.park)
}

// StealCostSnapshot returns the merged steal-cost histogram (queue-pop
// nanoseconds for stolen connections). Diagnostic path: allocates.
func (s *Server) StealCostSnapshot() obs.HistSnapshot {
	if s.obs == nil {
		return obs.HistSnapshot{}
	}
	return mergeHists(s.obs.steal)
}

func mergeHists(hs []*obs.Hist) obs.HistSnapshot {
	m := hs[0].Snapshot()
	for _, h := range hs[1:] {
		m.Merge(h.Snapshot())
	}
	return m
}

// WriteObsMetrics renders the serve layer's observability series in
// Prometheus text format: park/steal/migrate histograms, event-ring
// counters, per-worker event-loop delivery counters and coarse-clock
// lag gauges. The httpaff metrics handler composes it into the unified
// exporter; it writes nothing when observability is disabled.
func (s *Server) WriteObsMetrics(w io.Writer) {
	if s.obs == nil {
		return
	}
	obs.WriteProm(w, "affinity_park_duration_seconds",
		"Time keep-alive connections spent parked between requests.",
		mergeHists(s.obs.park), 1e-9)
	obs.WriteProm(w, "affinity_steal_pop_seconds",
		"Queue-pop latency of connections served via stealing.",
		mergeHists(s.obs.steal), 1e-9)
	obs.WriteProm(w, "affinity_migrate_tick_seconds",
		"Duration of flow-group balance ticks (sec 3.3.2).",
		s.obs.migrate.Snapshot(), 1e-9)

	fmt.Fprintf(w, "# HELP affinity_events_recorded_total Control-plane events published to the trace rings.\n# TYPE affinity_events_recorded_total counter\naffinity_events_recorded_total %d\n",
		s.obs.rings.Recorded())
	fmt.Fprintf(w, "# HELP affinity_events_dropped_total Trace events lost to ring writer collisions.\n# TYPE affinity_events_dropped_total counter\naffinity_events_dropped_total %d\n",
		s.obs.rings.Dropped())

	fmt.Fprintf(w, "# HELP affinity_evloop_ready_total Parked connections delivered ready by each worker's event loop.\n# TYPE affinity_evloop_ready_total counter\n")
	for i, l := range s.loops {
		ready, _, _ := l.Counters()
		fmt.Fprintf(w, "affinity_evloop_ready_total{worker=\"%d\"} %d\n", i, ready)
	}
	fmt.Fprintf(w, "# HELP affinity_evloop_dead_total Parked connections the event loops gave up on (peer gone, deadline, shutdown).\n# TYPE affinity_evloop_dead_total counter\n")
	for i, l := range s.loops {
		_, dead, _ := l.Counters()
		fmt.Fprintf(w, "affinity_evloop_dead_total{worker=\"%d\"} %d\n", i, dead)
	}
	fmt.Fprintf(w, "# HELP affinity_evloop_expired_total Parked connections closed by park-deadline expiry.\n# TYPE affinity_evloop_expired_total counter\n")
	for i, l := range s.loops {
		_, _, expired := l.Counters()
		fmt.Fprintf(w, "affinity_evloop_expired_total{worker=\"%d\"} %d\n", i, expired)
	}
	fmt.Fprintf(w, "# HELP affinity_clock_lag_seconds How far each worker's coarse clock trails the wall clock.\n# TYPE affinity_clock_lag_seconds gauge\n")
	for i := range s.loops {
		fmt.Fprintf(w, "affinity_clock_lag_seconds{worker=\"%d\"} %g\n", i, s.ClockLag(i).Seconds())
	}
}

// remotePort extracts a connection's remote TCP port for event
// operands, -1 for portless transports (unix sockets, pipes).
func remotePort(c net.Conn) int64 {
	if a, ok := c.RemoteAddr().(*net.TCPAddr); ok {
		return int64(a.Port)
	}
	return -1
}
