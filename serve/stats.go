package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"affinityaccept/internal/stats"
)

// PoolStats counts one worker-local object pool's traffic, as reported
// by the Config.WorkerPool hook: Reuses were served from the worker's
// free list (the warm, core-local path), Misses had to allocate, Drops
// were discarded on release because the free list was full. It carries
// Gets, ReusePct and Add from the stats layer's snapshot type.
type PoolStats = stats.PoolSnapshot

// WorkerStats is one worker's view of the balancer, mirroring the
// per-core counters the paper's kernel implementation exports.
type WorkerStats struct {
	Worker int
	// Accepted counts connections accepted by this worker's listener
	// (its kernel accept queue under SO_REUSEPORT).
	Accepted uint64
	// ServedLocal counts connections this worker served from its own
	// queue; ServedStolen counts ones it stole from other workers.
	ServedLocal  uint64
	ServedStolen uint64
	// Chip is which chip of the configured topology (Config.Chips) this
	// worker maps to — 0 on a flat machine.
	Chip int
	// PinnedCPU is the CPU this worker's OS thread is pinned to under
	// Config.PinWorkers, -1 when unpinned.
	PinnedCPU int
	// StolenCross counts the subset of ServedStolen whose victim lived
	// on a different chip — the steals the attribution pass prices at
	// Table 1's RemoteL3 latency instead of L3.
	StolenCross uint64
	// Active is the number of handlers currently running.
	Active int64
	// QueueDepth is the instantaneous local queue length; Busy is the
	// §3.3.1 busy bit.
	QueueDepth int
	Busy       bool
	// Parked is the instantaneous number of connections parked on this
	// worker's event loop between requeue passes.
	Parked int
	// GroupsOwned is how many flow groups currently steer to this
	// worker; MigratedIn counts groups it claimed via §3.3.2 migration.
	GroupsOwned int
	MigratedIn  uint64
	// ClockLagUs is how far this worker's coarse event-loop clock
	// trailed the wall clock at snapshot time, in microseconds. Healthy
	// loops stay under one poll interval (~50ms); a persistently larger
	// lag means the loop goroutine is starved of CPU.
	ClockLagUs int64
	// Pool is this worker's application object-pool traffic (zero
	// unless Config.WorkerPool is set).
	Pool PoolStats
	// Upstream is this worker's upstream connection-pool traffic —
	// backend connections dialed (Misses), reused from the worker's own
	// free list (Reuses) and discarded over the idle cap (Drops). Zero
	// unless Config.WorkerUpstream is set.
	Upstream PoolStats
}

// Stats is an aggregate snapshot of a Server, shaped like the
// simulator's RunResult locality counters.
type Stats struct {
	// Sharded reports one-SO_REUSEPORT-listener-per-worker mode.
	Sharded bool
	// FlowGroups is the (rounded-up) flow-group count.
	FlowGroups int
	// Accepted counts connections routed at accept time; Served counts
	// handler passes (accepts plus requeue passes); Dropped the
	// queue-overflow sheds. Served = ServedLocal + ServedStolen.
	Accepted     uint64
	Served       uint64
	ServedLocal  uint64
	ServedStolen uint64
	Dropped      uint64
	// Requeued counts successful Server.Requeue calls; Migrations the
	// applied §3.3.2 flow-group migrations.
	Requeued   uint64
	Migrations uint64
	// Chips is the configured topology's chip count (1 = flat).
	// CrossChipSteals and CrossChipMigrations count the hops whose two
	// workers lived on different chips — the traffic the paper's
	// policies exist to minimize, priced at Table 1's RemoteL3 latency
	// by the /metrics attribution series.
	Chips               int
	CrossChipSteals     uint64
	CrossChipMigrations uint64
	// StealEstCycles prices every steal at the topology's Table 1
	// line-transfer latency (L3 same-chip, RemoteL3 cross-chip) — the
	// counter the distance-aware steal path exists to shrink.
	StealEstCycles uint64
	// AdaptiveInterval is the migration controller's current balancing
	// interval (zero unless Config.AdaptiveMigration): MigrateInterval
	// while converging, backed off up to 8x once locality converges.
	AdaptiveInterval time.Duration
	// FrozenGroups is how many flow groups the controller currently has
	// frozen for ping-ponging; GroupFreezes/GroupUnfreezes count the
	// transitions.
	FrozenGroups   int64
	GroupFreezes   uint64
	GroupUnfreezes uint64
	// PinnedWorkers counts workers whose threads are pinned to a CPU;
	// PinFailures counts workers that asked to pin but could not
	// (restricted cpuset, unsupported platform).
	PinnedWorkers int
	PinFailures   uint64
	// Parked is the instantaneous number of connections waiting between
	// requeue passes — the held-open population of a long-lived
	// workload. Parked connections live on the per-worker event loops
	// (one epoll registration each on Linux), costing no goroutine and
	// no worker capacity.
	Parked int64
	// Pool aggregates the per-worker object-pool counters (zero unless
	// Config.WorkerPool is set).
	Pool PoolStats
	// Upstream aggregates the per-worker upstream connection-pool
	// counters (zero unless Config.WorkerUpstream is set).
	Upstream PoolStats
	// Queued and Active are instantaneous totals across workers.
	Queued  int
	Active  int64
	Workers []WorkerStats

	// Admission-control counters (all zero unless the corresponding
	// Config knobs — PerIPAcceptRate, MaxConns — are set).
	//
	// Ratelimited counts connections closed at accept because their
	// client IP's token bucket was empty. ShedParked counts parked
	// keep-alive connections closed LIFO to reclaim descriptors or
	// budget; BudgetRejected counts fresh connections turned away
	// because the budget was exhausted with nothing parked to shed.
	// AcceptRetries counts transient accept errors survived
	// (EMFILE/ENFILE/ECONNABORTED).
	Ratelimited    uint64
	ShedParked     uint64
	BudgetRejected uint64
	AcceptRetries  uint64
	// Live and LivePeak track the connection budget's occupancy and
	// high-water mark; MaxConns echoes the configured budget. The
	// enforced invariant is LivePeak <= MaxConns.
	Live     int64
	LivePeak int64
	MaxConns int
}

// LocalityPct is the percentage of served handler passes that stayed on
// the worker owning the connection's flow group — the user-space
// analogue of the paper's connection-affinity metric.
func (s Stats) LocalityPct() float64 {
	if s.Served == 0 {
		return 100
	}
	return 100 * float64(s.ServedLocal) / float64(s.Served)
}

// StealPct is the percentage of served handler passes that were stolen
// from another worker's queue.
func (s Stats) StealPct() float64 {
	if s.Served == 0 {
		return 0
	}
	return 100 * float64(s.ServedStolen) / float64(s.Served)
}

// String renders the snapshot as an aligned per-worker table in the
// shape the simulator's reports use.
func (s Stats) String() string {
	var b strings.Builder
	mode := "shared listener"
	if s.Sharded {
		mode = "SO_REUSEPORT per-worker listeners"
	}
	fmt.Fprintf(&b, "mode: %s, %d flow groups\n", mode, s.FlowGroups)
	fmt.Fprintf(&b, "accepted %d  served %d (%.1f%% local)  stolen %d  dropped %d  requeued %d  parked %d  migrations %d  queued %d  active %d\n",
		s.Accepted, s.Served, s.LocalityPct(), s.ServedStolen, s.Dropped, s.Requeued, s.Parked, s.Migrations, s.Queued, s.Active)
	if s.Ratelimited > 0 || s.ShedParked > 0 || s.BudgetRejected > 0 || s.AcceptRetries > 0 || s.MaxConns > 0 {
		fmt.Fprintf(&b, "admission: ratelimited %d  shed-parked %d  budget-rejected %d  accept-retries %d  live %d (peak %d / budget %d)\n",
			s.Ratelimited, s.ShedParked, s.BudgetRejected, s.AcceptRetries, s.Live, s.LivePeak, s.MaxConns)
	}
	if s.Chips > 1 {
		fmt.Fprintf(&b, "numa: %d chips  cross-chip steals %d  cross-chip migrations %d  est steal cycles %d\n",
			s.Chips, s.CrossChipSteals, s.CrossChipMigrations, s.StealEstCycles)
	}
	if s.AdaptiveInterval > 0 {
		fmt.Fprintf(&b, "adaptive: interval %s  frozen groups %d (freezes %d, thaws %d)\n",
			s.AdaptiveInterval, s.FrozenGroups, s.GroupFreezes, s.GroupUnfreezes)
	}
	if s.PinnedWorkers > 0 || s.PinFailures > 0 {
		fmt.Fprintf(&b, "pinning: %d workers pinned, %d failed\n", s.PinnedWorkers, s.PinFailures)
	}
	pools := s.Pool.Gets() > 0
	if pools {
		fmt.Fprintf(&b, "pools: %d gets, %.1f%% reused from the worker-local free list (%d misses, %d drops)\n",
			s.Pool.Gets(), s.Pool.ReusePct(), s.Pool.Misses, s.Pool.Drops)
	}
	upstream := s.Upstream.Gets() > 0
	if upstream {
		fmt.Fprintf(&b, "upstream: %d checkouts, %.1f%% reused from the worker-local pool (%d dials, %d drops)\n",
			s.Upstream.Gets(), s.Upstream.ReusePct(), s.Upstream.Misses, s.Upstream.Drops)
	}
	// Header and rows share one format: identical column widths, every
	// gauge column wide enough for production-scale counters (11 digits
	// of accepts, 8-digit parked populations), so the table cannot
	// drift however wide the numbers get. TestStatsStringGolden pins
	// the alignment.
	const (
		statsHeaderFmt = "%-6s %4s %4s %11s %11s %11s %8s %7s %7s %8s %7s %8s %8s %5s"
		statsRowFmt    = "%-6d %4d %4s %11d %11d %11d %8d %7d %7d %8d %7d %8d %8d %5s"
		poolHeaderFmt  = " %10s %7s"
		poolRowFmt     = " %10d %7.1f"
	)
	fmt.Fprintf(&b, statsHeaderFmt,
		"worker", "chip", "cpu", "accepted", "local", "stolen", "x-steal", "active", "qdepth", "parked", "groups", "migr-in", "lag-us", "busy")
	if pools {
		fmt.Fprintf(&b, poolHeaderFmt, "pool-get", "reuse%")
	}
	if upstream {
		fmt.Fprintf(&b, poolHeaderFmt, "up-get", "up-re%")
	}
	b.WriteByte('\n')
	for _, w := range s.Workers {
		busy := ""
		if w.Busy {
			busy = "*"
		}
		cpu := "-"
		if w.PinnedCPU >= 0 {
			cpu = strconv.Itoa(w.PinnedCPU)
		}
		fmt.Fprintf(&b, statsRowFmt,
			w.Worker, w.Chip, cpu, w.Accepted, w.ServedLocal, w.ServedStolen, w.StolenCross, w.Active, w.QueueDepth,
			w.Parked, w.GroupsOwned, w.MigratedIn, w.ClockLagUs, busy)
		if pools {
			fmt.Fprintf(&b, poolRowFmt, w.Pool.Gets(), w.Pool.ReusePct())
		}
		if upstream {
			fmt.Fprintf(&b, poolRowFmt, w.Upstream.Gets(), w.Upstream.ReusePct())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
