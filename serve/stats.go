package serve

import (
	"fmt"
	"strings"
)

// WorkerStats is one worker's view of the balancer, mirroring the
// per-core counters the paper's kernel implementation exports.
type WorkerStats struct {
	Worker int
	// Accepted counts connections accepted by this worker's listener
	// (its kernel accept queue under SO_REUSEPORT).
	Accepted uint64
	// ServedLocal counts connections this worker served from its own
	// queue; ServedStolen counts ones it stole from other workers.
	ServedLocal  uint64
	ServedStolen uint64
	// Active is the number of handlers currently running.
	Active int64
	// QueueDepth is the instantaneous local queue length; Busy is the
	// §3.3.1 busy bit.
	QueueDepth int
	Busy       bool
}

// Stats is an aggregate snapshot of a Server, shaped like the
// simulator's RunResult locality counters.
type Stats struct {
	// Sharded reports one-SO_REUSEPORT-listener-per-worker mode.
	Sharded bool
	// Accepted counts pushes into the balancer; Served the pops;
	// Dropped the queue-overflow sheds. Served = ServedLocal +
	// ServedStolen.
	Accepted     uint64
	Served       uint64
	ServedLocal  uint64
	ServedStolen uint64
	Dropped      uint64
	// Queued and Active are instantaneous totals across workers.
	Queued  int
	Active  int64
	Workers []WorkerStats
}

// LocalityPct is the percentage of served connections that stayed on
// the worker whose listener accepted them — the user-space analogue of
// the paper's connection-affinity metric.
func (s Stats) LocalityPct() float64 {
	if s.Served == 0 {
		return 100
	}
	return 100 * float64(s.ServedLocal) / float64(s.Served)
}

// String renders the snapshot as an aligned per-worker table in the
// shape the simulator's reports use.
func (s Stats) String() string {
	var b strings.Builder
	mode := "shared listener (round-robin)"
	if s.Sharded {
		mode = "SO_REUSEPORT per-worker listeners"
	}
	fmt.Fprintf(&b, "mode: %s\n", mode)
	fmt.Fprintf(&b, "accepted %d  served %d (%.1f%% local)  stolen %d  dropped %d  queued %d  active %d\n",
		s.Accepted, s.Served, s.LocalityPct(), s.ServedStolen, s.Dropped, s.Queued, s.Active)
	fmt.Fprintf(&b, "%-7s %9s %9s %9s %7s %7s %5s\n",
		"worker", "accepted", "local", "stolen", "active", "qdepth", "busy")
	for _, w := range s.Workers {
		busy := ""
		if w.Busy {
			busy = "*"
		}
		fmt.Fprintf(&b, "%-7d %9d %9d %9d %7d %7d %5s\n",
			w.Worker, w.Accepted, w.ServedLocal, w.ServedStolen, w.Active, w.QueueDepth, busy)
	}
	return b.String()
}
