package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"affinityaccept/internal/testutil"
)

// echoHandler echoes until client EOF, then closes.
func echoHandler(conn net.Conn) {
	io.Copy(conn, conn)
	conn.Close()
}

// waitFor is testutil.WaitFor: poll instead of sleep in
// timing-sensitive tests.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	testutil.WaitFor(t, d, cond, msg)
}

// dialEcho opens one connection, round-trips one message and closes.
func dialEcho(t *testing.T, addr string, i int) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Errorf("dial %d: %v", i, err)
		return
	}
	echoOnce(t, conn, i)
}

// echoOnce round-trips one message on an already-open connection and
// closes it.
func echoOnce(t *testing.T, conn net.Conn, i int) {
	t.Helper()
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	msg := []byte(fmt.Sprintf("hello %d", i))
	if _, err := conn.Write(msg); err != nil {
		t.Errorf("write %d: %v", i, err)
		return
	}
	conn.(*net.TCPConn).CloseWrite()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Errorf("read %d: %v", i, err)
		return
	}
	if string(got) != string(msg) {
		t.Errorf("conn %d: got %q want %q", i, got, msg)
	}
}

// burst opens total concurrent connections and waits for all round
// trips to finish.
func burst(t *testing.T, addr string, total int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dialEcho(t, addr, i)
		}(i)
	}
	wg.Wait()
}

// TestBurstAllServed is the headline integration test: a loopback
// server with N workers serves a burst of connections, every one
// completes, and shutdown drains cleanly.
func TestBurstAllServed(t *testing.T) {
	const workers, total = 4, 200
	var served atomic.Int64
	s, err := New(Config{
		Workers: workers,
		Handler: func(conn net.Conn) {
			echoHandler(conn)
			served.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	burst(t, s.Addr().String(), total)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if got := served.Load(); got != total {
		t.Fatalf("served %d connections, want %d", got, total)
	}
	st := s.Stats()
	if st.Accepted != total {
		t.Errorf("accepted %d, want %d", st.Accepted, total)
	}
	if st.Served != total || st.Dropped != 0 {
		t.Errorf("served %d dropped %d, want %d and 0", st.Served, st.Dropped, total)
	}
	if st.Queued != 0 || st.Active != 0 {
		t.Errorf("after shutdown queued=%d active=%d, want 0", st.Queued, st.Active)
	}
	var perWorker uint64
	for _, w := range st.Workers {
		perWorker += w.ServedLocal + w.ServedStolen
	}
	if perWorker != st.Served {
		t.Errorf("per-worker served %d != aggregate %d", perWorker, st.Served)
	}
}

// TestStealFromStalledWorker stalls worker 0 in its handler and checks
// that idle workers steal its backlog: all connections are served and
// the steal counter is nonzero. The clients bind source ports spread
// evenly over a small flow-group table, so exactly 1/N of the
// connections deterministically route to the stalled worker regardless
// of the OS's ephemeral-port pattern.
func TestStealFromStalledWorker(t *testing.T) {
	const workers, total, groups = 4, 120, 8
	s, err := New(Config{
		Workers:          workers,
		DisableReusePort: true,
		FlowGroups:       groups,
		Backlog:          workers * 64,
		HighPct:          20, // mark busy early so stealing engages
		LowPct:           2,  // ~30 pushes only nudge the 1/128-alpha EWMA to ~4; keep busy latched
		WorkerHandler: func(worker int, conn net.Conn) {
			if worker == 0 {
				time.Sleep(20 * time.Millisecond) // the artificially stalled worker
			}
			echoHandler(conn)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		conn := dialHot(t, s.Addr().String(), i%groups, groups)
		wg.Add(1)
		go func(conn net.Conn, i int) {
			defer wg.Done()
			echoOnce(t, conn, i)
		}(conn, i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s.Stats()
	if st.ServedStolen == 0 {
		t.Fatalf("expected nonzero steals with a stalled worker; stats:\n%s", st)
	}
	if st.Served+st.Dropped != total {
		t.Errorf("served %d + dropped %d != %d", st.Served, st.Dropped, total)
	}
	if st.Dropped != 0 {
		t.Errorf("dropped %d connections; backlog should have absorbed the stall", st.Dropped)
	}
}

// TestShutdownDrainsQueued checks that connections still queued when
// Shutdown is called are served, not abandoned.
func TestShutdownDrainsQueued(t *testing.T) {
	const workers, total = 2, 40
	gate := make(chan struct{})
	var served atomic.Int64
	s, err := New(Config{
		Workers: workers,
		Handler: func(conn net.Conn) {
			<-gate // hold both workers until Shutdown is in flight
			echoHandler(conn)
			served.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	clients := make(chan struct{})
	go func() {
		burst(t, s.Addr().String(), total)
		close(clients)
	}()
	// Wait until everything is accepted and queued behind the gate.
	waitFor(t, 10*time.Second, func() bool { return s.Stats().Accepted == total },
		"burst never fully accepted")

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutErr <- s.Shutdown(ctx)
	}()
	// Open the gate only once Shutdown has closed the listeners and
	// reached its drain phase, so the assertion below proves that
	// already-queued connections are served during the drain.
	waitFor(t, 10*time.Second, func() bool { return s.draining.Load() },
		"Shutdown never reached the drain phase")
	close(gate)

	if err := <-shutErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-clients
	if got := served.Load(); got != total {
		t.Fatalf("served %d, want all %d queued connections drained", got, total)
	}
}

// TestShutdownDeadlineForcesClose checks the non-graceful path: with
// workers permanently wedged, Shutdown returns the context error and
// closes queued connections instead of hanging.
func TestShutdownDeadlineForcesClose(t *testing.T) {
	const groups = 8
	block := make(chan struct{})
	s, err := New(Config{
		Workers:    2,
		FlowGroups: groups,
		Handler:    func(conn net.Conn) { <-block; conn.Close() },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		// One connection per flow group: both workers' queues
		// deterministically receive work, so exactly one handler wedges
		// on each worker.
		conn := dialHot(t, s.Addr().String(), i%groups, groups)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(10 * time.Second))
			io.ReadAll(conn) // returns once the server force-closes
		}(conn)
	}
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Accepted >= 8 },
		"connections never accepted")

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown err = %v, want context.DeadlineExceeded", err)
	}
	st := s.Stats()
	if st.Queued != 0 {
		t.Errorf("forced shutdown left %d queued connections", st.Queued)
	}
	// The two wedged handlers are the only connections ever served; the
	// six force-closed ones must not be counted as served.
	if st.Served != 2 {
		t.Errorf("served %d, want 2: discarded connections must not count as served", st.Served)
	}
	close(block) // release the wedged handlers so their clients finish
	wg.Wait()
}

// TestSharedListenerFallback runs the portable path end to end: the
// single shared listener routes through the same flow-group table as
// sharded mode, so locality and group stats stay meaningful off-Linux.
func TestSharedListenerFallback(t *testing.T) {
	s, err := New(Config{
		Workers:          3,
		DisableReusePort: true,
		Handler:          echoHandler,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Sharded() {
		t.Fatal("DisableReusePort ignored")
	}
	s.Start()
	burst(t, s.Addr().String(), 60)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := s.Stats()
	if st.Served != 60 {
		t.Fatalf("served %d, want 60", st.Served)
	}
	if st.Accepted != 60 {
		t.Fatalf("accepted %d, want 60", st.Accepted)
	}
	// Flow-group routing spreads ephemeral client ports across all
	// workers (the diagonal initial assignment breaks port-parity
	// clumping); with 60 sequential-ish dials every worker sees some.
	totalGroups := 0
	for _, w := range st.Workers {
		if w.Accepted == 0 {
			t.Errorf("worker %d accepted 0 connections; flow-group routing starved it:\n%s", w.Worker, st)
		}
		totalGroups += w.GroupsOwned
	}
	if totalGroups != st.FlowGroups {
		t.Errorf("groups owned sum to %d, want %d", totalGroups, st.FlowGroups)
	}
}

// TestConfigValidation covers the error paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("want error when no handler is set")
	}
	if _, err := New(Config{
		Handler:       echoHandler,
		WorkerHandler: func(int, net.Conn) {},
	}); err == nil {
		t.Error("want error when both handlers are set")
	}
	if _, err := New(Config{Handler: echoHandler, Addr: "256.0.0.1:bad"}); err == nil {
		t.Error("want error for a bad address")
	}
	// HighPct 8 leaves the default low watermark (10) above it; New must
	// return an error, not let the core queues panic.
	if _, err := New(Config{Handler: echoHandler, HighPct: 8}); err == nil {
		t.Error("want error when low watermark >= high")
	}
	if _, err := New(Config{Handler: echoHandler, StealRatio: -1}); err == nil {
		t.Error("want error for a negative steal ratio")
	}
}

// TestStatsString sanity-checks the report rendering.
func TestStatsString(t *testing.T) {
	s, err := New(Config{Workers: 2, Handler: echoHandler})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	burst(t, s.Addr().String(), 10)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
	out := s.Stats().String()
	for _, want := range []string{"worker", "accepted", "local", "stolen"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats report missing %q:\n%s", want, out)
		}
	}
}
