package serve

import (
	"context"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"affinityaccept/internal/obs"
)

// TestObsMigrationEventsMatchMoves drives a deterministic migration (the
// same synthesized queue state TestMigrationPausesWhileAllWorkersBusy
// uses) and checks the acceptance property of the event plane: every
// migration the stats report has a matching KindMigrate event on the
// control ring, operands included.
func TestObsMigrationEventsMatchMoves(t *testing.T) {
	s, err := New(Config{
		Workers:          2,
		FlowGroups:       8,
		DisableMigration: true, // ticks are manual
		Backlog:          40,
		HighPct:          20,
		LowPct:           5,
		Handler:          echoHandler,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// Worker 0 goes busy, worker 1 steals, then drains: the next tick
	// migrates exactly one group from 0 to 1.
	for i := 0; i < 6; i++ {
		s.bal.Push(0, nil)
	}
	if _, from, ok := s.bal.Pop(1); !ok || from != 0 {
		t.Fatalf("worker 1 pop = (from %d, ok %v), want steal from 0", from, ok)
	}
	for i := 0; i < 1000 && s.bal.Busy(1); i++ {
		s.bal.ObserveIdle(1, 10)
	}
	if n := s.balanceOnce(); n != 1 {
		t.Fatalf("balance applied %d migrations, want 1", n)
	}

	st := s.Stats()
	var migrates []obs.Event
	for _, ev := range s.Events() {
		if ev.Kind == obs.KindMigrate {
			migrates = append(migrates, ev)
		}
	}
	if uint64(len(migrates)) != st.Migrations {
		t.Fatalf("%d migrate events for %d stats migrations", len(migrates), st.Migrations)
	}
	ev := migrates[0]
	if ev.B != 0 || ev.C != 1 {
		t.Errorf("migrate event records %d -> %d, want 0 -> 1", ev.B, ev.C)
	}
	if ev.A < 0 || ev.A >= int64(s.FlowGroups()) {
		t.Errorf("migrate event group %d out of range [0, %d)", ev.A, s.FlowGroups())
	}
	if ev.Worker != 1 {
		t.Errorf("migrate event attributed to worker %d, want the claimer 1", ev.Worker)
	}
}

// TestObsParkWakeLifecycle runs one real keep-alive connection through a
// park (the client waits between requests, so the ReadyNow fast path
// cannot short-circuit it) and checks the event timeline and the park-
// duration histogram both saw it.
func TestObsParkWakeLifecycle(t *testing.T) {
	var srv *Server
	s, err := New(Config{
		Workers: 1,
		Handler: requeueEcho(&srv, 4, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 4)
	for pass := 0; pass < 2; pass++ {
		if _, err := conn.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		// Idle long enough that the requeue must really park.
		time.Sleep(50 * time.Millisecond)
	}

	waitFor(t, 5*time.Second, func() bool {
		var parks, wakes, accepts int
		for _, ev := range s.Events() {
			switch ev.Kind {
			case obs.KindAccept:
				accepts++
			case obs.KindPark:
				parks++
			case obs.KindWake:
				wakes++
			}
		}
		return accepts >= 1 && parks >= 1 && wakes >= 1
	}, "accept/park/wake events never all appeared")

	park := s.ParkDurationSnapshot()
	if park.Count == 0 {
		t.Fatal("park-duration histogram recorded nothing")
	}
	// The client idled ~50ms before the wake; the histogram must have
	// seen at least one park of that order.
	if q := park.Quantile(1); q < int64(10*time.Millisecond) {
		t.Errorf("max park duration %v, want >= 10ms", time.Duration(q))
	}
}

// TestObsDisabled pins the off switch: no events, no histograms, no
// metrics output, and the hooks are no-ops rather than panics.
func TestObsDisabled(t *testing.T) {
	s, err := New(Config{
		Workers:    1,
		DisableObs: true,
		Handler:    echoHandler,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	burst(t, s.Addr().String(), 4)
	s.RecordEvent(0, obs.KindAccept, 1, 2, 3)
	if evs := s.Events(); len(evs) != 0 {
		t.Fatalf("disabled server produced %d events", len(evs))
	}
	if s.EventsRecorded() != 0 || s.EventsDropped() != 0 {
		t.Error("disabled server counted events")
	}
	var b strings.Builder
	s.WriteObsMetrics(&b)
	if b.Len() != 0 {
		t.Fatalf("disabled server wrote metrics:\n%s", b.String())
	}
	if snap := s.ParkDurationSnapshot(); snap.Count != 0 {
		t.Error("disabled server has park histogram data")
	}
}

// TestWriteObsMetricsSeries checks the serve layer's Prometheus writer
// emits every series the unified exporter advertises, including the
// per-worker clock-lag gauges, and that a live server's lag is sane.
func TestWriteObsMetricsSeries(t *testing.T) {
	s, err := New(Config{
		Workers: 2,
		Handler: echoHandler,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	burst(t, s.Addr().String(), 8)

	var b strings.Builder
	s.WriteObsMetrics(&b)
	out := b.String()
	for _, series := range []string{
		"# TYPE affinity_park_duration_seconds histogram",
		"# TYPE affinity_steal_pop_seconds histogram",
		"# TYPE affinity_migrate_tick_seconds histogram",
		"affinity_events_recorded_total ",
		"affinity_events_dropped_total 0",
		`affinity_evloop_ready_total{worker="0"}`,
		`affinity_evloop_dead_total{worker="1"}`,
		`affinity_evloop_expired_total{worker="0"}`,
		`affinity_clock_lag_seconds{worker="0"}`,
		`affinity_clock_lag_seconds{worker="1"}`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
	for w := 0; w < 2; w++ {
		if lag := s.ClockLag(w); lag < 0 || lag > 5*time.Second {
			t.Errorf("worker %d clock lag %v not plausible for a live loop", w, lag)
		}
	}
	st := s.Stats()
	for i, w := range st.Workers {
		if w.ClockLagUs < 0 {
			t.Errorf("worker %d negative clock lag %dus", i, w.ClockLagUs)
		}
	}
}

// TestObsJourneyTaggingAndAttribution drives the deterministic
// steal-then-migrate sequence on a simulated two-chip topology and
// checks the whole flow-journey layer end to end: the migrate event
// carries its group tag and a claimed hop, the stitched journey reports
// the migration and the new owner, and the attribution matrices price
// the move as cross-chip.
func TestObsJourneyTaggingAndAttribution(t *testing.T) {
	s, err := New(Config{
		Workers:          2,
		Chips:            2, // worker 0 on chip 0, worker 1 on chip 1
		FlowGroups:       8,
		DisableMigration: true, // ticks are manual
		Backlog:          40,
		HighPct:          20,
		LowPct:           5,
		Handler:          echoHandler,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	for i := 0; i < 6; i++ {
		s.bal.Push(0, nil)
	}
	if _, from, ok := s.bal.Pop(1); !ok || from != 0 {
		t.Fatalf("worker 1 pop = (from %d, ok %v), want steal from 0", from, ok)
	}
	for i := 0; i < 1000 && s.bal.Busy(1); i++ {
		s.bal.ObserveIdle(1, 10)
	}
	if n := s.balanceOnce(); n != 1 {
		t.Fatalf("balance applied %d migrations, want 1", n)
	}

	var mig obs.Event
	found := false
	for _, ev := range s.Events() {
		if ev.Kind == obs.KindMigrate {
			mig, found = ev, true
		}
	}
	if !found {
		t.Fatal("no migrate event recorded")
	}
	if int64(mig.Group) != mig.A {
		t.Errorf("migrate event group tag %d != A operand %d", mig.Group, mig.A)
	}
	if mig.Hop < 1 {
		t.Errorf("migrate event hop %d, want >= 1 (a claimed counter)", mig.Hop)
	}

	journeys := s.Journeys(0)
	var j *obs.Journey
	for i := range journeys {
		if journeys[i].Group == mig.Group {
			j = &journeys[i]
		}
	}
	if j == nil {
		t.Fatalf("no journey stitched for migrated group %d (journeys: %v)", mig.Group, journeys)
	}
	if j.Migrations != 1 {
		t.Errorf("journey migrations = %d, want 1", j.Migrations)
	}
	if j.Owner != 1 {
		t.Errorf("journey owner = %d, want the claimer 1", j.Owner)
	}

	// Attribution: the 0 -> 1 move crosses the two-chip boundary.
	mm := s.MigrateMatrix()
	if mm.Counts[0][1] != 1 {
		t.Errorf("migrate matrix [0][1] = %d, want 1", mm.Counts[0][1])
	}
	if mm.CrossChip != 1 || mm.SameChip != 0 {
		t.Errorf("migrate matrix cross=%d same=%d, want cross=1 same=0", mm.CrossChip, mm.SameChip)
	}
	s.obs.countSteal(1, 0, 2) // worker 1 stole from worker 0: cross-chip
	sm := s.StealMatrix()
	if sm.CrossChip != 1 {
		t.Errorf("steal matrix cross = %d, want 1", sm.CrossChip)
	}
	if sm.EstCycles != uint64(s.obs.machine.Lat.RemoteL3) {
		t.Errorf("steal est cycles = %d, want RemoteL3 %d", sm.EstCycles, s.obs.machine.Lat.RemoteL3)
	}

	st := s.Stats()
	if st.Chips != 2 || st.CrossChipMigrations != 1 || st.CrossChipSteals != 1 {
		t.Errorf("stats chips=%d xmigr=%d xsteal=%d, want 2/1/1", st.Chips, st.CrossChipMigrations, st.CrossChipSteals)
	}
	if st.Workers[1].StolenCross != 1 || st.Workers[1].Chip != 1 {
		t.Errorf("worker 1 stolenCross=%d chip=%d, want 1/1", st.Workers[1].StolenCross, st.Workers[1].Chip)
	}

	var b strings.Builder
	s.WriteObsMetrics(&b)
	out := b.String()
	for _, series := range []string{
		`affinity_cross_chip_steals_total{dist="cross"} 1`,
		`affinity_cross_chip_migrations_total{dist="cross"} 1`,
		"affinity_steal_est_cycles_total ",
		`affinity_worker_chip{worker="1"} 1`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("metrics output missing %q", series)
		}
	}
}

// TestObsEventsSinceCursor pins the /debug/events incremental-poll
// contract at the server level: polling with the largest previously
// seen Seq delivers each event exactly once — no duplicates, no skips —
// across an ongoing stream of recorded events.
func TestObsEventsSinceCursor(t *testing.T) {
	s, err := New(Config{Workers: 2, Handler: echoHandler})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	seen := make(map[uint64]int)
	var cursor uint64
	for round := 0; round < 10; round++ {
		for i := 0; i < 7; i++ {
			s.RecordEvent(i%2, obs.KindAccept, int64(round*7+i), 0, 0)
		}
		for _, ev := range s.EventsSince(cursor) {
			seen[ev.Seq]++
			if ev.Seq > cursor {
				cursor = ev.Seq
			}
		}
	}
	if len(seen) != 70 {
		t.Fatalf("cursor polls saw %d distinct events, want all 70", len(seen))
	}
	for seq, n := range seen {
		if n != 1 {
			t.Errorf("event seq %d delivered %d times, want exactly once", seq, n)
		}
	}
}
