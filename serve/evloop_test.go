package serve

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// testWakeDuringMigration checks the interaction the evloop refactor
// must preserve (ISSUE: migration/steal semantics unchanged): a
// connection parks while its flow group is owned by worker A, the group
// migrates to worker B, and the wake routes the next pass through the
// flow table — so it lands on B, the new owner, not on whichever worker
// parked it.
func testWakeDuringMigration(t *testing.T) {
	const groups = 8
	var srv *Server
	var mu sync.Mutex
	var passWorkers []int
	s, err := New(Config{
		Workers:          2,
		FlowGroups:       groups,
		DisableMigration: true, // the test migrates by hand
		WorkerHandler: func(worker int, conn net.Conn) {
			buf := make([]byte, 4)
			if _, err := io.ReadFull(conn, buf); err != nil {
				conn.Close()
				return
			}
			mu.Lock()
			passWorkers = append(passWorkers, worker)
			mu.Unlock()
			if _, err := conn.Write(buf); err != nil {
				conn.Close()
				return
			}
			if !srv.Requeue(conn) {
				conn.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	conn := dialHot(t, s.Addr().String(), 3, groups)
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	localPort := conn.LocalAddr().(*net.TCPAddr).Port
	group := s.flow.GroupOf(uint16(localPort))
	owner := s.flow.CoreOf(group)

	buf := make([]byte, 4)
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	// The response is out; wait until the server has actually parked the
	// connection on its owner's event loop before migrating.
	waitFor(t, 5*time.Second, func() bool { return s.Parked() == 1 },
		"connection never parked")

	newOwner := 1 - owner
	s.flow.Migrate(group, newOwner)

	if _, err := conn.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(passWorkers) != 2 {
		t.Fatalf("served %d passes, want 2", len(passWorkers))
	}
	if passWorkers[0] != owner {
		t.Errorf("pass 0 served by worker %d, want pre-migration owner %d", passWorkers[0], owner)
	}
	if passWorkers[1] != newOwner {
		t.Errorf("post-migration wake served by worker %d, want new owner %d", passWorkers[1], newOwner)
	}
}

// TestWakeDuringMigration runs the scenario against both the platform
// event loop and the portable fallback — same file, same assertions;
// the two park implementations must be indistinguishable above Requeue.
func TestWakeDuringMigration(t *testing.T) {
	t.Run("evloop", testWakeDuringMigration)
	t.Run("portable", func(t *testing.T) {
		forcePortableParking = true
		defer func() { forcePortableParking = false }()
		testWakeDuringMigration(t)
	})
}

// TestPortableParkingShutdownParity re-runs the park-then-shutdown
// lifecycle with the portable fallback forced on: parked connections
// are still closed by Shutdown and Requeue still refuses afterwards.
func TestPortableParkingShutdownParity(t *testing.T) {
	forcePortableParking = true
	defer func() { forcePortableParking = false }()

	var srv *Server
	s, err := New(Config{
		Workers: 2,
		Handler: requeueEcho(&srv, 4, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	for _, l := range s.loops {
		if !l.Portable() {
			t.Fatal("forcePortableParking did not take: loop has a poller")
		}
	}
	s.Start()

	const conns = 6
	cs := make([]net.Conn, conns)
	for i := range cs {
		c, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cs[i] = c
		c.SetDeadline(time.Now().Add(10 * time.Second))
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return s.Parked() == conns },
		"connections never all parked")

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := s.Parked(); got != 0 {
		t.Errorf("parked after shutdown = %d, want 0", got)
	}
	buf := make([]byte, 1)
	for i, c := range cs {
		if _, err := c.Read(buf); err == nil {
			t.Errorf("conn %d still open after shutdown", i)
		}
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if s.Requeue(c1) {
		t.Error("Requeue accepted a connection after shutdown")
	}
}
