package serve

import (
	"context"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"
)

// keepAliveServer starts a server whose handler speaks a one-byte
// protocol chosen by the first byte of each pass:
//
//	'P' (and any other byte): echo the byte and park via Requeue —
//	    the connection becomes idle parked population.
//	'L': echo then keep reading in a loop without requeueing — the
//	    connection stays *active*, occupying its worker.
func keepAliveServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	var srv *Server
	cfg.WorkerHandler = func(_ int, conn net.Conn) {
		buf := make([]byte, 1)
		if _, err := conn.Read(buf); err != nil {
			conn.Close()
			return
		}
		if buf[0] == 'L' {
			for {
				if _, err := conn.Write(buf); err != nil {
					conn.Close()
					return
				}
				if _, err := conn.Read(buf); err != nil {
					conn.Close()
					return
				}
			}
		}
		if _, err := conn.Write(buf); err != nil {
			conn.Close()
			return
		}
		if !srv.Requeue(conn) {
			conn.Close()
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv = s
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// roundTrip writes one byte and expects it echoed back.
func roundTrip(t *testing.T, conn net.Conn, b byte) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte{b}); err != nil {
		t.Fatalf("write %q: %v", b, err)
	}
	got := make([]byte, 1)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("read echo of %q: %v", b, err)
	}
	if got[0] != b {
		t.Fatalf("echo mismatch: sent %q got %q", b, got[0])
	}
}

// expectClosed asserts the peer closed the connection (EOF/reset
// rather than data).
func expectClosed(t *testing.T, conn net.Conn, who string) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if n, err := conn.Read(make([]byte, 1)); err == nil || n > 0 {
		t.Fatalf("%s: expected server-side close, read %d bytes err=%v", who, n, err)
	}
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestBudgetShedsNewestParkedLIFO: with a budget of K and K idle
// parked connections, the K+1th accept sheds exactly the most recently
// parked one — LIFO — and every older parked connection survives and
// still works.
func TestBudgetShedsNewestParkedLIFO(t *testing.T) {
	const K = 3
	s := keepAliveServer(t, Config{Workers: 2, MaxConns: K})
	addr := s.Addr().String()

	conns := make([]net.Conn, K)
	for i := range conns {
		conns[i] = dialT(t, addr)
		roundTrip(t, conns[i], 'P')
		want := int64(i + 1)
		waitFor(t, 5*time.Second, func() bool { return s.Parked() == want },
			"connection did not park")
	}

	// The K+1th connection must be admitted by evicting the newest
	// parked conn (index K-1), not by turning the newcomer away.
	late := dialT(t, addr)
	roundTrip(t, late, 'P')

	expectClosed(t, conns[K-1], "newest parked conn")
	for i := 0; i < K-1; i++ {
		roundTrip(t, conns[i], 'Q') // older parked conns unharmed
	}

	st := s.Stats()
	if st.ShedParked != 1 {
		t.Errorf("ShedParked = %d, want 1", st.ShedParked)
	}
	if st.BudgetRejected != 0 {
		t.Errorf("BudgetRejected = %d, want 0 (there was a parked conn to shed)", st.BudgetRejected)
	}
	if st.LivePeak > K {
		t.Errorf("LivePeak = %d exceeds the budget %d", st.LivePeak, K)
	}
	if st.MaxConns != K {
		t.Errorf("MaxConns = %d, want %d", st.MaxConns, K)
	}
}

// TestBudgetNeverShedsActive: when the budget is exhausted entirely by
// *active* connections, the newcomer is rejected; the active
// connection is never sacrificed.
func TestBudgetNeverShedsActive(t *testing.T) {
	s := keepAliveServer(t, Config{Workers: 2, MaxConns: 1})
	addr := s.Addr().String()

	active := dialT(t, addr)
	roundTrip(t, active, 'L') // loops in its handler: active, never parks

	reject := dialT(t, addr)
	expectClosed(t, reject, "over-budget conn with nothing parked")

	roundTrip(t, active, 'L') // the active conn kept its slot

	st := s.Stats()
	if st.BudgetRejected == 0 {
		t.Error("BudgetRejected = 0, want at least 1")
	}
	if st.ShedParked != 0 {
		t.Errorf("ShedParked = %d, want 0 — an active conn must never be shed", st.ShedParked)
	}
	active.Close()
}

// TestChargeConnCountsAgainstBudget: descriptors charged by upper
// layers (a proxy tunnel's upstream leg) squeeze the same budget and
// trigger the same LIFO shedding as accepted connections.
func TestChargeConnCountsAgainstBudget(t *testing.T) {
	s := keepAliveServer(t, Config{Workers: 2, MaxConns: 2})
	addr := s.Addr().String()

	c0 := dialT(t, addr)
	roundTrip(t, c0, 'P')
	waitFor(t, 5*time.Second, func() bool { return s.Parked() == 1 }, "conn 0 did not park")
	c1 := dialT(t, addr)
	roundTrip(t, c1, 'P')
	waitFor(t, 5*time.Second, func() bool { return s.Parked() == 2 }, "conn 1 did not park")

	s.ChargeConn(1) // a tunnel leg appears: budget now oversubscribed
	expectClosed(t, c1, "newest parked conn after ChargeConn")
	waitFor(t, 5*time.Second, func() bool { return s.Parked() == 1 }, "shed conn still parked")
	roundTrip(t, c0, 'P') // the older conn survives
	s.ChargeConn(-1)

	st := s.Stats()
	if st.ShedParked != 1 {
		t.Errorf("ShedParked = %d, want 1", st.ShedParked)
	}
	if st.LivePeak > 2 {
		t.Errorf("LivePeak = %d exceeds the budget 2", st.LivePeak)
	}
}

// TestPerIPRateLimitAtAccept: a burst of connections from one IP is
// clipped to the bucket's burst; over-rate conns are closed before any
// handler runs. Single-listener mode so exactly one bucket applies.
func TestPerIPRateLimitAtAccept(t *testing.T) {
	var served int64
	var mu sync.Mutex
	s, err := New(Config{
		Workers:          2,
		DisableReusePort: true,
		PerIPAcceptRate:  1, // 1/s: no meaningful refill inside the test
		PerIPAcceptBurst: 2,
		Handler: func(conn net.Conn) {
			mu.Lock()
			served++
			mu.Unlock()
			buf := make([]byte, 1)
			if _, err := conn.Read(buf); err == nil {
				conn.Write(buf)
			}
			conn.Close()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	const dials = 10
	ok := 0
	for i := 0; i < dials; i++ {
		conn, err := net.Dial("tcp", s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		conn.Write([]byte{'x'})
		if _, rerr := io.ReadFull(conn, make([]byte, 1)); rerr == nil {
			ok++
		}
		conn.Close()
	}
	// Burst 2 at rate 1/s: 2 admitted, maybe 3 if the loop straddles a
	// refill. The rest must be closed at accept.
	if ok < 2 || ok > 3 {
		t.Errorf("%d connections served, want 2 (burst) or 3 (one refill)", ok)
	}
	st := s.Stats()
	if want := uint64(dials - ok); st.Ratelimited != want {
		t.Errorf("Ratelimited = %d, want %d", st.Ratelimited, want)
	}
	mu.Lock()
	defer mu.Unlock()
	if served != int64(ok) {
		t.Errorf("handler ran for %d conns but %d clients got responses", served, ok)
	}
}

// scriptedListener feeds acceptLoop a canned sequence of accept
// results, then blocks until closed.
type scriptedListener struct {
	steps  []func() (net.Conn, error)
	i      int
	closed chan struct{}
	once   sync.Once
}

func newScriptedListener(steps ...func() (net.Conn, error)) *scriptedListener {
	return &scriptedListener{steps: steps, closed: make(chan struct{})}
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	if l.i < len(l.steps) {
		step := l.steps[l.i]
		l.i++
		return step()
	}
	<-l.closed
	return nil, net.ErrClosed
}

func (l *scriptedListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

// TestAcceptLoopShedsOnFDExhaustion drives the accept loop through
// EMFILE directly: descriptor exhaustion must shed parked connections
// (freeing their descriptors) and keep the loop alive, and the budget
// counters must record the policy — PR 5's sleep-and-hope EMFILE
// survival turned into deliberate reclamation.
func TestAcceptLoopShedsOnFDExhaustion(t *testing.T) {
	s, err := New(Config{Workers: 2, Handler: echoHandler})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: we run one acceptLoop by hand against a scripted
	// listener. Park three idle conns first (pipes: the "server" halves
	// park, we hold the client halves).
	clients := make([]net.Conn, 3)
	for i := range clients {
		client, server := net.Pipe()
		clients[i] = client
		if !s.Requeue(server) {
			t.Fatal("Requeue refused on a fresh server")
		}
		want := int64(i + 1)
		waitFor(t, 5*time.Second, func() bool { return s.Parked() == want }, "pipe did not park")
	}

	emfile := func() (net.Conn, error) {
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: &fdErr{}}
	}
	l := newScriptedListener(emfile, emfile)
	s.acceptWG.Add(1)
	done := make(chan struct{})
	go func() {
		s.acceptLoop(0, l)
		close(done)
	}()

	// First EMFILE sheds all three parked conns (batch of
	// fdPressureSheds); second finds nothing and backs off; the
	// scripted ErrClosed then retires the loop — it never died.
	for i, c := range clients {
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if n, err := c.Read(make([]byte, 1)); err == nil || n > 0 {
			t.Fatalf("parked pipe %d not closed under fd pressure (n=%d err=%v)", i, n, err)
		}
	}
	l.Close()
	<-done

	st := s.Stats()
	if st.AcceptRetries != 2 {
		t.Errorf("AcceptRetries = %d, want 2", st.AcceptRetries)
	}
	if st.ShedParked != 3 {
		t.Errorf("ShedParked = %d, want 3", st.ShedParked)
	}
	if st.Parked != 0 {
		t.Errorf("Parked = %d, want 0 after shedding", st.Parked)
	}
	if st.BudgetRejected != 0 || st.Ratelimited != 0 {
		t.Errorf("fd-pressure shedding leaked into other counters: rejected %d ratelimited %d",
			st.BudgetRejected, st.Ratelimited)
	}
}

// fdErr unwraps to EMFILE like a real accept(2) failure does.
type fdErr struct{}

func (*fdErr) Error() string { return "accept: too many open files" }
func (*fdErr) Unwrap() error { return syscall.EMFILE }
