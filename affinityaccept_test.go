package affinityaccept

import (
	"strings"
	"testing"
)

func TestFacadeSimulate(t *testing.T) {
	r := Simulate(RunConfig{
		Machine:      AMD48(),
		Cores:        2,
		Listen:       AffinityAccept,
		Server:       Lighttpd,
		ConnsPerCore: 16,
		WarmupS:      0.3,
		MeasureS:     0.3,
		Seed:         1,
	})
	if r.ReqPerSecPerCore <= 0 {
		t.Fatal("no throughput")
	}
	if r.Stack.Stats.RequestsLocal != r.Stack.Stats.Requests {
		t.Fatal("affinity-accept should process everything locally")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments", len(ids))
	}
	res, err := RunExperiment("T1", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "T1" || !strings.Contains(res.Render(), "AMD48") {
		t.Fatal("table 1 render wrong")
	}
	if _, err := RunExperiment("bogus", Options{}); err == nil {
		t.Fatal("bogus experiment should error")
	}
	if DescribeExperiment("T5") == "" {
		t.Fatal("missing description")
	}
}

func TestFacadeBalancer(t *testing.T) {
	b := NewBalancer(BalancerConfig{Cores: 2, Backlog: 8})
	if !b.Push(0, nil) {
		t.Fatal("push failed")
	}
	_, from, ok := b.Pop(0)
	if !ok || from != 0 {
		t.Fatal("pop failed")
	}
	ft := NewFlowTable(64, 2)
	if ft.Groups() != 64 {
		t.Fatal("flow table wrong")
	}
	k := FlowKey{Proto: 6, SrcPort: 1234, DstPort: 80}
	if k.Hash() == 0 {
		t.Log("hash may legitimately be zero, just exercising the API")
	}
	if ft.CoreForPort(1234) < 0 || ft.CoreForPort(1234) > 1 {
		t.Fatal("steering out of range")
	}
}

func TestMachinePresets(t *testing.T) {
	if AMD48().Cores() != 48 || Intel80().Cores() != 80 {
		t.Fatal("machine presets wrong")
	}
}
