// Command affinity-top is a live terminal dashboard for an
// affinityaccept server: it polls the unified /metrics endpoint and the
// /debug/flows journey endpoint and renders per-worker load, locality,
// steal and migration rates, plus the hottest flow groups with the tail
// of their journeys — the §3.3 control plane at a glance.
//
// Usage:
//
//	affinity-top -addr 127.0.0.1:8080
//	affinity-top -addr 127.0.0.1:8080 -every 500ms -top 12
//	affinity-top -addr 127.0.0.1:8080 -once        # one frame, no clear
//
// The server must mount httpaff.MetricsHandler on /metrics and
// httpaff.FlowsHandler on /debug/flows (affinity-bench -http does, as
// do both examples).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"affinityaccept/internal/obs"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "server host:port (must serve /metrics and /debug/flows)")
		every = flag.Duration("every", time.Second, "poll period")
		top   = flag.Int("top", 8, "hottest flow groups to show")
		tail  = flag.Int("tail", 5, "journey hops to show per group")
		once  = flag.Bool("once", false, "render a single frame and exit (no screen clear; for scripts and CI)")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	var prev *sample
	for {
		cur, err := poll(client, *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "poll:", err)
			os.Exit(1)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		render(os.Stdout, *addr, cur, prev, *top, *tail)
		if *once {
			return
		}
		prev = cur
		time.Sleep(*every)
	}
}

// sample is one poll: the parsed metric series plus the journey body.
type sample struct {
	at     time.Time
	series map[string]float64 // full series name (with labels) -> value
	flows  flowsBody
}

// flowsBody mirrors the /debug/flows response shape.
type flowsBody struct {
	Workers   int           `json:"workers"`
	NextSince uint64        `json:"nextSince"`
	Truncated bool          `json:"truncated"`
	Journeys  []obs.Journey `json:"journeys"`
}

func poll(client *http.Client, addr string) (*sample, error) {
	s := &sample{at: time.Now()}
	body, err := get(client, "http://"+addr+"/metrics")
	if err != nil {
		return nil, err
	}
	s.series = parseProm(body)
	body, err = get(client, "http://"+addr+"/debug/flows")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(body, &s.flows); err != nil {
		return nil, fmt.Errorf("/debug/flows: %w", err)
	}
	return s, nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// parseProm reads Prometheus text exposition into a flat map keyed by
// the full series name including its label set, e.g.
// `affinity_served_total{worker="0",queue="local"}`.
func parseProm(text []byte) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(string(text), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// val reads one series, 0 when absent.
func (s *sample) val(name string) float64 { return s.series[name] }

// worker reads a per-worker series like `name{worker="3"}`.
func (s *sample) worker(name string, w int) float64 {
	return s.series[fmt.Sprintf(`%s{worker="%d"}`, name, w)]
}

// rate is (cur-prev)/dt per second for one series, 0 on the first frame.
func rate(cur, prev *sample, name string) float64 {
	if prev == nil {
		return 0
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return 0
	}
	return (cur.series[name] - prev.series[name]) / dt
}

func render(w io.Writer, addr string, cur, prev *sample, top, tailN int) {
	workers := int(cur.val("affinity_workers"))
	if workers <= 0 {
		workers = cur.flows.Workers
	}
	var served, local, stolen float64
	for i := 0; i < workers; i++ {
		l := cur.series[fmt.Sprintf(`affinity_served_total{worker="%d",queue="local"}`, i)]
		st := cur.series[fmt.Sprintf(`affinity_served_total{worker="%d",queue="stolen"}`, i)]
		served += l + st
		local += l
		stolen += st
	}
	locality := 0.0
	if served > 0 {
		locality = 100 * local / served
	}
	crossSteals := cur.series[`affinity_cross_chip_steals_total{dist="cross"}`]
	crossMigr := cur.series[`affinity_cross_chip_migrations_total{dist="cross"}`]

	fmt.Fprintf(w, "affinity-top — %s — %s\n", addr, cur.at.Format("15:04:05"))
	fmt.Fprintf(w, "workers %d  served %.0f (%.1f%% local)  stolen %.0f  migrations %.0f  parked %.0f\n",
		workers, served, locality, stolen,
		cur.val("affinity_migrations_total"), cur.val("affinity_parked"))
	if crossSteals > 0 || crossMigr > 0 {
		fmt.Fprintf(w, "numa: cross-chip steals %.0f  cross-chip migrations %.0f  est steal cycles %.0f\n",
			crossSteals, crossMigr, cur.val("affinity_steal_est_cycles_total"))
	}
	if iv := cur.val("affinity_migrate_interval_seconds"); iv > 0 {
		fmt.Fprintf(w, "balance: interval %s  frozen groups %.0f (freezes %.0f, thaws %.0f)\n",
			time.Duration(iv*float64(time.Second)).Round(time.Millisecond),
			cur.val("affinity_frozen_groups"),
			cur.val("affinity_group_freezes_total"),
			cur.val("affinity_group_unfreezes_total"))
	}
	if prev != nil {
		var servedRate, stealRate float64
		for i := 0; i < workers; i++ {
			servedRate += rate(cur, prev, fmt.Sprintf(`affinity_served_total{worker="%d",queue="local"}`, i))
			servedRate += rate(cur, prev, fmt.Sprintf(`affinity_served_total{worker="%d",queue="stolen"}`, i))
			stealRate += rate(cur, prev, fmt.Sprintf(`affinity_served_total{worker="%d",queue="stolen"}`, i))
		}
		fmt.Fprintf(w, "rates: %.0f served/s  %.1f steals/s  %.1f migrations/s  %.1f requeues/s\n",
			servedRate, stealRate,
			rate(cur, prev, "affinity_migrations_total"),
			rate(cur, prev, "affinity_requeued_total"))
	}

	fmt.Fprintf(w, "\n%-6s %4s %4s %10s %10s %10s %7s %5s %9s\n",
		"worker", "chip", "cpu", "accepted", "local", "stolen", "qdepth", "busy", "local/s")
	for i := 0; i < workers; i++ {
		busy := " "
		if cur.worker("affinity_worker_busy", i) > 0 {
			busy = "*"
		}
		// Presence-checked: val() reads 0 for absent series, which would
		// render as a false pin to CPU 0 on servers without the gauge.
		cpu := "-"
		if v, ok := cur.series[fmt.Sprintf(`affinity_worker_pinned_cpu{worker="%d"}`, i)]; ok && v >= 0 {
			cpu = strconv.Itoa(int(v))
		}
		perLocal := cur.series[fmt.Sprintf(`affinity_served_total{worker="%d",queue="local"}`, i)]
		perStolen := cur.series[fmt.Sprintf(`affinity_served_total{worker="%d",queue="stolen"}`, i)]
		localRate := 0.0
		if prev != nil {
			localRate = rate(cur, prev, fmt.Sprintf(`affinity_served_total{worker="%d",queue="local"}`, i))
		}
		fmt.Fprintf(w, "%-6d %4.0f %4s %10.0f %10.0f %10.0f %7.0f %5s %9.0f\n",
			i, cur.worker("affinity_worker_chip", i), cpu,
			cur.worker("affinity_accepted_total", i), perLocal, perStolen,
			cur.worker("affinity_queue_depth", i), busy, localRate)
	}

	js := append([]obs.Journey(nil), cur.flows.Journeys...)
	sort.SliceStable(js, func(a, b int) bool { return len(js[a].Hops) > len(js[b].Hops) })
	if len(js) > top {
		js = js[:top]
	}
	trunc := ""
	if cur.flows.Truncated {
		trunc = " (server truncated)"
	}
	fmt.Fprintf(w, "\nhottest %d of %d flow groups%s\n", len(js), len(cur.flows.Journeys), trunc)
	fmt.Fprintf(w, "%-7s %6s %5s %5s %6s  %s\n", "group", "owner", "hops", "migr", "steals", "journey tail")
	for _, j := range js {
		fmt.Fprintf(w, "%-7d %6d %5d %5d %6d  %s\n",
			j.Group, j.Owner, len(j.Hops), j.Migrations, j.Steals, tailString(j, tailN))
	}
}

// tailString renders a journey's newest hops as "kind@worker" links.
func tailString(j obs.Journey, n int) string {
	hops := j.Tail(n)
	parts := make([]string, 0, len(hops)+1)
	if len(hops) < len(j.Hops) {
		parts = append(parts, "…")
	}
	for _, h := range hops {
		parts = append(parts, fmt.Sprintf("%s@%d", h.Kind, h.Worker))
	}
	return strings.Join(parts, " → ")
}
