// Trace export for the -trace flag: the drained control-plane timeline
// becomes a Chrome trace-event file (one track per worker, residency
// spans per flow group) that loads in chrome://tracing or Perfetto.
package main

import (
	"os"

	"affinityaccept/internal/obs"
)

// saveTrace writes the event timeline to path in Chrome trace-event
// format and returns the residency-span count.
func saveTrace(path string, workers int, events []obs.Event) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	spans, err := obs.WriteTrace(f, workers, events)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return spans, err
}
