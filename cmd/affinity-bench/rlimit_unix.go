//go:build unix

package main

import "syscall"

// raiseFDLimit lifts the soft descriptor limit to the hard limit and
// reports the result. An in-process loopback benchmark pays two
// descriptors per connection (client and server end), so a 10k
// held-open -ws population needs ~20k descriptors before counting
// listeners and pipes — default soft limits (often 1024) would turn the
// run into an EMFILE test.
func raiseFDLimit() uint64 {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0
	}
	if lim.Cur < lim.Max {
		lim.Cur = lim.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)
		syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim)
	}
	return lim.Cur
}
