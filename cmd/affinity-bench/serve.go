// The -serve / -client modes drive the real serve.Server (instead of
// the simulator) and print a locality/steal report in the same aligned
// table shape as the simulator's experiments.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept"
	"affinityaccept/internal/loadgen"
	"affinityaccept/internal/obs"
)

// serveOpts carries the -serve/-client flag values.
type serveOpts struct {
	addr     string
	client   string // external target; empty = built-in loopback server
	workers  int
	clients  int
	reqs     int // requests per connection
	payload  int // bytes per request/response
	duration time.Duration
	stallMS  float64 // artificial per-connection stall on worker 0
	noShard  bool    // force the single-shared-listener fallback

	longlived    int           // long-lived skewed connections (0 = short-lived mode)
	hotWorkers   int           // workers whose groups receive the skew (<=1 = worker 0 only)
	work         time.Duration // per-request handler service time in longlived mode
	migrate      bool          // run the §3.3.2 migration loop
	migrateEvery time.Duration // migration tick (0 = paper default)
	groups       int           // flow-group count (0 = default)
	jsonPath     string        // append metrics to this JSON array file
	tracePath    string        // save a Chrome trace-event file here
	chips        int           // simulated chip count for NUMA attribution
	distAware    bool          // order steal victims same-chip-first (chips > 1)
	adaptive     bool          // adaptive migration interval + ping-pong freezing
	pin          bool          // sched_setaffinity each worker thread to a CPU
}

// scenario names the run for reports and the JSON trajectory file.
func (o serveOpts) scenario() string {
	switch {
	case o.longlived > 0 && o.migrate:
		return "longlived-migrate"
	case o.longlived > 0:
		return "longlived-steal-only"
	case o.stallMS > 0:
		return "echo-stall"
	default:
		return "echo"
	}
}

// runServeBench starts (unless -client points elsewhere) a serve.Server,
// drives it with a closed-loop load generator over loopback — short
// echo connections by default, long-lived skewed keep-alive connections
// with -longlived — and prints throughput, latency percentiles and the
// per-worker locality/steal/migration table.
func runServeBench(o serveOpts) error {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
		if o.workers < 2 {
			o.workers = 2 // stealing needs someone to steal from
		}
	}
	if o.longlived > 0 && o.stallMS > 0 {
		// The handler switch below would silently drop the stall and
		// mislabel the run; refuse rather than measure the wrong thing.
		return fmt.Errorf("-stall cannot be combined with -longlived (the keep-alive workload overloads worker 0 via -work instead)")
	}
	if o.longlived > 0 && o.groups == 0 {
		// A compact table keeps the skew legible — worker 0 owns
		// groups/workers of them and the report shows whole groups
		// moving — while 64 groups is still fine-grained enough for
		// migration to spread the hot groups evenly over the claimants.
		o.groups = 64
	}
	var srv *affinityaccept.Server
	target := o.client
	if target == "" {
		cfg := affinityaccept.ServeConfig{
			Addr:             o.addr,
			Workers:          o.workers,
			DisableReusePort: o.noShard,
			FlowGroups:       o.groups,
			MigrateInterval:  o.migrateEvery,
			DisableMigration: !o.migrate,
			Chips:            o.chips,

			DisableDistanceAware: !o.distAware,
			AdaptiveMigration:    o.adaptive,
			PinWorkers:           o.pin,
		}
		switch {
		case o.longlived > 0:
			cfg.Handler = func(conn net.Conn) { keepAliveEcho(srv, conn, o.payload, o.work) }
			// The skewed keep-alive queue must cross the busy watermark
			// for stealing (and therefore migration) to engage.
			cfg.Backlog = o.workers * 64
			cfg.HighPct, cfg.LowPct = 20, 5
		case o.stallMS > 0:
			stall := time.Duration(o.stallMS * float64(time.Millisecond))
			cfg.WorkerHandler = func(worker int, conn net.Conn) {
				if worker == 0 {
					time.Sleep(stall)
				}
				echo(conn)
			}
			// Stealing engages when the stalled worker crosses its high
			// watermark; lower it so modest benchmark loads get there.
			cfg.HighPct, cfg.LowPct = 20, 5
		default:
			cfg.Handler = echo
		}
		var err error
		srv, err = affinityaccept.NewServer(cfg)
		if err != nil {
			return err
		}
		srv.Start()
		target = srv.Addr().String()
		mode := "shared listener"
		if srv.Sharded() {
			mode = "SO_REUSEPORT shards"
		}
		migr := "off"
		if o.migrate {
			migr = "on"
		}
		fmt.Printf("serving on %s: %d workers, %s, %d flow groups, migration %s\n",
			target, o.workers, mode, srv.FlowGroups(), migr)
		if o.chips > 1 {
			order := "distance-aware (same-chip victims first)"
			if !o.distAware {
				order = "distance-blind (wraparound scan)"
			}
			fmt.Printf("numa: %d chips, %s steal order\n", o.chips, order)
		}
	} else {
		fmt.Printf("driving external server at %s\n", target)
	}

	var lat []float64
	var requests, conns, failed uint64
	if o.longlived > 0 {
		lat, requests, conns, failed = driveLongLived(target, srv, o)
	} else {
		lat, requests, conns, failed = drive(target, o)
	}
	secs := o.duration.Seconds()

	fmt.Println()
	if o.longlived > 0 {
		hotDesc := "worker 0's groups"
		if o.hotWorkers > 1 {
			hotDesc = fmt.Sprintf("%d hot workers' groups", o.hotWorkers)
		}
		fmt.Printf("SERVE — skewed keep-alive load over loopback (%d long-lived conns on %s, %dB payload, %v work/req)\n",
			o.longlived, hotDesc, o.payload, o.work)
	} else {
		fmt.Printf("SERVE — closed-loop echo load over loopback (%d clients, %d reqs/conn, %dB payload)\n",
			o.clients, o.reqs, o.payload)
	}
	header := []string{"workers", "clients", "secs", "req/s", "conn/s", "p50(us)", "p95(us)", "p99(us)", "failed"}
	nClients := o.clients
	if o.longlived > 0 {
		nClients = o.longlived
	}
	row := []string{
		fmt.Sprintf("%d", o.workers),
		fmt.Sprintf("%d", nClients),
		fmt.Sprintf("%.1f", secs),
		fmt.Sprintf("%.0f", float64(requests)/secs),
		fmt.Sprintf("%.0f", float64(conns)/secs),
		fmt.Sprintf("%.0f", percentile(lat, 50)),
		fmt.Sprintf("%.0f", percentile(lat, 95)),
		fmt.Sprintf("%.0f", percentile(lat, 99)),
		fmt.Sprintf("%d", failed),
	}
	printAligned(header, [][]string{row})

	rep := benchReport{
		Scenario:     o.scenario(),
		Workers:      o.workers,
		Clients:      nClients,
		LongLived:    o.longlived,
		DurationSecs: secs,
		ReqPerSec:    float64(requests) / secs,
		ConnPerSec:   float64(conns) / secs,
		P50us:        percentile(lat, 50),
		P95us:        percentile(lat, 95),
		P99us:        percentile(lat, 99),
		Failed:       failed,
		MigrationOn:  o.migrate,
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Println("shutdown:", err)
		}
		st := srv.Stats()
		fmt.Println()
		fmt.Printf("locality: %.1f%% of %d handler passes served by the flow group's owning worker (%d stolen, %d dropped)\n",
			st.LocalityPct(), st.Served, st.ServedStolen, st.Dropped)
		if o.longlived > 0 {
			fmt.Printf("migration report: %d flow-group migrations, %d keep-alive requeues\n",
				st.Migrations, st.Requeued)
			// Cross-check the stats counter against the control-plane
			// event ring: every migration the balancer applied must have
			// left a KindMigrate event (the rare-event ring never evicts
			// them for park/wake churn), so a mismatch means the trace
			// plane lost control-plane history.
			events := srv.Events()
			var migrateEvents uint64
			migratedGroups := make(map[int32]bool)
			for _, ev := range events {
				if ev.Kind == obs.KindMigrate {
					migrateEvents++
					migratedGroups[ev.Group] = true
				}
			}
			rep.MigrateEvents = migrateEvents
			if migrateEvents == st.Migrations {
				fmt.Printf("event trace: %d migrate events on the control ring — matches the stats counter\n", migrateEvents)
			} else {
				fmt.Printf("event trace: WARNING %d migrate events for %d stats migrations\n", migrateEvents, st.Migrations)
			}
			// Stitch the timeline into per-group journeys and check the
			// causal layer against the same counter: the migrate hops
			// summed over journeys must equal Stats.Migrations, and every
			// group a migrate event names must have stitched into a
			// journey of its own.
			journeys := obs.Stitch(events)
			var journeyMigrates uint64
			journeyGroups := make(map[int32]bool)
			for _, j := range journeys {
				journeyMigrates += uint64(j.Migrations)
				journeyGroups[j.Group] = true
			}
			rep.Journeys = len(journeys)
			rep.JourneyMigrateHops = journeyMigrates
			missing := 0
			for g := range migratedGroups {
				if !journeyGroups[g] {
					missing++
				}
			}
			if journeyMigrates == st.Migrations && missing == 0 {
				fmt.Printf("flow journeys: %d stitched; %d migrate hops — matches the stats counter, every migrated group has a journey\n",
					len(journeys), journeyMigrates)
			} else {
				fmt.Printf("flow journeys: WARNING %d stitched, %d migrate hops for %d stats migrations, %d migrated groups without a journey\n",
					len(journeys), journeyMigrates, st.Migrations, missing)
			}
		}
		fmt.Print(st)
		if o.stallMS > 0 {
			fmt.Printf("note: worker 0 stalled %.1fms per connection; \"stolen\" shows the §3.3.1 rescue\n", o.stallMS)
		}
		if o.longlived > 0 && o.migrate {
			fmt.Println("note: \"migr-in\" shows §3.3.2 — non-busy workers claimed worker 0's hot groups, making later passes local")
		}
		rep.Sharded = st.Sharded
		rep.LocalityPct = st.LocalityPct()
		rep.StealPct = st.StealPct()
		rep.ServedStolen = st.ServedStolen
		rep.Migrations = st.Migrations
		rep.Requeued = st.Requeued
		rep.Dropped = st.Dropped
		rep.Chips = o.chips
		rep.CrossChipSteals = st.CrossChipSteals
		rep.CrossChipMigrations = st.CrossChipMigrations
		rep.StealEstCycles = st.StealEstCycles
		if o.chips > 1 && !o.distAware {
			rep.DistanceBlind = true
		}
		if o.adaptive {
			rep.AdaptiveIntervalMs = float64(st.AdaptiveInterval) / float64(time.Millisecond)
			rep.FrozenGroups = st.FrozenGroups
			rep.GroupFreezes = st.GroupFreezes
			rep.GroupUnfreezes = st.GroupUnfreezes
		}
		rep.PinnedWorkers = st.PinnedWorkers
		rep.PinFailures = st.PinFailures
		if o.tracePath != "" {
			spans, err := saveTrace(o.tracePath, o.workers, srv.Events())
			if err != nil {
				return fmt.Errorf("write %s: %w", o.tracePath, err)
			}
			rep.TraceFile = o.tracePath
			rep.TraceSpans = spans
			fmt.Printf("trace: %d residency spans written to %s\n", spans, o.tracePath)
		}
	}
	rep.fillEnv()
	if o.jsonPath != "" {
		if err := appendJSONReport(o.jsonPath, rep); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
		fmt.Printf("\nappended %q record to %s\n", rep.Scenario, o.jsonPath)
	}
	return nil
}

// keepAliveEcho is the long-lived-mode handler: one request per pass
// (read payload, spend the service time, echo), then the connection
// goes back to the server via Requeue so the next pass re-consults the
// flow table — the path migration optimizes.
func keepAliveEcho(srv *affinityaccept.Server, conn net.Conn, payload int, work time.Duration) {
	buf := make([]byte, payload)
	if _, err := io.ReadFull(conn, buf); err != nil {
		conn.Close()
		return
	}
	if work > 0 {
		time.Sleep(work)
	}
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		return
	}
	if !srv.Requeue(conn) {
		conn.Close()
	}
}

// echo copies the client's bytes back until EOF.
func echo(conn net.Conn) {
	io.Copy(conn, conn)
	conn.Close()
}

// drive runs the closed-loop clients and returns per-request latencies
// (µs), plus request/connection/failure counts.
func drive(target string, o serveOpts) (lat []float64, requests, conns, failed uint64) {
	var mu sync.Mutex
	var reqN, connN, failN atomic.Uint64
	stop := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := make([]byte, o.payload)
			buf := make([]byte, o.payload)
			local := make([]float64, 0, 4096)
			defer func() {
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
			for time.Now().Before(stop) {
				conn, err := net.Dial("tcp", target)
				if err != nil {
					failN.Add(1)
					time.Sleep(time.Millisecond) // don't hot-spin on a dead target
					continue
				}
				conn.SetDeadline(time.Now().Add(10 * time.Second))
				connN.Add(1)
				for i := 0; i < o.reqs && time.Now().Before(stop); i++ {
					t0 := time.Now()
					if _, err := conn.Write(msg); err != nil {
						failN.Add(1)
						break
					}
					if _, err := io.ReadFull(conn, buf); err != nil {
						failN.Add(1)
						break
					}
					local = append(local, float64(time.Since(t0).Microseconds()))
					reqN.Add(1)
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	return lat, reqN.Load(), connN.Load(), failN.Load()
}

// driveLongLived opens o.longlived persistent connections whose source
// ports all hash into flow groups initially owned by worker 0 — the
// paper's skewed long-lived workload — and runs request/response loops
// on every connection for the window.
func driveLongLived(target string, srv *affinityaccept.Server, o serveOpts) (lat []float64, requests, conns, failed uint64) {
	groups := 1
	for groups < o.groups {
		groups <<= 1
	}
	base := loadgen.PortBase(groups)
	ownerOf := func(g int) int {
		if srv != nil {
			return srv.OwnerOf(uint16(base + g))
		}
		// External target: assume a fresh table (no migrations yet).
		return affinityaccept.InitialFlowOwner(g, o.workers)
	}
	if srv == nil {
		fmt.Printf("note: external target — the skew assumes the server runs %d workers and %d flow groups with no prior migrations; pass matching -workers/-groups or the workload is not skewed\n",
			o.workers, groups)
	}
	// The skew targets worker 0's groups by default. With -hot-workers N
	// the heat lands on N workers spread one per chip first (worker 0,
	// then the first worker of the next chip, …), so a distance-aware
	// A/B gives every thief both a same-chip and a cross-chip hot victim
	// to choose between.
	hotOwners := map[int]bool{0: true}
	if o.hotWorkers > 1 {
		chips := o.chips
		if chips < 1 {
			chips = 1
		}
		perChip := (o.workers + chips - 1) / chips
		hotOwners = make(map[int]bool)
		for k := 0; k < o.hotWorkers; k++ {
			w := ((k%chips)*perChip + k/chips) % o.workers
			hotOwners[w] = true
		}
	}
	var hot []int
	for g := 0; g < groups; g++ {
		if hotOwners[ownerOf(g)] {
			hot = append(hot, g)
		}
	}
	if len(hot) == 0 {
		hot = []int{0}
	}

	var mu sync.Mutex
	var reqN, connN, failN atomic.Uint64
	stop := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for i := 0; i < o.longlived; i++ {
		conn, err := loadgen.DialGroup(target, hot[i%len(hot)], groups)
		if err != nil {
			failN.Add(1)
			continue
		}
		connN.Add(1)
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(o.duration + 30*time.Second))
			msg := make([]byte, o.payload)
			local := make([]float64, 0, 4096)
			defer func() {
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
			for time.Now().Before(stop) {
				t0 := time.Now()
				if _, err := conn.Write(msg); err != nil {
					failN.Add(1)
					return
				}
				if _, err := io.ReadFull(conn, msg); err != nil {
					failN.Add(1)
					return
				}
				local = append(local, float64(time.Since(t0).Microseconds()))
				reqN.Add(1)
			}
		}(conn)
	}
	wg.Wait()
	return lat, reqN.Load(), connN.Load(), failN.Load()
}

// percentile returns the p-th percentile of values (sorting a copy).
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// printAligned renders one header and rows with the simulator tables'
// aligned-column style.
func printAligned(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, h := range header {
		fmt.Printf("%-*s  ", widths[i], h)
	}
	fmt.Println()
	for _, row := range rows {
		for i, cell := range row {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
}
