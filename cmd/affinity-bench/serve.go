// The -serve / -client modes drive the real serve.Server (instead of
// the simulator) and print a locality/steal report in the same aligned
// table shape as the simulator's experiments.
package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept"
)

// serveOpts carries the -serve/-client flag values.
type serveOpts struct {
	addr     string
	client   string // external target; empty = built-in loopback server
	workers  int
	clients  int
	reqs     int // requests per connection
	payload  int // bytes per request/response
	duration time.Duration
	stallMS  float64 // artificial per-connection stall on worker 0
	noShard  bool    // force the single-shared-listener fallback
}

// runServeBench starts (unless -client points elsewhere) a serve.Server
// with an echo handler, drives it with a closed-loop load generator
// over loopback, and prints throughput, latency percentiles and the
// per-worker locality/steal table.
func runServeBench(o serveOpts) error {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
		if o.workers < 2 {
			o.workers = 2 // stealing needs someone to steal from
		}
	}
	var srv *affinityaccept.Server
	target := o.client
	if target == "" {
		cfg := affinityaccept.ServeConfig{
			Addr:             o.addr,
			Workers:          o.workers,
			DisableReusePort: o.noShard,
		}
		if o.stallMS > 0 {
			stall := time.Duration(o.stallMS * float64(time.Millisecond))
			cfg.WorkerHandler = func(worker int, conn net.Conn) {
				if worker == 0 {
					time.Sleep(stall)
				}
				echo(conn)
			}
			// Stealing engages when the stalled worker crosses its high
			// watermark; lower it so modest benchmark loads get there.
			cfg.HighPct, cfg.LowPct = 20, 5
		} else {
			cfg.Handler = echo
		}
		var err error
		srv, err = affinityaccept.NewServer(cfg)
		if err != nil {
			return err
		}
		srv.Start()
		target = srv.Addr().String()
		mode := "shared listener"
		if srv.Sharded() {
			mode = "SO_REUSEPORT shards"
		}
		fmt.Printf("serving on %s: %d workers, %s\n", target, o.workers, mode)
	} else {
		fmt.Printf("driving external server at %s\n", target)
	}

	lat, requests, conns, failed := drive(target, o)
	secs := o.duration.Seconds()

	fmt.Println()
	fmt.Printf("SERVE — closed-loop echo load over loopback (%d clients, %d reqs/conn, %dB payload)\n",
		o.clients, o.reqs, o.payload)
	header := []string{"workers", "clients", "secs", "req/s", "conn/s", "p50(us)", "p95(us)", "p99(us)", "failed"}
	row := []string{
		fmt.Sprintf("%d", o.workers),
		fmt.Sprintf("%d", o.clients),
		fmt.Sprintf("%.1f", secs),
		fmt.Sprintf("%.0f", float64(requests)/secs),
		fmt.Sprintf("%.0f", float64(conns)/secs),
		fmt.Sprintf("%.0f", percentile(lat, 50)),
		fmt.Sprintf("%.0f", percentile(lat, 95)),
		fmt.Sprintf("%.0f", percentile(lat, 99)),
		fmt.Sprintf("%d", failed),
	}
	printAligned(header, [][]string{row})

	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Println("shutdown:", err)
		}
		st := srv.Stats()
		fmt.Println()
		fmt.Printf("locality: %.1f%% of %d connections served on their accepting worker (%d stolen, %d dropped)\n",
			st.LocalityPct(), st.Served, st.ServedStolen, st.Dropped)
		fmt.Print(st)
		if o.stallMS > 0 {
			fmt.Printf("note: worker 0 stalled %.1fms per connection; \"stolen\" shows the §3.3 rescue\n", o.stallMS)
		}
	}
	return nil
}

// echo copies the client's bytes back until EOF.
func echo(conn net.Conn) {
	io.Copy(conn, conn)
	conn.Close()
}

// drive runs the closed-loop clients and returns per-request latencies
// (µs), plus request/connection/failure counts.
func drive(target string, o serveOpts) (lat []float64, requests, conns, failed uint64) {
	var mu sync.Mutex
	var reqN, connN, failN atomic.Uint64
	stop := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := make([]byte, o.payload)
			buf := make([]byte, o.payload)
			local := make([]float64, 0, 4096)
			defer func() {
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
			for time.Now().Before(stop) {
				conn, err := net.Dial("tcp", target)
				if err != nil {
					failN.Add(1)
					time.Sleep(time.Millisecond) // don't hot-spin on a dead target
					continue
				}
				conn.SetDeadline(time.Now().Add(10 * time.Second))
				connN.Add(1)
				for i := 0; i < o.reqs && time.Now().Before(stop); i++ {
					t0 := time.Now()
					if _, err := conn.Write(msg); err != nil {
						failN.Add(1)
						break
					}
					if _, err := io.ReadFull(conn, buf); err != nil {
						failN.Add(1)
						break
					}
					local = append(local, float64(time.Since(t0).Microseconds()))
					reqN.Add(1)
				}
				conn.Close()
			}
		}()
	}
	wg.Wait()
	return lat, reqN.Load(), connN.Load(), failN.Load()
}

// percentile returns the p-th percentile of values (sorting a copy).
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	idx := int(p / 100 * float64(len(s)-1))
	return s[idx]
}

// printAligned renders one header and rows with the simulator tables'
// aligned-column style.
func printAligned(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, h := range header {
		fmt.Printf("%-*s  ", widths[i], h)
	}
	fmt.Println()
	for _, row := range rows {
		for i, cell := range row {
			fmt.Printf("%-*s  ", widths[i], cell)
		}
		fmt.Println()
	}
}
