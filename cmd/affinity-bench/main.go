// Command affinity-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	affinity-bench -list
//	affinity-bench F2 T2          # run selected experiments
//	affinity-bench -quick -all    # reduced sweeps, everything
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"affinityaccept"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced sweeps and windows")
		seed  = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, id := range affinityaccept.Experiments() {
			fmt.Printf("%-4s %s\n", id, affinityaccept.DescribeExperiment(id))
		}
		return
	}

	ids := flag.Args()
	if *all || len(ids) == 0 {
		ids = affinityaccept.Experiments()
	}

	opt := affinityaccept.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		res, err := affinityaccept.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
