// Command affinity-bench regenerates the paper's tables and figures,
// and can also drive the real serve.Server over loopback.
//
// Usage:
//
//	affinity-bench -list
//	affinity-bench F2 T2          # run selected experiments
//	affinity-bench -quick -all    # reduced sweeps, everything
//
//	affinity-bench -serve                  # real-server loopback benchmark
//	affinity-bench -serve -stall 2         # stall worker 0: show stealing
//	affinity-bench -client host:port       # drive an external server
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"affinityaccept"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced sweeps and windows")
		seed  = flag.Int64("seed", 42, "simulation seed")

		serveMode = flag.Bool("serve", false, "benchmark the real serve.Server over loopback")
		client    = flag.String("client", "", "drive an external server at host:port instead of starting one")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address for -serve")
		workers   = flag.Int("workers", 0, "worker count for -serve (0 = GOMAXPROCS)")
		clients   = flag.Int("clients", 32, "concurrent load-generator connections")
		reqs      = flag.Int("reqs", 6, "requests per connection (paper's reuse: 6)")
		payload   = flag.Int("payload", 64, "request/response payload bytes")
		duration  = flag.Duration("duration", 2*time.Second, "load-generation window")
		stall     = flag.Float64("stall", 0, "stall worker 0 this many ms per connection (demonstrates stealing)")
		noShard   = flag.Bool("noshard", false, "force the shared-listener fallback instead of SO_REUSEPORT")
	)
	flag.Parse()

	if *serveMode || *client != "" {
		err := runServeBench(serveOpts{
			addr:     *addr,
			client:   *client,
			workers:  *workers,
			clients:  *clients,
			reqs:     *reqs,
			payload:  *payload,
			duration: *duration,
			stallMS:  *stall,
			noShard:  *noShard,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range affinityaccept.Experiments() {
			fmt.Printf("%-4s %s\n", id, affinityaccept.DescribeExperiment(id))
		}
		return
	}

	ids := flag.Args()
	if *all || len(ids) == 0 {
		ids = affinityaccept.Experiments()
	}

	opt := affinityaccept.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		res, err := affinityaccept.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
