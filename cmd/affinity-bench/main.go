// Command affinity-bench regenerates the paper's tables and figures,
// and can also drive the real serve.Server over loopback.
//
// Usage:
//
//	affinity-bench -list
//	affinity-bench F2 T2          # run selected experiments
//	affinity-bench -quick -all    # reduced sweeps, everything
//
//	affinity-bench -serve                  # real-server loopback benchmark
//	affinity-bench -serve -stall 2         # stall worker 0: show stealing
//	affinity-bench -serve -longlived 24    # skewed keep-alive workload:
//	                                       # flow-group migration (§3.3.2)
//	affinity-bench -serve -longlived 24 -migrate=false   # stealing only
//	affinity-bench -client host:port       # drive an external server
//	affinity-bench -serve -json BENCH_ci.json            # append a JSON record
//
//	affinity-bench -http                   # httpaff: pipelined keep-alive HTTP/1.1
//	affinity-bench -http -pipeline 32 -clients 16        # deeper pipelines
//	affinity-bench -http -migrate=false                  # without §3.3.2 migration
//
//	affinity-bench -proxy                  # proxyaff edge: client → proxy → backends
//	affinity-bench -proxy -backends 4 -pinned=false      # round-robin over 4 backends
//	affinity-bench -proxy -migrate=false                 # edge without §3.3.2 migration
//
//	affinity-bench -ws                     # wsaff: skewed long-lived WebSocket echo
//	affinity-bench -ws -clients 16 -held 1000            # plus 1000 idle held-open sockets
//	affinity-bench -ws -broadcast-every 50ms             # plus broadcast fan-out load
//	affinity-bench -ws -migrate=false                    # without §3.3.2 migration
//
//	affinity-bench -hostile                # admission control under attack:
//	                                       # normal clients + slowloris + floods
//	affinity-bench -hostile -slowloris 16 -floods 8      # heavier attack
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"time"

	"affinityaccept"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced sweeps and windows")
		seed  = flag.Int64("seed", 42, "simulation seed")

		serveMode = flag.Bool("serve", false, "benchmark the real serve.Server over loopback")
		client    = flag.String("client", "", "drive an external server at host:port instead of starting one")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address for -serve")
		workers   = flag.Int("workers", 0, "worker count for -serve (0 = GOMAXPROCS)")
		clients   = flag.Int("clients", 32, "concurrent load-generator connections")
		reqs      = flag.Int("reqs", 6, "requests per connection (paper's reuse: 6)")
		payload   = flag.Int("payload", 64, "request/response payload bytes")
		duration  = flag.Duration("duration", 2*time.Second, "load-generation window")
		stall     = flag.Float64("stall", 0, "stall worker 0 this many ms per connection (demonstrates stealing)")
		noShard   = flag.Bool("noshard", false, "force the shared-listener fallback instead of SO_REUSEPORT")

		httpMode = flag.Bool("http", false, "benchmark the httpaff HTTP/1.1 layer with pipelined keep-alive clients")
		pipeline = flag.Int("pipeline", 16, "requests per pipelined batch in -http/-proxy mode")

		proxyMode = flag.Bool("proxy", false, "benchmark the proxyaff edge: clients → reverse proxy → in-process backends")
		nBackends = flag.Int("backends", 2, "in-process backend servers in -proxy mode")
		pinned    = flag.Bool("pinned", true, "worker-pinned backend selection in -proxy mode (false = round-robin)")

		hostileMode = flag.Bool("hostile", false, "benchmark admission control: the -http workload plus slowloris and per-IP flood attackers against a hardened server")
		slowloris   = flag.Int("slowloris", 8, "header-dripping attacker connections in -hostile mode")
		floods      = flag.Int("floods", 3, "per-IP connect-flood attackers in -hostile mode")
		ipRate      = flag.Float64("ip-rate", 5, "per-IP accept rate (conns/sec per bucket) in -hostile mode")
		ipBurst     = flag.Int("ip-burst", 0, "per-IP accept burst in -hostile mode (0 = 2x -clients)")
		maxConns    = flag.Int("maxconns", 256, "transport connection budget in -hostile mode")
		headerTO    = flag.Duration("header-timeout", 500*time.Millisecond, "header read deadline in -hostile mode")

		wsMode    = flag.Bool("ws", false, "benchmark the wsaff WebSocket layer: skewed long-lived echo connections, optional held-open and broadcast load")
		held      = flag.Int("held", 0, "held-open idle subscribed WebSocket connections in -ws mode")
		broadcast = flag.Duration("broadcast-every", 0, "publish a broadcast at this period in -ws mode (0 = off)")
		scenario  = flag.String("scenario", "", "override the scenario name recorded in the -json report (-ws mode)")

		longlived    = flag.Int("longlived", 0, "drive N long-lived keep-alive connections skewed onto worker 0's flow groups (demonstrates §3.3.2 migration)")
		hotWorkers   = flag.Int("hot-workers", 1, "spread the -longlived skew over this many workers, one per chip first (the distance-aware A/B needs a hot victim on each chip)")
		work         = flag.Duration("work", 200*time.Microsecond, "per-request handler service time in -longlived mode")
		migrate      = flag.Bool("migrate", true, "enable the flow-group migration loop")
		migrateEvery = flag.Duration("migrate-interval", 0, "migration tick (0 = the paper's 100ms)")
		groups       = flag.Int("groups", 0, "flow-group count (0 = the paper's 4096; -longlived defaults to 16)")
		scrapeEvery  = flag.Duration("scrape-every", 0, "in -http mode, fetch /metrics and /debug/events at this period during the run (0 = no scraper)")
		tracePath    = flag.String("trace", "", "save the run's control-plane timeline as a Chrome trace-event file (load in chrome://tracing or Perfetto); -serve and -http modes")
		chips        = flag.Int("chips", 0, "simulated chip count for the NUMA attribution pass (0 or 1 = flat single-chip)")
		distAware    = flag.Bool("distance-aware", true, "order steal victims same-chip-first when -chips > 1 (false = the distance-blind wraparound scan)")
		adaptive     = flag.Bool("adaptive", false, "adaptive migration: back the tick interval off once locality converges, freeze ping-ponging flow groups")
		pin          = flag.Bool("pin", false, "pin each worker's OS thread to a CPU via sched_setaffinity (degrades to unpinned where unsupported)")
		jsonPath     = flag.String("json", "", "append this run's metrics to a JSON array file (e.g. BENCH_ci.json)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *hostileMode {
		burst := *ipBurst
		if burst <= 0 {
			burst = 2 * *clients
		}
		err := runHostileBench(hostileOpts{
			httpOpts: httpOpts{
				addr:         *addr,
				workers:      *workers,
				clients:      *clients,
				pipeline:     *pipeline,
				payload:      *payload,
				duration:     *duration,
				noShard:      *noShard,
				migrate:      *migrate,
				migrateEvery: *migrateEvery,
				groups:       *groups,
				jsonPath:     *jsonPath,
			},
			slowloris: *slowloris,
			floods:    *floods,
			ipRate:    *ipRate,
			ipBurst:   burst,
			maxConns:  *maxConns,
			headerTO:  *headerTO,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *wsMode {
		err := runWSBench(wsOpts{
			addr:           *addr,
			workers:        *workers,
			conns:          *clients,
			held:           *held,
			payload:        *payload,
			duration:       *duration,
			work:           *work,
			noShard:        *noShard,
			broadcastEvery: *broadcast,
			migrate:        *migrate,
			migrateEvery:   *migrateEvery,
			groups:         *groups,
			jsonPath:       *jsonPath,
			scenarioName:   *scenario,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *proxyMode {
		err := runProxyBench(proxyOpts{
			httpOpts: httpOpts{
				addr:         *addr,
				workers:      *workers,
				clients:      *clients,
				pipeline:     *pipeline,
				payload:      *payload,
				duration:     *duration,
				noShard:      *noShard,
				migrate:      *migrate,
				migrateEvery: *migrateEvery,
				groups:       *groups,
				jsonPath:     *jsonPath,
			},
			backends: *nBackends,
			pinned:   *pinned,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *httpMode {
		err := runHTTPBench(httpOpts{
			addr:         *addr,
			workers:      *workers,
			clients:      *clients,
			pipeline:     *pipeline,
			payload:      *payload,
			duration:     *duration,
			noShard:      *noShard,
			migrate:      *migrate,
			migrateEvery: *migrateEvery,
			groups:       *groups,
			jsonPath:     *jsonPath,
			scrapeEvery:  *scrapeEvery,
			tracePath:    *tracePath,
			chips:        *chips,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *serveMode || *client != "" {
		err := runServeBench(serveOpts{
			addr:         *addr,
			client:       *client,
			workers:      *workers,
			clients:      *clients,
			reqs:         *reqs,
			payload:      *payload,
			duration:     *duration,
			stallMS:      *stall,
			noShard:      *noShard,
			longlived:    *longlived,
			hotWorkers:   *hotWorkers,
			work:         *work,
			migrate:      *migrate,
			migrateEvery: *migrateEvery,
			groups:       *groups,
			jsonPath:     *jsonPath,
			tracePath:    *tracePath,
			chips:        *chips,
			distAware:    *distAware,
			adaptive:     *adaptive,
			pin:          *pin,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range affinityaccept.Experiments() {
			fmt.Printf("%-4s %s\n", id, affinityaccept.DescribeExperiment(id))
		}
		return
	}

	ids := flag.Args()
	if *all || len(ids) == 0 {
		ids = affinityaccept.Experiments()
	}

	opt := affinityaccept.Options{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		start := time.Now()
		res, err := affinityaccept.RunExperiment(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
