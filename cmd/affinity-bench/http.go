// The -http mode drives the httpaff layer — pipelined keep-alive
// HTTP/1.1 over loopback — and reports throughput, latency, the
// locality/steal/migration table, and the worker-local pool reuse rate
// that proves request memory stayed core-local.
package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/httpaff"
)

// httpOpts carries the -http flag values.
type httpOpts struct {
	addr     string
	workers  int
	clients  int // concurrent keep-alive connections
	pipeline int // requests per pipelined batch
	payload  int // response body bytes
	duration time.Duration
	noShard  bool

	migrate      bool
	migrateEvery time.Duration
	groups       int
	jsonPath     string

	// scrapeEvery > 0 runs a concurrent scraper that fetches /metrics
	// and /debug/events at this period for the whole window — the CI
	// gate that observability reads don't tax the serving path.
	scrapeEvery time.Duration

	// tracePath, when set, saves the run's control-plane timeline as a
	// Chrome trace-event file after shutdown. chips feeds the NUMA
	// attribution pass (serve.Config.Chips).
	tracePath string
	chips     int
}

func (o httpOpts) scenario() string {
	switch {
	case o.tracePath != "":
		return "http-keepalive-traced"
	case o.scrapeEvery > 0:
		return "http-keepalive-scraped"
	case o.migrate:
		return "http-keepalive"
	default:
		return "http-keepalive-nomigrate"
	}
}

// runHTTPBench starts an httpaff server, drives it with pipelined
// keep-alive clients, and prints the combined transport + pool report.
func runHTTPBench(o httpOpts) error {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
		if o.workers < 2 {
			o.workers = 2
		}
	}
	if o.pipeline <= 0 {
		o.pipeline = 16
	}
	body := bytes.Repeat([]byte("x"), o.payload)
	// The bench handler is mounted on a router alongside the unified
	// metrics and event endpoints, so a scraper can hit the same server
	// the load runs against — the production shape, not a side server.
	var srv *httpaff.Server
	r := httpaff.NewRouter()
	r.Handle("/bench", func(ctx *httpaff.RequestCtx) {
		ctx.Write(body)
	})
	r.Handle("/metrics", func(ctx *httpaff.RequestCtx) {
		httpaff.MetricsHandler(srv)(ctx)
	})
	r.Handle("/debug/events", func(ctx *httpaff.RequestCtx) {
		httpaff.EventsHandler(srv)(ctx)
	})
	r.Handle("/debug/flows", func(ctx *httpaff.RequestCtx) {
		httpaff.FlowsHandler(srv, httpaff.FlowsConfig{})(ctx)
	})
	r.Handle("/debug/trace", func(ctx *httpaff.RequestCtx) {
		httpaff.TraceHandler(srv)(ctx)
	})
	srv, err := httpaff.New(httpaff.Config{
		Addr:             o.addr,
		Workers:          o.workers,
		DisableReusePort: o.noShard,
		FlowGroups:       o.groups,
		MigrateInterval:  o.migrateEvery,
		DisableMigration: !o.migrate,
		Chips:            o.chips,
		Handler:          r.Serve,
	})
	if err != nil {
		return err
	}
	srv.Start()
	target := srv.Addr().String()
	mode := "shared listener"
	if srv.Sharded() {
		mode = "SO_REUSEPORT shards"
	}
	migr := "off"
	if o.migrate {
		migr = "on"
	}
	fmt.Printf("httpaff on %s: %d workers, %s, %d flow groups, migration %s\n",
		target, o.workers, mode, srv.FlowGroups(), migr)

	var scrapes uint64
	scrapeDone := make(chan struct{})
	if o.scrapeEvery > 0 {
		go func() {
			defer close(scrapeDone)
			scrapes = scrapeLoop(target, o.scrapeEvery, time.Now().Add(o.duration))
		}()
	} else {
		close(scrapeDone)
	}
	lat, requests, failed := driveHTTP(target, o)
	<-scrapeDone
	secs := o.duration.Seconds()

	fmt.Println()
	fmt.Printf("HTTP — pipelined keep-alive over loopback (%d conns, %d reqs/batch, %dB body)\n",
		o.clients, o.pipeline, o.payload)
	header := []string{"workers", "conns", "pipeline", "secs", "req/s", "p50(us)", "p95(us)", "p99(us)", "failed"}
	row := []string{
		fmt.Sprintf("%d", o.workers),
		fmt.Sprintf("%d", o.clients),
		fmt.Sprintf("%d", o.pipeline),
		fmt.Sprintf("%.1f", secs),
		fmt.Sprintf("%.0f", float64(requests)/secs),
		fmt.Sprintf("%.0f", percentile(lat, 50)),
		fmt.Sprintf("%.0f", percentile(lat, 95)),
		fmt.Sprintf("%.0f", percentile(lat, 99)),
		fmt.Sprintf("%d", failed),
	}
	printAligned(header, [][]string{row})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("shutdown:", err)
	}
	st := srv.Stats()
	// Server-side service latency, from the workers' own histograms:
	// head-read start to response flush, no client or loopback time.
	srvQ := srv.ServiceLatencyQuantiles(0.5, 0.99, 0.999)
	fmt.Println()
	fmt.Printf("locality: %.1f%% of %d handler passes on the owning worker; pool reuse: %.1f%% of %d gets worker-local (%d misses)\n",
		st.LocalityPct(), st.Served, st.Pool.ReusePct(), st.Pool.Gets(), st.Pool.Misses)
	fmt.Printf("keep-alive: %d requeues, %d flow-group migrations\n", st.Requeued, st.Migrations)
	fmt.Printf("server-side service latency: p50 %v  p99 %v  p999 %v\n", srvQ[0], srvQ[1], srvQ[2])
	if o.scrapeEvery > 0 {
		fmt.Printf("scraper: %d /metrics + /debug/events fetches at %v period during the run\n", scrapes, o.scrapeEvery)
	}
	fmt.Print(st)

	var traceSpans int
	if o.tracePath != "" {
		traceSpans, err = saveTrace(o.tracePath, o.workers, srv.Events())
		if err != nil {
			return fmt.Errorf("write %s: %w", o.tracePath, err)
		}
		fmt.Printf("trace: %d residency spans written to %s\n", traceSpans, o.tracePath)
	}

	rep := benchReport{
		Scenario:     o.scenario(),
		Workers:      o.workers,
		Clients:      o.clients,
		Pipeline:     o.pipeline,
		DurationSecs: secs,
		ReqPerSec:    float64(requests) / secs,
		P50us:        percentile(lat, 50),
		P95us:        percentile(lat, 95),
		P99us:        percentile(lat, 99),
		Failed:       failed,
		Sharded:      st.Sharded,
		MigrationOn:  o.migrate,
		LocalityPct:  st.LocalityPct(),
		StealPct:     st.StealPct(),
		Migrations:   st.Migrations,
		Requeued:     st.Requeued,
		Dropped:      st.Dropped,
		PoolGets:     st.Pool.Gets(),
		PoolMisses:   st.Pool.Misses,
		PoolReusePct: st.Pool.ReusePct(),
		SrvP50us:     float64(srvQ[0].Nanoseconds()) / 1e3,
		SrvP99us:     float64(srvQ[1].Nanoseconds()) / 1e3,
		SrvP999us:    float64(srvQ[2].Nanoseconds()) / 1e3,
		Scrapes:      scrapes,

		Chips:               o.chips,
		CrossChipSteals:     st.CrossChipSteals,
		CrossChipMigrations: st.CrossChipMigrations,
		TraceFile:           o.tracePath,
		TraceSpans:          traceSpans,
	}
	rep.fillEnv()
	if o.jsonPath != "" {
		if err := appendJSONReport(o.jsonPath, rep); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
		fmt.Printf("\nappended %q record to %s\n", rep.Scenario, o.jsonPath)
	}
	return nil
}

var httpBenchRequest = []byte("GET /bench HTTP/1.1\r\nHost: bench\r\nUser-Agent: affinity-bench\r\n\r\n")

// scrapeLoop fetches /metrics and /debug/events on one keep-alive
// connection at the given period until the deadline, mimicking a
// Prometheus scraper running against a loaded server. Returns the
// number of completed scrape rounds (both endpoints fetched).
func scrapeLoop(target string, every time.Duration, stop time.Time) uint64 {
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return 0
	}
	defer conn.Close()
	conn.SetDeadline(stop.Add(30 * time.Second))
	br := bufio.NewReaderSize(conn, 64<<10)
	var rounds uint64
	for time.Now().Before(stop) {
		for _, path := range []string{"/metrics", "/debug/events"} {
			if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: bench\r\nUser-Agent: affinity-scrape\r\n\r\n", path); err != nil {
				return rounds
			}
			if err := discardResponse(br); err != nil {
				return rounds
			}
		}
		rounds++
		time.Sleep(every)
	}
	return rounds
}

// discardResponse reads one Content-Length-framed response off br.
func discardResponse(br *bufio.Reader) error {
	var length int
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if v, ok := strings.CutPrefix(line, "Content-Length: "); ok {
			if length, err = strconv.Atoi(v); err != nil {
				return err
			}
		}
	}
	_, err := io.CopyN(io.Discard, br, int64(length))
	return err
}

// learnResponseLen performs one exchange and returns the (fixed)
// response length, so the batch loop can read with exact ReadFulls
// instead of parsing every response.
func learnResponseLen(conn net.Conn) (int, error) {
	if _, err := conn.Write(httpBenchRequest); err != nil {
		return 0, err
	}
	buf := make([]byte, 64<<10)
	n := 0
	for {
		m, err := conn.Read(buf[n:])
		if err != nil {
			return 0, err
		}
		n += m
		i := bytes.Index(buf[:n], []byte("\r\n\r\n"))
		if i < 0 {
			continue
		}
		cl := bytes.Index(buf[:i], []byte("Content-Length: "))
		if cl < 0 {
			return 0, fmt.Errorf("response has no Content-Length: %q", buf[:i])
		}
		end := bytes.IndexByte(buf[cl:n], '\r') + cl
		size, err := strconv.Atoi(string(buf[cl+len("Content-Length: ") : end]))
		if err != nil {
			return 0, err
		}
		total := i + 4 + size
		for n < total {
			m, err := conn.Read(buf[n:total])
			if err != nil {
				return 0, err
			}
			n += m
		}
		return total, nil
	}
}

// driveHTTP runs the closed-loop pipelined clients and returns
// per-request latencies (µs, batch RTT divided by depth), the request
// count, and failures.
func driveHTTP(target string, o httpOpts) (lat []float64, requests, failed uint64) {
	var mu sync.Mutex
	var reqN, failN atomic.Uint64
	stop := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", target)
			if err != nil {
				failN.Add(1)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(o.duration + 30*time.Second))
			respLen, err := learnResponseLen(conn)
			if err != nil {
				failN.Add(1)
				return
			}
			reqN.Add(1)
			batch := bytes.Repeat(httpBenchRequest, o.pipeline)
			resp := make([]byte, respLen*o.pipeline)
			local := make([]float64, 0, 4096)
			defer func() {
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
			for time.Now().Before(stop) {
				t0 := time.Now()
				if _, err := conn.Write(batch); err != nil {
					failN.Add(1)
					return
				}
				if _, err := io.ReadFull(conn, resp); err != nil {
					failN.Add(1)
					return
				}
				local = append(local, float64(time.Since(t0).Microseconds())/float64(o.pipeline))
				reqN.Add(uint64(o.pipeline))
			}
		}()
	}
	wg.Wait()
	return lat, reqN.Load(), failN.Load()
}
