// The -hostile mode runs the admission-control gauntlet: a normal
// pipelined keep-alive workload shares the server with slowloris
// clients (dripping header bytes to hold workers captive) and per-IP
// connect floods (hammering accept from dedicated loopback addresses).
// The report answers the only question that matters under attack: did
// the well-behaved clients' latency stay bounded while the admission
// machinery — per-IP token buckets, the header deadline, the in-flight
// headers cap, the connection budget — absorbed the abuse?
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"affinityaccept/httpaff"
)

// hostileOpts carries the -hostile flag values on top of the -http ones.
type hostileOpts struct {
	httpOpts
	slowloris int           // concurrent header-dripping clients
	floods    int           // concurrent per-IP connect-flood clients
	ipRate    float64       // per-IP accept rate (conns/sec/bucket)
	ipBurst   int           // per-IP accept burst
	maxConns  int           // transport connection budget
	headerTO  time.Duration // header read deadline
}

// hostileCounters aggregates what the attackers observed from outside.
type hostileCounters struct {
	slowClosed    atomic.Uint64 // slowloris conns the server cut off
	floodAttempts atomic.Uint64 // flood dials attempted
	floodServed   atomic.Uint64 // flood requests that got a 200
	floodRefused  atomic.Uint64 // flood conns closed/shed before a 200
}

// runHostileBench starts a hardened httpaff server, lets the normal
// workload settle, unleashes the attackers, and reports both sides.
func runHostileBench(o hostileOpts) error {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
		if o.workers < 2 {
			o.workers = 2
		}
	}
	if o.pipeline <= 0 {
		o.pipeline = 16
	}
	inflightCap := o.workers / 2
	if inflightCap < 1 {
		inflightCap = 1
	}
	body := bytes.Repeat([]byte("x"), o.payload)
	srv, err := httpaff.New(httpaff.Config{
		Addr:             o.addr,
		Workers:          o.workers,
		DisableReusePort: o.noShard,
		FlowGroups:       o.groups,
		MigrateInterval:  o.migrateEvery,
		DisableMigration: !o.migrate,
		Handler: func(ctx *httpaff.RequestCtx) {
			ctx.Write(body)
		},
		PerIPAcceptRate:    o.ipRate,
		PerIPAcceptBurst:   o.ipBurst,
		MaxConns:           o.maxConns,
		HeaderTimeout:      o.headerTO,
		MaxInflightHeaders: inflightCap,
		ShedOnOverload:     true,
	})
	if err != nil {
		return err
	}
	srv.Start()
	target := srv.Addr().String()
	fmt.Printf("httpaff (hardened) on %s: %d workers, per-IP %.0f conn/s burst %d, budget %d conns, header deadline %v, %d header slots\n",
		target, o.workers, o.ipRate, o.ipBurst, o.maxConns, o.headerTO, inflightCap)

	var hc hostileCounters
	stop := time.Now().Add(o.duration)
	var attackers sync.WaitGroup

	// Attackers hold fire until the normal clients are established
	// (connected and past their first request), then pile on for the
	// rest of the window.
	attackStart := time.Now().Add(300 * time.Millisecond)
	// Attackers dial from their own loopback aliases where the platform
	// allows (Linux routes all of 127.0.0.0/8): slowloris share one,
	// each flood gets its own, so attacker traffic exercises dedicated
	// token buckets and never spends 127.0.0.1's — the well-behaved
	// clients' — credit.
	slowSrc := loopbackSource(254, 1)
	for i := 0; i < o.slowloris; i++ {
		attackers.Add(1)
		go func(id int) {
			defer attackers.Done()
			runSlowloris(target, slowSrc, attackStart, stop, &hc)
		}(i)
	}
	for i := 0; i < o.floods; i++ {
		attackers.Add(1)
		go func(id int) {
			defer attackers.Done()
			runFlood(target, loopbackSource(1+id/250, 2+id%250), attackStart, stop, &hc)
		}(i)
	}

	lat, requests, failed := driveHostileHTTP(target, o.httpOpts)
	attackers.Wait()
	secs := o.duration.Seconds()

	fmt.Println()
	fmt.Printf("HOSTILE — %d well-behaved pipelined conns vs %d slowloris + %d per-IP floods\n",
		o.clients, o.slowloris, o.floods)
	header := []string{"workers", "conns", "secs", "req/s", "p50(us)", "p95(us)", "p99(us)", "failed"}
	row := []string{
		fmt.Sprintf("%d", o.workers),
		fmt.Sprintf("%d", o.clients),
		fmt.Sprintf("%.1f", secs),
		fmt.Sprintf("%.0f", float64(requests)/secs),
		fmt.Sprintf("%.0f", percentile(lat, 50)),
		fmt.Sprintf("%.0f", percentile(lat, 95)),
		fmt.Sprintf("%.0f", percentile(lat, 99)),
		fmt.Sprintf("%d", failed),
	}
	printAligned(header, [][]string{row})

	ad := srv.Admission()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("shutdown:", err)
	}
	st := srv.Stats()

	fmt.Println()
	fmt.Printf("slowloris: %d clients, %d cut off at the header deadline (server counted %d)\n",
		o.slowloris, hc.slowClosed.Load(), ad.HeaderTimeouts)
	fmt.Printf("floods:    %d clients, %d attempts — %d served, %d refused; server rate-limited %d at accept\n",
		o.floods, hc.floodAttempts.Load(), hc.floodServed.Load(), hc.floodRefused.Load(), st.Ratelimited)
	fmt.Printf("admission: %d header-slot sheds, %d overload sheds, %d parked shed, %d budget-rejected, live peak %d / budget %d\n",
		ad.HeaderSheds, ad.OverloadSheds, st.ShedParked, st.BudgetRejected, st.LivePeak, st.MaxConns)
	fmt.Print(st)

	rep := benchReport{
		Scenario:     "http-hostile",
		Workers:      o.workers,
		Clients:      o.clients,
		Pipeline:     o.pipeline,
		DurationSecs: secs,
		ReqPerSec:    float64(requests) / secs,
		P50us:        percentile(lat, 50),
		P95us:        percentile(lat, 95),
		P99us:        percentile(lat, 99),
		Failed:       failed,
		Sharded:      st.Sharded,
		MigrationOn:  o.migrate,
		LocalityPct:  st.LocalityPct(),
		StealPct:     st.StealPct(),
		Migrations:   st.Migrations,
		Requeued:     st.Requeued,
		Dropped:      st.Dropped,
		PoolGets:     st.Pool.Gets(),
		PoolMisses:   st.Pool.Misses,
		PoolReusePct: st.Pool.ReusePct(),

		Ratelimited:    st.Ratelimited,
		ShedParked:     st.ShedParked,
		BudgetRejected: st.BudgetRejected,
		AcceptRetries:  st.AcceptRetries,
		HeaderTimeouts: ad.HeaderTimeouts,
		HeaderSheds:    ad.HeaderSheds,
		OverloadSheds:  ad.OverloadSheds,
		LivePeak:       st.LivePeak,
		MaxConns:       st.MaxConns,
		SlowClients:    o.slowloris,
		SlowClosed:     hc.slowClosed.Load(),
		FloodClients:   o.floods,
		FloodAttempts:  hc.floodAttempts.Load(),
		FloodServed:    hc.floodServed.Load(),
		FloodRefused:   hc.floodRefused.Load(),
	}
	rep.fillEnv()
	if o.jsonPath != "" {
		if err := appendJSONReport(o.jsonPath, rep); err != nil {
			return fmt.Errorf("write %s: %w", o.jsonPath, err)
		}
		fmt.Printf("\nappended %q record to %s\n", rep.Scenario, o.jsonPath)
	}
	return nil
}

// driveHostileHTTP is driveHTTP with a connect phase that retries: a
// well-behaved client whose very first pass loses a header slot to the
// startup thundering herd redials instead of giving up, because the
// hostile run's contract is that persistent legitimate clients are
// served — a single shed 503 with Retry-After is the mechanism working,
// not a failure.
func driveHostileHTTP(target string, o httpOpts) (lat []float64, requests, failed uint64) {
	var mu sync.Mutex
	var reqN, failN atomic.Uint64
	stop := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var conn net.Conn
			var respLen int
			for attempt := 0; ; attempt++ {
				if attempt == 20 || !time.Now().Before(stop) {
					failN.Add(1)
					return
				}
				nc, err := net.Dial("tcp", target)
				if err != nil {
					time.Sleep(20 * time.Millisecond)
					continue
				}
				nc.SetDeadline(time.Now().Add(o.duration + 30*time.Second))
				if respLen, err = learnResponseLen(nc); err != nil {
					nc.Close() // shed at the door: back off and retry
					time.Sleep(50 * time.Millisecond)
					continue
				}
				conn = nc
				break
			}
			defer conn.Close()
			reqN.Add(1)
			batch := bytes.Repeat(httpBenchRequest, o.pipeline)
			resp := make([]byte, respLen*o.pipeline)
			local := make([]float64, 0, 4096)
			defer func() {
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
			for time.Now().Before(stop) {
				t0 := time.Now()
				if _, err := conn.Write(batch); err != nil {
					failN.Add(1)
					return
				}
				if _, err := io.ReadFull(conn, resp); err != nil {
					failN.Add(1)
					return
				}
				local = append(local, float64(time.Since(t0).Microseconds())/float64(o.pipeline))
				reqN.Add(uint64(o.pipeline))
			}
		}()
	}
	wg.Wait()
	return lat, reqN.Load(), failN.Load()
}

// runSlowloris drips header bytes on fresh connections until the server
// cuts each one off, reconnecting until the window closes.
func runSlowloris(target string, src net.Addr, start, stop time.Time, hc *hostileCounters) {
	d := net.Dialer{LocalAddr: src, Timeout: 2 * time.Second}
	time.Sleep(time.Until(start))
	for time.Now().Before(stop) {
		conn, err := d.Dial("tcp", target)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		conn.SetDeadline(stop.Add(5 * time.Second))
		alive := true
		if _, err := conn.Write([]byte("GET /drip HTTP/1.1\r\nX-Drip: ")); err != nil {
			alive = false
		}
		for alive && time.Now().Before(stop) {
			time.Sleep(100 * time.Millisecond)
			if _, err := conn.Write([]byte("y")); err != nil {
				alive = false
				break
			}
			// A successful read means the server answered (shed 503);
			// an error here is the cut we are waiting for.
			conn.SetReadDeadline(time.Now().Add(time.Millisecond))
			if _, err := conn.Read(make([]byte, 256)); err == nil {
				alive = false
			} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
				alive = false
			}
			conn.SetReadDeadline(stop.Add(5 * time.Second))
		}
		if !alive {
			hc.slowClosed.Add(1)
		}
		conn.Close()
	}
}

// runFlood hammers connect/request/close from src (nil = default
// source) as fast as the server lets it, counting how many attempts got
// a 200 versus were refused — closed at accept by the rate limiter,
// shed with a 503, or still unanswered after the short patience window
// (a flood does not wait politely). Rate-limited connections are closed
// the instant they are accepted, so once the bucket empties the loop
// spins faster and faster against a closed door — the counters record
// the limiter absorbing an arrival rate it could never serve.
func runFlood(target string, src net.Addr, start, stop time.Time, hc *hostileCounters) {
	d := net.Dialer{LocalAddr: src, Timeout: 2 * time.Second}
	time.Sleep(time.Until(start))
	buf := make([]byte, 1024)
	for time.Now().Before(stop) {
		hc.floodAttempts.Add(1)
		conn, err := d.Dial("tcp", target)
		if err != nil {
			hc.floodRefused.Add(1)
			time.Sleep(5 * time.Millisecond)
			continue
		}
		conn.SetDeadline(time.Now().Add(25 * time.Millisecond))
		served := false
		if _, err := conn.Write(httpBenchRequest); err == nil {
			if n, rerr := conn.Read(buf); rerr == nil && bytes.Contains(buf[:n], []byte(" 200 ")) {
				served = true
			}
		}
		conn.Close()
		if served {
			hc.floodServed.Add(1)
		} else {
			hc.floodRefused.Add(1)
		}
	}
}

// loopbackSource returns the loopback alias 127.0.x.y as a dial source
// when the platform routes 127.0.0.0/8 (Linux does), nil otherwise —
// with nil the attacker shares the default source IP and its bucket.
func loopbackSource(x, y int) net.Addr {
	ip := net.IPv4(127, 0, byte(x), byte(y))
	probe, err := net.Listen("tcp", ip.String()+":0")
	if err != nil {
		return nil
	}
	probe.Close()
	return &net.TCPAddr{IP: ip}
}
