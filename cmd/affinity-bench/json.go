// JSON emission for the perf trajectory: each -serve run can append one
// record to a JSON array file (CI writes BENCH_ci.json this way and
// uploads it as an artifact, so every commit leaves a data point).
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
)

// benchReport is one -serve/-http run's metrics, shaped for trend
// tooling: throughput, latency percentiles, the paper's locality, steal
// and migration counters, the httpaff pool counters, and the runtime
// environment (fillEnv) so records are comparable across runs and
// machines.
type benchReport struct {
	Scenario     string  `json:"scenario"`
	Workers      int     `json:"workers"`
	Clients      int     `json:"clients"`
	LongLived    int     `json:"longLived,omitempty"`
	Pipeline     int     `json:"pipeline,omitempty"`
	DurationSecs float64 `json:"durationSecs"`
	ReqPerSec    float64 `json:"reqPerSec"`
	ConnPerSec   float64 `json:"connPerSec,omitempty"`
	P50us        float64 `json:"p50us"`
	P95us        float64 `json:"p95us"`
	P99us        float64 `json:"p99us"`
	Failed       uint64  `json:"failed"`
	Sharded      bool    `json:"sharded"`
	MigrationOn  bool    `json:"migrationOn"`
	LocalityPct  float64 `json:"localityPct"`
	StealPct     float64 `json:"stealPct"`
	ServedStolen uint64  `json:"servedStolen,omitempty"`
	Migrations   uint64  `json:"migrations"`
	Requeued     uint64  `json:"requeued"`
	Dropped      uint64  `json:"dropped"`

	// httpaff worker-local pool counters (http scenarios only).
	PoolGets     uint64  `json:"poolGets,omitempty"`
	PoolMisses   uint64  `json:"poolMisses,omitempty"`
	PoolReusePct float64 `json:"poolReusePct,omitempty"`

	// Server-side service-latency quantiles (http scenarios only), from
	// the workers' own head-read→flush histograms. Their gap to the
	// client-observed p50us/p99us above is queueing plus the loopback
	// hop — the split client-only measurement cannot give.
	SrvP50us  float64 `json:"srvP50us,omitempty"`
	SrvP99us  float64 `json:"srvP99us,omitempty"`
	SrvP999us float64 `json:"srvP999us,omitempty"`
	// Scrapes counts mid-run /metrics + /debug/events fetches when
	// -scrape-every is set (the scraped scenario's proof of load).
	Scrapes uint64 `json:"scrapes,omitempty"`
	// MigrateEvents is the KindMigrate count on the control ring at
	// window end (-longlived scenarios); the acceptance property is
	// MigrateEvents == Migrations.
	MigrateEvents uint64 `json:"migrateEvents,omitempty"`

	// Flow-journey and NUMA-attribution fields. Journeys is the stitched
	// per-group journey count at window end; JourneyMigrateHops the
	// migrate hops summed across those journeys (the acceptance property
	// in -longlived mode is JourneyMigrateHops == Migrations). Chips,
	// CrossChipSteals and CrossChipMigrations come from the -chips
	// attribution pass. TraceFile/TraceSpans record the -trace export.
	Journeys            int    `json:"journeys,omitempty"`
	JourneyMigrateHops  uint64 `json:"journeyMigrateHops,omitempty"`
	Chips               int    `json:"chips,omitempty"`
	CrossChipSteals     uint64 `json:"crossChipSteals,omitempty"`
	CrossChipMigrations uint64 `json:"crossChipMigrations,omitempty"`
	TraceFile           string `json:"traceFile,omitempty"`
	TraceSpans          int    `json:"traceSpans,omitempty"`

	// Topology-aware scheduling fields. DistanceBlind marks a run that
	// forced the flat wraparound steal scan despite -chips > 1 (the A/B
	// baseline); StealEstCycles is the cost model's total for every
	// steal's cache-line pulls priced local vs cross-chip. The adaptive
	// fields record the controller's state at window end; the pinning
	// pair accounts for every worker (pinned + failed = workers when
	// -pin is set).
	DistanceBlind      bool    `json:"distanceBlind,omitempty"`
	StealEstCycles     uint64  `json:"stealEstCycles,omitempty"`
	AdaptiveIntervalMs float64 `json:"adaptiveIntervalMs,omitempty"`
	FrozenGroups       int64   `json:"frozenGroups,omitempty"`
	GroupFreezes       uint64  `json:"groupFreezes,omitempty"`
	GroupUnfreezes     uint64  `json:"groupUnfreezes,omitempty"`
	PinnedWorkers      int     `json:"pinnedWorkers,omitempty"`
	PinFailures        uint64  `json:"pinFailures,omitempty"`

	// proxyaff upstream connection-pool counters (proxy scenarios only).
	Backends         int     `json:"backends,omitempty"`
	UpstreamGets     uint64  `json:"upstreamGets,omitempty"`
	UpstreamMisses   uint64  `json:"upstreamMisses,omitempty"`
	UpstreamReusePct float64 `json:"upstreamReusePct,omitempty"`

	// wsaff long-lived workload counters (-ws scenarios only). WSHeld is
	// the held-open idle population, WSParked the sockets parked when
	// the window ended, WSReceived the broadcast frames the held clients
	// actually read.
	WSHeld       uint64 `json:"wsHeld,omitempty"`
	WSParked     int64  `json:"wsParked,omitempty"`
	WSFramesIn   uint64 `json:"wsFramesIn,omitempty"`
	WSFramesOut  uint64 `json:"wsFramesOut,omitempty"`
	WSPings      uint64 `json:"wsPings,omitempty"`
	WSPongs      uint64 `json:"wsPongs,omitempty"`
	WSBroadcasts uint64 `json:"wsBroadcasts,omitempty"`
	WSDelivered  uint64 `json:"wsDelivered,omitempty"`
	WSReceived   uint64 `json:"wsReceived,omitempty"`

	// Event-loop metrics (-ws scenarios with -held). HeldConns is the
	// held-open population under its schema name (same value as wsHeld);
	// Goroutines is runtime.NumGoroutine sampled at window end — the
	// O(workers)-not-O(connections) regression gate; CoarseClockLagUs is
	// the worst per-worker coarse-clock staleness observed at window end
	// (bounded by the event loop's poll interval, ~50ms).
	HeldConns        uint64  `json:"heldConns,omitempty"`
	Goroutines       int     `json:"goroutines,omitempty"`
	CoarseClockLagUs float64 `json:"coarseClockLagUs,omitempty"`

	// Admission-control counters (-hostile scenarios only). The server
	// side: accept-time rate limiting, budget shedding, header-deadline
	// cuts, 503 backpressure. The attacker side: what the hostile
	// clients observed from outside.
	Ratelimited    uint64 `json:"ratelimited,omitempty"`
	ShedParked     uint64 `json:"shedParked,omitempty"`
	BudgetRejected uint64 `json:"budgetRejected,omitempty"`
	AcceptRetries  uint64 `json:"acceptRetries,omitempty"`
	HeaderTimeouts uint64 `json:"headerTimeouts,omitempty"`
	HeaderSheds    uint64 `json:"headerSheds,omitempty"`
	OverloadSheds  uint64 `json:"overloadSheds,omitempty"`
	LivePeak       int64  `json:"livePeak,omitempty"`
	MaxConns       int    `json:"maxConns,omitempty"`
	SlowClients    int    `json:"slowClients,omitempty"`
	SlowClosed     uint64 `json:"slowClosed,omitempty"`
	FloodClients   int    `json:"floodClients,omitempty"`
	FloodAttempts  uint64 `json:"floodAttempts,omitempty"`
	FloodServed    uint64 `json:"floodServed,omitempty"`
	FloodRefused   uint64 `json:"floodRefused,omitempty"`

	// Environment metadata.
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// fillEnv stamps the runtime environment onto the record.
func (r *benchReport) fillEnv() {
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.OS = runtime.GOOS
	r.Arch = runtime.GOARCH
}

// appendJSONReport appends rep to the JSON array in path, creating the
// file if needed. Read-modify-write keeps the file a valid JSON array
// rather than JSON-lines, so downstream tooling can ingest it directly.
func appendJSONReport(path string, rep benchReport) error {
	var reports []benchReport
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if len(data) > 0 {
			if jerr := json.Unmarshal(data, &reports); jerr != nil {
				return fmt.Errorf("existing file is not a JSON report array: %w", jerr)
			}
		}
	case errors.Is(err, os.ErrNotExist):
		// First record.
	default:
		return err
	}
	reports = append(reports, rep)
	out, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
